package rap_test

import (
	"reflect"
	"strings"
	"testing"

	"rap"
)

// TestProfilerSignatureGuard pins the deprecated Profiler surface: every
// method the seed interface exposed must keep its exact signature. The
// Writer/Reader split may grow new facets, but existing callers holding
// a Profiler must never need to change.
func TestProfilerSignatureGuard(t *testing.T) {
	want := map[string]string{
		"Add":            "func(uint64)",
		"AddN":           "func(uint64, uint64)",
		"AddBatch":       "func([]uint64)",
		"N":              "func() uint64",
		"Estimate":       "func(uint64, uint64) uint64",
		"EstimateBounds": "func(uint64, uint64) (uint64, uint64)",
		"HotRanges":      "func(float64) []core.HotRange",
		"Stats":          "func() core.Stats",
		"Finalize":       "func() core.Stats",
		"Snapshot":       "func() ([]uint8, error)",
	}
	typ := reflect.TypeOf((*rap.Profiler)(nil)).Elem()
	got := map[string]string{}
	for i := 0; i < typ.NumMethod(); i++ {
		m := typ.Method(i)
		got[m.Name] = m.Type.String()
	}
	for name, sig := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("Profiler lost method %s (want %s)", name, sig)
			continue
		}
		if g != sig {
			t.Errorf("Profiler.%s signature changed: %s, want %s", name, g, sig)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("Profiler grew unreviewed method %s — update the guard deliberately", name)
		}
	}
}

// TestReaderOfAllEngines checks the epoch escape hatch across the four
// engines: consistent-cut engines hand back a working epoch, the
// sampling engine reports ok=false.
func TestReaderOfAllEngines(t *testing.T) {
	feed := func(p rap.Writer) {
		for i := uint64(0); i < 20_000; i++ {
			p.Add(i % 997)
		}
	}
	cases := []struct {
		name string
		opts []rap.Option
		ok   bool
	}{
		{"tree", nil, true},
		{"concurrent", []rap.Option{rap.WithConcurrent(), rap.WithReadSnapshots(1024)}, true},
		{"concurrent-no-snapshots", []rap.Option{rap.WithConcurrent()}, true},
		{"sharded", []rap.Option{rap.WithSharding(4), rap.WithReadSnapshots(1024)}, true},
		{"sampled", []rap.Option{rap.WithSampling(8)}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := rap.New(append([]rap.Option{rap.WithUniverse(1 << 20), rap.WithEpsilon(0.05)}, c.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			feed(p)
			e, ok := rap.ReaderOf(p)
			if ok != c.ok {
				t.Fatalf("ReaderOf ok = %v, want %v", ok, c.ok)
			}
			if !ok {
				return
			}
			defer e.Release()
			// Published epochs may trail the live head by up to the
			// snapshot cadence; detached cuts are exact.
			n0 := e.N()
			if n0 > 20_000 || n0 < 20_000-2048 {
				t.Fatalf("epoch N = %d, want within one cadence of 20000", n0)
			}
			lo, hi := e.EstimateBounds(0, 1<<20-1)
			if lo > hi || hi != n0 {
				t.Fatalf("epoch full-range bounds (%d, %d), want high = %d", lo, hi, n0)
			}
			// The epoch is a cut: later writes must not leak in.
			p.Add(1)
			if e.N() != n0 {
				t.Fatalf("epoch N moved to %d after a later write", e.N())
			}
		})
	}
}

// TestWithReadSnapshotsEngineSelection: the option needs an engine with
// a decoupled read path and must reject the ones without.
func TestWithReadSnapshotsEngineSelection(t *testing.T) {
	for _, c := range []struct {
		name string
		opts []rap.Option
	}{
		{"plain", []rap.Option{rap.WithReadSnapshots(0)}},
		{"sampled", []rap.Option{rap.WithSampling(8), rap.WithReadSnapshots(0)}},
	} {
		if _, err := rap.New(c.opts...); err == nil {
			t.Errorf("%s: WithReadSnapshots accepted on an engine with no concurrent read path", c.name)
		} else if !strings.Contains(err.Error(), "read path") {
			t.Errorf("%s: unhelpful error %q", c.name, err)
		}
	}
	for _, c := range []struct {
		name string
		opts []rap.Option
	}{
		{"concurrent", []rap.Option{rap.WithConcurrent(), rap.WithReadSnapshots(0)}},
		{"sharded", []rap.Option{rap.WithSharding(2), rap.WithReadSnapshots(0)}},
	} {
		p, err := rap.New(c.opts...)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		e, ok := rap.ReaderOf(p.(rap.Reader))
		if !ok || e == nil {
			t.Fatalf("%s: no epoch from engine built with WithReadSnapshots", c.name)
		}
		if e.Seq() == 0 {
			t.Fatalf("%s: epoch seq 0 — engine served a detached fallback, snapshots not enabled", c.name)
		}
		e.Release()
	}
}
