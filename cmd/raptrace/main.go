// Command raptrace generates profile trace files: either from the modeled
// SPEC-like workloads (internal/workload) or by running a Mini benchmark
// program under the instrumented VM (internal/mini). The binary output
// feeds rapcli.
//
// Usage:
//
//	raptrace -bench gzip -kind value -n 1000000 -out gzip-values.trace
//	raptrace -mini compress -kind code -out compress-blocks.trace
//	raptrace -bench gcc -kind zeroload -n 500000   # to stdout
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"rap/internal/mini"
	"rap/internal/trace"
	"rap/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "modeled benchmark (gcc gzip mcf parser vortex vpr bzip2)")
	miniProg := flag.String("mini", "", "mini VM program (compress tokens graph anneal store)")
	kind := flag.String("kind", "value", "stream kind: code | value | address | zeroload")
	n := flag.Uint64("n", 1_000_000, "events to generate (modeled benchmarks)")
	seed := flag.Uint64("seed", 1, "seed")
	out := flag.String("out", "-", "output file ('-' for stdout)")
	asText := flag.Bool("text", false, "write 'hexvalue weight' lines instead of binary")
	flag.Parse()

	if err := run(*bench, *miniProg, *kind, *n, *seed, *out, *asText); err != nil {
		fmt.Fprintf(os.Stderr, "raptrace: %v\n", err)
		os.Exit(1)
	}
}

func run(bench, miniProg, kind string, n, seed uint64, out string, asText bool) error {
	src, err := buildSource(bench, miniProg, kind, n, seed)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	if asText {
		return trace.WriteText(w, src)
	}
	tw := trace.NewWriter(w)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Write(e); err != nil {
			return err
		}
	}
	return tw.Flush()
}

func buildSource(bench, miniProg, kind string, n, seed uint64) (trace.Source, error) {
	switch {
	case bench != "" && miniProg != "":
		return nil, fmt.Errorf("pass -bench or -mini, not both")

	case miniProg != "":
		tr, err := mini.CollectTrace(miniProg, seed)
		if err != nil {
			return nil, err
		}
		switch kind {
		case "code":
			return trace.NewSliceSource(tr.BlockPCs), nil
		case "value":
			return trace.NewSliceSource(tr.LoadValues()), nil
		case "zeroload":
			return trace.NewSliceSource(tr.ZeroLoadAddresses()), nil
		case "address":
			addrs := make([]uint64, len(tr.Loads))
			for i, ld := range tr.Loads {
				addrs[i] = ld.Addr
			}
			return trace.NewSliceSource(addrs), nil
		}
		return nil, fmt.Errorf("unknown kind %q", kind)

	case bench != "":
		b, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		switch kind {
		case "code":
			return trace.Limit(b.Code(seed, n), n), nil
		case "value":
			return trace.Limit(b.Values(seed, n), n), nil
		case "zeroload":
			return trace.Limit(b.Loads(seed, n).ZeroLoadAddresses(), n), nil
		case "address":
			loads := b.Loads(seed, n)
			return trace.Limit(trace.FuncSource(func() (uint64, bool) {
				return loads.Next().Addr, true
			}), n), nil
		}
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
	return nil, fmt.Errorf("pass -bench <name> or -mini <program>")
}
