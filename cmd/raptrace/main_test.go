package main

import (
	"os"
	"path/filepath"
	"testing"

	"rap/internal/trace"
)

func TestBuildSourceValidation(t *testing.T) {
	cases := []struct {
		name        string
		bench, mini string
		kind        string
	}{
		{"neither", "", "", "value"},
		{"both", "gcc", "graph", "value"},
		{"bad bench", "nope", "", "value"},
		{"bad mini", "", "nope", "value"},
		{"bad kind bench", "gcc", "", "wat"},
		{"bad kind mini", "", "graph", "wat"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := buildSource(tc.bench, tc.mini, tc.kind, 10, 1); err == nil {
				t.Fatalf("buildSource accepted %+v", tc)
			}
		})
	}
}

func TestBuildSourceKinds(t *testing.T) {
	for _, kind := range []string{"code", "value", "address", "zeroload"} {
		src, err := buildSource("gzip", "", kind, 500, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		events := trace.Collect(src)
		if len(events) != 500 {
			t.Fatalf("%s: %d events, want 500", kind, len(events))
		}
	}
	// Mini kinds produce finite traces of program-determined length.
	for _, kind := range []string{"code", "value", "address", "zeroload"} {
		src, err := buildSource("", "graph", kind, 0, 1)
		if err != nil {
			t.Fatalf("mini %s: %v", kind, err)
		}
		if events := trace.Collect(src); len(events) == 0 {
			t.Fatalf("mini %s: empty trace", kind)
		}
	}
}

func TestRunWritesReadableFile(t *testing.T) {
	dir := t.TempDir()
	for _, asText := range []bool{false, true} {
		out := filepath.Join(dir, "t.trace")
		if err := run("gzip", "", "value", 200, 1, out, asText); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		if asText {
			events, err := trace.ReadText(f)
			if err != nil || len(events) != 200 {
				t.Fatalf("text round trip: %d events, %v", len(events), err)
			}
		} else {
			r := trace.NewReader(f)
			events := trace.Collect(r)
			if r.Err() != nil || len(events) != 200 {
				t.Fatalf("binary round trip: %d events, %v", len(events), r.Err())
			}
		}
		f.Close()
	}
}

func TestRunBadOutputPath(t *testing.T) {
	if err := run("gzip", "", "value", 10, 1, "/nonexistent-dir/x.trace", false); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
