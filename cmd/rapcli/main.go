// Command rapcli profiles a trace with RAP and reports hot ranges — the
// software-only entry point of Section 3.2 (rap_init / rap_add_points /
// rap_finalize) as a tool. It reads the binary trace format produced by
// raptrace (or text traces with -text) from a file or stdin.
//
// Usage:
//
//	raptrace -bench gzip -kind value -n 1000000 | rapcli -eps 0.01 -hot 0.10
//	rapcli -in trace.bin -dump tree.txt -dot tree.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rap/internal/analysis"
	"rap/internal/core"
	"rap/internal/trace"
)

func main() {
	in := flag.String("in", "-", "input trace file ('-' for stdin)")
	text := flag.Bool("text", false, "input is 'hexvalue weight' lines rather than binary")
	eps := flag.Float64("eps", 0.01, "error bound epsilon")
	hot := flag.Float64("hot", 0.10, "hot-range threshold")
	universe := flag.Int("w", 64, "universe bits")
	branch := flag.Int("b", 4, "branching factor (power of two)")
	buffer := flag.Int("buffer", 0, "stage-0 coalescing buffer size (0 = off)")
	dump := flag.String("dump", "", "write full ASCII tree dump to this file")
	dot := flag.String("dot", "", "write Graphviz rendering to this file")
	flag.Parse()

	if err := run(*in, *text, *eps, *hot, *universe, *branch, *buffer, *dump, *dot); err != nil {
		fmt.Fprintf(os.Stderr, "rapcli: %v\n", err)
		os.Exit(1)
	}
}

func run(in string, text bool, eps, hot float64, universe, branch, buffer int, dump, dot string) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	var src trace.Source
	var reader *trace.Reader
	if text {
		events, err := trace.ReadText(r)
		if err != nil {
			return err
		}
		src = &eventSource{events: events}
	} else {
		reader = trace.NewReader(r)
		src = reader
	}
	var buf *trace.CoalescingBuffer
	if buffer > 0 {
		buf = trace.NewCoalescingBuffer(src, buffer)
		src = buf
	}

	cfg := core.DefaultConfig()
	cfg.UniverseBits = universe
	cfg.Branch = branch
	cfg.Epsilon = eps
	t, err := core.New(cfg)
	if err != nil {
		return err
	}
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		t.AddN(e.Value, e.Weight)
	}
	if reader != nil && reader.Err() != nil {
		return reader.Err()
	}

	st := t.Finalize()
	fmt.Printf("events=%d nodes=%d (max %d) memory=%dB splits=%d merges=%d batches=%d\n",
		st.N, st.Nodes, st.MaxNodes, st.MemoryBytes, st.Splits, st.Merges, st.MergeBatches)
	if buf != nil {
		fmt.Printf("stage-0 buffer: %.1fx compression (%d in, %d out)\n",
			buf.CompressionFactor(), buf.EventsIn(), buf.EventsOut())
	}
	fmt.Printf("\nhot ranges (>= %.0f%%):\n", 100*hot)
	if err := analysis.HotRangeTable(os.Stdout, t, hot); err != nil {
		return err
	}

	if dump != "" {
		f, err := os.Create(dump)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := t.WriteASCII(f); err != nil {
			return err
		}
	}
	if dot != "" {
		f, err := os.Create(dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := t.WriteDOT(f, hot); err != nil {
			return err
		}
	}
	return nil
}

type eventSource struct {
	events []trace.Event
	pos    int
}

func (s *eventSource) Next() (trace.Event, bool) {
	if s.pos >= len(s.events) {
		return trace.Event{}, false
	}
	e := s.events[s.pos]
	s.pos++
	return e, true
}
