package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rap/internal/trace"
)

// writeTestTrace writes a small binary trace and returns its path.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := trace.NewWriter(f)
	for i := 0; i < 5000; i++ {
		v := uint64(i % 7)
		if i%2 == 0 {
			v = 0xABCD
		}
		if err := w.Write(trace.Event{Value: v, Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProducesArtifacts(t *testing.T) {
	in := writeTestTrace(t)
	dir := t.TempDir()
	dump := filepath.Join(dir, "tree.txt")
	dot := filepath.Join(dir, "tree.dot")
	if err := run(in, false, 0.05, 0.10, 16, 4, 256, dump, dot); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "abcd") {
		t.Errorf("dump missing hot value:\n%s", txt)
	}
	g, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(g), "digraph rap {") {
		t.Errorf("dot output malformed")
	}
}

func TestRunTextInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.txt")
	if err := os.WriteFile(path, []byte("abcd 100\n7 50\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true, 0.05, 0.10, 16, 4, 0, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	in := writeTestTrace(t)
	if err := run("/no/such/file", false, 0.05, 0.1, 16, 4, 0, "", ""); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run(in, false, 5.0, 0.1, 16, 4, 0, "", ""); err == nil {
		t.Fatal("bad epsilon accepted")
	}
	if err := run(in, false, 0.05, 0.1, 16, 4, 0, "/no/dir/dump.txt", ""); err == nil {
		t.Fatal("unwritable dump path accepted")
	}
	if err := run(in, false, 0.05, 0.1, 16, 4, 0, "", "/no/dir/t.dot"); err == nil {
		t.Fatal("unwritable dot path accepted")
	}
	// Garbage binary input must error, not hang or panic.
	bad := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(bad, []byte("NOTATRACE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, false, 0.05, 0.1, 16, 4, 0, "", ""); err == nil {
		t.Fatal("garbage trace accepted")
	}
	// Garbage text input likewise.
	badTxt := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(badTxt, []byte("zz not a line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(badTxt, true, 0.05, 0.1, 16, 4, 0, "", ""); err == nil {
		t.Fatal("garbage text accepted")
	}
}
