package main

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rap/internal/ingest"
	"rap/internal/trace"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func writeTrace(t *testing.T, path string, vals []uint64) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := trace.NewWriter(f)
	for _, v := range vals {
		if err := w.Write(trace.Event{Value: v, Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestParseFlags(t *testing.T) {
	c := parseFlags([]string{
		"-stdin", "-shards", "2", "-drop", "newest",
		"-checkpoint-dir", "/tmp/x", "-epsilon", "0.02",
		"a.trace", "b.trace",
	}, os.Stderr)
	if !c.stdin || c.shards != 2 || c.drop != "newest" ||
		c.checkpointDir != "/tmp/x" || c.epsilon != 0.02 {
		t.Fatalf("parsed config %+v", c)
	}
	if len(c.traces) != 2 || c.traces[0] != "a.trace" {
		t.Fatalf("positional traces %v", c.traces)
	}
}

func TestOptionsRejectsBadDropPolicy(t *testing.T) {
	c := cliConfig{drop: "oldest", epsilon: 0.01, universe: 64, branch: 4}
	if _, err := c.options(discardLogger()); err == nil {
		t.Fatal("bad drop policy accepted")
	}
}

func TestSpecsRequireASource(t *testing.T) {
	c := cliConfig{drop: "block"}
	if _, err := c.specs(nil); err == nil {
		t.Fatal("no sources accepted")
	}
	c.bench = "gzip"
	c.kind = "nonsense"
	if _, err := c.specs(nil); err == nil {
		t.Fatal("bad generator kind accepted")
	}
}

func TestRunEndToEndWithRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(77))
	zipf := rand.NewZipf(rng, 1.2, 8, 1<<20-1)
	vals := make([]uint64, 30_000)
	for i := range vals {
		vals[i] = zipf.Uint64()
	}
	path := filepath.Join(dir, "events.trace")
	writeTrace(t, path, vals)

	c := cliConfig{
		traces:          []string{path},
		shards:          2,
		drop:            "block",
		epsilon:         0.05,
		universe:        20,
		branch:          4,
		checkpointDir:   filepath.Join(dir, "ck"),
		checkpointEvery: time.Hour,
		readTimeout:     5 * time.Second,
		maxRetries:      2,
	}

	var out bytes.Buffer
	if err := run(context.Background(), c, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "n=30000") {
		t.Fatalf("final stats missing from output:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "ck", "checkpoint.rapc")); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Restart over the same trace: the daemon must recover the position
	// from the checkpoint and apply nothing twice.
	var out2 bytes.Buffer
	if err := run(context.Background(), c, &out2); err != nil {
		t.Fatalf("restart run: %v\n%s", err, out2.String())
	}
	if !strings.Contains(out2.String(), "recovered events from checkpoint") ||
		!strings.Contains(out2.String(), "events=30000") {
		t.Fatalf("restart did not recover from checkpoint:\n%s", out2.String())
	}
	if !strings.Contains(out2.String(), "n=30000") {
		t.Fatalf("restart double-counted or lost events:\n%s", out2.String())
	}
}

func TestRunSignalStyleCancel(t *testing.T) {
	// A generator source large enough to outlive the test: cancellation
	// (what SIGINT/SIGTERM feed through signal.NotifyContext) must yield
	// a clean shutdown with a final checkpoint.
	dir := t.TempDir()
	c := cliConfig{
		bench:           "gzip",
		kind:            "value",
		genN:            50_000_000,
		seed:            1,
		shards:          2,
		drop:            "block",
		epsilon:         0.05,
		universe:        64,
		branch:          4,
		checkpointDir:   dir,
		checkpointEvery: time.Hour,
		readTimeout:     5 * time.Second,
		maxRetries:      2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, c, &out) }()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after cancel: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on cancel")
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.rapc")); err != nil {
		t.Fatalf("shutdown did not flush a final checkpoint: %v", err)
	}

	// The flushed checkpoint must be loadable and non-empty.
	opts, err := c.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	specs, err := c.specs(nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.Open(opts, specs)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() == 0 {
		t.Fatal("final checkpoint holds no events")
	}
}

func TestValidateFlagCombos(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring, "" for valid
	}{
		{"bare", []string{"-stdin"}, ""},
		{"audit with tuning", []string{"-audit", "-audit-ranges", "8"}, ""},
		{"audit tuning without audit", []string{"-audit-ranges", "8"}, "requires -audit"},
		{"audit cadence without audit", []string{"-audit-every", "1s"}, "requires -audit"},
		{"admit with tuning", []string{"-admit", "-admit-period", "16"}, ""},
		{"admit period without admit", []string{"-admit-period", "16"}, "requires -admit"},
		{"admit arena without admit", []string{"-admit-arena-hard", "1048576"}, "requires -admit"},
		{"admit period zero", []string{"-admit", "-admit-period", "0"}, "period must be >= 1"},
		{"arena thresholds inverted", []string{"-admit", "-admit-arena-soft", "64", "-admit-arena-hard", "32"}, "exceeds"},
		{"arena thresholds ordered", []string{"-admit", "-admit-arena-soft", "32", "-admit-arena-hard", "64"}, ""},
		{"flood with knobs", []string{"-bench", "gzip", "-kind", "flood", "-flood-frac", "0.9", "-flood-n", "1000"}, ""},
		{"flood frac without flood kind", []string{"-bench", "gzip", "-flood-frac", "0.9"}, "requires -kind flood"},
		{"flood burst without flood kind", []string{"-bench", "gzip", "-flood-n", "1000"}, "requires -kind flood"},
		{"flood frac out of range", []string{"-bench", "gzip", "-kind", "flood", "-flood-frac", "1.5"}, "must be in [0,1]"},
		{"flood frac negative", []string{"-bench", "gzip", "-kind", "flood", "-flood-frac", "-0.1"}, "must be in [0,1]"},
		{"full hardened stack", []string{"-bench", "gzip", "-kind", "flood", "-admit", "-audit"}, ""},
		{"flight with admin", []string{"-stdin", "-admin", ":0", "-flight-every", "2s", "-flight-depth", "100"}, ""},
		{"flight cadence without admin", []string{"-stdin", "-flight-every", "2s"}, "requires -admin"},
		{"flight depth without admin", []string{"-stdin", "-flight-depth", "100"}, "requires -admin"},
		{"dump bundle without admin", []string{"-stdin", "-dump-bundle", "b.tar.gz"}, "requires -admin"},
		{"flight cadence zero", []string{"-stdin", "-admin", ":0", "-flight-every", "0s"}, "cadence must be positive"},
		{"flight depth zero", []string{"-stdin", "-admin", ":0", "-flight-depth", "0"}, "depth must be >= 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := parseFlags(tc.args, io.Discard)
			err := c.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid combo rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
