package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rap/internal/admit"
	"rap/internal/flight"
	"rap/internal/ingest"
	"rap/internal/obs"
	"rap/internal/trace"
)

// healthDoc is the structured /healthz and /readyz body.
type healthDoc struct {
	Status string `json:"status"`
	Checks []struct {
		Name   string `json:"name"`
		OK     bool   `json:"ok"`
		Reason string `json:"reason"`
	} `json:"checks"`
}

func decodeHealth(t *testing.T, body string) healthDoc {
	t.Helper()
	var doc healthDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("health body not JSON: %v\n%s", err, body)
	}
	return doc
}

// check returns the named check, failing the test if it is absent.
func (d healthDoc) check(t *testing.T, name string) (ok bool, reason string) {
	t.Helper()
	for _, c := range d.Checks {
		if c.Name == name {
			return c.OK, c.Reason
		}
	}
	t.Fatalf("no check named %q in %+v", name, d)
	return false, ""
}

// alertsDoc decodes /alerts (and a bundle's alerts.json).
type alertsDoc struct {
	Alerts []flight.AlertStatus `json:"alerts"`
}

func alertState(t *testing.T, base, rule string) (state string, transitions uint64) {
	t.Helper()
	code, body, _ := get(t, base+"/alerts")
	if code != http.StatusOK {
		t.Fatalf("/alerts = %d: %s", code, body)
	}
	var doc alertsDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/alerts not JSON: %v\n%s", err, body)
	}
	for _, a := range doc.Alerts {
		if a.Rule.Name == rule {
			return a.State, a.Transitions
		}
	}
	t.Fatalf("rule %q not in /alerts:\n%s", rule, body)
	return "", 0
}

// TestHealthEndpointsNameFailingCheck pins the structured health
// contract: when readiness flips, the JSON body names which check failed
// and why — the difference between "pod restarting" and "pod restarting
// because its sources are gone".
func TestHealthEndpointsNameFailingCheck(t *testing.T) {
	c := cliConfig{
		shards: 1, drop: "block", epsilon: 0.05, universe: 20, branch: 4,
		maxRetries: 1,
	}
	opts, err := c.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	opts.BackoffBase = time.Millisecond
	opts.BackoffMax = time.Millisecond
	dead := ingest.SourceSpec{
		Name: "dead",
		Open: func() (trace.Source, error) { return nil, errors.New("no such device") },
	}
	in, err := ingest.Open(opts, []ingest.SourceSpec{dead})
	if err != nil {
		t.Fatal(err)
	}
	a := &admin{in: in, reg: obs.NewRegistry(), start: time.Now()}
	addr, stop, err := serveAdmin("127.0.0.1:0", a, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr

	// Healthy: every check present and passing, with a reason string.
	code, body, _ := get(t, base+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("/readyz = %d before failure: %s", code, body)
	}
	doc := decodeHealth(t, body)
	if ok, reason := doc.check(t, "source_liveness"); !ok || !strings.Contains(reason, "alive") {
		t.Fatalf("healthy source_liveness = %v %q", ok, reason)
	}

	if err := in.Run(context.Background()); err == nil {
		t.Fatal("pipeline with a dead source reported success")
	}

	// Unready: the failing check is named with its reason.
	code, body, _ = get(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d after total source failure: %s", code, body)
	}
	doc = decodeHealth(t, body)
	if doc.Status != "unready" {
		t.Fatalf("status %q, want unready", doc.Status)
	}
	ok, reason := doc.check(t, "source_liveness")
	if ok || reason != "all sources permanently failed" {
		t.Fatalf("source_liveness = %v %q", ok, reason)
	}

	// Liveness stays 200 but carries the same named checks.
	code, body, _ = get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d after source failure", code)
	}
	if ok, _ := decodeHealth(t, body).check(t, "source_liveness"); ok {
		t.Fatal("/healthz hides the failing check")
	}

	// The checkpoint-freshness check is named too: a daemon an hour past
	// its cadence with checkpointing enabled.
	dir := t.TempDir()
	c2 := c
	c2.checkpointDir, c2.checkpointEvery = dir, time.Minute
	opts2, err := c2.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	in2, err := ingest.Open(opts2, []ingest.SourceSpec{
		ingest.GeneratorSource("gen", func() trace.Source {
			return trace.Limit(trace.FuncSource(func() (uint64, bool) { return 1, true }), 1)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	stale := &admin{in: in2, reg: obs.NewRegistry(), ckEvery: time.Minute, start: time.Now().Add(-time.Hour)}
	addr2, stop2, err := serveAdmin("127.0.0.1:0", stale, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	code, body, _ = get(t, "http://"+addr2+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with stale checkpoint: %s", code, body)
	}
	ok, reason = decodeHealth(t, body).check(t, "checkpoint_freshness")
	if ok || !strings.Contains(reason, "no checkpoint for") {
		t.Fatalf("checkpoint_freshness = %v %q", ok, reason)
	}
}

// TestFloodAlertFiresAndClears is the admission fault-injection story end
// to end: a key-flood burst drives the watchdog to Siege, the
// admission_level alert goes crit on the next scrape, a bundle captured
// mid-incident carries the firing alert and the level history, and once
// the burst gives way to the benign carrier the alert clears.
func TestFloodAlertFiresAndClears(t *testing.T) {
	c := cliConfig{
		bench: "gzip", kind: "flood", floodFrac: 1, floodN: 1_000_000,
		genN: 4_000_000, seed: 7,
		shards: 2, queue: 64, batch: 256, drop: "block",
		epsilon: 0.05, universe: 64, branch: 4,
		readTimeout: 5 * time.Second, maxRetries: 2,
	}
	opts, err := c.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	opts.Metrics = reg
	// The admit test-suite's fast watchdog: reacts within thousands of
	// events instead of the production hundreds of thousands.
	opts.Admission = &admit.Options{
		EvalEvery:     1024,
		WindowOffered: 2048,
		StartupGraceN: 8192,
		ColdGraceN:    2048,
		CalmStreak:    2,
		Seed:          42,
	}
	opts.AdmissionObserveEvery = 20 * time.Millisecond
	specs, err := c.specs(nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.Open(opts, specs)
	if err != nil {
		t.Fatal(err)
	}

	// Manual scrapes instead of Start(): the test controls the clock the
	// same way the ticker would, without real-time flakiness.
	rec := flight.NewRecorder(reg, flight.Options{Every: 10 * time.Millisecond, Depth: 4096})
	rec.Register(reg)
	eng := flight.NewEngine(rec, flight.BuiltinRules(flight.BuiltinConfig{})...)
	eng.Register(reg)

	a := &admin{in: in, reg: reg, rec: rec, eng: eng, effCfg: c.effective(), start: time.Now()}
	addr, stop, err := serveAdmin("127.0.0.1:0", a, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr

	done := make(chan error, 1)
	go func() { done <- in.Run(context.Background()) }()

	// Scrape until a scrape lands inside the escalated burst. The burst is
	// a million events, so at 1ms polling the window cannot be missed.
	deadline := time.Now().Add(30 * time.Second)
	fired := false
	for time.Now().Before(deadline) {
		rec.Scrape(time.Now())
		if state, _ := alertState(t, base, "admission_level"); state != "ok" {
			fired = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !fired {
		t.Fatal("admission_level alert never fired during a pure key-flood burst")
	}

	// Capture the incident: the bundle taken now must carry the firing
	// alert and the escalated level history.
	code, body, _ := get(t, base+"/debug/bundle")
	if code != http.StatusOK {
		t.Fatalf("/debug/bundle = %d", code)
	}
	entries := untarBundle(t, []byte(body))
	var alerts alertsDoc
	if err := json.Unmarshal(entries["alerts.json"], &alerts); err != nil {
		t.Fatalf("bundle alerts.json: %v", err)
	}
	sawFiring := false
	for _, al := range alerts.Alerts {
		if al.Rule.Name == "admission_level" && al.State != "ok" {
			sawFiring = true
		}
	}
	if !sawFiring {
		t.Fatalf("bundle captured mid-incident does not show admission_level firing:\n%s", entries["alerts.json"])
	}
	var hist flight.History
	if err := json.Unmarshal(entries["metrics_history.json"], &hist); err != nil {
		t.Fatalf("bundle metrics_history.json: %v", err)
	}
	levelRecorded := false
	for _, s := range hist.Series {
		if s.Name == "rap_admit_level" && s.Max >= 1 {
			levelRecorded = true
		}
	}
	if !levelRecorded {
		t.Fatal("bundle history does not show the escalated rap_admit_level")
	}
	var admitState struct {
		Level string `json:"level"`
	}
	if err := json.Unmarshal(entries["admit.json"], &admitState); err != nil {
		t.Fatalf("bundle admit.json: %v", err)
	}
	if admitState.Level == "normal" {
		t.Fatal("bundle admit.json claims normal during the flood")
	}

	// The status page renders mid-incident.
	code, page, _ := get(t, base+"/statusz")
	if code != http.StatusOK || !strings.Contains(page, "admission level") {
		t.Fatalf("/statusz = %d:\n%s", code, page)
	}

	// Run out the stream: the burst ends, the carrier drives the watchdog
	// calm, and the alert must clear.
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.Scrape(time.Now())
	state, transitions := alertState(t, base, "admission_level")
	if state != "ok" {
		t.Fatalf("admission_level = %q after the flood ended and the stream ran calm", state)
	}
	if transitions < 2 {
		t.Fatalf("transitions = %d, want the round trip (fire + clear)", transitions)
	}

	// The same round trip is visible in the exported metrics.
	_, metrics, _ := get(t, base+"/metrics")
	sc := parseProm(t, metrics)
	if v := sc.samples[`rap_alert_state{rule="admission_level"}`]; v != 0 {
		t.Fatalf("rap_alert_state = %v after recovery", v)
	}
	if v := sc.samples[`rap_alert_transitions_total{rule="admission_level"}`]; v < 2 {
		t.Fatalf("rap_alert_transitions_total = %v, want >= 2", v)
	}
}

// TestCheckpointStalenessAlertFiresAndClears injects a durability fault:
// the checkpoint directory is replaced by a regular file, writes start
// failing, staleness climbs past the built-in thresholds, and both the
// alert and readiness flip — then the directory is restored and both
// recover. Root can write anywhere, so the fault is ENOTDIR, not
// permissions.
func TestCheckpointStalenessAlertFiresAndClears(t *testing.T) {
	dir := t.TempDir()
	ckDir := filepath.Join(dir, "ck")
	const ckEvery = 100 * time.Millisecond

	c := cliConfig{
		bench: "gzip", kind: "value", genN: 1 << 40, seed: 3,
		shards: 1, queue: 16, batch: 64, drop: "block",
		epsilon: 0.05, universe: 64, branch: 4,
		checkpointDir: ckDir, checkpointEvery: ckEvery,
		readTimeout: 5 * time.Second, maxRetries: 2,
	}
	opts, err := c.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	opts.Metrics = reg
	specs, err := c.specs(nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.Open(opts, specs)
	if err != nil {
		t.Fatal(err)
	}

	rec := flight.NewRecorder(reg, flight.Options{Every: 10 * time.Millisecond, Depth: 4096})
	rec.Register(reg)
	eng := flight.NewEngine(rec, flight.BuiltinRules(flight.BuiltinConfig{CheckpointEvery: ckEvery})...)
	eng.Register(reg)
	a := &admin{in: in, reg: reg, rec: rec, eng: eng, ckEvery: ckEvery, start: time.Now()}
	addr, stop, err := serveAdmin("127.0.0.1:0", a, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- in.Run(ctx) }()

	waitState := func(want string, timeout time.Duration) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			rec.Scrape(time.Now())
			if state, _ := alertState(t, base, "checkpoint_staleness"); state == want {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		state, _ := alertState(t, base, "checkpoint_staleness")
		t.Fatalf("checkpoint_staleness stuck at %q, want %q", state, want)
	}

	// Healthy baseline: checkpoints land on cadence, alert ok, ready.
	deadline := time.Now().Add(10 * time.Second)
	for in.Stats().Checkpoint.Written == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if in.Stats().Checkpoint.Written == 0 {
		t.Fatal("no checkpoint ever landed")
	}
	waitState("ok", 5*time.Second)

	// Fault: the checkpoint directory becomes a regular file; every write
	// from here fails with ENOTDIR and the last durable state ages.
	if err := os.RemoveAll(ckDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckDir, []byte("squatter"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Warn fires at 3x cadence (300ms of staleness).
	waitState("warn", 10*time.Second)

	// Readiness names the failing check once the age passes 3 cadences.
	code, body, _ := get(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d while checkpoints fail: %s", code, body)
	}
	if ok, reason := decodeHealth(t, body).check(t, "checkpoint_freshness"); ok ||
		!strings.Contains(reason, "no checkpoint for") {
		t.Fatalf("checkpoint_freshness = %v %q", ok, reason)
	}

	// Recovery: restore the directory; the next cadence tick writes a
	// fresh checkpoint, staleness collapses, alert and readiness clear.
	if err := os.Remove(ckDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(ckDir, 0o755); err != nil {
		t.Fatal(err)
	}
	waitState("ok", 10*time.Second)
	if code, body, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d after recovery: %s", code, body)
	}
	if _, transitions := alertState(t, base, "checkpoint_staleness"); transitions < 2 {
		t.Fatalf("transitions = %d, want the round trip (fire + clear)", transitions)
	}

	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("run: %v", err)
	}
}

// TestDumpBundleOnExit drives run() the way `rapd -admin ... -dump-bundle
// path` would: the daemon processes its stream, exits cleanly, and leaves
// a parseable bundle at the requested path.
func TestDumpBundleOnExit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.trace")
	vals := make([]uint64, 20_000)
	for i := range vals {
		vals[i] = uint64(i % 997)
	}
	writeTrace(t, path, vals)
	bundlePath := filepath.Join(dir, "exit-bundle.tar.gz")

	c := cliConfig{
		traces: []string{path},
		shards: 2, drop: "block", epsilon: 0.05, universe: 20, branch: 4,
		readTimeout: 5 * time.Second, maxRetries: 2,
		admin:       "127.0.0.1:0",
		flightEvery: 5 * time.Millisecond, flightDepth: 1024,
		dumpBundle: bundlePath,
		audit:      true, auditEvery: time.Hour,
		auditRanges: 8, auditSpanBits: 8, auditSample: 16,
	}
	var out bytes.Buffer
	if err := run(context.Background(), c, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	raw, err := os.ReadFile(bundlePath)
	if err != nil {
		t.Fatalf("no bundle at exit: %v\n%s", err, out.String())
	}
	entries := untarBundle(t, raw)
	for _, want := range []string{"meta.json", "config.json", "metrics.prom", "metrics_history.json", "alerts.json", "trace.jsonl", "spans.jsonl", "profile.json", "audit.json"} {
		if _, ok := entries[want]; !ok {
			t.Errorf("exit bundle missing %s (has %v)", want, len(entries))
		}
	}
	var cfg map[string]any
	if err := json.Unmarshal(entries["config.json"], &cfg); err != nil {
		t.Fatalf("config.json: %v", err)
	}
	if cfg["shards"] != float64(2) || cfg["audit"] != true {
		t.Fatalf("effective config wrong: %v", cfg)
	}
}

// untarBundle unpacks a gzipped tar bundle into entry-name -> contents.
func untarBundle(t *testing.T, raw []byte) map[string][]byte {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("bundle not gzipped: %v", err)
	}
	tr := tar.NewReader(gz)
	entries := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle tar: %v", err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		entries[hdr.Name] = body
	}
	return entries
}
