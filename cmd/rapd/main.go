// Command rapd is the long-running resilient ingest daemon: it feeds one
// or more event sources through the supervised, checkpointed pipeline of
// internal/ingest and keeps a crash-recoverable RAP profile on disk. It is
// the deployment story for the always-on profiler the paper's hardware
// engine implies: kill it at any point and restart it, and the profile
// resumes from the last checkpoint with nothing double-counted.
//
// Usage:
//
//	rapd -checkpoint-dir /var/lib/rapd a.trace b.trace
//	raptrace -bench gzip -kind value -n 5000000 | rapd -stdin
//	rapd -bench gzip -kind value -gen-n 10000000 -stats-every 2s
//	rapd -bench gzip -kind value -admin 127.0.0.1:9090
//
// With -admin, rapd serves its observability plane over HTTP: /metrics
// (Prometheus text) and /metrics.json, /healthz and /readyz (structured
// checks keyed on source liveness and checkpoint freshness), /trace
// (sampled split/merge structural events as JSONL), the versioned query
// API /v1/estimate, /v1/hotranges, and /v1/stats (answers served
// lock-free from the latest published epoch, with staleness headers and
// 429s while admission is at Siege), /spans (recorded request spans as
// JSONL; /v1 requests honor an inbound W3C traceparent header and stamp
// one on the response), /profilez (RAP-tree adaptive latency profiles
// per pipeline stage, with span exemplars and a fixed-ladder
// comparison), /vars (flight-recorder metric history with windowed
// queries), /alerts (the in-process alert rules), /statusz (a
// human-readable status page, including the slow-op log), /debug/bundle
// (a one-shot gzipped-tar diagnostic bundle), and /debug/pprof. The
// flight recorder scrapes the registry every -flight-every into a
// bounded in-memory ring of -flight-depth delta-compressed frames.
// Request tracing samples 1 in -span-sample traces end to end through
// enqueue, queue wait, shard apply, merge batches, epoch publish, and
// checkpoint cut/write; spans slower than -slow-op are always recorded,
// and while any alert fires every span is recorded.
//
// Trace-file and generator sources are replayable, so crash recovery is
// lossless for them. Stdin is a one-shot stream: events between the last
// checkpoint and a crash cannot be replayed (the gap is logged).
// SIGINT/SIGTERM trigger a clean shutdown: queues drain, a final
// checkpoint is flushed, and the closing stats are printed. SIGQUIT dumps
// a diagnostic bundle to a file and keeps running.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"rap/internal/admit"
	"rap/internal/audit"
	"rap/internal/core"
	"rap/internal/flight"
	"rap/internal/ingest"
	"rap/internal/obs"
	"rap/internal/span"
	"rap/internal/trace"
	"rap/internal/workload"
)

type cliConfig struct {
	traces []string // positional trace file paths
	stdin  bool

	bench string // generator source: workload name
	kind  string
	genN  uint64
	seed  uint64

	shards   int
	queue    int
	batch    int
	drop     string
	epsilon  float64
	universe int
	branch   int

	checkpointDir   string
	checkpointEvery time.Duration
	readTimeout     time.Duration
	maxRetries      int
	statsEvery      time.Duration

	admin       string // admin HTTP address, "" = disabled
	traceSample uint64 // structural trace sampling: keep 1 in N decisions
	traceCap    int    // structural trace ring capacity

	spanSample uint64        // request-span head sampling: keep 1 in N traces
	spanCap    int           // span ring capacity
	slowOp     time.Duration // slow-op promotion threshold (0: disabled)

	flightEvery time.Duration // flight recorder scrape cadence
	flightDepth int           // flight recorder ring depth, in frames
	dumpBundle  string        // write a diagnostic bundle here on exit

	audit         bool          // run the online accuracy self-audit
	auditEvery    time.Duration // audit pass cadence
	auditRanges   int           // max sampled ranges audited at once
	auditSpanBits int           // minimum audited range width, in bits
	auditSample   uint64        // adoption gate: 1 in N hash values

	readSnapshots    bool          // epoch-published lock-free read path
	snapshotEvery    uint64        // offered events between epoch publishes
	snapshotMaxStale time.Duration // wall-clock bound on epoch staleness

	admit          bool   // run the randomized admission frontend
	admitPeriod    uint64 // base coin period at Normal
	admitArenaSoft uint64 // watchdog soft arena threshold, bytes
	admitArenaHard uint64 // watchdog hard arena threshold, bytes

	floodFrac float64 // -kind flood: flood share of the mixed stream
	floodN    uint64  // -kind flood: burst length (0: steady mix)

	// setFlags records which flags were given explicitly, so validate can
	// reject sub-flags whose master switch is off.
	setFlags map[string]bool
}

func main() {
	c := parseFlags(os.Args[1:], os.Stderr)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, c, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "rapd: %v\n", err)
		os.Exit(1)
	}
}

func parseFlags(args []string, errOut io.Writer) cliConfig {
	var c cliConfig
	fs := flag.NewFlagSet("rapd", flag.ExitOnError)
	fs.SetOutput(errOut)
	fs.BoolVar(&c.stdin, "stdin", false, "ingest a binary trace stream from stdin")
	fs.StringVar(&c.bench, "bench", "", "add a generated source: modeled benchmark (gcc gzip mcf parser vortex vpr bzip2)")
	fs.StringVar(&c.kind, "kind", "value", "generated stream kind: code | value | address | zeroload | flood (adversarial key flood mixed over the benchmark's value stream)")
	fs.Uint64Var(&c.genN, "gen-n", 10_000_000, "events for the generated source")
	fs.Uint64Var(&c.seed, "seed", 1, "seed for the generated source")
	fs.IntVar(&c.shards, "shards", 4, "tree shards")
	fs.IntVar(&c.queue, "queue", 64, "bounded queue capacity per shard, in batches")
	fs.IntVar(&c.batch, "batch", 256, "events coalesced per queue entry")
	fs.StringVar(&c.drop, "drop", "block", "overload policy: block (lossless backpressure) | newest (shed + count)")
	fs.Float64Var(&c.epsilon, "epsilon", core.DefaultEpsilon, "error bound")
	fs.IntVar(&c.universe, "universe-bits", core.DefaultUniverseBits, "universe width in bits")
	fs.IntVar(&c.branch, "branch", core.DefaultBranch, "branching factor")
	fs.StringVar(&c.checkpointDir, "checkpoint-dir", "", "directory for crash-safe checkpoints (empty: disabled)")
	fs.DurationVar(&c.checkpointEvery, "checkpoint-every", 10*time.Second, "checkpoint cadence; bounds the crash replay window")
	fs.DurationVar(&c.readTimeout, "read-timeout", 30*time.Second, "per-read stall timeout (0: disabled)")
	fs.IntVar(&c.maxRetries, "max-retries", 5, "consecutive failures before a source is abandoned")
	fs.DurationVar(&c.statsEvery, "stats-every", 10*time.Second, "stats logging cadence (0: disabled)")
	fs.StringVar(&c.admin, "admin", "", "admin HTTP address serving /metrics, /healthz, /readyz, /trace, /vars, /alerts, /statusz, /debug/bundle, pprof (empty: disabled)")
	fs.Uint64Var(&c.traceSample, "trace-sample", 64, "structural trace sampling: record 1 in N split/merge decisions")
	fs.IntVar(&c.traceCap, "trace-cap", 4096, "structural trace ring capacity, in events")
	fs.Uint64Var(&c.spanSample, "span-sample", 100, "request-span head sampling: keep 1 in N traces with all their child spans")
	fs.IntVar(&c.spanCap, "span-cap", 4096, "request-span ring capacity, in spans")
	fs.DurationVar(&c.slowOp, "slow-op", 100*time.Millisecond, "record any span at least this long regardless of sampling (0: disabled)")
	fs.DurationVar(&c.flightEvery, "flight-every", time.Second, "flight recorder scrape cadence")
	fs.IntVar(&c.flightDepth, "flight-depth", 900, "flight recorder history depth, in scrapes (depth x cadence of retained history)")
	fs.StringVar(&c.dumpBundle, "dump-bundle", "", "write a diagnostic bundle to this path when the daemon exits")
	fs.BoolVar(&c.audit, "audit", false, "run the online accuracy self-audit (exact shadow counts vs estimates)")
	fs.DurationVar(&c.auditEvery, "audit-every", 10*time.Second, "audit pass cadence")
	fs.IntVar(&c.auditRanges, "audit-ranges", audit.DefaultMaxRanges, "maximum sampled ranges audited at once")
	fs.IntVar(&c.auditSpanBits, "audit-span-bits", audit.DefaultSpanBits, "minimum audited range width, in bits")
	fs.Uint64Var(&c.auditSample, "audit-sample", audit.DefaultSamplePeriod, "range adoption gate: 1 in N of the hash space seeds a new audited range")
	fs.BoolVar(&c.readSnapshots, "read-snapshots", true, "publish epoch read snapshots so queries (including /v1) answer lock-free from an immutable cut")
	fs.Uint64Var(&c.snapshotEvery, "snapshot-every", 0, "offered events between epoch publishes (0: default 65536)")
	fs.DurationVar(&c.snapshotMaxStale, "snapshot-max-stale", time.Second, "bound on wall-clock epoch staleness for slow or idle streams")
	fs.BoolVar(&c.admit, "admit", false, "run the randomized admission frontend (cold points pay a coin toll; refused mass is ledgered into bounds)")
	fs.Uint64Var(&c.admitPeriod, "admit-period", 8, "admission coin period at Normal (cold point passes with probability 1/period)")
	fs.Uint64Var(&c.admitArenaSoft, "admit-arena-soft", 8<<20, "watchdog arena bytes that escalate admission to Defensive")
	fs.Uint64Var(&c.admitArenaHard, "admit-arena-hard", 32<<20, "watchdog arena bytes that escalate admission to Siege")
	fs.Float64Var(&c.floodFrac, "flood-frac", 1.0, "for -kind flood: flood share of the mixed stream, in [0,1]")
	fs.Uint64Var(&c.floodN, "flood-n", 0, "for -kind flood: front-load a pure-flood burst of this many events, then switch to the benign carrier (0: steady mix)")
	fs.Parse(args)
	c.traces = fs.Args()
	c.setFlags = make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { c.setFlags[f.Name] = true })
	return c
}

// validate rejects flag combinations that would silently do something
// other than what the operator asked for: tuning knobs for a subsystem
// that is switched off, thresholds in the wrong order, and fractions out
// of range.
func (c cliConfig) validate() error {
	if !c.audit {
		for _, name := range []string{"audit-every", "audit-ranges", "audit-span-bits", "audit-sample"} {
			if c.setFlags[name] {
				return fmt.Errorf("-%s requires -audit", name)
			}
		}
	}
	if !c.admit {
		for _, name := range []string{"admit-period", "admit-arena-soft", "admit-arena-hard"} {
			if c.setFlags[name] {
				return fmt.Errorf("-%s requires -admit", name)
			}
		}
	}
	if !c.readSnapshots {
		for _, name := range []string{"snapshot-every", "snapshot-max-stale"} {
			if c.setFlags[name] {
				return fmt.Errorf("-%s requires -read-snapshots", name)
			}
		}
	}
	if c.setFlags["snapshot-max-stale"] && c.snapshotMaxStale <= 0 {
		return fmt.Errorf("-snapshot-max-stale %v: bound must be positive", c.snapshotMaxStale)
	}
	if c.admin == "" {
		for _, name := range []string{"flight-every", "flight-depth", "dump-bundle",
			"span-sample", "span-cap", "slow-op"} {
			if c.setFlags[name] {
				return fmt.Errorf("-%s requires -admin", name)
			}
		}
	}
	if c.setFlags["span-sample"] && c.spanSample < 1 {
		return fmt.Errorf("-span-sample %d: rate must be >= 1", c.spanSample)
	}
	if c.setFlags["span-cap"] && c.spanCap < 1 {
		return fmt.Errorf("-span-cap %d: capacity must be >= 1", c.spanCap)
	}
	if c.setFlags["flight-every"] && c.flightEvery <= 0 {
		return fmt.Errorf("-flight-every %v: cadence must be positive", c.flightEvery)
	}
	if c.setFlags["flight-depth"] && c.flightDepth < 1 {
		return fmt.Errorf("-flight-depth %d: depth must be >= 1", c.flightDepth)
	}
	if c.admit && c.admitPeriod < 1 {
		return fmt.Errorf("-admit-period %d: period must be >= 1", c.admitPeriod)
	}
	if c.admit && c.admitArenaSoft > c.admitArenaHard {
		return fmt.Errorf("-admit-arena-soft %d exceeds -admit-arena-hard %d", c.admitArenaSoft, c.admitArenaHard)
	}
	if c.kind != "flood" {
		for _, name := range []string{"flood-frac", "flood-n"} {
			if c.setFlags[name] {
				return fmt.Errorf("-%s requires -kind flood", name)
			}
		}
	}
	if c.floodFrac < 0 || c.floodFrac > 1 {
		return fmt.Errorf("-flood-frac %v: fraction must be in [0,1]", c.floodFrac)
	}
	return nil
}

func (c cliConfig) options(logger *slog.Logger) (ingest.Options, error) {
	cfg := core.DefaultConfig()
	cfg.Epsilon = c.epsilon
	cfg.UniverseBits = c.universe
	cfg.Branch = c.branch
	opts := ingest.Options{
		Tree:            cfg,
		Shards:          c.shards,
		QueueLen:        c.queue,
		BatchLen:        c.batch,
		ReadTimeout:     c.readTimeout,
		MaxRetries:      c.maxRetries,
		CheckpointDir:   c.checkpointDir,
		CheckpointEvery: c.checkpointEvery,
		Logger:          logger,
	}
	switch c.drop {
	case "block":
		opts.Drop = ingest.Block
	case "newest":
		opts.Drop = ingest.DropNewest
	default:
		return opts, fmt.Errorf("unknown drop policy %q (want block or newest)", c.drop)
	}
	if c.audit {
		opts.Audit = &audit.Options{
			MaxRanges:    c.auditRanges,
			SpanBits:     c.auditSpanBits,
			SamplePeriod: c.auditSample,
			Seed:         c.seed,
		}
		opts.AuditEvery = c.auditEvery
	}
	opts.ReadSnapshots = c.readSnapshots
	opts.SnapshotEvery = c.snapshotEvery
	opts.SnapshotMaxStale = c.snapshotMaxStale
	if c.admit {
		opts.Admission = &admit.Options{
			BasePeriod:     c.admitPeriod,
			ArenaSoftBytes: int64(c.admitArenaSoft),
			ArenaHardBytes: int64(c.admitArenaHard),
			Seed:           c.seed,
		}
	}
	return opts, nil
}

func (c cliConfig) specs(stdin io.Reader) ([]ingest.SourceSpec, error) {
	var specs []ingest.SourceSpec
	for i, path := range c.traces {
		specs = append(specs, ingest.FileSource(fmt.Sprintf("trace%d:%s", i, path), path))
	}
	if c.stdin {
		specs = append(specs, ingest.ReaderSource("stdin", stdin))
	}
	if c.bench != "" {
		b, err := workload.ByName(c.bench)
		if err != nil {
			return nil, err
		}
		kind, n, seed := c.kind, c.genN, c.seed
		floodFrac, floodN := c.floodFrac, c.floodN
		open := func() trace.Source {
			switch kind {
			case "code":
				return trace.Limit(b.Code(seed, n), n)
			case "value":
				return trace.Limit(b.Values(seed, n), n)
			case "zeroload":
				return trace.Limit(b.Loads(seed, n).ZeroLoadAddresses(), n)
			case "address":
				loads := b.Loads(seed, n)
				return trace.Limit(trace.FuncSource(func() (uint64, bool) {
					return loads.Next().Addr, true
				}), n)
			case "flood":
				// Adversarial stream over the benchmark's value stream as
				// the benign carrier: a front-loaded burst when -flood-n is
				// set (the escalate-then-recover scenario), a steady mix at
				// -flood-frac otherwise.
				carrier := b.Values(seed, n)
				if floodN > 0 {
					return trace.Limit(workload.FloodBurst(seed, floodN, carrier), n)
				}
				return trace.Limit(workload.FloodMix(seed, floodFrac, carrier), n)
			}
			return nil
		}
		if open() == nil {
			return nil, fmt.Errorf("unknown kind %q", c.kind)
		}
		specs = append(specs, ingest.GeneratorSource(
			fmt.Sprintf("gen:%s:%s", c.bench, kind), open))
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no sources: pass trace files, -stdin, or -bench")
	}
	return specs, nil
}

func run(ctx context.Context, c cliConfig, out io.Writer) error {
	logger := slog.New(slog.NewTextHandler(out, nil)).With("app", "rapd")
	if err := c.validate(); err != nil {
		return err
	}
	opts, err := c.options(logger)
	if err != nil {
		return err
	}
	specs, err := c.specs(os.Stdin)
	if err != nil {
		return err
	}

	// The observability plane is built only when the admin endpoint is
	// requested, keeping the uninstrumented daemon's hot path hook-free.
	var strace *obs.StructuralTrace
	var tracer *span.Tracer
	var engPtr atomic.Pointer[flight.Engine]
	if c.admin != "" {
		opts.Metrics = obs.NewRegistry()
		obs.RegisterRuntime(opts.Metrics)
		strace = obs.NewStructuralTrace(c.traceSample, c.traceCap)
		opts.StructuralTrace = strace
		// The tracer must exist before Open so ingest threads spans through
		// the pipeline, but its Force hook watches the alert engine, which
		// is only built after Open. The atomic pointer bridges the gap: a
		// nil engine simply means no forced recording yet.
		slow := c.slowOp
		if slow <= 0 {
			slow = -1 // the flag's 0 means off; 0 in span.Options selects the default
		}
		tracer = span.New(span.Options{
			SampleRate:    c.spanSample,
			Capacity:      c.spanCap,
			SlowThreshold: slow,
			Force: func() bool {
				e := engPtr.Load()
				return e != nil && e.AnyFiring()
			},
		})
		tracer.Register(opts.Metrics)
		opts.Tracer = tracer
	}

	in, err := ingest.Open(opts, specs)
	if err != nil {
		return err
	}
	if n := in.N(); n > 0 {
		logger.Info("recovered events from checkpoint", "events", n, "dir", c.checkpointDir)
	}

	var a *admin
	if c.admin != "" {
		// Flight recorder and alert engine: started after Open so the first
		// scrape already sees the full ingest metric surface, though late
		// series are handled either way.
		rec := flight.NewRecorder(opts.Metrics, flight.Options{
			Every: c.flightEvery,
			Depth: c.flightDepth,
		})
		rec.Register(opts.Metrics)
		bcfg := flight.BuiltinConfig{}
		if c.checkpointDir != "" {
			bcfg.CheckpointEvery = c.checkpointEvery
		}
		eng := flight.NewEngine(rec, flight.BuiltinRules(bcfg)...)
		eng.Register(opts.Metrics)
		engPtr.Store(eng) // arm the tracer's force hook
		stopRec := rec.Start()
		defer stopRec()

		aQuery := obs.NewAdaptiveHistogram()
		aQuery.Register(opts.Metrics, "query")

		a = &admin{
			in:      in,
			reg:     opts.Metrics,
			strace:  strace,
			tracer:  tracer,
			aQuery:  aQuery,
			aud:     in.Auditor(),
			rec:     rec,
			eng:     eng,
			effCfg:  c.effective(),
			start:   time.Now(),
			ckEvery: c.checkpointEvery,
		}
		if c.checkpointDir == "" {
			a.ckEvery = 0 // no checkpointing: freshness never gates readiness
		}
		_, stopAdmin, err := serveAdmin(c.admin, a, logger)
		if err != nil {
			return err
		}
		defer stopAdmin()

		// SIGQUIT dumps a diagnostic bundle and keeps the daemon running —
		// the "grab everything now" gesture for a live incident.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		defer signal.Stop(quit)
		go func() {
			for range quit {
				path := filepath.Join(os.TempDir(),
					fmt.Sprintf("rapd-bundle-%s.tar.gz", time.Now().UTC().Format("20060102T150405Z")))
				if err := flight.WriteBundleFile(path, a.bundleConfig()); err != nil {
					logger.Error("bundle dump failed", "err", err)
				} else {
					logger.Info("diagnostic bundle written", "path", path)
				}
			}
		}()
	}

	stopStats := make(chan struct{})
	defer close(stopStats)
	if c.statsEvery > 0 {
		go func() {
			tick := time.NewTicker(c.statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					logStats(logger, in.Stats())
				case <-stopStats:
					return
				}
			}
		}()
	}

	err = in.Run(ctx)
	st := in.Stats()
	logStats(logger, st)
	for _, s := range st.Sources {
		l := logger.With("source", s.Name, "applied", s.Applied,
			"dropped", s.Dropped, "retries", s.Retries)
		if s.Failed {
			l.Error("source failed", "err", s.LastErr)
		} else {
			l.Info("source done")
		}
	}
	if c.dumpBundle != "" && a != nil {
		if werr := flight.WriteBundleFile(c.dumpBundle, a.bundleConfig()); werr != nil {
			logger.Error("bundle dump failed", "path", c.dumpBundle, "err", werr)
			if err == nil {
				err = werr
			}
		} else {
			logger.Info("diagnostic bundle written", "path", c.dumpBundle)
		}
	}
	return err
}

// effective is the resolved configuration as captured in diagnostic
// bundles: what the daemon is actually running with, not the raw argv.
func (c cliConfig) effective() map[string]any {
	eff := map[string]any{
		"traces":           c.traces,
		"stdin":            c.stdin,
		"shards":           c.shards,
		"queue":            c.queue,
		"batch":            c.batch,
		"drop":             c.drop,
		"epsilon":          c.epsilon,
		"universe_bits":    c.universe,
		"branch":           c.branch,
		"checkpoint_dir":   c.checkpointDir,
		"checkpoint_every": c.checkpointEvery.String(),
		"read_timeout":     c.readTimeout.String(),
		"max_retries":      c.maxRetries,
		"admin":            c.admin,
		"trace_sample":     c.traceSample,
		"trace_cap":        c.traceCap,
		"span_sample":      c.spanSample,
		"span_cap":         c.spanCap,
		"slow_op":          c.slowOp.String(),
		"flight_every":     c.flightEvery.String(),
		"flight_depth":     c.flightDepth,
		"audit":            c.audit,
		"admit":            c.admit,
		"read_snapshots":   c.readSnapshots,
	}
	if c.readSnapshots {
		eff["snapshot_every"] = c.snapshotEvery
		eff["snapshot_max_stale"] = c.snapshotMaxStale.String()
	}
	if c.bench != "" {
		eff["bench"], eff["kind"], eff["gen_n"], eff["seed"] = c.bench, c.kind, c.genN, c.seed
	}
	if c.audit {
		eff["audit_every"] = c.auditEvery.String()
		eff["audit_ranges"] = c.auditRanges
		eff["audit_span_bits"] = c.auditSpanBits
		eff["audit_sample"] = c.auditSample
	}
	if c.admit {
		eff["admit_period"] = c.admitPeriod
		eff["admit_arena_soft"] = c.admitArenaSoft
		eff["admit_arena_hard"] = c.admitArenaHard
	}
	return eff
}

func logStats(logger *slog.Logger, st ingest.Stats) {
	args := []any{
		"n", st.N, "nodes", st.Nodes, "mem_bytes", st.MemoryBytes,
		"splits", st.Splits, "merges", st.Merges,
		"dropped", st.Dropped, "sources", len(st.Sources),
	}
	if st.Unadmitted > 0 {
		args = append(args, "unadmitted", st.Unadmitted)
	}
	if st.Checkpoint.Enabled {
		args = append(args,
			"ck_written", st.Checkpoint.Written,
			"ck_failed", st.Checkpoint.Failed,
			"ck_age", st.Checkpoint.Age(time.Now()).Round(time.Millisecond))
	}
	logger.Info("stats", args...)
}
