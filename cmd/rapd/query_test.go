package main

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"rap/internal/ingest"
	"rap/internal/obs"
)

// TestQueryAPIEndToEnd runs a read-snapshot pipeline and exercises the
// /v1 surface like a client would: schema, staleness headers, epoch
// monotonicity across requests, bound consistency, and input validation.
func TestQueryAPIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.2, 8, 1<<20-1)
	vals := make([]uint64, 40_000)
	for i := range vals {
		vals[i] = zipf.Uint64()
	}
	path := filepath.Join(dir, "events.trace")
	writeTrace(t, path, vals)

	c := cliConfig{
		traces: []string{path},
		shards: 2, drop: "block", epsilon: 0.05, universe: 20, branch: 4,
		readTimeout: 5 * time.Second, maxRetries: 2,
		readSnapshots: true, snapshotEvery: 1024, snapshotMaxStale: time.Second,
		audit: true, auditEvery: time.Hour,
		auditRanges: 16, auditSpanBits: 8, auditSample: 16,
	}
	opts, err := c.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	opts.Metrics = obs.NewRegistry()
	specs, err := c.specs(nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.Open(opts, specs)
	if err != nil {
		t.Fatal(err)
	}

	a := &admin{in: in, reg: opts.Metrics, aud: in.Auditor(), start: time.Now()}
	addr, stop, err := serveAdmin("127.0.0.1:0", a, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr

	if err := in.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}

	// /v1/estimate: schema, headers, and the bracket invariant.
	code, body, hdr := get(t, base+"/v1/estimate?lo=0&hi=1048575")
	if code != http.StatusOK {
		t.Fatalf("/v1/estimate = %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/v1/estimate content type %q", ct)
	}
	var est struct {
		Lo       uint64 `json:"lo"`
		Hi       uint64 `json:"hi"`
		Estimate uint64 `json:"estimate"`
		Low      uint64 `json:"low"`
		High     uint64 `json:"high"`
		Epoch    struct {
			Seq        uint64  `json:"seq"`
			CutEvents  uint64  `json:"cut_events"`
			AgeSeconds float64 `json:"age_seconds"`
		} `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(body), &est); err != nil {
		t.Fatalf("/v1/estimate not JSON: %v\n%s", err, body)
	}
	if est.Epoch.Seq == 0 {
		t.Fatalf("epoch seq 0 with -read-snapshots on:\n%s", body)
	}
	if est.Low > est.High || est.Estimate > est.High {
		t.Fatalf("bracket inverted: estimate=%d low=%d high=%d", est.Estimate, est.Low, est.High)
	}
	// Full-universe upper bound is the cut's event count.
	if est.High != est.Epoch.CutEvents {
		t.Fatalf("full-range high = %d, cut events = %d", est.High, est.Epoch.CutEvents)
	}
	hseq, err := strconv.ParseUint(hdr.Get("X-RAP-Epoch-Seq"), 10, 64)
	if err != nil || hseq != est.Epoch.Seq {
		t.Fatalf("X-RAP-Epoch-Seq = %q, body says %d", hdr.Get("X-RAP-Epoch-Seq"), est.Epoch.Seq)
	}
	if hcut := hdr.Get("X-RAP-Epoch-Cut"); hcut != strconv.FormatUint(est.Epoch.CutEvents, 10) {
		t.Fatalf("X-RAP-Epoch-Cut = %q, body says %d", hcut, est.Epoch.CutEvents)
	}

	// /v1/hotranges: the skew must surface and every range respects theta.
	code, body, hdr = get(t, base+"/v1/hotranges?theta=0.01")
	if code != http.StatusOK {
		t.Fatalf("/v1/hotranges = %d: %s", code, body)
	}
	var hot struct {
		Theta  float64 `json:"theta"`
		N      uint64  `json:"n"`
		Ranges []struct {
			Lo     uint64  `json:"lo"`
			Hi     uint64  `json:"hi"`
			Weight uint64  `json:"weight"`
			Frac   float64 `json:"frac"`
		} `json:"ranges"`
		Epoch struct {
			Seq uint64 `json:"seq"`
		} `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(body), &hot); err != nil {
		t.Fatalf("/v1/hotranges not JSON: %v\n%s", err, body)
	}
	if len(hot.Ranges) == 0 {
		t.Fatalf("no hot ranges on a zipf stream:\n%s", body)
	}
	for _, r := range hot.Ranges {
		if r.Lo > r.Hi || r.Frac < hot.Theta {
			t.Fatalf("bad hot range %+v at theta %v", r, hot.Theta)
		}
	}
	if s := hdr.Get("X-RAP-Epoch-Seq"); s != strconv.FormatUint(hot.Epoch.Seq, 10) {
		t.Fatalf("hotranges header seq %q vs body %d", s, hot.Epoch.Seq)
	}
	// Epochs never run backwards between requests.
	if hot.Epoch.Seq < est.Epoch.Seq {
		t.Fatalf("epoch seq went backwards across requests: %d then %d", est.Epoch.Seq, hot.Epoch.Seq)
	}

	// /v1/stats reconciles with the engine.
	code, body, _ = get(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("/v1/stats = %d: %s", code, body)
	}
	var st struct {
		N     uint64 `json:"n"`
		Nodes int    `json:"nodes"`
		Epoch struct {
			Seq       uint64 `json:"seq"`
			CutEvents uint64 `json:"cut_events"`
		} `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/v1/stats not JSON: %v\n%s", err, body)
	}
	if st.N != uint64(len(vals)) {
		t.Fatalf("/v1/stats n = %d after final publish, want %d", st.N, len(vals))
	}
	if st.Nodes == 0 || st.N != st.Epoch.CutEvents {
		t.Fatalf("/v1/stats inconsistent: %s", body)
	}

	// Validation: missing params, inverted range, bad theta.
	for _, u := range []string{
		"/v1/estimate",
		"/v1/estimate?lo=10&hi=2",
		"/v1/estimate?lo=abc&hi=2",
		"/v1/hotranges?theta=0",
		"/v1/hotranges?theta=1.5",
		"/v1/hotranges?theta=x",
	} {
		if code, body, _ := get(t, base+u); code != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400: %s", u, code, body)
		}
	}

	// Hex input is accepted (profile ranges are usually addresses).
	if code, _, _ := get(t, base+"/v1/estimate?lo=0x0&hi=0xfffff"); code != http.StatusOK {
		t.Fatalf("hex range rejected with %d", code)
	}

	// /audit carries the epoch sequence next to the verdict.
	code, body, _ = get(t, base+"/audit")
	if code != http.StatusOK {
		t.Fatalf("/audit = %d: %s", code, body)
	}
	var rep struct {
		Verdict  string `json:"verdict"`
		EpochSeq uint64 `json:"epoch_seq"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/audit not JSON: %v", err)
	}
	if rep.Verdict != "ok" {
		t.Fatalf("/audit verdict %q against epoch-served engine:\n%s", rep.Verdict, body)
	}
	if rep.EpochSeq == 0 {
		t.Fatalf("/audit missing epoch_seq:\n%s", body)
	}

	// /statusz facts expose the epoch sequence for operators.
	found := false
	for _, f := range a.facts() {
		if f.Key == "epoch seq" {
			found = true
			if f.Value == "0" {
				t.Fatalf("statusz epoch seq fact is %q", f.Value)
			}
		}
	}
	if !found {
		t.Fatal("statusz facts missing the epoch seq row")
	}

	// The rap_epoch_* gauges are wired and sane.
	_, body, _ = get(t, base+"/metrics")
	sc := parseProm(t, body)
	if sc.samples["rap_epoch_seq"] < 1 {
		t.Fatalf("rap_epoch_seq = %v, want >= 1", sc.samples["rap_epoch_seq"])
	}
	if got := sc.samples["rap_epoch_cut_events"]; got != float64(len(vals)) {
		t.Fatalf("rap_epoch_cut_events = %v, want %d", got, len(vals))
	}
	if sc.samples["rap_epoch_published_total"] < 1 {
		t.Fatal("rap_epoch_published_total missing")
	}
	if sc.samples["rap_epoch_pinned_readers"] != 0 {
		t.Fatalf("pinned readers leaked: %v", sc.samples["rap_epoch_pinned_readers"])
	}
}

// TestQueryAPIWithoutSnapshots: /v1 still answers when -read-snapshots
// is off, via a one-off detached cut with seq 0.
func TestQueryAPIWithoutSnapshots(t *testing.T) {
	dir := t.TempDir()
	vals := make([]uint64, 5_000)
	for i := range vals {
		vals[i] = uint64(i % 512)
	}
	path := filepath.Join(dir, "events.trace")
	writeTrace(t, path, vals)

	c := cliConfig{
		traces: []string{path},
		shards: 2, drop: "block", epsilon: 0.05, universe: 20, branch: 4,
		readTimeout: 5 * time.Second, maxRetries: 2,
	}
	opts, err := c.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	specs, err := c.specs(nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.Open(opts, specs)
	if err != nil {
		t.Fatal(err)
	}
	a := &admin{in: in, reg: obs.NewRegistry(), start: time.Now()}
	addr, stop, err := serveAdmin("127.0.0.1:0", a, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	if err := in.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	code, body, hdr := get(t, "http://"+addr+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("/v1/stats = %d: %s", code, body)
	}
	if hdr.Get("X-RAP-Epoch-Seq") != "0" {
		t.Fatalf("detached answer should carry seq 0, got %q", hdr.Get("X-RAP-Epoch-Seq"))
	}
	var st struct {
		N uint64 `json:"n"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.N != uint64(len(vals)) {
		t.Fatalf("/v1/stats n = %d, want %d", st.N, len(vals))
	}
}
