package main

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"rap/internal/admit"
	"rap/internal/core"
	"rap/internal/span"
)

// The versioned query API: /v1/estimate, /v1/hotranges, and /v1/stats
// serve profile answers from the engine's epoch read path. Each request
// pins one epoch (Reader), answers every sub-query from it, and releases
// it — multi-field responses are internally consistent even while ingest
// runs at full rate. Responses embed the epoch stanza and carry it in
// the X-RAP-Epoch-Seq / X-RAP-Epoch-Cut headers so callers can reason
// about staleness and monotonicity without parsing bodies. When the
// admission watchdog is at Siege the query plane sheds load with 429s:
// under a structure attack every spare cycle belongs to the data plane.
//
// Each request is traced: an inbound W3C traceparent header continues the
// caller's trace, the response is stamped with the handling span's
// identity, and acquire/compute/encode child spans partition the request
// so /spans shows exactly where a slow query spent its time. Request
// latency also feeds the adaptive "query" stage profile on /profilez.

// epochInfo is the staleness stanza every /v1 response embeds: which
// published cut the answer describes and how old it is.
type epochInfo struct {
	Seq        uint64  `json:"seq"`
	CutEvents  uint64  `json:"cut_events"`
	AgeSeconds float64 `json:"age_seconds"`
}

func epochInfoOf(e *core.Epoch) epochInfo {
	return epochInfo{
		Seq:        e.Seq(),
		CutEvents:  e.CutN(),
		AgeSeconds: time.Since(e.PublishedAt()).Seconds(),
	}
}

type estimateResponse struct {
	Lo       uint64    `json:"lo"`
	Hi       uint64    `json:"hi"`
	Estimate uint64    `json:"estimate"`
	Low      uint64    `json:"low"`
	High     uint64    `json:"high"`
	Epoch    epochInfo `json:"epoch"`
}

type hotRangeJSON struct {
	Lo     uint64  `json:"lo"`
	Hi     uint64  `json:"hi"`
	Weight uint64  `json:"weight"`
	Frac   float64 `json:"frac"`
	Depth  int     `json:"depth"`
}

type hotRangesResponse struct {
	Theta  float64        `json:"theta"`
	N      uint64         `json:"n"`
	Ranges []hotRangeJSON `json:"ranges"`
	Epoch  epochInfo      `json:"epoch"`
}

type statsResponse struct {
	N            uint64    `json:"n"`
	UnadmittedN  uint64    `json:"unadmitted_n"`
	Nodes        int       `json:"nodes"`
	MaxNodes     int       `json:"max_nodes"`
	MemoryBytes  int       `json:"memory_bytes"`
	ArenaBytes   int       `json:"arena_bytes"`
	Splits       uint64    `json:"splits"`
	Merges       uint64    `json:"merges"`
	MergeBatches uint64    `json:"merge_batches"`
	Height       int       `json:"height"`
	Epoch        epochInfo `json:"epoch"`
}

// registerQueryAPI mounts the /v1 endpoints on the admin mux.
func (a *admin) registerQueryAPI(mux *http.ServeMux) {
	mux.HandleFunc("/v1/estimate", a.v1Estimate)
	mux.HandleFunc("/v1/hotranges", a.v1HotRanges)
	mux.HandleFunc("/v1/stats", a.v1Stats)
}

// startQuerySpan begins the request span for one /v1 call. An inbound W3C
// traceparent header continues the caller's trace (inheriting its sampling
// decision); otherwise a fresh root is started. The span's identity is
// stamped back on the response headers immediately, so every outcome —
// 200, 400, 429 — carries the traceparent the caller can correlate on.
func (a *admin) startQuerySpan(w http.ResponseWriter, r *http.Request, name string) *span.Span {
	if a.tracer == nil {
		return nil
	}
	var sp *span.Span
	if ctx, ok := span.FromRequest(r); ok {
		sp = a.tracer.StartChild(ctx, name)
	} else {
		sp = a.tracer.StartRoot(name)
	}
	span.Inject(w.Header(), sp.Context())
	return sp
}

// finishQuerySpan ends the request span and feeds the adaptive "query"
// stage profile, attaching a span exemplar when the trace is kept.
func (a *admin) finishQuerySpan(sp *span.Span, start time.Time) {
	sp.End()
	if a.aQuery == nil {
		return
	}
	d := time.Since(start)
	if sp.Sampled() {
		c := sp.Context()
		a.aQuery.ObserveExemplar(d, c.Trace.String(), c.Span.String())
	} else {
		a.aQuery.Observe(d)
	}
}

// acquireEpoch pins a consistent epoch for one request, enforcing the
// overload gate first. It returns nil after writing the error response;
// on success the caller must Release the epoch.
func (a *admin) acquireEpoch(w http.ResponseWriter) *core.Epoch {
	if adm := a.in.Admission(); adm != nil && adm.Level() >= admit.Siege {
		w.Header().Set("Retry-After", "1")
		writeStatus(w, http.StatusTooManyRequests, map[string]any{
			"status": "overloaded",
			"reason": "admission watchdog at siege; query plane shedding load",
		})
		return nil
	}
	return a.in.Engine().Reader()
}

// writeEpochJSON sets the staleness headers from the answering epoch and
// encodes body as JSON.
func writeEpochJSON(w http.ResponseWriter, e *core.Epoch, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-RAP-Epoch-Seq", strconv.FormatUint(e.Seq(), 10))
	w.Header().Set("X-RAP-Epoch-Cut", strconv.FormatUint(e.CutN(), 10))
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// queryU64 parses a required uint64 query parameter; accepts decimal or
// 0x-prefixed hex (profile ranges are usually addresses).
func queryU64(r *http.Request, name string) (uint64, bool, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, false, nil
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, true, err
	}
	return v, true, nil
}

func (a *admin) v1Estimate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sp := a.startQuerySpan(w, r, "v1.estimate")
	defer a.finishQuerySpan(sp, start)
	lo, okLo, errLo := queryU64(r, "lo")
	hi, okHi, errHi := queryU64(r, "hi")
	if errLo != nil || errHi != nil || !okLo || !okHi || lo > hi {
		sp.SetAttr("outcome", "bad_request")
		writeStatus(w, http.StatusBadRequest, map[string]any{
			"status": "bad_request",
			"reason": "need lo and hi query params (uint64, decimal or 0x hex) with lo <= hi",
		})
		return
	}
	acq := a.tracer.StartChild(sp.Context(), "acquire")
	e := a.acquireEpoch(w)
	acq.End()
	if e == nil {
		sp.SetAttr("outcome", "shed")
		return
	}
	defer e.Release()
	if sp.Sampled() {
		sp.SetAttr("lo", strconv.FormatUint(lo, 10))
		sp.SetAttr("hi", strconv.FormatUint(hi, 10))
		sp.SetAttr("epoch_seq", strconv.FormatUint(e.Seq(), 10))
	}
	est := a.tracer.StartChild(sp.Context(), "estimate")
	low, high := e.EstimateBounds(lo, hi)
	point := e.Estimate(lo, hi)
	est.End()
	enc := a.tracer.StartChild(sp.Context(), "encode")
	writeEpochJSON(w, e, estimateResponse{
		Lo: lo, Hi: hi,
		Estimate: point,
		Low:      low,
		High:     high,
		Epoch:    epochInfoOf(e),
	})
	enc.End()
}

func (a *admin) v1HotRanges(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sp := a.startQuerySpan(w, r, "v1.hotranges")
	defer a.finishQuerySpan(sp, start)
	theta := 0.01
	if s := r.URL.Query().Get("theta"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v > 1 {
			sp.SetAttr("outcome", "bad_request")
			writeStatus(w, http.StatusBadRequest, map[string]any{
				"status": "bad_request",
				"reason": "theta must be a float in (0, 1]",
			})
			return
		}
		theta = v
	}
	acq := a.tracer.StartChild(sp.Context(), "acquire")
	e := a.acquireEpoch(w)
	acq.End()
	if e == nil {
		sp.SetAttr("outcome", "shed")
		return
	}
	defer e.Release()
	hr := a.tracer.StartChild(sp.Context(), "hotranges")
	hot := e.HotRanges(theta)
	hr.End()
	if sp.Sampled() {
		sp.SetAttr("theta", strconv.FormatFloat(theta, 'g', -1, 64))
		sp.SetAttr("ranges", strconv.Itoa(len(hot)))
	}
	ranges := make([]hotRangeJSON, len(hot))
	for i, h := range hot {
		ranges[i] = hotRangeJSON{Lo: h.Lo, Hi: h.Hi, Weight: h.Weight, Frac: h.Frac, Depth: h.Depth}
	}
	enc := a.tracer.StartChild(sp.Context(), "encode")
	writeEpochJSON(w, e, hotRangesResponse{
		Theta: theta, N: e.N(), Ranges: ranges, Epoch: epochInfoOf(e),
	})
	enc.End()
}

func (a *admin) v1Stats(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sp := a.startQuerySpan(w, r, "v1.stats")
	defer a.finishQuerySpan(sp, start)
	acq := a.tracer.StartChild(sp.Context(), "acquire")
	e := a.acquireEpoch(w)
	acq.End()
	if e == nil {
		sp.SetAttr("outcome", "shed")
		return
	}
	defer e.Release()
	st := e.Stats()
	enc := a.tracer.StartChild(sp.Context(), "encode")
	defer enc.End()
	writeEpochJSON(w, e, statsResponse{
		N:            st.N,
		UnadmittedN:  st.UnadmittedN,
		Nodes:        st.Nodes,
		MaxNodes:     st.MaxNodes,
		MemoryBytes:  st.MemoryBytes,
		ArenaBytes:   st.ArenaBytes,
		Splits:       st.Splits,
		Merges:       st.Merges,
		MergeBatches: st.MergeBatches,
		Height:       st.Height,
		Epoch:        epochInfoOf(e),
	})
}
