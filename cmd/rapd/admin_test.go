package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"rap/internal/ingest"
	"rap/internal/obs"
	"rap/internal/trace"
)

// promScrape is one parsed Prometheus text exposition: sample name
// (including labels) -> value, plus the TYPE declared for each family.
type promScrape struct {
	samples map[string]float64
	types   map[string]string
}

// parseProm parses and format-checks a text exposition: every line must
// be a comment or a `name{labels} value` sample, and every sample must
// belong to a family with a preceding # TYPE line.
func parseProm(t *testing.T, body string) promScrape {
	t.Helper()
	sc := promScrape{samples: map[string]float64{}, types: map[string]string{}}
	scanner := bufio.NewScanner(strings.NewReader(body))
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			sc.types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line[:sp]
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample %q has non-numeric value: %v", line, err)
		}
		family := name
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		family = strings.TrimSuffix(family, "_bucket")
		family = strings.TrimSuffix(family, "_sum")
		family = strings.TrimSuffix(family, "_count")
		if _, ok := sc.types[family]; !ok {
			t.Fatalf("sample %q precedes its # TYPE declaration", line)
		}
		sc.samples[name] = v
	}
	return sc
}

// sumFamily adds up every series of one family (label sets vary by shard
// or source).
func (sc promScrape) sumFamily(name string) float64 {
	var total float64
	for k, v := range sc.samples {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestAdminEndToEnd runs a full checkpointed pipeline with the admin
// server attached and scrapes every endpoint like a monitoring stack
// would: exposition format, metric values reconciled against Stats, and
// counter monotonicity across scrapes.
func TestAdminEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(99))
	zipf := rand.NewZipf(rng, 1.2, 8, 1<<20-1)
	vals := make([]uint64, 30_000)
	for i := range vals {
		vals[i] = zipf.Uint64()
	}
	path := filepath.Join(dir, "events.trace")
	writeTrace(t, path, vals)

	c := cliConfig{
		traces:          []string{path},
		shards:          2,
		drop:            "block",
		epsilon:         0.05,
		universe:        20,
		branch:          4,
		checkpointDir:   filepath.Join(dir, "ck"),
		checkpointEvery: time.Hour,
		readTimeout:     5 * time.Second,
		maxRetries:      2,
	}
	opts, err := c.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	strace := obs.NewStructuralTrace(1, 1<<14)
	opts.Metrics = reg
	opts.StructuralTrace = strace
	specs, err := c.specs(nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.Open(opts, specs)
	if err != nil {
		t.Fatal(err)
	}

	a := &admin{in: in, reg: reg, strace: strace, ckEvery: time.Hour, start: time.Now()}
	addr, stop, err := serveAdmin("127.0.0.1:0", a, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr

	// Readiness and liveness hold before the pipeline even runs.
	if code, body, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d: %s", code, body)
	}
	if code, body, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d before run: %s", code, body)
	}

	if err := in.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	st := in.Stats()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	s1 := parseProm(t, body)
	if kind := s1.types[obs.MetricTreeSplits]; kind != "counter" {
		t.Fatalf("%s typed %q, want counter", obs.MetricTreeSplits, kind)
	}
	if got := s1.sumFamily(obs.MetricTreeSplits); got != float64(st.Splits) || got == 0 {
		t.Fatalf("splits over all shards = %v, stats say %d", got, st.Splits)
	}
	if got := s1.sumFamily("rap_ingest_applied_total"); got != float64(len(vals)) {
		t.Fatalf("applied = %v, want %d", got, len(vals))
	}
	if got := s1.samples["rap_checkpoint_written_total"]; got < 1 {
		t.Fatalf("checkpoint written = %v, want >= 1", got)
	}
	if got := s1.samples[`rap_tree_merge_batch_seconds_bucket{shard="0",le="+Inf"}`] +
		s1.samples[`rap_tree_merge_batch_seconds_bucket{shard="1",le="+Inf"}`]; got != float64(st.MergeBatches) {
		t.Fatalf("merge batch +Inf buckets = %v, stats say %d", got, st.MergeBatches)
	}

	// Counters must be monotone across scrapes.
	_, body2, _ := get(t, base+"/metrics")
	s2 := parseProm(t, body2)
	for name, v1 := range s1.samples {
		if s2.types[strings.SplitN(name, "{", 2)[0]] != "counter" {
			continue
		}
		if v2 := s2.samples[name]; v2 < v1 {
			t.Fatalf("counter %s went backwards: %v -> %v", name, v1, v2)
		}
	}

	// JSON exposition parses and carries the same families.
	code, body, hdr = get(t, base+"/metrics.json")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/metrics.json = %d, type %q", code, hdr.Get("Content-Type"))
	}
	var doc struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	names := map[string]bool{}
	for _, m := range doc.Metrics {
		names[m.Name] = true
	}
	if !names[obs.MetricTreeSplits] || !names["rap_checkpoint_written_total"] {
		t.Fatalf("JSON exposition families %v missing expected names", names)
	}

	// Structural trace serves JSONL split/merge decisions.
	code, body, _ = get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d", code)
	}
	lines := 0
	scanner := bufio.NewScanner(strings.NewReader(body))
	for scanner.Scan() {
		var ev obs.StructuralEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("trace line not JSON: %v: %s", err, scanner.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("trace endpoint returned no events")
	}

	if code, _, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", code)
	}
	if code, body, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d after clean run: %s", code, body)
	}
}

// TestAuditEndpoint runs an audited pipeline and scrapes /audit like an
// operator would: the JSON report must decode, carry per-range truth
// beside the tree's answers, and show a clean verdict. Without -audit the
// endpoint answers 404 so probes can tell "disabled" from "broken".
func TestAuditEndpoint(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 8, 1<<20-1)
	vals := make([]uint64, 40_000)
	for i := range vals {
		vals[i] = zipf.Uint64()
	}
	path := filepath.Join(dir, "events.trace")
	writeTrace(t, path, vals)

	c := cliConfig{
		traces: []string{path},
		shards: 2, drop: "block", epsilon: 0.05, universe: 20, branch: 4,
		readTimeout: 5 * time.Second, maxRetries: 2,
		audit: true, auditEvery: time.Hour,
		auditRanges: 16, auditSpanBits: 8, auditSample: 16,
	}
	opts, err := c.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	opts.Metrics = obs.NewRegistry()
	specs, err := c.specs(nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.Open(opts, specs)
	if err != nil {
		t.Fatal(err)
	}
	if in.Auditor() == nil {
		t.Fatal("-audit did not wire an auditor")
	}

	a := &admin{in: in, reg: opts.Metrics, aud: in.Auditor(), start: time.Now()}
	addr, stop, err := serveAdmin("127.0.0.1:0", a, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr

	if err := in.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}

	code, body, hdr := get(t, base+"/audit")
	if code != http.StatusOK {
		t.Fatalf("/audit = %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/audit content type %q", ct)
	}
	var rep struct {
		N               uint64  `json:"n"`
		Budget          float64 `json:"budget"`
		Verdict         string  `json:"verdict"`
		ViolationsTotal uint64  `json:"violations_total"`
		WorstRatio      float64 `json:"worst_ratio"`
		Ranges          []struct {
			Kind     string `json:"kind"`
			Truth    uint64 `json:"truth"`
			Estimate uint64 `json:"estimate"`
			High     uint64 `json:"high"`
		} `json:"ranges"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/audit not JSON: %v\n%s", err, body)
	}
	if rep.Verdict != "ok" || rep.ViolationsTotal != 0 {
		t.Fatalf("/audit verdict %q, %d violations:\n%s", rep.Verdict, rep.ViolationsTotal, body)
	}
	if rep.N != uint64(len(vals)) {
		t.Fatalf("/audit n = %d, want %d", rep.N, len(vals))
	}
	if len(rep.Ranges) < 2 {
		t.Fatalf("/audit reports %d ranges; sampling never adopted:\n%s", len(rep.Ranges), body)
	}
	for _, r := range rep.Ranges {
		if r.Truth > r.High {
			t.Fatalf("range truth %d above upper bound %d:\n%s", r.Truth, r.High, body)
		}
	}

	// The same surface without an auditor: 404, clearly labeled.
	bare := &admin{in: in, reg: opts.Metrics, start: time.Now()}
	addr2, stop2, err := serveAdmin("127.0.0.1:0", bare, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	if code, body, _ := get(t, "http://"+addr2+"/audit"); code != http.StatusNotFound ||
		!strings.Contains(body, "disabled") {
		t.Fatalf("/audit without auditor = %d: %s", code, body)
	}
}

// TestReadyzFlipsWhenAllSourcesFail checks the readiness contract: a
// pipeline whose every source has been permanently abandoned reports 503.
func TestReadyzFlipsWhenAllSourcesFail(t *testing.T) {
	c := cliConfig{
		shards: 1, drop: "block", epsilon: 0.05, universe: 20, branch: 4,
		maxRetries: 1,
	}
	opts, err := c.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	opts.BackoffBase = time.Millisecond
	opts.BackoffMax = time.Millisecond
	dead := ingest.SourceSpec{
		Name: "dead",
		Open: func() (trace.Source, error) { return nil, errors.New("no such device") },
	}
	in, err := ingest.Open(opts, []ingest.SourceSpec{dead})
	if err != nil {
		t.Fatal(err)
	}
	a := &admin{in: in, reg: obs.NewRegistry(), start: time.Now()}
	addr, stop, err := serveAdmin("127.0.0.1:0", a, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr

	if code, body, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d before failure: %s", code, body)
	}
	if err := in.Run(context.Background()); err == nil {
		t.Fatal("pipeline with a dead source reported success")
	}
	code, body, _ := get(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d after total source failure, want 503: %s", code, body)
	}
	if !strings.Contains(body, "all sources permanently failed") {
		t.Fatalf("unreadiness reason missing: %s", body)
	}
	// Liveness is about the process, not the pipeline: still 200.
	if code, _, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d after source failure", code)
	}
}

// TestReadyGatesOnCheckpointFreshness exercises the freshness rule
// directly: with checkpointing enabled and none written, readiness is
// judged against process start and three cadences.
func TestReadyGatesOnCheckpointFreshness(t *testing.T) {
	dir := t.TempDir()
	c := cliConfig{
		shards: 1, drop: "block", epsilon: 0.05, universe: 20, branch: 4,
		checkpointDir: dir, checkpointEvery: time.Minute,
	}
	opts, err := c.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.Open(opts, []ingest.SourceSpec{
		ingest.GeneratorSource("gen", func() trace.Source {
			return trace.Limit(trace.FuncSource(func() (uint64, bool) { return 1, true }), 1)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	fresh := &admin{in: in, ckEvery: time.Minute, start: time.Now()}
	if ok, reason := fresh.ready(time.Now()); !ok {
		t.Fatalf("fresh daemon unready: %s", reason)
	}
	stale := &admin{in: in, ckEvery: time.Minute, start: time.Now().Add(-time.Hour)}
	ok, reason := stale.ready(time.Now())
	if ok {
		t.Fatal("daemon an hour past its checkpoint cadence reported ready")
	}
	if !strings.Contains(reason, "no checkpoint for") {
		t.Fatalf("stale reason %q", reason)
	}
}
