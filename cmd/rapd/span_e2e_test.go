package main

import (
	"bufio"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rap/internal/ingest"
	"rap/internal/obs"
	"rap/internal/span"
)

// spanRow decodes one /spans JSONL line.
type spanRow struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id"`
	Name     string `json:"name"`
	Attrs    []struct {
		K string `json:"k"`
		V string `json:"v"`
	} `json:"attrs"`
}

func getSpans(t *testing.T, url string) []spanRow {
	t.Helper()
	code, body, _ := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("%s = %d: %s", url, code, body)
	}
	var rows []spanRow
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		if sc.Text() == "" {
			continue
		}
		var r spanRow
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("%s row not JSON: %v\n%s", url, err, sc.Text())
		}
		rows = append(rows, r)
	}
	return rows
}

// ladderBucketIndex maps a latency in seconds onto the fixed octave
// ladder, for "within one ladder bucket" agreement checks.
func ladderBucketIndex(v float64) int {
	for i, b := range obs.LatencyBuckets() {
		if v <= b {
			return i
		}
	}
	return len(obs.LatencyBuckets())
}

// profilezDoc decodes /profilez.
type profilezDoc struct {
	Theta  float64 `json:"theta"`
	Stages map[string]struct {
		Count      uint64   `json:"count"`
		SumSeconds float64  `json:"sum_seconds"`
		TreeNodes  int      `json:"tree_nodes"`
		P50        *float64 `json:"p50_seconds"`
		P90        *float64 `json:"p90_seconds"`
		P99        *float64 `json:"p99_seconds"`
		HotRanges  []struct {
			LoSeconds float64 `json:"lo_seconds"`
			HiSeconds float64 `json:"hi_seconds"`
			Frac      float64 `json:"frac"`
			Exemplars []struct {
				TraceID string `json:"trace_id"`
				SpanID  string `json:"span_id"`
			} `json:"exemplars"`
		} `json:"hot_ranges"`
		Ladder *struct {
			Series string   `json:"series"`
			Count  uint64   `json:"count"`
			P50    *float64 `json:"p50_seconds"`
			P99    *float64 `json:"p99_seconds"`
		} `json:"ladder"`
	} `json:"stages"`
}

// TestSpanTracingEndToEnd is the tracing acceptance story: a pipeline
// run with sampling at 1-in-1 must link every stage of a batch's life
// under one trace, honor and echo a client traceparent on /v1, agree
// between adaptive and fixed-ladder quantiles on /profilez, and export
// the rap_span_* / rap_http_* metric surface.
func TestSpanTracingEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(17))
	zipf := rand.NewZipf(rng, 1.2, 8, 1<<20-1)
	vals := make([]uint64, 40_000)
	for i := range vals {
		vals[i] = zipf.Uint64()
	}
	path := filepath.Join(dir, "events.trace")
	writeTrace(t, path, vals)

	c := cliConfig{
		traces: []string{path},
		shards: 2, drop: "block", epsilon: 0.05, universe: 20, branch: 4,
		readTimeout: 5 * time.Second, maxRetries: 2,
		readSnapshots: true, snapshotEvery: 4096, snapshotMaxStale: time.Second,
		checkpointDir: filepath.Join(dir, "ck"), checkpointEvery: time.Hour,
	}
	opts, err := c.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	opts.Metrics = reg
	// Sample every trace: the test asserts structure, not sampling math
	// (span package tests pin the rates).
	tracer := span.New(span.Options{SampleRate: 1, Capacity: 1 << 14, SlowThreshold: -1})
	tracer.Register(reg)
	opts.Tracer = tracer
	specs, err := c.specs(nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.Open(opts, specs)
	if err != nil {
		t.Fatal(err)
	}
	aQuery := obs.NewAdaptiveHistogram()
	aQuery.Register(reg, "query")
	a := &admin{in: in, reg: reg, tracer: tracer, aQuery: aQuery, start: time.Now()}
	addr, stop, err := serveAdmin("127.0.0.1:0", a, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr

	if err := in.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}

	// --- Client traceparent round trip through /v1/estimate. ---
	const clientTrace = "0af7651916cd43dd8448eb211c80319c"
	const clientSpan = "b7ad6b7169203331"
	req, err := http.NewRequest("GET", base+"/v1/estimate?lo=0&hi=1048575", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(span.Header, "00-"+clientTrace+"-"+clientSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/estimate with traceparent = %d", resp.StatusCode)
	}
	echo, err := span.Decode(resp.Header.Get(span.Header))
	if err != nil {
		t.Fatalf("response traceparent %q: %v", resp.Header.Get(span.Header), err)
	}
	if echo.Trace.String() != clientTrace {
		t.Fatalf("response continued trace %s, client sent %s", echo.Trace, clientTrace)
	}
	if echo.Span.String() == clientSpan {
		t.Fatal("response echoed the client's span id instead of the server span's")
	}
	if !echo.Sampled {
		t.Fatal("client's sampled flag dropped on the response")
	}

	// The server span and its stage children are in /spans under the
	// client's trace, parented under the client's span.
	rows := getSpans(t, base+"/spans?trace="+clientTrace)
	var root *spanRow
	children := map[string]bool{}
	for i := range rows {
		switch rows[i].Name {
		case "v1.estimate":
			root = &rows[i]
		}
	}
	if root == nil {
		t.Fatalf("no v1.estimate span under the client trace: %+v", rows)
	}
	if root.ParentID != clientSpan {
		t.Fatalf("server span parent = %q, want the client span %q", root.ParentID, clientSpan)
	}
	if root.SpanID != echo.Span.String() {
		t.Fatalf("response traceparent span %s is not the recorded server span %s", echo.Span, root.SpanID)
	}
	for _, r := range rows {
		if r.ParentID == root.SpanID {
			children[r.Name] = true
		}
	}
	for _, want := range []string{"acquire", "estimate", "encode"} {
		if !children[want] {
			t.Errorf("stage child %q missing under the query span (have %v)", want, children)
		}
	}

	// --- Every ingest pipeline stage linked under one trace. ---
	batchRoots := getSpans(t, base+"/spans?name=ingest.batch&limit=3")
	if len(batchRoots) == 0 {
		t.Fatal("no ingest.batch root spans recorded at 1-in-1 sampling")
	}
	br := batchRoots[len(batchRoots)-1]
	stages := map[string]string{} // name -> parent
	for _, r := range getSpans(t, base+"/spans?trace="+br.TraceID) {
		if r.SpanID != br.SpanID {
			stages[r.Name] = r.ParentID
		}
	}
	for _, want := range []string{"queue_wait", "apply"} {
		if stages[want] != br.SpanID {
			t.Errorf("batch trace %s: stage %q parent = %q, want root %s (stages %v)",
				br.TraceID, want, stages[want], br.SpanID, stages)
		}
	}
	// Epoch publishes happened (40k events, publish every 4096) and were
	// traced as children of the apply that triggered them.
	if pubs := getSpans(t, base+"/spans?name=epoch_publish&limit=1"); len(pubs) == 0 {
		t.Error("no epoch_publish spans recorded across 9+ publishes")
	}
	// The final checkpoint's cut and write stages share its trace.
	ck := getSpans(t, base+"/spans?name=checkpoint&limit=1")
	if len(ck) == 0 {
		t.Fatal("no checkpoint span from the shutdown checkpoint")
	}
	ckStages := map[string]bool{}
	for _, r := range getSpans(t, base+"/spans?trace="+ck[0].TraceID) {
		if r.ParentID == ck[0].SpanID {
			ckStages[r.Name] = true
		}
	}
	if !ckStages["cut"] || !ckStages["write"] {
		t.Errorf("checkpoint trace stages = %v, want cut and write", ckStages)
	}

	// --- /profilez: adaptive profiles agree with the fixed ladder. ---
	// Drive enough queries that the "query" stage has a real distribution:
	// adaptive quantile resolution is governed by the mass stuck at coarse
	// nodes while the tree is shallow, so the octave-agreement assertion
	// below needs a few hundred samples, not a handful.
	for i := 0; i < 300; i++ {
		if code, body, _ := get(t, base+"/v1/estimate?lo=0&hi=1048575"); code != http.StatusOK {
			t.Fatalf("query %d = %d: %s", i, code, body)
		}
	}
	code, body, _ := get(t, base+"/profilez?theta=0.02")
	if code != http.StatusOK {
		t.Fatalf("/profilez = %d: %s", code, body)
	}
	var doc profilezDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/profilez not JSON: %v\n%s", err, body)
	}
	if doc.Theta != 0.02 {
		t.Fatalf("theta = %v", doc.Theta)
	}
	for _, stage := range []string{"queue_wait", "apply", "query"} {
		st, ok := doc.Stages[stage]
		if !ok {
			t.Fatalf("/profilez missing stage %q:\n%s", stage, body)
		}
		if st.Count == 0 || st.TreeNodes == 0 {
			t.Errorf("stage %q empty: count=%d nodes=%d", stage, st.Count, st.TreeNodes)
		}
		if st.P50 == nil || st.P99 == nil {
			t.Errorf("stage %q missing quantiles", stage)
		}
		if len(st.HotRanges) == 0 {
			t.Errorf("stage %q has no hot ranges at theta=0.02", stage)
		}
	}
	// Adaptive vs ladder, within one octave bucket, on the stages whose
	// latencies are comfortably above the ladder floor.
	for _, stage := range []string{"apply", "query"} {
		st := doc.Stages[stage]
		if st.Ladder == nil || st.Ladder.P50 == nil || st.Ladder.P99 == nil {
			t.Fatalf("stage %q has no ladder comparison:\n%s", stage, body)
		}
		if st.Ladder.Count != st.Count {
			t.Errorf("stage %q: ladder count %d vs adaptive %d", stage, st.Ladder.Count, st.Count)
		}
		for _, q := range []struct {
			name             string
			adaptive, ladder *float64
		}{
			{"p50", st.P50, st.Ladder.P50},
			{"p99", st.P99, st.Ladder.P99},
		} {
			ai, li := ladderBucketIndex(*q.adaptive), ladderBucketIndex(*q.ladder)
			if d := ai - li; d < -1 || d > 1 {
				t.Errorf("stage %q %s: adaptive %v (bucket %d) vs ladder %v (bucket %d) — more than one bucket apart",
					stage, q.name, *q.adaptive, ai, *q.ladder, li)
			}
		}
	}
	// The query stage's hot ranges carry span exemplars pointing at
	// recorded traces (sampling is 1-in-1, so exemplars are guaranteed).
	sawExemplar := false
	for _, hr := range doc.Stages["query"].HotRanges {
		for _, ex := range hr.Exemplars {
			if ex.TraceID != "" {
				sawExemplar = true
				if found := getSpans(t, base+"/spans?trace="+ex.TraceID); len(found) == 0 {
					t.Errorf("exemplar trace %s not in /spans", ex.TraceID)
				}
			}
		}
	}
	if !sawExemplar {
		t.Error("query hot ranges carry no span exemplars")
	}

	// --- Metric surface: span self-metrics and per-endpoint HTTP metrics. ---
	_, metrics, _ := get(t, base+"/metrics")
	sc := parseProm(t, metrics)
	if sc.sumFamily("rap_span_recorded_total") == 0 {
		t.Error("rap_span_recorded_total = 0")
	}
	if sc.sumFamily("rap_span_started_total") < sc.sumFamily("rap_span_recorded_total") {
		t.Error("started < recorded")
	}
	if sc.samples[`rap_profile_observations_total{stage="apply"}`] == 0 {
		t.Error("rap_profile_observations_total{stage=apply} = 0")
	}
	httpOK := false
	for k, v := range sc.samples {
		if strings.HasPrefix(k, "rap_http_requests_total{") &&
			strings.Contains(k, `path="/v1/estimate"`) && strings.Contains(k, `code="200"`) && v >= 1 {
			httpOK = true
		}
	}
	if !httpOK {
		t.Error("rap_http_requests_total{path=/v1/estimate,code=200} missing")
	}
	if sc.sumFamily("rap_http_request_seconds_count") == 0 {
		t.Error("rap_http_request_seconds never observed")
	}
}

// TestSpanSlowOpSurfaces forces the slow path: a tiny slow threshold
// promotes query spans into the slow-op log, /statusz renders them with
// trace links, and /spans?slow=1 filters to them.
func TestSpanSlowOpSurfaces(t *testing.T) {
	dir := t.TempDir()
	vals := make([]uint64, 2_000)
	for i := range vals {
		vals[i] = uint64(i % 512)
	}
	path := filepath.Join(dir, "events.trace")
	writeTrace(t, path, vals)

	c := cliConfig{
		traces: []string{path},
		shards: 1, drop: "block", epsilon: 0.05, universe: 20, branch: 4,
		readTimeout: 5 * time.Second, maxRetries: 2,
	}
	opts, err := c.options(discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	opts.Metrics = reg
	// Sampling effectively off; only slow promotion records anything.
	tracer := span.New(span.Options{SampleRate: 1 << 60, SlowThreshold: time.Nanosecond})
	tracer.Register(reg)
	opts.Tracer = tracer
	specs, err := c.specs(nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.Open(opts, specs)
	if err != nil {
		t.Fatal(err)
	}
	a := &admin{in: in, reg: reg, tracer: tracer, start: time.Now()}
	addr, stop, err := serveAdmin("127.0.0.1:0", a, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr
	if err := in.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}

	slow := getSpans(t, base+"/spans?slow=1")
	if len(slow) == 0 {
		t.Fatal("no slow-promoted spans at a 1ns threshold")
	}
	if ops := a.slowOps(); len(ops) == 0 {
		t.Fatal("slow-op log empty")
	} else if ops[0].TraceID == "" || ops[0].Duration <= 0 {
		t.Fatalf("slow op malformed: %+v", ops[0])
	}
	if sc := parseProm(t, func() string { _, m, _ := get(t, base+"/metrics"); return m }()); sc.sumFamily("rap_span_slow_total") == 0 {
		t.Error("rap_span_slow_total = 0 with everything slow-promoted")
	}
}
