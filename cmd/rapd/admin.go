package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"rap/internal/audit"
	"rap/internal/flight"
	"rap/internal/ingest"
	"rap/internal/obs"
	"rap/internal/span"
)

// admin is the opt-in operator surface of rapd: metrics exposition,
// liveness/readiness, the structural trace, the accuracy audit, the
// flight recorder (history, alerts, statusz, diagnostic bundles), and
// pprof. Nothing here mutates the data plane (/audit runs an extra audit
// pass, which only touches the audit's own shadow state), so binding it
// to a trusted interface is the only access control it needs.
type admin struct {
	in      *ingest.Ingestor
	reg     *obs.Registry
	strace  *obs.StructuralTrace
	tracer  *span.Tracer           // nil unless request tracing is wired
	aQuery  *obs.AdaptiveHistogram // adaptive "query" stage profile; nil in bare tests
	aud     *audit.Auditor         // nil unless -audit
	rec     *flight.Recorder       // nil unless the flight recorder is wired
	eng     *flight.Engine         // nil unless the flight recorder is wired
	effCfg  any                    // resolved configuration, captured in bundles
	ckEvery time.Duration          // checkpoint cadence; freshness is judged against it
	start   time.Time
}

// handler builds the admin mux:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  the same registry as one JSON document
//	/healthz       process liveness, with the named health checks attached
//	/readyz        200 only while every health check passes
//	/trace         sampled structural events as JSONL
//	/audit         a fresh accuracy-audit pass as JSON (404 without -audit)
//	/v1/estimate   lower bound + certified bracket for ?lo=&hi= (epoch-served)
//	/v1/hotranges  hot ranges at ?theta= (epoch-served)
//	/v1/stats      profile counters at the epoch cut
//	               (all /v1 answers carry X-RAP-Epoch-Seq/-Cut staleness
//	               headers, honor an inbound traceparent, stamp one on the
//	               response, and return 429 while admission is at Siege)
//	/spans         recorded request spans as JSONL (?trace=, ?name=, ?slow=1, ?limit=)
//	/profilez      adaptive per-stage latency profiles with span exemplars
//	/vars          flight-recorder windowed series queries
//	/alerts        alert rule states as JSON
//	/statusz       human-readable status page (with the slow-op log)
//	/debug/bundle  one-shot diagnostic bundle (gzipped tar)
//	/debug/pprof/  the standard Go profiler endpoints
//
// Every endpoint is counted into rap_http_requests_total{path,code} and
// timed into rap_http_request_seconds{path} by the instrument wrapper.
func (a *admin) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		a.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		a.reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Liveness is about the process: always 200 while serving, but the
		// structured checks ride along so one probe shows what a readiness
		// failure would name.
		writeStatus(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(a.start).Seconds(),
			"checks":         a.checks(time.Now()),
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		checks := a.checks(time.Now())
		code, status := http.StatusOK, "ready"
		for _, c := range checks {
			if !c.OK {
				code, status = http.StatusServiceUnavailable, "unready"
			}
		}
		writeStatus(w, code, map[string]any{"status": status, "checks": checks})
	})
	if a.strace != nil {
		mux.Handle("/trace", a.strace)
	}
	mux.HandleFunc("/audit", func(w http.ResponseWriter, _ *http.Request) {
		if a.aud == nil {
			writeStatus(w, http.StatusNotFound, map[string]any{
				"status": "disabled", "reason": "audit not enabled (-audit)",
			})
			return
		}
		// A fresh pass, not the last cached report: the operator asking is
		// exactly the moment the answer should be current.
		rep, err := a.aud.Audit()
		if err != nil {
			writeStatus(w, http.StatusInternalServerError, map[string]any{
				"status": "error", "reason": err.Error(),
			})
			return
		}
		// The epoch sequence current when this pass ran, so operators can
		// line the verdict up with published snapshots and /v1 answers.
		resp := struct {
			audit.Report
			EpochSeq uint64 `json:"epoch_seq"`
		}{Report: rep, EpochSeq: a.epochSeq()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
	a.registerQueryAPI(mux)
	if a.tracer != nil {
		mux.Handle("/spans", a.tracer)
	}
	mux.HandleFunc("/profilez", a.profilez)
	if a.rec != nil {
		mux.Handle("/vars", a.rec)
		mux.Handle("/alerts", a.eng)
		sz := &flight.Statusz{
			App:      "rapd",
			Start:    a.start,
			Registry: a.reg,
			Recorder: a.rec,
			Engine:   a.eng,
			Facts:    a.facts,
			SparkSeries: []string{
				"rate:rap_tree_events_total",
				"rap_admit_level",
				"rap_tree_arena_bytes",
				"rap_flight_bytes",
			},
		}
		if a.tracer != nil {
			sz.SlowOps = a.slowOps
		}
		mux.Handle("/statusz", sz)
		mux.Handle("/debug/bundle", flight.BundleHandler(a.bundleConfig))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return a.instrument(mux)
}

// instrument wraps the admin mux with per-endpoint HTTP metrics: a
// request counter by path and status code and a latency histogram by
// path. Paths are normalized to the known endpoint set so a scanner
// probing random URLs cannot mint unbounded label values.
func (a *admin) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		p := normalizePath(r.URL.Path)
		a.reg.Counter("rap_http_requests_total",
			"Admin-plane HTTP requests by normalized path and status code.",
			obs.L("path", p), obs.L("code", strconv.Itoa(sw.code))).Add(1)
		a.reg.Duration("rap_http_request_seconds",
			"Admin-plane HTTP request latency by normalized path.",
			obs.L("path", p)).ObserveSince(start)
	})
}

// statusWriter captures the status code an inner handler writes; an
// implicit 200 (body written without WriteHeader) keeps the default.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// normalizePath maps a request path onto the served endpoint set, so the
// path label stays low-cardinality.
func normalizePath(p string) string {
	switch p {
	case "/metrics", "/metrics.json", "/healthz", "/readyz", "/trace", "/audit",
		"/v1/estimate", "/v1/hotranges", "/v1/stats", "/spans", "/profilez",
		"/vars", "/alerts", "/statusz", "/debug/bundle":
		return p
	}
	if strings.HasPrefix(p, "/debug/pprof") {
		return "/debug/pprof"
	}
	return "other"
}

// slowOps adapts the tracer's slow-op log to the /statusz rows.
func (a *admin) slowOps() []flight.SlowOp {
	recs := a.tracer.SlowOps()
	out := make([]flight.SlowOp, 0, len(recs))
	for _, r := range recs {
		out = append(out, flight.SlowOp{
			At:       time.Unix(0, r.StartNano),
			Name:     r.Name,
			Duration: time.Duration(r.DurationNs),
			TraceID:  r.TraceID,
		})
	}
	return out
}

func writeStatus(w http.ResponseWriter, code int, body map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

// healthCheck is one named readiness condition with its reason string —
// the structured /healthz and /readyz row.
type healthCheck struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// checks evaluates every readiness condition: at least one source must
// not have permanently failed, and when checkpointing is enabled the last
// successful checkpoint (or, before the first one, process start) must be
// younger than three cadences — a daemon that can no longer persist its
// state is running on borrowed time and should be rotated out of service.
func (a *admin) checks(now time.Time) []healthCheck {
	st := a.in.Stats()
	alive := 0
	for _, s := range st.Sources {
		if !s.Failed {
			alive++
		}
	}
	src := healthCheck{
		Name: "source_liveness", OK: true,
		Reason: fmt.Sprintf("%d/%d sources alive", alive, len(st.Sources)),
	}
	if alive == 0 {
		src.OK = false
		src.Reason = "all sources permanently failed"
	}
	out := []healthCheck{src}

	if st.Checkpoint.Enabled && a.ckEvery > 0 {
		ref := a.start
		if !st.Checkpoint.LastAt.IsZero() {
			ref = st.Checkpoint.LastAt
		}
		age := now.Sub(ref)
		ck := healthCheck{
			Name: "checkpoint_freshness", OK: true,
			Reason: fmt.Sprintf("last checkpoint %v ago (cadence %v)", age.Round(time.Second), a.ckEvery),
		}
		if age > 3*a.ckEvery {
			ck.OK = false
			ck.Reason = fmt.Sprintf("no checkpoint for %v (cadence %v)", age.Round(time.Second), a.ckEvery)
		}
		out = append(out, ck)
	}
	return out
}

// ready collapses the checks to the single verdict /readyz serves,
// reporting the first failing check's reason.
func (a *admin) ready(now time.Time) (bool, string) {
	for _, c := range a.checks(now) {
		if !c.OK {
			return false, c.Reason
		}
	}
	return true, ""
}

// epochSeq reports the engine's current published epoch sequence, 0 when
// the epoch read path is disabled.
func (a *admin) epochSeq() uint64 {
	if pub := a.in.Engine().Publisher(); pub != nil {
		return pub.Seq()
	}
	return 0
}

// facts are the host rows on /statusz: the engine-level answers an
// operator checks first.
func (a *admin) facts() []flight.Fact {
	st := a.in.Stats()
	out := []flight.Fact{
		{Key: "events (n)", Value: fmt.Sprintf("%d", st.N)},
		{Key: "nodes", Value: fmt.Sprintf("%d", st.Nodes)},
		{Key: "dropped", Value: fmt.Sprintf("%d", st.Dropped)},
	}
	if pub := a.in.Engine().Publisher(); pub != nil {
		out = append(out, flight.Fact{Key: "epoch seq", Value: fmt.Sprintf("%d", pub.Seq())})
		if e := pub.Current(); e != nil {
			out = append(out, flight.Fact{
				Key:   "epoch age",
				Value: time.Since(e.PublishedAt()).Round(time.Millisecond).String(),
			})
		}
	}
	if adm := a.in.Admission(); adm != nil {
		ws := adm.WatchdogState()
		out = append(out,
			flight.Fact{Key: "admission level", Value: ws.Level},
			flight.Fact{Key: "admission period", Value: fmt.Sprintf("%d", ws.Period)},
			flight.Fact{Key: "unadmitted", Value: fmt.Sprintf("%d", ws.Unadmitted)},
		)
	}
	if a.aud != nil {
		if rep, ok := a.aud.Report(); ok {
			out = append(out,
				flight.Fact{Key: "audit verdict", Value: rep.Verdict},
				flight.Fact{Key: "audit violations", Value: fmt.Sprintf("%d", rep.ViolationsTotal)},
			)
		} else {
			out = append(out, flight.Fact{Key: "audit verdict", Value: "no pass yet"})
		}
	}
	if st.Checkpoint.Enabled {
		out = append(out, flight.Fact{
			Key:   "checkpoint age",
			Value: st.Checkpoint.Age(time.Now()).Round(time.Millisecond).String(),
		})
	}
	return out
}

// bundleConfig assembles everything /debug/bundle, SIGQUIT, and
// -dump-bundle capture.
func (a *admin) bundleConfig() flight.BundleConfig {
	cfg := flight.BundleConfig{
		App:             "rapd",
		Registry:        a.reg,
		Recorder:        a.rec,
		Engine:          a.eng,
		Trace:           a.strace,
		EffectiveConfig: a.effCfg,
	}
	if a.tracer != nil {
		cfg.Spans = a.tracer
	}
	cfg.Profile = func() (any, bool) {
		doc := a.profileDoc(defaultProfileTheta)
		return doc, len(doc.Stages) > 0
	}
	if a.aud != nil {
		cfg.AuditReport = func() (any, bool) {
			rep, ok := a.aud.Report()
			return rep, ok
		}
	}
	if adm := a.in.Admission(); adm != nil {
		cfg.AdmitState = func() (any, bool) { return adm.WatchdogState(), true }
	}
	return cfg
}

// serveAdmin binds addr and serves the admin surface until the daemon
// exits; it returns the bound address (useful with ":0") and a shutdown
// func. Serving errors after bind are logged, not fatal: losing the
// observability plane should never take the data plane down.
func serveAdmin(addr string, a *admin, logger *slog.Logger) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("admin listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: a.handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("admin server failed", "err", err)
		}
	}()
	logger.Info("admin listening", "addr", ln.Addr().String())
	return ln.Addr().String(), func() { srv.Close() }, nil
}
