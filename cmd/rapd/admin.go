package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"rap/internal/audit"
	"rap/internal/ingest"
	"rap/internal/obs"
)

// admin is the opt-in operator surface of rapd: metrics exposition,
// liveness/readiness, the structural trace, the accuracy audit, and
// pprof. Nothing here mutates the data plane (/audit runs an extra audit
// pass, which only touches the audit's own shadow state), so binding it
// to a trusted interface is the only access control it needs.
type admin struct {
	in      *ingest.Ingestor
	reg     *obs.Registry
	strace  *obs.StructuralTrace
	aud     *audit.Auditor // nil unless -audit
	ckEvery time.Duration  // checkpoint cadence; freshness is judged against it
	start   time.Time
}

// handler builds the admin mux:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  the same registry as one JSON document
//	/healthz       process liveness (always 200 while serving)
//	/readyz        200 only while the pipeline can still make progress
//	/trace         sampled structural events as JSONL
//	/audit         a fresh accuracy-audit pass as JSON (404 without -audit)
//	/debug/pprof/  the standard Go profiler endpoints
func (a *admin) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		a.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		a.reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeStatus(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(a.start).Seconds(),
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		ok, reason := a.ready(time.Now())
		code := http.StatusOK
		body := map[string]any{"status": "ready"}
		if !ok {
			code = http.StatusServiceUnavailable
			body = map[string]any{"status": "unready", "reason": reason}
		}
		writeStatus(w, code, body)
	})
	if a.strace != nil {
		mux.Handle("/trace", a.strace)
	}
	mux.HandleFunc("/audit", func(w http.ResponseWriter, _ *http.Request) {
		if a.aud == nil {
			writeStatus(w, http.StatusNotFound, map[string]any{
				"status": "disabled", "reason": "audit not enabled (-audit)",
			})
			return
		}
		// A fresh pass, not the last cached report: the operator asking is
		// exactly the moment the answer should be current.
		rep, err := a.aud.Audit()
		if err != nil {
			writeStatus(w, http.StatusInternalServerError, map[string]any{
				"status": "error", "reason": err.Error(),
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeStatus(w http.ResponseWriter, code int, body map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

// ready reports whether the pipeline can still make progress: at least
// one source must not have permanently failed, and when checkpointing is
// enabled the last successful checkpoint (or, before the first one,
// process start) must be younger than three cadences — a daemon that can
// no longer persist its state is running on borrowed time and should be
// rotated out of service.
func (a *admin) ready(now time.Time) (bool, string) {
	st := a.in.Stats()
	alive := 0
	for _, s := range st.Sources {
		if !s.Failed {
			alive++
		}
	}
	if alive == 0 {
		return false, "all sources permanently failed"
	}
	if st.Checkpoint.Enabled && a.ckEvery > 0 {
		ref := a.start
		if !st.Checkpoint.LastAt.IsZero() {
			ref = st.Checkpoint.LastAt
		}
		if age := now.Sub(ref); age > 3*a.ckEvery {
			return false, fmt.Sprintf("no checkpoint for %v (cadence %v)", age.Round(time.Second), a.ckEvery)
		}
	}
	return true, ""
}

// serveAdmin binds addr and serves the admin surface until the daemon
// exits; it returns the bound address (useful with ":0") and a shutdown
// func. Serving errors after bind are logged, not fatal: losing the
// observability plane should never take the data plane down.
func serveAdmin(addr string, a *admin, logger *slog.Logger) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("admin listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: a.handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("admin server failed", "err", err)
		}
	}()
	logger.Info("admin listening", "addr", ln.Addr().String())
	return ln.Addr().String(), func() { srv.Close() }, nil
}
