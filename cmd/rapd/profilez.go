package main

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"strings"

	"rap/internal/obs"
)

// /profilez is the adaptive latency-profile endpoint: the RAP tree
// dogfooded as its own telemetry. Each pipeline stage (queue_wait, apply,
// query) carries an obs.AdaptiveHistogram over the nanosecond universe;
// this handler reports their quantiles, hot latency ranges with span-ID
// exemplars, and — as a cross-check — the same quantiles computed from
// the fixed-octave ladder histograms covering the same stage.

// defaultProfileTheta is the hot-range threshold used when the caller
// does not pass ?theta= (and by diagnostic bundles).
const defaultProfileTheta = 0.05

// profileStage is one stage's adaptive profile. Quantiles are pointers so
// an empty stage omits them instead of emitting NaN (invalid JSON).
type profileStage struct {
	Count      uint64                 `json:"count"`
	SumSeconds float64                `json:"sum_seconds"`
	TreeNodes  int                    `json:"tree_nodes"`
	P50Seconds *float64               `json:"p50_seconds,omitempty"`
	P90Seconds *float64               `json:"p90_seconds,omitempty"`
	P99Seconds *float64               `json:"p99_seconds,omitempty"`
	HotRanges  []obs.AdaptiveHotRange `json:"hot_ranges,omitempty"`
	Ladder     *ladderProfile         `json:"ladder,omitempty"`
}

// ladderProfile is the fixed-ladder histogram's view of the same stage.
// Adaptive and ladder quantiles must agree to within one octave bucket —
// that invariant is what makes the dogfood trustworthy.
type ladderProfile struct {
	Series     string   `json:"series"`
	Count      uint64   `json:"count"`
	P50Seconds *float64 `json:"p50_seconds,omitempty"`
	P99Seconds *float64 `json:"p99_seconds,omitempty"`
}

type profilezResponse struct {
	Theta  float64                 `json:"theta"`
	Stages map[string]profileStage `json:"stages"`
}

func (a *admin) profilez(w http.ResponseWriter, r *http.Request) {
	theta := defaultProfileTheta
	if s := r.URL.Query().Get("theta"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v > 1 {
			writeStatus(w, http.StatusBadRequest, map[string]any{
				"status": "bad_request",
				"reason": "theta must be a float in (0, 1]",
			})
			return
		}
		theta = v
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(a.profileDoc(theta))
}

// profileDoc assembles the /profilez document (also captured in bundles
// as profile.json).
func (a *admin) profileDoc(theta float64) profilezResponse {
	resp := profilezResponse{Theta: theta, Stages: map[string]profileStage{}}
	stages := map[string]*obs.AdaptiveHistogram{}
	if a.in != nil {
		for name, h := range a.in.Profiles() {
			stages[name] = h
		}
	}
	if a.aQuery != nil {
		stages["query"] = a.aQuery
	}
	var snap []obs.FamilySnapshot
	if a.reg != nil && len(stages) > 0 {
		snap = a.reg.Snapshot()
	}
	for name, h := range stages {
		st := profileStage{
			Count:      h.Count(),
			SumSeconds: h.Sum(),
			TreeNodes:  h.NodeCount(),
			P50Seconds: jsonFloat(h.Quantile(0.50)),
			P90Seconds: jsonFloat(h.Quantile(0.90)),
			P99Seconds: jsonFloat(h.Quantile(0.99)),
			HotRanges:  h.HotRanges(theta),
			Ladder:     ladderFor(snap, name),
		}
		resp.Stages[name] = st
	}
	return resp
}

// ladderFor computes the fixed-ladder quantiles covering one stage,
// merging bucket counts across the series that instrument it (shards for
// apply, /v1 paths for query).
func ladderFor(snap []obs.FamilySnapshot, stage string) *ladderProfile {
	var series string
	match := func(map[string]string) bool { return true }
	switch stage {
	case "queue_wait":
		series = "rap_ingest_queue_wait_seconds"
	case "apply":
		series = "rap_ingest_apply_seconds"
	case "query":
		series = "rap_http_request_seconds"
		match = func(labels map[string]string) bool {
			return strings.HasPrefix(labels["path"], "/v1/")
		}
	default:
		return nil
	}
	var merged []obs.BucketCount
	var count uint64
	for _, f := range snap {
		if f.Name != series {
			continue
		}
		for _, ser := range f.Series {
			if ser.Count == 0 || !match(ser.Labels) {
				continue
			}
			merged = mergeBuckets(merged, ser.Buckets)
			count += ser.Count
		}
	}
	if count == 0 {
		return nil
	}
	return &ladderProfile{
		Series:     series,
		Count:      count,
		P50Seconds: jsonFloat(obs.QuantileFromBuckets(merged, 0.50)),
		P99Seconds: jsonFloat(obs.QuantileFromBuckets(merged, 0.99)),
	}
}

// mergeBuckets sums cumulative bucket counts across series sharing one
// bucket ladder (every rapd duration histogram uses the same one).
func mergeBuckets(dst, src []obs.BucketCount) []obs.BucketCount {
	if dst == nil {
		return append(dst, src...)
	}
	for i := range dst {
		if i < len(src) {
			dst[i].Count += src[i].Count
		}
	}
	return dst
}

// jsonFloat drops NaN/Inf (no observations) instead of breaking the JSON
// encoder.
func jsonFloat(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}
