package main

import "testing"

func TestRunConfigurations(t *testing.T) {
	cases := []struct {
		name                    string
		rows, width, sram, tech int
		bench, kind             string
	}{
		{"paper big", 4096, 36, 16 << 10, 180, "gcc", "code"},
		{"paper small", 400, 36, 1600, 180, "gcc", "code"},
		{"value stream", 4096, 36, 16 << 10, 180, "gzip", "value"},
		{"newer node", 4096, 36, 16 << 10, 90, "mcf", "code"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.rows, tc.width, tc.sram, tc.tech, tc.bench, tc.kind, 50_000, 1, 0.10, 1024); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, 36, 16, 180, "gcc", "code", 100, 1, 0.1, 0); err == nil {
		t.Fatal("bad hw config accepted")
	}
	if err := run(4096, 36, 16<<10, 180, "nope", "code", 100, 1, 0.1, 0); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run(4096, 36, 16<<10, 180, "gcc", "wat", 100, 1, 0.1, 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
