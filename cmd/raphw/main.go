// Command raphw characterizes the Pipelined RAP Engine of Section 3.3-3.4:
// area/delay/energy estimates for a hardware configuration and a
// cycle-accurate pipeline simulation over a chosen workload stream.
//
// Usage:
//
//	raphw                               # the paper's 4096-row configuration
//	raphw -rows 400 -sram 1600          # the small configuration
//	raphw -bench gcc -kind code -n 2e6  # pipeline simulation workload
package main

import (
	"flag"
	"fmt"
	"os"

	"rap/internal/core"
	"rap/internal/hw"
	"rap/internal/trace"
	"rap/internal/workload"
)

func main() {
	rows := flag.Int("rows", 4096, "TCAM rows")
	width := flag.Int("width", 36, "TCAM row width in bits")
	sram := flag.Int("sram", 16<<10, "SRAM bytes")
	tech := flag.Int("tech", 180, "technology node in nm")
	bench := flag.String("bench", "gcc", "workload benchmark for the pipeline simulation")
	kind := flag.String("kind", "code", "stream kind: code | value")
	n := flag.Uint64("n", 1_000_000, "events to simulate")
	seed := flag.Uint64("seed", 1, "workload seed")
	eps := flag.Float64("eps", 0.10, "tree error bound")
	bufSize := flag.Int("buffer", 1024, "stage-0 buffer size (0 = off)")
	flag.Parse()

	if err := run(*rows, *width, *sram, *tech, *bench, *kind, *n, *seed, *eps, *bufSize); err != nil {
		fmt.Fprintf(os.Stderr, "raphw: %v\n", err)
		os.Exit(1)
	}
}

func run(rows, width, sram, tech int, bench, kind string, n, seed uint64, eps float64, bufSize int) error {
	hwCfg := hw.Config{TCAMEntries: rows, TCAMWidth: width, SRAMBytes: sram, TechNM: tech}
	est, err := hwCfg.Estimate()
	if err != nil {
		return err
	}
	fmt.Printf("configuration: %dx%d TCAM, %d B SRAM, %d nm\n", rows, width, sram, tech)
	fmt.Printf("area:   TCAM %.3f + SRAM %.3f + arbiter %.3f + logic %.3f = %.3f mm^2\n",
		est.TCAMAreaMM2, est.SRAMAreaMM2, est.ArbiterAreaMM2, est.LogicAreaMM2, est.TotalAreaMM2)
	fmt.Printf("delay:  TCAM %.2f ns, SRAM %.2f ns; pipelined critical path %.2f ns (%.2f GHz)\n",
		est.TCAMDelayNS, est.SRAMDelayNS, est.CriticalPathNS, est.ClockGHz)
	fmt.Printf("energy: %.3f nJ per event worst case\n\n", est.TotalEnergyNJ)

	b, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	var src trace.Source
	treeCfg := core.DefaultConfig()
	treeCfg.Epsilon = eps
	switch kind {
	case "code":
		treeCfg.UniverseBits = 32
		src = trace.Limit(b.Code(seed, n), n)
	case "value":
		src = trace.Limit(b.Values(seed, n), n)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	var buf *trace.CoalescingBuffer
	if bufSize > 0 {
		buf = trace.NewCoalescingBuffer(src, bufSize)
		src = buf
	}

	eng, err := hw.NewEngine(hwCfg, treeCfg)
	if err != nil {
		return err
	}
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		eng.Process(e)
	}
	fmt.Printf("pipeline simulation (%s %s stream, eps=%.0f%%):\n  %s\n",
		bench, kind, 100*eps, eng.Report())
	if buf != nil {
		fmt.Printf("  stage-0 buffer: %.1fx compression\n", buf.CompressionFactor())
	}
	fmt.Printf("  profile: %d hot ranges at 10%%\n", len(eng.Tree().HotRanges(0.10)))
	return nil
}
