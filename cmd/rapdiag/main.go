// Command rapdiag reads the diagnostic bundles rapd produces (via
// /debug/bundle, SIGQUIT, or -dump-bundle) without needing the daemon or
// its admin endpoint: the bundle is a self-contained gzipped tar, and
// rapdiag is the offline half of the flight-recorder story.
//
// Usage:
//
//	rapdiag bundle.tar.gz            # summary: meta, alerts, audit, history span
//	rapdiag -list bundle.tar.gz      # entry inventory with sizes
//	rapdiag -cat alerts.json bundle.tar.gz   # dump one entry raw
package main

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"rap/internal/flight"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "rapdiag: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("rapdiag", flag.ContinueOnError)
	fs.SetOutput(errOut)
	list := fs.Bool("list", false, "list bundle entries and sizes")
	cat := fs.String("cat", "", "print one entry verbatim")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rapdiag [-list | -cat entry] bundle.tar.gz")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := readBundle(f)
	if err != nil {
		return err
	}

	switch {
	case *list:
		names := make([]string, 0, len(entries))
		for name := range entries {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(out, "%8d  %s\n", len(entries[name]), name)
		}
		return nil
	case *cat != "":
		body, ok := entries[*cat]
		if !ok {
			return fmt.Errorf("no entry %q in bundle (have: %s)", *cat, strings.Join(keys(entries), ", "))
		}
		_, err := out.Write(body)
		return err
	default:
		return summarize(out, entries)
	}
}

// readBundle loads every tar entry into memory; bundles are small by
// construction (a bounded metric ring plus a few JSON documents).
func readBundle(r io.Reader) (map[string][]byte, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("not a gzipped bundle: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	entries := make(map[string][]byte)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("corrupt bundle: %w", err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			return nil, fmt.Errorf("corrupt bundle entry %s: %w", hdr.Name, err)
		}
		entries[hdr.Name] = body
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("empty bundle")
	}
	return entries, nil
}

func summarize(out io.Writer, entries map[string][]byte) error {
	var meta struct {
		Format    string    `json:"format"`
		Created   time.Time `json:"created"`
		App       string    `json:"app"`
		PID       int       `json:"pid"`
		Hostname  string    `json:"hostname"`
		GoVersion string    `json:"go_version"`
	}
	if body, ok := entries["meta.json"]; ok {
		if err := json.Unmarshal(body, &meta); err != nil {
			return fmt.Errorf("meta.json: %w", err)
		}
	}
	if meta.Format != flight.BundleFormat {
		return fmt.Errorf("unsupported bundle format %q (want %s)", meta.Format, flight.BundleFormat)
	}
	fmt.Fprintf(out, "bundle: %s pid=%d host=%s %s\n", meta.App, meta.PID, meta.Hostname, meta.GoVersion)
	fmt.Fprintf(out, "created: %s (%s ago)\n", meta.Created.Format(time.RFC3339),
		time.Since(meta.Created).Round(time.Second))
	fmt.Fprintf(out, "entries: %s\n", strings.Join(keys(entries), ", "))

	if body, ok := entries["alerts.json"]; ok {
		var doc struct {
			Alerts []flight.AlertStatus `json:"alerts"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			return fmt.Errorf("alerts.json: %w", err)
		}
		firing := 0
		for _, a := range doc.Alerts {
			if a.State != "ok" {
				firing++
			}
		}
		fmt.Fprintf(out, "\nalerts: %d rules, %d firing\n", len(doc.Alerts), firing)
		// Firing rules first — the reason the bundle exists.
		sort.SliceStable(doc.Alerts, func(i, j int) bool {
			return rank(doc.Alerts[i].State) > rank(doc.Alerts[j].State)
		})
		for _, a := range doc.Alerts {
			line := fmt.Sprintf("  %-5s %-22s value=%g transitions=%d",
				a.State, a.Rule.Name, float64(a.Value), a.Transitions)
			if a.Reason != "" {
				line += " (" + a.Reason + ")"
			}
			fmt.Fprintln(out, line)
		}
	}

	if body, ok := entries["audit.json"]; ok {
		var rep struct {
			Verdict         string            `json:"verdict"`
			ViolationsTotal uint64            `json:"violations_total"`
			Ranges          []json.RawMessage `json:"ranges"`
		}
		if err := json.Unmarshal(body, &rep); err != nil {
			return fmt.Errorf("audit.json: %w", err)
		}
		fmt.Fprintf(out, "\naudit: verdict=%s violations=%d ranges=%d\n",
			rep.Verdict, rep.ViolationsTotal, len(rep.Ranges))
	}

	if body, ok := entries["admit.json"]; ok {
		var st struct {
			Level      string `json:"level"`
			LevelMax   string `json:"level_max"`
			Period     uint64 `json:"period"`
			Offered    uint64 `json:"offered"`
			Unadmitted uint64 `json:"unadmitted"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("admit.json: %w", err)
		}
		fmt.Fprintf(out, "\nadmission: level=%s (max %s) period=%d offered=%d unadmitted=%d\n",
			st.Level, st.LevelMax, st.Period, st.Offered, st.Unadmitted)
	}

	if body, ok := entries["metrics_history.json"]; ok {
		var h flight.History
		if err := json.Unmarshal(body, &h); err != nil {
			return fmt.Errorf("metrics_history.json: %w", err)
		}
		points, lo, hi := 0, int64(0), int64(0)
		for _, s := range h.Series {
			points += len(s.Points)
			for _, p := range s.Points {
				if lo == 0 || p.UnixNano < lo {
					lo = p.UnixNano
				}
				if p.UnixNano > hi {
					hi = p.UnixNano
				}
			}
		}
		span := time.Duration(hi - lo).Round(time.Second)
		fmt.Fprintf(out, "\nhistory: %d series, %d points, %v span\n", len(h.Series), points, span)
	}

	if body, ok := entries["trace.jsonl"]; ok {
		n := strings.Count(string(body), "\n")
		fmt.Fprintf(out, "trace: %d structural events\n", n)
	}
	if body, ok := entries["spans.jsonl"]; ok {
		spans, slow := 0, 0
		traces := map[string]struct{}{}
		for _, line := range strings.Split(string(body), "\n") {
			if line == "" {
				continue
			}
			var rec struct {
				TraceID string `json:"trace_id"`
				Slow    bool   `json:"slow"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				return fmt.Errorf("spans.jsonl: %w", err)
			}
			spans++
			if rec.Slow {
				slow++
			}
			traces[rec.TraceID] = struct{}{}
		}
		fmt.Fprintf(out, "spans: %d recorded across %d traces, %d slow\n", spans, len(traces), slow)
	}
	if body, ok := entries["profile.json"]; ok {
		var doc struct {
			Stages map[string]struct {
				Count      uint64   `json:"count"`
				P50Seconds *float64 `json:"p50_seconds"`
				P99Seconds *float64 `json:"p99_seconds"`
			} `json:"stages"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			return fmt.Errorf("profile.json: %w", err)
		}
		names := make([]string, 0, len(doc.Stages))
		for name := range doc.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(out, "profile: %d stages\n", len(names))
		for _, name := range names {
			st := doc.Stages[name]
			line := fmt.Sprintf("  %-12s n=%d", name, st.Count)
			if st.P50Seconds != nil {
				line += fmt.Sprintf(" p50=%.6fs", *st.P50Seconds)
			}
			if st.P99Seconds != nil {
				line += fmt.Sprintf(" p99=%.6fs", *st.P99Seconds)
			}
			fmt.Fprintln(out, line)
		}
	}
	if body, ok := entries["metrics.prom"]; ok {
		n := 0
		for _, line := range strings.Split(string(body), "\n") {
			if line != "" && !strings.HasPrefix(line, "#") {
				n++
			}
		}
		fmt.Fprintf(out, "metrics: %d samples in final scrape\n", n)
	}
	return nil
}

func rank(state string) int {
	switch state {
	case "crit":
		return 2
	case "warn":
		return 1
	}
	return 0
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
