package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rap/internal/flight"
	"rap/internal/obs"
	"rap/internal/span"
)

// writeTestBundle produces a real bundle on disk: a registry with one
// gauge scraped a few times, one rule held in warn, and an audit report.
func writeTestBundle(t *testing.T) string {
	t.Helper()
	reg := obs.NewRegistry()
	g := reg.Gauge("g", "test gauge")
	rec := flight.NewRecorder(reg, flight.Options{Every: time.Second, Depth: 64})
	eng := flight.NewEngine(rec, flight.Rule{
		Name: "g_high", Series: "g", Cmp: flight.Above, Warn: 10,
	})
	now := time.Now()
	for i := 0; i < 5; i++ {
		g.Set(float64(20 + i))
		rec.Scrape(now.Add(time.Duration(i-5) * time.Second))
	}
	tracer := span.New(span.Options{SampleRate: 1, Capacity: 8, SlowThreshold: time.Nanosecond})
	sp := tracer.StartRoot("v1.estimate")
	time.Sleep(10 * time.Microsecond)
	sp.End()
	prof := obs.NewAdaptiveHistogram()
	prof.Observe(3 * time.Millisecond)
	path := filepath.Join(t.TempDir(), "bundle.tar.gz")
	err := flight.WriteBundleFile(path, flight.BundleConfig{
		App:      "raptest",
		Registry: reg,
		Recorder: rec,
		Engine:   eng,
		Spans:    tracer,
		Profile: func() (any, bool) {
			return map[string]any{"stages": map[string]any{"apply": map[string]any{
				"count": prof.Count(), "p50_seconds": prof.Quantile(0.5), "p99_seconds": prof.Quantile(0.99),
			}}}, true
		},
		EffectiveConfig: map[string]any{"shards": 4},
		AuditReport: func() (any, bool) {
			return map[string]any{"verdict": "ok", "violations_total": 0, "ranges": []any{}}, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummary(t *testing.T) {
	path := writeTestBundle(t)
	var out bytes.Buffer
	if err := run([]string{path}, &out, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"bundle: raptest",
		"alerts: 1 rules, 1 firing",
		"warn  g_high",
		"audit: verdict=ok",
		"history: ",
		"metrics: ",
		"spans: 1 recorded across 1 traces, 1 slow",
		"profile: 1 stages",
		"apply",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestListAndCat(t *testing.T) {
	path := writeTestBundle(t)
	var out bytes.Buffer
	if err := run([]string{"-list", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"meta.json", "alerts.json", "metrics_history.json", "config.json", "audit.json"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"-cat", "config.json", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"shards": 4`) {
		t.Errorf("-cat config.json = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"-cat", "nope.json", path}, &out, &out); err == nil {
		t.Fatal("missing entry accepted")
	}
}

func TestRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, &out, &out); err == nil {
		t.Fatal("garbage accepted as a bundle")
	}
}
