// Command rapbench regenerates every table and figure of the paper's
// evaluation. Each subcommand corresponds to one figure/table; `all` runs
// the full suite (the output EXPERIMENTS.md quotes).
//
// Usage:
//
//	rapbench [-n events] [-seed s] [-json] fig2|fig3|fig5|fig6|fig7|fig8|fig9|fig10|hw|headline|narrow|ablations|contendedquery|adversarial|micro|countwidth|all
//
// With -json each experiment is emitted as one machine-readable envelope
// (experiment name, scale, wall time, events/sec, and the full result
// struct); `all` writes a single combined document. This is the format
// BENCH_*.json perf trajectories record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"rap/internal/experiments"
)

func main() {
	n := flag.Uint64("n", experiments.DefaultOptions().Events, "events per profiling run")
	seed := flag.Uint64("seed", experiments.DefaultOptions().Seed, "workload seed")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of prose tables")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rapbench [-n events] [-seed s] [-json] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 hw headline narrow ablations mini extensions contended contendedquery adversarial micro countwidth all\n")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	o := experiments.Options{Events: *n, Seed: *seed}
	var err error
	if *jsonOut {
		err = runJSON(os.Stdout, flag.Arg(0), o)
	} else {
		err = run(os.Stdout, flag.Arg(0), o)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapbench: %v\n", err)
		os.Exit(1)
	}
}

// printable is what every experiment result knows how to do.
type printable interface{ Print(w io.Writer) }

// multi renders several results in sequence (fig8 runs two profiles).
type multi []printable

func (m multi) Print(w io.Writer) {
	for _, p := range m {
		p.Print(w)
	}
}

// order is the canonical experiment sequence `all` runs.
var order = []string{
	"fig2", "fig3", "fig5", "fig6", "fig7", "fig8",
	"fig9", "fig10", "hw", "headline", "narrow", "ablations", "mini", "extensions",
	"contended", "contendedquery", "adversarial",
}

// measure executes one experiment and returns its result. It is the
// single dispatch point both output modes share.
func measure(name string, o experiments.Options) (printable, error) {
	wrap := func(r printable, err error) (printable, error) { return r, err }
	switch name {
	case "fig2":
		return experiments.Fig2(), nil
	case "fig3":
		return experiments.Fig3(), nil
	case "fig5":
		return wrap(experiments.Fig5(o))
	case "fig6":
		return wrap(experiments.Fig6(o))
	case "fig7":
		return wrap(experiments.Fig7(o))
	case "fig8":
		var m multi
		for _, kind := range []experiments.ProfileKind{experiments.CodeProfile, experiments.ValueProfile} {
			r, err := experiments.Fig8(kind, o)
			if err != nil {
				return nil, err
			}
			m = append(m, r)
		}
		return m, nil
	case "fig9":
		return wrap(experiments.Fig9(o))
	case "fig10":
		return wrap(experiments.Fig10(o))
	case "hw":
		return wrap(experiments.HW(o))
	case "headline":
		return wrap(experiments.Headline(o))
	case "narrow":
		return wrap(experiments.Narrow(o))
	case "ablations":
		return wrap(experiments.Ablations(o))
	case "extensions":
		return wrap(experiments.Extensions(o))
	case "mini":
		return wrap(experiments.Mini(o))
	case "contended":
		return wrap(experiments.Contended(o))
	case "contendedquery":
		return wrap(experiments.ContendedQuery(o))
	case "adversarial":
		return wrap(experiments.Adversarial(o))
	case "micro":
		// Deliberately not part of `order`: micro is the CI perf gate's
		// probe (BENCH_*.json), a timing measurement that would make the
		// combined `all` document machine-dependent.
		return wrap(experiments.Micro(o))
	case "countwidth":
		// Also a CI gate probe (arena density of the packed counter
		// layout vs the 64-bit reference), kept out of `order` alongside
		// micro.
		return wrap(experiments.CountWidth(o))
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}

func run(w io.Writer, name string, o experiments.Options) error {
	if name == "all" {
		for _, sub := range order {
			if err := run(w, sub, o); err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
		}
		return nil
	}
	r, err := measure(name, o)
	if err != nil {
		return err
	}
	r.Print(w)
	return nil
}

// jsonResult is one experiment's machine-readable envelope.
type jsonResult struct {
	Experiment   string  `json:"experiment"`
	Events       uint64  `json:"events"`
	Seed         uint64  `json:"seed"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	EventsPerSec float64 `json:"events_per_sec"` // harness throughput: Events / ElapsedSec
	Result       any     `json:"result"`         // the experiment's full result struct
}

// jsonDoc is the combined document `all` emits.
type jsonDoc struct {
	Tool        string       `json:"tool"`
	GoVersion   string       `json:"go_version"`
	Experiments []jsonResult `json:"experiments"`
}

func measureJSON(name string, o experiments.Options) (jsonResult, error) {
	start := time.Now()
	r, err := measure(name, o)
	if err != nil {
		return jsonResult{}, err
	}
	elapsed := time.Since(start)
	res := jsonResult{
		Experiment: name,
		Events:     o.Events,
		Seed:       o.Seed,
		ElapsedSec: elapsed.Seconds(),
		Result:     r,
	}
	if s := elapsed.Seconds(); s > 0 {
		res.EventsPerSec = float64(o.Events) / s
	}
	return res, nil
}

func runJSON(w io.Writer, name string, o experiments.Options) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if name == "all" {
		doc := jsonDoc{Tool: "rapbench", GoVersion: runtime.Version()}
		for _, sub := range order {
			res, err := measureJSON(sub, o)
			if err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
			doc.Experiments = append(doc.Experiments, res)
		}
		return enc.Encode(doc)
	}
	res, err := measureJSON(name, o)
	if err != nil {
		return err
	}
	return enc.Encode(res)
}
