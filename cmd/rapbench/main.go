// Command rapbench regenerates every table and figure of the paper's
// evaluation. Each subcommand corresponds to one figure/table; `all` runs
// the full suite (the output EXPERIMENTS.md quotes).
//
// Usage:
//
//	rapbench [-n events] [-seed s] fig2|fig3|fig5|fig6|fig7|fig8|fig9|fig10|hw|headline|narrow|ablations|all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rap/internal/experiments"
)

func main() {
	n := flag.Uint64("n", experiments.DefaultOptions().Events, "events per profiling run")
	seed := flag.Uint64("seed", experiments.DefaultOptions().Seed, "workload seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rapbench [-n events] [-seed s] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 hw headline narrow ablations mini extensions all\n")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	o := experiments.Options{Events: *n, Seed: *seed}
	if err := run(os.Stdout, flag.Arg(0), o); err != nil {
		fmt.Fprintf(os.Stderr, "rapbench: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, name string, o experiments.Options) error {
	switch name {
	case "fig2":
		experiments.Fig2().Print(w)
	case "fig3":
		experiments.Fig3().Print(w)
	case "fig5":
		r, err := experiments.Fig5(o)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig6":
		r, err := experiments.Fig6(o)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig7":
		r, err := experiments.Fig7(o)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig8":
		for _, kind := range []experiments.ProfileKind{experiments.CodeProfile, experiments.ValueProfile} {
			r, err := experiments.Fig8(kind, o)
			if err != nil {
				return err
			}
			r.Print(w)
		}
	case "fig9":
		r, err := experiments.Fig9(o)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig10":
		r, err := experiments.Fig10(o)
		if err != nil {
			return err
		}
		r.Print(w)
	case "hw":
		r, err := experiments.HW(o)
		if err != nil {
			return err
		}
		r.Print(w)
	case "headline":
		r, err := experiments.Headline(o)
		if err != nil {
			return err
		}
		r.Print(w)
	case "narrow":
		r, err := experiments.Narrow(o)
		if err != nil {
			return err
		}
		r.Print(w)
	case "ablations":
		r, err := experiments.Ablations(o)
		if err != nil {
			return err
		}
		r.Print(w)
	case "extensions":
		r, err := experiments.Extensions(o)
		if err != nil {
			return err
		}
		r.Print(w)
	case "mini":
		r, err := experiments.Mini(o)
		if err != nil {
			return err
		}
		r.Print(w)
	case "all":
		for _, sub := range []string{
			"fig2", "fig3", "fig5", "fig6", "fig7", "fig8",
			"fig9", "fig10", "hw", "headline", "narrow", "ablations", "mini", "extensions",
		} {
			if err := run(w, sub, o); err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
