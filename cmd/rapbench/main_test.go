package main

import (
	"strings"
	"testing"

	"rap/internal/experiments"
)

func testOpts() experiments.Options {
	return experiments.Options{Events: 60_000, Seed: 1}
}

func TestRunEachExperiment(t *testing.T) {
	// Light smoke over every subcommand except "all" (covered piecewise).
	for _, name := range []string{
		"fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"hw", "headline", "narrow", "ablations", "mini", "extensions",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(&sb, name, testOpts()); err != nil {
				t.Fatalf("run(%s): %v", name, err)
			}
			if !strings.Contains(sb.String(), "==") {
				t.Fatalf("run(%s) produced no report header:\n%s", name, sb.String())
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "nope", testOpts()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
