package main

import (
	"encoding/json"
	"strings"
	"testing"

	"rap/internal/experiments"
)

func testOpts() experiments.Options {
	return experiments.Options{Events: 60_000, Seed: 1}
}

func TestRunEachExperiment(t *testing.T) {
	// Light smoke over every subcommand except "all" (covered piecewise).
	for _, name := range []string{
		"fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"hw", "headline", "narrow", "ablations", "mini", "extensions",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(&sb, name, testOpts()); err != nil {
				t.Fatalf("run(%s): %v", name, err)
			}
			if !strings.Contains(sb.String(), "==") {
				t.Fatalf("run(%s) produced no report header:\n%s", name, sb.String())
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "nope", testOpts()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := runJSON(&sb, "nope", testOpts()); err == nil {
		t.Fatal("unknown experiment accepted by JSON mode")
	}
}

func TestRunJSONSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := runJSON(&sb, "headline", testOpts()); err != nil {
		t.Fatal(err)
	}
	var res jsonResult
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if res.Experiment != "headline" || res.Events != testOpts().Events ||
		res.Seed != testOpts().Seed {
		t.Fatalf("envelope %+v", res)
	}
	if res.ElapsedSec <= 0 || res.EventsPerSec <= 0 {
		t.Fatalf("timing not recorded: %+v", res)
	}
	if res.Result == nil {
		t.Fatal("result payload missing")
	}
}

func TestRunJSONAllEmitsCombinedDoc(t *testing.T) {
	var sb strings.Builder
	if err := runJSON(&sb, "all", experiments.Options{Events: 20_000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var doc jsonDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Tool != "rapbench" || doc.GoVersion == "" {
		t.Fatalf("doc header %+v", doc)
	}
	if len(doc.Experiments) != len(order) {
		t.Fatalf("experiments = %d, want %d", len(doc.Experiments), len(order))
	}
	for i, res := range doc.Experiments {
		if res.Experiment != order[i] {
			t.Fatalf("experiment %d = %q, want %q", i, res.Experiment, order[i])
		}
		if res.Result == nil {
			t.Fatalf("%s result payload missing", res.Experiment)
		}
	}
}
