// Integration tests: cross-module flows that mirror how the tools and the
// hardware engine compose the packages.
package rap_test

import (
	"bytes"
	"testing"

	"rap/internal/core"
	"rap/internal/exact"
	"rap/internal/hw"
	"rap/internal/mini"
	"rap/internal/multidim"
	"rap/internal/trace"
	"rap/internal/workload"
)

// TestEngineEquivalenceOnWorkload drives the hardware engine and the
// software tree from the same buffered workload stream and requires
// bit-identical profiles — the hardware design is an implementation of
// the same algorithm, not an approximation of it.
func TestEngineEquivalenceOnWorkload(t *testing.T) {
	gcc, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 32
	cfg.Epsilon = 0.10

	const n = 300_000
	buf := trace.NewCoalescingBuffer(trace.Limit(gcc.Code(3, n), n), 1024)
	eng, err := hw.NewEngine(hw.DefaultConfig(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	soft := core.MustNew(cfg)
	for {
		e, ok := buf.Next()
		if !ok {
			break
		}
		eng.Process(e)
		soft.AddN(e.Value, e.Weight)
	}
	var a, b bytes.Buffer
	if err := eng.Tree().WriteASCII(&a); err != nil {
		t.Fatal(err)
	}
	if err := soft.WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("hardware engine and software tree diverged on the same stream")
	}
	if r := eng.Report(); r.Events != n {
		t.Fatalf("engine absorbed %d raw events, want %d", r.Events, n)
	}
}

// TestTraceFilePipeline is the raptrace | rapcli flow: generate a trace,
// encode it, decode it, profile it, and compare with profiling the stream
// directly.
func TestTraceFilePipeline(t *testing.T) {
	gzipB, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000

	var file bytes.Buffer
	w := trace.NewWriter(&file)
	src := trace.Limit(gzipB.Values(5, n), n)
	direct := core.MustNew(core.DefaultConfig())
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
		direct.AddN(e.Value, e.Weight)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	viaFile := core.MustNew(core.DefaultConfig())
	r := trace.NewReader(&file)
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		viaFile.AddN(e.Value, e.Weight)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	var a, b bytes.Buffer
	direct.WriteASCII(&a)
	viaFile.WriteASCII(&b)
	if a.String() != b.String() {
		t.Fatal("profiling via trace file diverged from direct profiling")
	}
}

// TestMiniHotRegionsMatchExact profiles a Mini program's block stream
// with RAP and checks the reported hot regions against exact counting:
// every RAP-hot range must be truly hot (the paper's no-false-positives
// guarantee), and RAP must attribute at least as much weight as exact
// counting finds in the top function.
func TestMiniHotRegionsMatchExact(t *testing.T) {
	tr, err := mini.CollectTrace("compress", 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 32
	cfg.Epsilon = 0.10
	tree := core.MustNew(cfg)
	ex := exact.New()
	for _, pc := range tr.BlockPCs {
		tree.Add(pc)
		ex.Add(pc)
	}
	tree.Finalize()
	for _, h := range tree.HotRanges(0.10) {
		truth := ex.RangeCount(h.Lo, h.Hi)
		if h.Weight > truth {
			t.Fatalf("hot range [%x,%x] weight %d exceeds exact %d", h.Lo, h.Hi, h.Weight, truth)
		}
		if float64(truth) < 0.10*float64(tree.N()) {
			t.Fatalf("reported hot range [%x,%x] is not truly hot (%d of %d)",
				h.Lo, h.Hi, truth, tree.N())
		}
	}
}

// TestSnapshotResumeOnWorkload interrupts profiling mid-stream, ships the
// snapshot, and resumes in a second tree: the final profile must be
// identical to an uninterrupted run.
func TestSnapshotResumeOnWorkload(t *testing.T) {
	parserB, err := workload.ByName("parser")
	if err != nil {
		t.Fatal(err)
	}
	const n = 120_000
	src := trace.Limit(parserB.Values(7, n), n)

	full := core.MustNew(core.DefaultConfig())
	first := core.MustNew(core.DefaultConfig())
	var tail []trace.Event
	i := 0
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		full.AddN(e.Value, e.Weight)
		if i < n/2 {
			first.AddN(e.Value, e.Weight)
		} else {
			tail = append(tail, e)
		}
		i++
	}
	blob, err := first.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var resumed core.Tree
	if err := resumed.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for _, e := range tail {
		resumed.AddN(e.Value, e.Weight)
	}
	var a, b bytes.Buffer
	full.WriteASCII(&a)
	resumed.WriteASCII(&b)
	if a.String() != b.String() {
		t.Fatal("snapshot-resume diverged from uninterrupted profiling")
	}
}

// TestDataCodeCorrelation exercises the 2-D tree on (PC, address-page)
// tuples from a Mini program — the "data-code correlation studies" of
// Section 6 — and checks the basic invariants.
func TestDataCodeCorrelation(t *testing.T) {
	prog, err := mini.LoadProgram("store")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := multidim.New2D(multidim.Config2D{BitsPerDim: 32, Epsilon: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	var lastPC uint64
	vm := mini.NewVM(prog, mini.Config{
		Seed: 4,
		Hooks: mini.Hooks{
			OnBlock: func(pc uint64) { lastPC = pc },
			OnLoad: func(addr, value uint64) {
				t2.Add(lastPC, addr>>12) // (issuing block, data page)
			},
		},
	})
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	st := t2.Finalize()
	if st.Nodes > 20_000 {
		t.Fatalf("correlation tree grew to %d nodes", st.Nodes)
	}
	cells := t2.HotCells(0.05)
	if len(cells) == 0 {
		t.Fatal("no hot (code, data) correlations found")
	}
	// Hot cells must name code in the text segment and data pages.
	for _, c := range cells {
		if c.XHi < mini.CodeBase {
			t.Fatalf("hot cell code side [%x,%x] below text base", c.XLo, c.XHi)
		}
	}
}
