package rap_test

import (
	"math/rand"
	"strings"
	"testing"

	"rap"
)

// auditWorkload feeds one randomized stream shape into p, running an
// audit pass every passEvery events, and returns the total event count.
func auditWorkload(t *testing.T, p rap.Profiler, a *rap.Auditor, shape string, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 8, 1<<20-1)
	const n = 120_000
	batch := make([]uint64, 0, 256)
	for i := 0; i < n; i++ {
		var v uint64
		switch shape {
		case "zipf":
			v = zipf.Uint64()
		case "uniform":
			v = rng.Uint64() & (1<<20 - 1)
		case "spans":
			// Adversarial: long runs sweeping disjoint blocks, so mass
			// concentrates in a few subtrees and forces deep splits.
			v = uint64(i/4096)<<12 | uint64(i)&0xfff
		}
		if i%2 == 0 {
			p.Add(v)
		} else {
			batch = append(batch, v)
			if len(batch) == cap(batch) {
				p.AddBatch(batch)
				batch = batch[:0]
			}
		}
		if i%20_000 == 19_999 {
			checkAuditPass(t, a, shape)
		}
	}
	p.AddBatch(batch)
	rep := checkAuditPass(t, a, shape)
	if rep.N != p.N() {
		t.Fatalf("%s: audit saw n=%d, engine n=%d", shape, rep.N, p.N())
	}
	if rep.TapN != rep.N {
		t.Fatalf("%s: tap mass %d != stream mass %d (cold attach must see everything)",
			shape, rep.TapN, rep.N)
	}
}

// checkAuditPass runs one audit pass and asserts the paper's accuracy
// contract held: no violations, and every underestimate inside the
// certified budget.
func checkAuditPass(t *testing.T, a *rap.Auditor, shape string) rap.AuditReport {
	t.Helper()
	rep, err := a.Audit()
	if err != nil {
		t.Fatalf("%s: audit: %v", shape, err)
	}
	if rep.Verdict != "ok" {
		t.Fatalf("%s: verdict %q, report %+v", shape, rep.Verdict, rep)
	}
	if rep.ViolationsTotal != 0 {
		t.Fatalf("%s: %d accuracy violations", shape, rep.ViolationsTotal)
	}
	if float64(rep.MaxUnderestimate) > rep.Budget {
		t.Fatalf("%s: max underestimate %d exceeds certified budget %v",
			shape, rep.MaxUnderestimate, rep.Budget)
	}
	return rep
}

// TestAuditedEnginesEndToEnd drives every auditable engine through
// randomized zipf, uniform, and adversarial-span streams via the public
// facade and asserts the self-audit never fires.
func TestAuditedEnginesEndToEnd(t *testing.T) {
	engines := []struct {
		name string
		opt  []rap.Option
	}{
		{"tree", nil},
		{"concurrent", []rap.Option{rap.WithConcurrent()}},
		{"sharded", []rap.Option{rap.WithSharding(4)}},
	}
	for _, eng := range engines {
		for i, shape := range []string{"zipf", "uniform", "spans"} {
			t.Run(eng.name+"/"+shape, func(t *testing.T) {
				a := rap.NewAuditor(rap.AuditOptions{
					MaxRanges:    24,
					SpanBits:     10,
					SamplePeriod: 64,
					Seed:         uint64(i + 1),
				})
				opts := append([]rap.Option{
					rap.WithUniverseBits(20),
					rap.WithEpsilon(0.05),
					rap.WithAudit(a),
				}, eng.opt...)
				p, err := rap.New(opts...)
				if err != nil {
					t.Fatal(err)
				}
				auditWorkload(t, p, a, shape, int64(41+i))
			})
		}
	}
}

// TestWithAuditRejectsSampling: a sampling engine's scaled estimates are
// not bound to the tapped stream, so the combination must be refused at
// construction instead of producing false violations at runtime.
func TestWithAuditRejectsSampling(t *testing.T) {
	a := rap.NewAuditor(rap.AuditOptions{})
	_, err := rap.New(rap.WithSampling(8), rap.WithAudit(a))
	if err == nil {
		t.Fatal("audit + sampling accepted")
	}
	if !strings.Contains(err.Error(), "WithAudit") {
		t.Fatalf("error does not name the offending option: %v", err)
	}
}

// TestWithAuditNilRejected: a nil auditor is a caller bug, not a request
// to silently disable auditing.
func TestWithAuditNilRejected(t *testing.T) {
	if _, err := rap.New(rap.WithAudit(nil)); err == nil {
		t.Fatal("WithAudit(nil) accepted")
	}
}

// TestAuditorSingleUse: an auditor binds to exactly one engine; wiring it
// into a second must fail rather than interleave two streams' truth.
func TestAuditorSingleUse(t *testing.T) {
	a := rap.NewAuditor(rap.AuditOptions{})
	if _, err := rap.New(rap.WithUniverseBits(20), rap.WithAudit(a)); err != nil {
		t.Fatal(err)
	}
	if _, err := rap.New(rap.WithUniverseBits(20), rap.WithAudit(a)); err == nil {
		t.Fatal("auditor attached to a second engine")
	}
}
