package rap_test

// Exact-oracle differential suite: every engine, on several stream
// shapes, is measured against a brute-force exact counter
// (internal/oracle). The assertions are the paper's contract — every
// estimate is a lower bound on the truth, tracked (prefix-aligned) ranges
// undershoot by at most ε·n, and arbitrary spans by at most 2ε·n (one ε·n
// budget per boundary) — and they are layout-blind: the suite passed
// unchanged on the pointer-linked node store and gates the arena-backed
// one, proving the storage rewrite estimate-for-estimate equivalent.

import (
	"testing"

	"rap"
	"rap/internal/oracle"
	"rap/internal/stats"
)

// diffConfig is the differential operating point: a 16-bit universe keeps
// the oracle exact and the queries dense, FirstMerge=32 exercises the
// merge schedule early, and MinSplitCount=1 disables the cold-start split
// guard so the pure ε·n bound is assertable (the guard floors the split
// threshold above ε·n/H at small n, inflating the worst case).
func diffConfig() rap.Config {
	cfg := rap.DefaultConfig()
	cfg.UniverseBits = 16
	cfg.Epsilon = 0.05
	cfg.FirstMerge = 32
	cfg.MinSplitCount = 1
	return cfg
}

// diffEngines builds one of each engine over cfg. The sampled engine runs
// at k=1: sampling deliberately trades the one-sided guarantee away for
// k>1, so the differential bound is only its contract at k=1 (where it
// degenerates to a plain tree behind the sampler bookkeeping).
func diffEngines(t *testing.T, cfg rap.Config) map[string]rap.Profiler {
	t.Helper()
	tree, err := rap.NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := rap.NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samp, err := rap.NewSampled(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	shrd, err := rap.NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]rap.Profiler{
		"Tree":           tree,
		"ConcurrentTree": conc,
		"SampledTree":    samp,
		"Sharded":        shrd,
	}
}

// diffStream generates the named stream shape over a w-bit universe.
type diffStream struct {
	name string
	gen  func(rng *stats.SplitMix64, w int, n int) []uint64
}

var diffStreams = []diffStream{
	// The paper's hot-spot shape: heavily skewed ranks.
	{"zipf", func(rng *stats.SplitMix64, w, n int) []uint64 {
		z := stats.NewZipf(rng, 1<<w, 1.2)
		out := make([]uint64, n)
		for i := range out {
			out[i] = uint64(z.Rank())
		}
		return out
	}},
	// Uniform noise: maximal spread, shallow trees, constant merging.
	{"uniform", func(rng *stats.SplitMix64, w, n int) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = rng.Uint64n(1 << w)
		}
		return out
	}},
	// Adversarial boundaries: values hugging power-of-two edges (B-1, B,
	// B+1) plus the universe extremes — the points where childIndex, hi
	// masks, and split bounds are most likely to be off by one.
	{"boundary", func(rng *stats.SplitMix64, w, n int) []uint64 {
		max := uint64(1<<w) - 1
		out := make([]uint64, n)
		for i := range out {
			switch rng.Intn(8) {
			case 0:
				out[i] = 0
			case 1:
				out[i] = max
			default:
				b := uint64(1) << (1 + rng.Intn(w-1))
				switch rng.Intn(3) {
				case 0:
					out[i] = (b - 1) & max
				case 1:
					out[i] = b & max
				default:
					out[i] = (b + 1) & max
				}
			}
		}
		return out
	}},
}

func TestDifferentialOracleAllEngines(t *testing.T) {
	const events = 30_000
	cfg := diffConfig()
	w := cfg.UniverseBits
	for _, stream := range diffStreams {
		stream := stream
		t.Run(stream.name, func(t *testing.T) {
			rng := stats.NewSplitMix64(0xd1f + uint64(len(stream.name)))
			points := stream.gen(rng, w, events)
			ref := oracle.New()
			for _, p := range points {
				ref.Add(p)
			}
			for name, eng := range diffEngines(t, cfg) {
				name, eng := name, eng
				t.Run(name, func(t *testing.T) {
					for _, p := range points {
						eng.Add(p)
					}
					if eng.N() != ref.N() {
						t.Fatalf("N = %d, oracle counted %d", eng.N(), ref.N())
					}
					checkAgainstOracle(t, eng, ref, cfg, rng)
				})
			}
		})
	}
}

// checkAgainstOracle runs the three-part differential assertion set:
// tracked ranges (lower bound, ε·n undershoot), arbitrary spans (lower
// bound, 2ε·n undershoot, bracketing upper bound), and boundary-derived
// spans ending exactly at recorded values.
func checkAgainstOracle(t *testing.T, eng rap.Profiler, ref *oracle.Oracle, cfg rap.Config, rng *stats.SplitMix64) {
	t.Helper()
	w := cfg.UniverseBits
	n := float64(ref.N())
	slack := cfg.Epsilon * n

	// Tracked ranges: aligned to the b=4 split strides, the shapes the
	// tree actually stores. Missing events were credited to at most H
	// ancestors holding at most ε·n/H each — undershoot ≤ ε·n.
	for q := 0; q < 80; q++ {
		width := uint64(1) << (2 * (1 + rng.Intn(w/2-1)))
		lo := rng.Uint64n(1<<w) &^ (width - 1)
		hi := lo + width - 1
		assertBracket(t, eng, ref, lo, hi, slack, "tracked")
	}
	// Arbitrary spans: two unaligned boundaries, one ε·n budget each.
	for q := 0; q < 60; q++ {
		lo := rng.Uint64n(1 << w)
		hi := lo + rng.Uint64n(1<<w-lo)
		assertBracket(t, eng, ref, lo, hi, 2*slack, "arbitrary")
	}
	// Boundary-derived spans: endpoints at (or adjacent to) values that
	// actually occurred, where an off-by-one in range cover shows up.
	vals := ref.Values()
	for q := 0; q < 40 && len(vals) > 0; q++ {
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		if a > b {
			a, b = b, a
		}
		assertBracket(t, eng, ref, a, b, 2*slack, "value-anchored")
	}
}

func assertBracket(t *testing.T, eng rap.Profiler, ref *oracle.Oracle, lo, hi uint64, slack float64, kind string) {
	t.Helper()
	truth := ref.Count(lo, hi)
	low, high := eng.EstimateBounds(lo, hi)
	if est := eng.Estimate(lo, hi); est != low {
		t.Fatalf("%s [%#x,%#x]: Estimate %d != EstimateBounds low %d", kind, lo, hi, est, low)
	}
	if low > truth {
		t.Fatalf("%s [%#x,%#x]: estimate %d exceeds exact count %d (lower bound violated)",
			kind, lo, hi, low, truth)
	}
	if truth > high {
		t.Fatalf("%s [%#x,%#x]: exact count %d above upper bound %d", kind, lo, hi, truth, high)
	}
	if under := float64(truth) - float64(low); under > slack {
		t.Fatalf("%s [%#x,%#x]: undershoot %.0f beyond budget %.1f", kind, lo, hi, under, slack)
	}
}

// TestDifferentialOracleWeighted drives the same contract through the
// weighted AddN path with random weights, so coalesced ingest (the
// hardware stage-0 buffer shape) is held to the same bound.
func TestDifferentialOracleWeighted(t *testing.T) {
	cfg := diffConfig()
	w := cfg.UniverseBits
	rng := stats.NewSplitMix64(99)
	z := stats.NewZipf(rng, 1<<w, 1.3)
	ref := oracle.New()
	type wp struct{ v, wt uint64 }
	var events []wp
	for i := 0; i < 8_000; i++ {
		e := wp{uint64(z.Rank()), 1 + rng.Uint64n(16)}
		events = append(events, e)
		ref.AddN(e.v, e.wt)
	}
	for name, eng := range diffEngines(t, cfg) {
		name, eng := name, eng
		t.Run(name, func(t *testing.T) {
			for _, e := range events {
				eng.AddN(e.v, e.wt)
			}
			if eng.N() != ref.N() {
				t.Fatalf("N = %d, oracle counted %d", eng.N(), ref.N())
			}
			// AddN credits a whole weight to one node, so a single call
			// can overshoot the pure threshold by its weight; widen the
			// budget by the maximum weight per level to stay assertable.
			n := float64(ref.N())
			slack := cfg.Epsilon*n + 16*float64(cfg.Height())
			for q := 0; q < 60; q++ {
				lo := rng.Uint64n(1 << w)
				hi := lo + rng.Uint64n(1<<w-lo)
				assertBracket(t, eng, ref, lo, hi, 2*slack, "weighted")
			}
		})
	}
}

// TestDifferentialAfterFinalize re-checks the bound after the final
// compaction pass: Finalize merges cold nodes, which moves counts upward
// but must never break the lower-bound bracket.
func TestDifferentialAfterFinalize(t *testing.T) {
	cfg := diffConfig()
	w := cfg.UniverseBits
	rng := stats.NewSplitMix64(1234)
	z := stats.NewZipf(rng, 1<<w, 1.1)
	ref := oracle.New()
	points := make([]uint64, 40_000)
	for i := range points {
		points[i] = uint64(z.Rank())
		ref.Add(points[i])
	}
	for name, eng := range diffEngines(t, cfg) {
		name, eng := name, eng
		t.Run(name, func(t *testing.T) {
			for _, p := range points {
				eng.Add(p)
			}
			st := eng.Finalize()
			if st.N != ref.N() {
				t.Fatalf("Finalize N = %d, oracle counted %d", st.N, ref.N())
			}
			checkAgainstOracle(t, eng, ref, cfg, rng)
		})
	}
}
