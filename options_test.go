package rap_test

import (
	"testing"

	"rap"
)

func TestNewConfigFromOptions(t *testing.T) {
	cfg, err := rap.NewConfig(
		rap.WithUniverse(1<<32),
		rap.WithEpsilon(0.01),
		rap.WithBranching(4),
		rap.WithMergeRatio(2),
		rap.WithFirstMerge(512),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.UniverseBits != 32 {
		t.Fatalf("UniverseBits = %d, want 32", cfg.UniverseBits)
	}
	if cfg.Epsilon != 0.01 || cfg.Branch != 4 || cfg.MergeRatio != 2 || cfg.FirstMerge != 512 {
		t.Fatalf("options not applied: %+v", cfg)
	}
	// Validation fills defaults for fields no option touched.
	if cfg.MinSplitCount == 0 || cfg.MergeThresholdScale == 0 {
		t.Fatalf("validated config missing defaults: %+v", cfg)
	}
}

func TestWithUniverseRounding(t *testing.T) {
	cases := []struct {
		size uint64
		bits int
	}{
		{0, 64},  // full universe
		{1, 1},   // degenerate but valid
		{256, 8}, // exact power of two
		{257, 9}, // rounds up
		{1 << 63, 63},
	}
	for _, c := range cases {
		cfg, err := rap.NewConfig(rap.WithUniverse(c.size))
		if err != nil {
			t.Fatalf("WithUniverse(%d): %v", c.size, err)
		}
		if cfg.UniverseBits != c.bits {
			t.Fatalf("WithUniverse(%d) -> %d bits, want %d", c.size, cfg.UniverseBits, c.bits)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := rap.New(rap.WithEpsilon(2)); err == nil {
		t.Fatal("epsilon 2 accepted")
	}
	if _, err := rap.New(rap.WithBranching(3)); err == nil {
		t.Fatal("non-power-of-two branching accepted")
	}
	if _, err := rap.New(rap.WithSharding(0)); err == nil {
		t.Fatal("WithSharding(0) accepted")
	}
	if _, err := rap.New(rap.WithSampling(0)); err == nil {
		t.Fatal("WithSampling(0) accepted")
	}
	if _, err := rap.New(rap.WithSharding(2), rap.WithConcurrent()); err == nil {
		t.Fatal("sharding+concurrent accepted")
	}
	if _, err := rap.New(rap.WithSharding(2), rap.WithSampling(8)); err == nil {
		t.Fatal("sharding+sampling accepted")
	}
	if _, err := rap.New(rap.WithConcurrent(), rap.WithSampling(8)); err == nil {
		t.Fatal("concurrent+sampling accepted")
	}
}

func TestNewEngineSelection(t *testing.T) {
	cases := []struct {
		name string
		opts []rap.Option
		want string
	}{
		{"default", nil, "*core.Tree"},
		{"concurrent", []rap.Option{rap.WithConcurrent()}, "*core.ConcurrentTree"},
		{"sampled", []rap.Option{rap.WithSampling(8)}, "*core.SampledTree"},
		{"sampling-1-is-plain", []rap.Option{rap.WithSampling(1)}, "*core.Tree"},
		{"sharded", []rap.Option{rap.WithSharding(2)}, "*shard.Engine"},
	}
	for _, c := range cases {
		p, err := rap.New(c.opts...)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var got string
		switch p.(type) {
		case *rap.Sharded:
			got = "*shard.Engine"
		case *rap.ConcurrentTree:
			got = "*core.ConcurrentTree"
		case *rap.SampledTree:
			got = "*core.SampledTree"
		case *rap.Tree:
			got = "*core.Tree"
		}
		if got != c.want {
			t.Fatalf("%s: engine %T (%s), want %s", c.name, p, got, c.want)
		}
	}
}
