package rap_test

import (
	"errors"
	"testing"

	"rap"
)

// Compile-time proof that every engine satisfies the public Profiler
// interface — the facade's core contract.
var (
	_ rap.Profiler = (*rap.Tree)(nil)
	_ rap.Profiler = (*rap.ConcurrentTree)(nil)
	_ rap.Profiler = (*rap.SampledTree)(nil)
	_ rap.Profiler = (*rap.Sharded)(nil)
)

// TestFacadeStructLiteralPath checks the pre-facade construction style
// (Config literal into a typed constructor) still works through the
// aliases.
func TestFacadeStructLiteralPath(t *testing.T) {
	cfg := rap.DefaultConfig()
	cfg.UniverseBits = 16
	cfg.Epsilon = 0.05
	tr, err := rap.NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10_000; i++ {
		tr.Add(i % 256)
	}
	if tr.N() != 10_000 {
		t.Fatalf("N = %d", tr.N())
	}
	low, high := tr.EstimateBounds(0, 255)
	if low > 10_000 || high < 10_000 {
		t.Fatalf("true count 10000 outside [%d,%d]", low, high)
	}
}

// TestFacadeErrors checks the re-exported sentinels are the ones the
// engines actually return.
func TestFacadeErrors(t *testing.T) {
	a := rap.MustNewTree(rap.DefaultConfig())
	cfg := rap.DefaultConfig()
	cfg.Epsilon = 0.5
	b := rap.MustNewTree(cfg)
	if err := a.Merge(b); !errors.Is(err, rap.ErrConfigMismatch) {
		t.Fatalf("config-mismatch merge returned %v", err)
	}
	if err := a.Merge(a); !errors.Is(err, rap.ErrSelfMerge) {
		t.Fatalf("self merge returned %v", err)
	}

	e, err := rap.NewSharded(rap.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	e3, err := rap.NewSharded(rap.DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e3.Restore(snap); !errors.Is(err, rap.ErrShardCount) {
		t.Fatalf("shard-count-mismatch restore returned %v", err)
	}
}

// TestProfilerPolymorphism drives each engine through the interface and
// checks the shared lower-bound contract.
func TestProfilerPolymorphism(t *testing.T) {
	build := []struct {
		name string
		mk   func() (rap.Profiler, error)
	}{
		{"tree", func() (rap.Profiler, error) { return rap.New(rap.WithUniverse(1<<16), rap.WithEpsilon(0.05)) }},
		{"concurrent", func() (rap.Profiler, error) {
			return rap.New(rap.WithUniverse(1<<16), rap.WithEpsilon(0.05), rap.WithConcurrent())
		}},
		{"sampled", func() (rap.Profiler, error) {
			return rap.New(rap.WithUniverse(1<<16), rap.WithEpsilon(0.05), rap.WithSampling(4))
		}},
		{"sharded", func() (rap.Profiler, error) {
			return rap.New(rap.WithUniverse(1<<16), rap.WithEpsilon(0.05), rap.WithSharding(4))
		}},
	}
	for _, tc := range build {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			const n = 50_000
			for i := 0; i < n; i++ {
				p.Add(uint64(i % 1024)) // uniform over [0,1024)
			}
			if p.N() != n {
				t.Fatalf("N = %d, want %d", p.N(), n)
			}
			low, high := p.EstimateBounds(0, 1023)
			if low > n || high < n {
				t.Fatalf("true count %d outside [%d,%d]", n, low, high)
			}
			if est := p.Estimate(0, 1<<16-1); est > n {
				t.Fatalf("whole-universe estimate %d exceeds n", est)
			}
			hot := p.HotRanges(0.99)
			for _, h := range hot {
				if h.Weight > n {
					t.Fatalf("hot range overshoots stream: %+v", h)
				}
			}
			st := p.Finalize()
			if st.N != n {
				t.Fatalf("finalized Stats.N = %d", st.N)
			}
		})
	}
}
