package rap_test

// Engine-conformance suite: one table of engine constructors, one shared
// assertion set, driven entirely through the rap.Profiler interface. Every
// engine must agree with itself across ingest paths (Add vs AddN vs
// AddBatch), account N exactly in Stats, and round-trip its snapshot
// format back to identical estimates. New engines join the table, not a
// new test file.

import (
	"testing"

	"rap"
	"rap/internal/stats"
)

func confConfig() rap.Config {
	cfg := rap.DefaultConfig()
	cfg.UniverseBits = 16
	cfg.Epsilon = 0.05
	cfg.FirstMerge = 64
	return cfg
}

// engineSpec describes one engine's place in the conformance table.
type engineSpec struct {
	name string
	make func(t *testing.T) rap.Profiler
	// exactBatch: AddBatch must be estimate-for-estimate identical to
	// sequential Add. False only for Sharded, where Add round-robins
	// single events across stripes while AddBatch pins a chunk to one —
	// a different (equally valid) shard assignment of the same stream.
	exactBatch bool
	// snapshot/restore expose the engine's snapshot surface; nil when the
	// engine has none (SampledTree is ingest-side state, not a store).
	snapshot func(t *testing.T, p rap.Profiler) []byte
	restore  func(t *testing.T, data []byte) rap.Profiler
}

func engineTable() []engineSpec {
	cfg := confConfig()
	return []engineSpec{
		{
			name:       "Tree",
			make:       func(t *testing.T) rap.Profiler { return mustProfiler[*rap.Tree](t)(rap.NewTree(cfg)) },
			exactBatch: true,
			snapshot: func(t *testing.T, p rap.Profiler) []byte {
				data, err := p.(*rap.Tree).MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				return data
			},
			restore: func(t *testing.T, data []byte) rap.Profiler {
				var nt rap.Tree
				if err := nt.UnmarshalBinary(data); err != nil {
					t.Fatal(err)
				}
				return &nt
			},
		},
		{
			name:       "ConcurrentTree",
			make:       func(t *testing.T) rap.Profiler { return mustProfiler[*rap.ConcurrentTree](t)(rap.NewConcurrent(cfg)) },
			exactBatch: true,
			snapshot: func(t *testing.T, p rap.Profiler) []byte {
				data, err := p.(*rap.ConcurrentTree).Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				return data
			},
			restore: func(t *testing.T, data []byte) rap.Profiler {
				fresh := mustProfiler[*rap.ConcurrentTree](t)(rap.NewConcurrent(cfg))
				if err := fresh.(*rap.ConcurrentTree).Restore(data); err != nil {
					t.Fatal(err)
				}
				return fresh
			},
		},
		{
			// k=3 on purpose: batch determinism must hold mid-sampling
			// period, not just at the k=1 degenerate point.
			name:       "SampledTree",
			make:       func(t *testing.T) rap.Profiler { return mustProfiler[*rap.SampledTree](t)(rap.NewSampled(cfg, 3)) },
			exactBatch: true,
		},
		{
			name:       "Sharded",
			make:       func(t *testing.T) rap.Profiler { return mustProfiler[*rap.Sharded](t)(rap.NewSharded(cfg, 4)) },
			exactBatch: false,
			snapshot: func(t *testing.T, p rap.Profiler) []byte {
				data, err := p.(*rap.Sharded).Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				return data
			},
			restore: func(t *testing.T, data []byte) rap.Profiler {
				fresh := mustProfiler[*rap.Sharded](t)(rap.NewSharded(cfg, 4))
				if err := fresh.(*rap.Sharded).Restore(data); err != nil {
					t.Fatal(err)
				}
				return fresh
			},
		},
	}
}

func mustProfiler[P rap.Profiler](t *testing.T) func(P, error) rap.Profiler {
	return func(p P, err error) rap.Profiler {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
}

// confStream is the shared conformance workload: skewed with uniform
// noise, enough volume to split, merge, and refill holes.
func confStream(seed uint64, n int) []uint64 {
	rng := stats.NewSplitMix64(seed)
	z := stats.NewZipf(rng, 1<<16, 1.2)
	out := make([]uint64, n)
	for i := range out {
		if rng.Intn(4) == 0 {
			out[i] = rng.Uint64n(1 << 16)
		} else {
			out[i] = uint64(z.Rank())
		}
	}
	return out
}

// probeRanges returns the aligned query set estimates are compared on.
func probeRanges(rng *stats.SplitMix64, w, count int) [][2]uint64 {
	out := make([][2]uint64, count)
	for i := range out {
		width := uint64(1) << (2 * (1 + rng.Intn(w/2-1)))
		lo := rng.Uint64n(1<<w) &^ (width - 1)
		out[i] = [2]uint64{lo, lo + width - 1}
	}
	return out
}

func TestConformanceAddBatchEquivalence(t *testing.T) {
	const events = 25_000
	points := confStream(42, events)
	cfg := confConfig()
	for _, spec := range engineTable() {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			sequential := spec.make(t)
			batched := spec.make(t)
			for _, p := range points {
				sequential.Add(p)
			}
			// Uneven chunk sizes so chunk boundaries move relative to
			// split/merge points.
			rng := stats.NewSplitMix64(7)
			for off := 0; off < len(points); {
				end := off + 1 + int(rng.Uint64n(700))
				if end > len(points) {
					end = len(points)
				}
				batched.AddBatch(points[off:end])
				off = end
			}
			if sequential.N() != batched.N() {
				t.Fatalf("N: sequential %d, batched %d", sequential.N(), batched.N())
			}
			slack := 2 * cfg.Epsilon * float64(sequential.N())
			for _, pr := range probeRanges(rng, cfg.UniverseBits, 120) {
				a := sequential.Estimate(pr[0], pr[1])
				b := batched.Estimate(pr[0], pr[1])
				if spec.exactBatch {
					if a != b {
						t.Fatalf("[%#x,%#x]: sequential estimate %d, batched %d",
							pr[0], pr[1], a, b)
					}
				} else if diff := absDiff(a, b); float64(diff) > slack {
					t.Fatalf("[%#x,%#x]: sequential %d and batched %d diverge beyond 2ε·n = %.1f",
						pr[0], pr[1], a, b, slack)
				}
			}
		})
	}
}

func TestConformanceAddNMatchesAdd(t *testing.T) {
	points := confStream(43, 10_000)
	for _, spec := range engineTable() {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			viaAdd := spec.make(t)
			viaAddN := spec.make(t)
			for _, p := range points {
				viaAdd.Add(p)
				viaAddN.AddN(p, 1)
			}
			if viaAdd.N() != viaAddN.N() {
				t.Fatalf("N: Add %d, AddN %d", viaAdd.N(), viaAddN.N())
			}
			rng := stats.NewSplitMix64(11)
			for _, pr := range probeRanges(rng, confConfig().UniverseBits, 80) {
				if a, b := viaAdd.Estimate(pr[0], pr[1]), viaAddN.Estimate(pr[0], pr[1]); a != b {
					t.Fatalf("[%#x,%#x]: Add estimate %d, AddN estimate %d", pr[0], pr[1], a, b)
				}
			}
		})
	}
}

func TestConformanceStatsNAccounting(t *testing.T) {
	points := confStream(44, 15_000)
	for _, spec := range engineTable() {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			eng := spec.make(t)
			var want uint64
			for i, p := range points {
				if i%3 == 0 {
					w := uint64(1 + i%5)
					eng.AddN(p, w)
					want += w
				} else {
					eng.Add(p)
					want++
				}
			}
			if got := eng.N(); got != want {
				t.Fatalf("N() = %d, fed %d", got, want)
			}
			if st := eng.Stats(); st.N != want {
				t.Fatalf("Stats().N = %d, fed %d", st.N, want)
			}
			if st := eng.Finalize(); st.N != want {
				t.Fatalf("Finalize().N = %d, fed %d", st.N, want)
			}
			if got := eng.N(); got != want {
				t.Fatalf("N() after Finalize = %d, fed %d", got, want)
			}
		})
	}
}

func TestConformanceSnapshotRestoreSameEstimates(t *testing.T) {
	points := confStream(45, 20_000)
	for _, spec := range engineTable() {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			if spec.snapshot == nil {
				t.Skip("engine has no snapshot surface")
			}
			eng := spec.make(t)
			for _, p := range points {
				eng.Add(p)
			}
			data := spec.snapshot(t, eng)
			restored := spec.restore(t, data)
			if eng.N() != restored.N() {
				t.Fatalf("N: live %d, restored %d", eng.N(), restored.N())
			}
			rng := stats.NewSplitMix64(17)
			for _, pr := range probeRanges(rng, confConfig().UniverseBits, 120) {
				a := eng.Estimate(pr[0], pr[1])
				b := restored.Estimate(pr[0], pr[1])
				if a != b {
					t.Fatalf("[%#x,%#x]: live estimate %d, restored %d", pr[0], pr[1], a, b)
				}
			}
			// The restored engine must remain live: ingest continues and
			// the counters pick up where the snapshot left off.
			restored.Add(points[0])
			if restored.N() != eng.N()+1 {
				t.Fatalf("restored engine frozen: N = %d after one more Add (live N %d)",
					restored.N(), eng.N())
			}
		})
	}
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
