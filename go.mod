module rap

go 1.24
