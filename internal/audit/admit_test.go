package audit

import (
	"math/rand"
	"testing"

	"rap/internal/admit"
	"rap/internal/core"
)

// gateTree builds a plain 64-bit-universe tree with both the randomized
// admission frontend and the auditor attached — the full hardened
// configuration. The tap observes the offered stream (it fires before the
// admission decision), so the audit's truth covers mass the gate refuses.
func gateTree(t *testing.T, seed uint64) (*core.Tree, *admit.Frontend, *Auditor) {
	t.Helper()
	cfg := testConfig(64)
	tr := core.MustNew(cfg)
	fe := admit.New(admit.Options{Seed: seed})
	tr.SetAdmitter(fe.Gates(cfg.UniverseBits, 1)[0])
	a := New(testOptions())
	taps, err := a.Attach(cfg, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetTap(taps[0])
	return tr, fe, a
}

// TestAdmissionGatedAuditCertifies drives a cold key flood through the
// hardened stack: the gate refuses most of it, and every audit pass must
// still certify — the refused mass appears in UnadmittedN, widens the
// budget, and never surfaces as a violation.
func TestAdmissionGatedAuditCertifies(t *testing.T) {
	tr, fe, a := gateTree(t, 3)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 150_000; i++ {
		tr.Add(rng.Uint64())
		if i%50_000 == 49_999 {
			rep, err := a.Audit()
			if err != nil {
				t.Fatal(err)
			}
			checkClean(t, rep, "mid-flood")
		}
	}
	rep, err := a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "final")
	if rep.UnadmittedN == 0 {
		t.Fatal("flood got fully admitted; the hardened path was not exercised")
	}
	if rep.UnadmittedN != tr.UnadmittedN() {
		t.Fatalf("report carries ledger %d, tree holds %d", rep.UnadmittedN, tr.UnadmittedN())
	}
	// The certified budget must absorb the refused mass on top of the
	// paper's ε·n term — otherwise certification under admission is
	// vacuous or dishonest.
	if rep.Budget < rep.EpsN+float64(rep.UnadmittedN) {
		t.Fatalf("budget %.1f does not cover eps*n %.1f + unadmitted %d",
			rep.Budget, rep.EpsN, rep.UnadmittedN)
	}
	if fe.Stats().Unadmitted != rep.UnadmittedN {
		t.Fatalf("frontend refused %d, report says %d", fe.Stats().Unadmitted, rep.UnadmittedN)
	}
}

// denyHalf is a fault-injection admitter local to the audit: it refuses
// every other key outright, independent of the admit package. The audit
// must certify any admitter's refusals, as long as the tree ledgers them.
type denyHalf struct{}

func (denyHalf) Admit(p uint64, weight uint64, plen int) bool { return p&1 == 0 }
func (denyHalf) Pulse(core.Stats)                             {}
func (denyHalf) TreeReplaced()                                {}

func TestAuditCertifiesArbitraryAdmitter(t *testing.T) {
	cfg := testConfig(24)
	tr := core.MustNew(cfg)
	tr.SetAdmitter(denyHalf{})
	a := New(testOptions())
	taps, err := a.Attach(cfg, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetTap(taps[0])
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60_000; i++ {
		tr.Add(rng.Uint64() >> 40)
	}
	rep, err := a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "deny-half")
	if rep.UnadmittedN == 0 {
		t.Fatal("deny-half admitter refused nothing")
	}
	// Roughly half the mass is refused; the sampled ranges' truths still
	// sit inside [estimate, high] because high carries the ledger.
	for _, r := range rep.Ranges {
		if r.High < r.Truth {
			t.Fatalf("range [%x,%x]: high %d below truth %d despite ledger", r.Lo, r.Hi, r.High, r.Truth)
		}
	}
}

// TestLedgerLossFaultRebases injects the nastiest admission fault: the
// tree (including its unadmitted ledger) is rolled back to an old
// snapshot while the tap's truth keeps the full stream. The audit must
// notice the regression and rebase rather than certify or false-alarm.
func TestLedgerLossFaultRebases(t *testing.T) {
	cfg := testConfig(64)
	c, err := core.NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fe := admit.New(admit.Options{Seed: 4})
	c.SetAdmitter(fe.Gates(cfg.UniverseBits, 1)[0])
	a := New(testOptions())
	taps, err := a.Attach(cfg, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTap(taps[0])

	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 40_000; i++ {
		c.Add(rng.Uint64())
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "pre-fault")
	if rep.UnadmittedN == 0 {
		t.Fatal("no refusals before the fault; ledger-loss would be invisible")
	}

	// The fault: ingest far past the snapshot, then restore it. Both
	// credited mass and ledgered mass regress below tapped truth.
	for i := 0; i < 40_000; i++ {
		c.Add(rng.Uint64())
	}
	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	rep, err = a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != "rebased" || rep.RebasesTotal == 0 {
		t.Fatalf("ledger loss not rebased: verdict %q, rebases %d", rep.Verdict, rep.RebasesTotal)
	}
	if rep.ViolationsTotal != 0 {
		t.Fatalf("rebase path raised %d false violations", rep.ViolationsTotal)
	}

	// The new epoch must audit cleanly with the gate still installed.
	for i := 0; i < 40_000; i++ {
		c.Add(rng.Uint64())
	}
	rep, err = a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "post-fault")
}
