// Package audit is the online accuracy self-audit of the profiler: a
// shadow subsystem that taps the live event stream, keeps exact counts
// (internal/exact) for a bounded set of deterministically sampled ranges,
// and periodically compares the tree's Estimate/EstimateBounds answers
// against that ground truth — turning the paper's ε·n guarantee from a
// theorem into a continuously checked runtime invariant.
//
// # What is checked
//
// For every audited range R the tree promises, under a consistent cut:
//
//   - low ≤ true(R) ≤ high, where (low, high) = EstimateBounds(R): the
//     estimate is a lower bound and the high side brackets the truth;
//   - true(R) − low ≤ ε·n for tracked (b-adic, prefix-aligned) ranges —
//     and every audited range is chosen b-adic so the contract applies.
//
// The audit cannot know true(R) exactly for events that flowed before it
// started watching, so it works with a one-sided decomposition:
//
//	truth(R) ≤ true(R) ≤ truth(R) + slack(R)
//
// where truth(R) is the exact count of tapped events inside R and
// slack(R) is the stream mass that had already passed when R was adopted
// (events the tap could not have attributed). Both inequalities make the
// checks sound, never optimistic:
//
//   - truth(R) > high is always a genuine violation (high must bracket
//     any subset of the true mass — the upper check);
//   - low > truth(R) + slack(R) is always a genuine violation (the
//     estimator claims more mass than can possibly exist — the
//     inflated-estimator check);
//   - max(0, truth(R) − low) is a lower bound on the true underestimate,
//     so exceeding the certified budget is a genuine contract violation
//     (the bound check).
//
// The certified budget is the bound the engine actually promises at
// runtime, not the paper's idealized ε·n: the cold-start guard floors the
// split threshold at MinSplitCount per level, a coalesced update of
// weight w can overshoot a node's threshold by w before the split, and a
// sharded engine answers from the union of k trees whose budgets sum.
// That gives ε·n + k·H·(MinSplitCount + wmax), which collapses toward
// ε·n exactly where the paper's asymptotic claim lives (weight-1 streams,
// n large against the guard). The underestimate/ε·n ratio is still
// exported verbatim so dashboards watch the paper's contract directly.
//
// A correct tree can therefore never trip the violation counter, no
// matter when ranges are adopted or how the stream is interleaved; the
// e2e suites assert exactly that, and a fault-injected estimator is
// caught by the same checks.
//
// # Sampling
//
// Range adoption is hash-gated (splitmix-style finalizer, no math/rand on
// the hot path): an unaudited event value p becomes the seed of a new
// audited range when hash(p) lands in 1-in-SamplePeriod, until MaxRanges
// ranges exist. Ranges are b-adic blocks of at least SpanBits span, so
// each exact profiler is bounded by 2^spanBits distinct values and the
// whole audit by MaxRanges·2^spanBits — bounded memory over adversarial
// streams by construction.
//
// # Consistency
//
// Comparing truth captured at one instant against estimates computed at
// another would fabricate violations out of in-flight events. Audit
// therefore reads truth and estimates under one cut: engines exposing
// MergedTreeCut (sharded) or CloneCut (concurrent) run the truth capture
// while all tree locks are held; plain trees are assumed externally
// serialized, per their own contract.
package audit

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"rap/internal/core"
	"rap/internal/exact"
	"rap/internal/obs"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxRanges    = 32
	DefaultSpanBits     = 12
	DefaultSamplePeriod = 8192
	DefaultNearRatio    = 0.9
)

// Options configures an Auditor. The zero value selects all defaults.
type Options struct {
	// MaxRanges bounds how many sampled ranges are audited at once.
	MaxRanges int
	// SpanBits is the minimum width, in bits, of an audited range. The
	// actual width is rounded up so ranges are b-adic (potential tree
	// nodes), keeping them inside the paper's tracked-range contract.
	// Memory per range is bounded by 2^(actual span bits) distinct values.
	SpanBits int
	// SamplePeriod is the adoption gate: one in SamplePeriod of the hash
	// space seeds a new audited range. Rounded up to a power of two.
	SamplePeriod uint64
	// NearRatio is the underestimate/(ε·n) ratio at or above which a
	// range is reported as near-bound (and traced) without violating.
	NearRatio float64
	// Seed perturbs the adoption hash so restarted deployments audit
	// different ranges.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.MaxRanges <= 0 {
		o.MaxRanges = DefaultMaxRanges
	}
	if o.SpanBits <= 0 {
		o.SpanBits = DefaultSpanBits
	}
	if o.SamplePeriod == 0 {
		o.SamplePeriod = DefaultSamplePeriod
	}
	if o.SamplePeriod&(o.SamplePeriod-1) != 0 {
		o.SamplePeriod = 1 << bits.Len64(o.SamplePeriod)
	}
	if o.NearRatio <= 0 {
		o.NearRatio = DefaultNearRatio
	}
	return o
}

// Estimator is the query surface the audit checks: any engine answering
// range queries over a stream of known length. Engines additionally
// exposing MergedTreeCut or CloneCut (the sharded engine and
// ConcurrentTree) are audited under a consistent cut; a bare Estimator is
// assumed externally serialized against ingest during Audit.
type Estimator interface {
	N() uint64
	EstimateBounds(lo, hi uint64) (low, high uint64)
}

// unadmittedEstimator is optionally implemented by engines carrying an
// admission gate's refused-weight ledger (core.Tree, core.ConcurrentTree,
// shard.Engine). The taps observe the offered stream — including weight
// the gate refuses — so the audit's mass accounting must add the ledger
// to the tree's credited mass wherever the two are compared.
type unadmittedEstimator interface {
	UnadmittedN() uint64
}

// unadmittedOf reads the estimator's refused-weight ledger, zero when the
// engine has no admission gate.
func unadmittedOf(est Estimator) uint64 {
	if u, ok := est.(unadmittedEstimator); ok {
		return u.UnadmittedN()
	}
	return 0
}

// Errors returned by Attach and Audit.
var (
	ErrAttached     = errors.New("audit: auditor already attached")
	ErrNotAttached  = errors.New("audit: auditor not attached")
	ErrNilEstimator = errors.New("audit: nil estimator")
)

// auditRange is one audited b-adic range. lo/hi are immutable after
// publication; slack is finalized under adoptMu right after publication
// and only read under adoptMu (Audit), so taps never touch it.
type auditRange struct {
	lo, hi uint64
	// slack is the stream mass that had already passed when this range
	// was adopted: events the tap could not have attributed to it. The
	// true count in [lo, hi] is at most truth + slack.
	slack uint64
}

// rangeSet is the copy-on-write published set of audited ranges, sorted
// by lo. Taps read it lock-free; adoption replaces it under adoptMu.
type rangeSet struct {
	ranges []auditRange
}

// find returns the index of the range containing p, or -1.
func (rs *rangeSet) find(p uint64) int {
	lo, hi := 0, len(rs.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		if rs.ranges[mid].hi < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(rs.ranges) && rs.ranges[lo].lo <= p {
		return lo
	}
	return -1
}

// tapState is one shard's slice of the audit: a core.Tap installed on
// that shard's tree. n counts all tapped mass (atomically: adoption on
// one shard reads every shard's n without that shard's lock); the exact
// profiler holds only events inside audited ranges and is touched solely
// under the owning shard's lock (writes) or a full cut (reads).
type tapState struct {
	a     *Auditor
	shard int
	n     atomic.Uint64
	truth *exact.Profiler
	// maxW is the largest single tapped weight this epoch: a coalesced
	// update credits its whole weight one level up from where per-event
	// updates would land it, so the certified underestimate budget grows
	// with it. Written under the shard lock, read under the cut.
	maxW uint64
}

// Auditor owns the audit state for one engine: per-shard taps, the
// published range set, and the check counters. Create with New, wire with
// Attach (or rap.WithAudit), drive with Audit, read with Report.
type Auditor struct {
	opts Options
	cfg  core.Config
	est  Estimator
	taps []*tapState

	mask     uint64 // universe mask from cfg
	span     uint64 // audited range width minus one (hi = lo | span)
	hashSeed uint64

	// baseN is the stream mass the estimator held when the audit
	// attached (or last rebased): mass no tap ever saw.
	baseN uint64

	ranges  atomic.Pointer[rangeSet]
	adoptMu sync.Mutex // serializes adoption and slack reads (cold path)
	full    atomic.Bool

	// resetPending is raised by TreeReplaced (snapshot restore, shard
	// adoption): tapped truth may no longer match the tree. The actual
	// rebase is deferred to the next Audit pass, under the cut.
	resetPending atomic.Bool

	auditMu sync.Mutex // serializes Audit passes
	last    atomic.Pointer[Report]

	// running totals, written under auditMu
	passes     uint64
	checks     uint64
	violations uint64
	rebases    uint64

	// exposition wiring, set by Register before any audit traffic
	mChecks     *obs.Counter
	mViolations *obs.Counter
	mRebases    *obs.Counter
	mPasses     *obs.Counter
	mRatio      *obs.Histogram
	trace       *obs.StructuralTrace
}

// New builds an Auditor with the given options. The auditor is inert
// until Attach wires it to an engine.
func New(opts Options) *Auditor {
	a := &Auditor{opts: opts.withDefaults()}
	a.ranges.Store(&rangeSet{})
	return a
}

// Options returns the normalized options the auditor runs.
func (a *Auditor) Options() Options { return a.opts }

// Attach wires the auditor to an estimator: cfg must be the engine's
// tree configuration, shards the number of independent taps to mint (1
// for unsharded engines). It returns one core.Tap per shard, to be
// installed via Tree.SetTap / ConcurrentTree.SetTap / Engine.SetShardTaps.
// Stream mass already in the estimator becomes baseN: pre-attach mass is
// slack, never truth, so attaching to a warm engine is sound. An auditor
// attaches exactly once.
func (a *Auditor) Attach(cfg core.Config, est Estimator, shards int) ([]core.Tap, error) {
	if est == nil {
		return nil, ErrNilEstimator
	}
	if shards < 1 {
		return nil, fmt.Errorf("audit: shards %d < 1", shards)
	}
	a.adoptMu.Lock()
	defer a.adoptMu.Unlock()
	if a.est != nil {
		return nil, ErrAttached
	}
	norm, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	a.cfg = norm
	a.est = est
	a.mask = suffixMask(norm.UniverseBits)
	a.span = a.spanFor(norm)
	a.hashSeed = a.opts.Seed ^ 0x9e3779b97f4a7c15
	// Pre-attach mass the taps never saw includes weight an admission gate
	// had already refused: it is part of the offered stream the invariant
	// baseN + tapN == n + unadmitted reconciles against.
	a.baseN = est.N() + unadmittedOf(est)
	a.taps = make([]*tapState, shards)
	taps := make([]core.Tap, shards)
	for i := range a.taps {
		a.taps[i] = &tapState{a: a, shard: i, truth: exact.New()}
		taps[i] = a.taps[i]
	}
	return taps, nil
}

// spanFor returns the audited range width minus one: the widest b-adic
// block whose span is at least SpanBits, i.e. prefix length floored to a
// multiple of the split stride. b-adic alignment keeps audited ranges
// inside the set of potential tree nodes, where the ε·n bound is promised
// (tracked ranges, paper Section 2.2).
func (a *Auditor) spanFor(cfg core.Config) uint64 {
	shift := bits.TrailingZeros(uint(cfg.Branch))
	plen := 0
	if cfg.UniverseBits > a.opts.SpanBits {
		plen = (cfg.UniverseBits - a.opts.SpanBits) / shift * shift
	}
	return suffixMask(cfg.UniverseBits - plen)
}

func suffixMask(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<bits - 1
}

// hash64 is the splitmix64 finalizer: a full-avalanche bijection, so the
// 1-in-SamplePeriod adoption gate is unbiased for any input structure.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Tap observes one event on this tap's shard (see core.Tap). Hot path:
// one atomic add, one pointer load, one binary search over ≤ MaxRanges
// entries; the exact profiler and the adoption gate are only touched for
// events inside (or seeding) audited ranges.
func (s *tapState) Tap(p uint64, weight uint64) {
	s.n.Add(weight)
	if weight > s.maxW {
		s.maxW = weight
	}
	a := s.a
	rs := a.ranges.Load()
	if i := rs.find(p); i >= 0 {
		s.truth.AddN(p, weight)
		return
	}
	if a.full.Load() {
		return
	}
	if hash64(p^a.hashSeed)&(a.opts.SamplePeriod-1) == 0 {
		a.adopt(p)
	}
}

// TreeReplaced implements core.Tap: raise the rebase flag; the next Audit
// pass rebases under its cut (see Audit).
func (s *tapState) TreeReplaced() { s.a.resetPending.Store(true) }

// adopt publishes a new audited range containing p. The triggering event
// itself is not recorded as truth: it is covered by the range's slack,
// which is computed *after* publication — any event that loaded the old
// range set (and so bypassed the new range's profiler) is included in the
// mass the slack charges, bounding the adoption race soundly.
func (a *Auditor) adopt(p uint64) {
	lo := p &^ a.span & a.mask
	hi := (lo | a.span) & a.mask
	a.adoptMu.Lock()
	defer a.adoptMu.Unlock()
	old := a.ranges.Load()
	if len(old.ranges) >= a.opts.MaxRanges {
		a.full.Store(true)
		return
	}
	if old.find(p) >= 0 {
		return // raced: another shard adopted this block already
	}
	ranges := make([]auditRange, 0, len(old.ranges)+1)
	at := -1
	for _, r := range old.ranges {
		if at < 0 && lo < r.lo {
			at = len(ranges)
			ranges = append(ranges, auditRange{lo: lo, hi: hi})
		}
		ranges = append(ranges, r)
	}
	if at < 0 {
		at = len(ranges)
		ranges = append(ranges, auditRange{lo: lo, hi: hi})
	}
	nr := &rangeSet{ranges: ranges}
	a.ranges.Store(nr)
	// Mass that can have missed this range's profiler: everything before
	// the store, plus in-flight events that loaded the old set. Summing
	// the tap counters *after* the store covers both — an event absent
	// from this sum must have loaded the new set and recorded itself.
	// Taps never read slack (Audit does, under this same mutex), so the
	// post-publication write does not race.
	slack := a.baseN
	for _, t := range a.taps {
		slack += t.n.Load()
	}
	nr.ranges[at].slack = slack
	if len(nr.ranges) >= a.opts.MaxRanges {
		a.full.Store(true)
	}
}
