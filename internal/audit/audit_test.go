package audit

import (
	"math/rand"
	"sync"
	"testing"

	"rap/internal/core"
	"rap/internal/obs"
	"rap/internal/shard"
)

func testConfig(ub int) core.Config {
	cfg := core.DefaultConfig()
	cfg.UniverseBits = ub
	cfg.Epsilon = 0.05
	cfg.Branch = 4
	return cfg
}

// aggressive options: adopt eagerly so small test streams exercise the
// range machinery.
func testOptions() Options {
	return Options{MaxRanges: 16, SpanBits: 8, SamplePeriod: 4, Seed: 1}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxRanges != DefaultMaxRanges || o.SpanBits != DefaultSpanBits ||
		o.SamplePeriod != DefaultSamplePeriod || o.NearRatio != DefaultNearRatio {
		t.Fatalf("unexpected defaults: %+v", o)
	}
	if o := (Options{SamplePeriod: 1000}).withDefaults(); o.SamplePeriod != 1024 {
		t.Fatalf("SamplePeriod 1000 rounded to %d, want 1024", o.SamplePeriod)
	}
	if o := (Options{SamplePeriod: 256}).withDefaults(); o.SamplePeriod != 256 {
		t.Fatalf("power-of-two SamplePeriod changed to %d", o.SamplePeriod)
	}
}

func TestAttachErrors(t *testing.T) {
	a := New(testOptions())
	if _, err := a.Attach(testConfig(24), nil, 1); err != ErrNilEstimator {
		t.Fatalf("nil estimator: err = %v", err)
	}
	tr := core.MustNew(testConfig(24))
	if _, err := a.Attach(testConfig(24), tr, 0); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := a.Attach(testConfig(24), tr, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Attach(testConfig(24), tr, 1); err != ErrAttached {
		t.Fatalf("double attach: err = %v", err)
	}
	if _, err := New(testOptions()).Attach(core.Config{UniverseBits: -1}, tr, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAuditNotAttached(t *testing.T) {
	if _, err := New(testOptions()).Audit(); err != ErrNotAttached {
		t.Fatalf("err = %v, want ErrNotAttached", err)
	}
}

// attachTree builds a plain tree with an attached auditor; the tap is
// installed directly on the tree.
func attachTree(t *testing.T, cfg core.Config, opts Options) (*core.Tree, *Auditor) {
	t.Helper()
	tr := core.MustNew(cfg)
	a := New(opts)
	taps, err := a.Attach(cfg, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetTap(taps[0])
	return tr, a
}

func checkClean(t *testing.T, rep Report, name string) {
	t.Helper()
	if rep.Verdict != "ok" || rep.PassViolations != 0 || rep.ViolationsTotal != 0 {
		t.Fatalf("%s: verdict %q with %d violations (total %d): %+v",
			name, rep.Verdict, rep.PassViolations, rep.ViolationsTotal, rep.Ranges)
	}
	if float64(rep.MaxUnderestimate) > rep.Budget {
		t.Fatalf("%s: max underestimate %d exceeds certified budget %.1f (eps*n %.1f)",
			name, rep.MaxUnderestimate, rep.Budget, rep.EpsN)
	}
	for _, r := range rep.Ranges {
		if r.Truth > r.High {
			t.Fatalf("%s: [%x,%x] truth %d above high %d", name, r.Lo, r.Hi, r.Truth, r.High)
		}
	}
}

func TestPlainTreeWorkloads(t *testing.T) {
	workloads := map[string]func(r *rand.Rand) uint64{
		"zipf": func(r *rand.Rand) uint64 {
			z := rand.NewZipf(r, 1.2, 1, 1<<20)
			return z.Uint64()
		},
		"uniform": func(r *rand.Rand) uint64 { return r.Uint64() >> 40 },
		// adversarial: tight spans that straddle audited-range borders,
		// plus heavy repeats at block edges.
		"spans": func(r *rand.Rand) uint64 {
			base := uint64(r.Intn(16)) << 8
			return base + uint64(r.Intn(3)) - 1&255
		},
	}
	for name, gen := range workloads {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(24)
			tr, a := attachTree(t, cfg, testOptions())
			rng := rand.New(rand.NewSource(7))
			next := gen(rng)
			for i := 0; i < 200_000; i++ {
				tr.Add(next)
				next = gen(rng)
				if i%50_000 == 49_999 {
					rep, err := a.Audit()
					if err != nil {
						t.Fatal(err)
					}
					checkClean(t, rep, name)
				}
			}
			rep, err := a.Audit()
			if err != nil {
				t.Fatal(err)
			}
			checkClean(t, rep, name)
			if len(rep.Ranges) < 2 {
				t.Fatalf("%s: no sampled ranges adopted: %+v", name, rep)
			}
			if rep.N != tr.N() {
				t.Fatalf("%s: report N %d != tree N %d", name, rep.N, tr.N())
			}
			// universe row is exact
			if u := rep.Ranges[0]; u.Kind != "universe" || u.Truth != rep.N || u.Estimate != rep.N {
				t.Fatalf("%s: universe row %+v, want exact N %d", name, u, rep.N)
			}
		})
	}
}

func TestBatchedPathsAreTapped(t *testing.T) {
	cfg := testConfig(24)
	tr, a := attachTree(t, cfg, testOptions())
	pts := make([]uint64, 1000)
	for i := range pts {
		pts[i] = uint64(i % 512)
	}
	tr.AddBatch(pts)
	tr.AddSorted(pts[:500])
	tr.AddSamples([]core.Sample{{Value: 3, Weight: 10}, {Value: 9, Weight: 0}})
	rep, err := a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "batched")
	if rep.TapN != tr.N() {
		t.Fatalf("tap mass %d != tree N %d: a batched path is missing the tap", rep.TapN, tr.N())
	}
}

func TestShardedEngineConcurrent(t *testing.T) {
	cfg := testConfig(24)
	e, err := shard.New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := New(testOptions())
	taps, err := a.Attach(cfg, e, e.Shards())
	if err != nil {
		t.Fatal(err)
	}
	e.SetShardTaps(func(i int) core.Tap { return taps[i] })

	reg := obs.NewRegistry()
	trace := obs.NewStructuralTrace(1, 256)
	a.Register(reg, trace)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for f := 0; f < 4; f++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := e.Handle()
			rng := rand.New(rand.NewSource(seed))
			z := rand.NewZipf(rng, 1.1, 1, 1<<22)
			buf := make([]uint64, 0, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				buf = buf[:0]
				for j := 0; j < 64; j++ {
					buf = append(buf, z.Uint64())
				}
				h.AddBatch(buf)
			}
		}(int64(f + 1))
	}
	// Audit concurrently with live ingest: the cut must keep every pass
	// clean even while all four feeders are mid-stream.
	for pass := 0; pass < 20; pass++ {
		rep, err := a.Audit()
		if err != nil {
			t.Fatal(err)
		}
		checkClean(t, rep, "sharded")
	}
	close(stop)
	wg.Wait()
	rep, err := a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "sharded-final")
	if rep.N != e.N() {
		t.Fatalf("report N %d != engine N %d", rep.N, e.N())
	}
	if got := reg.Counter(MetricAuditViolations, "").Value(); got != 0 {
		t.Fatalf("violations counter = %d", got)
	}
	if reg.Counter(MetricAuditPasses, "").Value() != rep.Passes {
		t.Fatal("passes counter does not match report")
	}
}

// brokenEstimator inflates the lower bound and deflates the upper bound —
// the deliberately broken estimator of the acceptance criteria. It only
// implements the plain Estimator surface, so the audit exercises the
// fallback (serialized) path and actually consumes the faulty answers.
type brokenEstimator struct {
	tree *core.Tree
}

func (b *brokenEstimator) N() uint64 { return b.tree.N() }
func (b *brokenEstimator) EstimateBounds(lo, hi uint64) (uint64, uint64) {
	low, high := b.tree.EstimateBounds(lo, hi)
	if hi-lo < 1<<20 { // leave the universe row honest; break range answers
		return low*2 + b.tree.N(), high / 2
	}
	return low, high
}

func TestBrokenEstimatorCaught(t *testing.T) {
	cfg := testConfig(24)
	tr := core.MustNew(cfg)
	be := &brokenEstimator{tree: tr}
	a := New(testOptions())
	taps, err := a.Attach(cfg, be, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetTap(taps[0])
	reg := obs.NewRegistry()
	trace := obs.NewStructuralTrace(1000, 64) // heavy sampling: violations must still land
	a.Register(reg, trace)

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50_000; i++ {
		tr.Add(uint64(rng.Intn(1 << 16)))
	}
	rep, err := a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != "violated" || rep.PassViolations == 0 {
		t.Fatalf("broken estimator not caught: %+v", rep)
	}
	if got := reg.Counter(MetricAuditViolations, "").Value(); got == 0 {
		t.Fatal("violations counter still 0")
	}
	found := false
	for _, ev := range trace.Events() {
		if ev.Op == TraceOpViolation {
			found = true
		}
	}
	if !found {
		t.Fatal("no audit_violation event in the trace ring")
	}
}

func TestRestoreTriggersRebase(t *testing.T) {
	cfg := testConfig(24)
	c, err := core.NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := New(testOptions())
	taps, err := a.Attach(cfg, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTap(taps[0])
	for i := 0; i < 20_000; i++ {
		c.Add(uint64(i % 4096))
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "pre-restore")

	// More ingest, then restore the older snapshot: tapped truth now
	// exceeds the tree. Without the rebase this would report violations.
	for i := 0; i < 20_000; i++ {
		c.Add(uint64(i % 4096))
	}
	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	rep, err = a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != "rebased" || rep.RebasesTotal != 1 {
		t.Fatalf("restore not rebased: %+v", rep)
	}
	// Post-rebase epoch starts clean and audits normally again.
	for i := 0; i < 20_000; i++ {
		c.Add(uint64(i % 4096))
	}
	rep, err = a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "post-restore")
	if rep.BaseN == 0 {
		t.Fatal("rebase should have moved pre-restore mass into baseN")
	}
}

func TestShardRestoreAndAdoptRebase(t *testing.T) {
	cfg := testConfig(24)
	e, err := shard.New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := New(testOptions())
	taps, err := a.Attach(cfg, e, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.SetShardTaps(func(i int) core.Tap { return taps[i] })
	for i := 0; i < 10_000; i++ {
		e.Add(uint64(i % 2048))
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		e.Add(uint64(i % 2048))
	}
	if err := e.Restore(snap); err != nil {
		t.Fatal(err)
	}
	rep, err := a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != "rebased" {
		t.Fatalf("shard restore not rebased: %+v", rep)
	}
	// Taps survived the restore: new ingest is observed again.
	for i := 0; i < 10_000; i++ {
		e.Add(uint64(i % 2048))
	}
	rep, err = a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "post-shard-restore")
	if rep.TapN == 0 {
		t.Fatal("taps lost after Restore")
	}

	// AdoptShard (the ingest recovery path) also rebases.
	e.AdoptShard(0, core.MustNew(cfg))
	rep, err = a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != "rebased" {
		t.Fatalf("AdoptShard not rebased: %+v", rep)
	}
}

func TestConcurrentMergeRebases(t *testing.T) {
	cfg := testConfig(24)
	c, err := core.NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := New(testOptions())
	taps, err := a.Attach(cfg, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTap(taps[0])
	for i := 0; i < 5_000; i++ {
		c.Add(uint64(i % 512))
	}
	other := core.MustNew(cfg)
	for i := 0; i < 5_000; i++ {
		other.Add(uint64(i % 512))
	}
	if err := c.Merge(other); err != nil {
		t.Fatal(err)
	}
	rep, err := a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != "rebased" {
		t.Fatalf("merged mass not rebased: %+v", rep)
	}
}

func TestRangeSetFind(t *testing.T) {
	rs := &rangeSet{ranges: []auditRange{
		{lo: 0x100, hi: 0x1ff}, {lo: 0x300, hi: 0x3ff}, {lo: 0x800, hi: 0x8ff},
	}}
	cases := []struct {
		p    uint64
		want int
	}{
		{0x0, -1}, {0x100, 0}, {0x1ff, 0}, {0x200, -1}, {0x300, 1},
		{0x3ff, 1}, {0x400, -1}, {0x800, 2}, {0x8ff, 2}, {0x900, -1},
	}
	for _, c := range cases {
		if got := rs.find(c.p); got != c.want {
			t.Fatalf("find(%#x) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestAdoptionBoundedAndAligned(t *testing.T) {
	cfg := testConfig(24)
	tr, a := attachTree(t, cfg, Options{MaxRanges: 4, SpanBits: 8, SamplePeriod: 1})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100_000; i++ {
		tr.Add(rng.Uint64())
	}
	rs := a.ranges.Load()
	if len(rs.ranges) != 4 {
		t.Fatalf("adopted %d ranges, want the MaxRanges cap of 4", len(rs.ranges))
	}
	span := a.span
	for i, r := range rs.ranges {
		if r.lo&span != 0 || r.hi != r.lo|span {
			t.Fatalf("range %d [%x,%x] not an aligned block of span %x", i, r.lo, r.hi, span)
		}
		if i > 0 && r.lo <= rs.ranges[i-1].hi {
			t.Fatalf("ranges overlap or unsorted: %x after %x", r.lo, rs.ranges[i-1].hi)
		}
		if r.slack == 0 {
			t.Fatalf("range %d published without slack", i)
		}
	}
}

func TestWarmAttachUsesBaseN(t *testing.T) {
	cfg := testConfig(24)
	tr := core.MustNew(cfg)
	for i := 0; i < 30_000; i++ {
		tr.Add(uint64(i % 1024))
	}
	a := New(testOptions())
	taps, err := a.Attach(cfg, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetTap(taps[0])
	for i := 0; i < 30_000; i++ {
		tr.Add(uint64(i % 1024))
	}
	rep, err := a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "warm-attach")
	if rep.BaseN != 30_000 || rep.TapN != 30_000 {
		t.Fatalf("baseN %d tapN %d, want 30000/30000", rep.BaseN, rep.TapN)
	}
}
