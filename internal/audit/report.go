package audit

import (
	"math"

	"rap/internal/core"
	"rap/internal/exact"
	"rap/internal/obs"
)

// Audit metric names.
const (
	MetricAuditRanges      = "rap_audit_ranges"
	MetricAuditChecks      = "rap_audit_checks_total"
	MetricAuditViolations  = "rap_audit_violations_total"
	MetricAuditRebases     = "rap_audit_rebases_total"
	MetricAuditPasses      = "rap_audit_passes_total"
	MetricAuditMaxUnder    = "rap_audit_max_underestimate"
	MetricAuditWorstRatio  = "rap_audit_worst_ratio"
	MetricAuditCoverage    = "rap_audit_coverage"
	MetricAuditBoundRatio  = "rap_audit_bound_ratio"
	MetricAuditTapMass     = "rap_audit_tap_mass"
	MetricAuditTruthValues = "rap_audit_truth_values"
)

// Trace ring ops emitted by the audit.
const (
	TraceOpViolation = "audit_violation"
	TraceOpNearBound = "audit_near_bound"
)

// RatioBuckets is the ladder for the underestimate/(ε·n) ratio histogram:
// ~0.001 up to 2. A healthy profiler keeps all mass at the very bottom;
// anything at or beyond 1 is a contract violation.
func RatioBuckets() []float64 { return obs.ExpBuckets(1.0/1024, 2, 12) }

// RangeReport is one audited range of a Report: the shadow truth beside
// the tree's answers and the verdict of the three soundness checks.
type RangeReport struct {
	Lo   uint64 `json:"lo"`
	Hi   uint64 `json:"hi"`
	Kind string `json:"kind"` // "universe" | "sampled"
	// Truth is the exact tapped mass in [Lo, Hi]; Slack bounds the mass
	// that predates this range's adoption: Truth ≤ true ≤ Truth+Slack.
	Truth uint64 `json:"truth"`
	Slack uint64 `json:"slack"`
	// Estimate and High are the tree's EstimateBounds under the cut.
	Estimate uint64 `json:"estimate"`
	High     uint64 `json:"high"`
	// Underestimate is max(0, Truth−Estimate), a lower bound on the true
	// underestimate; Ratio is Underestimate/(ε·n), which the contract
	// keeps strictly below 1.
	Underestimate uint64  `json:"underestimate"`
	Ratio         float64 `json:"ratio"`
	Violation     bool    `json:"violation"`
	Reason        string  `json:"reason,omitempty"`
}

// Report is one audit pass over every audited range, plus running totals.
// Zero violations is the expected steady state; any violation means the
// engine broke the paper's accuracy contract (or its implementation).
type Report struct {
	N uint64 `json:"n"` // mass credited to the tree at the cut
	// UnadmittedN is the weight the admission gate refused: observed by
	// the taps (so part of truth) but never credited to any node. Zero
	// when no admission frontend is wired.
	UnadmittedN uint64  `json:"unadmitted_n"`
	TapN        uint64  `json:"tap_n"`    // mass observed by the taps
	BaseN       uint64  `json:"base_n"`   // pre-attach (or pre-rebase) mass
	Coverage    float64 `json:"coverage"` // fraction of offered mass inside audited ranges
	Epsilon     float64 `json:"epsilon"`
	EpsN        float64 `json:"eps_n"` // the paper's worst-case underestimate, ε·n
	// Budget is the certified underestimate bound the violation check
	// enforces: ε·n + shards·H·(MinSplitCount + max tapped weight) +
	// unadmitted. Refused weight was never credited anywhere, so all of it
	// may be missing from any range's estimate — the admission-adjusted
	// budget charges it in full, which is exactly what lets the audit keep
	// certifying while the frontend degrades under attack. It converges to
	// EpsN where the paper's claim applies (weight-1 streams, no admission
	// pressure, n large against the cold-start guard).
	Budget float64 `json:"budget"`

	Ranges           []RangeReport `json:"ranges"`
	MaxUnderestimate uint64        `json:"max_underestimate"`
	WorstRatio       float64       `json:"worst_ratio"`
	PassViolations   int           `json:"pass_violations"`
	TruthValues      int           `json:"truth_values"` // distinct values in the shadow profilers

	ChecksTotal     uint64 `json:"checks_total"`
	ViolationsTotal uint64 `json:"violations_total"`
	RebasesTotal    uint64 `json:"rebases_total"`
	Passes          uint64 `json:"passes"`

	// Verdict: "ok" (all checks passed), "violated" (at least one check
	// failed this pass), or "rebased" (the tree was replaced or merged
	// out from under the taps; truth was rebased instead of checked).
	Verdict string `json:"verdict"`
}

// Register wires the auditor's metrics into reg and its violation events
// into tr (either may be nil to skip that sink). Call once, before audit
// traffic. Gauge families read from the last completed pass; counters
// accumulate across passes.
func (a *Auditor) Register(reg *obs.Registry, tr *obs.StructuralTrace) {
	a.trace = tr
	if reg == nil {
		return
	}
	a.mChecks = reg.Counter(MetricAuditChecks,
		"Audited range checks performed.")
	a.mViolations = reg.Counter(MetricAuditViolations,
		"Accuracy contract violations detected; must stay 0 for a correct engine.")
	a.mRebases = reg.Counter(MetricAuditRebases,
		"Audit truth rebases (tree restored, adopted, or merged under the taps).")
	a.mPasses = reg.Counter(MetricAuditPasses,
		"Completed audit passes.")
	a.mRatio = reg.Histogram(MetricAuditBoundRatio,
		"Per-range underestimate/(eps*n) ratio; >= 1 violates the contract.",
		RatioBuckets())
	reg.GaugeFunc(MetricAuditRanges,
		"Audited ranges at the last pass (universe row included).",
		func() float64 {
			if r := a.last.Load(); r != nil {
				return float64(len(r.Ranges))
			}
			return 0
		})
	reg.GaugeFunc(MetricAuditMaxUnder,
		"Largest observed underestimate at the last pass, in events.",
		func() float64 {
			if r := a.last.Load(); r != nil {
				return float64(r.MaxUnderestimate)
			}
			return 0
		})
	reg.GaugeFunc(MetricAuditWorstRatio,
		"Worst underestimate/(eps*n) ratio at the last pass.",
		func() float64 {
			if r := a.last.Load(); r != nil {
				return r.WorstRatio
			}
			return 0
		})
	reg.GaugeFunc(MetricAuditCoverage,
		"Fraction of stream mass inside audited ranges at the last pass.",
		func() float64 {
			if r := a.last.Load(); r != nil {
				return r.Coverage
			}
			return 0
		})
	reg.GaugeFunc(MetricAuditTapMass,
		"Stream mass observed by the audit taps since attach/rebase.",
		func() float64 {
			var n uint64
			for _, t := range a.taps {
				n += t.n.Load()
			}
			return float64(n)
		})
	reg.GaugeFunc(MetricAuditTruthValues,
		"Distinct values held by the exact shadow profilers at the last pass (memory proxy).",
		func() float64 {
			if r := a.last.Load(); r != nil {
				return float64(r.TruthValues)
			}
			return 0
		})
}

// Report returns the report of the last completed Audit pass, or ok=false
// if none has run yet.
func (a *Auditor) Report() (Report, bool) {
	if r := a.last.Load(); r != nil {
		return *r, true
	}
	return Report{}, false
}

// cut primitives optionally implemented by the estimator. Both run the
// capture callback while every engine lock is held, handing it the tree
// the checks will query.
type mergedCutter interface {
	MergedTreeCut(capture func(m *core.Tree)) *core.Tree
}
type cloneCutter interface {
	CloneCut(capture func(t *core.Tree)) *core.Tree
}

// Audit runs one pass: capture truth under a consistent cut, compare the
// tree's answers for every audited range against it, update metrics and
// the trace ring, and publish the Report. Passes are serialized; drive it
// from a ticker (internal/ingest), an admin endpoint (rapd /audit), or
// directly from tests. It must not be called from inside a tap.
func (a *Auditor) Audit() (Report, error) {
	if a.est == nil {
		return Report{}, ErrNotAttached
	}
	a.auditMu.Lock()
	defer a.auditMu.Unlock()

	var rep Report
	rebased := false
	capture := func(m *core.Tree) {
		a.adoptMu.Lock()
		defer a.adoptMu.Unlock()
		var n, unadm uint64
		if m != nil {
			// A merged or cloned cut tree carries the summed unadmitted
			// ledger of the trees it was cut from (Merge adds it, Clone
			// copies it), so both reads describe one instant.
			n = m.N()
			unadm = m.UnadmittedN()
		} else {
			n = a.est.N()
			unadm = unadmittedOf(a.est)
		}
		rep.N = n
		rep.UnadmittedN = unadm
		offered := satAdd(n, unadm)
		var tapN uint64
		for _, t := range a.taps {
			tapN += t.n.Load()
		}
		// Mass the taps never saw plus mass they did must equal the tree's
		// credited mass plus the admission gate's refused mass exactly;
		// anything else means the tree was swapped or merged out from
		// under the audit (Restore, AdoptShard, Merge) — rebase rather
		// than compare truth against a different stream. This is also the
		// check that catches a broken admission counter: weight that the
		// gate refused but failed to ledger (or vice versa) breaks the
		// equality permanently.
		if a.resetPending.Load() || a.baseN+tapN != offered {
			a.rebaseLocked(offered)
			rebased = true
			return
		}
		rep.TapN = tapN
		rep.BaseN = a.baseN
		var maxW uint64
		for _, t := range a.taps {
			if t.maxW > maxW {
				maxW = t.maxW
			}
		}
		// The admission-adjusted certified budget: every refused event is
		// missing from exactly the ranges it would have landed in, so the
		// whole ledger is charged on top of the structural bound.
		rep.Budget = a.cfg.Epsilon*float64(n) +
			float64(len(a.taps))*float64(a.cfg.Height())*float64(a.cfg.MinSplitCount+maxW) +
			float64(unadm)
		var covered uint64
		for _, t := range a.taps {
			covered += t.truth.N()
			rep.TruthValues += t.truth.Distinct()
		}
		if offered > 0 {
			rep.Coverage = float64(covered) / float64(offered)
		}
		rs := a.ranges.Load()
		rep.Ranges = make([]RangeReport, 0, len(rs.ranges)+1)
		// The universe row's truth is exact by the equality just checked:
		// every offered event is in the universe, so truth = baseN + tapN
		// = n + unadmitted.
		rep.Ranges = append(rep.Ranges, RangeReport{
			Lo: 0, Hi: a.mask, Kind: "universe", Truth: offered,
		})
		for _, r := range rs.ranges {
			var truth uint64
			for _, t := range a.taps {
				truth += t.truth.RangeCount(r.lo, r.hi)
			}
			rep.Ranges = append(rep.Ranges, RangeReport{
				Lo: r.lo, Hi: r.hi, Kind: "sampled", Truth: truth, Slack: r.slack,
			})
		}
	}

	// Capture under the strongest cut the estimator offers. The cut tree
	// (when there is one) is private to this pass, so the checks below run
	// with no engine lock held.
	var cutTree *core.Tree
	switch e := a.est.(type) {
	case mergedCutter:
		cutTree = e.MergedTreeCut(capture)
	case cloneCutter:
		cutTree = e.CloneCut(capture)
	default:
		capture(nil)
	}

	if rebased {
		a.rebases++
		if a.mRebases != nil {
			a.mRebases.Inc()
		}
		a.passes++
		if a.mPasses != nil {
			a.mPasses.Inc()
		}
		rep.Verdict = "rebased"
		a.fillTotals(&rep)
		a.last.Store(&rep)
		return rep, nil
	}

	rep.Epsilon = a.cfg.Epsilon
	rep.EpsN = a.cfg.Epsilon * float64(rep.N)
	for i := range rep.Ranges {
		r := &rep.Ranges[i]
		if cutTree != nil {
			r.Estimate, r.High = cutTree.EstimateBounds(r.Lo, r.Hi)
		} else {
			r.Estimate, r.High = a.est.EstimateBounds(r.Lo, r.Hi)
		}
		a.check(r, rep.N, rep.EpsN, rep.Budget)
		a.checks++
		if a.mChecks != nil {
			a.mChecks.Inc()
		}
		if a.mRatio != nil {
			a.mRatio.Observe(r.Ratio)
		}
		if r.Violation {
			rep.PassViolations++
			a.violations++
			if a.mViolations != nil {
				a.mViolations.Inc()
			}
		}
		if r.Underestimate > rep.MaxUnderestimate {
			rep.MaxUnderestimate = r.Underestimate
		}
		if r.Ratio > rep.WorstRatio {
			rep.WorstRatio = r.Ratio
		}
	}
	rep.Verdict = "ok"
	if rep.PassViolations > 0 {
		rep.Verdict = "violated"
	}
	a.passes++
	if a.mPasses != nil {
		a.mPasses.Inc()
	}
	a.fillTotals(&rep)
	a.last.Store(&rep)
	return rep, nil
}

// check applies the three soundness checks to one range row (see the
// package comment for why each can only fire on a genuine contract
// break) and records violation / near-bound events in the trace ring.
// The ratio reported (and near-bound gated) is against the paper's ε·n;
// the violation itself is against the certified budget.
func (a *Auditor) check(r *RangeReport, n uint64, epsN, budget float64) {
	if r.Truth > r.Estimate {
		r.Underestimate = r.Truth - r.Estimate
	}
	if epsN > 0 {
		r.Ratio = float64(r.Underestimate) / epsN
	}
	switch {
	case r.Truth > r.High:
		r.Violation = true
		r.Reason = "exact truth exceeds upper bound"
	case r.Estimate > satAdd(r.Truth, r.Slack):
		r.Violation = true
		r.Reason = "estimate exceeds any possible true count"
	case float64(r.Underestimate) > budget:
		r.Violation = true
		r.Reason = "underestimate exceeds certified budget"
	}
	ev := obs.StructuralEvent{
		Lo:        r.Lo,
		Hi:        r.Hi,
		Count:     r.Truth,
		Threshold: epsN,
		N:         n,
	}
	switch {
	case r.Violation:
		if a.trace != nil {
			ev.Op = TraceOpViolation
			a.trace.RecordAlways(ev)
		}
	case r.Ratio >= a.opts.NearRatio:
		if a.trace != nil {
			ev.Op = TraceOpNearBound
			a.trace.RecordAlways(ev)
		}
	}
}

func (a *Auditor) fillTotals(rep *Report) {
	rep.ChecksTotal = a.checks
	rep.ViolationsTotal = a.violations
	rep.RebasesTotal = a.rebases
	rep.Passes = a.passes
}

// rebaseLocked restarts the audit epoch at stream mass n: all truth and
// every sampled range is dropped, and mass up to n becomes pre-audit
// (baseN). Called with adoptMu held, under the cut, so no tap can be
// mid-flight on a cut-capable engine.
func (a *Auditor) rebaseLocked(n uint64) {
	a.baseN = n
	for _, t := range a.taps {
		t.n.Store(0)
		t.truth = exact.New()
		t.maxW = 0
	}
	a.ranges.Store(&rangeSet{})
	a.full.Store(false)
	a.resetPending.Store(false)
}

// satAdd is a+b saturating at the top of uint64.
func satAdd(x, y uint64) uint64 {
	if s := x + y; s >= x {
		return s
	}
	return math.MaxUint64
}
