package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestSliceSource(t *testing.T) {
	src := NewSliceSource([]uint64{1, 2, 3})
	got := Collect(src)
	if len(got) != 3 || got[0] != (Event{1, 1}) || got[2] != (Event{3, 1}) {
		t.Fatalf("Collect = %v", got)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source yielded an event")
	}
}

func TestFuncSource(t *testing.T) {
	i := 0
	src := FuncSource(func() (uint64, bool) {
		i++
		return uint64(i), i <= 4
	})
	if got := Collect(src); len(got) != 4 {
		t.Fatalf("FuncSource yielded %d events, want 4", len(got))
	}
}

func TestLimit(t *testing.T) {
	src := FuncSource(func() (uint64, bool) { return 7, true })
	got := Collect(Limit(src, 10))
	if len(got) != 10 {
		t.Fatalf("Limit(10) yielded %d", len(got))
	}
	if got := Collect(Limit(NewSliceSource([]uint64{1}), 10)); len(got) != 1 {
		t.Fatalf("Limit past exhaustion yielded %d", len(got))
	}
}

func TestPump(t *testing.T) {
	var sum uint64
	n := Pump(NewSliceSource([]uint64{5, 6, 7}), SinkFunc(func(e Event) { sum += e.Value }))
	if n != 3 || sum != 18 {
		t.Fatalf("Pump moved %d weight, sum %d", n, sum)
	}
}

func TestCoalescingBufferMergesWindow(t *testing.T) {
	vals := []uint64{1, 1, 1, 2, 2, 3, 4, 4}
	b := NewCoalescingBuffer(NewSliceSource(vals), 8)
	got := Collect(b)
	want := []Event{{1, 3}, {2, 2}, {3, 1}, {4, 2}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
	if f := b.CompressionFactor(); f != 2 {
		t.Fatalf("compression factor %v, want 2", f)
	}
	if b.EventsIn() != 8 || b.EventsOut() != 4 {
		t.Fatalf("in/out = %d/%d", b.EventsIn(), b.EventsOut())
	}
}

func TestCoalescingBufferWindowBoundary(t *testing.T) {
	// Same value across two windows is emitted twice: coalescing is
	// within a buffer window only, matching a real hardware buffer.
	vals := []uint64{9, 9, 9, 9}
	b := NewCoalescingBuffer(NewSliceSource(vals), 2)
	got := Collect(b)
	if len(got) != 2 || got[0] != (Event{9, 2}) || got[1] != (Event{9, 2}) {
		t.Fatalf("got %v", got)
	}
}

func TestCoalescingBufferPreservesWeight(t *testing.T) {
	f := func(vals []byte, capSeed uint8) bool {
		capacity := int(capSeed)%64 + 1
		u := make([]uint64, len(vals))
		var want uint64
		for i, v := range vals {
			u[i] = uint64(v % 8) // force duplicates
			want++
		}
		b := NewCoalescingBuffer(NewSliceSource(u), capacity)
		var got uint64
		for {
			e, ok := b.Next()
			if !ok {
				break
			}
			got += e.Weight
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingBufferHighLocality(t *testing.T) {
	// A code-like stream (tight loop over a few blocks) must compress by
	// roughly the window size over the distinct count — the paper's
	// "factor of 10" observation.
	var vals []uint64
	for i := 0; i < 10_000; i++ {
		vals = append(vals, uint64(i%16))
	}
	b := NewCoalescingBuffer(NewSliceSource(vals), 1024)
	Collect(b)
	if f := b.CompressionFactor(); f < 32 {
		t.Fatalf("high-locality stream compressed only %.1fx", f)
	}
}

func TestCoalescingBufferPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	NewCoalescingBuffer(NewSliceSource(nil), 0)
}

func TestBinaryRoundTrip(t *testing.T) {
	events := []Event{{0, 1}, {1 << 40, 3}, {^uint64(0), 1}, {42, 1 << 30}}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got := Collect(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(events) {
		t.Fatalf("round trip %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], events[i])
		}
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if got := Collect(r); len(got) != 0 || r.Err() != nil {
		t.Fatalf("empty trace: %v, err %v", got, r.Err())
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE\x01"),
		"bad version": []byte("RAPS\x09"),
	} {
		r := NewReader(bytes.NewReader(data))
		if _, ok := r.Next(); ok || r.Err() == nil {
			t.Errorf("%s: reader accepted garbage", name)
		}
	}
}

func TestReaderTruncatedEvent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Event{Value: 300, Weight: 5})
	w.Flush()
	data := buf.Bytes()
	r := NewReader(bytes.NewReader(data[:len(data)-1]))
	if _, ok := r.Next(); ok {
		t.Fatal("truncated event decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

// A trace cut off mid-event — whether inside the value varint, between
// value and weight, or inside the weight varint — must surface a decode
// error through Err, never end as a clean EOF: an ingest daemon relies on
// the distinction to tell "stream done" from "stream damaged, retry".
func TestReaderTruncationMidEventIsError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// Multi-byte varints on both sides so every cut lands mid-event.
	w.Write(Event{Value: 1 << 40, Weight: 1 << 20})
	w.Flush()
	full := buf.Bytes()
	const header = 5 // magic + version
	if len(full) <= header+2 {
		t.Fatalf("test event encoded too small: %d bytes", len(full))
	}
	for cut := header + 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		if r.Err() == nil {
			t.Fatalf("trace cut to %d/%d bytes ended as clean EOF", cut, len(full))
		}
	}
	// Sanity: the uncut trace is a clean EOF.
	r := NewReader(bytes.NewReader(full))
	if got := Collect(r); len(got) != 1 || r.Err() != nil {
		t.Fatalf("full trace: %d events, err %v", len(got), r.Err())
	}
}

func TestTextRoundTrip(t *testing.T) {
	events := []Event{{0xdead, 2}, {0, 1}, {1 << 50, 7}}
	var sb strings.Builder
	if err := WriteText(&sb, &staticSource{events: events}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("text round trip %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], events[i])
		}
	}
}

func TestReadTextBadLine(t *testing.T) {
	if _, err := ReadText(strings.NewReader("zzz not hex\n")); err == nil {
		t.Fatal("ReadText accepted garbage line")
	}
}

type staticSource struct {
	events []Event
	pos    int
}

func (s *staticSource) Next() (Event, bool) {
	if s.pos >= len(s.events) {
		return Event{}, false
	}
	e := s.events[s.pos]
	s.pos++
	return e, true
}
