// Package trace defines the event-stream plumbing between profile sources
// (instrumented programs, workload models, trace files) and profile
// consumers (the RAP tree, baselines, the hardware pipeline model).
//
// An event is a single profiled identifier — a PC, a load value, a memory
// address — with a weight for coalesced duplicates. The package also
// implements the Stage-0 event buffer of the paper's hardware design
// (Figure 4): a small buffer that pre-processes points "by combining
// identical events", which the paper observes cuts the throughput demand
// on the RAP engine by about 10x for code profiling.
package trace

// Event is one profiled occurrence. Weight is 1 for raw events and the
// duplicate count for coalesced ones.
type Event struct {
	Value  uint64
	Weight uint64
}

// Source yields a stream of events. Next returns ok=false when the stream
// is exhausted.
type Source interface {
	Next() (Event, bool)
}

// Sink consumes events one at a time.
type Sink interface {
	Consume(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Consume implements Sink.
func (f SinkFunc) Consume(e Event) { f(e) }

// SliceSource yields the given values in order, each with weight 1.
type SliceSource struct {
	values []uint64
	pos    int
}

// NewSliceSource wraps values as a Source without copying.
func NewSliceSource(values []uint64) *SliceSource {
	return &SliceSource{values: values}
}

// Next implements Source.
func (s *SliceSource) Next() (Event, bool) {
	if s.pos >= len(s.values) {
		return Event{}, false
	}
	v := s.values[s.pos]
	s.pos++
	return Event{Value: v, Weight: 1}, true
}

// FuncSource adapts a generator function to the Source interface.
type FuncSource func() (uint64, bool)

// Next implements Source.
func (f FuncSource) Next() (Event, bool) {
	v, ok := f()
	if !ok {
		return Event{}, false
	}
	return Event{Value: v, Weight: 1}, true
}

// Limit caps a source at n events.
func Limit(src Source, n uint64) Source {
	return &limitSource{src: src, left: n}
}

type limitSource struct {
	src  Source
	left uint64
}

func (l *limitSource) Next() (Event, bool) {
	if l.left == 0 {
		return Event{}, false
	}
	l.left--
	return l.src.Next()
}

// Pump drains src into sink and returns the number of events (total
// weight) moved.
func Pump(src Source, sink Sink) uint64 {
	var n uint64
	for {
		e, ok := src.Next()
		if !ok {
			return n
		}
		n += e.Weight
		sink.Consume(e)
	}
}

// Collect drains src into a slice of events (for tests and small traces).
func Collect(src Source) []Event {
	var out []Event
	for {
		e, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}
