package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format: the magic "RAPS", a version byte, then one
// uvarint pair (value, weight) per event. Compact, streamable, and
// self-describing enough for the cmd tools to exchange traces.

const (
	fileMagic   = "RAPS"
	fileVersion = 1
)

// Writer encodes events to an io.Writer in the binary trace format.
type Writer struct {
	w      *bufio.Writer
	opened bool
}

// NewWriter returns a trace writer over w. The header is written on the
// first event (or on Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (tw *Writer) header() error {
	if tw.opened {
		return nil
	}
	tw.opened = true
	if _, err := tw.w.WriteString(fileMagic); err != nil {
		return err
	}
	return tw.w.WriteByte(fileVersion)
}

// Write appends one event.
func (tw *Writer) Write(e Event) error {
	if err := tw.header(); err != nil {
		return err
	}
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], e.Value)
	n += binary.PutUvarint(buf[n:], e.Weight)
	_, err := tw.w.Write(buf[:n])
	return err
}

// Flush writes any buffered data (and the header, if no event was ever
// written) to the underlying writer.
func (tw *Writer) Flush() error {
	if err := tw.header(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Reader decodes a binary trace stream. It implements Source; decode
// errors surface through Err after Next returns ok=false.
type Reader struct {
	r      *bufio.Reader
	opened bool
	err    error
}

// NewReader returns a trace reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (tr *Reader) open() error {
	if tr.opened {
		return nil
	}
	tr.opened = true
	magic := make([]byte, 4)
	if _, err := io.ReadFull(tr.r, magic); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if string(magic) != fileMagic {
		return errors.New("trace: bad magic, not a RAP trace file")
	}
	ver, err := tr.r.ReadByte()
	if err != nil {
		return fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != fileVersion {
		return fmt.Errorf("trace: unsupported version %d", ver)
	}
	return nil
}

// Next implements Source.
func (tr *Reader) Next() (Event, bool) {
	if tr.err != nil {
		return Event{}, false
	}
	if err := tr.open(); err != nil {
		tr.err = err
		return Event{}, false
	}
	v, err := binary.ReadUvarint(tr.r)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			tr.err = fmt.Errorf("trace: reading value: %w", err)
		}
		return Event{}, false
	}
	w, err := binary.ReadUvarint(tr.r)
	if err != nil {
		tr.err = fmt.Errorf("trace: truncated event: %w", err)
		return Event{}, false
	}
	return Event{Value: v, Weight: w}, true
}

// Err returns the first decode error encountered, or nil on clean EOF.
func (tr *Reader) Err() error { return tr.err }

// WriteText renders events as "hexvalue weight" lines, the
// post-processing-friendly ASCII form.
func WriteText(w io.Writer, src Source) error {
	bw := bufio.NewWriter(w)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if _, err := fmt.Fprintf(bw, "%x %d\n", e.Value, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the WriteText format.
func ReadText(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		txt := sc.Text()
		if txt == "" {
			continue
		}
		var e Event
		if _, err := fmt.Sscanf(txt, "%x %d", &e.Value, &e.Weight); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
