package trace

// CoalescingBuffer implements the Stage-0 event buffer of the hardware
// design (Section 3.3): incoming events are staged in a small buffer that
// merges duplicates, so each distinct value in a buffer window reaches the
// profiling engine once, carrying its duplicate count as weight. The
// paper: "a 1k buffer can reduce the throughput requirements on RAP by a
// factor of 10 for code profiling".
type CoalescingBuffer struct {
	src      Source
	capacity int

	// window state
	order  []uint64
	counts map[uint64]uint64
	emit   int

	in, out uint64 // events in (total weight) and coalesced events out
	done    bool
}

// NewCoalescingBuffer wraps src with a coalescing window of the given
// capacity (number of raw events staged per window). Capacity must be
// positive.
func NewCoalescingBuffer(src Source, capacity int) *CoalescingBuffer {
	if capacity <= 0 {
		panic("trace: CoalescingBuffer capacity must be positive")
	}
	return &CoalescingBuffer{
		src:      src,
		capacity: capacity,
		counts:   make(map[uint64]uint64, capacity),
	}
}

// Next implements Source, yielding one coalesced event per distinct value
// per window, in first-seen order.
func (b *CoalescingBuffer) Next() (Event, bool) {
	for {
		if b.emit < len(b.order) {
			v := b.order[b.emit]
			b.emit++
			e := Event{Value: v, Weight: b.counts[v]}
			b.out++
			return e, true
		}
		if b.done {
			return Event{}, false
		}
		b.fill()
		if len(b.order) == 0 && b.done {
			return Event{}, false
		}
	}
}

// fill stages the next window of raw events.
func (b *CoalescingBuffer) fill() {
	b.order = b.order[:0]
	clear(b.counts)
	b.emit = 0
	staged := 0
	for staged < b.capacity {
		e, ok := b.src.Next()
		if !ok {
			b.done = true
			return
		}
		b.in += e.Weight
		staged++
		if _, seen := b.counts[e.Value]; !seen {
			b.order = append(b.order, e.Value)
		}
		b.counts[e.Value] += e.Weight
	}
}

// CompressionFactor reports raw-events-in per coalesced-event-out so far —
// the throughput reduction the buffer buys the engine.
func (b *CoalescingBuffer) CompressionFactor() float64 {
	if b.out == 0 {
		return 1
	}
	return float64(b.in) / float64(b.out)
}

// EventsIn returns the total raw event weight staged so far.
func (b *CoalescingBuffer) EventsIn() uint64 { return b.in }

// EventsOut returns the number of coalesced events emitted so far.
func (b *CoalescingBuffer) EventsOut() uint64 { return b.out }
