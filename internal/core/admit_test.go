package core

import (
	"testing"
)

// denyAll refuses every event, the most hostile admitter possible: all
// offered mass lands in the ledger and none in the tree.
type denyAll struct{ pulses int }

func (d *denyAll) Admit(p uint64, weight uint64, plen int) bool { return false }
func (d *denyAll) Pulse(st Stats)                               { d.pulses++ }
func (d *denyAll) TreeReplaced()                                {}

// denyOdd refuses odd points, so admitted and refused mass interleave.
type denyOdd struct{}

func (denyOdd) Admit(p uint64, weight uint64, plen int) bool { return p&1 == 0 }
func (denyOdd) Pulse(Stats)                                  {}
func (denyOdd) TreeReplaced()                                {}

func TestAdmitterLedger(t *testing.T) {
	tr := MustNew(DefaultConfig())
	tr.SetAdmitter(&denyAll{})
	for i := uint64(0); i < 1000; i++ {
		tr.AddN(i, 2)
	}
	if got := tr.N(); got != 0 {
		t.Fatalf("N() = %d with a deny-all admitter, want 0 (refused mass must not be credited)", got)
	}
	if got := tr.UnadmittedN(); got != 2000 {
		t.Fatalf("UnadmittedN() = %d, want 2000", got)
	}
	st := tr.Stats()
	if st.UnadmittedN != 2000 {
		t.Fatalf("Stats().UnadmittedN = %d, want 2000", st.UnadmittedN)
	}
	if st.Splits != 0 {
		t.Fatalf("deny-all admitter saw %d splits: refused mass built structure", st.Splits)
	}
}

func TestAdmitterBoundsCarryLedger(t *testing.T) {
	tr := MustNew(DefaultConfig())
	tr.SetAdmitter(denyOdd{})
	for i := uint64(0); i < 1000; i++ {
		tr.Add(i)
	}
	if tr.N() != 500 || tr.UnadmittedN() != 500 {
		t.Fatalf("N=%d unadmitted=%d, want 500/500", tr.N(), tr.UnadmittedN())
	}
	// True count of the full universe is 1000; the admitted estimate can
	// only see 500 but the upper bound must still bracket the truth.
	low, high := tr.EstimateBounds(0, ^uint64(0))
	if low > 500 {
		t.Fatalf("low = %d exceeds admitted mass 500", low)
	}
	if high < 1000 {
		t.Fatalf("high = %d does not bracket the offered truth 1000 (ledger not folded into upper bounds)", high)
	}
	// Every range's upper bound carries the whole ledger: the refused mass
	// could have fallen anywhere.
	_, narrowHigh := tr.EstimateBounds(0, 1)
	if narrowHigh < tr.UnadmittedN() {
		t.Fatalf("narrow range high = %d < ledger %d", narrowHigh, tr.UnadmittedN())
	}
}

func TestAdmitterBatchPathGates(t *testing.T) {
	tr := MustNew(DefaultConfig())
	tr.SetAdmitter(denyOdd{})
	pts := make([]uint64, 1000)
	for i := range pts {
		pts[i] = uint64(i)
	}
	tr.AddBatch(pts)
	if tr.N() != 500 || tr.UnadmittedN() != 500 {
		t.Fatalf("batch path: N=%d unadmitted=%d, want 500/500", tr.N(), tr.UnadmittedN())
	}
}

func TestAdmitterPulseFires(t *testing.T) {
	tr := MustNew(DefaultConfig())
	adm := &denyAll{}
	tr.SetAdmitter(adm)
	// Feed through a fresh tree without the admitter first to force
	// splits, then verify Pulse fires on a gated tree's structural events.
	tr2 := MustNew(DefaultConfig())
	tr2.SetAdmitter(&admitAll{adm: adm})
	for i := uint64(0); i < 100000; i++ {
		tr2.Add(i % 4096)
	}
	if adm.pulses == 0 {
		t.Fatal("admitter never pulsed despite structural activity")
	}
}

// admitAll forwards pulses to another admitter while admitting everything,
// so structural activity actually happens.
type admitAll struct{ adm *denyAll }

func (a *admitAll) Admit(uint64, uint64, int) bool { return true }
func (a *admitAll) Pulse(st Stats)                 { a.adm.Pulse(st) }
func (a *admitAll) TreeReplaced()                  {}

func TestLedgerMergeAndClone(t *testing.T) {
	cfg := DefaultConfig()
	a := MustNew(cfg)
	a.SetAdmitter(denyOdd{})
	b := MustNew(cfg)
	b.SetAdmitter(denyOdd{})
	for i := uint64(0); i < 100; i++ {
		a.Add(i)
		b.Add(i + 1000)
	}
	wantLedger := a.UnadmittedN() + b.UnadmittedN()
	c := a.Clone()
	if c.UnadmittedN() != a.UnadmittedN() {
		t.Fatalf("clone ledger %d != source ledger %d", c.UnadmittedN(), a.UnadmittedN())
	}
	if err := c.Merge(b); err != nil {
		t.Fatal(err)
	}
	if c.UnadmittedN() != wantLedger {
		t.Fatalf("merged ledger %d, want %d (Merge must sum ledgers)", c.UnadmittedN(), wantLedger)
	}
}

func TestLedgerMarshalRoundTrip(t *testing.T) {
	tr := MustNew(DefaultConfig())
	tr.SetAdmitter(denyOdd{})
	for i := uint64(0); i < 5000; i++ {
		tr.Add(i * 977)
	}
	wantN, wantLedger := tr.N(), tr.UnadmittedN()
	if wantLedger == 0 {
		t.Fatal("test needs a non-zero ledger")
	}
	blob, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := MustNew(DefaultConfig())
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got.N() != wantN || got.UnadmittedN() != wantLedger {
		t.Fatalf("round trip N=%d ledger=%d, want %d/%d", got.N(), got.UnadmittedN(), wantN, wantLedger)
	}
	low0, high0 := tr.EstimateBounds(0, 1<<32)
	low1, high1 := got.EstimateBounds(0, 1<<32)
	if low0 != low1 || high0 != high1 {
		t.Fatalf("bounds drifted across marshal: (%d,%d) vs (%d,%d)", low0, high0, low1, high1)
	}
}

func TestConcurrentTreeAdmitterSurvivesRestore(t *testing.T) {
	cfg := DefaultConfig()
	ct, err := NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ct.SetAdmitter(denyOdd{})
	for i := uint64(0); i < 100; i++ {
		ct.Add(i)
	}
	if ct.UnadmittedN() != 50 {
		t.Fatalf("ledger %d, want 50", ct.UnadmittedN())
	}
	blob, err := ct.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if ct.UnadmittedN() != 50 {
		t.Fatalf("ledger lost across restore: %d, want 50", ct.UnadmittedN())
	}
	// The admitter must still gate the restored tree.
	ct.Add(1)
	if ct.UnadmittedN() != 51 {
		t.Fatalf("admitter not reinstalled after restore: ledger %d, want 51", ct.UnadmittedN())
	}
}
