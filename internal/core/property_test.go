package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests on the core invariants, driven by testing/quick.

func TestPropTotalConservation(t *testing.T) {
	f := func(points []uint64, seed int64) bool {
		cfg := testConfig(32, 4, 0.05)
		cfg.FirstMerge = 16
		tr := MustNew(cfg)
		var n uint64
		for _, p := range points {
			w := p%3 + 1 // mixed weights
			tr.AddN(p, w)
			n += w
		}
		return tr.N() == n && tr.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropLowerBound(t *testing.T) {
	f := func(points []uint16, a, b uint16) bool {
		cfg := testConfig(16, 4, 0.05)
		cfg.FirstMerge = 16
		tr := MustNew(cfg)
		ex := exact{}
		for _, p := range points {
			tr.Add(uint64(p))
			ex.add(uint64(p))
		}
		if a > b {
			a, b = b, a
		}
		truth := ex.rangeCount(uint64(a), uint64(b))
		low, high := tr.EstimateBounds(uint64(a), uint64(b))
		return low <= truth && truth <= high
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropNodeRangesNested(t *testing.T) {
	// Structural invariant: every child range is strictly inside its
	// parent range, siblings are disjoint, and all node counts sum to N.
	f := func(points []uint32) bool {
		cfg := testConfig(32, 4, 0.03)
		cfg.FirstMerge = 32
		tr := MustNew(cfg)
		for _, p := range points {
			tr.Add(uint64(p))
		}
		ok := true
		var check func(vi uint32, lo uint64)
		check = func(vi uint32, lo uint64) {
			v := &tr.arena[vi]
			vhi := rangeHi(lo, v.plen, 32)
			if v.childBase == nilIdx {
				return
			}
			fan := tr.fanout(v.plen)
			var prevHi uint64
			first := true
			for i := 0; i < fan; i++ {
				ci := v.childBase + uint32(i)
				c := &tr.arena[ci]
				if c.dead {
					continue
				}
				clo, cplen := tr.childBounds(lo, v.plen, i)
				if cplen != c.plen {
					ok = false // stored plen disagrees with derived geometry
				}
				chi := rangeHi(clo, c.plen, 32)
				if clo < lo || chi > vhi || (clo == lo && chi == vhi) {
					ok = false
				}
				if !first && clo <= prevHi {
					ok = false // overlap with previous sibling
				}
				prevHi, first = chi, false
				check(ci, clo)
			}
		}
		check(0, 0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropHotRangesDisjointWeights(t *testing.T) {
	// Hot weights partition a subset of the stream: they are individually
	// true lower bounds and never sum past N.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testConfig(16, 4, 0.05)
		tr := MustNew(cfg)
		zipf := rand.NewZipf(rng, 1.1+rng.Float64(), 4, 1<<16-1)
		n := 5_000 + rng.Intn(20_000)
		for i := 0; i < n; i++ {
			tr.Add(zipf.Uint64())
		}
		theta := 0.02 + rng.Float64()*0.2
		var sum uint64
		for _, h := range tr.HotRanges(theta) {
			if float64(h.Weight) < theta*float64(tr.N()) {
				return false // reported below the cut
			}
			sum += h.Weight
		}
		return sum <= tr.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMarshalRoundTrip(t *testing.T) {
	f := func(points []uint32) bool {
		cfg := testConfig(32, 4, 0.05)
		cfg.FirstMerge = 32
		tr := MustNew(cfg)
		for _, p := range points {
			tr.Add(uint64(p))
		}
		data, err := tr.MarshalBinary()
		if err != nil {
			return false
		}
		var back Tree
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		// ArenaBytes and CounterPoolBytes are physical slab capacity, not
		// logical state: a restored tree allocates exactly what it needs
		// while the live tree carries growth slack and freed pool slots.
		// CounterPromotions is ingest history, which snapshots do not carry
		// (a restored counter is allocated at its final class directly). All
		// three are excluded from round-trip equality.
		want, got := tr.Stats(), back.Stats()
		want.ArenaBytes, got.ArenaBytes = 0, 0
		want.CounterPoolBytes, got.CounterPoolBytes = 0, 0
		want.CounterPromotions, got.CounterPromotions = 0, 0
		return got == want && back.Total() == tr.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropChildGeometry(t *testing.T) {
	// childIndex / childBounds agree: for any point inside a node, the
	// child slot chosen by childIndex covers the point.
	f := func(p uint64, plenSeed uint8, bSeed uint8) bool {
		branches := []int{2, 4, 8, 16}
		b := branches[int(bSeed)%len(branches)]
		cfg := testConfig(64, b, 0.05)
		tr := MustNew(cfg)
		stride := tr.shift
		plen := (int(plenSeed) % cfg.Height()) * stride
		if plen >= 64 {
			plen = 64 - stride
		}
		vlo := p &^ suffixMask(64-plen)
		vhi := vlo | suffixMask(64-plen)
		idx := tr.childIndex(uint8(plen), p)
		lo, cplen := tr.childBounds(vlo, uint8(plen), idx)
		chi := lo | suffixMask(64-int(cplen))
		return lo <= p && p <= chi && lo >= vlo && chi <= vhi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSuffixMask(t *testing.T) {
	cases := []struct {
		k    int
		want uint64
	}{
		{-1, 0}, {0, 0}, {1, 1}, {4, 0xF}, {16, 0xFFFF}, {63, ^uint64(0) >> 1}, {64, ^uint64(0)}, {65, ^uint64(0)},
	}
	for _, tc := range cases {
		if got := suffixMask(tc.k); got != tc.want {
			t.Errorf("suffixMask(%d) = %x, want %x", tc.k, got, tc.want)
		}
	}
}

func TestPropArenaAccounting(t *testing.T) {
	// Arena bookkeeping invariant: every slot of the slab except the root
	// belongs to exactly one children block, and every block is either
	// attached to exactly one live node or sits (all slots dead) on the
	// freelist for its size. The live-node count reached by traversal must
	// match the nodes counter, and no live node may carry the dead mark.
	f := func(points []uint16, extra []uint16) bool {
		cfg := testConfig(16, 4, 0.05)
		cfg.FirstMerge = 16
		tr := MustNew(cfg)
		for _, p := range points {
			tr.Add(uint64(p))
		}
		// A merge plus continued ingest exercises block free and reuse.
		tr.MergeNow()
		for _, p := range extra {
			tr.Add(uint64(p))
		}

		live := 0
		var liveByClass [counterClasses]int
		crefs := make(map[uint32]bool)
		claimed := make(map[uint32]int) // block base -> fan
		ok := true
		var visit func(vi uint32)
		visit = func(vi uint32) {
			v := &tr.arena[vi]
			if v.dead {
				ok = false
				return
			}
			live++
			// Every live node owns exactly one pool slot, at the narrowest
			// class that fits its (never-decreasing) counter value.
			if v.cref == crefNone || crefs[v.cref] {
				ok = false
				return
			}
			crefs[v.cref] = true
			cls := v.cref >> crefIdxBits
			if cls != classFor(tr.count(vi)) {
				ok = false
			}
			liveByClass[cls]++
			if v.childBase == nilIdx {
				return
			}
			fan := tr.fanout(v.plen)
			if _, dup := claimed[v.childBase]; dup {
				ok = false // two nodes share a children block
				return
			}
			claimed[v.childBase] = fan
			for i := 0; i < fan; i++ {
				if !tr.arena[v.childBase+uint32(i)].dead {
					visit(v.childBase + uint32(i))
				}
			}
		}
		visit(0)
		if !ok || live != tr.nodes {
			return false
		}
		for k, fl := range tr.free {
			for _, base := range fl {
				if _, dup := claimed[base]; dup {
					return false // freelist block still attached to a node
				}
				claimed[base] = 1 << k
				for i := 0; i < 1<<k; i++ {
					if !tr.arena[base+uint32(i)].dead {
						return false // freed block holds a live slot
					}
				}
			}
		}
		// Pool occupancy bookkeeping must agree with the traversal: the
		// live-slot count per class is exactly the live nodes at that class.
		for cls := 0; cls < counterClasses; cls++ {
			if tr.pool.live(cls) != liveByClass[cls] {
				return false
			}
		}
		slots := 1 // root
		for _, fan := range claimed {
			slots += fan
		}
		return slots == len(tr.arena)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
