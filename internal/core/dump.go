package core

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteASCII writes the tree in the indented ASCII form that rap_finalize
// dumps "for further processing such as identifying hot-spots, range
// coverage, phase identification" (Section 3.2). One line per node:
//
//	[lo, hi] count=C subtree=S frac=F%
//
// indented two spaces per level, ranges in hexadecimal as in the paper's
// figures.
func (t *Tree) WriteASCII(w io.Writer) error {
	bw := bufio.NewWriter(w)
	n := t.n
	var write func(vi uint32, lo uint64, depth int)
	write = func(vi uint32, lo uint64, depth int) {
		v := &t.arena[vi]
		sub := t.subtreeSum(vi)
		frac := 0.0
		if n > 0 {
			frac = 100 * float64(sub) / float64(n)
		}
		fmt.Fprintf(bw, "%s[%x, %x] count=%d subtree=%d frac=%.2f%%\n",
			strings.Repeat("  ", depth), lo, rangeHi(lo, v.plen, t.cfg.UniverseBits), t.count(vi), sub, frac)
		if v.childBase == nilIdx {
			return
		}
		fan := t.fanout(v.plen)
		for i := 0; i < fan; i++ {
			if !t.arena[v.childBase+uint32(i)].dead {
				clo, _ := t.childBounds(lo, v.plen, i)
				write(v.childBase+uint32(i), clo, depth+1)
			}
		}
	}
	write(0, 0, 0)
	return bw.Flush()
}

// WriteDOT writes the tree as a Graphviz digraph, hot nodes (at the given
// theta) double-circled — the rendering used for the paper's Figure 5 and
// Figure 10 style tree snapshots.
func (t *Tree) WriteDOT(w io.Writer, theta float64) error {
	bw := bufio.NewWriter(w)
	hotSet := make(map[uint64]map[uint8]bool)
	for _, h := range t.HotRanges(theta) {
		plen := uint8(0)
		// Recover plen from the width of the reported range.
		width := h.Hi - h.Lo
		for k := 0; k <= t.cfg.UniverseBits; k++ {
			if suffixMask(t.cfg.UniverseBits-k) == width {
				plen = uint8(k)
				break
			}
		}
		if hotSet[h.Lo] == nil {
			hotSet[h.Lo] = make(map[uint8]bool)
		}
		hotSet[h.Lo][plen] = true
	}
	fmt.Fprintln(bw, "digraph rap {")
	fmt.Fprintln(bw, "  node [shape=box, fontname=\"monospace\"];")
	id := 0
	var write func(vi uint32, lo uint64) int
	write = func(vi uint32, lo uint64) int {
		v := &t.arena[vi]
		my := id
		id++
		sub := t.subtreeSum(vi)
		frac := 0.0
		if t.n > 0 {
			frac = 100 * float64(sub) / float64(t.n)
		}
		style := ""
		if hotSet[lo][v.plen] {
			style = ", peripheries=2, style=bold"
		}
		fmt.Fprintf(bw, "  n%d [label=\"[%x, %x]\\n%.1f%%\"%s];\n",
			my, lo, rangeHi(lo, v.plen, t.cfg.UniverseBits), frac, style)
		if v.childBase == nilIdx {
			return my
		}
		fan := t.fanout(v.plen)
		for i := 0; i < fan; i++ {
			ci := v.childBase + uint32(i)
			if t.arena[ci].dead {
				continue
			}
			clo, _ := t.childBounds(lo, v.plen, i)
			child := write(ci, clo)
			fmt.Fprintf(bw, "  n%d -> n%d;\n", my, child)
		}
		return my
	}
	write(0, 0)
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// String returns a one-line summary of the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("rap.Tree{n=%d nodes=%d max=%d eps=%g b=%d w=%d}",
		t.n, t.nodes, t.maxNodes, t.cfg.Epsilon, t.cfg.Branch, t.cfg.UniverseBits)
}
