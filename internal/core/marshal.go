package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Snapshot serialization: a compact preorder binary encoding of the tree
// so profiles can be shipped off the profiling host and post-processed,
// the way the hardware engine's SRAM contents would be read out.

// Version history: v1 omitted MinSplitCount, so a round-trip silently
// reset the cold-start split guard to its default (and made restored
// trees un-mergeable with their originals). v2 carries the full Config.
// v3 appends the unadmitted ledger (weight refused by the admission gate)
// after the merge schedule, so a restored tree's upper bounds still charge
// mass that was refused before the snapshot. v1 and v2 snapshots are still
// read, with the missing fields defaulted (guard to its default, ledger
// to zero).
const (
	marshalMagic   = "RAPT"
	marshalVersion = 3
)

// MarshalBinary encodes the tree (configuration, schedule state, and all
// nodes) into a portable byte slice.
func (t *Tree) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(marshalMagic)
	buf.WriteByte(marshalVersion)

	writeUvarint(&buf, uint64(t.cfg.UniverseBits))
	writeUvarint(&buf, uint64(t.cfg.Branch))
	writeFloat(&buf, t.cfg.Epsilon)
	writeFloat(&buf, t.cfg.MergeRatio)
	writeUvarint(&buf, t.cfg.FirstMerge)
	writeUvarint(&buf, t.cfg.MergeEvery)
	writeFloat(&buf, t.cfg.MergeThresholdScale)
	writeUvarint(&buf, t.cfg.MinSplitCount)

	writeUvarint(&buf, t.n)
	writeUvarint(&buf, uint64(t.maxNodes))
	writeUvarint(&buf, t.splits)
	writeUvarint(&buf, t.merges)
	writeUvarint(&buf, t.mergeBatches)
	writeUvarint(&buf, t.nextMerge)
	writeUvarint(&buf, t.mergeInterval)
	writeUvarint(&buf, t.unadmitted)

	t.marshalNode(&buf, 0, 0)
	return buf.Bytes(), nil
}

// marshalNode encodes the subtree at slot vi (range start lo) in logical
// preorder. The encoding walks live slots only and materializes each
// counter through the pool read, so it is independent of arena layout and
// of counter width classes: two trees that are structurally equal
// serialize identically however their slabs are fragmented and however
// their counters are packed — a packed tree and a NewWide tree fed the
// same stream emit the same bytes, and the wire format is unchanged from
// the pre-pool layout.
func (t *Tree) marshalNode(buf *bytes.Buffer, vi uint32, lo uint64) {
	v := &t.arena[vi]
	writeUvarint(buf, lo)
	buf.WriteByte(v.plen)
	writeUvarint(buf, t.count(vi))
	if v.childBase == nilIdx {
		writeUvarint(buf, 0)
		return
	}
	fan := t.fanout(v.plen)
	live := 0
	for i := 0; i < fan; i++ {
		if !t.arena[v.childBase+uint32(i)].dead {
			live++
		}
	}
	writeUvarint(buf, uint64(live))
	for i := 0; i < fan; i++ {
		if t.arena[v.childBase+uint32(i)].dead {
			continue
		}
		writeUvarint(buf, uint64(i))
		clo, _ := t.childBounds(lo, v.plen, i)
		t.marshalNode(buf, v.childBase+uint32(i), clo)
	}
}

// UnmarshalBinary decodes a tree previously encoded with MarshalBinary,
// replacing the receiver's contents.
func (t *Tree) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != marshalMagic {
		return fmt.Errorf("core: bad snapshot magic")
	}
	ver, err := r.ReadByte()
	if err != nil || ver < 1 || ver > marshalVersion {
		return fmt.Errorf("core: unsupported snapshot version %d", ver)
	}

	var cfg Config
	cfg.UniverseBits = int(mustUvarint(r, &err))
	cfg.Branch = int(mustUvarint(r, &err))
	cfg.Epsilon = readFloat(r, &err)
	cfg.MergeRatio = readFloat(r, &err)
	cfg.FirstMerge = mustUvarint(r, &err)
	cfg.MergeEvery = mustUvarint(r, &err)
	cfg.MergeThresholdScale = readFloat(r, &err)
	if ver >= 2 {
		cfg.MinSplitCount = mustUvarint(r, &err)
	}
	if err != nil {
		return fmt.Errorf("core: truncated snapshot header: %w", err)
	}
	// Decode into the receiver's own layout mode: restoring a snapshot
	// into a NewWide tree keeps it wide (snapshots carry values, not
	// representation).
	nt, nerr := newTree(cfg, t.wideCounters)
	if nerr != nil {
		return nerr
	}

	nt.n = mustUvarint(r, &err)
	nt.maxNodes = int(mustUvarint(r, &err))
	nt.splits = mustUvarint(r, &err)
	nt.merges = mustUvarint(r, &err)
	nt.mergeBatches = mustUvarint(r, &err)
	nt.nextMerge = mustUvarint(r, &err)
	nt.mergeInterval = mustUvarint(r, &err)
	if ver >= 3 {
		nt.unadmitted = mustUvarint(r, &err)
	}
	if err != nil {
		return fmt.Errorf("core: truncated snapshot state: %w", err)
	}

	if nt.maxNodes < 0 {
		return fmt.Errorf("core: snapshot maxNodes overflows int")
	}

	nt.nodes = 0
	if err := nt.unmarshalNode(r, 0, 0, 0, 0); err != nil {
		return err
	}
	if r.Len() != 0 {
		return fmt.Errorf("core: %d trailing bytes after snapshot", r.Len())
	}
	if nt.nodes > nt.maxNodes {
		nt.maxNodes = nt.nodes
	}
	*t = *nt
	return nil
}

// unmarshalNode decodes one node and its subtree. A hostile snapshot must
// not be able to smuggle in a tree that violates the structural invariants
// the update and query paths rely on, so beyond truncation the decoder
// enforces: the node's (lo, plen) must equal the bounds derived from its
// parent and child slot (wantLo, wantPlen) — the encoding is redundant and
// the redundancy must agree; child slot indices must be strictly
// increasing, which rules out duplicates that would leak nodes and
// double-count; and the recursion depth may never exceed the configured
// tree height, which bounds decoding work even when stride reaches zero at
// the bottom of the universe.
// unmarshalNode decodes one node and its subtree into the pre-allocated
// arena slot vi, reviving the slot from its dead (hole) state; slots the
// snapshot does not mention stay dead, preserving merge holes. Recursion
// allocates children blocks (which may move the arena), so slots are
// re-indexed per access rather than held as pointers.
func (t *Tree) unmarshalNode(r *bytes.Reader, vi uint32, wantLo uint64, wantPlen uint8, depth int) error {
	if depth > t.height {
		return fmt.Errorf("core: snapshot nests %d levels, tree height %d", depth, t.height)
	}
	var err error
	lo := mustUvarint(r, &err)
	plen, perr := r.ReadByte()
	if perr != nil {
		err = perr
	}
	count := mustUvarint(r, &err)
	live := mustUvarint(r, &err)
	if err != nil {
		return fmt.Errorf("core: truncated snapshot node: %w", err)
	}
	if int(plen) > t.cfg.UniverseBits {
		return fmt.Errorf("core: snapshot node plen %d exceeds universe", plen)
	}
	if lo != wantLo || plen != wantPlen {
		return fmt.Errorf("core: snapshot node (%#x, %d) does not match derived bounds (%#x, %d)",
			lo, plen, wantLo, wantPlen)
	}
	// Revive the slot, keeping whatever counter reference it already holds
	// (the root's initial slot, or crefNone for a hole) so setCount can
	// reuse or replace it.
	t.arena[vi] = node{cref: t.arena[vi].cref, plen: plen, childBase: nilIdx}
	t.setCount(vi, count)
	t.nodes++
	if live == 0 {
		return nil
	}
	fan := t.fanout(plen)
	if live > uint64(fan) {
		return fmt.Errorf("core: snapshot node has %d children, fanout %d", live, fan)
	}
	base := t.allocBlock(fan)
	t.arena[vi].childBase = base
	t.setChildGeometry(vi)
	prev := -1
	for k := uint64(0); k < live; k++ {
		idx := mustUvarint(r, &err)
		if err != nil || idx >= uint64(fan) || int(idx) <= prev {
			return fmt.Errorf("core: bad snapshot child index")
		}
		prev = int(idx)
		childLo, childPlen := t.childBounds(lo, plen, int(idx))
		if cerr := t.unmarshalNode(r, base+uint32(idx), childLo, childPlen, depth+1); cerr != nil {
			return cerr
		}
	}
	return nil
}

// Snapshot serializes the tree; it is MarshalBinary under the name every
// engine shares, so the facade's Writer interface can promise
// serialization uniformly.
func (t *Tree) Snapshot() ([]byte, error) { return t.MarshalBinary() }

func writeUvarint(buf *bytes.Buffer, x uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	buf.Write(tmp[:n])
}

func mustUvarint(r *bytes.Reader, err *error) uint64 {
	if *err != nil {
		return 0
	}
	x, e := binary.ReadUvarint(r)
	if e != nil {
		*err = e
	}
	return x
}

func writeFloat(buf *bytes.Buffer, f float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	buf.Write(tmp[:])
}

func readFloat(r *bytes.Reader, err *error) float64 {
	if *err != nil {
		return 0
	}
	var tmp [8]byte
	if _, e := io.ReadFull(r, tmp[:]); e != nil {
		*err = e
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(tmp[:]))
}
