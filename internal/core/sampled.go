package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
)

// SampledTree unifies RAP with sampling-based profiling, the combination
// the paper's conclusion proposes ("It may further be possible to unify
// our proposed techniques with existing sampling based schemes to create
// a single general purpose profiling system", Section 6): a deterministic
// 1-in-k sampler feeds a RAP tree, and queries scale back up. Sampling
// divides both the update rate and the effective stream length by k — the
// tree tracks n/k events, so its absolute memory shrinks for a given ε —
// at the cost of the lower-bound guarantee: scaled estimates carry
// sampling variance in both directions, so EstimateBounds widens by a
// k-proportional slack instead of being one-sided.
type SampledTree struct {
	tree *Tree
	k    uint64
	tick uint64
	n    uint64 // raw events observed (sampled or not)
}

// NewSampled builds a sampled RAP tree with sampling period k >= 1 (k = 1
// degenerates to plain RAP).
func NewSampled(cfg Config, k uint64) (*SampledTree, error) {
	if k == 0 {
		return nil, fmt.Errorf("core: sampling period must be >= 1")
	}
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &SampledTree{tree: t, k: k}, nil
}

// Add records one raw event; every k-th reaches the tree.
func (s *SampledTree) Add(p uint64) {
	s.n++
	s.tick++
	if s.tick == s.k {
		s.tick = 0
		s.tree.Add(p)
	}
}

// AddBatch records every point in order, equivalent to calling Add on
// each: the deterministic sampler advances per raw event, so chunking a
// stream does not change which positions are sampled.
func (s *SampledTree) AddBatch(points []uint64) {
	for _, p := range points {
		s.Add(p)
	}
}

// AddN records weight raw occurrences of p in one step. The deterministic
// sampler state advances exactly as if Add had been called weight times:
// however the weight is split into calls, the same raw positions are
// sampled.
func (s *SampledTree) AddN(p uint64, weight uint64) {
	if weight == 0 {
		return
	}
	s.n += weight
	total := s.tick + weight
	if sampled := total / s.k; sampled > 0 {
		s.tree.AddN(p, sampled)
	}
	s.tick = total % s.k
}

// N returns the raw stream length observed.
func (s *SampledTree) N() uint64 { return s.n }

// SampledN returns the events that reached the underlying tree.
func (s *SampledTree) SampledN() uint64 { return s.tree.N() }

// NodeCount returns the live node count of the underlying tree.
func (s *SampledTree) NodeCount() int { return s.tree.NodeCount() }

// MemoryBytes returns the tree's memory footprint.
func (s *SampledTree) MemoryBytes() int { return s.tree.MemoryBytes() }

// Estimate returns the scaled estimate for [lo, hi]. Unlike Tree.Estimate
// it is not one-sided: sampling noise can push it above the truth.
func (s *SampledTree) Estimate(lo, hi uint64) uint64 {
	return s.tree.Estimate(lo, hi) * s.k
}

// EstimateBounds returns the scaled bracketing estimates for [lo, hi].
// The bracket bounds the *sampled* stream scaled by k; sampling variance
// means the raw-stream truth can fall outside it, unlike Tree's one-sided
// guarantee.
func (s *SampledTree) EstimateBounds(lo, hi uint64) (low, high uint64) {
	low, high = s.tree.EstimateBounds(lo, hi)
	return low * s.k, high * s.k
}

// Stats returns the underlying tree's structural counters with N rewritten
// to the raw stream length, so Stats().N always agrees with N() across
// engines (SampledN still exposes the sampled count); memory and
// structural counters are the real footprint of the summary.
func (s *SampledTree) Stats() Stats {
	st := s.tree.Stats()
	st.N = s.n
	return st
}

// HotRanges reports hot ranges of the sampled stream at threshold theta,
// with weights scaled back to raw-stream units.
func (s *SampledTree) HotRanges(theta float64) []HotRange {
	hot := s.tree.HotRanges(theta)
	for i := range hot {
		hot[i].Weight *= s.k
		// Frac is already relative and unbiased.
	}
	return hot
}

// Finalize compacts the underlying tree and returns its stats, with N
// rewritten to the raw stream length as in Stats.
func (s *SampledTree) Finalize() Stats {
	st := s.tree.Finalize()
	st.N = s.n
	return st
}

// Tree exposes the underlying RAP tree.
func (s *SampledTree) Tree() *Tree { return s.tree }

// Sampled snapshot format: "RAPK" | version | uvarint k, tick, n | a
// length-prefixed core tree snapshot. The sampler state rides along so a
// restore resumes the deterministic 1-in-k schedule at the exact raw
// position the snapshot was cut at.
const (
	sampledMagic   = "RAPK"
	sampledVersion = 1
)

// Snapshot serializes the sampler state and the underlying tree.
func (s *SampledTree) Snapshot() ([]byte, error) {
	inner, err := s.tree.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString(sampledMagic)
	buf.WriteByte(sampledVersion)
	writeUvarint(&buf, s.k)
	writeUvarint(&buf, s.tick)
	writeUvarint(&buf, s.n)
	writeUvarint(&buf, uint64(len(inner)))
	buf.Write(inner)
	return buf.Bytes(), nil
}

// Restore replaces the sampler's contents with a snapshot previously
// produced by Snapshot. On decode error the sampler is left unchanged.
func (s *SampledTree) Restore(data []byte) error {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != sampledMagic {
		return errors.New("core: bad sampled snapshot magic")
	}
	ver, err := r.ReadByte()
	if err != nil || ver != sampledVersion {
		return fmt.Errorf("core: unsupported sampled snapshot version %d", ver)
	}
	var derr error
	k := mustUvarint(r, &derr)
	tick := mustUvarint(r, &derr)
	n := mustUvarint(r, &derr)
	blobLen := mustUvarint(r, &derr)
	if derr != nil {
		return fmt.Errorf("core: truncated sampled snapshot: %w", derr)
	}
	if k == 0 || tick >= k {
		return fmt.Errorf("core: sampled snapshot has invalid sampler state k=%d tick=%d", k, tick)
	}
	if blobLen > uint64(r.Len()) {
		return fmt.Errorf("core: sampled snapshot tree blob length %d exceeds remaining %d bytes", blobLen, r.Len())
	}
	blob := make([]byte, blobLen)
	if _, err := io.ReadFull(r, blob); err != nil {
		return err
	}
	if r.Len() != 0 {
		return fmt.Errorf("core: %d trailing bytes after sampled snapshot", r.Len())
	}
	var nt Tree
	if err := nt.UnmarshalBinary(blob); err != nil {
		return err
	}
	s.tree, s.k, s.tick, s.n = &nt, k, tick, n
	return nil
}
