package core

import "fmt"

// SampledTree unifies RAP with sampling-based profiling, the combination
// the paper's conclusion proposes ("It may further be possible to unify
// our proposed techniques with existing sampling based schemes to create
// a single general purpose profiling system", Section 6): a deterministic
// 1-in-k sampler feeds a RAP tree, and queries scale back up. Sampling
// divides both the update rate and the effective stream length by k — the
// tree tracks n/k events, so its absolute memory shrinks for a given ε —
// at the cost of the lower-bound guarantee: scaled estimates carry
// sampling variance in both directions, so EstimateBounds widens by a
// k-proportional slack instead of being one-sided.
type SampledTree struct {
	tree *Tree
	k    uint64
	tick uint64
	n    uint64 // raw events observed (sampled or not)
}

// NewSampled builds a sampled RAP tree with sampling period k >= 1 (k = 1
// degenerates to plain RAP).
func NewSampled(cfg Config, k uint64) (*SampledTree, error) {
	if k == 0 {
		return nil, fmt.Errorf("core: sampling period must be >= 1")
	}
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &SampledTree{tree: t, k: k}, nil
}

// Add records one raw event; every k-th reaches the tree.
func (s *SampledTree) Add(p uint64) {
	s.n++
	s.tick++
	if s.tick == s.k {
		s.tick = 0
		s.tree.Add(p)
	}
}

// N returns the raw stream length observed.
func (s *SampledTree) N() uint64 { return s.n }

// SampledN returns the events that reached the underlying tree.
func (s *SampledTree) SampledN() uint64 { return s.tree.N() }

// NodeCount returns the live node count of the underlying tree.
func (s *SampledTree) NodeCount() int { return s.tree.NodeCount() }

// MemoryBytes returns the tree's memory footprint.
func (s *SampledTree) MemoryBytes() int { return s.tree.MemoryBytes() }

// Estimate returns the scaled estimate for [lo, hi]. Unlike Tree.Estimate
// it is not one-sided: sampling noise can push it above the truth.
func (s *SampledTree) Estimate(lo, hi uint64) uint64 {
	return s.tree.Estimate(lo, hi) * s.k
}

// HotRanges reports hot ranges of the sampled stream at threshold theta,
// with weights scaled back to raw-stream units.
func (s *SampledTree) HotRanges(theta float64) []HotRange {
	hot := s.tree.HotRanges(theta)
	for i := range hot {
		hot[i].Weight *= s.k
		// Frac is already relative and unbiased.
	}
	return hot
}

// Finalize compacts the underlying tree and returns its stats (which
// count sampled, not raw, events).
func (s *SampledTree) Finalize() Stats { return s.tree.Finalize() }

// Tree exposes the underlying RAP tree.
func (s *SampledTree) Tree() *Tree { return s.tree }
