package core

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHotRangesEmptyTree(t *testing.T) {
	tr := MustNew(DefaultConfig())
	if got := tr.HotRanges(0.1); got != nil {
		t.Fatalf("empty tree reported hot ranges: %v", got)
	}
}

func TestHotRangesSinglePoint(t *testing.T) {
	tr := MustNew(testConfig(16, 4, 0.01))
	for i := 0; i < 100_000; i++ {
		tr.Add(0x00AB)
	}
	hot := tr.HotRanges(0.10)
	if len(hot) == 0 {
		t.Fatal("no hot ranges on a single-point stream")
	}
	// The tightest hot range must be the singleton, carrying nearly all
	// the weight.
	best := hot[0]
	for _, h := range hot {
		if h.Hi-h.Lo < best.Hi-best.Lo {
			best = h
		}
	}
	if best.Lo != 0x00AB || best.Hi != 0x00AB {
		t.Fatalf("tightest hot range is [%x,%x], want the singleton ab", best.Lo, best.Hi)
	}
	if best.Frac < 0.90 {
		t.Fatalf("singleton hot fraction %.3f, want > 0.90", best.Frac)
	}
}

func TestHotWeightExcludesHotChildren(t *testing.T) {
	// Two hot points under a common parent: the parent's hot weight (if
	// the parent is reported at all) must not double-count the children,
	// per the Section 4.1 definition.
	tr := MustNew(testConfig(16, 4, 0.01))
	for i := 0; i < 50_000; i++ {
		tr.Add(0x1000)
		tr.Add(0x1001)
	}
	hot := tr.HotRanges(0.10)
	var sum uint64
	for _, h := range hot {
		sum += h.Weight
	}
	if sum > tr.N() {
		t.Fatalf("hot weights sum to %d > n=%d: hot children double-counted", sum, tr.N())
	}
	// Both singletons hot, each ~half the stream.
	singles := 0
	for _, h := range hot {
		if h.Lo == h.Hi {
			singles++
			if h.Frac < 0.40 {
				t.Errorf("singleton [%x] hot frac %.3f, want ~0.5", h.Lo, h.Frac)
			}
		}
	}
	if singles != 2 {
		t.Fatalf("found %d hot singletons, want 2", singles)
	}
}

func TestHotRangesGuaranteedHot(t *testing.T) {
	// Lower-bound property implies reported hot weight never exceeds the
	// true count of events in the range.
	tr := MustNew(testConfig(20, 4, 0.02))
	ex := exact{}
	rng := rand.New(rand.NewSource(31))
	zipf := rand.NewZipf(rng, 1.4, 16, 1<<20-1)
	for i := 0; i < 150_000; i++ {
		p := zipf.Uint64()
		tr.Add(p)
		ex.add(p)
	}
	for _, h := range tr.HotRanges(0.05) {
		if truth := ex.rangeCount(h.Lo, h.Hi); h.Weight > truth {
			t.Fatalf("hot range [%x,%x] weight %d exceeds true count %d",
				h.Lo, h.Hi, h.Weight, truth)
		}
	}
}

func TestHotRangesSorted(t *testing.T) {
	tr := MustNew(testConfig(16, 4, 0.02))
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 100_000; i++ {
		switch rng.Intn(3) {
		case 0:
			tr.Add(0x0010)
		case 1:
			tr.Add(0x8000)
		default:
			tr.Add(uint64(rng.Intn(1 << 16)))
		}
	}
	hot := tr.HotRanges(0.10)
	if !sort.SliceIsSorted(hot, func(i, j int) bool {
		if hot[i].Lo != hot[j].Lo {
			return hot[i].Lo < hot[j].Lo
		}
		return hot[i].Hi > hot[j].Hi
	}) {
		t.Fatalf("hot ranges not sorted: %+v", hot)
	}
}

func TestHotRangesThetaMonotone(t *testing.T) {
	// Raising theta can only shrink (or keep) the aggregate hot weight.
	tr := MustNew(testConfig(16, 4, 0.02))
	rng := rand.New(rand.NewSource(41))
	zipf := rand.NewZipf(rng, 1.5, 8, 1<<16-1)
	for i := 0; i < 100_000; i++ {
		tr.Add(zipf.Uint64())
	}
	weight := func(theta float64) (total uint64) {
		for _, h := range tr.HotRanges(theta) {
			total += h.Weight
		}
		return
	}
	w5, w10, w25 := weight(0.05), weight(0.10), weight(0.25)
	if w10 > w5 || w25 > w10 {
		t.Fatalf("hot weight not monotone in theta: %d (5%%) %d (10%%) %d (25%%)", w5, w10, w25)
	}
}
