package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Merge algebra: the properties that make per-shard trees composable.

func mergeTestConfig() Config {
	cfg := testConfig(16, 4, 0.05)
	cfg.FirstMerge = 32
	// Disable the cold-start split guard: it floors the split threshold
	// above eps*n/H at small n, which inflates each shard's worst case
	// past eps*n_i. With the guard inert the paper's pure eps*n bound is
	// exactly what the property tests can assert.
	cfg.MinSplitCount = 1
	return cfg
}

func feed(t *testing.T, cfg Config, points []uint16) *Tree {
	t.Helper()
	tr := MustNew(cfg)
	for _, p := range points {
		tr.Add(uint64(p))
	}
	return tr
}

func TestMergeConfigMismatch(t *testing.T) {
	a := MustNew(testConfig(16, 4, 0.05))
	b := MustNew(testConfig(16, 4, 0.10))
	if err := a.Merge(b); err != ErrConfigMismatch {
		t.Fatalf("Merge with different eps: got %v, want ErrConfigMismatch", err)
	}
	if err := a.Merge(a); err != ErrSelfMerge {
		t.Fatalf("self merge: got %v, want ErrSelfMerge", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

// TestMergeIdentity: merging an empty tree in either direction leaves
// every estimate, N, and Total unchanged.
func TestMergeIdentity(t *testing.T) {
	f := func(points []uint16) bool {
		cfg := mergeTestConfig()
		a := feed(t, cfg, points)
		empty := MustNew(cfg)
		wantN, wantTotal := a.N(), a.Total()

		if err := a.Merge(empty); err != nil {
			return false
		}
		if a.N() != wantN || a.Total() != wantTotal {
			return false
		}
		// Empty absorbs a: the result answers exactly like a.
		into := MustNew(cfg)
		if err := into.Merge(a); err != nil {
			return false
		}
		if into.N() != wantN || into.Total() != wantTotal {
			return false
		}
		for _, q := range queryGrid() {
			if into.Estimate(q.lo, q.hi) != a.Estimate(q.lo, q.hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeCommutative: a.Merge(b) and b.Merge(a) answer every range query
// identically (the union is symmetric in structure and counts).
func TestMergeCommutative(t *testing.T) {
	f := func(ps, qs []uint16) bool {
		cfg := mergeTestConfig()
		ab := feed(t, cfg, ps)
		if err := ab.Merge(feed(t, cfg, qs)); err != nil {
			return false
		}
		ba := feed(t, cfg, qs)
		if err := ba.Merge(feed(t, cfg, ps)); err != nil {
			return false
		}
		if ab.N() != ba.N() || ab.Total() != ba.Total() || ab.NodeCount() != ba.NodeCount() {
			return false
		}
		for _, q := range queryGrid() {
			l1, h1 := ab.EstimateBounds(q.lo, q.hi)
			l2, h2 := ba.EstimateBounds(q.lo, q.hi)
			if l1 != l2 || h1 != h2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeConservation: the merged tree accounts for every event of both
// inputs — N and Total both equal n1+n2 — and the source is unchanged.
func TestMergeConservation(t *testing.T) {
	f := func(ps, qs []uint16) bool {
		cfg := mergeTestConfig()
		a, b := feed(t, cfg, ps), feed(t, cfg, qs)
		bN, bTotal, bNodes := b.N(), b.Total(), b.NodeCount()
		if err := a.Merge(b); err != nil {
			return false
		}
		want := uint64(len(ps) + len(qs))
		if a.N() != want || a.Total() != want {
			return false
		}
		// b must be untouched: Merge reads, never writes, its argument.
		return b.N() == bN && b.Total() == bTotal && b.NodeCount() == bNodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeLowerBoundProperty is the randomized cross-shard property test:
// points are scattered across k shard trees, the shards are merged, and
// for random ranges the merged estimate never exceeds the exact count and
// never undershoots it by more than eps * n_total.
func TestMergeLowerBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		cfg := mergeTestConfig()
		shards := 2 + rng.Intn(6) // 2..7 shards
		trees := make([]*Tree, shards)
		for i := range trees {
			trees[i] = MustNew(cfg)
		}
		ex := exact{}
		n := 2_000 + rng.Intn(10_000)
		zipf := rand.NewZipf(rng, 1.2, 4, 1<<16-1)
		for i := 0; i < n; i++ {
			p := zipf.Uint64()
			trees[rng.Intn(shards)].Add(p) // arbitrary shard assignment
			ex.add(p)
		}
		merged := MustNew(cfg)
		for _, tr := range trees {
			if err := merged.Merge(tr); err != nil {
				t.Fatal(err)
			}
		}
		if merged.N() != uint64(n) {
			t.Fatalf("merged N = %d, want %d", merged.N(), n)
		}
		// Tracked (prefix-aligned) ranges carry the paper's bound: the
		// events missing from such a range's subtree were credited to its
		// <= H ancestors, each holding at most the eps*n/H threshold, so
		// the undershoot is at most eps*n_total after the merge.
		slack := cfg.Epsilon * float64(n)
		for q := 0; q < 60; q++ {
			width := uint64(1) << (2 * (1 + rng.Intn(7))) // b=4 strides
			lo := uint64(rng.Intn(1<<16)) &^ (width - 1)
			hi := lo + width - 1
			truth := ex.rangeCount(lo, hi)
			low, high := merged.EstimateBounds(lo, hi)
			if low > truth {
				t.Fatalf("[%x,%x]: merged estimate %d exceeds truth %d", lo, hi, low, truth)
			}
			if truth > high {
				t.Fatalf("[%x,%x]: truth %d above upper bound %d", lo, hi, truth, high)
			}
			if float64(truth)-float64(low) > slack {
				t.Fatalf("[%x,%x]: undershoot %d beyond eps*n = %.1f", lo, hi, truth-low, slack)
			}
		}
		// Arbitrary spans have two boundaries, one eps*n budget each; the
		// estimates must still bracket the truth.
		for q := 0; q < 40; q++ {
			lo := uint64(rng.Intn(1 << 16))
			hi := lo + uint64(rng.Intn(1<<16-int(lo)))
			truth := ex.rangeCount(lo, hi)
			low, high := merged.EstimateBounds(lo, hi)
			if low > truth || truth > high {
				t.Fatalf("[%x,%x]: truth %d outside bracket [%d,%d]", lo, hi, truth, low, high)
			}
			if float64(truth)-float64(low) > 2*slack {
				t.Fatalf("[%x,%x]: undershoot %d beyond 2*eps*n = %.1f", lo, hi, truth-low, 2*slack)
			}
		}
	}
}

// TestMergeAssociativeEstimates: ((a+b)+c) and (a+(b+c)) agree on every
// query — the order shards are folded in does not matter.
func TestMergeAssociativeEstimates(t *testing.T) {
	f := func(ps, qs, rs []uint16) bool {
		cfg := mergeTestConfig()
		left := feed(t, cfg, ps)
		if err := left.Merge(feed(t, cfg, qs)); err != nil {
			return false
		}
		if err := left.Merge(feed(t, cfg, rs)); err != nil {
			return false
		}
		mid := feed(t, cfg, qs)
		if err := mid.Merge(feed(t, cfg, rs)); err != nil {
			return false
		}
		right := feed(t, cfg, ps)
		if err := right.Merge(mid); err != nil {
			return false
		}
		if left.N() != right.N() || left.Total() != right.Total() {
			return false
		}
		for _, q := range queryGrid() {
			if left.Estimate(q.lo, q.hi) != right.Estimate(q.lo, q.hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeResplit: a range cold in each half but hot in the union is
// split by the post-merge threshold re-check, so the merged tree keeps
// refining where the combined stream is hot.
func TestMergeResplit(t *testing.T) {
	cfg := testConfig(16, 4, 0.05)
	cfg.FirstMerge = 1 << 20 // no merges: isolate split behaviour
	a, b := MustNew(cfg), MustNew(cfg)
	// Each half alone: 600 events at one point plus uniform noise.
	for i := 0; i < 600; i++ {
		a.Add(0x1234)
		b.Add(0x1234)
	}
	for i := 0; i < 4000; i++ {
		a.Add(uint64(i * 13 % (1 << 16)))
		b.Add(uint64(i * 31 % (1 << 16)))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// The hot point's leaf must now be deep: with the union's 1200 events
	// at one value, the covering node splits down toward the singleton.
	est := a.Estimate(0x1234, 0x1234)
	if est == 0 {
		t.Fatalf("hot point invisible after merge; want a refined estimate")
	}
	if a.Total() != a.N() {
		t.Fatalf("Total %d != N %d after resplit", a.Total(), a.N())
	}
}

func TestCloneIndependent(t *testing.T) {
	cfg := mergeTestConfig()
	tr := MustNew(cfg)
	for i := 0; i < 5_000; i++ {
		tr.Add(uint64(i % 97 * 601))
	}
	cl := tr.Clone()
	if cl.N() != tr.N() || cl.Total() != tr.Total() || cl.NodeCount() != tr.NodeCount() {
		t.Fatal("clone differs from original")
	}
	// Mutating the clone must not touch the original.
	before := tr.Stats()
	for i := 0; i < 5_000; i++ {
		cl.Add(uint64(i))
	}
	if tr.Stats() != before {
		t.Fatal("mutating clone changed original")
	}
}

type querySpan struct{ lo, hi uint64 }

// queryGrid covers the 16-bit test universe with spans of varied width and
// alignment.
func queryGrid() []querySpan {
	var qs []querySpan
	for _, w := range []uint64{1, 0xf, 0xff, 0xfff, 0x3fff, 0xffff} {
		for lo := uint64(0); lo < 1<<16; lo += 1 << 13 {
			hi := lo + w
			if hi >= 1<<16 {
				hi = 1<<16 - 1
			}
			qs = append(qs, querySpan{lo, hi})
		}
	}
	return qs
}
