package core

import (
	"math/rand"
	"strings"
	"testing"
)

func testConfig(w int, b int, eps float64) Config {
	cfg := DefaultConfig()
	cfg.UniverseBits = w
	cfg.Branch = b
	cfg.Epsilon = eps
	return cfg
}

// exact is a reference perfect profiler for tests.
type exact map[uint64]uint64

func (e exact) add(p uint64)     { e[p]++ }
func (e exact) addN(p, w uint64) { e[p] += w }

func (e exact) rangeCount(lo, hi uint64) uint64 {
	var s uint64
	for p, c := range e {
		if p >= lo && p <= hi {
			s += c
		}
	}
	return s
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"universe zero", func(c *Config) { c.UniverseBits = 0 }},
		{"universe too big", func(c *Config) { c.UniverseBits = 65 }},
		{"branch one", func(c *Config) { c.Branch = 1 }},
		{"branch not power of two", func(c *Config) { c.Branch = 6 }},
		{"branch too big", func(c *Config) { c.Branch = 512 }},
		{"epsilon zero", func(c *Config) { c.Epsilon = 0 }},
		{"epsilon one", func(c *Config) { c.Epsilon = 1 }},
		{"merge ratio one", func(c *Config) { c.MergeRatio = 1 }},
		{"first merge zero", func(c *Config) { c.FirstMerge = 0 }},
		{"negative merge scale", func(c *Config) { c.MergeThresholdScale = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mod(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatalf("New accepted invalid config %+v", cfg)
			}
		})
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("New rejected default config: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestHeight(t *testing.T) {
	cases := []struct {
		w, b, want int
	}{
		{64, 4, 32},
		{64, 2, 64},
		{64, 8, 22}, // ceil(64/3)
		{64, 16, 16},
		{32, 4, 16},
		{1, 2, 1},
		{16, 256, 2},
	}
	for _, tc := range cases {
		cfg := testConfig(tc.w, tc.b, 0.01)
		if got := cfg.Height(); got != tc.want {
			t.Errorf("Height(w=%d, b=%d) = %d, want %d", tc.w, tc.b, got, tc.want)
		}
	}
}

func TestSingleCounterStart(t *testing.T) {
	tr := MustNew(DefaultConfig())
	if tr.NodeCount() != 1 {
		t.Fatalf("fresh tree has %d nodes, want 1", tr.NodeCount())
	}
	if tr.N() != 0 || tr.Total() != 0 {
		t.Fatalf("fresh tree N=%d Total=%d, want 0, 0", tr.N(), tr.Total())
	}
}

func TestTotalEqualsN(t *testing.T) {
	tr := MustNew(testConfig(32, 4, 0.05))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50_000; i++ {
		tr.Add(uint64(rng.Intn(1 << 20)))
	}
	tr.AddN(12345, 777)
	if tr.Total() != tr.N() {
		t.Fatalf("Total=%d N=%d: RAP must merge, never drop, events", tr.Total(), tr.N())
	}
	tr.MergeNow()
	if tr.Total() != tr.N() {
		t.Fatalf("after merge Total=%d N=%d", tr.Total(), tr.N())
	}
}

func TestPointMaskedIntoUniverse(t *testing.T) {
	tr := MustNew(testConfig(8, 4, 0.1))
	tr.Add(0x1234) // masked to 0x34
	if got := tr.Estimate(0, 255); got != 1 {
		t.Fatalf("masked point not counted: estimate=%d", got)
	}
	lo, hi := tr.EstimateBounds(0x34, 0x34)
	if hi < 1 {
		t.Fatalf("upper bound for masked point = %d, want >= 1", hi)
	}
	_ = lo
}

func TestZeroWeightIsNoop(t *testing.T) {
	tr := MustNew(DefaultConfig())
	tr.AddN(42, 0)
	if tr.N() != 0 || tr.NodeCount() != 1 {
		t.Fatalf("AddN weight 0 changed state: N=%d nodes=%d", tr.N(), tr.NodeCount())
	}
}

func TestSplitRefinesHotPoint(t *testing.T) {
	// One point dominating the stream must end up tracked individually:
	// Section 3.1's convergence argument (log_b R splits to isolate it).
	cfg := testConfig(16, 4, 0.05)
	tr := MustNew(cfg)
	for i := 0; i < 20_000; i++ {
		tr.Add(0xABCD)
	}
	found := false
	tr.Walk(func(n NodeInfo) bool {
		if n.Lo == 0xABCD && n.Hi == 0xABCD {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("dominant point 0xABCD never isolated into a singleton range")
	}
	// The singleton's subtree estimate must capture almost everything.
	est := tr.Estimate(0xABCD, 0xABCD)
	slack := uint64(2 * cfg.Epsilon * float64(tr.N()))
	if est+slack < tr.N() {
		t.Fatalf("singleton estimate %d too low for n=%d (slack %d)", est, tr.N(), slack)
	}
}

func TestSingletonNeverSplits(t *testing.T) {
	tr := MustNew(testConfig(4, 4, 0.01))
	for i := 0; i < 10_000; i++ {
		tr.Add(7)
	}
	tr.Walk(func(n NodeInfo) bool {
		if n.Lo == n.Hi && !n.Leaf {
			t.Errorf("singleton [%x,%x] has children", n.Lo, n.Hi)
		}
		return true
	})
}

func TestLowerBoundProperty(t *testing.T) {
	// Every estimate must be a lower bound on the true count, and the
	// upper bound from EstimateBounds must bracket it (Section 4.3).
	cfg := testConfig(24, 4, 0.02)
	tr := MustNew(cfg)
	ex := exact{}
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.3, 8, 1<<24-1)
	for i := 0; i < 100_000; i++ {
		p := zipf.Uint64()
		tr.Add(p)
		ex.add(p)
	}
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Uint64()&(1<<24-1), rng.Uint64()&(1<<24-1)
		if a > b {
			a, b = b, a
		}
		truth := ex.rangeCount(a, b)
		low, high := tr.EstimateBounds(a, b)
		if low > truth {
			t.Fatalf("range [%x,%x]: estimate %d exceeds true count %d", a, b, low, truth)
		}
		if high < truth {
			t.Fatalf("range [%x,%x]: upper bound %d below true count %d", a, b, high, truth)
		}
		if tr.Estimate(a, b) != low {
			t.Fatalf("Estimate and EstimateBounds disagree on [%x,%x]", a, b)
		}
	}
}

func TestEpsilonErrorBound(t *testing.T) {
	// For prefix-aligned ranges the undercount must be bounded by a small
	// multiple of ε·n (the paper's ε guarantee; the geometric fold/resplit
	// schedule costs at most a factor 2 on the constant).
	cfg := testConfig(16, 4, 0.02)
	tr := MustNew(cfg)
	ex := exact{}
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.2, 4, 1<<16-1)
	for i := 0; i < 200_000; i++ {
		p := zipf.Uint64()
		tr.Add(p)
		ex.add(p)
	}
	slack := 2 * cfg.Epsilon * float64(tr.N())
	for plen := 0; plen <= 16; plen += 2 {
		width := uint64(1) << (16 - plen)
		for trial := 0; trial < 50; trial++ {
			lo := (rng.Uint64() & (1<<16 - 1)) &^ (width - 1)
			hi := lo + width - 1
			truth := ex.rangeCount(lo, hi)
			est := tr.Estimate(lo, hi)
			if float64(truth-est) > slack {
				t.Fatalf("plen %d range [%x,%x]: undercount %d exceeds 2εn=%g",
					plen, lo, hi, truth-est, slack)
			}
		}
	}
}

func TestInvalidRangeQueries(t *testing.T) {
	tr := MustNew(DefaultConfig())
	tr.Add(5)
	if tr.Estimate(10, 3) != 0 {
		t.Fatal("Estimate(lo>hi) must be 0")
	}
	lo, hi := tr.EstimateBounds(10, 3)
	if lo != 0 || hi != 0 {
		t.Fatal("EstimateBounds(lo>hi) must be 0, 0")
	}
}

func TestMergeBoundsMemory(t *testing.T) {
	// Adversarial uniform stream over a big universe: without merging the
	// tree would grow without bound; batched merging must keep the node
	// count within a small multiple of b·H/ε.
	cfg := testConfig(32, 4, 0.05)
	tr := MustNew(cfg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300_000; i++ {
		tr.Add(rng.Uint64())
	}
	tr.MergeNow()
	bound := 4 * float64(cfg.Branch) * float64(cfg.Height()) / cfg.Epsilon
	if float64(tr.NodeCount()) > bound {
		t.Fatalf("post-merge nodes %d exceed 4·b·H/ε = %.0f", tr.NodeCount(), bound)
	}
	if tr.Stats().MergeBatches == 0 {
		t.Fatal("no merge batches ran on a 300k-event stream")
	}
}

func TestGeometricMergeSchedule(t *testing.T) {
	cfg := testConfig(16, 4, 0.1)
	cfg.FirstMerge = 100
	cfg.MergeRatio = 2
	tr := MustNew(cfg)
	rng := rand.New(rand.NewSource(9))
	var batches []uint64
	last := uint64(0)
	for i := 0; i < 100_000; i++ {
		tr.Add(uint64(rng.Intn(1 << 16)))
		if b := tr.Stats().MergeBatches; b != last {
			batches = append(batches, tr.N())
			last = b
		}
	}
	if len(batches) < 3 {
		t.Fatalf("expected several merge batches, got %d", len(batches))
	}
	// Intervals between batches must grow (geometrically with q=2).
	for i := 2; i < len(batches); i++ {
		prev := batches[i-1] - batches[i-2]
		cur := batches[i] - batches[i-1]
		if cur < prev {
			t.Fatalf("merge interval shrank: %d then %d (batch points %v)", prev, cur, batches)
		}
	}
}

func TestFixedMergeSchedule(t *testing.T) {
	cfg := testConfig(16, 4, 0.1)
	cfg.MergeEvery = 1000
	tr := MustNew(cfg)
	for i := 0; i < 10_000; i++ {
		tr.Add(uint64(i % 997))
	}
	got := tr.Stats().MergeBatches
	if got < 9 || got > 11 {
		t.Fatalf("MergeEvery=1000 over 10k events ran %d batches, want ~10", got)
	}
}

func TestMergePreservesEstimates(t *testing.T) {
	cfg := testConfig(20, 4, 0.05)
	tr := MustNew(cfg)
	ex := exact{}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 50_000; i++ {
		p := uint64(rng.Intn(1 << 20))
		tr.Add(p)
		ex.add(p)
	}
	before := tr.Total()
	tr.MergeNow()
	tr.MergeNow() // idempotent on an already-compacted tree
	if tr.Total() != before {
		t.Fatalf("merge changed total %d -> %d", before, tr.Total())
	}
	for trial := 0; trial < 100; trial++ {
		a, b := uint64(rng.Intn(1<<20)), uint64(rng.Intn(1<<20))
		if a > b {
			a, b = b, a
		}
		if est, truth := tr.Estimate(a, b), ex.rangeCount(a, b); est > truth {
			t.Fatalf("post-merge estimate %d exceeds truth %d on [%x,%x]", est, truth, a, b)
		}
	}
}

func TestHoleUpdatesCreditParent(t *testing.T) {
	// Build a tree, force merges to punch holes, then check updates into a
	// hole are credited (Total still equals N) and a later split fills
	// only the missing children.
	cfg := testConfig(16, 4, 0.02)
	cfg.FirstMerge = 50
	tr := MustNew(cfg)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200_000; i++ {
		// Heavy skew plus uniform noise: guarantees both splits and holes.
		if rng.Intn(4) == 0 {
			tr.Add(rng.Uint64() & 0xFFFF)
		} else {
			tr.Add(0x1234)
		}
	}
	if tr.Total() != tr.N() {
		t.Fatalf("holes lost events: Total=%d N=%d", tr.Total(), tr.N())
	}
	partial := false
	tr.Walk(func(n NodeInfo) bool { return true })
	// Inspect the arena directly for partial cover: a live node whose
	// children block has dead (merged-away) slots.
	var scan func(vi uint32)
	scan = func(vi uint32) {
		v := &tr.arena[vi]
		if v.childBase == nilIdx {
			return
		}
		fan := tr.fanout(v.plen)
		for i := 0; i < fan; i++ {
			ci := v.childBase + uint32(i)
			if tr.arena[ci].dead {
				partial = true
			} else {
				scan(ci)
			}
		}
	}
	scan(0)
	if !partial {
		t.Log("no partial-cover nodes observed on this stream (merge folded whole subtrees)")
	}
}

func TestAddNMatchesRepeatedAddApproximately(t *testing.T) {
	// AddN credits the whole weight to one range; totals and hot ranges
	// must agree with per-event insertion.
	cfgA := testConfig(16, 4, 0.05)
	trA := MustNew(cfgA)
	trB := MustNew(cfgA)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5_000; i++ {
		p := uint64(rng.Intn(1 << 12))
		trA.AddN(p, 4)
		for k := 0; k < 4; k++ {
			trB.Add(p)
		}
	}
	if trA.N() != trB.N() || trA.Total() != trB.Total() {
		t.Fatalf("AddN totals diverge: %d/%d vs %d/%d", trA.N(), trA.Total(), trB.N(), trB.Total())
	}
}

func TestStatsAccounting(t *testing.T) {
	tr := MustNew(testConfig(16, 4, 0.05))
	for i := 0; i < 100_000; i++ {
		tr.Add(uint64(i & 0xFFF))
	}
	st := tr.Finalize()
	if st.Nodes != tr.NodeCount() || st.MemoryBytes != st.Nodes*NodeBytes {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if st.MaxNodes < st.Nodes {
		t.Fatalf("max nodes %d below live nodes %d", st.MaxNodes, st.Nodes)
	}
	if st.Splits == 0 || st.MergeBatches == 0 {
		t.Fatalf("expected splits and merge batches on this stream: %+v", st)
	}
	if st.Height != 8 { // ceil(16/2)
		t.Fatalf("height = %d, want 8", st.Height)
	}
	// Node count must equal a fresh walk.
	walked := 0
	tr.Walk(func(NodeInfo) bool { walked++; return true })
	if walked != st.Nodes {
		t.Fatalf("walk found %d nodes, stats say %d", walked, st.Nodes)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := MustNew(testConfig(16, 4, 0.05))
	for i := 0; i < 10_000; i++ {
		tr.Add(uint64(i & 0xFF))
	}
	visited := 0
	tr.Walk(func(NodeInfo) bool { visited++; return visited < 3 })
	if visited != 3 {
		t.Fatalf("walk visited %d nodes after early stop, want 3", visited)
	}
}

func TestUnevenUniverse(t *testing.T) {
	// w=10 with b=8 (stride 3): levels 3,6,9 then a final 1-bit level.
	cfg := testConfig(10, 8, 0.05)
	tr := MustNew(cfg)
	if cfg.Height() != 4 {
		t.Fatalf("height = %d, want 4", cfg.Height())
	}
	rng := rand.New(rand.NewSource(17))
	ex := exact{}
	for i := 0; i < 100_000; i++ {
		p := uint64(rng.Intn(1 << 10))
		if rng.Intn(2) == 0 {
			p = 1023 // hot singleton at the uneven bottom
		}
		tr.Add(p)
		ex.add(p)
	}
	if tr.Total() != tr.N() {
		t.Fatalf("uneven universe lost events: %d vs %d", tr.Total(), tr.N())
	}
	found := false
	tr.Walk(func(n NodeInfo) bool {
		if n.Hi > 1023 {
			t.Errorf("node [%x,%x] escapes 10-bit universe", n.Lo, n.Hi)
		}
		if n.Lo == 1023 && n.Hi == 1023 {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("hot singleton at uneven bottom level not isolated")
	}
}

func TestFullUniverseWidth(t *testing.T) {
	// w=64: the root range [0, 2^64-1] must not overflow.
	tr := MustNew(testConfig(64, 4, 0.1))
	tr.Add(0)
	tr.Add(^uint64(0))
	var rootInfo NodeInfo
	tr.Walk(func(n NodeInfo) bool { rootInfo = n; return false })
	if rootInfo.Lo != 0 || rootInfo.Hi != ^uint64(0) {
		t.Fatalf("root covers [%x,%x], want full 64-bit universe", rootInfo.Lo, rootInfo.Hi)
	}
	if tr.Estimate(0, ^uint64(0)) != 2 {
		t.Fatalf("full-universe estimate = %d, want 2", tr.Estimate(0, ^uint64(0)))
	}
}

func TestDumpASCII(t *testing.T) {
	tr := MustNew(testConfig(16, 4, 0.05))
	for i := 0; i < 50_000; i++ {
		tr.Add(0xBEEF)
	}
	var sb strings.Builder
	if err := tr.WriteASCII(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "[0, ffff]") {
		t.Errorf("dump missing root range:\n%s", out)
	}
	if !strings.Contains(out, "beef") {
		t.Errorf("dump missing hot singleton:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != tr.NodeCount() {
		t.Errorf("dump has %d lines, tree has %d nodes", got, tr.NodeCount())
	}
}

func TestDumpDOT(t *testing.T) {
	tr := MustNew(testConfig(16, 4, 0.05))
	for i := 0; i < 50_000; i++ {
		tr.Add(0xBEEF)
	}
	var sb strings.Builder
	if err := tr.WriteDOT(&sb, 0.10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "digraph rap {") || !strings.Contains(out, "peripheries=2") {
		t.Errorf("DOT output malformed or no hot node marked:\n%s", out)
	}
}

func TestStringSummary(t *testing.T) {
	tr := MustNew(DefaultConfig())
	if s := tr.String(); !strings.Contains(s, "rap.Tree") {
		t.Errorf("String() = %q", s)
	}
}
