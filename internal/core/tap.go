package core

// Tap is the event-stream tap of the accuracy self-audit (internal/audit):
// unlike Hooks, which fire only on structural events, a Tap observes every
// event applied to the tree. A tree without a tap pays a single nil check
// per update; the cost of an installed tap is the tap's own — keep
// implementations to a few atomic/indexed operations.
//
// Taps run in the tree's update context: under the engine lock for
// ConcurrentTree and the sharded engine, on the caller's goroutine for a
// plain Tree. They must not call back into the tree.
type Tap interface {
	// Tap observes one event: p is already masked into the universe,
	// weight is the event weight (>= 1).
	Tap(p uint64, weight uint64)
	// TreeReplaced notifies that the tree's contents were swapped
	// wholesale (snapshot Restore, shard adoption): events tapped so far
	// may no longer be represented in the tree, so any state derived from
	// the tapped stream must be rebased before it is compared against the
	// tree again. Implementations must be safe to call concurrently with
	// Tap on other trees sharing the same receiver.
	TreeReplaced()
}

// SetTap installs (or with nil removes) the tree's event tap.
func (t *Tree) SetTap(tap Tap) { t.tap = tap }
