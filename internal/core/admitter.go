package core

// Admission hook: the tree-side half of the randomized admission frontend
// (internal/admit). A flood of never-repeating keys is the tree's one real
// denial-of-service surface — every cold point lands in a leaf, pushes its
// counter toward the split threshold, and forces structure (and later merge
// churn) for mass that never becomes hot. An Admitter sits on the ingest
// path in front of credit() and may refuse a cold event before it can feed
// the split machinery. Refused weight is counted into the tree's
// unadmitted ledger instead of n, so the loss is visible and bounded:
// EstimateBounds charges the whole ledger to every upper bound, and the
// online audit (internal/audit) folds it into the certified error budget.

// Admitter gates events before they are credited to the tree. Implemented
// by internal/admit's per-shard Gate; defined here (like Tap) so the hot
// path needs no dependency on the admission package.
//
// The Admitter is invoked with the tree's (or owning shard's) lock held
// and must not call back into the tree.
type Admitter interface {
	// Admit decides whether the event at point p with the given weight may
	// be credited. plen is the prefix length of the smallest live node
	// covering p: plen == UniverseBits means the exact leaf already exists
	// and the event cannot create new structure, so implementations should
	// always admit it.
	Admit(p uint64, weight uint64, plen int) bool

	// Pulse delivers fresh tree statistics immediately after a structural
	// change (a split or a merge batch) — exactly the moments arena
	// footprint and merge churn move, which is what an overload watchdog
	// wants to see.
	Pulse(st Stats)

	// TreeReplaced signals that the tree the admitter was gating has been
	// replaced wholesale (snapshot restore, shard adoption): counters
	// derived from the previous tree no longer correspond to it.
	TreeReplaced()
}

// SetAdmitter installs (or with nil removes) the admission gate. Events
// whose covering node already sits at full depth pass through regardless
// of the gate's verdict only if the gate says so — the tree itself imposes
// no policy; it only routes refused weight into the unadmitted ledger.
func (t *Tree) SetAdmitter(a Admitter) { t.adm = a }

// UnadmittedN returns the total event weight refused by the admission gate
// since the tree was created (or restored). This mass was observed but
// never credited to any node: it is excluded from N and from every lower
// bound, and charged in full to every upper bound.
func (t *Tree) UnadmittedN() uint64 { return t.unadmitted }
