package core

import (
	"math"
	"math/bits"
	"time"
)

// Tree is a Range Adaptive Profiling tree: a one-pass, bounded-memory
// summary of a stream of uint64 events. Tree is not safe for concurrent
// use; wrap it or shard streams if profiling from several goroutines.
type Tree struct {
	cfg    Config
	shift  int // log2(Branch)
	height int // H = max split steps root -> singleton
	mask   uint64

	root *node
	n    uint64 // events (total weight) processed

	nodes    int
	maxNodes int

	nextMerge     uint64
	mergeInterval uint64

	// operation statistics
	splits       uint64
	merges       uint64 // nodes folded away
	mergeBatches uint64

	// hooks, when non-nil, receives structural notifications (see
	// hooks.go). Checked only on cold paths; nil is the fast default.
	hooks *Hooks

	// lastLeaf is the one-entry leaf cache of the batched ingest path
	// (batch.go): the leaf the previous batched update landed in. It is
	// revalidated before every use and dropped by structural rewrites.
	lastLeaf *node
}

// Stats is a snapshot of the tree's bookkeeping counters.
type Stats struct {
	N            uint64 // total event weight processed
	Nodes        int    // live nodes (including the root)
	MaxNodes     int    // high-water mark of live nodes
	MemoryBytes  int    // Nodes * NodeBytes
	Splits       uint64 // split operations performed
	Merges       uint64 // nodes folded into their parents
	MergeBatches uint64 // batched merge passes run
	Height       int    // maximum tree height H
}

// New builds an empty RAP tree (the rap_init of Section 3.2). The tree
// starts as a single counter covering the whole universe, the "one counter
// which counts all instructions" starting point of Section 2.
func New(cfg Config) (*Tree, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:    cfg,
		shift:  bits.TrailingZeros(uint(cfg.Branch)),
		height: cfg.Height(),
		mask:   suffixMask(cfg.UniverseBits),
		root:   &node{},
		nodes:  1,
	}
	t.maxNodes = 1
	if cfg.MergeEvery != 0 {
		t.mergeInterval = cfg.MergeEvery
	} else {
		t.mergeInterval = cfg.FirstMerge
	}
	t.nextMerge = t.mergeInterval
	return t, nil
}

// MustNew is New for configurations known to be valid; it panics on error.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the (normalized) configuration the tree was built with.
func (t *Tree) Config() Config { return t.cfg }

// N returns the total event weight processed so far.
func (t *Tree) N() uint64 { return t.n }

// NodeCount returns the number of live nodes in the tree.
func (t *Tree) NodeCount() int { return t.nodes }

// MaxNodeCount returns the high-water mark of live nodes, the paper's
// "maximum memory" metric (Figure 7).
func (t *Tree) MaxNodeCount() int { return t.maxNodes }

// MemoryBytes returns the current memory footprint charged at the paper's
// 128 bits per node.
func (t *Tree) MemoryBytes() int { return t.nodes * NodeBytes }

// Stats returns a snapshot of the tree's counters.
func (t *Tree) Stats() Stats {
	return Stats{
		N:            t.n,
		Nodes:        t.nodes,
		MaxNodes:     t.maxNodes,
		MemoryBytes:  t.nodes * NodeBytes,
		Splits:       t.splits,
		Merges:       t.merges,
		MergeBatches: t.mergeBatches,
		Height:       t.height,
	}
}

// SplitThreshold returns the current split threshold ε·n/H (Section 2.2),
// floored at the cold-start guard MinSplitCount. Any node whose counter
// exceeds this value sprouts children on its next update.
func (t *Tree) SplitThreshold() float64 {
	thr := t.cfg.Epsilon * float64(t.n) / float64(t.height)
	if guard := float64(t.cfg.MinSplitCount); thr < guard {
		return guard
	}
	return thr
}

// mergeThreshold is the cutoff below which a childless node is folded into
// its parent during a batch merge. By default it equals the split
// threshold ("the split and merge thresholds can be the same", Section 3).
func (t *Tree) mergeThreshold() float64 {
	return t.SplitThreshold() * t.cfg.MergeThresholdScale
}

// Add records one occurrence of event p (the rap_add_points of Section
// 3.2). Points outside the universe are masked into it, mirroring how a
// hardware event bus truncates identifiers to the profiled width.
func (t *Tree) Add(p uint64) { t.AddN(p, 1) }

// AddN records weight occurrences of event p in one step. It is the
// coalesced-update entry point used by the Stage-0 event buffer of the
// hardware design, which merges duplicate events before they reach the
// profiling engine. AddN(p, w) leaves the tree in the same state as w
// calls of Add(p) except that the whole weight is credited to the range
// that was smallest when the call began.
func (t *Tree) AddN(p uint64, weight uint64) {
	if weight == 0 {
		return
	}
	p &= t.mask
	t.n += weight

	// Find the smallest live range covering p: descend while a covering
	// child exists. Holes left by merges credit the parent (Section 3.3).
	v := t.root
	for v.children != nil {
		c := v.children[t.childIndex(v, p)]
		if c == nil {
			break
		}
		v = c
	}
	t.credit(v, weight)
}

// credit adds weight to v's counter and runs the split and merge stages of
// the update pipeline. It is the shared tail of AddN and the batched entry
// points of batch.go, so every ingest path takes identical split/merge
// decisions.
func (t *Tree) credit(v *node, weight uint64) {
	v.count += weight

	// Stage 4 of the pipeline: compare against the split threshold.
	if float64(v.count) > t.SplitThreshold() && int(v.plen) < t.cfg.UniverseBits {
		t.split(v)
	}

	if t.n >= t.nextMerge {
		t.runMergeBatch()
	}
}

// split sprouts children under v covering its entire range. The original
// node keeps its counter; children start at zero (Section 2.2). For a node
// with merge holes, only the missing children are created (the "extra
// operation" split case of Section 3.3).
func (t *Tree) split(v *node) {
	fan := t.fanout(v.plen)
	if v.children == nil {
		v.children = make([]*node, fan)
	}
	created := 0
	for i := range v.children {
		if v.children[i] != nil {
			continue
		}
		lo, plen := t.childBounds(v, i)
		v.children[i] = &node{lo: lo, plen: plen}
		t.nodes++
		created++
	}
	t.splits++
	if t.nodes > t.maxNodes {
		t.maxNodes = t.nodes
	}
	if t.hooks != nil && t.hooks.Split != nil {
		t.hooks.Split(SplitEvent{
			Lo:          v.lo,
			Hi:          v.hi(t.cfg.UniverseBits),
			Depth:       t.depthOf(v.plen),
			Count:       v.count,
			Threshold:   t.SplitThreshold(),
			N:           t.n,
			NewChildren: created,
		})
	}
}

// runMergeBatch walks the whole tree once and folds every cold childless
// node into its parent, then advances the merge schedule. Batching merges
// this way (rather than hunting for merge candidates on every update) is
// the engineering contribution of Section 3.1/Figure 3: the worst-case
// bounds still hold while the merge work is amortized across a
// geometrically growing interval.
func (t *Tree) runMergeBatch() {
	var start time.Time
	timed := t.hooks != nil && t.hooks.MergeBatch != nil
	if timed {
		start = time.Now()
	}
	t.mergeBatches++
	before := t.merges
	thr := t.mergeThreshold()
	t.mergeNode(t.root, thr)
	t.invalidateLeafCache()
	t.advanceMergeSchedule()
	if timed {
		t.hooks.MergeBatch(MergeBatchEvent{
			N:        t.n,
			Merged:   int(t.merges - before),
			Nodes:    t.nodes,
			Duration: time.Since(start),
		})
	}
}

// MergeNow forces an immediate batch merge pass outside the schedule.
// Finalize uses it so that reported trees are compacted; tests and the
// hardware pipeline model use it to align merge points.
func (t *Tree) MergeNow() { t.runMergeBatch() }

func (t *Tree) advanceMergeSchedule() {
	if t.cfg.MergeEvery != 0 {
		t.nextMerge = t.n + t.cfg.MergeEvery
		return
	}
	next := uint64(math.Ceil(float64(t.mergeInterval) * t.cfg.MergeRatio))
	if next <= t.mergeInterval {
		next = t.mergeInterval + 1
	}
	t.mergeInterval = next
	t.nextMerge = t.n + t.mergeInterval
}

// mergeNode post-order folds cold childless descendants of v into their
// parents. A child is folded when, after its own subtree has been
// compacted, it has no children left and its counter is at or below the
// merge threshold. Counts only ever move upward, preserving the
// lower-bound property of every estimate; since at most one threshold of
// count can move up per level, the ε·n error bound is preserved
// (Section 2.2).
func (t *Tree) mergeNode(v *node, thr float64) {
	if v.children == nil {
		return
	}
	for i, c := range v.children {
		if c == nil {
			continue
		}
		t.mergeNode(c, thr)
		if c.children == nil && float64(c.count) <= thr {
			if t.hooks != nil && t.hooks.Merge != nil {
				t.hooks.Merge(MergeEvent{
					Lo:        c.lo,
					Hi:        c.hi(t.cfg.UniverseBits),
					Depth:     t.depthOf(c.plen),
					Count:     c.count,
					Threshold: thr,
					N:         t.n,
				})
			}
			v.count += c.count
			v.children[i] = nil
			t.nodes--
			t.merges++
		}
	}
	v.normalize()
}

// Finalize compacts the tree with one last merge batch and returns its
// statistics (the rap_finalize of Section 3.2). The tree remains usable;
// Finalize is idempotent apart from the extra merge batch counted.
func (t *Tree) Finalize() Stats {
	t.runMergeBatch()
	return t.Stats()
}
