package core

import (
	"math"
	"math/bits"
	"time"
	"unsafe"
)

// Tree is a Range Adaptive Profiling tree: a one-pass, bounded-memory
// summary of a stream of uint64 events. Tree is not safe for concurrent
// use; wrap it or shard streams if profiling from several goroutines.
type Tree struct {
	cfg    Config
	shift  int // log2(Branch)
	height int // H = max split steps root -> singleton
	mask   uint64

	// arena is the node slab: slot 0 is the root, children occupy
	// contiguous blocks (see node.go). free holds recycled children
	// blocks keyed by log2 of their size.
	arena []node
	free  [maxFreeLists][]uint32
	n     uint64 // events (total weight) processed

	nodes    int
	maxNodes int

	nextMerge     uint64
	mergeInterval uint64

	// operation statistics
	splits       uint64
	merges       uint64 // nodes folded away
	mergeBatches uint64

	// hooks, when non-nil, receives structural notifications (see
	// hooks.go). Checked only on cold paths; nil is the fast default.
	hooks *Hooks

	// tap, when non-nil, observes every event applied to the tree (see
	// tap.go). One nil check per update when absent.
	tap Tap

	// adm, when non-nil, gates events before they are credited (see
	// admitter.go). Refused weight accumulates in unadmitted instead of n.
	adm        Admitter
	unadmitted uint64

	// lastLeaf is the one-entry leaf cache of the batched ingest path
	// (batch.go): the arena slot the previous batched update landed in,
	// nilIdx when empty. It is revalidated before every use and dropped
	// by structural rewrites.
	lastLeaf uint32
}

// Stats is a snapshot of the tree's bookkeeping counters.
type Stats struct {
	N            uint64 // total event weight credited to the tree
	UnadmittedN  uint64 // event weight refused by the admission gate
	Nodes        int    // live nodes (including the root)
	MaxNodes     int    // high-water mark of live nodes
	MemoryBytes  int    // Nodes * NodeBytes (the paper's 16 B/node model)
	ArenaBytes   int    // actual node-slab footprint (see Tree.ArenaBytes)
	Splits       uint64 // split operations performed
	Merges       uint64 // nodes folded into their parents
	MergeBatches uint64 // batched merge passes run
	Height       int    // maximum tree height H
}

// New builds an empty RAP tree (the rap_init of Section 3.2). The tree
// starts as a single counter covering the whole universe, the "one counter
// which counts all instructions" starting point of Section 2.
func New(cfg Config) (*Tree, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:      cfg,
		shift:    bits.TrailingZeros(uint(cfg.Branch)),
		height:   cfg.Height(),
		mask:     suffixMask(cfg.UniverseBits),
		arena:    []node{{childBase: nilIdx}},
		nodes:    1,
		lastLeaf: nilIdx,
	}
	t.maxNodes = 1
	if cfg.MergeEvery != 0 {
		t.mergeInterval = cfg.MergeEvery
	} else {
		t.mergeInterval = cfg.FirstMerge
	}
	t.nextMerge = t.mergeInterval
	return t, nil
}

// MustNew is New for configurations known to be valid; it panics on error.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the (normalized) configuration the tree was built with.
func (t *Tree) Config() Config { return t.cfg }

// N returns the total event weight processed so far.
func (t *Tree) N() uint64 { return t.n }

// NodeCount returns the number of live nodes in the tree.
func (t *Tree) NodeCount() int { return t.nodes }

// MaxNodeCount returns the high-water mark of live nodes, the paper's
// "maximum memory" metric (Figure 7).
func (t *Tree) MaxNodeCount() int { return t.maxNodes }

// MemoryBytes returns the current memory footprint charged at the paper's
// 128 bits per node.
func (t *Tree) MemoryBytes() int { return t.nodes * NodeBytes }

// ArenaBytes returns the actual backing-store footprint of the node arena,
// including slab slack and freed blocks awaiting reuse. It differs from
// MemoryBytes, which charges live nodes at the paper's accounting rate.
func (t *Tree) ArenaBytes() int { return cap(t.arena) * int(unsafe.Sizeof(node{})) }

// Stats returns a snapshot of the tree's counters.
func (t *Tree) Stats() Stats {
	return Stats{
		N:            t.n,
		UnadmittedN:  t.unadmitted,
		Nodes:        t.nodes,
		MaxNodes:     t.maxNodes,
		MemoryBytes:  t.nodes * NodeBytes,
		ArenaBytes:   t.ArenaBytes(),
		Splits:       t.splits,
		Merges:       t.merges,
		MergeBatches: t.mergeBatches,
		Height:       t.height,
	}
}

// SplitThreshold returns the current split threshold ε·n/H (Section 2.2),
// floored at the cold-start guard MinSplitCount. Any node whose counter
// exceeds this value sprouts children on its next update.
func (t *Tree) SplitThreshold() float64 {
	thr := t.cfg.Epsilon * float64(t.n) / float64(t.height)
	if guard := float64(t.cfg.MinSplitCount); thr < guard {
		return guard
	}
	return thr
}

// mergeThreshold is the cutoff below which a childless node is folded into
// its parent during a batch merge. By default it equals the split
// threshold ("the split and merge thresholds can be the same", Section 3).
func (t *Tree) mergeThreshold() float64 {
	return t.SplitThreshold() * t.cfg.MergeThresholdScale
}

// Add records one occurrence of event p (the rap_add_points of Section
// 3.2). Points outside the universe are masked into it, mirroring how a
// hardware event bus truncates identifiers to the profiled width.
func (t *Tree) Add(p uint64) { t.AddN(p, 1) }

// AddN records weight occurrences of event p in one step. It is the
// coalesced-update entry point used by the Stage-0 event buffer of the
// hardware design, which merges duplicate events before they reach the
// profiling engine. AddN(p, w) leaves the tree in the same state as w
// calls of Add(p) except that the whole weight is credited to the range
// that was smallest when the call began.
func (t *Tree) AddN(p uint64, weight uint64) {
	if weight == 0 {
		return
	}
	p &= t.mask
	// The tap observes the offered stream — including weight the admission
	// gate will refuse — so audit truth brackets everything the caller sent.
	if t.tap != nil {
		t.tap.Tap(p, weight)
	}

	// Find the smallest live range covering p: descend while a covering
	// child exists. Holes left by merges credit the parent (Section 3.3).
	vi := t.descend(p)
	if t.adm != nil && !t.adm.Admit(p, weight, int(t.arena[vi].plen)) {
		t.unadmitted += weight
		return
	}
	t.n += weight
	t.credit(vi, weight)
}

// descend returns the slot of the smallest live node covering p.
func (t *Tree) descend(p uint64) uint32 {
	arena := t.arena
	vi := uint32(0)
	v := &arena[0]
	for {
		cb := v.childBase
		if cb == nilIdx {
			return vi
		}
		ci := cb + uint32((p>>v.cshift)&uint64(v.cmask))
		c := &arena[ci]
		// The liveness flag shares an 8-byte word with childBase/cshift/
		// cmask, so carrying c into the next iteration means one load per
		// level instead of a re-index on every field.
		if c.dead {
			return vi
		}
		vi, v = ci, c
	}
}

// credit adds weight to slot vi's counter and runs the split and merge
// stages of the update pipeline. It is the shared tail of AddN and the
// batched entry points of batch.go, so every ingest path takes identical
// split/merge decisions.
func (t *Tree) credit(vi uint32, weight uint64) {
	v := &t.arena[vi]
	v.count += weight

	// Stage 4 of the pipeline: compare against the split threshold. split
	// may grow the arena, so v is dead after this point.
	if float64(v.count) > t.SplitThreshold() && int(v.plen) < t.cfg.UniverseBits {
		t.split(vi)
	}

	if t.n >= t.nextMerge {
		t.runMergeBatch()
	}
}

// split sprouts children under v covering its entire range. The original
// node keeps its counter; children start at zero (Section 2.2). For a node
// with merge holes, only the missing children are created (the "extra
// operation" split case of Section 3.3).
func (t *Tree) split(vi uint32) {
	fan := t.fanout(t.arena[vi].plen)
	if t.arena[vi].childBase == nilIdx {
		base := t.allocBlock(fan) // may move the arena
		t.arena[vi].childBase = base
		t.setChildGeometry(vi)
	}
	v := &t.arena[vi] // stable: split allocates nothing past this point
	created := 0
	for i := 0; i < fan; i++ {
		c := &t.arena[v.childBase+uint32(i)]
		if !c.dead {
			continue
		}
		lo, plen := t.childBounds(v.lo, v.plen, i)
		*c = node{lo: lo, plen: plen, childBase: nilIdx}
		t.nodes++
		created++
	}
	t.splits++
	if t.nodes > t.maxNodes {
		t.maxNodes = t.nodes
	}
	if t.hooks != nil && t.hooks.Split != nil {
		t.hooks.Split(SplitEvent{
			Lo:          v.lo,
			Hi:          v.hi(t.cfg.UniverseBits),
			Depth:       t.depthOf(v.plen),
			Count:       v.count,
			Threshold:   t.SplitThreshold(),
			N:           t.n,
			NewChildren: created,
		})
	}
	if t.adm != nil {
		t.adm.Pulse(t.Stats())
	}
}

// runMergeBatch walks the whole tree once and folds every cold childless
// node into its parent, then advances the merge schedule. Batching merges
// this way (rather than hunting for merge candidates on every update) is
// the engineering contribution of Section 3.1/Figure 3: the worst-case
// bounds still hold while the merge work is amortized across a
// geometrically growing interval.
func (t *Tree) runMergeBatch() {
	var start time.Time
	timed := t.hooks != nil && t.hooks.MergeBatch != nil
	if timed {
		start = time.Now()
	}
	t.mergeBatches++
	before := t.merges
	thr := t.mergeThreshold()
	t.mergeNode(0, thr)
	t.compact()
	t.invalidateLeafCache()
	t.advanceMergeSchedule()
	if timed {
		t.hooks.MergeBatch(MergeBatchEvent{
			N:        t.n,
			Merged:   int(t.merges - before),
			Nodes:    t.nodes,
			Duration: time.Since(start),
		})
	}
	if t.adm != nil {
		t.adm.Pulse(t.Stats())
	}
}

// compact rebuilds the arena in depth-first order, dropping freed blocks
// and the holes between them. Running it at the tail of every merge batch
// keeps two promises cheap: the slab's footprint tracks the live tree (a
// merge batch genuinely releases memory instead of parking blocks on
// freelists), and a root-to-leaf descent path lands on consecutive blocks
// of the slab, which is what makes the index-linked layout faster than
// pointer chasing on skewed streams — the hot chain occupies a handful of
// cache lines laid out in walk order. Cost is one O(slots) copy per merge
// batch, amortized by the geometric merge schedule exactly like the merge
// walk itself.
func (t *Tree) compact() {
	// The new slab needs 1 + sum(attached block sizes) slots, which the old
	// length bounds (it additionally counts freed blocks), so the appends
	// below never reallocate. na is distinct storage from t.arena, so
	// pointers into the old slab remain valid throughout.
	na := make([]node, 1, len(t.arena))
	na[0] = t.arena[0]
	t.compactInto(&na, 0, 0)
	t.arena = na
	t.free = [maxFreeLists][]uint32{}
}

// compactInto copies the children block of old slot ovi (already copied to
// new slot nvi) into the new slab and recurses. Dead holes are copied
// verbatim: they stay revivable split targets at the same offset.
func (t *Tree) compactInto(na *[]node, ovi, nvi uint32) {
	ov := &t.arena[ovi]
	if ov.childBase == nilIdx {
		return
	}
	fan := uint32(t.fanout(ov.plen))
	base := uint32(len(*na))
	*na = append(*na, t.arena[ov.childBase:ov.childBase+fan]...)
	(*na)[nvi].childBase = base
	for i := uint32(0); i < fan; i++ {
		if !t.arena[ov.childBase+i].dead {
			t.compactInto(na, ov.childBase+i, base+i)
		}
	}
}

// MergeNow forces an immediate batch merge pass outside the schedule.
// Finalize uses it so that reported trees are compacted; tests and the
// hardware pipeline model use it to align merge points.
func (t *Tree) MergeNow() { t.runMergeBatch() }

func (t *Tree) advanceMergeSchedule() {
	if t.cfg.MergeEvery != 0 {
		t.nextMerge = t.n + t.cfg.MergeEvery
		return
	}
	next := uint64(math.Ceil(float64(t.mergeInterval) * t.cfg.MergeRatio))
	if next <= t.mergeInterval {
		next = t.mergeInterval + 1
	}
	t.mergeInterval = next
	t.nextMerge = t.n + t.mergeInterval
}

// mergeNode post-order folds cold childless descendants of v into their
// parents. A child is folded when, after its own subtree has been
// compacted, it has no children left and its counter is at or below the
// merge threshold. Counts only ever move upward, preserving the
// lower-bound property of every estimate; since at most one threshold of
// count can move up per level, the ε·n error bound is preserved
// (Section 2.2).
// The merge path never allocates (freeBlock only pushes to a freelist),
// so the arena is stable and node pointers may be held across recursion.
func (t *Tree) mergeNode(vi uint32, thr float64) {
	v := &t.arena[vi]
	if v.childBase == nilIdx {
		return
	}
	fan := t.fanout(v.plen)
	for i := 0; i < fan; i++ {
		ci := v.childBase + uint32(i)
		c := &t.arena[ci]
		if c.dead {
			continue
		}
		t.mergeNode(ci, thr)
		if c.childBase == nilIdx && float64(c.count) <= thr {
			if t.hooks != nil && t.hooks.Merge != nil {
				t.hooks.Merge(MergeEvent{
					Lo:        c.lo,
					Hi:        c.hi(t.cfg.UniverseBits),
					Depth:     t.depthOf(c.plen),
					Count:     c.count,
					Threshold: thr,
					N:         t.n,
				})
			}
			v.count += c.count
			c.dead = true
			t.nodes--
			t.merges++
		}
	}
	t.normalize(vi)
}

// Finalize compacts the tree with one last merge batch and returns its
// statistics (the rap_finalize of Section 3.2). The tree remains usable;
// Finalize is idempotent apart from the extra merge batch counted.
func (t *Tree) Finalize() Stats {
	t.runMergeBatch()
	return t.Stats()
}
