package core

import (
	"math"
	"math/bits"
	"time"
	"unsafe"
)

// Tree is a Range Adaptive Profiling tree: a one-pass, bounded-memory
// summary of a stream of uint64 events. Tree is not safe for concurrent
// use; wrap it or shard streams if profiling from several goroutines.
type Tree struct {
	cfg    Config
	shift  int // log2(Branch)
	height int // H = max split steps root -> singleton
	mask   uint64

	// arena is the node slab: slot 0 is the root, children occupy
	// contiguous blocks (see node.go). free holds recycled children
	// blocks keyed by log2 of their size. pool holds the node counters
	// in width-class slabs (see counter.go).
	arena []node
	free  [maxFreeLists][]uint32
	pool  counterPool
	n     uint64 // events (total weight) processed

	// wideCounters pins every counter allocation to the 64-bit class,
	// reproducing the pre-pool layout exactly. NewWide sets it; the
	// packed/wide equivalence suite and the countwidth experiment compare
	// the two layouts on identical streams.
	wideCounters bool

	// promotions counts counter overflow promotions; promoted[k] counts
	// those that landed in class k (k >= 1; a weighted update can skip
	// classes).
	promotions uint64
	promoted   [counterClasses]uint64

	nodes    int
	maxNodes int

	nextMerge     uint64
	mergeInterval uint64

	// operation statistics
	splits       uint64
	merges       uint64 // nodes folded away
	mergeBatches uint64

	// hooks, when non-nil, receives structural notifications (see
	// hooks.go). Checked only on cold paths; nil is the fast default.
	hooks *Hooks

	// tap, when non-nil, observes every event applied to the tree (see
	// tap.go). One nil check per update when absent.
	tap Tap

	// adm, when non-nil, gates events before they are credited (see
	// admitter.go). Refused weight accumulates in unadmitted instead of n.
	adm        Admitter
	unadmitted uint64

	// lastLeaf is the one-entry leaf cache of the batched ingest path
	// (batch.go): the arena slot the previous batched update landed in,
	// nilIdx when empty, with the leaf's bounds carried alongside (nodes
	// no longer store lo, so the cache keeps the copy validation needs).
	// It is revalidated before every use and dropped by structural
	// rewrites.
	lastLeaf uint32
	lastLo   uint64
	lastHi   uint64
}

// Stats is a snapshot of the tree's bookkeeping counters.
type Stats struct {
	N            uint64 // total event weight credited to the tree
	UnadmittedN  uint64 // event weight refused by the admission gate
	Nodes        int    // live nodes (including the root)
	MaxNodes     int    // high-water mark of live nodes
	MemoryBytes  int    // Nodes * NodeBytes (the paper's 16 B/node model)
	ArenaBytes   int    // actual node-slab + counter-pool footprint (see Tree.ArenaBytes)
	Splits       uint64 // split operations performed
	Merges       uint64 // nodes folded into their parents
	MergeBatches uint64 // batched merge passes run
	Height       int    // maximum tree height H

	// Counter-pool occupancy and promotion accounting (see counter.go).
	CounterSlots8     int    // live 8-bit pooled counters
	CounterSlots16    int    // live 16-bit pooled counters
	CounterSlots32    int    // live 32-bit pooled counters
	CounterSlots64    int    // live 64-bit pooled counters
	CounterPoolBytes  int    // physical counter-pool footprint (included in ArenaBytes)
	CounterPromotions uint64 // overflow promotions to a wider class
}

// New builds an empty RAP tree (the rap_init of Section 3.2). The tree
// starts as a single counter covering the whole universe, the "one counter
// which counts all instructions" starting point of Section 2.
func New(cfg Config) (*Tree, error) { return newTree(cfg, false) }

// NewWide builds a RAP tree whose counters are all allocated at the full
// 64-bit width, byte-for-byte reproducing the pre-pool storage cost. It
// exists as the reference layout: fed the same stream, a packed tree and a
// wide tree must produce identical estimates and identical snapshot bytes
// (the promotion ladder changes representation, never values). The
// equivalence fuzzer and the countwidth density experiment are its users.
func NewWide(cfg Config) (*Tree, error) { return newTree(cfg, true) }

func newTree(cfg Config, wide bool) (*Tree, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:          cfg,
		shift:        bits.TrailingZeros(uint(cfg.Branch)),
		height:       cfg.Height(),
		mask:         suffixMask(cfg.UniverseBits),
		arena:        []node{{cref: crefNone, childBase: nilIdx}},
		wideCounters: wide,
		nodes:        1,
		lastLeaf:     nilIdx,
	}
	t.arena[0].cref = t.counterAlloc(0)
	t.maxNodes = 1
	if cfg.MergeEvery != 0 {
		t.mergeInterval = cfg.MergeEvery
	} else {
		t.mergeInterval = cfg.FirstMerge
	}
	t.nextMerge = t.mergeInterval
	return t, nil
}

// MustNew is New for configurations known to be valid; it panics on error.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the (normalized) configuration the tree was built with.
func (t *Tree) Config() Config { return t.cfg }

// N returns the total event weight processed so far.
func (t *Tree) N() uint64 { return t.n }

// NodeCount returns the number of live nodes in the tree.
func (t *Tree) NodeCount() int { return t.nodes }

// MaxNodeCount returns the high-water mark of live nodes, the paper's
// "maximum memory" metric (Figure 7).
func (t *Tree) MaxNodeCount() int { return t.maxNodes }

// MemoryBytes returns the current memory footprint charged at the paper's
// 128 bits per node.
func (t *Tree) MemoryBytes() int { return t.nodes * NodeBytes }

// ArenaBytes returns the actual backing-store footprint of the profile:
// the node slab plus the counter pools, including slab slack and freed
// slots awaiting reuse. It differs from MemoryBytes, which charges live
// nodes at the paper's accounting rate; ArenaBytes/Nodes is the real
// bytes-per-node density the packed-counter layout is measured by.
func (t *Tree) ArenaBytes() int {
	return cap(t.arena)*int(unsafe.Sizeof(node{})) + t.pool.bytes()
}

// Stats returns a snapshot of the tree's counters.
func (t *Tree) Stats() Stats {
	return Stats{
		N:            t.n,
		UnadmittedN:  t.unadmitted,
		Nodes:        t.nodes,
		MaxNodes:     t.maxNodes,
		MemoryBytes:  t.nodes * NodeBytes,
		ArenaBytes:   t.ArenaBytes(),
		Splits:       t.splits,
		Merges:       t.merges,
		MergeBatches: t.mergeBatches,
		Height:       t.height,

		CounterSlots8:     t.pool.live(0),
		CounterSlots16:    t.pool.live(1),
		CounterSlots32:    t.pool.live(2),
		CounterSlots64:    t.pool.live(3),
		CounterPoolBytes:  t.pool.bytes(),
		CounterPromotions: t.promotions,
	}
}

// SplitThreshold returns the current split threshold ε·n/H (Section 2.2),
// floored at the cold-start guard MinSplitCount. Any node whose counter
// exceeds this value sprouts children on its next update.
func (t *Tree) SplitThreshold() float64 {
	thr := t.cfg.Epsilon * float64(t.n) / float64(t.height)
	if guard := float64(t.cfg.MinSplitCount); thr < guard {
		return guard
	}
	return thr
}

// mergeThreshold is the cutoff below which a childless node is folded into
// its parent during a batch merge. By default it equals the split
// threshold ("the split and merge thresholds can be the same", Section 3).
func (t *Tree) mergeThreshold() float64 {
	return t.SplitThreshold() * t.cfg.MergeThresholdScale
}

// Add records one occurrence of event p (the rap_add_points of Section
// 3.2). Points outside the universe are masked into it, mirroring how a
// hardware event bus truncates identifiers to the profiled width.
func (t *Tree) Add(p uint64) { t.AddN(p, 1) }

// AddN records weight occurrences of event p in one step. It is the
// coalesced-update entry point used by the Stage-0 event buffer of the
// hardware design, which merges duplicate events before they reach the
// profiling engine. AddN(p, w) leaves the tree in the same state as w
// calls of Add(p) except that the whole weight is credited to the range
// that was smallest when the call began.
func (t *Tree) AddN(p uint64, weight uint64) {
	if weight == 0 {
		return
	}
	p &= t.mask
	// The tap observes the offered stream — including weight the admission
	// gate will refuse — so audit truth brackets everything the caller sent.
	if t.tap != nil {
		t.tap.Tap(p, weight)
	}

	// Find the smallest live range covering p: descend while a covering
	// child exists. Holes left by merges credit the parent (Section 3.3).
	vi := t.descend(p)
	if t.adm != nil && !t.adm.Admit(p, weight, int(t.arena[vi].plen)) {
		t.unadmitted += weight
		return
	}
	t.n += weight
	t.credit(vi, p, weight)
}

// descend returns the slot of the smallest live node covering p.
func (t *Tree) descend(p uint64) uint32 {
	arena := t.arena
	vi := uint32(0)
	v := &arena[0]
	for {
		cb := v.childBase
		if cb == nilIdx {
			return vi
		}
		ci := cb + uint32((p>>v.cshift)&uint64(v.cmask))
		c := &arena[ci]
		// The liveness flag shares an 8-byte word with childBase/cshift/
		// cmask, so carrying c into the next iteration means one load per
		// level instead of a re-index on every field.
		if c.dead {
			return vi
		}
		vi, v = ci, c
	}
}

// credit adds weight to slot vi's counter (promoting it to a wider pool
// class on overflow) and runs the split and merge stages of the update
// pipeline. p is the event point, from which the node's range start is
// derived when a split needs it — nodes no longer store lo. credit is the
// shared tail of AddN and the batched entry points of batch.go, so every
// ingest path takes identical split/merge decisions.
func (t *Tree) credit(vi uint32, p uint64, weight uint64) {
	nv := t.addCount(vi, weight)

	// Stage 4 of the pipeline: compare against the split threshold. split
	// may grow the arena, so node pointers are dead after this point.
	if plen := t.arena[vi].plen; float64(nv) > t.SplitThreshold() && int(plen) < t.cfg.UniverseBits {
		t.split(vi, prefixOf(p, plen, t.cfg.UniverseBits))
	}

	if t.n >= t.nextMerge {
		t.runMergeBatch()
	}
}

// split sprouts children under slot vi (whose range starts at lo) covering
// its entire range. The original node keeps its counter; children start at
// zero (Section 2.2). For a node with merge holes, only the missing
// children are created (the "extra operation" split case of Section 3.3).
func (t *Tree) split(vi uint32, lo uint64) {
	fan := t.fanout(t.arena[vi].plen)
	if t.arena[vi].childBase == nilIdx {
		base := t.allocBlock(fan) // may move the arena
		t.arena[vi].childBase = base
		t.setChildGeometry(vi)
	}
	v := &t.arena[vi] // stable: split allocates no arena past this point
	cplen := v.plen + uint8(t.childStride(v.plen))
	created := 0
	for i := 0; i < fan; i++ {
		c := &t.arena[v.childBase+uint32(i)]
		if !c.dead {
			continue
		}
		*c = node{cref: t.counterAlloc(0), childBase: nilIdx, plen: cplen}
		t.nodes++
		created++
	}
	t.splits++
	if t.nodes > t.maxNodes {
		t.maxNodes = t.nodes
	}
	if t.hooks != nil && t.hooks.Split != nil {
		t.hooks.Split(SplitEvent{
			Lo:          lo,
			Hi:          rangeHi(lo, v.plen, t.cfg.UniverseBits),
			Depth:       t.depthOf(v.plen),
			Count:       t.count(vi),
			Threshold:   t.SplitThreshold(),
			N:           t.n,
			NewChildren: created,
		})
	}
	if t.adm != nil {
		t.adm.Pulse(t.Stats())
	}
}

// runMergeBatch walks the whole tree once and folds every cold childless
// node into its parent, then advances the merge schedule. Batching merges
// this way (rather than hunting for merge candidates on every update) is
// the engineering contribution of Section 3.1/Figure 3: the worst-case
// bounds still hold while the merge work is amortized across a
// geometrically growing interval.
func (t *Tree) runMergeBatch() {
	var start time.Time
	timed := t.hooks != nil && t.hooks.MergeBatch != nil
	if timed {
		start = time.Now()
	}
	t.mergeBatches++
	before := t.merges
	thr := t.mergeThreshold()
	t.mergeNode(0, 0, thr)
	t.compact()
	t.invalidateLeafCache()
	t.advanceMergeSchedule()
	if timed {
		t.hooks.MergeBatch(MergeBatchEvent{
			N:        t.n,
			Merged:   int(t.merges - before),
			Nodes:    t.nodes,
			Duration: time.Since(start),
		})
	}
	if t.adm != nil {
		t.adm.Pulse(t.Stats())
	}
}

// compact rebuilds the arena in depth-first order, dropping freed blocks
// and the holes between them, then rebuilds the counter pools densely in
// the same order. Running it at the tail of every merge batch keeps two
// promises cheap: the slab's footprint tracks the live tree (a merge
// batch genuinely releases node and counter memory instead of parking it
// on freelists), and a root-to-leaf descent path lands on consecutive
// blocks of the slab, which is what makes the index-linked layout faster
// than pointer chasing on skewed streams — the hot chain occupies a
// handful of cache lines laid out in walk order. Cost is one O(slots)
// copy per merge batch, amortized by the geometric merge schedule exactly
// like the merge walk itself.
func (t *Tree) compact() {
	// The new slab needs 1 + sum(attached block sizes) slots, which the old
	// length bounds (it additionally counts freed blocks), so the appends
	// below never reallocate. na is distinct storage from t.arena, so
	// pointers into the old slab remain valid throughout.
	na := make([]node, 1, len(t.arena))
	na[0] = t.arena[0]
	t.compactInto(&na, 0, 0)
	// Re-home every live counter into fresh pools, visiting nodes in the
	// new DFS slab order so pool layout follows descent order too. Classes
	// are preserved: a counter's class is always the narrowest that fits
	// its (never-decreasing) value, or the 64-bit class on a wide tree.
	// Slabs are sized exactly: after a merge batch the pool footprint is
	// precisely the live counters, with no growth slack or freed slots.
	var perClass [counterClasses]int
	for i := range na {
		if !na[i].dead {
			perClass[na[i].cref>>crefIdxBits]++
		}
	}
	np := counterPool{
		w8:  make([]uint8, 0, perClass[0]),
		w16: make([]uint16, 0, perClass[1]),
		w32: make([]uint32, 0, perClass[2]),
		w64: make([]uint64, 0, perClass[3]),
	}
	for i := range na {
		if na[i].dead {
			continue
		}
		cref := na[i].cref
		na[i].cref = np.alloc(cref>>crefIdxBits, t.pool.value(cref))
	}
	t.pool = np
	t.arena = na
	t.free = [maxFreeLists][]uint32{}
}

// compactInto copies the children block of old slot ovi (already copied to
// new slot nvi) into the new slab and recurses. Dead holes are copied
// verbatim: they stay revivable split targets at the same offset.
func (t *Tree) compactInto(na *[]node, ovi, nvi uint32) {
	ov := &t.arena[ovi]
	if ov.childBase == nilIdx {
		return
	}
	fan := uint32(t.fanout(ov.plen))
	base := uint32(len(*na))
	*na = append(*na, t.arena[ov.childBase:ov.childBase+fan]...)
	(*na)[nvi].childBase = base
	for i := uint32(0); i < fan; i++ {
		if !t.arena[ov.childBase+i].dead {
			t.compactInto(na, ov.childBase+i, base+i)
		}
	}
}

// MergeNow forces an immediate batch merge pass outside the schedule.
// Finalize uses it so that reported trees are compacted; tests and the
// hardware pipeline model use it to align merge points.
func (t *Tree) MergeNow() { t.runMergeBatch() }

func (t *Tree) advanceMergeSchedule() {
	if t.cfg.MergeEvery != 0 {
		t.nextMerge = t.n + t.cfg.MergeEvery
		return
	}
	next := uint64(math.Ceil(float64(t.mergeInterval) * t.cfg.MergeRatio))
	if next <= t.mergeInterval {
		next = t.mergeInterval + 1
	}
	t.mergeInterval = next
	t.nextMerge = t.n + t.mergeInterval
}

// mergeNode post-order folds cold childless descendants of the node at
// slot vi (range start lo) into their parents. A child is folded when,
// after its own subtree has been compacted, it has no children left and
// its counter is at or below the merge threshold. Counts only ever move
// upward, preserving the lower-bound property of every estimate; since at
// most one threshold of count can move up per level, the ε·n error bound
// is preserved (Section 2.2). A folded child's pool slot is released
// along with its node slot.
// The merge path never grows the arena (freeBlock only pushes to a
// freelist), so node pointers may be held across recursion; counter-pool
// storage may move (a fold can promote the parent's counter), which never
// invalidates arena pointers.
func (t *Tree) mergeNode(vi uint32, lo uint64, thr float64) {
	v := &t.arena[vi]
	if v.childBase == nilIdx {
		return
	}
	fan := t.fanout(v.plen)
	for i := 0; i < fan; i++ {
		ci := v.childBase + uint32(i)
		c := &t.arena[ci]
		if c.dead {
			continue
		}
		clo, _ := t.childBounds(lo, v.plen, i)
		t.mergeNode(ci, clo, thr)
		if c.childBase != nilIdx {
			continue
		}
		cnt := t.count(ci)
		if float64(cnt) <= thr {
			if t.hooks != nil && t.hooks.Merge != nil {
				t.hooks.Merge(MergeEvent{
					Lo:        clo,
					Hi:        rangeHi(clo, c.plen, t.cfg.UniverseBits),
					Depth:     t.depthOf(c.plen),
					Count:     cnt,
					Threshold: thr,
					N:         t.n,
				})
			}
			t.addCount(vi, cnt)
			t.counterRelease(ci)
			c.dead = true
			t.nodes--
			t.merges++
		}
	}
	t.normalize(vi)
}

// Finalize compacts the tree with one last merge batch and returns its
// statistics (the rap_finalize of Section 3.2). The tree remains usable;
// Finalize is idempotent apart from the extra merge batch counted.
func (t *Tree) Finalize() Stats {
	t.runMergeBatch()
	return t.Stats()
}
