package core

import (
	"fmt"
	"math"
	"math/bits"
)

// Defaults used by DefaultConfig, matching the operating point the paper
// engineers in Section 3: branching factor 4 (Figure 2), merge-interval
// ratio 2 (Figure 2), and a 64-bit universe (load values and memory
// addresses in Section 4 span 0..ffffffffffffffff). The first merge fires
// at 2^9 events — half the paper's "at least a thousand (2^10)" working
// assumption — which prunes the cold-start transient early enough that
// measured peak tree sizes match the published Figure 6/7 scale.
const (
	DefaultUniverseBits = 64
	DefaultBranch       = 4
	DefaultEpsilon      = 0.01
	DefaultMergeRatio   = 2.0
	DefaultFirstMerge   = 1 << 9
	// DefaultMinSplitCount is the cold-start split guard (see
	// Config.MinSplitCount).
	DefaultMinSplitCount = 12

	// NodeBytes is the memory cost accounted per tree node: the paper
	// budgets "about 128 bits of memory" per node (Section 4.2), i.e. a
	// range (min, max) and a counter as stored in the TCAM+SRAM rows.
	NodeBytes = 16
)

// Config parameterizes a RAP tree. The zero value is not valid; use
// DefaultConfig and override fields, or fill every field explicitly.
type Config struct {
	// UniverseBits is w: events are drawn from [0, 2^w). 1..64.
	UniverseBits int

	// Branch is the branching factor b of a split. It must be a power of
	// two between 2 and 256 so that every node is a bit-prefix range, the
	// encoding the hardware TCAM of Section 3.3 requires.
	Branch int

	// Epsilon is the user error bound ε in (0, 1): for any tracked range
	// the estimate is never short of the true count by more than ε·n.
	Epsilon float64

	// MergeRatio is q, the geometric growth factor of the interval
	// between batched merge passes. Must be > 1. Figure 2 selects q = 2.
	MergeRatio float64

	// FirstMerge is the number of events before the first merge batch
	// (the paper assumes "at least a thousand (2^10) events before we do
	// our first merge", Section 3.3). Must be >= 1.
	FirstMerge uint64

	// MergeEvery, when nonzero, replaces the geometric schedule with a
	// fixed merge period. This models the "continuous merging" regime of
	// Figure 3 and is exposed for the batched-vs-continuous ablation.
	MergeEvery uint64

	// MergeThresholdScale scales the merge threshold relative to the
	// split threshold. 0 means 1.0: "the split and merge thresholds can
	// be the same" (Section 3.3, Stage 4). Exposed for ablation.
	MergeThresholdScale float64

	// MinSplitCount is the cold-start guard on the split threshold: a
	// node never bursts before accumulating this many events, preventing
	// the startup explosion when ε·n/H is still below one event (the
	// "critical constants" engineering of Section 1; the asymptotic
	// bounds are unaffected since the guard is dominated by ε·n/H as n
	// grows). 0 means the default of 8.
	MinSplitCount uint64
}

// DefaultConfig returns the paper's default operating point: a 64-bit
// universe, b = 4, ε = 1%, q = 2, first merge after 512 events.
func DefaultConfig() Config {
	return Config{
		UniverseBits: DefaultUniverseBits,
		Branch:       DefaultBranch,
		Epsilon:      DefaultEpsilon,
		MergeRatio:   DefaultMergeRatio,
		FirstMerge:   DefaultFirstMerge,
	}
}

// Validate checks c and returns the normalized copy New would build a
// tree with (defaults filled in). It is the hook the public rap facade
// uses to surface configuration errors before constructing an engine.
func (c Config) Validate() (Config, error) { return c.validate() }

// validate checks c and returns a normalized copy.
func (c Config) validate() (Config, error) {
	if c.UniverseBits < 1 || c.UniverseBits > 64 {
		return c, fmt.Errorf("core: UniverseBits %d out of range [1,64]", c.UniverseBits)
	}
	if c.Branch < 2 || c.Branch > 256 || bits.OnesCount(uint(c.Branch)) != 1 {
		return c, fmt.Errorf("core: Branch %d must be a power of two in [2,256]", c.Branch)
	}
	// NaN compares false against everything, so the range checks below
	// would silently accept non-finite values (NaN <= 1 is false, NaN < 0
	// is false). Reject them explicitly before the range checks.
	if !isFinite(c.Epsilon) || !(c.Epsilon > 0 && c.Epsilon < 1) {
		return c, fmt.Errorf("core: Epsilon %v must be in (0,1)", c.Epsilon)
	}
	if c.MergeEvery == 0 && (!isFinite(c.MergeRatio) || c.MergeRatio <= 1) {
		return c, fmt.Errorf("core: MergeRatio %v must be finite and > 1", c.MergeRatio)
	}
	if c.FirstMerge == 0 && c.MergeEvery == 0 {
		return c, fmt.Errorf("core: FirstMerge must be >= 1")
	}
	if !isFinite(c.MergeThresholdScale) || c.MergeThresholdScale < 0 {
		return c, fmt.Errorf("core: MergeThresholdScale %v must be finite and >= 0", c.MergeThresholdScale)
	}
	if c.MergeThresholdScale == 0 {
		c.MergeThresholdScale = 1
	}
	if c.MinSplitCount == 0 {
		c.MinSplitCount = DefaultMinSplitCount
	}
	return c, nil
}

// isFinite reports whether f is neither NaN nor an infinity.
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// Height returns H, the maximum height of a tree with this configuration:
// the number of split steps from the root range to a singleton.
func (c Config) Height() int {
	s := bits.TrailingZeros(uint(c.Branch))
	return (c.UniverseBits + s - 1) / s
}
