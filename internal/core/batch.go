package core

// Batched ingest fast path. The paper's workloads (gzip, gcc value and
// address streams, Section 4) are strongly local: consecutive events tend
// to land in the same leaf range. The batch entry points exploit that with
// a one-entry last-leaf cache — when the next event is covered by the leaf
// the previous event landed in, the root-to-leaf descent is skipped
// entirely. Queue drains (internal/ingest), the concurrent wrapper, and
// the sharded engine all hand the tree chunks through these entry points
// instead of one event at a time.

// Sample is one weighted event of a batch: the shape queue drains hand the
// tree (a trace.Event without the package dependency).
type Sample struct {
	Value  uint64
	Weight uint64
}

// AddBatch records every point in order. It is equivalent — estimate for
// estimate and snapshot byte for byte — to calling Add on each point
// sequentially; the only difference is speed: points covered by the leaf
// the previous point landed in skip the descent via the last-leaf cache.
func (t *Tree) AddBatch(points []uint64) {
	for _, p := range points {
		t.addCached(p, 1)
	}
}

// AddSamples records a chunk of weighted events in order, one AddN-style
// update per sample. It is equivalent to calling AddN(s.Value, s.Weight)
// for each sample sequentially, sharing AddBatch's last-leaf cache.
func (t *Tree) AddSamples(samples []Sample) {
	for _, s := range samples {
		if s.Weight == 0 {
			continue
		}
		t.addCached(s.Value, s.Weight)
	}
}

// AddSorted records an ascending pre-sorted chunk of points, coalescing
// each run of equal values into one weighted update. It is equivalent to
// calling AddN(value, runLength) per distinct value in order — the
// coalesced-update semantics of the hardware stage-0 buffer — not to
// per-point Add: a run's whole weight is credited to the range that was
// smallest when the run began. Sorting a chunk before ingest trades that
// (bounded, AddN-style) reordering for maximal last-leaf cache locality.
func (t *Tree) AddSorted(points []uint64) {
	for i := 0; i < len(points); {
		j := i + 1
		for j < len(points) && points[j] == points[i] {
			j++
		}
		t.addCached(points[i], uint64(j-i))
		i = j
	}
}

// addCached is AddN with the last-leaf cache consulted before the descent.
// The cache is revalidated on every use: the slot must still be live (a
// freed slot carries the dead mark, see node.go), still a leaf, and still
// cover p. Nodes no longer store their range start, so the covering check
// runs against the bounds the cache recorded when it was filled
// (lastLo/lastHi); those stay truthful because nothing short of a
// structural rewrite can change which node a live slot holds, and every
// such rewrite drops the cache. Any live leaf covering p is the unique
// smallest live node covering p — its ancestors are live too, so the root
// descent would reach exactly it — which makes a validated hit always
// safe to credit. Structural rewrites that detach nodes wholesale (merge
// batches, Merge, Restore, Clone) drop the cache — see
// invalidateLeafCache.
func (t *Tree) addCached(p uint64, weight uint64) {
	p &= t.mask
	if t.tap != nil {
		t.tap.Tap(p, weight)
	}
	vi := t.lastLeaf
	if arena := t.arena; vi >= uint32(len(arena)) || arena[vi].dead ||
		arena[vi].childBase != nilIdx || p < t.lastLo || p > t.lastHi {
		vi = t.descend(p)
		if v := &t.arena[vi]; v.childBase == nilIdx {
			t.lastLeaf = vi
			t.lastLo = prefixOf(p, v.plen, t.cfg.UniverseBits)
			t.lastHi = rangeHi(t.lastLo, v.plen, t.cfg.UniverseBits)
		}
	}
	if t.adm != nil && !t.adm.Admit(p, weight, int(t.arena[vi].plen)) {
		t.unadmitted += weight
		return
	}
	t.n += weight
	t.credit(vi, p, weight)
}

// invalidateLeafCache drops the last-leaf cache. Every operation that can
// fold the cached leaf away or swap the node store wholesale calls it:
// merge batches (the leaf may be merged into its parent), Merge (the
// grafted union re-splits), and snapshot restore (a fresh tree replaces
// the store). The dead-slot marking already makes a stale index fail
// validation; dropping the cache keeps those sites from even consulting
// an entry known to be suspect.
func (t *Tree) invalidateLeafCache() { t.lastLeaf = nilIdx }
