package core

import (
	"bytes"
	"testing"
)

// legacySnapshot hand-assembles a snapshot byte stream exactly as the
// pre-pool encoder emitted it (the wire format is unchanged across the
// counter-pool rework, so this doubles as the format's golden spec): a
// w=4, b=4 tree whose root holds 5 residual events and whose two live
// children hold 300 and 70000 — one counter per width class 0/1/2 once
// decoded into the pooled layout.
func legacySnapshot(ver byte, unadmitted uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString("RAPT")
	buf.WriteByte(ver)

	writeUvarint(&buf, 4)   // UniverseBits
	writeUvarint(&buf, 4)   // Branch
	writeFloat(&buf, 0.05)  // Epsilon
	writeFloat(&buf, 2.0)   // MergeRatio
	writeUvarint(&buf, 512) // FirstMerge
	writeUvarint(&buf, 0)   // MergeEvery
	writeFloat(&buf, 1.0)   // MergeThresholdScale (normalized)
	if ver >= 2 {
		writeUvarint(&buf, 12) // MinSplitCount (normalized default)
	}

	writeUvarint(&buf, 70305) // n
	writeUvarint(&buf, 64)    // maxNodes
	writeUvarint(&buf, 2)     // splits
	writeUvarint(&buf, 0)     // merges
	writeUvarint(&buf, 0)     // mergeBatches
	writeUvarint(&buf, 512)   // nextMerge
	writeUvarint(&buf, 512)   // mergeInterval
	if ver >= 3 {
		writeUvarint(&buf, unadmitted)
	}

	// Preorder nodes: uvarint lo, byte plen, uvarint count, uvarint live,
	// then (uvarint child index, child node)...
	writeUvarint(&buf, 0) // root lo
	buf.WriteByte(0)      // root plen
	writeUvarint(&buf, 5)
	writeUvarint(&buf, 2) // two live children

	writeUvarint(&buf, 0) // child index 0 -> [0,3]
	writeUvarint(&buf, 0)
	buf.WriteByte(2)
	writeUvarint(&buf, 300)
	writeUvarint(&buf, 0)

	writeUvarint(&buf, 2) // child index 2 -> [8,11]
	writeUvarint(&buf, 8)
	buf.WriteByte(2)
	writeUvarint(&buf, 70000)
	writeUvarint(&buf, 0)

	return buf.Bytes()
}

// TestLegacySnapshotsDecodeIntoPools proves snapshots written before the
// pooled-counter layout existed (RAPT v1/v2/v3) still decode, land each
// counter directly in its narrowest width class with no promotion
// history, answer queries exactly, and re-encode as current-version bytes.
func TestLegacySnapshotsDecodeIntoPools(t *testing.T) {
	for _, ver := range []byte{1, 2, 3} {
		var unadmitted uint64
		if ver >= 3 {
			unadmitted = 7
		}
		data := legacySnapshot(ver, unadmitted)

		tr := MustNew(DefaultConfig())
		if err := tr.UnmarshalBinary(data); err != nil {
			t.Fatalf("v%d: %v", ver, err)
		}

		if tr.Total() != 70305 || tr.N() != 70305 {
			t.Fatalf("v%d: Total %d N %d, want 70305", ver, tr.Total(), tr.N())
		}
		for _, q := range []struct{ lo, hi, want uint64 }{
			{0, 15, 70305}, {0, 3, 300}, {8, 11, 70000}, {4, 7, 0},
		} {
			if got := tr.Estimate(q.lo, q.hi); got != q.want {
				t.Fatalf("v%d: Estimate(%d,%d) = %d, want %d", ver, q.lo, q.hi, got, q.want)
			}
		}
		if got := tr.UnadmittedN(); got != unadmitted {
			t.Fatalf("v%d: UnadmittedN %d, want %d", ver, got, unadmitted)
		}

		st := tr.Stats()
		if st.Nodes != 3 {
			t.Fatalf("v%d: %d nodes, want 3", ver, st.Nodes)
		}
		// 5 -> 8-bit, 300 -> 16-bit, 70000 -> 32-bit: each counter is
		// allocated at its final class, never promoted into it.
		if st.CounterSlots8 != 1 || st.CounterSlots16 != 1 || st.CounterSlots32 != 1 || st.CounterSlots64 != 0 {
			t.Fatalf("v%d: slots (%d,%d,%d,%d), want (1,1,1,0)",
				ver, st.CounterSlots8, st.CounterSlots16, st.CounterSlots32, st.CounterSlots64)
		}
		if st.CounterPromotions != 0 {
			t.Fatalf("v%d: %d promotions on restore, want 0", ver, st.CounterPromotions)
		}

		// The same bytes decode into the wide reference layout with
		// identical answers, and both layouts re-encode identically: one
		// v3 stream with the legacy stream's values (v1/v2 gaps filled
		// with the normalized defaults the old decoder also applied).
		wide, err := NewWide(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := wide.UnmarshalBinary(data); err != nil {
			t.Fatalf("v%d wide: %v", ver, err)
		}
		if wide.Stats().CounterSlots64 != 3 {
			t.Fatalf("v%d: wide restore has %d 64-bit slots, want 3", ver, wide.Stats().CounterSlots64)
		}
		re, err := tr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		reWide, err := wide.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		want := legacySnapshot(3, unadmitted)
		if !bytes.Equal(re, want) {
			t.Fatalf("v%d: re-marshal is not the canonical v3 stream", ver)
		}
		if !bytes.Equal(reWide, want) {
			t.Fatalf("v%d: wide re-marshal diverges from packed", ver)
		}
	}
}
