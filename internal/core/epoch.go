package core

import (
	"sync/atomic"
	"time"
)

// DefaultPublishEvery is the fallback publish cadence for epoch read
// snapshots: a fresh epoch is cut after this much offered event weight
// even if no merge batch ran in between. 64Ki events keeps worst-case
// staleness small relative to any realistic merge interval while making
// the clone cost (one slab copy) a rounding error per event.
const DefaultPublishEvery = 1 << 16

// Epoch is one immutable published snapshot of a profile: a read-only
// clone of the tree cut at a known point in the stream, served without
// any locks. Epochs are produced by an EpochPublisher (see
// ConcurrentTree.EnableReadSnapshots and the sharded engine); queries on
// an Epoch touch only the frozen clone, so they never contend with
// ingest.
//
// Epochs obtained from EpochPublisher.Acquire are pinned and must be
// released with Release exactly once; epochs observed via Current are
// unpinned views valid for the duration of a single call chain. The Go
// GC keeps the underlying arena alive as long as any reference exists —
// pinning is lifecycle accounting (retirement is deferred until the
// reader count drains), not a memory-safety requirement.
type Epoch struct {
	tree        *Tree
	seq         uint64
	cutN        uint64
	publishedAt int64 // unix nanoseconds
	pins        atomic.Int64
	superseded  atomic.Bool
	retiredMark atomic.Bool
	pub         *EpochPublisher // nil for detached epochs
}

// NewDetachedEpoch wraps a standalone tree (typically a fresh CloneCut)
// as an epoch outside any publisher: sequence 0, Release is a no-op.
// Facade Reader() falls back to this when read snapshots are disabled,
// so callers get one consistent-cut API either way.
func NewDetachedEpoch(t *Tree) *Epoch {
	return &Epoch{tree: t, cutN: t.N(), publishedAt: time.Now().UnixNano()}
}

// Seq is the epoch's publish sequence number, strictly increasing per
// publisher starting at 1 (0 means detached). Operators use it to
// correlate query answers, audits, and metrics scrapes.
func (e *Epoch) Seq() uint64 { return e.seq }

// CutN is the admitted event weight the profile had when this epoch was
// cut — the "stream position" an answer from this epoch describes.
func (e *Epoch) CutN() uint64 { return e.cutN }

// PublishedAt is the wall-clock instant the epoch was published.
func (e *Epoch) PublishedAt() time.Time { return time.Unix(0, e.publishedAt) }

// N returns the admitted event weight at the cut (same as CutN).
func (e *Epoch) N() uint64 { return e.cutN }

// Estimate answers from the frozen snapshot; see Tree.Estimate.
func (e *Epoch) Estimate(lo, hi uint64) uint64 { return e.tree.Estimate(lo, hi) }

// EstimateBounds answers from the frozen snapshot; see
// Tree.EstimateBounds. The upper bound includes the unadmitted ledger as
// of the cut, so the certified bracket describes the offered stream at
// the epoch's position.
func (e *Epoch) EstimateBounds(lo, hi uint64) (low, high uint64) {
	return e.tree.EstimateBounds(lo, hi)
}

// HotRanges answers from the frozen snapshot; see Tree.HotRanges.
func (e *Epoch) HotRanges(theta float64) []HotRange { return e.tree.HotRanges(theta) }

// Stats returns the frozen snapshot's counters.
func (e *Epoch) Stats() Stats { return e.tree.Stats() }

// Tree exposes the underlying frozen tree for read-only analysis
// (rendering, coverage curves). Callers must not mutate it.
func (e *Epoch) Tree() *Tree { return e.tree }

// Release unpins an epoch obtained from Acquire. The last reader of a
// superseded epoch retires it. Release on a detached epoch is a no-op.
func (e *Epoch) Release() {
	if e == nil || e.pub == nil {
		return
	}
	e.pub.pinned.Add(-1)
	if e.pins.Add(-1) == 0 {
		e.maybeRetire()
	}
}

// maybeRetire marks the epoch retired once it is superseded and has no
// pinned readers. The CAS makes retirement count exactly once even when
// the publisher and the last reader race here.
func (e *Epoch) maybeRetire() {
	if e.superseded.Load() && e.pins.Load() == 0 &&
		e.retiredMark.CompareAndSwap(false, true) {
		if e.pub != nil {
			e.pub.retired.Add(1)
		}
	}
}

// EpochPublisher owns the single-writer/many-reader epoch lifecycle: the
// writer publishes immutable clones with an atomic pointer swap; readers
// either peek at the current epoch (Current, no pin) or pin one for
// multi-query consistency (Acquire/Release). Superseded epochs are
// retired once their reader count drains.
//
// Publish must be externally serialized (it is called under the writer's
// lock on the concurrent engine, and under a publish mutex on the
// sharded engine); everything else is safe from any goroutine.
type EpochPublisher struct {
	cur       atomic.Pointer[Epoch]
	seq       atomic.Uint64
	published atomic.Uint64
	retired   atomic.Uint64
	pinned    atomic.Int64
	lastPub   atomic.Int64 // unix nanoseconds of the last publish
}

// NewEpochPublisher returns an empty publisher; Current returns nil
// until the first Publish.
func NewEpochPublisher() *EpochPublisher { return new(EpochPublisher) }

// Publish freezes t as the new current epoch and supersedes the old one.
// t must be a private clone the caller will never touch again — the
// publisher takes ownership and serves queries from it lock-free.
func (p *EpochPublisher) Publish(t *Tree) *Epoch {
	e := &Epoch{
		tree:        t,
		seq:         p.seq.Add(1),
		cutN:        t.N(),
		publishedAt: time.Now().UnixNano(),
		pub:         p,
	}
	old := p.cur.Swap(e)
	p.published.Add(1)
	p.lastPub.Store(e.publishedAt)
	if old != nil {
		old.superseded.Store(true)
		old.maybeRetire()
	}
	return e
}

// Current returns the latest published epoch without pinning it, or nil
// before the first publish. The returned epoch stays valid (the GC keeps
// it alive), but a long-lived reader that wants a stable view across
// several queries should use Acquire instead.
func (p *EpochPublisher) Current() *Epoch { return p.cur.Load() }

// Acquire pins and returns the current epoch, or nil before the first
// publish. The caller must Release it exactly once. The pin-recheck loop
// guarantees the returned epoch was current at some instant after the
// pin landed, so its retirement is deferred until Release.
func (p *EpochPublisher) Acquire() *Epoch {
	for {
		e := p.cur.Load()
		if e == nil {
			return nil
		}
		e.pins.Add(1)
		p.pinned.Add(1)
		if p.cur.Load() == e {
			return e
		}
		// Superseded between load and pin: undo and retry on the newer one.
		p.pinned.Add(-1)
		if e.pins.Add(-1) == 0 {
			e.maybeRetire()
		}
	}
}

// Seq is the sequence number of the most recently published epoch.
func (p *EpochPublisher) Seq() uint64 { return p.seq.Load() }

// Published is the total number of epochs published.
func (p *EpochPublisher) Published() uint64 { return p.published.Load() }

// Retired is the total number of superseded epochs whose reader count
// drained.
func (p *EpochPublisher) Retired() uint64 { return p.retired.Load() }

// Pinned is the number of currently pinned readers across all epochs.
func (p *EpochPublisher) Pinned() int64 { return p.pinned.Load() }

// LastPublishedAt is the wall-clock instant of the most recent publish
// (zero before the first).
func (p *EpochPublisher) LastPublishedAt() time.Time {
	ns := p.lastPub.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}
