package core

import (
	"sort"
	"time"
)

// Query paths are read-only: the arena cannot move under them, so holding
// a *node across recursion is safe here (unlike the mutation paths, which
// must re-derive pointers after any allocation). Nodes do not store their
// range start; every walk derives child bounds from the parent's exactly
// as splits do, starting from the root's (0, 0).

// NodeInfo describes one live node of the tree to external observers.
type NodeInfo struct {
	Lo, Hi uint64 // inclusive range covered
	Count  uint64 // events credited to this node while it was smallest
	Depth  int    // split steps below the root
	Leaf   bool   // no live children
}

// Walk visits every live node in preorder (parent before children,
// children in range order), calling fn for each. Walk stops early if fn
// returns false.
func (t *Tree) Walk(fn func(NodeInfo) bool) {
	t.walk(0, 0, 0, fn)
}

func (t *Tree) walk(vi uint32, lo uint64, depth int, fn func(NodeInfo) bool) bool {
	if !fn(t.info(vi, lo, depth)) {
		return false
	}
	v := &t.arena[vi]
	if v.childBase == nilIdx {
		return true
	}
	fan := t.fanout(v.plen)
	for i := 0; i < fan; i++ {
		ci := v.childBase + uint32(i)
		if t.arena[ci].dead {
			continue
		}
		clo, _ := t.childBounds(lo, v.plen, i)
		if !t.walk(ci, clo, depth+1, fn) {
			return false
		}
	}
	return true
}

func (t *Tree) info(vi uint32, lo uint64, depth int) NodeInfo {
	v := &t.arena[vi]
	return NodeInfo{
		Lo:    lo,
		Hi:    rangeHi(lo, v.plen, t.cfg.UniverseBits),
		Count: t.count(vi),
		Depth: depth,
		Leaf:  v.isLeaf(),
	}
}

// subtreeSum returns the total count stored in the subtree at slot vi: the
// tree's estimate for the number of events that fell in its range.
func (t *Tree) subtreeSum(vi uint32) uint64 {
	v := &t.arena[vi]
	s := t.count(vi)
	if v.childBase == nilIdx {
		return s
	}
	fan := t.fanout(v.plen)
	for i := 0; i < fan; i++ {
		ci := v.childBase + uint32(i)
		if !t.arena[ci].dead {
			s += t.subtreeSum(ci)
		}
	}
	return s
}

// Estimate returns the tree's estimate for the number of events in
// [lo, hi] (inclusive): the summed counts of all nodes whose range lies
// entirely inside the query. By construction this is a lower bound on the
// true count (Section 4.3: "the counts for a range in the tree is always a
// lower bound on the actual count").
func (t *Tree) Estimate(lo, hi uint64) uint64 {
	if lo > hi {
		return 0
	}
	done := t.estimateTimer()
	low, _ := t.estimate(0, 0, lo&t.mask, hi&t.mask)
	done()
	return low
}

// estimateTimer starts an estimate-latency measurement when the
// EstimateDone hook is installed; otherwise it is a single nil check.
func (t *Tree) estimateTimer() func() {
	if t.hooks == nil || t.hooks.EstimateDone == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.hooks.EstimateDone(time.Since(start)) }
}

// EstimateBounds returns both the lower-bound estimate for [lo, hi] and an
// upper bound obtained by additionally charging the counts of every node
// that merely overlaps the query (those events may or may not have fallen
// inside). Weight the admission gate refused was never credited anywhere,
// so any of it could have fallen inside the query: the whole unadmitted
// ledger is charged to the upper bound as well. The true count always lies
// in [low, high].
func (t *Tree) EstimateBounds(lo, hi uint64) (low, high uint64) {
	if lo > hi {
		return 0, 0
	}
	done := t.estimateTimer()
	low, high = t.estimate(0, 0, lo&t.mask, hi&t.mask)
	done()
	return low, high + t.unadmitted
}

func (t *Tree) estimate(vi uint32, vlo, lo, hi uint64) (low, high uint64) {
	v := &t.arena[vi]
	vhi := rangeHi(vlo, v.plen, t.cfg.UniverseBits)
	if vlo > hi || vhi < lo {
		return 0, 0
	}
	if lo <= vlo && vhi <= hi {
		s := t.subtreeSum(vi)
		return s, s
	}
	// Partial overlap: v's own count is ambiguous — those events landed
	// somewhere in v's range but we cannot tell which side of the query
	// boundary. Exclude from the lower bound, include in the upper.
	low, high = 0, t.count(vi)
	if v.childBase == nilIdx {
		return low, high
	}
	fan := t.fanout(v.plen)
	for i := 0; i < fan; i++ {
		ci := v.childBase + uint32(i)
		if t.arena[ci].dead {
			continue
		}
		clo, _ := t.childBounds(vlo, v.plen, i)
		cl, ch := t.estimate(ci, clo, lo, hi)
		low += cl
		high += ch
	}
	return low, high
}

// HotRange is one range reported hot by HotRanges.
type HotRange struct {
	Lo, Hi uint64
	// Weight is the "hot weight" of Section 4.1: the count of the range
	// and all its non-hot sub-ranges, excluding hot descendants (which
	// are reported separately).
	Weight uint64
	// Frac is Weight relative to the total stream length.
	Frac float64
	// Depth is the node's depth in the tree.
	Depth int
}

// HotRanges reports every range whose hot weight is at least theta·n,
// using the recursive definition of Section 4.1: "a range is considered
// hot if and only if the total count for that range and all its non-hot
// sub-ranges is above a certain threshold". The result is sorted by Lo,
// ties broken widest range first. Because estimates are lower bounds, a
// reported range is guaranteed hot ("if RAP identifies a node as hot, then
// that node is guaranteed to be hot", Section 4.3).
func (t *Tree) HotRanges(theta float64) []HotRange {
	if t.n == 0 {
		return nil
	}
	cut := theta * float64(t.n)
	var out []HotRange
	t.hot(0, 0, 0, cut, &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lo != out[j].Lo {
			return out[i].Lo < out[j].Lo
		}
		return out[i].Hi > out[j].Hi
	})
	return out
}

// hot returns the residual (non-hot) weight of the subtree at slot vi
// (range start lo), appending hot ranges found within to out.
func (t *Tree) hot(vi uint32, lo uint64, depth int, cut float64, out *[]HotRange) uint64 {
	v := &t.arena[vi]
	w := t.count(vi)
	if v.childBase != nilIdx {
		fan := t.fanout(v.plen)
		for i := 0; i < fan; i++ {
			ci := v.childBase + uint32(i)
			if !t.arena[ci].dead {
				clo, _ := t.childBounds(lo, v.plen, i)
				w += t.hot(ci, clo, depth+1, cut, out)
			}
		}
	}
	if float64(w) >= cut {
		*out = append(*out, HotRange{
			Lo:     lo,
			Hi:     rangeHi(lo, v.plen, t.cfg.UniverseBits),
			Weight: w,
			Frac:   float64(w) / float64(t.n),
			Depth:  depth,
		})
		return 0
	}
	return w
}

// Total returns the summed counts over the whole tree, which always equals
// N: RAP merges data rather than sampling it, so no event is ever lost.
func (t *Tree) Total() uint64 { return t.subtreeSum(0) }
