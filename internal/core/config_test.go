package core

import (
	"math"
	"testing"
)

// NaN compares false against every bound, so a validator written purely as
// range checks lets NaN (and, for some fields, Inf) slip through and poison
// every later threshold computation. These tests pin the explicit
// finiteness rejection.
func TestValidateRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"epsilon NaN", func(c *Config) { c.Epsilon = nan }},
		{"epsilon +Inf", func(c *Config) { c.Epsilon = inf }},
		{"epsilon -Inf", func(c *Config) { c.Epsilon = -inf }},
		{"merge ratio NaN", func(c *Config) { c.MergeRatio = nan }},
		{"merge ratio +Inf", func(c *Config) { c.MergeRatio = inf }},
		{"merge threshold scale NaN", func(c *Config) { c.MergeThresholdScale = nan }},
		{"merge threshold scale +Inf", func(c *Config) { c.MergeThresholdScale = inf }},
		{"merge threshold scale -Inf", func(c *Config) { c.MergeThresholdScale = -inf }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mod(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatalf("New accepted non-finite config %+v", cfg)
			}
		})
	}
}

// A NaN MergeRatio under a fixed MergeEvery schedule is never consulted, so
// the validator must still accept that combination (it did before the
// finiteness hardening).
func TestValidateIgnoresMergeRatioUnderFixedSchedule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MergeRatio = 0
	cfg.MergeEvery = 1024
	if _, err := New(cfg); err != nil {
		t.Fatalf("New rejected fixed-schedule config: %v", err)
	}
}

func TestValidateAcceptsFiniteEdges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon = 0.999
	cfg.MergeRatio = 1.0001
	cfg.MergeThresholdScale = 2.5
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("New rejected valid config: %v", err)
	}
	for i := uint64(0); i < 10_000; i++ {
		tr.Add(i % 37)
	}
	if tr.N() != 10_000 {
		t.Fatalf("N = %d, want 10000", tr.N())
	}
}
