// Package core implements Range Adaptive Profiling (RAP), the streaming
// range profiler of Mysore et al., "Profiling over Adaptive Ranges"
// (CGO 2006).
//
// A RAP tree summarizes a stream of events drawn from a power-of-two
// universe [0, 2^w) using a bounded number of range counters. Every event
// is credited to the smallest range currently tracked that covers it; no
// event is ever sampled away or dropped. Ranges whose counters grow past a
// split threshold
//
//	SplitThreshold = ε·n / H
//
// (n = events seen so far, H = maximum tree height log_b R) are split into
// b aligned subranges, refining precision exactly where the stream has
// weight. Cold subtrees are folded back into their parents during batched
// merge passes scheduled at geometrically growing intervals (ratio q),
// which keeps live memory bounded by O(b·log_b R / ε) independent of the
// stream length.
//
// Guarantees, as established in the paper (and in Hershberger et al.,
// "Adaptive Spatial Partitioning for Multidimensional Data Streams"):
//
//   - every range estimate is a lower bound on the true count;
//   - the underestimate for any tracked range is at most ε·n;
//   - a range reported hot is guaranteed hot (no false positives against
//     the same additive slack).
//
// The package mirrors the software API of Section 3.2 of the paper:
// [New] plays the role of rap_init, [Tree.Add] and [Tree.AddN] of
// rap_add_points, and [Tree.Finalize] of rap_finalize.
package core
