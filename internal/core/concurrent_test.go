package core

import (
	"sync"
	"testing"
)

func TestConcurrentValidation(t *testing.T) {
	if _, err := NewConcurrent(Config{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestConcurrentParallelFeeds(t *testing.T) {
	c, err := NewConcurrent(testConfig(24, 4, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		each    = 20_000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker hammers its own hot point plus shared noise.
			batch := make([]uint64, 0, 128)
			for i := 0; i < each; i++ {
				p := uint64(0x1000 * (w + 1))
				if i%4 == 0 {
					p = uint64(i * 37 % (1 << 24))
				}
				if i%2 == 0 {
					c.Add(p)
				} else {
					batch = append(batch, p)
					if len(batch) == 128 {
						c.AddBatch(batch)
						batch = batch[:0]
					}
				}
			}
			c.AddBatch(batch)
		}(w)
	}
	// Concurrent readers while feeding.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			c.HotRanges(0.05)
			c.Estimate(0, 1<<23)
			c.EstimateBounds(0, 1<<20)
			c.Stats()
		}
	}()
	wg.Wait()
	<-done

	if c.N() != workers*each {
		t.Fatalf("N = %d, want %d", c.N(), workers*each)
	}
	st := c.Finalize()
	if st.N != workers*each {
		t.Fatalf("stats N = %d", st.N)
	}
	// Each worker's hot point must be individually resolved.
	hot := c.HotRanges(0.05)
	singles := 0
	for _, h := range hot {
		if h.Lo == h.Hi {
			singles++
		}
	}
	if singles < workers {
		t.Fatalf("found %d hot singletons, want >= %d", singles, workers)
	}
	if _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSnapshotRestore(t *testing.T) {
	c, err := NewConcurrent(testConfig(24, 4, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50_000; i++ {
		c.Add(i * 31 % (1 << 20))
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := c.Stats()

	back, err := NewConcurrent(testConfig(24, 4, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// ArenaBytes is physical slab capacity, not logical state — a restored
	// tree allocates exactly what it needs, without growth slack.
	got := back.Stats()
	if got.ArenaBytes == 0 {
		t.Fatal("restored stats missing arena footprint")
	}
	got.ArenaBytes, want.ArenaBytes = 0, 0
	got.CounterPoolBytes, want.CounterPoolBytes = 0, 0
	got.CounterPromotions, want.CounterPromotions = 0, 0
	if got != want {
		t.Fatalf("restored stats %+v, want %+v", got, want)
	}
	if a, b := back.Estimate(0, 1<<19), c.Estimate(0, 1<<19); a != b {
		t.Fatalf("restored estimate %d, want %d", a, b)
	}

	// A corrupt snapshot must be rejected and leave the tree untouched,
	// even while other goroutines keep feeding it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < 10_000; i++ {
			back.Add(i)
		}
	}()
	bad := append([]byte{}, snap...)
	bad[0] ^= 0xff // break the magic: guaranteed decode failure
	if err := back.Restore(bad); err == nil {
		t.Fatal("Restore accepted corrupt snapshot")
	}
	wg.Wait()
	if n := back.N(); n != want.N+10_000 {
		t.Fatalf("N after rejected restore = %d, want %d", n, want.N+10_000)
	}
}
