package core

import "math/bits"

// Node storage. Nodes live in a single arena slab ([]node on the Tree) and
// refer to each other by uint32 index instead of pointer: index 0 is the
// root, and a split allocates one contiguous block of `fanout` slots whose
// base index the parent records in childBase. Child i of a node is always
// slot childBase+i, so the per-node children slice of the old layout — a
// 24-byte header plus a pointer-chasing indirection per descent step — is
// replaced by one add. Indices stay valid when the slab grows (append may
// move the backing array, which would invalidate pointers but not
// offsets), which is what lets the last-leaf cache of batch.go survive
// arena growth without revalidation machinery.
//
// The node is 12 bytes. Two fields of the original arena layout were
// evicted to get there, halving the slab and roughly doubling how much of
// the hot descent chain fits per cache line:
//
//   - The counter moved into per-tree width-class pools (counter.go); the
//     node keeps only the 32-bit packed reference cref.
//   - lo is no longer stored at all. A node's range start is derivable
//     wherever the node is reached: the descent for a point p knows
//     lo = p &^ suffixMask(w-plen), and every whole-tree walk descends
//     from the root deriving child bounds with childBounds exactly as
//     splits do. Dropping the redundant copy is free because the
//     structure already encodes it.
//
// Merged-away children (the "children do not cover the entire range of the
// parent" case of Section 3.3) keep their slot but are marked dead; a
// block whose slots are all dead is returned to a size-keyed freelist and
// recycled by later splits, so a workload that repeatedly splits and
// merges churns no memory at all. Dead marking doubles as staleness
// detection: any cached index whose slot was freed fails the liveness
// check instead of silently crediting a detached node.
type node struct {
	cref      uint32 // packed counter reference (counter.go); crefNone while dead
	childBase uint32 // base slot of the children block; nilIdx = leaf
	plen      uint8
	dead      bool // slot is a merge hole or sits in a freed block
	// cshift/cmask cache the child-slot arithmetic for this node's block:
	// slot = (p >> cshift) & cmask. They turn the per-level stride/mask
	// recomputation of the descent loop into two byte loads. Maintained
	// by setChildGeometry wherever childBase is assigned; meaningless
	// (and unread) while the node is a leaf.
	cshift uint8
	cmask  uint8
}

// nilIdx is the "no children" sentinel for childBase and the "no entry"
// sentinel for the last-leaf cache. It is never a valid slot: the arena
// would have to hold 2^32-1 nodes first.
const nilIdx = ^uint32(0)

// maxFreeLists bounds log2(fanout): Branch is validated to at most 256, so
// a children block holds at most 2^8 slots.
const maxFreeLists = 9

// isLeaf reports whether the node currently has no children block.
func (v *node) isLeaf() bool { return v.childBase == nilIdx }

// rangeHi returns the inclusive upper end of the range starting at lo
// with prefix length plen in a w-bit universe.
func rangeHi(lo uint64, plen uint8, w int) uint64 {
	return lo | suffixMask(w-int(plen))
}

// prefixOf returns the range start (lo) of the plen-bit prefix range
// containing point p in a w-bit universe — the derivation that replaced
// the stored lo field.
func prefixOf(p uint64, plen uint8, w int) uint64 {
	return p &^ suffixMask(w-int(plen))
}

// suffixMask returns a mask with the k low bits set; k in [0, 64].
func suffixMask(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << k) - 1
}

// allocBlock returns the base slot of a fan-slot children block, reusing a
// freed block of the same size when one exists and growing the arena
// otherwise. Every slot of the returned block is dead: a fresh block is
// all holes until split or decode revives the slots it wants, which is
// exactly the refill-missing-children semantics of Section 3.3.
//
// allocBlock may grow (and therefore move) the arena backing array: any
// *node held across a call is invalid afterwards, so mutation paths hold
// slot indices and re-derive pointers.
func (t *Tree) allocBlock(fan int) uint32 {
	k := bits.TrailingZeros(uint(fan))
	if fl := t.free[k]; len(fl) > 0 {
		base := fl[len(fl)-1]
		t.free[k] = fl[:len(fl)-1]
		return base
	}
	base := len(t.arena)
	if base+fan > cap(t.arena) {
		grown := make([]node, base, 2*cap(t.arena)+fan)
		copy(grown, t.arena)
		t.arena = grown
	}
	t.arena = t.arena[:base+fan]
	for i := base; i < base+fan; i++ {
		t.arena[i] = node{cref: crefNone, childBase: nilIdx, dead: true}
	}
	return uint32(base)
}

// freeBlock returns an all-dead children block to the freelist for its
// size. The slots keep their dead marking, so stale indices into the block
// fail liveness checks until a split revives them as new nodes.
func (t *Tree) freeBlock(base uint32, fan int) {
	k := bits.TrailingZeros(uint(fan))
	t.free[k] = append(t.free[k], base)
}

// normalize frees v's children block when every slot is dead, restoring
// the leaf encoding so isLeaf stays meaningful.
func (t *Tree) normalize(vi uint32) {
	v := &t.arena[vi]
	if v.childBase == nilIdx {
		return
	}
	fan := t.fanout(v.plen)
	for i := 0; i < fan; i++ {
		if !t.arena[v.childBase+uint32(i)].dead {
			return
		}
	}
	t.freeBlock(v.childBase, fan)
	v.childBase = nilIdx
}

// hasHole reports whether v's children block has a merged-away slot.
func (t *Tree) hasHole(vi uint32) bool {
	v := &t.arena[vi]
	if v.childBase == nilIdx {
		return false
	}
	fan := t.fanout(v.plen)
	for i := 0; i < fan; i++ {
		if t.arena[v.childBase+uint32(i)].dead {
			return true
		}
	}
	return false
}

// fanout returns the number of children a split of a node at plen creates:
// the full branching factor, except at the bottom of an unevenly dividing
// universe where only the remaining bits are available.
func (t *Tree) fanout(plen uint8) int {
	rem := t.cfg.UniverseBits - int(plen)
	if rem >= t.shift {
		return 1 << t.shift
	}
	return 1 << rem
}

// childStride returns the number of prefix bits a child of a node at plen
// adds.
func (t *Tree) childStride(plen uint8) int {
	rem := t.cfg.UniverseBits - int(plen)
	if rem >= t.shift {
		return t.shift
	}
	return rem
}

// childIndex returns which child slot of a node at plen the point p falls
// in. The caller guarantees p is inside the node's range and the node is
// not a singleton.
func (t *Tree) childIndex(plen uint8, p uint64) int {
	s := t.childStride(plen)
	shift := t.cfg.UniverseBits - int(plen) - s
	return int((p >> shift) & suffixMask(s))
}

// childBounds returns the lo and plen of child slot i of a node at
// (lo, plen).
func (t *Tree) childBounds(lo uint64, plen uint8, i int) (uint64, uint8) {
	s := t.childStride(plen)
	shift := t.cfg.UniverseBits - int(plen) - s
	return lo | uint64(i)<<shift, plen + uint8(s)
}

// setChildGeometry fills slot vi's cached child-slot arithmetic (cshift,
// cmask). Called wherever a children block is attached to a node. The
// stride is at most log2(Branch) <= 8 bits, so the mask fits a byte.
func (t *Tree) setChildGeometry(vi uint32) {
	v := &t.arena[vi]
	s := t.childStride(v.plen)
	v.cshift = uint8(t.cfg.UniverseBits - int(v.plen) - s)
	v.cmask = uint8(1<<s - 1)
}
