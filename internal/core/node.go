package core

// node is one range counter in the RAP tree. A node covers the bit-prefix
// range [lo, hi] where lo has the node's prefix in its top plen bits and
// zeros below, and hi has ones below. This is exactly the ternary-CAM row
// encoding of the hardware design (Section 3.3): prefix bits exact, suffix
// bits wildcarded.
type node struct {
	lo    uint64
	plen  uint8
	count uint64
	// children has length equal to the node's fanout once the node has
	// ever split, with nil holes where a subtree was merged away (the
	// "children do not cover the entire range of the parent" case of
	// Section 3.3). nil children slice means the node is a leaf.
	children []*node
}

// hi returns the inclusive upper end of the node's range in a w-bit
// universe.
func (v *node) hi(w int) uint64 {
	return v.lo | suffixMask(w-int(v.plen))
}

// suffixMask returns a mask with the k low bits set; k in [0, 64].
func suffixMask(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << k) - 1
}

// isLeaf reports whether the node currently has no live children.
func (v *node) isLeaf() bool { return v.children == nil }

// normalize drops an all-nil children slice so isLeaf is meaningful.
func (v *node) normalize() {
	for _, c := range v.children {
		if c != nil {
			return
		}
	}
	v.children = nil
}

// fanout returns the number of children a split of v creates: the full
// branching factor, except at the bottom of an unevenly dividing universe
// where only the remaining bits are available.
func (t *Tree) fanout(plen uint8) int {
	rem := t.cfg.UniverseBits - int(plen)
	if rem >= t.shift {
		return 1 << t.shift
	}
	return 1 << rem
}

// childStride returns the number of prefix bits a child of a node at plen
// adds.
func (t *Tree) childStride(plen uint8) int {
	rem := t.cfg.UniverseBits - int(plen)
	if rem >= t.shift {
		return t.shift
	}
	return rem
}

// childIndex returns which child slot of v the point p falls in. The
// caller guarantees p is inside v's range and v is not a singleton.
func (t *Tree) childIndex(v *node, p uint64) int {
	s := t.childStride(v.plen)
	shift := t.cfg.UniverseBits - int(v.plen) - s
	return int((p >> shift) & suffixMask(s))
}

// childBounds returns the lo and plen of child slot i of v.
func (t *Tree) childBounds(v *node, i int) (lo uint64, plen uint8) {
	s := t.childStride(v.plen)
	shift := t.cfg.UniverseBits - int(v.plen) - s
	return v.lo | uint64(i)<<shift, v.plen + uint8(s)
}
