package core

import (
	"bytes"
	"testing"
)

// hostileSnapshot builds snapshot bytes for a w=4, b=4 universe (height 2)
// consisting of the valid header of an empty tree followed by a hand-built
// node stream. The empty tree's own node stream is exactly the last four
// bytes (lo=0, plen=0, count=0, live=0), so stripping those yields a header
// to graft arbitrary node encodings onto.
func hostileSnapshot(t *testing.T, nodeStream []byte) []byte {
	t.Helper()
	tr := MustNew(testConfig(4, 4, 0.05))
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	header := data[:len(data)-4]
	return append(append([]byte{}, header...), nodeStream...)
}

func TestUnmarshalRejectsHostileSnapshots(t *testing.T) {
	// Node encoding: uvarint lo, byte plen, uvarint count, uvarint live,
	// then (uvarint childIdx, child node) per live child. For w=4, b=4 the
	// root's children sit at plen 2 with lo = idx<<2.
	leaf := func(lo, plen byte) []byte { return []byte{lo, plen, 0x00, 0x00} }
	cases := map[string][]byte{
		"child index beyond fanout": {0x00, 0x00, 0x00, 0x01, 0x05},
		"duplicate child index": append(append(
			[]byte{0x00, 0x00, 0x00, 0x02, 0x01}, leaf(0x04, 2)...),
			append([]byte{0x01}, leaf(0x04, 2)...)...),
		"out of order child index": append(append(
			[]byte{0x00, 0x00, 0x00, 0x02, 0x02}, leaf(0x08, 2)...),
			append([]byte{0x01}, leaf(0x04, 2)...)...),
		"root bounds mismatch lo":   leaf(0x01, 0),
		"root bounds mismatch plen": leaf(0x00, 2),
		"child bounds mismatch": append(
			[]byte{0x00, 0x00, 0x00, 0x01, 0x01}, leaf(0x08, 2)...),
		"plen exceeds universe": leaf(0x00, 9),
		// plen 4 nodes have fanout 1 and stride 0: a chain of them could
		// recurse forever if depth were unchecked.
		"recursion past height": append(
			[]byte{0x00, 0x00, 0x00, 0x01, 0x01}, // root -> child 1 (plen 2)
			append([]byte{0x04, 0x02, 0x00, 0x01, 0x00}, // -> child 0 (plen 4)
				append([]byte{0x04, 0x04, 0x00, 0x01, 0x00}, // -> child 0 (plen 4 again)
					leaf(0x04, 4)...)...)...),
		"trailing garbage":        append(leaf(0x00, 0), 0xff),
		"child count over fanout": {0x00, 0x00, 0x00, 0x07},
	}
	for name, stream := range cases {
		t.Run(name, func(t *testing.T) {
			data := hostileSnapshot(t, stream)
			var tr Tree
			if err := tr.UnmarshalBinary(data); err == nil {
				t.Fatalf("UnmarshalBinary accepted hostile snapshot % x", stream)
			}
		})
	}
}

// FuzzUnmarshalBinary throws arbitrary bytes at the snapshot decoder. The
// decoder must never panic, and any snapshot it does accept must be
// internally consistent: the walked node count matches the bookkeeping,
// queries run, further profiling runs, and a re-marshal round-trips.
func FuzzUnmarshalBinary(f *testing.F) {
	for _, cfg := range []Config{
		testConfig(4, 4, 0.05),
		testConfig(24, 4, 0.02),
		testConfig(64, 16, 0.01),
	} {
		tr := MustNew(cfg)
		for i := uint64(0); i < 5_000; i++ {
			tr.Add(i * i % (1 << 16))
		}
		data, err := tr.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(data[:len(data)-1])
	}
	f.Add([]byte("RAPT\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Tree
		if err := tr.UnmarshalBinary(data); err != nil {
			return
		}
		walked := 0
		tr.Walk(func(NodeInfo) bool { walked++; return true })
		if walked != tr.NodeCount() {
			t.Fatalf("walked %d nodes, bookkeeping says %d", walked, tr.NodeCount())
		}
		_ = tr.Estimate(0, ^uint64(0))
		tr.Add(42)
		out, err := tr.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted snapshot failed: %v", err)
		}
		var back Tree
		if err := back.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-unmarshal of accepted snapshot failed: %v", err)
		}
		if !bytes.Equal(out, mustMarshal(t, &back)) {
			t.Fatal("snapshot round trip is not a fixed point")
		}
	})
}

func mustMarshal(t *testing.T, tr *Tree) []byte {
	t.Helper()
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
