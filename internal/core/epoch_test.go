package core

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func epochTestTree(points ...uint64) *Tree {
	t := MustNew(testConfig(16, 2, 0.05))
	for _, p := range points {
		t.Add(p)
	}
	return t
}

func TestEpochPublisherLifecycle(t *testing.T) {
	p := NewEpochPublisher()
	if p.Current() != nil {
		t.Fatal("fresh publisher has a current epoch")
	}
	if p.Acquire() != nil {
		t.Fatal("Acquire on empty publisher returned an epoch")
	}

	p.Publish(epochTestTree(1, 2, 3))
	e1 := p.Acquire()
	if e1 == nil {
		t.Fatal("Acquire returned nil after publish")
	}
	if e1.Seq() != 1 || e1.CutN() != 3 {
		t.Fatalf("epoch 1: seq=%d cutN=%d, want 1 and 3", e1.Seq(), e1.CutN())
	}
	if got := p.Pinned(); got != 1 {
		t.Fatalf("pinned = %d, want 1", got)
	}

	// Superseding a pinned epoch must not retire it until it drains.
	p.Publish(epochTestTree(1, 2, 3, 4))
	if got := p.Retired(); got != 0 {
		t.Fatalf("retired %d epochs while one is still pinned", got)
	}
	if _, high := e1.EstimateBounds(0, 1<<16); high != 3 {
		t.Fatalf("pinned superseded epoch answers wrong: high = %d, want 3", high)
	}
	e1.Release()
	if got := p.Retired(); got != 1 {
		t.Fatalf("retired = %d after last pin drained, want 1", got)
	}
	if got := p.Pinned(); got != 0 {
		t.Fatalf("pinned = %d after release, want 0", got)
	}

	e2 := p.Acquire()
	if e2.Seq() != 2 || e2.CutN() != 4 {
		t.Fatalf("epoch 2: seq=%d cutN=%d, want 2 and 4", e2.Seq(), e2.CutN())
	}
	e2.Release()
	// Double release of the same pin would corrupt the count; Release is
	// documented once-per-Acquire, so only sanity-check the counters here.
	if p.Published() != 2 {
		t.Fatalf("published = %d, want 2", p.Published())
	}
	if p.Seq() != 2 {
		t.Fatalf("seq = %d, want 2", p.Seq())
	}
	if p.LastPublishedAt().IsZero() {
		t.Fatal("LastPublishedAt is zero after publishes")
	}
}

func TestDetachedEpoch(t *testing.T) {
	e := NewDetachedEpoch(epochTestTree(7, 7, 9))
	if e.Seq() != 0 {
		t.Fatalf("detached epoch seq = %d, want 0", e.Seq())
	}
	if e.CutN() != 3 {
		t.Fatalf("detached epoch cutN = %d, want 3", e.CutN())
	}
	if _, high := e.EstimateBounds(0, 1<<16); high != 3 {
		t.Fatalf("detached epoch answers wrong: high = %d, want 3", high)
	}
	e.Release() // must be a safe no-op
	e.Release()
	if got := e.N(); got != 3 {
		t.Fatalf("N after release = %d, want 3", got)
	}
}

func TestConcurrentTreeReaderMatchesCloneCut(t *testing.T) {
	c, err := NewConcurrent(testConfig(20, 2, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	c.EnableReadSnapshots(1 << 10)
	for i := uint64(0); i < 50_000; i++ {
		c.Add(i * 2654435761 % (1 << 20))
	}
	// Quiesced: a fresh publish and a clone cut describe the same state.
	c.Publisher().Publish(c.CloneCut(nil))
	e := c.Reader()
	defer e.Release()
	cut := c.CloneCut(nil)
	if e.N() != cut.N() {
		t.Fatalf("epoch N = %d, clone cut N = %d", e.N(), cut.N())
	}
	for _, r := range [][2]uint64{{0, 1 << 20}, {0, 1 << 10}, {1 << 19, 1 << 20}, {12345, 12345}} {
		el, eh := e.EstimateBounds(r[0], r[1])
		cl, ch := cut.EstimateBounds(r[0], r[1])
		if el != cl || eh != ch {
			t.Fatalf("bounds differ on [%d,%d]: epoch (%d,%d) vs cut (%d,%d)", r[0], r[1], el, eh, cl, ch)
		}
		if e.Estimate(r[0], r[1]) != cut.Estimate(r[0], r[1]) {
			t.Fatalf("estimate differs on [%d,%d]", r[0], r[1])
		}
	}
	eh := e.HotRanges(0.01)
	ch := cut.HotRanges(0.01)
	if len(eh) != len(ch) {
		t.Fatalf("hot ranges differ: %d vs %d", len(eh), len(ch))
	}
	for i := range eh {
		if eh[i] != ch[i] {
			t.Fatalf("hot range %d differs: %+v vs %+v", i, eh[i], ch[i])
		}
	}
}

// TestConcurrentTreeEpochHammer publishes at an aggressive cadence while
// queriers hold pinned epochs across sub-queries; run under -race this
// exercises the pin/retire protocol end to end.
func TestConcurrentTreeEpochHammer(t *testing.T) {
	cfg := testConfig(20, 2, 0.05)
	cfg.FirstMerge = 64 // merge (and therefore publish) often
	c, err := NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableReadSnapshots(256)

	const writers = 4
	const each = 30_000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Add(uint64(w*each+i) * 2654435761 % (1 << 20))
			}
		}(w)
	}
	var stop atomic.Bool
	var qwg sync.WaitGroup
	for q := 0; q < 4; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			var lastSeq uint64
			for !stop.Load() {
				e := c.Reader()
				if e == nil {
					t.Error("Reader returned nil with snapshots enabled")
					return
				}
				if s := e.Seq(); s < lastSeq {
					t.Errorf("epoch seq went backwards: %d after %d", s, lastSeq)
					e.Release()
					return
				} else {
					lastSeq = s
				}
				// A pinned epoch is frozen: N must not move between reads.
				n1 := e.N()
				lo, hi := e.EstimateBounds(0, 1<<20)
				if lo > hi {
					t.Errorf("bounds inverted: %d > %d", lo, hi)
				}
				if n2 := e.N(); n2 != n1 {
					t.Errorf("pinned epoch N moved: %d -> %d", n1, n2)
				}
				e.HotRanges(0.05)
				e.Release()
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	qwg.Wait()

	if c.N() != writers*each {
		t.Fatalf("N = %d, want %d", c.N(), writers*each)
	}
	p := c.Publisher()
	if p.Published() < 2 {
		t.Fatalf("only %d epochs published under merge-heavy load", p.Published())
	}
	if p.Pinned() != 0 {
		t.Fatalf("%d pins leaked", p.Pinned())
	}
}

// TestConcurrentTreeQueryPathLockFree proves queries never touch the
// writer mutex once snapshots are on: the test holds the mutex and the
// query must still answer.
func TestConcurrentTreeQueryPathLockFree(t *testing.T) {
	c, err := NewConcurrent(testConfig(16, 2, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10_000; i++ {
		c.Add(i % 1000)
	}
	c.EnableReadSnapshots(1 << 16)

	c.mu.Lock()
	defer c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Estimate(0, 1<<16)
		c.EstimateBounds(0, 1<<16)
		c.HotRanges(0.01)
		e := c.Reader()
		e.Stats()
		e.Release()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("query blocked on the writer mutex: read path is not lock-free")
	}
}

// TestQueryPathMutexProfile runs the contended write+query mix with
// mutex profiling at full fraction and asserts no recorded contention
// stack passes through the epoch query path.
func TestQueryPathMutexProfile(t *testing.T) {
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	c, err := NewConcurrent(testConfig(20, 2, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	c.EnableReadSnapshots(512)
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50_000; i++ {
				c.Add(uint64(w*50_000+i) % (1 << 20))
			}
		}(w)
	}
	var qwg sync.WaitGroup
	for q := 0; q < 4; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for !stop.Load() {
				c.Estimate(0, 1<<19)
				c.HotRanges(0.05)
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	qwg.Wait()

	var records []runtime.BlockProfileRecord
	for {
		n, ok := runtime.MutexProfile(records)
		if ok {
			records = records[:n]
			break
		}
		records = make([]runtime.BlockProfileRecord, n+64)
	}
	for _, rec := range records {
		frames := runtime.CallersFrames(rec.Stack())
		for {
			f, more := frames.Next()
			name := f.Function
			if strings.Contains(name, "ConcurrentTree).Estimate") ||
				strings.Contains(name, "ConcurrentTree).EstimateBounds") ||
				strings.Contains(name, "ConcurrentTree).HotRanges") ||
				strings.Contains(name, "Epoch).") ||
				strings.Contains(name, "EpochPublisher).Acquire") {
				t.Fatalf("mutex contention recorded on the query path: %s", name)
			}
			if !more {
				break
			}
		}
	}
}

func TestConcurrentTreeRestoreRepublishes(t *testing.T) {
	c, err := NewConcurrent(testConfig(16, 2, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5_000; i++ {
		c.Add(i % 512)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	c2, err := NewConcurrent(testConfig(16, 2, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	c2.EnableReadSnapshots(1 << 16)
	if err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	e := c2.Reader()
	defer e.Release()
	if e.N() != 5_000 {
		t.Fatalf("restored epoch N = %d, want 5000 (restore did not republish)", e.N())
	}
}
