package core

import (
	"bytes"
	"math"
	"testing"
)

// noStructure returns a config whose thresholds keep the tree a single
// root node: counter behavior can then be observed without splits or
// merges moving counts around.
func noStructure() Config {
	cfg := testConfig(32, 4, 0.05)
	cfg.MinSplitCount = 1 << 40
	cfg.FirstMerge = 1 << 40
	return cfg
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		v    uint64
		want uint32
	}{
		{0, 0}, {1, 0}, {255, 0},
		{256, 1}, {65535, 1},
		{65536, 2}, {math.MaxUint32, 2},
		{math.MaxUint32 + 1, 3}, {math.MaxUint64, 3},
	}
	for _, tc := range cases {
		if got := classFor(tc.v); got != tc.want {
			t.Errorf("classFor(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

// TestCounterPromotionLadder walks one counter up the full ladder through
// the exact overflow boundaries, checking the value stays exact and the
// occupancy/promotion stats track each step.
func TestCounterPromotionLadder(t *testing.T) {
	tr := MustNew(noStructure())
	max := ^uint64(0) >> (64 - 32)

	step := func(add, wantTotal uint64, wantPromotions uint64, want8, want16, want32, want64 int) {
		t.Helper()
		tr.AddN(0, add)
		if got := tr.Estimate(0, max); got != wantTotal {
			t.Fatalf("after +%d: total %d, want %d", add, got, wantTotal)
		}
		st := tr.Stats()
		if st.CounterPromotions != wantPromotions {
			t.Fatalf("after +%d: promotions %d, want %d", add, st.CounterPromotions, wantPromotions)
		}
		if st.CounterSlots8 != want8 || st.CounterSlots16 != want16 ||
			st.CounterSlots32 != want32 || st.CounterSlots64 != want64 {
			t.Fatalf("after +%d: slots (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				add, st.CounterSlots8, st.CounterSlots16, st.CounterSlots32, st.CounterSlots64,
				want8, want16, want32, want64)
		}
	}

	step(255, 255, 0, 1, 0, 0, 0)                             // fills the 8-bit slot exactly
	step(1, 256, 1, 0, 1, 0, 0)                               // 255 -> 256 crosses into 16 bits
	step(65535-256, 65535, 1, 0, 1, 0, 0)                     // fills 16 bits exactly
	step(1, 65536, 2, 0, 0, 1, 0)                             // crosses into 32 bits
	step(math.MaxUint32-65536, math.MaxUint32, 2, 0, 0, 1, 0) // fills 32 bits
	step(1, math.MaxUint32+1, 3, 0, 0, 0, 1)                  // crosses into 64 bits
}

// TestCounterPromotionSkipsClasses: a weighted update can overflow several
// classes at once; the target class is derived from the value, not
// ladder-adjacent.
func TestCounterPromotionSkipsClasses(t *testing.T) {
	tr := MustNew(noStructure())
	tr.AddN(0, 1<<20)
	st := tr.Stats()
	if st.CounterPromotions != 1 || st.CounterSlots32 != 1 || st.CounterSlots16 != 0 {
		t.Fatalf("stats after jump add: %+v", st)
	}

	tr2 := MustNew(noStructure())
	tr2.AddN(0, 1<<40)
	if st := tr2.Stats(); st.CounterPromotions != 1 || st.CounterSlots64 != 1 {
		t.Fatalf("stats after 64-bit jump add: %+v", st)
	}
}

// TestCounterPoolFreelistReuse: released slots are recycled before the
// slab grows, so promote/fold churn does not leak pool memory.
func TestCounterPoolFreelistReuse(t *testing.T) {
	var p counterPool
	a := p.alloc(0, 5)
	b := p.alloc(0, 9)
	if len(p.w8) != 2 {
		t.Fatalf("w8 len = %d, want 2", len(p.w8))
	}
	p.release(a)
	c := p.alloc(0, 7)
	if c != a {
		t.Fatalf("alloc after release returned %#x, want recycled %#x", c, a)
	}
	if p.value(c) != 7 || p.value(b) != 9 {
		t.Fatalf("values after reuse: %d, %d", p.value(c), p.value(b))
	}
	if len(p.w8) != 2 {
		t.Fatalf("w8 grew to %d despite free slot", len(p.w8))
	}
	if p.live(0) != 2 {
		t.Fatalf("live(0) = %d, want 2", p.live(0))
	}
}

// TestNewWidePinsCounters: the reference layout allocates every counter in
// the 64-bit class and never promotes — it is the pre-pool storage model.
func TestNewWidePinsCounters(t *testing.T) {
	cfg := testConfig(16, 4, 0.05)
	cfg.FirstMerge = 64
	tr, err := NewWide(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		tr.Add(uint64(i % 997))
	}
	st := tr.Stats()
	if st.CounterSlots8 != 0 || st.CounterSlots16 != 0 || st.CounterSlots32 != 0 {
		t.Fatalf("wide tree has narrow counters: %+v", st)
	}
	if st.CounterSlots64 != st.Nodes {
		t.Fatalf("wide tree slots64 %d != nodes %d", st.CounterSlots64, st.Nodes)
	}
	if st.CounterPromotions != 0 {
		t.Fatalf("wide tree promoted %d times", st.CounterPromotions)
	}
	if st.CounterPoolBytes < 8*st.Nodes {
		t.Fatalf("wide pool bytes %d below 8 B/node", st.CounterPoolBytes)
	}
}

// TestPackedDensityBeatsWide: on a skewed stream the packed layout must
// use strictly less backing store than the wide reference for the same
// logical tree — the point of the whole exercise.
func TestPackedDensityBeatsWide(t *testing.T) {
	cfg := testConfig(32, 4, 0.05)
	cfg.FirstMerge = 256
	packed := MustNew(cfg)
	wide, _ := NewWide(cfg)
	zipfLike := func(i int) uint64 { return uint64(i*i) % (1 << 20) }
	for i := 0; i < 100_000; i++ {
		p := zipfLike(i)
		packed.Add(p)
		wide.Add(p)
	}
	ps, ws := packed.Stats(), wide.Stats()
	if ps.Nodes != ws.Nodes {
		t.Fatalf("structures diverged: %d vs %d nodes", ps.Nodes, ws.Nodes)
	}
	if ps.CounterPoolBytes >= ws.CounterPoolBytes {
		t.Fatalf("packed pool %d B not denser than wide pool %d B",
			ps.CounterPoolBytes, ws.CounterPoolBytes)
	}
}

// TestCloneDeepCopiesPool: a clone's counters are independent storage; the
// donor's later increments and promotions must not show through. This is
// the invariant epoch publication relies on.
func TestCloneDeepCopiesPool(t *testing.T) {
	tr := MustNew(noStructure())
	tr.AddN(7, 250)
	cl := tr.Clone()
	tr.AddN(7, 1000) // promotes the donor's counter out of the 8-bit class
	if got := cl.Estimate(0, ^uint64(0)>>32); got != 250 {
		t.Fatalf("clone sees donor mutation: %d, want 250", got)
	}
	if st := cl.Stats(); st.CounterPromotions != 0 || st.CounterSlots8 != 1 {
		t.Fatalf("clone stats mutated: %+v", st)
	}
	if got := tr.Estimate(0, ^uint64(0)>>32); got != 1250 {
		t.Fatalf("donor count %d, want 1250", got)
	}
}

// TestSetCountReallocatesOnClassChange: the decode path's setCount reuses
// the slot when the class matches and reallocates when it does not.
func TestSetCountReallocatesOnClassChange(t *testing.T) {
	tr := MustNew(noStructure())
	tr.setCount(0, 100)
	if st := tr.Stats(); st.CounterSlots8 != 1 {
		t.Fatalf("stats after narrow set: %+v", st)
	}
	tr.setCount(0, 1<<20)
	if st := tr.Stats(); st.CounterSlots8 != 0 || st.CounterSlots32 != 1 {
		t.Fatalf("stats after wide set: %+v", st)
	}
	if tr.count(0) != 1<<20 {
		t.Fatalf("count = %d", tr.count(0))
	}
}

// TestCompactRebuildsPoolsDensely: after promote/fold churn plus a merge
// batch, the pools hold exactly the live counters with no freed slack.
func TestCompactRebuildsPoolsDensely(t *testing.T) {
	cfg := testConfig(16, 4, 0.05)
	cfg.FirstMerge = 64
	tr := MustNew(cfg)
	for i := 0; i < 50_000; i++ {
		tr.Add(uint64(i*31) & 0xffff)
	}
	tr.MergeNow()
	st := tr.Stats()
	liveBytes := st.CounterSlots8 + 2*st.CounterSlots16 + 4*st.CounterSlots32 + 8*st.CounterSlots64
	if st.CounterPoolBytes != liveBytes {
		t.Fatalf("pool bytes %d after compaction, live counters need %d",
			st.CounterPoolBytes, liveBytes)
	}
	if got := st.CounterSlots8 + st.CounterSlots16 + st.CounterSlots32 + st.CounterSlots64; got != st.Nodes {
		t.Fatalf("live counters %d != nodes %d", got, st.Nodes)
	}
}

// refuseThird is a test admitter refusing every third cold event.
type refuseThird struct{ calls int }

func (r *refuseThird) Admit(p uint64, weight uint64, plen int) bool {
	r.calls++
	return r.calls%3 != 0
}
func (r *refuseThird) Pulse(Stats)   {}
func (r *refuseThird) TreeReplaced() {}

// TestMassConservationWithAdmission: counted mass plus the unadmitted
// ledger reconstructs the offered weight exactly, across promotions,
// merge-batch compaction, Clone, and snapshot restore. The ledger is the
// other half of the conservation story the pooled counters must not
// disturb: refused weight never touches a pool slot but must never be
// forgotten either.
func TestMassConservationWithAdmission(t *testing.T) {
	cfg := testConfig(16, 4, 0.05)
	cfg.FirstMerge = 64
	tr := MustNew(cfg)
	tr.SetAdmitter(&refuseThird{})

	var offered uint64
	for i := 0; i < 30_000; i++ {
		w := uint64(i%900) + 1 // drives counters across 255 and 65535
		tr.AddN(uint64(i*131)&0xffff, w)
		offered += w
	}
	conserve := func(stage string, x *Tree) {
		t.Helper()
		if x.N()+x.UnadmittedN() != offered {
			t.Fatalf("%s: N %d + unadmitted %d != offered %d",
				stage, x.N(), x.UnadmittedN(), offered)
		}
		if x.Total() != x.N() {
			t.Fatalf("%s: Total %d != N %d", stage, x.Total(), x.N())
		}
	}
	conserve("after ingest", tr)
	if tr.Stats().CounterPromotions == 0 {
		t.Fatal("workload drove no promotions; test is vacuous")
	}
	tr.MergeNow()
	conserve("after merge batch", tr)
	cl := tr.Clone()
	conserve("clone", cl)
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	conserve("restored", &back)
}

// TestPackedWideSnapshotIdentity: fed the same stream, the packed and wide
// layouts serialize to identical bytes — promotion changes representation,
// never values, and the wire format materializes counters at full width.
func TestPackedWideSnapshotIdentity(t *testing.T) {
	cfg := testConfig(32, 8, 0.02)
	cfg.FirstMerge = 128
	packed := MustNew(cfg)
	wide, _ := NewWide(cfg)
	for i := 0; i < 200_000; i++ {
		p := uint64(i*2654435761) >> 12
		w := uint64(i%300) + 1 // weights drive counters across 255 and 65535
		packed.AddN(p, w)
		wide.AddN(p, w)
	}
	a, err := packed.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := wide.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("packed and wide snapshots differ: %d vs %d bytes", len(a), len(b))
	}
	// And a restore of the wide snapshot into a packed tree re-packs it.
	var back Tree
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	// Restore allocates every counter at its final narrowest class
	// directly (no promotion history) and is denser than 8 B/counter.
	if st := back.Stats(); st.CounterPromotions != 0 || st.CounterPoolBytes >= 8*st.Nodes {
		t.Fatalf("restored tree not packed at final classes: %+v", st)
	}
	c, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("restored snapshot differs from original")
	}
}
