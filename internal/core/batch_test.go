package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// control builds the reference tree for a batch test by running the exact
// same operation sequence through the unbatched entry points.
func batchTestConfig() Config {
	cfg := testConfig(16, 4, 0.05)
	cfg.FirstMerge = 64
	return cfg
}

func skewedPoints(seed int64, n int) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 4, 1<<16-1)
	out := make([]uint64, n)
	for i := range out {
		if rng.Intn(5) == 0 {
			out[i] = rng.Uint64() & 0xFFFF
		} else {
			out[i] = zipf.Uint64()
		}
	}
	return out
}

func TestAddBatchMatchesSequentialAdd(t *testing.T) {
	cfg := batchTestConfig()
	points := skewedPoints(1, 120_000)
	seq := MustNew(cfg)
	for _, p := range points {
		seq.Add(p)
	}
	bat := MustNew(cfg)
	for off := 0; off < len(points); off += 777 {
		end := off + 777
		if end > len(points) {
			end = len(points)
		}
		bat.AddBatch(points[off:end])
	}
	if !bytes.Equal(mustMarshal(t, seq), mustMarshal(t, bat)) {
		t.Fatal("AddBatch produced a different tree than sequential Add")
	}
}

func TestAddSortedCoalescesRuns(t *testing.T) {
	// AddSorted's contract is AddN-per-run: one weighted update per
	// distinct value, in ascending order.
	cfg := batchTestConfig()
	points := skewedPoints(2, 60_000)
	sorted := append([]uint64(nil), points...)
	sortUint64s(sorted)

	viaAddN := MustNew(cfg)
	for i := 0; i < len(sorted); {
		j := i + 1
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		viaAddN.AddN(sorted[i], uint64(j-i))
		i = j
	}
	viaSorted := MustNew(cfg)
	// Ragged chunks, including cuts inside runs of equal values.
	rng := rand.New(rand.NewSource(3))
	for off := 0; off < len(sorted); {
		end := off + 1 + rng.Intn(900)
		if end > len(sorted) {
			end = len(sorted)
		}
		viaSorted.AddSorted(sorted[off:end])
		off = end
	}
	if viaSorted.N() != uint64(len(sorted)) {
		t.Fatalf("N = %d, want %d", viaSorted.N(), len(sorted))
	}
	// Chunk cuts inside an equal-value run split one AddN into two, which
	// is a different call sequence; totals and estimates must still agree
	// within the paper's bound, and on run-aligned chunking the trees are
	// identical.
	whole := MustNew(cfg)
	whole.AddSorted(sorted)
	if !bytes.Equal(mustMarshal(t, viaAddN), mustMarshal(t, whole)) {
		t.Fatal("AddSorted over one chunk diverged from AddN per run")
	}
	if whole.Total() != whole.N() {
		t.Fatalf("AddSorted lost events: Total=%d N=%d", whole.Total(), whole.N())
	}
}

func sortUint64s(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestLeafCacheSurvivesStructuralRewrites is the stale-cache regression
// suite: each subtest warms the last-leaf cache with a batched run, fires
// one structural rewrite that detaches or replaces nodes (merge batch,
// Merge, Restore), then keeps batching and requires the tree to stay
// byte-identical to a control that never cached. Before cache
// invalidation was wired into these rewrites, each subtest corrupted
// counts by crediting a node the tree no longer reaches.
func TestLeafCacheSurvivesStructuralRewrites(t *testing.T) {
	cfg := batchTestConfig()
	warm := skewedPoints(4, 50_000)
	cont := skewedPoints(5, 50_000)

	run := func(t *testing.T, rewrite func(tr *Tree), controlRewrite func(tr *Tree)) {
		t.Helper()
		cached := MustNew(cfg)
		control := MustNew(cfg)
		cached.AddBatch(warm) // warms lastLeaf
		for _, p := range warm {
			control.Add(p)
		}
		rewrite(cached)
		controlRewrite(control)
		cached.AddBatch(cont)
		for _, p := range cont {
			control.Add(p)
		}
		if cached.Total() != cached.N() {
			t.Fatalf("stale cache lost events: Total=%d N=%d", cached.Total(), cached.N())
		}
		if !bytes.Equal(mustMarshal(t, cached), mustMarshal(t, control)) {
			t.Fatal("batched tree diverged from control after structural rewrite")
		}
	}

	t.Run("merge-batch", func(t *testing.T) {
		run(t, (*Tree).MergeNow, (*Tree).MergeNow)
	})
	t.Run("merge", func(t *testing.T) {
		other := MustNew(cfg)
		other.AddBatch(skewedPoints(6, 30_000))
		rewrite := func(tr *Tree) {
			if err := tr.Merge(other); err != nil {
				t.Fatal(err)
			}
		}
		run(t, rewrite, rewrite)
	})
	t.Run("restore", func(t *testing.T) {
		donor := MustNew(cfg)
		donor.AddBatch(skewedPoints(7, 30_000))
		snap := mustMarshal(t, donor)
		rewrite := func(tr *Tree) {
			if err := tr.UnmarshalBinary(snap); err != nil {
				t.Fatal(err)
			}
		}
		run(t, rewrite, rewrite)
	})
}

// TestCloneDoesNotShareLeafCache: a clone taken mid-batch must not carry
// the donor's cache — batched writes through an aliased cache would land
// in the donor's nodes.
func TestCloneDoesNotShareLeafCache(t *testing.T) {
	cfg := batchTestConfig()
	donor := MustNew(cfg)
	donor.AddBatch(skewedPoints(8, 40_000)) // leaves lastLeaf warm
	before := mustMarshal(t, donor)

	clone := donor.Clone()
	clone.AddBatch(skewedPoints(9, 40_000))

	if !bytes.Equal(before, mustMarshal(t, donor)) {
		t.Fatal("mutating a clone changed the donor tree")
	}
	if clone.Total() != clone.N() {
		t.Fatalf("clone lost events: Total=%d N=%d", clone.Total(), clone.N())
	}
}

// TestConcurrentRestoreDropsLeafCache covers the wrapper path: a
// ConcurrentTree that batched before Restore must keep batching correctly
// after, against a fresh control fed the same way.
func TestConcurrentRestoreDropsLeafCache(t *testing.T) {
	cfg := batchTestConfig()
	donor := MustNew(cfg)
	donor.AddBatch(skewedPoints(10, 20_000))
	snap := mustMarshal(t, donor)

	ct, err := NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ct.AddBatch(skewedPoints(11, 20_000))
	if err := ct.Restore(snap); err != nil {
		t.Fatal(err)
	}
	cont := skewedPoints(12, 20_000)
	ct.AddBatch(cont)

	control := MustNew(cfg)
	if err := control.UnmarshalBinary(snap); err != nil {
		t.Fatal(err)
	}
	control.AddBatch(cont)

	snapCT, err := ct.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapCT, mustMarshal(t, control)) {
		t.Fatal("ConcurrentTree diverged from control after Restore")
	}
}
