package core

import (
	"testing"
	"time"
)

func hookTestConfig() Config {
	cfg := DefaultConfig()
	cfg.UniverseBits = 16
	cfg.Epsilon = 0.05
	return cfg
}

// TestHooksMatchStats feeds a skewed stream and checks every hook fires
// exactly as often as the tree's own counters say it should.
func TestHooksMatchStats(t *testing.T) {
	t1 := MustNew(hookTestConfig())
	var splits, merges, batches, mergedInBatches int
	t1.SetHooks(&Hooks{
		Split:      func(SplitEvent) { splits++ },
		Merge:      func(MergeEvent) { merges++ },
		MergeBatch: func(e MergeBatchEvent) { batches++; mergedInBatches += e.Merged },
	})
	for i := 0; i < 300_000; i++ {
		t1.Add(uint64(i*2654435761) & 0xffff)
	}
	st := t1.Finalize()
	if uint64(splits) != st.Splits {
		t.Fatalf("split hooks = %d, stats = %d", splits, st.Splits)
	}
	if uint64(merges) != st.Merges {
		t.Fatalf("merge hooks = %d, stats = %d", merges, st.Merges)
	}
	if uint64(batches) != st.MergeBatches {
		t.Fatalf("merge batch hooks = %d, stats = %d", batches, st.MergeBatches)
	}
	if uint64(mergedInBatches) != st.Merges {
		t.Fatalf("batch Merged sums to %d, stats = %d", mergedInBatches, st.Merges)
	}
	if splits == 0 || merges == 0 {
		t.Fatal("stream did not exercise splits and merges")
	}
}

// TestHooksDoNotChangeTreeState runs identical streams through hooked and
// unhooked trees; every estimate and statistic must agree.
func TestHooksDoNotChangeTreeState(t *testing.T) {
	plain := MustNew(hookTestConfig())
	hooked := MustNew(hookTestConfig())
	hooked.SetHooks(&Hooks{
		Split:        func(SplitEvent) {},
		Merge:        func(MergeEvent) {},
		MergeBatch:   func(MergeBatchEvent) {},
		EstimateDone: func(time.Duration) {},
	})
	for i := 0; i < 100_000; i++ {
		v := uint64(i*40503) & 0xffff
		plain.Add(v)
		hooked.Add(v)
	}
	if plain.Stats() != hooked.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", plain.Stats(), hooked.Stats())
	}
	for lo := uint64(0); lo < 1<<16; lo += 1 << 12 {
		hi := lo + 1<<12 - 1
		if a, b := plain.Estimate(lo, hi), hooked.Estimate(lo, hi); a != b {
			t.Fatalf("estimate [%#x,%#x] diverges: %d vs %d", lo, hi, a, b)
		}
	}
}

// TestSplitEventFields checks the decision state recorded on the very
// first split of a tiny universe.
func TestSplitEventFields(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UniverseBits = 8
	cfg.Epsilon = 0.1
	cfg.MinSplitCount = 4
	tr := MustNew(cfg)
	var evs []SplitEvent
	tr.SetHooks(&Hooks{Split: func(e SplitEvent) { evs = append(evs, e) }})
	for i := 0; i < 5; i++ {
		tr.Add(7)
	}
	if len(evs) != 1 {
		t.Fatalf("splits = %d, want exactly 1", len(evs))
	}
	e := evs[0]
	if e.Lo != 0 || e.Hi != 0xff || e.Depth != 0 {
		t.Fatalf("root split range [%#x,%#x] depth %d, want [0,0xff] depth 0", e.Lo, e.Hi, e.Depth)
	}
	if e.Count != 5 || e.N != 5 {
		t.Fatalf("count=%d n=%d, want 5/5", e.Count, e.N)
	}
	if float64(e.Count) <= e.Threshold {
		t.Fatalf("recorded count %d not above threshold %v", e.Count, e.Threshold)
	}
	if e.NewChildren != cfg.Branch {
		t.Fatalf("new children = %d, want %d", e.NewChildren, cfg.Branch)
	}
}

// TestEstimateHookTiming checks the estimate hook only fires when
// installed and reports a plausible latency.
func TestEstimateHookTiming(t *testing.T) {
	tr := MustNew(hookTestConfig())
	for i := 0; i < 50_000; i++ {
		tr.Add(uint64(i) & 0xffff)
	}
	var calls int
	var last time.Duration
	tr.SetHooks(&Hooks{EstimateDone: func(d time.Duration) { calls++; last = d }})
	tr.Estimate(0, 1<<15)
	tr.EstimateBounds(1<<14, 1<<15)
	if calls != 2 {
		t.Fatalf("estimate hook calls = %d, want 2", calls)
	}
	if last < 0 || last > time.Second {
		t.Fatalf("implausible estimate latency %v", last)
	}
	tr.SetHooks(nil)
	tr.Estimate(0, 1<<15)
	if calls != 2 {
		t.Fatal("estimate hook fired after removal")
	}
}

// TestConcurrentTreeHooksSurviveRestore checks the wrapper reinstalls
// hooks on the fresh tree a Restore builds.
func TestConcurrentTreeHooksSurviveRestore(t *testing.T) {
	ct, err := NewConcurrent(hookTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	var splits int
	ct.SetHooks(&Hooks{Split: func(SplitEvent) { splits++ }})
	for i := 0; i < 20_000; i++ {
		ct.Add(uint64(i) & 0xffff)
	}
	snap, err := ct.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Restore(snap); err != nil {
		t.Fatal(err)
	}
	before := splits
	for i := 0; i < 200_000; i++ {
		ct.Add(uint64(i*2654435761) & 0xffff)
	}
	if splits == before {
		t.Fatal("no split hook fired after Restore: hooks were lost")
	}
}
