package core

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzAddBatchEquivalence: random (value, weight) chunks fed through the
// batched entry points must produce a tree byte-identical — same snapshot
// encoding, hence same structure, counts, and schedule — to the same
// events fed one call at a time. This is the contract that lets every
// layer batch freely: chunking is purely an optimization, never a
// semantic change. The corpus bytes encode both the events and the chunk
// boundaries, so the fuzzer explores batch cuts landing on split and
// merge points.
func FuzzAddBatchEquivalence(f *testing.F) {
	// Seed: a skewed run with weights and ragged chunk sizes.
	var seed []byte
	for i := 0; i < 200; i++ {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(i%7)<<9|uint64(i%13))
		seed = append(seed, tmp[:]...)
		seed = append(seed, byte(1+i%4), byte(i%32))
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := testConfig(16, 4, 0.05)
		cfg.FirstMerge = 16 // merge often: stale-cache bugs live here
		sequential := MustNew(cfg)
		viaSamples := MustNew(cfg)
		viaBatch := MustNew(cfg)

		// Decode records of 10 bytes: 8 value, 1 weight, 1 chunk-cut hint.
		type rec struct {
			v, w uint64
			cut  byte
		}
		var recs []rec
		for len(data) >= 10 {
			recs = append(recs, rec{
				v:   binary.LittleEndian.Uint64(data[:8]),
				w:   uint64(data[8]%8) + 1,
				cut: data[9],
			})
			data = data[10:]
		}
		if len(recs) > 4096 {
			recs = recs[:4096]
		}

		// Reference: one AddN call per record.
		for _, r := range recs {
			sequential.AddN(r.v, r.w)
		}

		// AddSamples in chunks cut where the corpus says.
		var chunk []Sample
		for _, r := range recs {
			chunk = append(chunk, Sample{Value: r.v, Weight: r.w})
			if r.cut%5 == 0 {
				viaSamples.AddSamples(chunk)
				chunk = chunk[:0]
			}
		}
		viaSamples.AddSamples(chunk)

		// AddBatch (weight-1 path): expand weights into repeated points.
		var points []uint64
		flush := func() {
			viaBatch.AddBatch(points)
			points = points[:0]
		}
		for _, r := range recs {
			for k := uint64(0); k < r.w; k++ {
				points = append(points, r.v)
			}
			if r.cut%3 == 0 {
				flush()
			}
		}
		flush()

		snapSeq, err := sequential.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		snapSamples, err := viaSamples.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snapSeq, snapSamples) {
			t.Fatalf("AddSamples tree diverged from sequential AddN: %d vs %d snapshot bytes",
				len(snapSamples), len(snapSeq))
		}

		// The weight-1 expansion is a different call sequence (w Add calls
		// per record instead of one AddN), so its tree may legitimately
		// differ structurally; what must hold is the per-point reference:
		// feeding the same expanded points one Add at a time.
		expandSeq := MustNew(cfg)
		for _, r := range recs {
			for k := uint64(0); k < r.w; k++ {
				expandSeq.Add(r.v)
			}
		}
		snapExpand, err := expandSeq.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		snapBatch, err := viaBatch.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snapExpand, snapBatch) {
			t.Fatalf("AddBatch tree diverged from sequential Add: %d vs %d snapshot bytes",
				len(snapBatch), len(snapExpand))
		}
	})
}
