package core

import "errors"

// Merge: structural union of two RAP trees, the aggregation primitive the
// sharded engine (internal/shard) is built on. Per-shard trees are each a
// valid RAP summary of the slice of the stream they saw; Merge folds one
// into another so queries can run over a single combined view.
//
// Why the paper's guarantee survives: in each input tree, the events of
// any range R that are *missing* from R's subtree were credited to
// ancestors that straddle R, and the paper bounds that loss by ε·n_i
// (Section 2.2). Merge only ever adds counts at the same (lo, plen)
// position they occupied in the source tree — no count moves relative to
// the range hierarchy — so the merged tree's estimate for R misses at
// most ε·n_1 + ε·n_2 = ε·(n_1+n_2) events. The summed lower bounds are a
// lower bound for the summed stream, with the error budget of the
// combined stream length.

// ErrConfigMismatch is returned by Merge when the two trees were built
// with different configurations; their thresholds and geometry would not
// agree, so their union has no single guarantee.
var ErrConfigMismatch = errors.New("core: merge requires trees with identical configurations")

// ErrSelfMerge is returned by Merge when a tree is merged into itself.
var ErrSelfMerge = errors.New("core: cannot merge a tree into itself")

// Merge folds other into t: counts of coincident ranges add, ranges that
// exist in only one tree are united in (nodes missing from t are created),
// and the stream lengths sum. other is read but never modified, so a
// caller may merge a live shard tree while holding only that shard's lock.
//
// After the union, every node is re-checked against the split threshold at
// the combined n — ranges that were hot in neither half but are hot in the
// union sprout children so subsequent updates keep refining them — and the
// merge schedule is advanced to the larger of the two intervals. Merge
// does not run a merge batch; call MergeNow (or Finalize) to compact the
// result.
func (t *Tree) Merge(other *Tree) error {
	if other == nil {
		return nil
	}
	if t == other {
		return ErrSelfMerge
	}
	if t.cfg != other.cfg {
		return ErrConfigMismatch
	}
	t.graft(0, other, 0)
	t.invalidateLeafCache()
	t.n += other.n
	t.unadmitted += other.unadmitted
	t.splits += other.splits
	t.merges += other.merges
	t.mergeBatches += other.mergeBatches
	if t.nodes > t.maxNodes {
		t.maxNodes = t.nodes
	}
	// Keep the later merge schedule of the two so a freshly merged view
	// does not immediately re-enter the geometric ramp-up phase.
	if other.mergeInterval > t.mergeInterval {
		t.mergeInterval = other.mergeInterval
	}
	if next := t.n + t.mergeInterval; next > t.nextMerge {
		t.nextMerge = next
	}
	t.resplit(0, 0)
	return nil
}

// graft adds src's subtree rooted at slot si into t's subtree rooted at
// slot di. The two slots cover the same (lo, plen) range by construction:
// both trees share a Config, so child slot i of a node at plen covers the
// same subrange in either tree. Nodes present only in src are recreated in
// t's own arena, never aliased, so the source tree stays independent.
// graft allocates into t's arena (which may move it) but only reads src's,
// so t's nodes are addressed by slot and re-derived per access while src's
// header can be held.
func (t *Tree) graft(di uint32, src *Tree, si uint32) {
	s := &src.arena[si]
	if c := src.count(si); c != 0 {
		t.addCount(di, c)
	}
	if s.childBase == nilIdx {
		return
	}
	fan := t.fanout(s.plen)
	if t.arena[di].childBase == nilIdx {
		base := t.allocBlock(fan)
		t.arena[di].childBase = base
		t.setChildGeometry(di)
	}
	cplen := s.plen + uint8(t.childStride(s.plen))
	for i := 0; i < fan; i++ {
		if src.arena[s.childBase+uint32(i)].dead {
			continue
		}
		dci := t.arena[di].childBase + uint32(i)
		if t.arena[dci].dead {
			t.arena[dci] = node{cref: t.counterAlloc(0), childBase: nilIdx, plen: cplen}
			t.nodes++
		}
		t.graft(dci, src, s.childBase+uint32(i))
	}
}

// resplit applies the post-merge split re-check: any node whose counter
// now exceeds the split threshold at the combined n, and which could still
// sprout children (a leaf, or a node with merge holes), splits exactly as
// it would have on the update path.
func (t *Tree) resplit(vi uint32, lo uint64) {
	v := &t.arena[vi]
	if float64(t.count(vi)) > t.SplitThreshold() && int(v.plen) < t.cfg.UniverseBits {
		if v.childBase == nilIdx || t.hasHole(vi) {
			t.split(vi, lo) // may move the arena; v is dead after
		}
	}
	cb := t.arena[vi].childBase
	if cb == nilIdx {
		return
	}
	plen := t.arena[vi].plen
	fan := t.fanout(plen)
	for i := 0; i < fan; i++ {
		if !t.arena[cb+uint32(i)].dead {
			clo, _ := t.childBounds(lo, plen, i)
			t.resplit(cb+uint32(i), clo)
		}
	}
}

// Clone returns a deep copy of the tree sharing no storage with t: one
// slab copy of the arena, copies of the freelists, and a deep copy of the
// counter pools, preserving the donor's layout (indices and crefs mean the
// same thing in both trees). The pool copy is load-bearing for epoch
// publication: an aliased pool would let the writer's in-class counter
// increments and promotions race readers of the published snapshot. Hooks
// and the event tap are not carried over: a clone is a passive snapshot.
func (t *Tree) Clone() *Tree {
	nt := *t
	nt.hooks = nil
	nt.tap = nil
	nt.adm = nil // the clone is a passive snapshot; it keeps the unadmitted ledger
	// Slot indices stay meaningful across the copy, but the clone starts
	// cold anyway: a snapshot's first batch re-warms the cache in one miss.
	nt.lastLeaf = nilIdx
	nt.arena = append([]node(nil), t.arena...)
	for k, fl := range t.free {
		nt.free[k] = append([]uint32(nil), fl...)
	}
	nt.pool = t.pool.clone()
	return &nt
}
