package core

import "errors"

// Merge: structural union of two RAP trees, the aggregation primitive the
// sharded engine (internal/shard) is built on. Per-shard trees are each a
// valid RAP summary of the slice of the stream they saw; Merge folds one
// into another so queries can run over a single combined view.
//
// Why the paper's guarantee survives: in each input tree, the events of
// any range R that are *missing* from R's subtree were credited to
// ancestors that straddle R, and the paper bounds that loss by ε·n_i
// (Section 2.2). Merge only ever adds counts at the same (lo, plen)
// position they occupied in the source tree — no count moves relative to
// the range hierarchy — so the merged tree's estimate for R misses at
// most ε·n_1 + ε·n_2 = ε·(n_1+n_2) events. The summed lower bounds are a
// lower bound for the summed stream, with the error budget of the
// combined stream length.

// ErrConfigMismatch is returned by Merge when the two trees were built
// with different configurations; their thresholds and geometry would not
// agree, so their union has no single guarantee.
var ErrConfigMismatch = errors.New("core: merge requires trees with identical configurations")

// ErrSelfMerge is returned by Merge when a tree is merged into itself.
var ErrSelfMerge = errors.New("core: cannot merge a tree into itself")

// Merge folds other into t: counts of coincident ranges add, ranges that
// exist in only one tree are united in (nodes missing from t are created),
// and the stream lengths sum. other is read but never modified, so a
// caller may merge a live shard tree while holding only that shard's lock.
//
// After the union, every node is re-checked against the split threshold at
// the combined n — ranges that were hot in neither half but are hot in the
// union sprout children so subsequent updates keep refining them — and the
// merge schedule is advanced to the larger of the two intervals. Merge
// does not run a merge batch; call MergeNow (or Finalize) to compact the
// result.
func (t *Tree) Merge(other *Tree) error {
	if other == nil {
		return nil
	}
	if t == other {
		return ErrSelfMerge
	}
	if t.cfg != other.cfg {
		return ErrConfigMismatch
	}
	t.graft(t.root, other.root)
	t.invalidateLeafCache()
	t.n += other.n
	t.splits += other.splits
	t.merges += other.merges
	t.mergeBatches += other.mergeBatches
	if t.nodes > t.maxNodes {
		t.maxNodes = t.nodes
	}
	// Keep the later merge schedule of the two so a freshly merged view
	// does not immediately re-enter the geometric ramp-up phase.
	if other.mergeInterval > t.mergeInterval {
		t.mergeInterval = other.mergeInterval
	}
	if next := t.n + t.mergeInterval; next > t.nextMerge {
		t.nextMerge = next
	}
	t.resplit(t.root)
	return nil
}

// graft adds src's subtree counts into dst's subtree. dst and src cover
// the same (lo, plen) range by construction: both trees share a Config, so
// child slot i of a node at plen covers the same subrange in either tree.
// Nodes present only in src are deep-copied, never aliased, so the source
// tree stays independent.
func (t *Tree) graft(dst, src *node) {
	dst.count += src.count
	if src.children == nil {
		return
	}
	if dst.children == nil {
		dst.children = make([]*node, len(src.children))
	}
	for i, sc := range src.children {
		if sc == nil {
			continue
		}
		dc := dst.children[i]
		if dc == nil {
			dc = &node{lo: sc.lo, plen: sc.plen}
			dst.children[i] = dc
			t.nodes++
		}
		t.graft(dc, sc)
	}
}

// resplit applies the post-merge split re-check: any node whose counter
// now exceeds the split threshold at the combined n, and which could still
// sprout children (a leaf, or a node with merge holes), splits exactly as
// it would have on the update path.
func (t *Tree) resplit(v *node) {
	if float64(v.count) > t.SplitThreshold() && int(v.plen) < t.cfg.UniverseBits {
		if v.children == nil || hasHole(v.children) {
			t.split(v)
		}
	}
	for _, c := range v.children {
		if c != nil {
			t.resplit(c)
		}
	}
}

// hasHole reports whether a children slice has a merged-away slot.
func hasHole(children []*node) bool {
	for _, c := range children {
		if c == nil {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the tree sharing no nodes with t. Hooks are
// not carried over: a clone is a passive snapshot.
func (t *Tree) Clone() *Tree {
	nt := *t
	nt.hooks = nil
	// The leaf cache points into t's node store, not the copy's; carrying
	// it over would make batched updates on the clone write into t.
	nt.lastLeaf = nil
	nt.root = cloneNode(t.root)
	return &nt
}

func cloneNode(v *node) *node {
	c := &node{lo: v.lo, plen: v.plen, count: v.count}
	if v.children != nil {
		c.children = make([]*node, len(v.children))
		for i, ch := range v.children {
			if ch != nil {
				c.children[i] = cloneNode(ch)
			}
		}
	}
	return c
}
