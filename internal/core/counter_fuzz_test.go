package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// FuzzCounterPromotion: the packed-counter layout must be observationally
// identical to the 64-bit reference layout (NewWide) on any interleaving
// of Add/AddN/AddBatch/Merge — same estimates, same bounds, same snapshot
// bytes. Promotion is a representation change only; if a promotion ever
// lost or altered a count, the packed tree's structure or serialization
// would diverge from the wide tree's. The corpus bytes encode an op
// stream whose weights are scaled exponentially so mutations cross the
// 255->256, 65535->65536, and 2^32 overflow boundaries, and merge ops
// exercise promotion through graft's addCount path.
func FuzzCounterPromotion(f *testing.F) {
	// Seed crossing the 8->16 boundary one unit at a time: 300 weight-1
	// adds to one point.
	var seed1 []byte
	for i := 0; i < 300; i++ {
		seed1 = append(seed1, 0, 0, 0, 0, 0) // op=add, v=0, w=1
	}
	f.Add(seed1)
	// Seed crossing 16->32 in two jumps: weight 65535 then 1.
	f.Add([]byte{
		0, 0, 0, 0xff, 15, // AddN(0, 255<<8) = 65280
		0, 0, 0, 0xff, 0, // +255 = 65535
		0, 0, 0, 0x00, 0, // +1 = 65536
	})
	// Seed jumping straight past 2^32.
	f.Add([]byte{0, 0, 0, 0xff, 31, 0, 0, 0, 0xff, 31})
	// Seed with merges and batches interleaved.
	f.Add([]byte{
		1, 0, 1, 0x07, 4,
		2, 0, 2, 0x30, 9,
		3, 0, 0, 0, 0,
		1, 0xff, 3, 0x01, 16,
		2, 0x10, 4, 0xff, 7,
	})
	f.Add([]byte{})

	f.Fuzz(counterPromotionEquivalence)
}

// TestCounterPromotionEquivalence drives the fuzz property over
// deterministic pseudo-random op streams, so plain `go test` runs cover
// promotion boundaries without the fuzzing engine.
func TestCounterPromotionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		data := make([]byte, 5*(500+rng.Intn(1500)))
		rng.Read(data)
		counterPromotionEquivalence(t, data)
	}
}

// counterPromotionEquivalence is the property FuzzCounterPromotion and the
// deterministic sweep share: apply the op stream encoded in data to a
// packed tree and a wide reference tree and require identical observable
// state.
func counterPromotionEquivalence(t *testing.T, data []byte) {
	cfg := testConfig(16, 4, 0.05)
	cfg.FirstMerge = 32
	packed := MustNew(cfg)
	wide, err := NewWide(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Side trees accumulated for merge ops, one per layout so the merge
	// source is itself exercising (or pinning) the ladder.
	sidePacked := MustNew(cfg)
	sideWide, _ := NewWide(cfg)

	// Records of 5 bytes: op, two value bytes, weight mantissa, weight
	// exponent. The exponent reaches 2^33 so single updates can cross
	// every class boundary.
	type rec struct {
		op byte
		v  uint64
		w  uint64
	}
	var recs []rec
	for len(data) >= 5 {
		recs = append(recs, rec{
			op: data[0] % 4,
			v:  uint64(binary.LittleEndian.Uint16(data[1:3])),
			w:  (uint64(data[3]) + 1) << (data[4] % 34),
		})
		data = data[5:]
	}
	if len(recs) > 2048 {
		recs = recs[:2048]
	}

	var batch []uint64
	flushBatch := func() {
		packed.AddBatch(batch)
		wide.AddBatch(batch)
		batch = batch[:0]
	}
	for _, r := range recs {
		switch r.op {
		case 0: // weighted add to both layouts
			flushBatch()
			packed.AddN(r.v, r.w)
			wide.AddN(r.v, r.w)
		case 1: // batched weight-1 adds, flushed lazily
			batch = append(batch, r.v)
		case 2: // feed the side trees instead
			flushBatch()
			sidePacked.AddN(r.v, r.w)
			sideWide.AddN(r.v, r.w)
		default: // merge the side trees in and reset them
			flushBatch()
			if err := packed.Merge(sidePacked); err != nil {
				t.Fatal(err)
			}
			if err := wide.Merge(sideWide); err != nil {
				t.Fatal(err)
			}
			sidePacked = MustNew(cfg)
			sideWide, _ = NewWide(cfg)
		}
	}
	flushBatch()

	// Estimates and bounds agree on a spread of ranges.
	spans := [][2]uint64{
		{0, 0}, {0, 255}, {0, 1<<16 - 1}, {1 << 8, 1 << 12}, {42, 42},
	}
	for _, s := range spans {
		pl, ph := packed.EstimateBounds(s[0], s[1])
		wl, wh := wide.EstimateBounds(s[0], s[1])
		if pl != wl || ph != wh {
			t.Fatalf("bounds diverged on [%d,%d]: packed (%d,%d), wide (%d,%d)",
				s[0], s[1], pl, ph, wl, wh)
		}
		if packed.Estimate(s[0], s[1]) != wide.Estimate(s[0], s[1]) {
			t.Fatalf("estimate diverged on [%d,%d]", s[0], s[1])
		}
	}
	if packed.Total() != wide.Total() || packed.N() != wide.N() {
		t.Fatalf("totals diverged: packed (%d,%d), wide (%d,%d)",
			packed.Total(), packed.N(), wide.Total(), wide.N())
	}

	// Snapshot bytes are identical: representation never leaks onto the
	// wire.
	ps, err := packed.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := wide.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ps, ws) {
		t.Fatalf("snapshots diverged: %d vs %d bytes", len(ps), len(ws))
	}

	// A forced merge batch (compaction included) preserves equivalence,
	// and after compaction the packed pools — exact slabs at narrowest
	// classes — can never be looser than the wide layout's 8 B/counter.
	packed.MergeNow()
	wide.MergeNow()
	ps, err = packed.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ws, err = wide.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ps, ws) {
		t.Fatalf("snapshots diverged after merge batch: %d vs %d bytes", len(ps), len(ws))
	}
	if pb, wb := packed.Stats().CounterPoolBytes, wide.Stats().CounterPoolBytes; pb > wb {
		t.Fatalf("packed pool %d B exceeds wide pool %d B after compaction", pb, wb)
	}
}
