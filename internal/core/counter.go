package core

import "math"

// Counter pools. Under skewed streams the overwhelming majority of node
// counters are tiny — a zipfian profile at 2M events carries thousands of
// leaves holding a handful of events each and only a few dozen counters
// that ever exceed 16 bits — yet the pre-pool layout spent a full 64-bit
// word on every one of them. Following the SALSA / Counter Pools line of
// work, counters now live outside the node in four per-tree pools, one per
// width class (8, 16, 32, 64 bits). A node carries a 32-bit counter
// reference (cref) packing the class in the top two bits and the pool slot
// in the low thirty; it starts life in the 8-bit class and is promoted in
// place to the next class that fits whenever an addition would overflow
// its current width.
//
// Promotion is a representation change, not an approximation change: the
// exact value is copied to the wider slot, so estimates, snapshot bytes,
// the ε·n analysis, and the unadmitted ledger are all bit-identical to a
// tree that kept 64-bit counters throughout (NewWide builds exactly that
// reference layout, and the equivalence fuzzer holds the two to identical
// snapshots across every promotion boundary).
//
// The pools share the arena's lifecycle machinery: freed slots (a node
// folded away by a merge, or the narrow slot abandoned by a promotion) go
// on a per-class freelist and are recycled by later allocations, and the
// merge-batch compaction pass rebuilds the pools densely in DFS order
// right beside the node slab, so a merge batch genuinely releases counter
// memory too.

const (
	// crefNone is the "no counter" sentinel, carried by dead slots. It is
	// never a valid reference: it would name slot 2^30-1 of the 64-bit
	// pool, which would require an 8 GiB pool to exist.
	crefNone = ^uint32(0)

	// crefIdxBits splits a cref into class (top 2 bits) and pool index.
	crefIdxBits = 30
	crefIdxMask = uint32(1)<<crefIdxBits - 1

	// counterClasses is the number of width classes in the promotion
	// ladder: 8, 16, 32, 64 bits.
	counterClasses = 4

	// classWide is the widest (64-bit) class; NewWide allocates every
	// counter here so the ladder degenerates to the pre-pool layout.
	classWide = counterClasses - 1
)

// classMax[k] is the largest value class k can hold.
var classMax = [counterClasses]uint64{
	math.MaxUint8, math.MaxUint16, math.MaxUint32, math.MaxUint64,
}

// classBytes[k] is the storage cost of one class-k slot.
var classBytes = [counterClasses]int{1, 2, 4, 8}

// classFor returns the narrowest class that holds v.
func classFor(v uint64) uint32 {
	switch {
	case v <= math.MaxUint8:
		return 0
	case v <= math.MaxUint16:
		return 1
	case v <= math.MaxUint32:
		return 2
	default:
		return classWide
	}
}

// counterPool is the four width-class slabs plus their freelists. The
// zero value is an empty pool ready for use.
type counterPool struct {
	w8  []uint8
	w16 []uint16
	w32 []uint32
	w64 []uint64
	// free holds recycled slots per class: a promotion abandons its
	// narrow slot, a merge folds a node's counter away. Compaction drops
	// the freelists wholesale along with the fragmentation they track.
	free [counterClasses][]uint32
}

// alloc places v in a class-cls slot (reusing a freed slot when one
// exists) and returns the packed reference. The caller guarantees v fits
// the class.
func (p *counterPool) alloc(cls uint32, v uint64) uint32 {
	if fl := p.free[cls]; len(fl) > 0 {
		idx := fl[len(fl)-1]
		p.free[cls] = fl[:len(fl)-1]
		p.set(cls, idx, v)
		return cls<<crefIdxBits | idx
	}
	var idx uint32
	switch cls {
	case 0:
		idx = uint32(len(p.w8))
		p.w8 = append(p.w8, uint8(v))
	case 1:
		idx = uint32(len(p.w16))
		p.w16 = append(p.w16, uint16(v))
	case 2:
		idx = uint32(len(p.w32))
		p.w32 = append(p.w32, uint32(v))
	default:
		idx = uint32(len(p.w64))
		p.w64 = append(p.w64, v)
	}
	if idx > crefIdxMask {
		// 2^30 slots of one class is >1 GiB of counters; the arena's
		// uint32 slot space would overflow long before this can happen.
		panic("core: counter pool exhausted")
	}
	return cls<<crefIdxBits | idx
}

// value reads the counter behind cref.
func (p *counterPool) value(cref uint32) uint64 {
	idx := cref & crefIdxMask
	switch cref >> crefIdxBits {
	case 0:
		return uint64(p.w8[idx])
	case 1:
		return uint64(p.w16[idx])
	case 2:
		return uint64(p.w32[idx])
	default:
		return p.w64[idx]
	}
}

// set overwrites slot idx of class cls. The caller guarantees v fits.
func (p *counterPool) set(cls, idx uint32, v uint64) {
	switch cls {
	case 0:
		p.w8[idx] = uint8(v)
	case 1:
		p.w16[idx] = uint16(v)
	case 2:
		p.w32[idx] = uint32(v)
	default:
		p.w64[idx] = v
	}
}

// release returns cref's slot to its class freelist. The slot's stale
// value is left in place; alloc overwrites it on reuse.
func (p *counterPool) release(cref uint32) {
	cls := cref >> crefIdxBits
	p.free[cls] = append(p.free[cls], cref&crefIdxMask)
}

// bytes is the physical footprint of the pool slabs (capacity, including
// growth slack and freed slots awaiting reuse — the same accounting rule
// Tree.ArenaBytes applies to the node slab).
func (p *counterPool) bytes() int {
	return cap(p.w8) + 2*cap(p.w16) + 4*cap(p.w32) + 8*cap(p.w64)
}

// live returns the number of occupied slots in class cls.
func (p *counterPool) live(cls int) int {
	var n int
	switch cls {
	case 0:
		n = len(p.w8)
	case 1:
		n = len(p.w16)
	case 2:
		n = len(p.w32)
	default:
		n = len(p.w64)
	}
	return n - len(p.free[cls])
}

// clone returns a deep copy sharing no storage with p. Epoch publication
// clones the whole tree; aliased pools would let the writer's promotions
// race readers of the published snapshot.
func (p *counterPool) clone() counterPool {
	np := counterPool{
		w8:  append([]uint8(nil), p.w8...),
		w16: append([]uint16(nil), p.w16...),
		w32: append([]uint32(nil), p.w32...),
		w64: append([]uint64(nil), p.w64...),
	}
	for k, fl := range p.free {
		np.free[k] = append([]uint32(nil), fl...)
	}
	return np
}

// counterAlloc allocates a pool slot for value v at the tree's ladder
// entry class: the narrowest class that fits, or the 64-bit class on a
// wide-layout tree.
func (t *Tree) counterAlloc(v uint64) uint32 {
	cls := classFor(v)
	if t.wideCounters {
		cls = classWide
	}
	return t.pool.alloc(cls, v)
}

// count reads slot vi's counter. The slot must be live.
func (t *Tree) count(vi uint32) uint64 {
	return t.pool.value(t.arena[vi].cref)
}

// addCount adds weight to slot vi's counter, promoting it to a wider
// class when the addition overflows the current one, and returns the new
// value. Promotion preserves the exact count; only the representation
// widens. addCount touches the pools but never the arena, so node
// pointers held by the caller stay valid.
func (t *Tree) addCount(vi uint32, weight uint64) uint64 {
	v := &t.arena[vi]
	cref := v.cref
	cls, idx := cref>>crefIdxBits, cref&crefIdxMask
	switch cls {
	case 0:
		nv := uint64(t.pool.w8[idx]) + weight
		if nv <= math.MaxUint8 {
			t.pool.w8[idx] = uint8(nv)
			return nv
		}
		t.promote(v, cref, nv)
		return nv
	case 1:
		nv := uint64(t.pool.w16[idx]) + weight
		if nv <= math.MaxUint16 {
			t.pool.w16[idx] = uint16(nv)
			return nv
		}
		t.promote(v, cref, nv)
		return nv
	case 2:
		nv := uint64(t.pool.w32[idx]) + weight
		if nv <= math.MaxUint32 {
			t.pool.w32[idx] = uint32(nv)
			return nv
		}
		t.promote(v, cref, nv)
		return nv
	default:
		t.pool.w64[idx] += weight
		return t.pool.w64[idx]
	}
}

// promote moves v's counter (new value nv, which overflowed its current
// class) into the narrowest class that fits, releasing the old slot. A
// weighted update can jump classes — AddN(p, 1<<20) promotes an 8-bit
// counter straight to 32 bits — so the target is derived from the value,
// not ladder-adjacent.
func (t *Tree) promote(v *node, old uint32, nv uint64) {
	ncls := classFor(nv)
	t.pool.release(old)
	v.cref = t.pool.alloc(ncls, nv)
	t.promotions++
	t.promoted[ncls]++
}

// setCount overwrites slot vi's counter with val, reallocating the pool
// slot if the current class does not match val's ladder class. Decode and
// structural-merge paths use it; the hot path goes through addCount.
func (t *Tree) setCount(vi uint32, val uint64) {
	v := &t.arena[vi]
	cls := classFor(val)
	if t.wideCounters {
		cls = classWide
	}
	if v.cref != crefNone {
		if v.cref>>crefIdxBits == cls {
			t.pool.set(cls, v.cref&crefIdxMask, val)
			return
		}
		t.pool.release(v.cref)
	}
	v.cref = t.pool.alloc(cls, val)
}

// counterRelease frees slot vi's counter (the node is being folded away)
// and marks the reference empty.
func (t *Tree) counterRelease(vi uint32) {
	v := &t.arena[vi]
	if v.cref != crefNone {
		t.pool.release(v.cref)
		v.cref = crefNone
	}
}
