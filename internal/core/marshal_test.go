package core

import (
	"math/rand"
	"strings"
	"testing"
)

func buildSampleTree(t *testing.T) *Tree {
	t.Helper()
	cfg := testConfig(24, 4, 0.02)
	tr := MustNew(cfg)
	rng := rand.New(rand.NewSource(101))
	zipf := rand.NewZipf(rng, 1.3, 8, 1<<24-1)
	for i := 0; i < 80_000; i++ {
		tr.Add(zipf.Uint64())
	}
	return tr
}

func TestMarshalRoundTrip(t *testing.T) {
	tr := buildSampleTree(t)
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.N() != tr.N() || back.NodeCount() != tr.NodeCount() || back.Total() != tr.Total() {
		t.Fatalf("round trip changed totals: N %d->%d nodes %d->%d total %d->%d",
			tr.N(), back.N(), tr.NodeCount(), back.NodeCount(), tr.Total(), back.Total())
	}
	// ArenaBytes and CounterPoolBytes track physical slab capacity (growth
	// slack included) and are legitimately smaller after a restore;
	// CounterPromotions is ingest history snapshots do not carry. All
	// logical state must match.
	got, want := back.Stats(), tr.Stats()
	got.ArenaBytes, want.ArenaBytes = 0, 0
	got.CounterPoolBytes, want.CounterPoolBytes = 0, 0
	got.CounterPromotions, want.CounterPromotions = 0, 0
	if got != want {
		t.Fatalf("round trip changed stats:\n%+v\n%+v", want, got)
	}
	var a, b strings.Builder
	if err := tr.WriteASCII(&a); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("round trip changed tree structure (ASCII dumps differ)")
	}
}

func TestMarshalThenContinueProfiling(t *testing.T) {
	// A restored tree must keep profiling identically to the original.
	tr := buildSampleTree(t)
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(202))
	for i := 0; i < 20_000; i++ {
		p := rng.Uint64() & (1<<24 - 1)
		tr.Add(p)
		back.Add(p)
	}
	var a, b strings.Builder
	tr.WriteASCII(&a)
	back.WriteASCII(&b)
	if a.String() != b.String() {
		t.Fatal("restored tree diverged from original under identical input")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       nil,
		"short magic": []byte("RA"),
		"bad magic":   []byte("XXXX\x01"),
		"bad version": []byte("RAPT\x7f"),
		"truncated":   []byte("RAPT\x01\x20"),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			var tr Tree
			if err := tr.UnmarshalBinary(data); err == nil {
				t.Fatalf("UnmarshalBinary accepted %q", data)
			}
		})
	}
}

func TestUnmarshalRejectsCorruptNode(t *testing.T) {
	tr := buildSampleTree(t)
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-node-stream: must error, not panic.
	for _, cut := range []int{len(data) / 2, len(data) - 1, 60} {
		var back Tree
		if err := back.UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("accepted snapshot truncated to %d bytes", cut)
		}
	}
}
