package core

import "time"

// Observability hooks. A Tree carries an optional *Hooks; every hook site
// is guarded by a nil check on a cold path (split, merge batch, query),
// so a tree without hooks pays nothing on Add/AddN and a single pointer
// test per split, merge, or estimate. Hook implementations must be fast
// and must not call back into the tree.

// SplitEvent describes one split decision at the moment it was taken.
type SplitEvent struct {
	Lo, Hi      uint64  // range of the node that split
	Depth       int     // split steps below the root
	Count       uint64  // node counter that crossed the threshold
	Threshold   float64 // split threshold ε·n/H (or the cold-start guard)
	N           uint64  // stream position at the decision
	NewChildren int     // children actually created (holes refilled count)
}

// MergeEvent describes one child folded into its parent during a batch
// merge pass.
type MergeEvent struct {
	Lo, Hi    uint64  // range of the folded child
	Depth     int     // split steps below the root
	Count     uint64  // counter moved up into the parent
	Threshold float64 // merge threshold compared against
	N         uint64  // stream position at the decision
}

// MergeBatchEvent summarizes one whole batch merge pass.
type MergeBatchEvent struct {
	N        uint64        // stream position the batch ran at
	Merged   int           // nodes folded away by this batch
	Nodes    int           // live nodes after the batch
	Duration time.Duration // wall time of the pass
}

// Hooks receives structural notifications from a Tree. Any field may be
// nil; the tree skips that notification. The zero Hooks is valid and
// equivalent to no hooks at all.
type Hooks struct {
	Split      func(SplitEvent)
	Merge      func(MergeEvent)
	MergeBatch func(MergeBatchEvent)
	// EstimateDone receives the latency of each Estimate/EstimateBounds
	// call. Timing is only taken when this hook is installed.
	EstimateDone func(time.Duration)
}

// SetHooks installs (or with nil removes) the tree's observability hooks.
func (t *Tree) SetHooks(h *Hooks) { t.hooks = h }

// depthOf converts a prefix length to the node's depth in split steps.
// Every split adds shift bits except a final uneven step, so the ceiling
// division is exact for nodes this tree constructs.
func (t *Tree) depthOf(plen uint8) int {
	if t.shift == 0 {
		return 0
	}
	return (int(plen) + t.shift - 1) / t.shift
}
