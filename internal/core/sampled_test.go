package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestSampledValidation(t *testing.T) {
	if _, err := NewSampled(DefaultConfig(), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewSampled(Config{}, 10); err == nil {
		t.Fatal("bad tree config accepted")
	}
}

func TestSampledDegeneratesAtKOne(t *testing.T) {
	cfg := testConfig(16, 4, 0.05)
	s, err := NewSampled(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain := MustNew(cfg)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50_000; i++ {
		p := uint64(rng.Intn(1 << 16))
		s.Add(p)
		plain.Add(p)
	}
	if s.N() != plain.N() || s.SampledN() != plain.N() {
		t.Fatal("k=1 sampling changed event counts")
	}
	if s.Estimate(0, 0xFFFF) != plain.Estimate(0, 0xFFFF) {
		t.Fatal("k=1 sampling changed estimates")
	}
}

func TestSampledScalesEstimates(t *testing.T) {
	cfg := testConfig(16, 4, 0.02)
	s, err := NewSampled(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500_000
	rng := rand.New(rand.NewSource(9))
	zipf := rand.NewZipf(rng, 1.3, 8, 1<<16-1)
	truth := map[uint64]uint64{}
	for i := 0; i < n; i++ {
		p := zipf.Uint64()
		truth[p]++
		s.Add(p)
	}
	if s.N() != n {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.SampledN(); got != n/10 {
		t.Fatalf("sampled %d events, want %d", got, n/10)
	}
	// The scaled estimate of the hottest point lands within sampling
	// noise of the truth (a few percent at this count).
	var hottest uint64
	for p, c := range truth {
		if c > truth[hottest] {
			hottest = p
		}
	}
	est := float64(s.Estimate(hottest, hottest))
	exact := float64(truth[hottest])
	if math.Abs(est-exact)/exact > 0.10 {
		t.Fatalf("scaled estimate %v vs truth %v (>10%% off)", est, exact)
	}
}

func TestSampledHotRangesScaled(t *testing.T) {
	s, err := NewSampled(testConfig(16, 4, 0.02), 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	for i := 0; i < n; i++ {
		s.Add(0x1234)
	}
	hot := s.HotRanges(0.10)
	if len(hot) == 0 {
		t.Fatal("no hot ranges")
	}
	top := hot[len(hot)-1]
	for _, h := range hot {
		if h.Hi-h.Lo < top.Hi-top.Lo {
			top = h
		}
	}
	if top.Weight < n*9/10 {
		t.Fatalf("scaled hot weight %d, want ~%d", top.Weight, n)
	}
	if top.Frac < 0.9 {
		t.Fatalf("hot frac %.3f", top.Frac)
	}
}

func TestSampledUsesLessMemory(t *testing.T) {
	// The unified scheme's selling point: at equal epsilon over the same
	// raw stream, sampling shrinks the tree (it sees a shorter stream, so
	// fewer distinct ranges cross the threshold in absolute terms — and
	// rare values vanish entirely).
	cfg := testConfig(32, 4, 0.01)
	plain := MustNew(cfg)
	sampled, err := NewSampled(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 400_000; i++ {
		p := rng.Uint64() & 0xFFFFFFFF
		plain.Add(p)
		sampled.Add(p)
	}
	plain.MergeNow()
	sampled.Finalize()
	if sampled.NodeCount() >= plain.NodeCount() {
		t.Fatalf("sampled tree (%d nodes) not smaller than plain (%d)",
			sampled.NodeCount(), plain.NodeCount())
	}
	if sampled.MemoryBytes() != sampled.NodeCount()*NodeBytes {
		t.Fatal("memory accounting inconsistent")
	}
	if sampled.Tree() == nil {
		t.Fatal("underlying tree not exposed")
	}
}
