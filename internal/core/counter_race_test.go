package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestCounterPromotionEpochHammer runs promotion-heavy weighted feeders
// against pinned epoch readers under the race detector. The feeders hammer
// a small hot set with weights sized so 8- and 16-bit counters overflow
// (and therefore promote, releasing and reallocating pool slots)
// continuously; the readers hold pinned epochs and require them frozen —
// same answer for the same query, full-universe mass equal to the epoch's
// N. If Clone ever aliased counter-pool storage instead of deep-copying
// it, the writer's in-class increments and promotions would race these
// reads and -race would flag it.
func TestCounterPromotionEpochHammer(t *testing.T) {
	cfg := testConfig(20, 4, 0.05)
	cfg.FirstMerge = 64 // publish often
	c, err := NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableReadSnapshots(128)

	const writers = 4
	const each = 8_000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			samples := make([]Sample, 0, 64)
			for i := 0; i < each; i++ {
				// Hot set of 16 points with weights around the 8-bit
				// boundary: counters cross 255 every couple of updates.
				samples = append(samples, Sample{
					Value:  uint64(i % 16 << 14),
					Weight: uint64(100 + i%200),
				})
				// Cold spread keeps splits and merges churning structure.
				samples = append(samples, Sample{
					Value:  uint64(w*each+i) * 2654435761 % (1 << 20),
					Weight: 1,
				})
				if len(samples) == cap(samples) {
					c.AddSamples(samples)
					samples = samples[:0]
				}
			}
			c.AddSamples(samples)
		}(w)
	}

	var stop atomic.Bool
	var qwg sync.WaitGroup
	for q := 0; q < 4; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for !stop.Load() {
				e := c.Reader()
				if e == nil {
					t.Error("Reader returned nil with snapshots enabled")
					return
				}
				n := e.N()
				full := e.Estimate(0, 1<<20-1)
				if full != n {
					t.Errorf("pinned epoch leaks mass: full estimate %d, N %d", full, n)
				}
				// Re-reads of a frozen epoch are bit-stable even while the
				// writer promotes the same logical counters.
				hot := e.Estimate(0, 1<<16-1)
				if again := e.Estimate(0, 1<<16-1); again != hot {
					t.Errorf("pinned epoch answer moved: %d -> %d", hot, again)
				}
				lo, hi := e.EstimateBounds(1<<14, 1<<18)
				if lo > hi {
					t.Errorf("bounds inverted: %d > %d", lo, hi)
				}
				e.Release()
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	qwg.Wait()

	st := c.Stats()
	if st.CounterPromotions == 0 {
		t.Fatal("hammer drove no promotions; weights are mistuned")
	}
	if full := c.Estimate(0, 1<<20-1); full != c.N() {
		t.Fatalf("writer leaks mass after hammer: %d != %d", full, c.N())
	}
}
