package core

import (
	"sync"
	"sync/atomic"
)

// ConcurrentTree wraps a Tree with a mutex so several goroutines can feed
// and query one profile. The paper's hardware processes one event per
// pipeline slot — inherently serial — and the plain Tree mirrors that; a
// software deployment tapping multiple event sources (per-CPU buffers,
// several sockets) wants this wrapper instead. For very high ingest
// rates, prefer per-source Trees and post-hoc aggregation over a shared
// lock.
//
// With EnableReadSnapshots the query methods (Estimate, EstimateBounds,
// HotRanges) stop taking the mutex entirely: they answer from the
// current published Epoch, so reads never contend with ingest.
type ConcurrentTree struct {
	mu    sync.Mutex
	tree  *Tree
	hooks *Hooks   // survives Restore; reinstalled on the fresh tree
	tap   Tap      // survives Restore like hooks; see SetTap
	adm   Admitter // survives Restore like the tap; see SetAdmitter

	// Epoch read path. pub is nil until EnableReadSnapshots; the cadence
	// bookkeeping below is only touched under mu.
	pub        atomic.Pointer[EpochPublisher]
	pubEvery   uint64 // offered-mass backstop cadence between publishes
	pubBatches uint64 // tree.mergeBatches at the last publish
	pubMass    uint64 // offered mass (n + unadmitted) at the last publish
}

// NewConcurrent builds a mutex-guarded RAP tree.
func NewConcurrent(cfg Config) (*ConcurrentTree, error) {
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &ConcurrentTree{tree: t}, nil
}

// SetHooks installs observability hooks on the wrapped tree. Hooks are
// invoked with the tree lock held, so they must not call back into the
// ConcurrentTree.
func (c *ConcurrentTree) SetHooks(h *Hooks) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hooks = h
	c.tree.SetHooks(h)
}

// SetTap installs (or with nil removes) the event tap on the wrapped
// tree. Like hooks, the tap survives Restore: it is reinstalled on the
// fresh tree and notified via TreeReplaced. The tap is invoked with the
// tree lock held and must not call back into the ConcurrentTree.
func (c *ConcurrentTree) SetTap(tap Tap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tap = tap
	c.tree.SetTap(tap)
}

// SetAdmitter installs (or with nil removes) the admission gate on the
// wrapped tree. Like the tap, the admitter survives Restore: it is
// reinstalled on the fresh tree and notified via TreeReplaced. The gate is
// invoked with the tree lock held and must not call back into the
// ConcurrentTree.
func (c *ConcurrentTree) SetAdmitter(a Admitter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.adm = a
	c.tree.SetAdmitter(a)
}

// UnadmittedN returns the weight refused by the admission gate.
func (c *ConcurrentTree) UnadmittedN() (u uint64) {
	c.withLock(func(t *Tree) { u = t.UnadmittedN() })
	return u
}

// CloneCut returns a deep copy of the wrapped tree taken under the lock,
// after running capture (which may be nil) while the lock is still held.
// The audit uses capture to read its shadow truth at the same instant the
// clone is cut, so truth and estimates describe one consistent state.
func (c *ConcurrentTree) CloneCut(capture func(t *Tree)) *Tree {
	c.mu.Lock()
	defer c.mu.Unlock()
	nt := c.tree.Clone()
	if capture != nil {
		capture(nt)
	}
	return nt
}

// withLock runs fn on the wrapped tree with the mutex held. Every public
// read delegates through it, so the locking discipline lives in exactly
// one place. fn must not call back into the ConcurrentTree.
func (c *ConcurrentTree) withLock(fn func(t *Tree)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn(c.tree)
}

// withWrite is withLock for mutators: after fn runs it gives the epoch
// publisher (if enabled) a chance to cut a fresh snapshot, so every
// merge batch — and at most pubEvery offered events — separates the
// published read view from the live tree.
func (c *ConcurrentTree) withWrite(fn func(t *Tree)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn(c.tree)
	c.maybePublishLocked()
}

// maybePublishLocked publishes a fresh epoch when a merge batch ran
// since the last publish (the arena was just compacted, so the clone is
// as tight as it gets) or when the offered-mass backstop cadence lapsed.
// Called with mu held.
func (c *ConcurrentTree) maybePublishLocked() {
	p := c.pub.Load()
	if p == nil {
		return
	}
	mass := c.tree.n + c.tree.unadmitted
	if c.tree.mergeBatches == c.pubBatches && mass-c.pubMass < c.pubEvery {
		return
	}
	p.Publish(c.tree.Clone())
	c.pubBatches = c.tree.mergeBatches
	c.pubMass = mass
}

// EnableReadSnapshots switches the query methods to the epoch read path:
// an immutable clone of the tree is published after every merge batch
// (and at most every `every` offered events as a backstop; 0 selects
// DefaultPublishEvery), and Estimate/EstimateBounds/HotRanges answer
// from the latest published epoch without taking the mutex. Idempotent;
// the first call publishes an initial epoch so readers never observe an
// empty window.
func (c *ConcurrentTree) EnableReadSnapshots(every uint64) {
	if every == 0 {
		every = DefaultPublishEvery
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pub.Load() != nil {
		return
	}
	c.pubEvery = every
	p := NewEpochPublisher()
	p.Publish(c.tree.Clone())
	c.pubBatches = c.tree.mergeBatches
	c.pubMass = c.tree.n + c.tree.unadmitted
	c.pub.Store(p)
}

// Publisher returns the epoch publisher, or nil when read snapshots are
// disabled. Intended for observability (epoch metrics) and tests.
func (c *ConcurrentTree) Publisher() *EpochPublisher { return c.pub.Load() }

// Reader returns a pinned consistent epoch for multi-query consistency:
// every query on the returned Epoch describes the same instant of the
// stream. The caller must Release it. When read snapshots are disabled
// this degrades to a detached clone cut under the lock — same API, one
// extra copy.
func (c *ConcurrentTree) Reader() *Epoch {
	if p := c.pub.Load(); p != nil {
		if e := p.Acquire(); e != nil {
			return e
		}
	}
	return NewDetachedEpoch(c.CloneCut(nil))
}

// Add records one occurrence of p.
func (c *ConcurrentTree) Add(p uint64) { c.AddN(p, 1) }

// AddN records weight occurrences of p.
func (c *ConcurrentTree) AddN(p uint64, weight uint64) {
	c.withWrite(func(t *Tree) { t.AddN(p, weight) })
}

// AddBatch records a batch of points under one lock acquisition —
// substantially cheaper than per-event locking for buffered sources. The
// chunk runs through the tree's batched fast path (last-leaf cache), with
// per-point Add semantics.
func (c *ConcurrentTree) AddBatch(points []uint64) {
	c.withWrite(func(t *Tree) { t.AddBatch(points) })
}

// AddSamples records a chunk of weighted events under one lock
// acquisition, with per-sample AddN semantics (see Tree.AddSamples).
func (c *ConcurrentTree) AddSamples(samples []Sample) {
	c.withWrite(func(t *Tree) { t.AddSamples(samples) })
}

// AddSorted records an ascending pre-sorted chunk under one lock
// acquisition, coalescing equal-value runs (see Tree.AddSorted).
func (c *ConcurrentTree) AddSorted(points []uint64) {
	c.withWrite(func(t *Tree) { t.AddSorted(points) })
}

// Merge folds a plain Tree into the profile under the lock (see
// Tree.Merge). other is only read. A successful merge adds mass the tap
// never observed, so the tap (if any) is notified via TreeReplaced.
func (c *ConcurrentTree) Merge(other *Tree) error {
	var err error
	c.withWrite(func(t *Tree) {
		err = t.Merge(other)
		if err == nil && c.tap != nil {
			c.tap.TreeReplaced()
		}
	})
	return err
}

// N returns the total event weight processed.
func (c *ConcurrentTree) N() (n uint64) {
	c.withLock(func(t *Tree) { n = t.N() })
	return n
}

// Stats returns a snapshot of the tree's counters.
func (c *ConcurrentTree) Stats() (st Stats) {
	c.withLock(func(t *Tree) { st = t.Stats() })
	return st
}

// Estimate returns the lower-bound estimate for [lo, hi]. With read
// snapshots enabled it answers from the current epoch without locking
// (the lower bound stays valid for the live stream: the tree only
// grows); otherwise it takes the mutex.
func (c *ConcurrentTree) Estimate(lo, hi uint64) (est uint64) {
	if p := c.pub.Load(); p != nil {
		if e := p.Current(); e != nil {
			return e.Estimate(lo, hi)
		}
	}
	c.withLock(func(t *Tree) { est = t.Estimate(lo, hi) })
	return est
}

// EstimateBounds returns the bracketing estimates for [lo, hi]. With
// read snapshots enabled the bracket describes the stream as of the
// current epoch's cut (including the unadmitted ledger at that cut),
// answered without locking.
func (c *ConcurrentTree) EstimateBounds(lo, hi uint64) (low, high uint64) {
	if p := c.pub.Load(); p != nil {
		if e := p.Current(); e != nil {
			return e.EstimateBounds(lo, hi)
		}
	}
	c.withLock(func(t *Tree) { low, high = t.EstimateBounds(lo, hi) })
	return low, high
}

// HotRanges reports the hot ranges at threshold theta, from the current
// epoch when read snapshots are enabled (lock-free), else under the
// mutex.
func (c *ConcurrentTree) HotRanges(theta float64) (hot []HotRange) {
	if p := c.pub.Load(); p != nil {
		if e := p.Current(); e != nil {
			return e.HotRanges(theta)
		}
	}
	c.withLock(func(t *Tree) { hot = t.HotRanges(theta) })
	return hot
}

// Finalize compacts the tree and returns its statistics.
func (c *ConcurrentTree) Finalize() (st Stats) {
	c.withWrite(func(t *Tree) { st = t.Finalize() })
	return st
}

// Snapshot serializes the tree under the lock.
func (c *ConcurrentTree) Snapshot() (data []byte, err error) {
	c.withLock(func(t *Tree) { data, err = t.MarshalBinary() })
	return data, err
}

// Restore replaces the tree's contents with a snapshot previously produced
// by Snapshot (or Tree.MarshalBinary). On decode error the tree is left
// unchanged, so a corrupt checkpoint can be rejected without losing the
// live profile.
func (c *ConcurrentTree) Restore(data []byte) error {
	var nt Tree
	if err := nt.UnmarshalBinary(data); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	nt.SetHooks(c.hooks)
	nt.SetTap(c.tap)
	nt.SetAdmitter(c.adm)
	c.tree = &nt
	if c.tap != nil {
		c.tap.TreeReplaced()
	}
	if c.adm != nil {
		c.adm.TreeReplaced()
	}
	// A restore is a wholesale replacement: publish immediately so epoch
	// readers never keep serving the pre-restore profile.
	if p := c.pub.Load(); p != nil {
		p.Publish(c.tree.Clone())
		c.pubBatches = c.tree.mergeBatches
		c.pubMass = c.tree.n + c.tree.unadmitted
	}
	return nil
}
