package hw

import (
	"math"
	"testing"
	"testing/quick"

	"rap/internal/core"
	"rap/internal/stats"
	"rap/internal/trace"
)

func TestEstimateReproducesPaperNumbers(t *testing.T) {
	e, err := DefaultConfig().Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// Section 3.4's published operating point.
	if math.Abs(e.TotalAreaMM2-24.73) > 0.01 {
		t.Errorf("area = %.3f mm², paper says 24.73", e.TotalAreaMM2)
	}
	if math.Abs(e.TCAMDelayNS-7.0) > 0.01 {
		t.Errorf("TCAM delay = %.3f ns, paper says 7", e.TCAMDelayNS)
	}
	if math.Abs(e.SRAMDelayNS-1.26) > 0.01 {
		t.Errorf("SRAM delay = %.3f ns, paper says 1.26", e.SRAMDelayNS)
	}
	if math.Abs(e.TotalEnergyNJ-1.272) > 0.001 {
		t.Errorf("energy = %.4f nJ, paper says 1.272", e.TotalEnergyNJ)
	}
	if e.CriticalPathNS != e.SRAMDelayNS {
		t.Error("pipelined critical path must be the SRAM stage")
	}
	if e.ClockGHz < 0.7 || e.ClockGHz > 0.9 {
		t.Errorf("clock = %.3f GHz, want ~1/1.26ns", e.ClockGHz)
	}
}

func TestSmallConfigMoreThanTenTimesSmaller(t *testing.T) {
	// "for a 400-node version the area and power would be more than a
	// factor of 10 times less."
	big, _ := DefaultConfig().Estimate()
	small, err := SmallConfig().Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if ratio := big.TotalAreaMM2 / small.TotalAreaMM2; ratio <= 10 {
		t.Errorf("area ratio %.2f, want > 10", ratio)
	}
	if ratio := big.TotalEnergyNJ / small.TotalEnergyNJ; ratio <= 10 {
		t.Errorf("energy ratio %.2f, want > 10", ratio)
	}
}

func TestTechnologyScaling(t *testing.T) {
	c90 := DefaultConfig()
	c90.TechNM = 90
	e90, err := c90.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	e180, _ := DefaultConfig().Estimate()
	if e90.TotalAreaMM2 >= e180.TotalAreaMM2 || e90.TotalEnergyNJ >= e180.TotalEnergyNJ ||
		e90.CriticalPathNS >= e180.CriticalPathNS {
		t.Error("smaller node must shrink area, energy, and delay")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{TCAMEntries: 0, TCAMWidth: 36, SRAMBytes: 1, TechNM: 180},
		{TCAMEntries: 1, TCAMWidth: 0, SRAMBytes: 1, TechNM: 180},
		{TCAMEntries: 1, TCAMWidth: 36, SRAMBytes: 0, TechNM: 180},
		{TCAMEntries: 1, TCAMWidth: 36, SRAMBytes: 1, TechNM: 5},
	}
	for _, c := range bad {
		if _, err := c.Estimate(); err == nil {
			t.Errorf("Estimate accepted %+v", c)
		}
	}
}

func TestTCAMLongestPrefixMatch(t *testing.T) {
	tc, err := NewTCAM(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := tc.Insert(Row{Prefix: 0, Plen: 0})
	mid, _ := tc.Insert(Row{Prefix: 0x1200, Plen: 8})
	leaf, _ := tc.Insert(Row{Prefix: 0x1234, Plen: 16})

	cases := []struct {
		key  uint64
		want int
	}{
		{0x1234, leaf},
		{0x1235, mid},
		{0x12FF, mid},
		{0x9999, root},
	}
	for _, tcase := range cases {
		got, ok := tc.Search(tcase.key)
		if !ok || got != tcase.want {
			t.Errorf("Search(%x) = %d,%v, want %d", tcase.key, got, ok, tcase.want)
		}
	}
	// Match set is ordered longest-first and the arbiter grants the head.
	ms := tc.MatchSet(0x1234)
	if len(ms) != 3 || ms[0] != leaf || ms[2] != root {
		t.Fatalf("MatchSet = %v", ms)
	}
	if granted, ok := Arbitrate(ms); !ok || granted != leaf {
		t.Fatalf("Arbitrate = %v", granted)
	}
	if _, ok := Arbitrate(nil); ok {
		t.Fatal("empty arbitration granted")
	}
}

func TestTCAMCapacityAndDuplicates(t *testing.T) {
	tc, _ := NewTCAM(8, 2)
	if _, err := tc.Insert(Row{Prefix: 0, Plen: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Insert(Row{Prefix: 0, Plen: 0}); err == nil {
		t.Fatal("duplicate row accepted")
	}
	if _, err := tc.Insert(Row{Prefix: 0x40, Plen: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Insert(Row{Prefix: 0x80, Plen: 1}); err == nil {
		t.Fatal("overflow insert accepted")
	}
	if tc.Len() != 2 || tc.Capacity() != 2 {
		t.Fatalf("len/cap = %d/%d", tc.Len(), tc.Capacity())
	}
}

func TestTCAMDelete(t *testing.T) {
	tc, _ := NewTCAM(8, 4)
	id, _ := tc.Insert(Row{Prefix: 0xA0, Plen: 4})
	if _, ok := tc.Search(0xA5); !ok {
		t.Fatal("row not found")
	}
	if err := tc.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := tc.Search(0xA5); ok {
		t.Fatal("deleted row still matches")
	}
	if err := tc.Delete(id); err == nil {
		t.Fatal("double delete accepted")
	}
	s, i, d := tc.Stats()
	if s != 2 || i != 1 || d != 1 {
		t.Fatalf("stats = %d/%d/%d", s, i, d)
	}
}

func TestTCAMMaskHighBits(t *testing.T) {
	// Keys wider than the TCAM width are truncated like a hardware bus.
	tc, _ := NewTCAM(8, 4)
	tc.Insert(Row{Prefix: 0xFF, Plen: 8})
	if _, ok := tc.Search(0x1FF); !ok {
		t.Fatal("high bits not masked on search")
	}
}

func TestTCAMValidation(t *testing.T) {
	if _, err := NewTCAM(0, 4); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := NewTCAM(65, 4); err == nil {
		t.Fatal("width 65 accepted")
	}
	if _, err := NewTCAM(8, 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	tc, _ := NewTCAM(8, 4)
	if _, err := tc.Insert(Row{Prefix: 0, Plen: 9}); err == nil {
		t.Fatal("plen > width accepted")
	}
}

func TestPropTCAMMatchesPrefixArithmetic(t *testing.T) {
	f := func(prefix uint16, plenSeed uint8, key uint16) bool {
		plen := int(plenSeed) % 17
		tc, _ := NewTCAM(16, 4)
		tc.Insert(Row{Prefix: uint64(prefix), Plen: plen})
		_, ok := tc.Search(uint64(key))
		shift := uint(16 - plen)
		var want bool
		if plen == 0 {
			want = true
		} else {
			want = uint64(key)>>shift == uint64(prefix)>>shift
		}
		return ok == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func engineTreeConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 32
	cfg.Epsilon = 0.05
	return cfg
}

func TestEngineMatchesSoftwareTree(t *testing.T) {
	// The hardware engine must produce bit-identical profiles to the
	// software implementation.
	eng, err := NewEngine(DefaultConfig(), engineTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	soft := core.MustNew(engineTreeConfig())
	rng := stats.NewSplitMix64(3)
	z := stats.NewZipf(rng, 1<<20, 1.2)
	for i := 0; i < 100_000; i++ {
		v := uint64(z.Rank())
		eng.Process(trace.Event{Value: v, Weight: 1})
		soft.Add(v)
	}
	if eng.Tree().Total() != soft.Total() || eng.Tree().NodeCount() != soft.NodeCount() {
		t.Fatalf("engine diverged: total %d vs %d, nodes %d vs %d",
			eng.Tree().Total(), soft.Total(), eng.Tree().NodeCount(), soft.NodeCount())
	}
}

func TestEngineCycleAccounting(t *testing.T) {
	eng, err := NewEngine(DefaultConfig(), engineTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewSplitMix64(5)
	z := stats.NewZipf(rng, 1<<16, 1.3)
	for i := 0; i < 200_000; i++ {
		eng.Process(trace.Event{Value: uint64(z.Rank()), Weight: 1})
	}
	r := eng.Report()
	if r.Events != 200_000 {
		t.Fatalf("events = %d", r.Events)
	}
	// "compared to updates, splits and merges are very small in number,
	// hence they have little impact": the average must sit just above the
	// 4-cycle update cost.
	if r.CyclesPerOp < 4 || r.CyclesPerOp > 5 {
		t.Fatalf("cycles/op = %.3f, want in [4, 5]", r.CyclesPerOp)
	}
	if frac := float64(r.StallCycles) / float64(r.Cycles); frac > 0.2 {
		t.Fatalf("stall fraction %.3f too high", frac)
	}
	if r.ThroughputMEPS < 100 {
		t.Fatalf("throughput %.1f Mevents/s implausibly low", r.ThroughputMEPS)
	}
	if r.EnergyPerOp < r.Estimate.TotalEnergyNJ || r.EnergyPerOp > 1.5*r.Estimate.TotalEnergyNJ {
		t.Fatalf("energy/op %.3f nJ outside [base, 1.5x base]", r.EnergyPerOp)
	}
	if r.PeakRows <= 1 || r.PeakRows > r.TCAMCapacity {
		t.Fatalf("peak rows %d out of range", r.PeakRows)
	}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestEngineForcedMergeOnOverflow(t *testing.T) {
	// A tiny TCAM must trigger forced merges rather than failing.
	hwCfg := SmallConfig()
	hwCfg.TCAMEntries = 64
	tcfg := engineTreeConfig()
	tcfg.Epsilon = 0.01
	eng, err := NewEngine(hwCfg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewSplitMix64(7)
	for i := 0; i < 50_000; i++ {
		eng.Process(trace.Event{Value: rng.Uint64() & 0xFFFFFFFF, Weight: 1})
	}
	r := eng.Report()
	if r.ForcedMerges == 0 {
		t.Fatal("expected forced merges on a 64-row TCAM")
	}
	if eng.Tree().Total() != 50_000 {
		t.Fatal("forced merges lost events")
	}
}

func TestEngineBadConfigs(t *testing.T) {
	if _, err := NewEngine(Config{}, engineTreeConfig()); err == nil {
		t.Fatal("bad hw config accepted")
	}
	if _, err := NewEngine(DefaultConfig(), core.Config{}); err == nil {
		t.Fatal("bad tree config accepted")
	}
}
