package hw

import "fmt"

// TCAM is a functional model of the Stage-1 ternary CAM: rows hold
// bit-prefix ranges (exact high bits, wildcarded low bits), a search
// raises a match line for every covering row, and the Stage-2 fixed
// priority arbiter picks the longest prefix. Rows are indexed so a search
// costs O(height) like the multibit-trie alternative the paper points to
// (Section 3.3, [36]), while remaining observationally identical to the
// match-line + arbiter hardware.
type TCAM struct {
	width    int // key width in bits
	capacity int

	// byPlen[plen][prefix] = row id; at most one row can match per prefix
	// length ("There can never be matches from two different entries of
	// the same range width").
	byPlen []map[uint64]int
	rows   map[int]Row
	nextID int

	searches uint64
	inserts  uint64
	deletes  uint64
}

// Row is one TCAM entry: the prefix value (left-aligned into the key
// width) and the prefix length.
type Row struct {
	Prefix uint64
	Plen   int
}

// NewTCAM builds a TCAM for keys of the given width with a row capacity.
func NewTCAM(widthBits, capacity int) (*TCAM, error) {
	if widthBits < 1 || widthBits > 64 {
		return nil, fmt.Errorf("hw: TCAM width %d out of range", widthBits)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("hw: TCAM capacity %d out of range", capacity)
	}
	byPlen := make([]map[uint64]int, widthBits+1)
	for i := range byPlen {
		byPlen[i] = make(map[uint64]int)
	}
	return &TCAM{width: widthBits, capacity: capacity, byPlen: byPlen, rows: make(map[int]Row)}, nil
}

// Len returns the number of live rows.
func (t *TCAM) Len() int { return len(t.rows) }

// Capacity returns the row capacity.
func (t *TCAM) Capacity() int { return t.capacity }

// Insert adds a range row and returns its id. It fails when the TCAM is
// full or the row duplicates a live (prefix, plen).
func (t *TCAM) Insert(r Row) (int, error) {
	if r.Plen < 0 || r.Plen > t.width {
		return 0, fmt.Errorf("hw: prefix length %d out of range", r.Plen)
	}
	if len(t.rows) >= t.capacity {
		return 0, fmt.Errorf("hw: TCAM full (%d rows)", t.capacity)
	}
	key := t.canon(r)
	if _, dup := t.byPlen[r.Plen][key]; dup {
		return 0, fmt.Errorf("hw: duplicate row %x/%d", r.Prefix, r.Plen)
	}
	t.inserts++
	id := t.nextID
	t.nextID++
	t.byPlen[r.Plen][key] = id
	t.rows[id] = Row{Prefix: key, Plen: r.Plen}
	return id, nil
}

// Delete removes the row with the given id.
func (t *TCAM) Delete(id int) error {
	r, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("hw: no row %d", id)
	}
	t.deletes++
	delete(t.rows, id)
	delete(t.byPlen[r.Plen], r.Prefix)
	return nil
}

// Search returns the row id of the longest-prefix match for key, or
// ok=false when no row matches (an empty TCAM; a root row normally
// guarantees a match).
func (t *TCAM) Search(key uint64) (id int, ok bool) {
	t.searches++
	for plen := t.width; plen >= 0; plen-- {
		if len(t.byPlen[plen]) == 0 {
			continue
		}
		if rid, hit := t.byPlen[plen][t.mask(key, plen)]; hit {
			return rid, true
		}
	}
	return 0, false
}

// MatchSet returns the ids of every row covering key, longest prefix
// first — the raw match lines before the priority arbiter.
func (t *TCAM) MatchSet(key uint64) []int {
	var out []int
	for plen := t.width; plen >= 0; plen-- {
		if rid, hit := t.byPlen[plen][t.mask(key, plen)]; hit {
			out = append(out, rid)
		}
	}
	return out
}

// Stats returns search/insert/delete counters.
func (t *TCAM) Stats() (searches, inserts, deletes uint64) {
	return t.searches, t.inserts, t.deletes
}

func (t *TCAM) canon(r Row) uint64 { return t.mask(r.Prefix, r.Plen) }

func (t *TCAM) mask(key uint64, plen int) uint64 {
	if plen <= 0 {
		return 0
	}
	shift := uint(t.width - plen)
	if t.width < 64 {
		key &= (1 << uint(t.width)) - 1
	}
	return key >> shift << shift
}

// Arbitrate models the Stage-2 fixed-priority N x 1 arbiter: given match
// lines ordered by priority (longest prefix first), it grants the first.
func Arbitrate(matchLines []int) (int, bool) {
	if len(matchLines) == 0 {
		return 0, false
	}
	return matchLines[0], true
}
