package hw

import (
	"testing"

	"rap/internal/core"
	"rap/internal/stats"
)

func functionalConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 32
	cfg.Epsilon = 0.05
	return cfg
}

func TestFunctionalValidation(t *testing.T) {
	m, _ := NewTCAM(32, 64)
	if _, err := NewFunctionalEngine(m, core.Config{}); err == nil {
		t.Fatal("bad tree config accepted")
	}
	m2, _ := NewTCAM(32, 64)
	m2.Insert(Row{Prefix: 0, Plen: 4})
	if _, err := NewFunctionalEngine(m2, functionalConfig()); err == nil {
		t.Fatal("non-empty matcher accepted")
	}
}

// matchTree asserts the row-based profile is bit-identical to a software
// tree: same n, same live counter count, and the same count on every
// range.
func matchTree(t *testing.T, e *FunctionalEngine, tree *core.Tree) {
	t.Helper()
	if e.N() != tree.N() {
		t.Fatalf("n: rows %d vs tree %d", e.N(), tree.N())
	}
	if e.Rows() != tree.NodeCount() {
		t.Fatalf("live counters: rows %d vs tree %d", e.Rows(), tree.NodeCount())
	}
	w := tree.Config().UniverseBits
	tree.Walk(func(n core.NodeInfo) bool {
		plen := w
		for width := n.Hi - n.Lo; width > 0; width >>= 1 {
			plen--
		}
		got, ok := e.Count(n.Lo, plen)
		if !ok {
			t.Fatalf("row missing for tree node [%x,%x]", n.Lo, n.Hi)
		}
		if got != n.Count {
			t.Fatalf("counter mismatch on [%x,%x]: row %d vs tree %d", n.Lo, n.Hi, got, n.Count)
		}
		return true
	})
}

func TestFunctionalMatchesTreeTCAM(t *testing.T) {
	m, err := NewTCAM(32, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	testFunctionalEquivalence(t, m)
}

func TestFunctionalMatchesTreeTrie(t *testing.T) {
	m, err := NewMultibitTrie(32, 2, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	testFunctionalEquivalence(t, m)
}

func testFunctionalEquivalence(t *testing.T, m Matcher) {
	t.Helper()
	cfg := functionalConfig()
	eng, err := NewFunctionalEngine(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tree := core.MustNew(cfg)

	rng := stats.NewSplitMix64(21)
	z := stats.NewZipf(rng, 1<<20, 1.15)
	for i := 0; i < 150_000; i++ {
		var p uint64
		switch i % 4 {
		case 0:
			p = rng.Uint64() // uniform noise (forces merges)
		default:
			p = uint64(z.Rank())
		}
		w := uint64(1)
		if i%13 == 0 {
			w = 3 // mixed weights exercise AddN semantics
		}
		if err := eng.Update(p, w); err != nil {
			t.Fatal(err)
		}
		tree.AddN(p, w)
		if i%50_000 == 0 {
			matchTree(t, eng, tree)
		}
	}
	matchTree(t, eng, tree)

	// Forced merge (Finalize) must also agree.
	if err := eng.MergeNow(); err != nil {
		t.Fatal(err)
	}
	tree.MergeNow()
	matchTree(t, eng, tree)
}

func TestFunctionalUnevenUniverse(t *testing.T) {
	// 10-bit universe with b=4: the bottom level is a 1-bit split; the
	// row engine must mirror the tree's uneven stride handling.
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 10
	cfg.Branch = 4
	cfg.Epsilon = 0.05
	m, _ := NewTCAM(10, 1<<12)
	eng, err := NewFunctionalEngine(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tree := core.MustNew(cfg)
	rng := stats.NewSplitMix64(5)
	for i := 0; i < 60_000; i++ {
		p := rng.Uint64n(1 << 10)
		if i%2 == 0 {
			p = 1023
		}
		if err := eng.Update(p, 1); err != nil {
			t.Fatal(err)
		}
		tree.Add(p)
	}
	matchTree(t, eng, tree)
	if _, ok := eng.Count(1023, 10); !ok {
		t.Fatal("hot singleton at the uneven bottom not isolated in rows")
	}
}

func TestFunctionalZeroWeightNoop(t *testing.T) {
	m, _ := NewTCAM(32, 16)
	eng, err := NewFunctionalEngine(m, functionalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(42, 0); err != nil {
		t.Fatal(err)
	}
	if eng.N() != 0 || eng.Rows() != 1 {
		t.Fatalf("zero-weight update changed state: n=%d rows=%d", eng.N(), eng.Rows())
	}
}

func TestFunctionalCapacityError(t *testing.T) {
	// A tiny matcher must surface split overflow as an error.
	m, _ := NewTCAM(32, 3)
	eng, err := NewFunctionalEngine(m, functionalConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	rng := stats.NewSplitMix64(9)
	for i := 0; i < 10_000; i++ {
		if err := eng.Update(rng.Uint64()&0xFFFFFFFF, 1); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("3-row matcher never overflowed")
	}
}
