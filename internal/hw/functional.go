package hw

import (
	"fmt"
	"math"
	"math/bits"

	"rap/internal/core"
)

// FunctionalEngine maintains a RAP profile entirely in hardware terms: a
// Matcher (TCAM or multibit trie) holds one row per range, an SRAM
// counter array holds one counter per row, and update/split/merge are
// performed as the Section 3.3 pipeline would — search, increment,
// row inserts on a split, a bottom-up row scan on a batch merge. Unlike
// Engine (which wraps core.Tree and accounts cycles), FunctionalEngine
// has no tree at all; TestFunctionalMatchesTree proves the row-based
// implementation is bit-identical to the software tree, which is the
// paper's implicit claim that the TCAM pipeline implements the same
// algorithm.
type FunctionalEngine struct {
	matcher Matcher
	cfg     core.Config
	shift   int // log2(branch)
	height  int

	rows     map[int]Row    // row id -> range row (the TCAM image)
	byRange  map[Row]int    // range -> row id
	counters map[int]uint64 // row id -> SRAM counter
	n        uint64

	nextMerge     uint64
	mergeInterval uint64
}

// NewFunctionalEngine builds a row-based RAP engine on the given matcher.
// The matcher must be empty and must have capacity for the profile (the
// engine returns an error from Update when a split cannot fit).
func NewFunctionalEngine(m Matcher, cfg core.Config) (*FunctionalEngine, error) {
	// Reuse core's validation by constructing (and discarding) a tree.
	probe, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	cfg = probe.Config() // normalized (defaults filled in)
	if m.Len() != 0 {
		return nil, fmt.Errorf("hw: matcher must start empty")
	}
	e := &FunctionalEngine{
		matcher:  m,
		cfg:      cfg,
		shift:    bits.TrailingZeros(uint(cfg.Branch)),
		height:   cfg.Height(),
		rows:     make(map[int]Row),
		byRange:  make(map[Row]int),
		counters: make(map[int]uint64),
	}
	if cfg.MergeEvery != 0 {
		e.mergeInterval = cfg.MergeEvery
	} else {
		e.mergeInterval = cfg.FirstMerge
	}
	e.nextMerge = e.mergeInterval
	// The root row covers the whole universe.
	if _, err := e.insert(Row{Prefix: 0, Plen: 0}); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *FunctionalEngine) insert(r Row) (int, error) {
	id, err := e.matcher.Insert(r)
	if err != nil {
		return 0, err
	}
	e.rows[id] = r
	e.byRange[r] = id
	e.counters[id] = 0
	return id, nil
}

func (e *FunctionalEngine) delete(id int) error {
	r := e.rows[id]
	if err := e.matcher.Delete(id); err != nil {
		return err
	}
	delete(e.rows, id)
	delete(e.byRange, r)
	delete(e.counters, id)
	return nil
}

// splitThreshold mirrors core.Tree.SplitThreshold exactly.
func (e *FunctionalEngine) splitThreshold() float64 {
	thr := e.cfg.Epsilon * float64(e.n) / float64(e.height)
	if guard := float64(e.cfg.MinSplitCount); thr < guard {
		return guard
	}
	return thr
}

// Update processes one event of the given weight through the pipeline:
// Stage 1/2 search, Stage 3 counter increment, Stage 4 threshold compare
// and split, plus the batched merge schedule.
func (e *FunctionalEngine) Update(p uint64, weight uint64) error {
	if weight == 0 {
		return nil
	}
	if e.cfg.UniverseBits < 64 {
		p &= (1 << uint(e.cfg.UniverseBits)) - 1
	}
	e.n += weight
	id, ok := e.matcher.Search(p)
	if !ok {
		return fmt.Errorf("hw: no covering row for %x (root missing?)", p)
	}
	e.counters[id] += weight

	if float64(e.counters[id]) > e.splitThreshold() && int(e.rows[id].Plen) < e.cfg.UniverseBits {
		if err := e.split(e.rows[id]); err != nil {
			return err
		}
	}
	if e.n >= e.nextMerge {
		if err := e.mergeBatch(); err != nil {
			return err
		}
		e.advanceSchedule()
	}
	return nil
}

// childStride mirrors the tree's uneven-bottom handling.
func (e *FunctionalEngine) childStride(plen int) int {
	if rem := e.cfg.UniverseBits - plen; rem < e.shift {
		return rem
	}
	return e.shift
}

// split inserts the missing child rows of r, zero-initialized; r keeps
// its counter ("the original node keeps its counter").
func (e *FunctionalEngine) split(r Row) error {
	s := e.childStride(r.Plen)
	for i := 0; i < 1<<s; i++ {
		child := Row{
			Prefix: r.Prefix | uint64(i)<<uint(e.cfg.UniverseBits-r.Plen-s),
			Plen:   r.Plen + s,
		}
		if _, exists := e.byRange[child]; exists {
			continue // hole-filling split after an earlier partial merge
		}
		if _, err := e.insert(child); err != nil {
			return fmt.Errorf("hw: split overflow: %w", err)
		}
	}
	return nil
}

// hasChildren reports whether any direct child row of r is live.
// Singleton rows have no children by definition.
func (e *FunctionalEngine) hasChildren(r Row) bool {
	if r.Plen >= e.cfg.UniverseBits {
		return false
	}
	s := e.childStride(r.Plen)
	for i := 0; i < 1<<s; i++ {
		child := Row{
			Prefix: r.Prefix | uint64(i)<<uint(e.cfg.UniverseBits-r.Plen-s),
			Plen:   r.Plen + s,
		}
		if _, exists := e.byRange[child]; exists {
			return true
		}
	}
	return false
}

// parentOf returns the nearest live ancestor row of r (the root always
// exists).
func (e *FunctionalEngine) parentOf(r Row) (int, error) {
	plen := r.Plen
	for plen > 0 {
		// One tree level up; the top level may be shorter when the
		// universe does not divide evenly.
		step := e.shift
		if rem := plen % e.shift; rem != 0 {
			step = rem
		}
		plen -= step
		shiftBits := uint(e.cfg.UniverseBits - plen)
		prefix := uint64(0)
		if plen > 0 {
			prefix = r.Prefix >> shiftBits << shiftBits
		}
		if id, ok := e.byRange[Row{Prefix: prefix, Plen: plen}]; ok {
			return id, nil
		}
	}
	if id, ok := e.byRange[Row{Prefix: 0, Plen: 0}]; ok {
		return id, nil
	}
	return 0, fmt.Errorf("hw: no ancestor row for %x/%d", r.Prefix, r.Plen)
}

// mergeBatch is the Section 3.3 batch merge: rows are "scanned bottom-up
// to find candidate nodes to be merged" — deepest prefix first, so every
// row's subtree is resolved before the row itself is considered.
func (e *FunctionalEngine) mergeBatch() error {
	thr := e.splitThreshold() * e.cfg.MergeThresholdScale
	// Bucket live rows by prefix length (bounded by the universe width).
	byPlen := make([][]int, e.cfg.UniverseBits+1)
	for id, r := range e.rows {
		byPlen[r.Plen] = append(byPlen[r.Plen], id)
	}
	for plen := e.cfg.UniverseBits; plen > 0; plen-- {
		for _, id := range byPlen[plen] {
			r := e.rows[id]
			if e.hasChildren(r) || float64(e.counters[id]) > thr {
				continue
			}
			parent, err := e.parentOf(r)
			if err != nil {
				return err
			}
			e.counters[parent] += e.counters[id]
			if err := e.delete(id); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *FunctionalEngine) advanceSchedule() {
	if e.cfg.MergeEvery != 0 {
		e.nextMerge = e.n + e.cfg.MergeEvery
		return
	}
	next := uint64(math.Ceil(float64(e.mergeInterval) * e.cfg.MergeRatio))
	if next <= e.mergeInterval {
		next = e.mergeInterval + 1
	}
	e.mergeInterval = next
	e.nextMerge = e.n + e.mergeInterval
}

// N returns the total event weight processed.
func (e *FunctionalEngine) N() uint64 { return e.n }

// Rows returns the number of live rows (= tree nodes).
func (e *FunctionalEngine) Rows() int { return len(e.rows) }

// Count returns the SRAM counter for an exact range row, if present.
func (e *FunctionalEngine) Count(prefix uint64, plen int) (uint64, bool) {
	id, ok := e.byRange[Row{Prefix: prefix, Plen: plen}]
	if !ok {
		return 0, false
	}
	return e.counters[id], true
}

// MergeNow forces a batch merge outside the schedule (mirrors
// core.Tree.MergeNow followed by the schedule advance in Finalize).
func (e *FunctionalEngine) MergeNow() error {
	if err := e.mergeBatch(); err != nil {
		return err
	}
	e.advanceSchedule()
	return nil
}
