package hw

import (
	"fmt"

	"rap/internal/core"
	"rap/internal/trace"
)

// Cycle cost model for the five-stage engine (Section 3.3-3.4).
const (
	// "RAP requires 4 cycles to process an event, and requires 2 cycles
	// each for TCAM and SRAM accesses per event."
	cyclesPerUpdate = 4

	pipelineDepth    = 5 // flush cost when a split invalidates in-flight events
	cyclesPerInsert  = 2 // TCAM row write + SRAM init per new child
	cyclesPerScanRow = 2 // batched merge: bottom-up TCAM/SRAM scan per row
	cyclesPerDelete  = 2 // row invalidate + SRAM free
)

// Engine is the pipelined RAP engine: a core.Tree for the profile
// semantics plus cycle, energy, and capacity accounting for the
// TCAM/SRAM implementation.
type Engine struct {
	hw   Config
	est  Estimate
	tree *core.Tree

	events       uint64 // raw event weight (pre-coalescing)
	ops          uint64 // engine operations (one per Process call)
	cycles       uint64
	stallCycles  uint64
	energyNJ     float64
	peakRows     int
	forcedMerges uint64

	lastSplits  uint64
	lastBatches uint64
	lastMerges  uint64
	lastNodes   int
}

// NewEngine builds an engine with the given hardware provisioning and
// tree configuration. The tree's node count must be able to fit the TCAM:
// when a split would overflow it, the engine forces an early merge batch
// (and records it), the way a real engine would shed cold rows.
func NewEngine(hwCfg Config, treeCfg core.Config) (*Engine, error) {
	est, err := hwCfg.Estimate()
	if err != nil {
		return nil, err
	}
	tree, err := core.New(treeCfg)
	if err != nil {
		return nil, err
	}
	return &Engine{hw: hwCfg, est: est, tree: tree, lastNodes: tree.NodeCount(), peakRows: tree.NodeCount()}, nil
}

// Tree exposes the underlying profile for queries and dumps.
func (e *Engine) Tree() *core.Tree { return e.tree }

// Process runs one (possibly coalesced) event through the pipeline.
func (e *Engine) Process(ev trace.Event) {
	before := e.tree.Stats()
	e.tree.AddN(ev.Value, ev.Weight)
	after := e.tree.Stats()

	e.events += ev.Weight
	e.ops++
	e.cycles += cyclesPerUpdate
	e.energyNJ += e.est.TotalEnergyNJ

	// Splits: pipeline flush plus TCAM/SRAM inserts for the new children.
	if ds := after.Splits - before.Splits; ds > 0 {
		newRows := after.Nodes - before.Nodes + int(after.Merges-before.Merges)
		stall := ds*pipelineDepth + uint64(newRows)*cyclesPerInsert
		e.cycles += stall
		e.stallCycles += stall
		e.energyNJ += float64(newRows) * (e.est.TCAMEnergyNJ + e.est.SRAMEnergyNJ)
	}

	// Batched merges: the pipeline stalls while every row is scanned
	// bottom-up and cold rows are deleted.
	if db := after.MergeBatches - before.MergeBatches; db > 0 {
		scanned := db * uint64(before.Nodes)
		deleted := after.Merges - before.Merges
		stall := scanned*cyclesPerScanRow + deleted*cyclesPerDelete
		e.cycles += stall
		e.stallCycles += stall
		e.energyNJ += float64(scanned)*e.est.SRAMEnergyNJ + float64(deleted)*e.est.TCAMEnergyNJ
	}

	if n := e.tree.NodeCount(); n > e.peakRows {
		e.peakRows = n
	}
	// Capacity: shed rows with a forced early merge batch if the tree
	// outgrew the TCAM.
	if e.tree.NodeCount() > e.hw.TCAMEntries {
		before := e.tree.NodeCount()
		e.tree.MergeNow()
		e.forcedMerges++
		stall := uint64(before) * cyclesPerScanRow
		e.cycles += stall
		e.stallCycles += stall
	}
}

// Report is the engine's performance/energy characterization.
type Report struct {
	Events      uint64 // raw event weight seen (pre-coalescing)
	Ops         uint64 // engine operations (coalesced events processed)
	Cycles      uint64
	StallCycles uint64

	// CyclesPerOp is cycles per engine operation — the paper's "4 cycles
	// to process an event" metric.
	CyclesPerOp float64
	// ThroughputMEPS is millions of RAW events absorbed per second at the
	// pipelined clock: the Stage-0 buffer's coalescing multiplies the
	// engine's op rate.
	ThroughputMEPS float64
	EnergyNJ       float64
	EnergyPerOp    float64 // nJ

	PeakRows     int
	TCAMCapacity int
	ForcedMerges uint64
	Estimate     Estimate
}

// Report summarizes the run so far.
func (e *Engine) Report() Report {
	r := Report{
		Events:       e.events,
		Ops:          e.ops,
		Cycles:       e.cycles,
		StallCycles:  e.stallCycles,
		EnergyNJ:     e.energyNJ,
		PeakRows:     e.peakRows,
		TCAMCapacity: e.hw.TCAMEntries,
		ForcedMerges: e.forcedMerges,
		Estimate:     e.est,
	}
	if e.ops > 0 {
		r.CyclesPerOp = float64(e.cycles) / float64(e.ops)
		r.EnergyPerOp = e.energyNJ / float64(e.ops)
	}
	if r.CyclesPerOp > 0 && e.ops > 0 {
		coalesce := float64(e.events) / float64(e.ops)
		r.ThroughputMEPS = e.est.ClockGHz * 1e3 / r.CyclesPerOp * coalesce
	}
	return r
}

// String renders the report as the raphw tool prints it.
func (r Report) String() string {
	return fmt.Sprintf(
		"events=%d ops=%d cycles=%d (%.3f/op, %.1f%% stall) throughput=%.1f Mevents/s energy=%.3f nJ/op peakRows=%d/%d forcedMerges=%d",
		r.Events, r.Ops, r.Cycles, r.CyclesPerOp,
		100*float64(r.StallCycles)/float64(max(r.Cycles, 1)),
		r.ThroughputMEPS, r.EnergyPerOp, r.PeakRows, r.TCAMCapacity, r.ForcedMerges)
}
