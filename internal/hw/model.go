// Package hw models the paper's Pipelined RAP Engine (Section 3.3-3.4): a
// functional TCAM + priority-arbiter + SRAM counter pipeline, a
// cycle-accounting simulator for updates, split flushes and batched merge
// stalls, and Cacti/Orion-style area, delay, and energy estimates
// calibrated to the published 0.18µm operating point:
//
//	4096x36 TCAM + 16KB SRAM:  24.73 mm², 7 ns TCAM lookup,
//	1.26 ns SRAM stage (pipelined critical path), 1.272 nJ/event,
//	4 cycles per event on average (2 TCAM + 2 SRAM).
package hw

import (
	"fmt"
	"math"
)

// Config selects the hardware provisioning of the engine.
type Config struct {
	TCAMEntries int // range rows (one per tree node)
	TCAMWidth   int // bits per row (36 in the paper's configuration)
	SRAMBytes   int // counter + bookkeeping array
	TechNM      int // feature size in nanometers (180 in the paper)
}

// DefaultConfig is the paper's aggressive off-chip configuration.
func DefaultConfig() Config {
	return Config{TCAMEntries: 4096, TCAMWidth: 36, SRAMBytes: 16 << 10, TechNM: 180}
}

// SmallConfig is the paper's "400-node version", whose area and power are
// "more than a factor of 10 times less".
func SmallConfig() Config {
	return Config{TCAMEntries: 400, TCAMWidth: 36, SRAMBytes: 1600, TechNM: 180}
}

// Estimate is the derived physical characterization of a configuration.
type Estimate struct {
	// Area in mm², split by component and summed.
	TCAMAreaMM2, SRAMAreaMM2, ArbiterAreaMM2, LogicAreaMM2, TotalAreaMM2 float64
	// Stage delays in ns. The TCAM dominates unpipelined; byte/nibble
	// pipelining of the match (Section 3.4) shifts the critical path to
	// the SRAM stage.
	TCAMDelayNS, SRAMDelayNS float64
	CriticalPathNS           float64 // with the TCAM stage pipelined
	ClockGHz                 float64
	// Worst-case energy per processed event in nJ, split and summed.
	TCAMEnergyNJ, SRAMEnergyNJ, ArbiterEnergyNJ, LogicEnergyNJ, TotalEnergyNJ float64
}

// Calibration constants. Each component's dominant term scales linearly
// with its storage (cells switch per search in a TCAM; Cacti's mat area is
// capacity-proportional at fixed subarray geometry), with a small fixed
// periphery. The constants are solved so DefaultConfig reproduces the
// published totals exactly.
const (
	refEntries = 4096
	refWidth   = 36
	refSRAM    = 16 << 10

	// Area (mm² at 0.18µm).
	tcamAreaPerRefCell = 17.50 / (refEntries * refWidth) // rows x bits
	sramAreaPerRefByte = 5.50 / refSRAM
	arbiterAreaPerRow  = 0.90 / refEntries
	logicAreaPerRow    = 0.83 / refEntries // comparator + threshold registers + control

	// Worst-case energy (nJ per event at 0.18µm).
	tcamEnergyPerRefCell = 0.950 / (refEntries * refWidth)
	sramEnergyPerRefByte = 0.250 / refSRAM
	arbiterEnergyPerRow  = 0.050 / refEntries
	logicEnergyPerRow    = 0.022 / refEntries

	// Delay (ns at 0.18µm): a wire-limited sqrt term over a fixed
	// sense/drive floor, solved against the published 7 ns and 1.26 ns.
	tcamDelayFixed = 1.40
	sramDelayFixed = 0.55
)

var (
	tcamDelaySqrt = (7.00 - tcamDelayFixed) / math.Sqrt(refEntries*refWidth)
	sramDelaySqrt = (1.26 - sramDelayFixed) / math.Sqrt(refSRAM)
)

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TCAMEntries < 1 || c.TCAMWidth < 1 || c.SRAMBytes < 1 {
		return fmt.Errorf("hw: non-positive sizes in %+v", c)
	}
	if c.TechNM < 10 || c.TechNM > 1000 {
		return fmt.Errorf("hw: implausible technology node %d nm", c.TechNM)
	}
	return nil
}

// Estimate derives the physical model for the configuration. Area scales
// with the square of the feature size relative to 0.18µm, energy roughly
// with its square (C·V² with proportional voltage scaling), and delay
// linearly with it.
func (c Config) Estimate() (Estimate, error) {
	if err := c.Validate(); err != nil {
		return Estimate{}, err
	}
	scale := float64(c.TechNM) / 180.0
	areaScale := scale * scale
	energyScale := scale * scale
	delayScale := scale

	cells := float64(c.TCAMEntries * c.TCAMWidth)
	var e Estimate
	e.TCAMAreaMM2 = tcamAreaPerRefCell * cells * areaScale
	e.SRAMAreaMM2 = sramAreaPerRefByte * float64(c.SRAMBytes) * areaScale
	e.ArbiterAreaMM2 = arbiterAreaPerRow * float64(c.TCAMEntries) * areaScale
	e.LogicAreaMM2 = logicAreaPerRow * float64(c.TCAMEntries) * areaScale
	e.TotalAreaMM2 = e.TCAMAreaMM2 + e.SRAMAreaMM2 + e.ArbiterAreaMM2 + e.LogicAreaMM2

	e.TCAMEnergyNJ = tcamEnergyPerRefCell * cells * energyScale
	e.SRAMEnergyNJ = sramEnergyPerRefByte * float64(c.SRAMBytes) * energyScale
	e.ArbiterEnergyNJ = arbiterEnergyPerRow * float64(c.TCAMEntries) * energyScale
	e.LogicEnergyNJ = logicEnergyPerRow * float64(c.TCAMEntries) * energyScale
	e.TotalEnergyNJ = e.TCAMEnergyNJ + e.SRAMEnergyNJ + e.ArbiterEnergyNJ + e.LogicEnergyNJ

	e.TCAMDelayNS = (tcamDelayFixed + tcamDelaySqrt*math.Sqrt(cells)) * delayScale
	e.SRAMDelayNS = (sramDelayFixed + sramDelaySqrt*math.Sqrt(float64(c.SRAMBytes))) * delayScale
	e.CriticalPathNS = e.SRAMDelayNS
	if e.CriticalPathNS > 0 {
		e.ClockGHz = 1 / e.CriticalPathNS
	}
	return e, nil
}
