package hw

import "fmt"

// MultibitTrie is the SRAM-based alternative to the TCAM that Section 3.3
// points to: "with a branching factor of b, the tree is really a multibit
// trie and there are a variety of techniques that can be used to build
// high speed implementations from network algorithms" (Srinivasan &
// Varghese, Controlled Prefix Expansion). The trie walks `stride` key
// bits per level; rows whose prefix length is not stride-aligned attach
// to their last aligned ancestor and are disambiguated locally, so a
// lookup touches at most width/stride nodes — the fixed pipeline depth a
// hardware implementation would provision.
//
// MultibitTrie is drop-in observationally equivalent to TCAM: same Insert
// / Delete / Search contract, same longest-prefix-match results.
type MultibitTrie struct {
	width    int
	stride   int
	capacity int

	root   *trieNode
	rows   map[int]Row
	nextID int

	searches uint64
	inserts  uint64
	deletes  uint64
}

type trieNode struct {
	children []*trieNode
	// attached rows whose aligned ancestor is this node: row id -> Row.
	// At most stride distinct prefix lengths land here, so the slice
	// stays tiny (it models a node-local comparator bank in hardware).
	attached []attachedRow
}

type attachedRow struct {
	id  int
	row Row
}

// NewMultibitTrie builds a trie over widthBits-bit keys walking stride
// bits per level, holding at most capacity rows.
func NewMultibitTrie(widthBits, stride, capacity int) (*MultibitTrie, error) {
	if widthBits < 1 || widthBits > 64 {
		return nil, fmt.Errorf("hw: trie width %d out of range", widthBits)
	}
	if stride < 1 || stride > 8 {
		return nil, fmt.Errorf("hw: trie stride %d out of range [1,8]", stride)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("hw: trie capacity %d out of range", capacity)
	}
	return &MultibitTrie{
		width:    widthBits,
		stride:   stride,
		capacity: capacity,
		root:     &trieNode{},
		rows:     make(map[int]Row),
	}, nil
}

// Len returns the number of live rows.
func (t *MultibitTrie) Len() int { return len(t.rows) }

// Capacity returns the row capacity.
func (t *MultibitTrie) Capacity() int { return t.capacity }

// mask clears everything below the prefix, like TCAM.mask.
func (t *MultibitTrie) mask(key uint64, plen int) uint64 {
	if plen <= 0 {
		return 0
	}
	shift := uint(t.width - plen)
	if t.width < 64 {
		key &= (1 << uint(t.width)) - 1
	}
	return key >> shift << shift
}

// walk returns the aligned ancestor node for a prefix length, creating
// the path when create is set. The node for plen p is reached by
// consuming floor(p/stride) full strides of the prefix.
func (t *MultibitTrie) walk(prefix uint64, plen int, create bool) *trieNode {
	levels := plen / t.stride
	node := t.root
	for l := 0; l < levels; l++ {
		shift := t.width - (l+1)*t.stride
		idx := int(prefix >> uint(shift) & ((1 << t.stride) - 1))
		if node.children == nil {
			if !create {
				return nil
			}
			node.children = make([]*trieNode, 1<<t.stride)
		}
		if node.children[idx] == nil {
			if !create {
				return nil
			}
			node.children[idx] = &trieNode{}
		}
		node = node.children[idx]
	}
	return node
}

// Insert adds a range row and returns its id.
func (t *MultibitTrie) Insert(r Row) (int, error) {
	if r.Plen < 0 || r.Plen > t.width {
		return 0, fmt.Errorf("hw: prefix length %d out of range", r.Plen)
	}
	if len(t.rows) >= t.capacity {
		return 0, fmt.Errorf("hw: trie full (%d rows)", t.capacity)
	}
	canon := Row{Prefix: t.mask(r.Prefix, r.Plen), Plen: r.Plen}
	node := t.walk(canon.Prefix, canon.Plen, true)
	for _, a := range node.attached {
		if a.row == canon {
			return 0, fmt.Errorf("hw: duplicate row %x/%d", canon.Prefix, canon.Plen)
		}
	}
	t.inserts++
	id := t.nextID
	t.nextID++
	node.attached = append(node.attached, attachedRow{id: id, row: canon})
	t.rows[id] = canon
	return id, nil
}

// Delete removes the row with the given id. Empty trie nodes are left in
// place (hardware would reuse the slots); correctness is unaffected.
func (t *MultibitTrie) Delete(id int) error {
	r, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("hw: no row %d", id)
	}
	t.deletes++
	delete(t.rows, id)
	node := t.walk(r.Prefix, r.Plen, false)
	for i, a := range node.attached {
		if a.id == id {
			node.attached = append(node.attached[:i], node.attached[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("hw: trie corrupt: row %d not attached", id)
}

// Search returns the row id of the longest-prefix match for key.
func (t *MultibitTrie) Search(key uint64) (id int, ok bool) {
	t.searches++
	if t.width < 64 {
		key &= (1 << uint(t.width)) - 1
	}
	bestPlen := -1
	node := t.root
	level := 0
	for node != nil {
		for _, a := range node.attached {
			if a.row.Plen > bestPlen && t.mask(key, a.row.Plen) == a.row.Prefix {
				bestPlen = a.row.Plen
				id = a.id
			}
		}
		if node.children == nil || (level+1)*t.stride > t.width {
			break
		}
		shift := t.width - (level+1)*t.stride
		node = node.children[key>>uint(shift)&((1<<t.stride)-1)]
		level++
	}
	return id, bestPlen >= 0
}

// Stats returns search/insert/delete counters.
func (t *MultibitTrie) Stats() (searches, inserts, deletes uint64) {
	return t.searches, t.inserts, t.deletes
}

// Matcher is the longest-prefix-match contract shared by the TCAM and
// the multibit trie: the Stage-1/Stage-2 black box of the pipeline.
type Matcher interface {
	Insert(Row) (int, error)
	Delete(int) error
	Search(uint64) (int, bool)
	Len() int
	Capacity() int
}

// Interface conformance checks.
var (
	_ Matcher = (*TCAM)(nil)
	_ Matcher = (*MultibitTrie)(nil)
)
