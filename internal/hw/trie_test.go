package hw

import (
	"testing"
	"testing/quick"

	"rap/internal/core"
	"rap/internal/stats"
)

func TestTrieValidation(t *testing.T) {
	bad := []struct{ w, s, c int }{
		{0, 2, 4}, {65, 2, 4}, {16, 0, 4}, {16, 9, 4}, {16, 2, 0},
	}
	for _, tc := range bad {
		if _, err := NewMultibitTrie(tc.w, tc.s, tc.c); err == nil {
			t.Errorf("NewMultibitTrie(%d,%d,%d) accepted", tc.w, tc.s, tc.c)
		}
	}
}

func TestTrieBasicLPM(t *testing.T) {
	tr, err := NewMultibitTrie(16, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := tr.Insert(Row{Prefix: 0, Plen: 0})
	mid, _ := tr.Insert(Row{Prefix: 0x1200, Plen: 8})
	odd, _ := tr.Insert(Row{Prefix: 0x1230, Plen: 14}) // unaligned plen
	leaf, _ := tr.Insert(Row{Prefix: 0x1234, Plen: 16})

	cases := []struct {
		key  uint64
		want int
	}{
		{0x1234, leaf},
		{0x1232, odd},
		{0x1239, mid}, // outside the /14 but inside the /8
		{0x12FF, mid},
		{0x9999, root},
	}
	for _, tc := range cases {
		got, ok := tr.Search(tc.key)
		if !ok || got != tc.want {
			t.Errorf("Search(%x) = %d,%v, want %d", tc.key, got, ok, tc.want)
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestTrieCapacityDuplicatesDelete(t *testing.T) {
	tr, _ := NewMultibitTrie(8, 2, 2)
	id, err := tr.Insert(Row{Prefix: 0xA0, Plen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(Row{Prefix: 0xA0, Plen: 4}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := tr.Insert(Row{Prefix: 0xA3, Plen: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(Row{Prefix: 0, Plen: 0}); err == nil {
		t.Fatal("overflow accepted")
	}
	if _, err := tr.Insert(Row{Prefix: 0, Plen: 9}); err == nil {
		t.Fatal("plen > width accepted")
	}
	if err := tr.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(id); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, ok := tr.Search(0xA0); ok {
		// only [0xA3/8] remains and does not cover 0xA0
		t.Fatal("deleted row still matches")
	}
	s, i, d := tr.Stats()
	if s != 1 || i != 2 || d != 1 {
		t.Fatalf("stats = %d/%d/%d", s, i, d)
	}
	if tr.Capacity() != 2 {
		t.Fatal("capacity wrong")
	}
}

// TestTrieTCAMEquivalence drives both matchers with the live row set of a
// real RAP run and checks every search agrees — the trie is a drop-in
// Stage-1/2 replacement.
func TestTrieTCAMEquivalence(t *testing.T) {
	tcam, _ := NewTCAM(32, 8192)
	trie, _ := NewMultibitTrie(32, 2, 8192) // stride 2 = branching factor 4

	// Mirror a RAP tree's node set: walk a profiled tree and insert every
	// node range into both matchers.
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 32
	cfg.Epsilon = 0.02
	tree := core.MustNew(cfg)
	rng := stats.NewSplitMix64(11)
	z := stats.NewZipf(rng, 1<<18, 1.2)
	for i := 0; i < 150_000; i++ {
		tree.Add(uint64(z.Rank()))
	}
	ids := make(map[int]int) // tcam id -> trie id (for delete mirroring)
	tree.Walk(func(n core.NodeInfo) bool {
		plen := 32
		for w := n.Hi - n.Lo; w > 0; w >>= 1 {
			plen--
		}
		a, err1 := tcam.Insert(Row{Prefix: n.Lo, Plen: plen})
		b, err2 := trie.Insert(Row{Prefix: n.Lo, Plen: plen})
		if err1 != nil || err2 != nil {
			t.Fatalf("insert failed: %v / %v", err1, err2)
		}
		ids[a] = b
		return true
	})
	if tcam.Len() != trie.Len() {
		t.Fatalf("row counts differ: %d vs %d", tcam.Len(), trie.Len())
	}

	check := func() {
		for trial := 0; trial < 2000; trial++ {
			key := rng.Uint64() & 0xFFFFFFFF
			if trial%2 == 0 {
				key = uint64(z.Rank()) // mostly-covered region
			}
			ta, okA := tcam.Search(key)
			tb, okB := trie.Search(key)
			if okA != okB {
				t.Fatalf("match disagreement on %x: tcam=%v trie=%v", key, okA, okB)
			}
			if okA && ids[ta] != tb {
				t.Fatalf("LPM disagreement on %x: tcam row %d != trie row %d", key, ta, tb)
			}
		}
	}
	check()

	// Delete a third of the rows from both and re-verify.
	count := 0
	for a, b := range ids {
		if count%3 == 0 {
			// Never delete the root row (plen 0) so full cover remains.
			if r, ok := tcam.rows[a]; ok && r.Plen > 0 {
				if err := tcam.Delete(a); err != nil {
					t.Fatal(err)
				}
				if err := trie.Delete(b); err != nil {
					t.Fatal(err)
				}
				delete(ids, a)
			}
		}
		count++
	}
	check()
}

func TestPropTrieMatchesPrefixArithmetic(t *testing.T) {
	f := func(prefix uint16, plenSeed, strideSeed uint8, key uint16) bool {
		plen := int(plenSeed) % 17
		stride := int(strideSeed)%4 + 1
		tr, _ := NewMultibitTrie(16, stride, 4)
		tr.Insert(Row{Prefix: uint64(prefix), Plen: plen})
		_, ok := tr.Search(uint64(key))
		var want bool
		if plen == 0 {
			want = true
		} else {
			shift := uint(16 - plen)
			want = uint64(key)>>shift == uint64(prefix)>>shift
		}
		return ok == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}
