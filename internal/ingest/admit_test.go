package ingest

import (
	"context"
	"testing"
	"time"

	"rap/internal/admit"
	"rap/internal/core"
)

// admitOptions is testOptions over the full 64-bit universe (so a key
// flood is actually cold to the warm sketch) with the admission frontend
// wired in.
func admitOptions(shards int) Options {
	return Options{
		Tree:        core.DefaultConfig(),
		Shards:      shards,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Logf:        func(string, ...any) {},
		Admission:   &admit.Options{Seed: 7},
	}
}

// floodVals returns n distinct 64-bit keys — a replayable slice-backed
// stand-in for the adversarial flood, so checkpoint recovery can re-read
// the same stream.
func floodVals(n int, seed uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		v := (seed + uint64(i)) * 0x9e3779b97f4a7c15 // odd multiplier: bijective
		v ^= v >> 29
		out[i] = v
	}
	return out
}

// TestIngestAdmissionMassReconciles is the pipeline mass-conservation
// test: with admission gating every shard tree, every unit of offered
// weight must be accounted for as admitted (tree), unadmitted (ledger),
// or dropped (shed before the tree) — per source and in aggregate.
func TestIngestAdmissionMassReconciles(t *testing.T) {
	const perSource = 40_000
	in, err := Open(admitOptions(2), []SourceSpec{
		sliceSpec("flood-a", floodVals(perSource, 1)),
		sliceSpec("flood-b", floodVals(perSource, 2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.Admission() == nil {
		t.Fatal("Admission() = nil with Options.Admission set")
	}
	if err := in.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	st := in.Stats()
	if st.Unadmitted == 0 {
		t.Fatal("a pure key flood got everything admitted; the gate did nothing")
	}
	if got, want := st.N+st.Unadmitted+st.Dropped, uint64(2*perSource); got != want {
		t.Fatalf("mass leak: admitted %d + unadmitted %d + dropped %d = %d, want offered %d",
			st.N, st.Unadmitted, st.Dropped, got, want)
	}

	var sumAdmitted, sumUnadmitted uint64
	for _, s := range st.Sources {
		if s.Offered != s.Applied+s.Dropped {
			t.Fatalf("source %q: offered %d != applied %d + dropped %d",
				s.Name, s.Offered, s.Applied, s.Dropped)
		}
		if s.Applied != s.Admitted+s.Unadmitted {
			t.Fatalf("source %q: applied %d != admitted %d + unadmitted %d",
				s.Name, s.Applied, s.Admitted, s.Unadmitted)
		}
		if s.Offered != perSource {
			t.Fatalf("source %q offered %d, want %d", s.Name, s.Offered, perSource)
		}
		sumAdmitted += s.Admitted
		sumUnadmitted += s.Unadmitted
	}
	if sumAdmitted != st.N {
		t.Fatalf("per-source admitted sums to %d but trees credit %d", sumAdmitted, st.N)
	}
	if sumUnadmitted != st.Unadmitted {
		t.Fatalf("per-source unadmitted sums to %d but tree ledgers hold %d", sumUnadmitted, st.Unadmitted)
	}

	// The frontend's own counters are the same mass seen from the gate
	// side of the boundary.
	fs := in.Admission().Stats()
	if fs.Admitted != st.N || fs.Unadmitted != st.Unadmitted {
		t.Fatalf("frontend saw admitted/unadmitted %d/%d, trees report %d/%d",
			fs.Admitted, fs.Unadmitted, st.N, st.Unadmitted)
	}
}

// TestAdmissionLedgerSurvivesRecovery kills an admission-gated pipeline
// after a checkpoint and restarts it: the per-source unadmitted counters
// (checkpoint v2) and the tree ledgers (snapshot v3) must be restored
// coherently, and mass conservation must hold over the full replayed
// stream.
func TestAdmissionLedgerSurvivesRecovery(t *testing.T) {
	const perSource = 30_000
	dir := t.TempDir()
	valsA := floodVals(perSource, 11)
	valsB := floodVals(perSource, 12)

	opts := admitOptions(2)
	opts.CheckpointDir = dir

	// Epoch 1: ingest a prefix and checkpoint it on shutdown.
	run1 := runToCompletion(t, opts, []SourceSpec{
		sliceSpec("a", valsA[:20_000]),
		sliceSpec("b", valsB[:20_000]),
	})
	st1 := run1.Stats()
	if st1.Unadmitted == 0 {
		t.Fatal("epoch 1 refused nothing; test needs a live ledger to recover")
	}
	if st1.N+st1.Unadmitted != 40_000 {
		t.Fatalf("epoch 1 mass leak: %d + %d != 40000", st1.N, st1.Unadmitted)
	}

	// Epoch 2: restart against the full streams. Recovery must restore
	// both sides of the admission ledger before any new event flows.
	recovered, err := Open(opts, []SourceSpec{
		sliceSpec("a", valsA),
		sliceSpec("b", valsB),
	})
	if err != nil {
		t.Fatal(err)
	}
	rst := recovered.Stats()
	if rst.N != st1.N || rst.Unadmitted != st1.Unadmitted {
		t.Fatalf("restored N/unadmitted %d/%d, want checkpoint's %d/%d",
			rst.N, rst.Unadmitted, st1.N, st1.Unadmitted)
	}
	var restoredUnadmitted uint64
	for _, s := range rst.Sources {
		restoredUnadmitted += s.Unadmitted
	}
	if restoredUnadmitted != st1.Unadmitted {
		t.Fatalf("restored per-source unadmitted sums to %d, want %d", restoredUnadmitted, st1.Unadmitted)
	}

	if err := recovered.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	fst := recovered.Stats()
	if got, want := fst.N+fst.Unadmitted+fst.Dropped, uint64(2*perSource); got != want {
		t.Fatalf("post-recovery mass leak: %d + %d + %d = %d, want %d",
			fst.N, fst.Unadmitted, fst.Dropped, got, want)
	}
	for _, s := range fst.Sources {
		if s.Offered != perSource {
			t.Fatalf("source %q offered %d after recovery, want %d (exactly-once replay broken)",
				s.Name, s.Offered, perSource)
		}
	}
}
