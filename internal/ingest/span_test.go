package ingest

import (
	"context"
	"testing"
	"time"

	"rap/internal/obs"
	"rap/internal/span"
)

// TestIngestSpans drives a traced pipeline end to end and checks the span
// shape: every kept ingest.batch trace carries queue_wait and apply
// children linked to its root, checkpoint traces carry cut and write
// children, and an epoch publish triggered inside an apply is attributed
// to that batch's trace.
func TestIngestSpans(t *testing.T) {
	tr := span.New(span.Options{SampleRate: 1, Capacity: 1 << 12, SlowThreshold: -1})
	reg := obs.NewRegistry()
	opts := testOptions(2)
	opts.Metrics = reg
	opts.Tracer = tr
	opts.ReadSnapshots = true
	opts.SnapshotEvery = 1 << 12
	opts.CheckpointDir = t.TempDir()
	opts.BatchLen = 256

	vals := zipfVals(40_000, 7)
	in, err := Open(opts, []SourceSpec{sliceSpec("traced", vals)})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	byParent := map[string][]span.Record{}
	roots := map[string]span.Record{}
	for _, s := range spans {
		if s.ParentID == "" {
			roots[s.SpanID] = s
		} else {
			byParent[s.ParentID] = append(byParent[s.ParentID], s)
		}
	}

	var batches, checkpoints, publishes int
	for id, root := range roots {
		kids := map[string]int{}
		var applyID string
		for _, k := range byParent[id] {
			kids[k.Name]++
			if k.Name == "apply" {
				applyID = k.SpanID
			}
			if k.TraceID != root.TraceID {
				t.Fatalf("child %s not in parent trace", k.Name)
			}
		}
		switch root.Name {
		case "ingest.batch":
			batches++
			if kids["queue_wait"] != 1 || kids["apply"] != 1 {
				t.Fatalf("batch trace children = %v", kids)
			}
			for _, g := range byParent[applyID] {
				if g.Name == "epoch_publish" {
					publishes++
				}
			}
		case "checkpoint":
			checkpoints++
			if kids["cut"] != 1 || kids["write"] != 1 {
				t.Fatalf("checkpoint trace children = %v", kids)
			}
		default:
			t.Fatalf("unexpected root span %q", root.Name)
		}
	}
	if batches == 0 {
		t.Fatal("no ingest.batch traces recorded")
	}
	if checkpoints == 0 {
		t.Fatal("no checkpoint trace recorded (final checkpoint should produce one)")
	}
	// 40k events at SnapshotEvery=4096 must publish inside applies.
	if publishes == 0 {
		t.Fatal("no epoch_publish span attributed to a batch apply")
	}

	// The adaptive stage profiles saw the same batches the spans did.
	profs := in.Profiles()
	if profs == nil {
		t.Fatal("Profiles() nil with metrics registered")
	}
	wantObs := uint64(batches)
	for _, stage := range []string{"queue_wait", "apply"} {
		h := profs[stage]
		if h == nil {
			t.Fatalf("missing %s profile", stage)
		}
		if h.Count() < wantObs {
			t.Fatalf("%s profile saw %d observations, want >= %d batches", stage, h.Count(), wantObs)
		}
		hot := h.HotRanges(0.2)
		if len(hot) == 0 {
			t.Fatalf("%s profile has no hot ranges after %d observations", stage, h.Count())
		}
		found := false
		for _, hr := range hot {
			if len(hr.Exemplars) > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s hot ranges carry no span exemplars: %+v", stage, hot)
		}
	}
}

// TestIngestUnsampledCheap checks the never-sampled configuration records
// nothing while the pipeline still works — the overhead-gate configuration.
func TestIngestUnsampledCheap(t *testing.T) {
	tr := span.New(span.Options{SampleRate: 1 << 62, SlowThreshold: -1})
	opts := testOptions(1)
	opts.Tracer = tr
	vals := zipfVals(10_000, 11)
	in, err := Open(opts, []SourceSpec{sliceSpec("quiet", vals)})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if in.N() == 0 {
		t.Fatal("pipeline applied nothing")
	}
	if got := len(tr.Spans()); got != 0 {
		t.Fatalf("unsampled run recorded %d spans", got)
	}
	if tr.Started() == 0 {
		t.Fatal("tracer saw no spans at all — not wired")
	}
}

// TestIngestSlowApplyPromoted checks the slow-op path end to end in the
// pipeline: with an absurdly low threshold, stage spans are promoted even
// though head sampling keeps nothing.
func TestIngestSlowApplyPromoted(t *testing.T) {
	tr := span.New(span.Options{SampleRate: 1 << 62, SlowThreshold: time.Nanosecond})
	opts := testOptions(1)
	opts.Tracer = tr
	in, err := Open(opts, []SourceSpec{sliceSpec("slow", zipfVals(2_000, 13))})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	slow := tr.SlowOps()
	if len(slow) == 0 {
		t.Fatal("no slow ops with a 1ns threshold")
	}
}
