package ingest

import (
	"context"
	"testing"
	"time"

	"rap/internal/exact"
)

// TestKillAndRestartRecovery is the crash-recovery acceptance test: ingest
// a stream, die SIGKILL-style mid-run (no final checkpoint, in-memory
// state discarded), restart from the latest on-disk checkpoint, and finish
// the stream. Every estimate on the recovered profile must remain a valid
// lower bound within eps*n of the exact baseline for the full stream —
// i.e. recovery is exactly-once: nothing double-counted, nothing lost.
func TestKillAndRestartRecovery(t *testing.T) {
	const perSource = 30_000
	dir := t.TempDir()
	valsA := zipfVals(perSource, 21)
	valsB := zipfVals(perSource, 22)
	ex := exact.New()
	for _, v := range valsA {
		ex.Add(v)
	}
	for _, v := range valsB {
		ex.Add(v)
	}

	opts := testOptions(2)
	opts.CheckpointDir = dir

	// Epoch 1: ingest a prefix of each stream and checkpoint it. This
	// stands in for the periodic checkpoint that happened to land at
	// 18000 events per source.
	run1 := runToCompletion(t, opts, []SourceSpec{
		sliceSpec("a", valsA[:18_000]),
		sliceSpec("b", valsB[:18_000]),
	})
	if got := run1.N(); got != 36_000 {
		t.Fatalf("epoch 1 N = %d, want 36000", got)
	}

	// Epoch 2: the process keeps ingesting the full streams well past the
	// checkpoint, then is killed: SkipFinalCheckpoint simulates SIGKILL —
	// everything applied after the last checkpoint exists only in memory
	// and dies with the process. The checkpoint interval is left at its
	// default (10s), far longer than this run, so no periodic checkpoint
	// sneaks in.
	crashOpts := opts
	crashOpts.SkipFinalCheckpoint = true
	crashed, err := Open(crashOpts, []SourceSpec{
		sliceSpec("a", valsA),
		sliceSpec("b", valsB),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := crashed.N(); got != 36_000 {
		t.Fatalf("epoch 2 restored N = %d, want 36000", got)
	}
	if err := crashed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := crashed.N(); got != 2*perSource {
		t.Fatalf("epoch 2 in-memory N = %d, want %d", got, 2*perSource)
	}
	// The "kill": crashed's state is simply abandoned. Disk still holds
	// the epoch-1 checkpoint.

	// Epoch 3: restart. Recovery must restore tree state and stream
	// positions from the checkpoint and replay exactly the suffix.
	recovered, err := Open(opts, []SourceSpec{
		sliceSpec("a", valsA),
		sliceSpec("b", valsB),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := recovered.N(); got != 36_000 {
		t.Fatalf("recovered N = %d, want checkpoint's 36000", got)
	}
	for _, ss := range recovered.sources {
		if ss.consumed != 18_000 {
			t.Fatalf("source %q resumes at %d, want 18000", ss.spec.Name, ss.consumed)
		}
	}
	start := time.Now()
	if err := recovered.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Logf("replayed %d events in %v", 2*perSource-36_000, time.Since(start))

	// Exactly-once: the recovered profile covers the whole stream.
	if got := recovered.N(); got != 2*perSource {
		t.Fatalf("N after recovery = %d, want %d (lost or duplicated events)", got, 2*perSource)
	}
	st := recovered.Stats()
	for _, s := range st.Sources {
		if s.Applied != perSource || s.Dropped != 0 {
			t.Fatalf("source %q: applied %d dropped %d, want %d and 0",
				s.Name, s.Applied, s.Dropped, perSource)
		}
	}
	// Every estimate is a valid lower bound within eps*n of exact.
	checkLowerBound(t, recovered, ex, 0, 23)
}

// TestMidRunCheckpointRecovery drives the same crash but with the
// checkpoint taken asynchronously while ingest is actively running, so
// the consistent-cut locking (positions matching tree contents exactly)
// is exercised under real concurrency.
func TestMidRunCheckpointRecovery(t *testing.T) {
	const perSource = 40_000
	dir := t.TempDir()
	valsA := zipfVals(perSource, 31)
	valsB := zipfVals(perSource, 32)
	ex := exact.New()
	for _, v := range valsA {
		ex.Add(v)
	}
	for _, v := range valsB {
		ex.Add(v)
	}

	opts := testOptions(2)
	opts.CheckpointDir = dir
	opts.SkipFinalCheckpoint = true
	opts.BatchLen = 64

	in, err := Open(opts, []SourceSpec{
		sliceSpec("a", valsA),
		sliceSpec("b", valsB),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- in.Run(context.Background()) }()
	// Checkpoint repeatedly while the pipeline runs; the last one to land
	// before completion is what the restart recovers from.
	for i := 0; i < 20; i++ {
		if err := in.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// In-memory state (the full 80k) dies here; disk has some mid-run cut.

	recovered, err := Open(opts, []SourceSpec{
		sliceSpec("a", valsA),
		sliceSpec("b", valsB),
	})
	if err != nil {
		t.Fatal(err)
	}
	ckN := recovered.N()
	if err := recovered.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := recovered.N(); got != 2*perSource {
		t.Fatalf("N after mid-run-cut recovery = %d (checkpoint had %d), want %d",
			got, ckN, 2*perSource)
	}
	checkLowerBound(t, recovered, ex, 0, 33)
}
