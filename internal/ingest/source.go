package ingest

import (
	"fmt"
	"io"
	"os"
	"sync"

	"rap/internal/trace"
)

// SourceSpec describes one recoverable event source. Open must return a
// fresh stream positioned at the beginning; the supervisor resumes after a
// failure or a restart by reopening and skipping the events already
// accounted for. A source whose Open cannot restart from the beginning (a
// pipe, a socket) still works, but loses the events between the last
// checkpoint and the crash — see ReaderSource.
type SourceSpec struct {
	Name string
	Open func() (trace.Source, error)
}

// fileSource pairs a trace.Reader with the file it reads so the
// supervisor's close-on-abandon unblocks and releases it.
type fileSource struct {
	*trace.Reader
	f *os.File
}

func (s *fileSource) Close() error { return s.f.Close() }

// FileSource is a spec for a binary trace file (trace.Writer format). The
// file is reopened from the start on every attempt, so it is fully
// replayable: crash recovery is lossless.
func FileSource(name, path string) SourceSpec {
	return SourceSpec{
		Name: name,
		Open: func() (trace.Source, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			return &fileSource{Reader: trace.NewReader(f), f: f}, nil
		},
	}
}

// ReaderSource is a spec over a one-shot byte stream (stdin, a pipe) in
// the binary trace format. The stream can be opened exactly once; a
// reopen attempt fails, so after a mid-stream error the source exhausts
// its retries and is marked failed rather than silently restarting a
// stream that cannot be rewound. Events between the last checkpoint and a
// crash are lost (and that loss is visible as a position the stream can
// no longer satisfy).
func ReaderSource(name string, r io.Reader) SourceSpec {
	var once sync.Once
	return SourceSpec{
		Name: name,
		Open: func() (trace.Source, error) {
			var src trace.Source
			once.Do(func() { src = trace.NewReader(r) })
			if src == nil {
				return nil, fmt.Errorf("ingest: source %q is a one-shot stream and cannot be reopened", name)
			}
			return src, nil
		},
	}
}

// GeneratorSource is a spec over a deterministic generator: Open rebuilds
// the source from scratch on every attempt (fn must return an equivalent
// stream each time, e.g. a seeded workload model), which makes it fully
// replayable like a file.
func GeneratorSource(name string, fn func() trace.Source) SourceSpec {
	return SourceSpec{
		Name: name,
		Open: func() (trace.Source, error) { return fn(), nil },
	}
}
