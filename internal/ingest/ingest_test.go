package ingest

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"rap/internal/core"
	"rap/internal/exact"
	"rap/internal/faults"
	"rap/internal/trace"
)

func testOptions(shards int) Options {
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 16
	cfg.Epsilon = 0.05
	return Options{
		Tree:        cfg,
		Shards:      shards,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Logf:        func(string, ...any) {},
	}
}

func zipfVals(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 8, 1<<16-1)
	out := make([]uint64, n)
	for i := range out {
		out[i] = z.Uint64()
	}
	return out
}

func sliceSpec(name string, vals []uint64) SourceSpec {
	return GeneratorSource(name, func() trace.Source {
		return trace.NewSliceSource(vals)
	})
}

// checkLowerBound asserts the aggregated estimate is a valid lower bound
// within eps*n (plus dropped events) of the exact baseline over a spread
// of random ranges.
func checkLowerBound(t *testing.T, in *Ingestor, ex *exact.Profiler, dropped uint64, seed int64) {
	t.Helper()
	slack := in.opts.Tree.Epsilon*float64(ex.N()) + float64(dropped)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 60; i++ {
		lo := rng.Uint64() & (1<<16 - 1)
		hi := lo + rng.Uint64()&0xfff
		est := in.Estimate(lo, hi)
		truth := ex.RangeCount(lo, hi)
		if est > truth {
			t.Fatalf("range [%#x,%#x]: estimate %d exceeds exact %d (not a lower bound)",
				lo, hi, est, truth)
		}
		if float64(truth-est) > slack {
			t.Fatalf("range [%#x,%#x]: estimate %d short of exact %d by more than %.0f",
				lo, hi, est, truth, slack)
		}
	}
}

func TestIngestMultiSourceSharded(t *testing.T) {
	const perSource = 20_000
	ex := exact.New()
	var specs []SourceSpec
	for i := 0; i < 5; i++ {
		vals := zipfVals(perSource, int64(100+i))
		for _, v := range vals {
			ex.Add(v)
		}
		specs = append(specs, sliceSpec("src-"+string(rune('a'+i)), vals))
	}

	in, err := Open(testOptions(3), specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	if got, want := in.N(), uint64(5*perSource); got != want {
		t.Fatalf("N = %d, want %d", got, want)
	}
	st := in.Stats()
	if len(st.Sources) != 5 {
		t.Fatalf("stats cover %d sources, want 5", len(st.Sources))
	}
	for _, s := range st.Sources {
		if s.Applied != perSource || s.Dropped != 0 || s.Failed {
			t.Fatalf("source %q: %+v, want %d applied and no loss", s.Name, s, perSource)
		}
	}
	checkLowerBound(t, in, ex, 0, 7)
}

func TestIngestDropAccountingStaysHonest(t *testing.T) {
	const total = 2_000
	vals := zipfVals(total, 42)
	ex := exact.New()
	for _, v := range vals {
		ex.Add(v)
	}

	opts := testOptions(1)
	opts.Drop = DropNewest
	opts.QueueLen = 1
	opts.BatchLen = 1
	in, err := Open(opts, []SourceSpec{sliceSpec("flood", vals)})
	if err != nil {
		t.Fatal(err)
	}

	// Wedge the shard: a goroutine parks inside WithShard holding the
	// shard lock, so the worker blocks inside apply, the queue fills, and
	// the reader must shed load instead of stalling or crashing.
	held := make(chan struct{})
	release := make(chan struct{})
	go in.engine.WithShard(0, func(*core.Tree) {
		close(held)
		<-release
	})
	<-held
	done := make(chan error, 1)
	go func() { done <- in.Run(context.Background()) }()
	deadline := time.After(5 * time.Second)
	for in.sources[0].dropped.Load() == 0 {
		select {
		case <-deadline:
			close(release)
			t.Fatal("no drops observed while shard was wedged")
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	st := in.Stats()
	src := st.Sources[0]
	if src.Dropped == 0 {
		t.Fatal("expected dropped events under overload")
	}
	// Conservation: every event is either applied or accounted as dropped
	// — this is what keeps the eps*n + dropped error bound honest.
	if src.Applied+src.Dropped != total {
		t.Fatalf("applied %d + dropped %d != %d", src.Applied, src.Dropped, total)
	}
	if in.N() != total-src.Dropped {
		t.Fatalf("N %d != total %d - dropped %d", in.N(), uint64(total), src.Dropped)
	}
	checkLowerBound(t, in, ex, src.Dropped, 8)
}

func TestIngestRetriesTransientFailure(t *testing.T) {
	const total = 5_000
	vals := zipfVals(total, 9)
	errFlaky := errors.New("flaky read")
	opens := 0
	spec := SourceSpec{
		Name: "flaky",
		Open: func() (trace.Source, error) {
			opens++
			if opens == 1 {
				return &faults.Source{
					S:         trace.NewSliceSource(vals),
					FailAfter: 700,
					FailErr:   errFlaky,
				}, nil
			}
			return trace.NewSliceSource(vals), nil
		},
	}

	in, err := Open(testOptions(2), []SourceSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Exactly once despite the mid-stream failure: the reopen skips the
	// 700 events already handed off.
	if got := in.N(); got != total {
		t.Fatalf("N = %d after transient failure, want %d", got, total)
	}
	st := in.Stats()
	if st.Sources[0].Retries == 0 {
		t.Fatal("retry not recorded")
	}
	if st.Sources[0].Failed {
		t.Fatal("recovered source marked failed")
	}
}

func TestIngestStallDetectedAndReopened(t *testing.T) {
	const total = 3_000
	vals := zipfVals(total, 11)
	opens := 0
	spec := SourceSpec{
		Name: "stall",
		Open: func() (trace.Source, error) {
			opens++
			if opens == 1 {
				return &faults.Source{
					S:          trace.NewSliceSource(vals),
					StallEvery: 501, // hang on event 501
					StallFor:   time.Second,
				}, nil
			}
			return trace.NewSliceSource(vals), nil
		},
	}

	opts := testOptions(1)
	opts.ReadTimeout = 50 * time.Millisecond
	in, err := Open(opts, []SourceSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := in.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= time.Second {
		t.Fatalf("run took %v: stalled source was waited out, not abandoned", d)
	}
	if got := in.N(); got != total {
		t.Fatalf("N = %d after stall recovery, want %d", got, total)
	}
	st := in.Stats()
	if st.Sources[0].Retries == 0 || !strings.Contains(st.Sources[0].LastErr, "stalled") {
		t.Fatalf("stall not recorded in stats: %+v", st.Sources[0])
	}
}

func TestIngestPermanentFailure(t *testing.T) {
	errDead := errors.New("disk on fire")
	spec := SourceSpec{
		Name: "dead",
		Open: func() (trace.Source, error) { return nil, errDead },
	}
	opts := testOptions(1)
	opts.MaxRetries = 2
	in, err := Open(opts, []SourceSpec{spec, sliceSpec("ok", zipfVals(1_000, 3))})
	if err != nil {
		t.Fatal(err)
	}
	err = in.Run(context.Background())
	if err == nil || !errors.Is(err, errDead) {
		t.Fatalf("Run = %v, want wrapped %v", err, errDead)
	}
	// One dead source must not take down the rest of the pipeline.
	if got := in.N(); got != 1_000 {
		t.Fatalf("healthy source applied %d events, want 1000", got)
	}
	st := in.Stats()
	var dead SourceStats
	for _, s := range st.Sources {
		if s.Name == "dead" {
			dead = s
		}
	}
	if !dead.Failed || dead.Retries != 3 || !strings.Contains(dead.LastErr, "disk on fire") {
		t.Fatalf("dead source stats: %+v", dead)
	}
}

func TestIngestGracefulCancel(t *testing.T) {
	// An endless source: cancellation is the only way out, and Run must
	// come back promptly with the queues drained.
	var i uint64
	endless := GeneratorSource("endless", func() trace.Source {
		return trace.FuncSource(func() (uint64, bool) {
			i++
			return i & (1<<16 - 1), true
		})
	})
	opts := testOptions(2)
	ctx, cancel := context.WithCancel(context.Background())
	in, err := Open(opts, []SourceSpec{endless})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- in.Run(ctx) }()
	for in.N() < 10_000 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	if in.N() == 0 {
		t.Fatal("nothing ingested before cancel")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(testOptions(1), nil); err == nil {
		t.Fatal("Open accepted zero sources")
	}
	dup := []SourceSpec{sliceSpec("x", nil), sliceSpec("x", nil)}
	if _, err := Open(testOptions(1), dup); err == nil {
		t.Fatal("Open accepted duplicate source names")
	}
	bad := testOptions(1)
	bad.Tree.Epsilon = 2
	if _, err := Open(bad, []SourceSpec{sliceSpec("x", nil)}); err == nil {
		t.Fatal("Open accepted invalid tree config")
	}
}

// TestIngestConcurrentQueries hammers the query surface while ingest is
// running; meaningful mainly under -race.
func TestIngestConcurrentQueries(t *testing.T) {
	in, err := Open(testOptions(4), []SourceSpec{
		sliceSpec("a", zipfVals(30_000, 1)),
		sliceSpec("b", zipfVals(30_000, 2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				in.Estimate(0, 1<<15)
				in.Stats()
				in.N()
				in.Dropped()
			}
		}
	}()
	if err := in.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if got := in.N(); got != 60_000 {
		t.Fatalf("N = %d, want 60000", got)
	}
}
