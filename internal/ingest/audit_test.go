package ingest

import (
	"testing"
	"time"

	"rap/internal/audit"
	"rap/internal/obs"
)

func auditOptions() *audit.Options {
	return &audit.Options{MaxRanges: 16, SpanBits: 8, SamplePeriod: 16, Seed: 3}
}

// TestAuditThroughPipeline runs a checkpointed, audited pipeline end to
// end: periodic and final audit passes must all come back clean, the
// audit metric families must land on the registry, and the new per-stage
// latency histograms must have observed real traffic.
func TestAuditThroughPipeline(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewStructuralTrace(1000, 1<<12)
	opts := testOptions(2)
	opts.CheckpointDir = t.TempDir()
	opts.Metrics = reg
	opts.StructuralTrace = tr
	opts.Audit = auditOptions()
	opts.AuditEvery = 2 * time.Millisecond // fire mid-run, not only at drain

	in := runToCompletion(t, opts, []SourceSpec{
		sliceSpec("a", zipfVals(40_000, 31)),
		sliceSpec("b", zipfVals(40_000, 32)),
	})

	a := in.Auditor()
	if a == nil {
		t.Fatal("Auditor() nil with Options.Audit set")
	}
	rep, ok := a.Report()
	if !ok {
		t.Fatal("no audit pass completed")
	}
	if rep.Verdict != "ok" || rep.ViolationsTotal != 0 {
		t.Fatalf("audit verdict %q, %d violations: %+v", rep.Verdict, rep.ViolationsTotal, rep)
	}
	if rep.N != in.N() || rep.TapN != rep.N {
		t.Fatalf("audit cut n=%d tap_n=%d, engine n=%d", rep.N, rep.TapN, in.N())
	}
	if len(rep.Ranges) < 2 {
		t.Fatalf("only %d audited ranges; sampling never adopted", len(rep.Ranges))
	}
	if float64(rep.MaxUnderestimate) > rep.Budget {
		t.Fatalf("max underestimate %d exceeds budget %v", rep.MaxUnderestimate, rep.Budget)
	}

	// Metric families: the audit's counters and the stage latencies.
	fams := map[string]float64{}
	counts := map[string]uint64{}
	for _, f := range reg.Snapshot() {
		for _, s := range f.Series {
			fams[f.Name] += s.Value
			counts[f.Name] += s.Count
		}
	}
	if fams[audit.MetricAuditPasses] < 1 {
		t.Fatalf("%s = %v, want >= 1", audit.MetricAuditPasses, fams[audit.MetricAuditPasses])
	}
	if fams[audit.MetricAuditViolations] != 0 {
		t.Fatalf("%s = %v, want 0", audit.MetricAuditViolations, fams[audit.MetricAuditViolations])
	}
	if fams[audit.MetricAuditChecks] == 0 {
		t.Fatalf("%s never incremented", audit.MetricAuditChecks)
	}
	if fams["rap_tree_arena_bytes"] <= 0 {
		t.Fatalf("rap_tree_arena_bytes = %v, want > 0", fams["rap_tree_arena_bytes"])
	}
	for _, name := range []string{
		"rap_ingest_queue_wait_seconds",
		"rap_ingest_apply_seconds",
		"rap_checkpoint_cut_seconds",
		"rap_checkpoint_write_seconds",
	} {
		if counts[name] == 0 {
			t.Fatalf("latency histogram %s observed nothing", name)
		}
	}
	if st := in.Stats(); st.ArenaBytes == 0 {
		t.Fatal("Stats.ArenaBytes = 0 after ingest")
	}
}

// TestAuditSurvivesPipelineRestore reopens a checkpointed pipeline with
// auditing enabled: the new auditor attaches after recovery, so restored
// mass is pre-audit baseN (never double-counted as tapped truth) and the
// post-restore epoch audits clean without a single rebase.
func TestAuditSurvivesPipelineRestore(t *testing.T) {
	dir := t.TempDir()
	first := zipfVals(30_000, 41)
	opts := testOptions(2)
	opts.CheckpointDir = dir
	opts.Audit = auditOptions()
	in1 := runToCompletion(t, opts, []SourceSpec{sliceSpec("a", first)})
	restored := in1.N()
	if restored != uint64(len(first)) {
		t.Fatalf("first run applied %d, want %d", restored, len(first))
	}

	second := zipfVals(25_000, 42)
	reg := obs.NewRegistry()
	opts2 := testOptions(2)
	opts2.CheckpointDir = dir
	opts2.Metrics = reg
	opts2.Audit = auditOptions()
	in2 := runToCompletion(t, opts2, []SourceSpec{
		sliceSpec("a", first), // replays from checkpoint position: no new events
		sliceSpec("b", second),
	})

	if got, want := in2.N(), restored+uint64(len(second)); got != want {
		t.Fatalf("restored pipeline n=%d, want %d", got, want)
	}
	rep, ok := in2.Auditor().Report()
	if !ok {
		t.Fatal("no audit pass after restore")
	}
	if rep.Verdict != "ok" || rep.ViolationsTotal != 0 {
		t.Fatalf("post-restore audit verdict %q, %d violations", rep.Verdict, rep.ViolationsTotal)
	}
	if rep.RebasesTotal != 0 {
		t.Fatalf("post-restore attach should not rebase, saw %d", rep.RebasesTotal)
	}
	if rep.BaseN != restored {
		t.Fatalf("audit baseN = %d, want restored mass %d", rep.BaseN, restored)
	}
	if rep.TapN != uint64(len(second)) {
		t.Fatalf("audit tapN = %d, want only the new mass %d (no double count)",
			rep.TapN, len(second))
	}

	// The stage histograms are registered and observing on the restored
	// pipeline too.
	for _, f := range reg.Snapshot() {
		if f.Name == "rap_ingest_apply_seconds" {
			var c uint64
			for _, s := range f.Series {
				c += s.Count
			}
			if c == 0 {
				t.Fatal("apply histogram observed nothing after restore")
			}
			return
		}
	}
	t.Fatal("rap_ingest_apply_seconds missing after restore")
}
