// Package ingest is the resilient streaming front end of the profiler: it
// turns the one-shot "drain a source into a tree" model of the CLIs into a
// long-running subsystem that survives slow consumers, flaky sources, and
// process crashes.
//
// N supervised source readers feed S sharded core trees through bounded
// channels. Each source is pinned to one shard, so a source's events are
// applied in stream order and its checkpointed position is always a prefix
// of the stream — the property that makes crash recovery exactly-once.
// Queries aggregate across shards: each shard tree is a lower bound on the
// events it saw with error at most ε·n_i, so the summed estimate is a
// lower bound on the whole stream with error at most ε·Σn_i = ε·n. The
// paper's guarantee survives sharding unchanged.
//
// Overload is explicit: with the Block policy the queues exert lossless
// backpressure on readers; with DropNewest the readers shed load and count
// every dropped event, so the effective error bound ε·n + dropped stays
// honest instead of silently degrading.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"rap/internal/core"
	"rap/internal/trace"
)

// DropPolicy selects what a source reader does when its shard queue is
// full.
type DropPolicy int

const (
	// Block applies lossless backpressure: the reader waits for queue
	// space, slowing the source down to the profiler's pace.
	Block DropPolicy = iota
	// DropNewest sheds load: events that arrive while the queue is full
	// are dropped and counted, trading accuracy (accounted for) against
	// latency under overload.
	DropNewest
)

// ErrStalled is the error a source is retried with when a read exceeds
// ReadTimeout.
var ErrStalled = errors.New("ingest: source read stalled")

// Options configures an Ingestor. The zero value of every field selects a
// sensible default (see withDefaults); the zero Options therefore runs a
// single-shard, blocking, checkpoint-free ingestor over DefaultConfig
// trees.
type Options struct {
	// Tree is the configuration every shard tree is built with. The zero
	// Config selects core.DefaultConfig.
	Tree core.Config

	// Shards is the number of tree shards (default 4). Checkpoints record
	// the shard count; recovery requires it unchanged.
	Shards int

	// QueueLen is the per-shard bounded channel capacity in batches
	// (default 64).
	QueueLen int

	// BatchLen is how many events a reader coalesces per queue entry
	// (default 256).
	BatchLen int

	// FlushEvery bounds how long a partial batch may sit in a reader
	// before being enqueued anyway (default 50ms), keeping live sources
	// fresh without giving up batching.
	FlushEvery time.Duration

	// Drop selects the overload policy (default Block).
	Drop DropPolicy

	// ReadTimeout, when > 0, bounds how long a single source read may
	// take before the source is declared stalled and reopened.
	ReadTimeout time.Duration

	// MaxRetries is how many consecutive failed attempts (open errors,
	// stalls, or read errors with no progress in between) a source gets
	// before it is marked permanently failed (default 5).
	MaxRetries int

	// BackoffBase/BackoffMax shape the exponential retry backoff
	// (defaults 50ms and 5s). Each attempt waits roughly
	// base·2^(attempt-1), capped at max, with ±25% jitter so a fleet of
	// failing sources does not retry in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// CheckpointDir, when set, enables crash-safe checkpointing into that
	// directory. Empty disables checkpointing entirely.
	CheckpointDir string

	// CheckpointEvery is the wall-clock checkpoint cadence (default 10s).
	// It bounds the replay window: after a crash at most this much of the
	// stream is re-read from the sources.
	CheckpointEvery time.Duration

	// SkipFinalCheckpoint suppresses the checkpoint normally flushed when
	// Run winds down. Tests use it to simulate a hard crash.
	SkipFinalCheckpoint bool

	// Logf receives operational log lines (retries, quarantined
	// checkpoints, failed sources). Default log.Printf.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Tree == (core.Config{}) {
		o.Tree = core.DefaultConfig()
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 64
	}
	if o.BatchLen <= 0 {
		o.BatchLen = 256
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 50 * time.Millisecond
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 5
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 10 * time.Second
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// batch is one queue entry: a run of events from a single source.
type batch struct {
	src    *sourceState
	events []trace.Event
}

// shard owns one tree and the bounded queue feeding it. mu guards the tree
// and the applied counters of every source pinned to this shard, so a
// checkpoint that holds every shard lock sees positions exactly consistent
// with tree contents.
type shard struct {
	mu   sync.Mutex
	tree *core.Tree
	ch   chan batch
}

func (sh *shard) apply(b batch) {
	sh.mu.Lock()
	for _, e := range b.events {
		sh.tree.AddN(e.Value, e.Weight)
	}
	b.src.applied += uint64(len(b.events))
	sh.mu.Unlock()
}

// sourceState is the supervision record for one source.
type sourceState struct {
	spec  SourceSpec
	shard *shard

	// consumed is the reader-local stream position: events read from the
	// source and handed off (enqueued or dropped), including the resume
	// base restored from a checkpoint. Only the reader goroutine touches
	// it, so reopening after a failure can skip exactly this many events
	// without racing the appliers.
	consumed uint64

	// applied counts events of this source applied to the shard tree;
	// guarded by shard.mu.
	applied uint64

	dropped atomic.Uint64
	retries atomic.Uint64
	failed  atomic.Bool

	errMu   sync.Mutex
	lastErr error
}

func (ss *sourceState) noteErr(err error) {
	ss.errMu.Lock()
	ss.lastErr = err
	ss.errMu.Unlock()
}

func (ss *sourceState) lastError() error {
	ss.errMu.Lock()
	defer ss.errMu.Unlock()
	return ss.lastErr
}

// Ingestor runs the sharded, supervised, checkpointed ingest pipeline.
type Ingestor struct {
	opts    Options
	shards  []*shard
	sources []*sourceState
	logf    func(format string, args ...any)
}

// Open builds an ingestor over the given sources and, when a checkpoint
// directory is configured, recovers tree state and stream positions from
// the most recent intact checkpoint. A corrupt checkpoint is quarantined
// (renamed aside) and logged, then the previous one is tried; with no
// usable checkpoint the ingestor starts fresh. Open never panics on bad
// checkpoint bytes.
func Open(opts Options, specs []SourceSpec) (*Ingestor, error) {
	opts = opts.withDefaults()
	if len(specs) == 0 {
		return nil, errors.New("ingest: no sources")
	}
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.Name == "" || s.Open == nil {
			return nil, errors.New("ingest: source needs a name and an Open func")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("ingest: duplicate source name %q", s.Name)
		}
		seen[s.Name] = true
	}

	in := &Ingestor{opts: opts, logf: opts.Logf}
	for i := 0; i < opts.Shards; i++ {
		tree, err := core.New(opts.Tree)
		if err != nil {
			return nil, err
		}
		in.shards = append(in.shards, &shard{tree: tree, ch: make(chan batch, opts.QueueLen)})
	}
	for i, spec := range specs {
		in.sources = append(in.sources, &sourceState{
			spec:  spec,
			shard: in.shards[i%opts.Shards],
		})
	}

	if opts.CheckpointDir != "" {
		st, err := loadCheckpoint(opts.CheckpointDir, in.logf)
		if err != nil {
			return nil, err
		}
		if st != nil {
			if err := in.restore(st); err != nil {
				return nil, err
			}
		}
	}
	return in, nil
}

func (in *Ingestor) restore(st *checkpointState) error {
	if len(st.trees) != len(in.shards) {
		return fmt.Errorf("ingest: checkpoint has %d shards, ingestor has %d",
			len(st.trees), len(in.shards))
	}
	for i, tr := range st.trees {
		in.shards[i].tree = tr
	}
	byName := make(map[string]sourcePos, len(st.sources))
	for _, sp := range st.sources {
		byName[sp.name] = sp
	}
	for _, ss := range in.sources {
		sp, ok := byName[ss.spec.Name]
		if !ok {
			continue // new source since the checkpoint: starts at zero
		}
		ss.applied = sp.applied
		ss.dropped.Store(sp.dropped)
		ss.consumed = sp.applied + sp.dropped
		delete(byName, ss.spec.Name)
	}
	for name := range byName {
		in.logf("ingest: checkpoint position for unknown source %q ignored", name)
	}
	return nil
}

// Run drives the pipeline until every source is drained or ctx is
// canceled, then drains the queues, and (unless disabled) flushes a final
// checkpoint. It returns the joined terminal errors of permanently failed
// sources, or the final checkpoint error; a canceled ctx is a clean
// shutdown, not an error. Run must be called at most once per Ingestor.
func (in *Ingestor) Run(ctx context.Context) error {
	var workers sync.WaitGroup
	for _, sh := range in.shards {
		workers.Add(1)
		go func(sh *shard) {
			defer workers.Done()
			for b := range sh.ch {
				sh.apply(b)
			}
		}(sh)
	}

	var readers sync.WaitGroup
	for _, ss := range in.sources {
		readers.Add(1)
		go func(ss *sourceState) {
			defer readers.Done()
			in.supervise(ctx, ss)
		}(ss)
	}

	stopCk := make(chan struct{})
	var ckWg sync.WaitGroup
	if in.opts.CheckpointDir != "" {
		ckWg.Add(1)
		go func() {
			defer ckWg.Done()
			tick := time.NewTicker(in.opts.CheckpointEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := in.Checkpoint(); err != nil {
						in.logf("ingest: checkpoint failed: %v", err)
					}
				case <-stopCk:
					return
				}
			}
		}()
	}

	readers.Wait()
	close(stopCk)
	ckWg.Wait()
	// Readers are done; close the queues and let the workers drain what
	// was already accepted, so the final checkpoint covers it.
	for _, sh := range in.shards {
		close(sh.ch)
	}
	workers.Wait()

	var errs []error
	for _, ss := range in.sources {
		if ss.failed.Load() {
			errs = append(errs, fmt.Errorf("ingest: source %q failed permanently: %w",
				ss.spec.Name, ss.lastError()))
		}
	}
	if in.opts.CheckpointDir != "" && !in.opts.SkipFinalCheckpoint {
		if err := in.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("ingest: final checkpoint: %w", err))
		}
	}
	return errors.Join(errs...)
}

// backoff returns the jittered exponential delay before retry attempt
// (1-based).
func (in *Ingestor) backoff(attempt int) time.Duration {
	d := in.opts.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= in.opts.BackoffMax {
			d = in.opts.BackoffMax
			break
		}
	}
	// ±25% jitter.
	q := d / 4
	if q > 0 {
		d = d - q + rand.N(2*q)
	}
	return d
}

func (in *Ingestor) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// supervise opens and pumps one source, retrying transient failures with
// exponential backoff and declaring the source failed after MaxRetries
// consecutive attempts without progress.
func (in *Ingestor) supervise(ctx context.Context, ss *sourceState) {
	attempts := 0
	for {
		if ctx.Err() != nil {
			return
		}
		src, err := ss.spec.Open()
		if err == nil {
			var progressed bool
			progressed, err = in.pump(ctx, ss, src)
			closeSource(src)
			if err == nil {
				return // clean EOF: source done
			}
			if ctx.Err() != nil {
				return // shutdown, not a source failure
			}
			if progressed {
				attempts = 0
			}
		}
		attempts++
		ss.retries.Add(1)
		ss.noteErr(err)
		if attempts > in.opts.MaxRetries {
			ss.failed.Store(true)
			in.logf("ingest: source %q failed permanently after %d attempts: %v",
				ss.spec.Name, attempts, err)
			return
		}
		d := in.backoff(attempts)
		in.logf("ingest: source %q: %v (attempt %d/%d, retrying in %v)",
			ss.spec.Name, err, attempts, in.opts.MaxRetries, d)
		if !in.sleep(ctx, d) {
			return
		}
	}
}

// pump drains one opened source into the shard queue, skipping the events
// already accounted for by ss.consumed (crash recovery or a mid-stream
// reopen). Reads run in a helper goroutine so a stalled source can be
// detected and abandoned; the helper exits once the source unblocks or is
// closed. pump reports whether any new events were handed off, and returns
// nil only on clean EOF.
func (in *Ingestor) pump(ctx context.Context, ss *sourceState, src trace.Source) (progressed bool, err error) {
	type fetched struct {
		e  trace.Event
		ok bool
	}
	items := make(chan fetched)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		defer close(items)
		for {
			e, ok := src.Next()
			select {
			case items <- fetched{e, ok}:
				if !ok {
					return
				}
			case <-stop:
				return
			}
		}
	}()

	skip := ss.consumed
	pending := make([]trace.Event, 0, in.opts.BatchLen)
	flush := func() bool {
		if len(pending) == 0 {
			return true
		}
		evs := pending
		pending = make([]trace.Event, 0, in.opts.BatchLen)
		return in.enqueue(ctx, ss, evs)
	}

	flushT := time.NewTimer(in.opts.FlushEvery)
	flushT.Stop()
	defer flushT.Stop()
	var stallC <-chan time.Time
	var stallT *time.Timer
	if in.opts.ReadTimeout > 0 {
		stallT = time.NewTimer(in.opts.ReadTimeout)
		defer stallT.Stop()
		stallC = stallT.C
	}

	for {
		select {
		case it := <-items:
			if !it.ok {
				if !flush() {
					return progressed, ctx.Err()
				}
				if serr := sourceErr(src); serr != nil {
					return progressed, serr
				}
				return progressed, nil
			}
			if stallT != nil {
				stallT.Reset(in.opts.ReadTimeout)
			}
			if skip > 0 {
				skip--
				continue
			}
			pending = append(pending, it.e)
			progressed = true
			if len(pending) >= in.opts.BatchLen {
				if !flush() {
					return progressed, ctx.Err()
				}
			} else if len(pending) == 1 {
				flushT.Reset(in.opts.FlushEvery)
			}
		case <-flushT.C:
			if !flush() {
				return progressed, ctx.Err()
			}
		case <-stallC:
			flush()
			return progressed, fmt.Errorf("%w after %v", ErrStalled, in.opts.ReadTimeout)
		case <-ctx.Done():
			flush()
			return progressed, ctx.Err()
		}
	}
}

// enqueue hands a batch to the source's shard under the configured
// overload policy, advancing the reader-local stream position for both
// delivered and dropped events. It returns false only when a Block-policy
// enqueue was abandoned because ctx ended (those events stay uncounted and
// are replayed on the next run).
func (in *Ingestor) enqueue(ctx context.Context, ss *sourceState, evs []trace.Event) bool {
	b := batch{src: ss, events: evs}
	n := uint64(len(evs))
	if in.opts.Drop == DropNewest {
		select {
		case ss.shard.ch <- b:
		default:
			ss.dropped.Add(n)
		}
		ss.consumed += n
		return true
	}
	select {
	case ss.shard.ch <- b:
		ss.consumed += n
		return true
	case <-ctx.Done():
		return false
	}
}

// sourceErr surfaces a source's terminal error, if it exposes one (as
// trace.Reader and faults.Source do). A source without Err can only end
// cleanly.
func sourceErr(s trace.Source) error {
	if es, ok := s.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}

func closeSource(s trace.Source) {
	if c, ok := s.(interface{ Close() error }); ok {
		c.Close()
	}
}

// Estimate returns the summed lower-bound estimate for [lo, hi] across all
// shards. Each shard's estimate undercounts its slice of the stream by at
// most ε·n_i, so the sum undercounts the whole stream by at most ε·N()
// plus Dropped() events.
func (in *Ingestor) Estimate(lo, hi uint64) uint64 {
	var total uint64
	for _, sh := range in.shards {
		sh.mu.Lock()
		total += sh.tree.Estimate(lo, hi)
		sh.mu.Unlock()
	}
	return total
}

// N returns the total event weight applied across all shards.
func (in *Ingestor) N() uint64 {
	var total uint64
	for _, sh := range in.shards {
		sh.mu.Lock()
		total += sh.tree.N()
		sh.mu.Unlock()
	}
	return total
}

// Dropped returns the total number of events shed under DropNewest.
func (in *Ingestor) Dropped() uint64 {
	var total uint64
	for _, ss := range in.sources {
		total += ss.dropped.Load()
	}
	return total
}

// SourceStats reports one source's supervision state.
type SourceStats struct {
	Name    string
	Applied uint64 // events applied to its shard tree
	Dropped uint64 // events shed under DropNewest
	Retries uint64 // reopen attempts
	Failed  bool   // permanently failed
	LastErr string // most recent error, "" if none
}

// Stats is a point-in-time view of the whole pipeline.
type Stats struct {
	N           uint64 // total event weight applied
	Nodes       int    // live tree nodes across shards
	MemoryBytes int    // charged at core.NodeBytes per node
	Dropped     uint64 // events shed under DropNewest
	Sources     []SourceStats
}

// Stats gathers per-shard and per-source counters. The view is
// monitoring-grade: shards are sampled one at a time, not under a global
// cut.
func (in *Ingestor) Stats() Stats {
	var st Stats
	for _, sh := range in.shards {
		sh.mu.Lock()
		ts := sh.tree.Stats()
		sh.mu.Unlock()
		st.N += ts.N
		st.Nodes += ts.Nodes
		st.MemoryBytes += ts.MemoryBytes
	}
	for _, ss := range in.sources {
		s := SourceStats{
			Name:    ss.spec.Name,
			Dropped: ss.dropped.Load(),
			Retries: ss.retries.Load(),
			Failed:  ss.failed.Load(),
		}
		ss.shard.mu.Lock()
		s.Applied = ss.applied
		ss.shard.mu.Unlock()
		if err := ss.lastError(); err != nil {
			s.LastErr = err.Error()
		}
		st.Dropped += s.Dropped
		st.Sources = append(st.Sources, s)
	}
	return st
}
