// Package ingest is the resilient streaming front end of the profiler: it
// turns the one-shot "drain a source into a tree" model of the CLIs into a
// long-running subsystem that survives slow consumers, flaky sources, and
// process crashes.
//
// N supervised source readers feed S sharded core trees through bounded
// channels. Each source is pinned to one shard, so a source's events are
// applied in stream order and its checkpointed position is always a prefix
// of the stream — the property that makes crash recovery exactly-once.
// Queries aggregate across shards: each shard tree is a lower bound on the
// events it saw with error at most ε·n_i, so the summed estimate is a
// lower bound on the whole stream with error at most ε·Σn_i = ε·n. The
// paper's guarantee survives sharding unchanged.
//
// Overload is explicit: with the Block policy the queues exert lossless
// backpressure on readers; with DropNewest the readers shed load and count
// every dropped event, so the effective error bound ε·n + dropped stays
// honest instead of silently degrading.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rap/internal/admit"
	"rap/internal/audit"
	"rap/internal/core"
	"rap/internal/obs"
	"rap/internal/shard"
	"rap/internal/span"
	"rap/internal/trace"
)

// DropPolicy selects what a source reader does when its shard queue is
// full.
type DropPolicy int

const (
	// Block applies lossless backpressure: the reader waits for queue
	// space, slowing the source down to the profiler's pace.
	Block DropPolicy = iota
	// DropNewest sheds load: events that arrive while the queue is full
	// are dropped and counted, trading accuracy (accounted for) against
	// latency under overload.
	DropNewest
)

// ErrStalled is the error a source is retried with when a read exceeds
// ReadTimeout.
var ErrStalled = errors.New("ingest: source read stalled")

// Options configures an Ingestor. The zero value of every field selects a
// sensible default (see withDefaults); the zero Options therefore runs a
// single-shard, blocking, checkpoint-free ingestor over DefaultConfig
// trees.
type Options struct {
	// Tree is the configuration every shard tree is built with. The zero
	// Config selects core.DefaultConfig.
	Tree core.Config

	// Shards is the number of tree shards (default 4). Checkpoints record
	// the shard count; recovery requires it unchanged.
	Shards int

	// QueueLen is the per-shard bounded channel capacity in batches
	// (default 64).
	QueueLen int

	// BatchLen is how many events a reader coalesces per queue entry
	// (default 256).
	BatchLen int

	// FlushEvery bounds how long a partial batch may sit in a reader
	// before being enqueued anyway (default 50ms), keeping live sources
	// fresh without giving up batching.
	FlushEvery time.Duration

	// Drop selects the overload policy (default Block).
	Drop DropPolicy

	// ReadTimeout, when > 0, bounds how long a single source read may
	// take before the source is declared stalled and reopened.
	ReadTimeout time.Duration

	// MaxRetries is how many consecutive failed attempts (open errors,
	// stalls, or read errors with no progress in between) a source gets
	// before it is marked permanently failed (default 5).
	MaxRetries int

	// BackoffBase/BackoffMax shape the exponential retry backoff
	// (defaults 50ms and 5s). Each attempt waits roughly
	// base·2^(attempt-1), capped at max, with ±25% jitter so a fleet of
	// failing sources does not retry in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// CheckpointDir, when set, enables crash-safe checkpointing into that
	// directory. Empty disables checkpointing entirely.
	CheckpointDir string

	// CheckpointEvery is the wall-clock checkpoint cadence (default 10s).
	// It bounds the replay window: after a crash at most this much of the
	// stream is re-read from the sources.
	CheckpointEvery time.Duration

	// SkipFinalCheckpoint suppresses the checkpoint normally flushed when
	// Run winds down. Tests use it to simulate a hard crash.
	SkipFinalCheckpoint bool

	// Logf receives operational log lines (retries, quarantined
	// checkpoints, failed sources) rendered as "msg key=value ...".
	// Default log.Printf. Ignored when Logger is set.
	Logf func(format string, args ...any)

	// Logger, when set, receives structured operational logs with
	// per-source fields (source, attempt, backoff, err) — the same labels
	// the metrics registry uses, so logs and metrics can be joined. When
	// nil, a handler bridging to Logf is installed.
	Logger *slog.Logger

	// Metrics, when set, registers pipeline metrics on this registry:
	// per-shard tree counters and gauges (splits, merges, nodes, ε·n
	// error budget, estimate latency), per-source queue depth/capacity,
	// drops, retries, backoff state, and checkpoint counters/latency.
	Metrics *obs.Registry

	// StructuralTrace, when set (together with Metrics), records sampled
	// split/merge decisions from every shard tree.
	StructuralTrace *obs.StructuralTrace

	// Audit, when set, runs the online accuracy self-audit over this
	// pipeline: per-shard taps shadow the stream, and periodic passes
	// compare the engine's estimates against exact counts for the sampled
	// ranges. The auditor attaches after checkpoint recovery, so restored
	// mass is pre-audit slack, never fabricated truth. Audit metrics and
	// violation trace events land on Metrics / StructuralTrace when those
	// are set.
	Audit *audit.Options

	// AuditEvery is the cadence of periodic audit passes in Run (default
	// 10s). A final pass always runs after the queues drain.
	AuditEvery time.Duration

	// Admission, when set, wires the randomized admission frontend in
	// front of every shard tree: cold points must win a geometric coin
	// flip before they may create structure, and an overload watchdog
	// escalates the odds under arena or churn pressure. Refused weight
	// lands in the trees' unadmitted ledgers (reconciled per source in
	// Stats and preserved across checkpoints) and is folded into the
	// audit's certified budget, so Audit+Admission still verifies the
	// end-to-end bound. The frontend's Logger/Trace default to this
	// Options' Logger and StructuralTrace when unset.
	Admission *admit.Options

	// AdmissionObserveEvery is the cadence at which Run feeds the
	// admission watchdog an engine-wide stats snapshot (default 1s), so
	// it can escalate on arena pressure and — crucially — notice calm and
	// de-escalate even when the gates see no traffic.
	AdmissionObserveEvery time.Duration

	// ReadSnapshots enables the epoch-published read path on the engine:
	// immutable merged snapshots are published on a cadence and
	// Estimate/EstimateBounds/HotRanges answer from the current epoch
	// with zero lock acquisitions, so queries (the rapd /v1 API, audits'
	// operators, dashboards) never contend with ingest.
	ReadSnapshots bool

	// SnapshotEvery is the offered-event cadence between epoch publishes
	// (default core.DefaultPublishEvery, 64Ki events). Only meaningful
	// with ReadSnapshots.
	SnapshotEvery uint64

	// SnapshotMaxStale bounds wall-clock epoch staleness on slow or idle
	// streams (default 1s): Run publishes a fresh epoch on this cadence
	// whenever events arrived since the last publish. Only meaningful
	// with ReadSnapshots.
	SnapshotMaxStale time.Duration

	// Tracer, when set, threads request-scoped spans through the pipeline:
	// each enqueued batch becomes a trace whose children cover the
	// queue-wait and shard-apply stages (with merge-batch and
	// epoch-publish children attached when the apply triggered them), and
	// each checkpoint becomes a trace with cut and write children. The
	// tracer's sampling policy decides what is kept; unsampled batches pay
	// one small allocation per 256-event batch.
	Tracer *span.Tracer
}

// logfHandler is a minimal slog.Handler that renders records through a
// printf-style sink, keeping the legacy Logf option (and tests that
// capture it) working under structured logging.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var sb strings.Builder
	sb.WriteString(r.Message)
	for _, a := range h.attrs {
		fmt.Fprintf(&sb, " %s=%v", a.Key, a.Value)
	}
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&sb, " %s=%v", a.Key, a.Value)
		return true
	})
	h.logf("%s", sb.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return h
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }

func (o Options) withDefaults() Options {
	if o.Tree == (core.Config{}) {
		o.Tree = core.DefaultConfig()
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 64
	}
	if o.BatchLen <= 0 {
		o.BatchLen = 256
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 50 * time.Millisecond
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 5
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 10 * time.Second
	}
	if o.AuditEvery <= 0 {
		o.AuditEvery = 10 * time.Second
	}
	if o.AdmissionObserveEvery <= 0 {
		o.AdmissionObserveEvery = time.Second
	}
	if o.SnapshotMaxStale <= 0 {
		o.SnapshotMaxStale = time.Second
	}
	if o.Logger == nil {
		logf := o.Logf
		if logf == nil {
			logf = log.Printf
		}
		o.Logger = slog.New(logfHandler{logf: logf})
	}
	return o
}

// batch is one queue entry: a run of events from a single source.
type batch struct {
	src    *sourceState
	events []trace.Event

	// enqueuedAt is stamped by enqueue when latency metrics or tracing are
	// enabled, so the drain can observe the queue-wait stage. Zero when
	// both are off: the hot path then pays nothing for the
	// instrumentation.
	enqueuedAt time.Time

	// sp is the batch's root span ("ingest.batch"), started at enqueue
	// when a Tracer is configured. The drain worker attaches the
	// stage children and ends it.
	sp *span.Span
}

// shardQueue is the bounded queue feeding one shard of the engine. The
// engine's per-shard lock guards both the tree and the applied counters
// of every source pinned to this shard, so a checkpoint cut that holds
// every shard lock sees positions exactly consistent with tree contents.
type shardQueue struct {
	idx int
	ch  chan batch
}

// sourceState is the supervision record for one source.
type sourceState struct {
	spec  SourceSpec
	queue *shardQueue

	// consumed is the reader-local stream position: events read from the
	// source and handed off (enqueued or dropped), including the resume
	// base restored from a checkpoint. Only the reader goroutine touches
	// it, so reopening after a failure can skip exactly this many events
	// without racing the appliers.
	consumed uint64

	// applied counts events of this source applied to the shard tree;
	// guarded by the engine's lock on this source's shard. Events the
	// admission gate refuses still count as applied — they advanced the
	// stream position — and are additionally counted in unadmitted.
	applied uint64

	// unadmitted counts events of this source the admission gate refused;
	// guarded like applied, and checkpointed with it so recovery preserves
	// the per-source ledger.
	unadmitted uint64

	dropped atomic.Uint64
	retries atomic.Uint64
	failed  atomic.Bool

	// backoffUntil is the unix-nano deadline of the current retry
	// backoff, 0 when the source is not backing off. Exported through
	// SourceStats.Backoff and the rap_ingest_backoff_seconds gauge.
	backoffUntil atomic.Int64

	errMu   sync.Mutex
	lastErr error
}

// backoffRemaining returns how much of the current retry backoff is left.
func (ss *sourceState) backoffRemaining(now time.Time) time.Duration {
	until := ss.backoffUntil.Load()
	if until == 0 {
		return 0
	}
	if d := time.Duration(until - now.UnixNano()); d > 0 {
		return d
	}
	return 0
}

func (ss *sourceState) noteErr(err error) {
	ss.errMu.Lock()
	ss.lastErr = err
	ss.errMu.Unlock()
}

func (ss *sourceState) lastError() error {
	ss.errMu.Lock()
	defer ss.errMu.Unlock()
	return ss.lastErr
}

// Ingestor runs the sharded, supervised, checkpointed ingest pipeline.
// Tree state lives in a shard.Engine; the ingestor owns the queues,
// supervision, and checkpointing around it.
type Ingestor struct {
	opts    Options
	engine  *shard.Engine
	queues  []*shardQueue
	sources []*sourceState
	log     *slog.Logger
	aud     *audit.Auditor
	adm     *admit.Frontend

	// Per-stage latency histograms, nil unless Metrics is configured.
	hQueueWait *obs.Histogram   // enqueue → drain wait per batch
	hApply     []*obs.Histogram // drain → applied, per shard

	// Adaptive (RAP-tree-backed) companions to the fixed ladders above,
	// nil unless Metrics is configured. Global across shards: the point is
	// adaptive resolution over the latency distribution, and a per-shard
	// split would just dilute each tree's mass.
	aQueueWait *obs.AdaptiveHistogram
	aApply     *obs.AdaptiveHistogram

	// Checkpoint bookkeeping, updated by Checkpoint/loadCheckpoint and
	// exported through Stats and the rap_checkpoint_* metrics.
	ckWritten     atomic.Uint64
	ckFailed      atomic.Uint64
	ckQuarantined atomic.Uint64
	ckLastNano    atomic.Int64 // unix nanos of the last successful write
	ckLastSize    atomic.Int64 // bytes of the last successful write
	ckLastDur     atomic.Int64 // wall nanos of the last successful write
	ckDur         *obs.Histogram
	ckCutDur      *obs.Histogram // shard-lock cut stage of a checkpoint
	ckWriteDur    *obs.Histogram // encode+write+fsync+rename stage
	openedAt      time.Time      // staleness origin before the first checkpoint
}

// Open builds an ingestor over the given sources and, when a checkpoint
// directory is configured, recovers tree state and stream positions from
// the most recent intact checkpoint. A corrupt checkpoint is quarantined
// (renamed aside) and logged, then the previous one is tried; with no
// usable checkpoint the ingestor starts fresh. Open never panics on bad
// checkpoint bytes.
func Open(opts Options, specs []SourceSpec) (*Ingestor, error) {
	opts = opts.withDefaults()
	if len(specs) == 0 {
		return nil, errors.New("ingest: no sources")
	}
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.Name == "" || s.Open == nil {
			return nil, errors.New("ingest: source needs a name and an Open func")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("ingest: duplicate source name %q", s.Name)
		}
		seen[s.Name] = true
	}

	in := &Ingestor{opts: opts, log: opts.Logger, openedAt: time.Now()}
	engine, err := shard.New(opts.Tree, opts.Shards)
	if err != nil {
		return nil, err
	}
	in.engine = engine
	for i := 0; i < opts.Shards; i++ {
		in.queues = append(in.queues, &shardQueue{idx: i, ch: make(chan batch, opts.QueueLen)})
	}
	for i, spec := range specs {
		in.sources = append(in.sources, &sourceState{
			spec:  spec,
			queue: in.queues[i%opts.Shards],
		})
	}

	if opts.CheckpointDir != "" {
		st, err := in.loadCheckpoint()
		if err != nil {
			return nil, err
		}
		if st != nil {
			if err := in.restore(st); err != nil {
				return nil, err
			}
		}
	}
	// Enable the epoch read path after restore so the initial epoch
	// already carries any recovered state (and before metrics register,
	// so the rap_epoch_* gauges find a live publisher).
	if opts.ReadSnapshots {
		engine.EnableReadSnapshots(opts.SnapshotEvery)
	}
	// Install the admission frontend before the audit attaches: the gates
	// must already be in place when the auditor reads its baseline, so the
	// mass accounting (baseN + tapN == n + unadmitted) starts consistent.
	if opts.Admission != nil {
		admOpts := *opts.Admission
		if admOpts.Logger == nil {
			admOpts.Logger = opts.Logger
		}
		if admOpts.Trace == nil {
			admOpts.Trace = opts.StructuralTrace
		}
		in.adm = admit.New(admOpts)
		gates := in.adm.Gates(engine.Config().UniverseBits, engine.Shards())
		engine.SetShardAdmitters(func(i int) core.Admitter { return gates[i] })
		if opts.Metrics != nil {
			in.adm.Register(opts.Metrics)
		}
	}
	// Attach the audit after restore so recovered mass is counted as
	// pre-audit slack (baseN), not as stream the taps should have seen.
	if opts.Audit != nil {
		aud := audit.New(*opts.Audit)
		taps, err := aud.Attach(engine.Config(), engine, engine.Shards())
		if err != nil {
			return nil, err
		}
		engine.SetShardTaps(func(i int) core.Tap { return taps[i] })
		aud.Register(opts.Metrics, opts.StructuralTrace)
		in.aud = aud
	}
	// Register metrics after restore so hooks land on the live trees.
	if opts.Metrics != nil {
		in.registerMetrics()
	}
	return in, nil
}

// Auditor returns the accuracy auditor wired into this pipeline, or nil
// when Options.Audit was not set. Callers may run extra Audit passes (the
// rapd /audit endpoint does); passes serialize with the periodic ones.
func (in *Ingestor) Auditor() *audit.Auditor {
	return in.aud
}

// Admission returns the admission frontend wired into this pipeline, or
// nil when Options.Admission was not set.
func (in *Ingestor) Admission() *admit.Frontend {
	return in.adm
}

// registerMetrics wires the three instrumentation surfaces onto
// opts.Metrics: per-shard tree hooks (counters, latency histograms,
// structural trace), scrape-time gauges over shard and queue state, and
// checkpoint counters. Scrape-time Funcs take the owning shard lock, so
// an exposition is a consistent-enough monitoring view without ever
// blocking the hot path for longer than one scrape.
func (in *Ingestor) registerMetrics() {
	reg := in.opts.Metrics
	eps := in.opts.Tree.Epsilon
	in.engine.SetShardHooks(func(i int) *core.Hooks {
		return obs.TreeHooks(reg, in.opts.StructuralTrace, strconv.Itoa(i))
	})
	for i := 0; i < in.engine.Shards(); i++ {
		i := i
		labels := []obs.Label{obs.L("shard", strconv.Itoa(i))}
		treeStat := func(f func(core.Stats) float64) func() float64 {
			return func() float64 { return f(in.engine.ShardStats(i)) }
		}
		reg.CounterFunc("rap_tree_events_total", "Total event weight applied to the shard tree.",
			treeStat(func(st core.Stats) float64 { return float64(st.N) }), labels...)
		reg.GaugeFunc("rap_tree_nodes", "Live nodes in the shard tree.",
			treeStat(func(st core.Stats) float64 { return float64(st.Nodes) }), labels...)
		reg.GaugeFunc("rap_tree_nodes_max", "High-water mark of live nodes in the shard tree.",
			treeStat(func(st core.Stats) float64 { return float64(st.MaxNodes) }), labels...)
		reg.GaugeFunc("rap_tree_memory_bytes", "Shard tree memory under the paper's 16 B/node cost model.",
			treeStat(func(st core.Stats) float64 { return float64(st.MemoryBytes) }), labels...)
		reg.GaugeFunc("rap_tree_arena_bytes", "Physical node-arena footprint of the shard tree, including growth slack.",
			treeStat(func(st core.Stats) float64 { return float64(st.ArenaBytes) }), labels...)
		reg.GaugeFunc("rap_tree_error_budget", "Current ε·n error budget of the shard tree, in events.",
			treeStat(func(st core.Stats) float64 { return eps * float64(st.N) }), labels...)
		reg.GaugeFunc("rap_tree_counter_pool_bytes", "Physical counter-pool footprint of the shard tree (included in rap_tree_arena_bytes).",
			treeStat(func(st core.Stats) float64 { return float64(st.CounterPoolBytes) }), labels...)
		reg.CounterFunc("rap_tree_counter_promotions_total", "Counter overflow promotions to a wider pool class in the shard tree.",
			treeStat(func(st core.Stats) float64 { return float64(st.CounterPromotions) }), labels...)
		for _, wc := range []struct {
			width string
			get   func(core.Stats) float64
		}{
			{"8", func(st core.Stats) float64 { return float64(st.CounterSlots8) }},
			{"16", func(st core.Stats) float64 { return float64(st.CounterSlots16) }},
			{"32", func(st core.Stats) float64 { return float64(st.CounterSlots32) }},
			{"64", func(st core.Stats) float64 { return float64(st.CounterSlots64) }},
		} {
			reg.GaugeFunc("rap_tree_counter_slots", "Live pooled counters in the shard tree by width class.",
				treeStat(wc.get), append([]obs.Label{obs.L("width", wc.width)}, labels...)...)
		}
	}
	for _, ss := range in.sources {
		ss := ss
		labels := []obs.Label{obs.L("source", ss.spec.Name)}
		reg.GaugeFunc("rap_ingest_queue_depth", "Batches waiting in the source's shard queue.",
			func() float64 { return float64(len(ss.queue.ch)) }, labels...)
		reg.GaugeFunc("rap_ingest_queue_capacity", "Capacity of the source's shard queue, in batches.",
			func() float64 { return float64(cap(ss.queue.ch)) }, labels...)
		reg.CounterFunc("rap_ingest_applied_total", "Events applied to the shard tree from this source.",
			func() float64 {
				var applied uint64
				in.engine.WithShard(ss.queue.idx, func(*core.Tree) { applied = ss.applied })
				return float64(applied)
			}, labels...)
		reg.CounterFunc("rap_ingest_unadmitted_total", "Events from this source refused by the admission gate.",
			func() float64 {
				var u uint64
				in.engine.WithShard(ss.queue.idx, func(*core.Tree) { u = ss.unadmitted })
				return float64(u)
			}, labels...)
		reg.CounterFunc("rap_ingest_dropped_total", "Events shed under DropNewest from this source.",
			func() float64 { return float64(ss.dropped.Load()) }, labels...)
		reg.CounterFunc("rap_ingest_retries_total", "Reopen attempts for this source.",
			func() float64 { return float64(ss.retries.Load()) }, labels...)
		reg.GaugeFunc("rap_ingest_failed", "1 when the source has permanently failed.",
			func() float64 {
				if ss.failed.Load() {
					return 1
				}
				return 0
			}, labels...)
		reg.GaugeFunc("rap_ingest_backoff_seconds", "Seconds remaining in the source's current retry backoff.",
			func() float64 { return ss.backoffRemaining(time.Now()).Seconds() }, labels...)
	}
	reg.CounterFunc("rap_checkpoint_written_total", "Checkpoints written successfully.",
		func() float64 { return float64(in.ckWritten.Load()) })
	reg.CounterFunc("rap_checkpoint_failed_total", "Checkpoint writes that failed.",
		func() float64 { return float64(in.ckFailed.Load()) })
	reg.CounterFunc("rap_checkpoint_quarantined_total", "Corrupt checkpoints quarantined on load.",
		func() float64 { return float64(in.ckQuarantined.Load()) })
	reg.GaugeFunc("rap_checkpoint_last_size_bytes", "Size of the last successful checkpoint.",
		func() float64 { return float64(in.ckLastSize.Load()) })
	reg.GaugeFunc("rap_checkpoint_last_age_seconds", "Seconds since the last successful checkpoint; -1 before the first.",
		func() float64 {
			last := in.ckLastNano.Load()
			if last == 0 {
				return -1
			}
			return time.Since(time.Unix(0, last)).Seconds()
		})
	reg.GaugeFunc("rap_checkpoint_staleness_seconds",
		"Seconds without a durable checkpoint: since the last successful write, or since Open before the first. 0 when checkpointing is disabled. Unlike rap_checkpoint_last_age_seconds this is alertable from startup — it climbs instead of sitting at -1.",
		func() float64 {
			if in.opts.CheckpointDir == "" {
				return 0
			}
			last := in.ckLastNano.Load()
			if last == 0 {
				return time.Since(in.openedAt).Seconds()
			}
			return time.Since(time.Unix(0, last)).Seconds()
		})
	if pub := in.engine.Publisher(); pub != nil {
		reg.GaugeFunc("rap_epoch_seq", "Sequence number of the current published read epoch.",
			func() float64 { return float64(pub.Seq()) })
		reg.GaugeFunc("rap_epoch_cut_events", "Admitted event weight at the current epoch's cut.",
			func() float64 {
				if e := pub.Current(); e != nil {
					return float64(e.CutN())
				}
				return 0
			})
		reg.GaugeFunc("rap_epoch_age_seconds", "Seconds since the current epoch was published — the wall-clock staleness of lock-free query answers.",
			func() float64 {
				at := pub.LastPublishedAt()
				if at.IsZero() {
					return -1
				}
				return time.Since(at).Seconds()
			})
		reg.GaugeFunc("rap_epoch_pinned_readers", "Readers currently holding a pinned epoch (Reader handles not yet released).",
			func() float64 { return float64(pub.Pinned()) })
		reg.CounterFunc("rap_epoch_published_total", "Epochs published since start.",
			func() float64 { return float64(pub.Published()) })
		reg.CounterFunc("rap_epoch_retired_total", "Superseded epochs whose reader count drained.",
			func() float64 { return float64(pub.Retired()) })
	}
	if tr := in.opts.StructuralTrace; tr != nil {
		reg.CounterFunc("rap_trace_evicted_total",
			"Structural trace events the ring overwrote before any export read them.",
			func() float64 { return float64(tr.Evicted()) })
	}
	in.ckDur = reg.Histogram("rap_checkpoint_seconds", "Wall time of one checkpoint write.", obs.DurationBuckets())
	in.ckCutDur = reg.Duration("rap_checkpoint_cut_seconds",
		"Checkpoint cut stage: wall time holding every shard lock to snapshot trees and positions.")
	in.ckWriteDur = reg.Duration("rap_checkpoint_write_seconds",
		"Checkpoint persist stage: encode, write, fsync, and rename of the checkpoint file.")
	in.hQueueWait = reg.Duration("rap_ingest_queue_wait_seconds",
		"Time a batch spends in its shard queue between enqueue and drain.")
	in.hApply = make([]*obs.Histogram, in.engine.Shards())
	for i := range in.hApply {
		in.hApply[i] = reg.Duration("rap_ingest_apply_seconds",
			"Time to fold one drained batch into the shard tree, including the shard lock wait.",
			obs.L("shard", strconv.Itoa(i)))
	}
	in.aQueueWait = obs.NewAdaptiveHistogram()
	in.aQueueWait.Register(reg, "queue_wait")
	in.aApply = obs.NewAdaptiveHistogram()
	in.aApply.Register(reg, "apply")
}

// Profiles returns the pipeline's adaptive latency histograms by stage
// name, for the /profilez endpoint. Nil until metrics are registered.
func (in *Ingestor) Profiles() map[string]*obs.AdaptiveHistogram {
	if in.aQueueWait == nil {
		return nil
	}
	return map[string]*obs.AdaptiveHistogram{
		"queue_wait": in.aQueueWait,
		"apply":      in.aApply,
	}
}

func (in *Ingestor) restore(st *checkpointState) error {
	if len(st.trees) != in.engine.Shards() {
		return fmt.Errorf("ingest: checkpoint has %d shards, ingestor has %d",
			len(st.trees), in.engine.Shards())
	}
	for i, tr := range st.trees {
		in.engine.AdoptShard(i, tr)
	}
	byName := make(map[string]sourcePos, len(st.sources))
	for _, sp := range st.sources {
		byName[sp.name] = sp
	}
	for _, ss := range in.sources {
		sp, ok := byName[ss.spec.Name]
		if !ok {
			continue // new source since the checkpoint: starts at zero
		}
		ss.applied = sp.applied
		ss.dropped.Store(sp.dropped)
		ss.unadmitted = sp.unadmitted
		ss.consumed = sp.applied + sp.dropped
		delete(byName, ss.spec.Name)
	}
	for name := range byName {
		in.log.Warn("ingest: checkpoint position for unknown source ignored", "source", name)
	}
	return nil
}

// apply folds one batch into the engine under its shard's lock, advancing
// the source's applied position in the same critical section so
// checkpoint cuts stay exact. The whole chunk is handed to the tree's
// batched fast path; scratch is the worker-local conversion buffer,
// returned for reuse so steady-state draining does not allocate.
func (in *Ingestor) apply(q *shardQueue, b batch, scratch []core.Sample) []core.Sample {
	var start time.Time
	if in.hApply != nil || b.sp != nil {
		start = time.Now()
		if !b.enqueuedAt.IsZero() {
			in.observeQueueWait(b, start)
		}
	}

	// Only a kept batch pays for stat deltas and trigger attribution; the
	// merge-batch / epoch-publish children exist to explain a slow apply
	// in a recorded trace, not to census those events.
	sampled := b.sp.Sampled()
	var mergesBefore, mergesAfter uint64
	pub := in.engine.Publisher()
	var pubBefore uint64
	if sampled && pub != nil {
		pubBefore = pub.Published()
	}

	scratch = scratch[:0]
	for _, e := range b.events {
		scratch = append(scratch, core.Sample{Value: e.Value, Weight: e.Weight})
	}
	in.engine.WithShard(q.idx, func(tr *core.Tree) {
		if sampled {
			mergesBefore = tr.Stats().MergeBatches
		}
		// The tree's ledger delta across this batch is exactly the weight
		// the admission gate refused from it — both reads happen under the
		// same shard lock as the gate, so the attribution is exact.
		before := tr.UnadmittedN()
		tr.AddSamples(scratch)
		b.src.applied += uint64(len(b.events))
		b.src.unadmitted += tr.UnadmittedN() - before
		if sampled {
			mergesAfter = tr.Stats().MergeBatches
		}
	})

	if in.hApply == nil && b.sp == nil {
		return scratch
	}
	end := time.Now()
	applyDur := end.Sub(start)
	if in.hApply != nil {
		in.hApply[q.idx].Observe(applyDur.Seconds())
	}
	if b.sp == nil {
		if in.aApply != nil {
			in.aApply.Observe(applyDur)
		}
		return scratch
	}

	ap := in.opts.Tracer.StartChildAt(b.sp.Context(), "apply", start)
	ap.SetAttr("shard", strconv.Itoa(q.idx))
	if sampled {
		// Merge batches and epoch publishes happen inside the tree during
		// AddSamples with no context of their own; deltas across the apply
		// attribute them to this batch, as children covering the apply
		// window with the trigger named.
		if mergesAfter > mergesBefore {
			mb := in.opts.Tracer.StartChildAt(ap.Context(), "merge_batch", start)
			mb.SetAttr("batches", strconv.FormatUint(mergesAfter-mergesBefore, 10))
			mb.EndAt(end)
		}
		if pub != nil {
			if d := pub.Published() - pubBefore; d > 0 {
				ep := in.opts.Tracer.StartChildAt(ap.Context(), "epoch_publish", start)
				ep.SetAttr("trigger", "offered-mass cadence")
				ep.SetAttr("epochs", strconv.FormatUint(d, 10))
				ep.EndAt(end)
			}
		}
	}
	ap.EndAt(end)
	if in.aApply != nil {
		if c := ap.Context(); sampled {
			in.aApply.ObserveExemplar(applyDur, c.Trace.String(), c.Span.String())
		} else {
			in.aApply.Observe(applyDur)
		}
	}
	b.sp.SetAttr("source", b.src.spec.Name)
	b.sp.SetAttr("events", strconv.Itoa(len(b.events)))
	b.sp.EndAt(end)
	return scratch
}

// observeQueueWait records the enqueue→drain wait on the fixed and
// adaptive histograms and, when the batch is traced, as a queue_wait child
// span covering the wait interval.
func (in *Ingestor) observeQueueWait(b batch, drained time.Time) {
	wait := drained.Sub(b.enqueuedAt)
	if in.hQueueWait != nil {
		in.hQueueWait.Observe(wait.Seconds())
	}
	var qw *span.Span
	if b.sp != nil {
		qw = in.opts.Tracer.StartChildAt(b.sp.Context(), "queue_wait", b.enqueuedAt)
		qw.EndAt(drained)
	}
	if in.aQueueWait != nil {
		if c := qw.Context(); qw.Sampled() {
			in.aQueueWait.ObserveExemplar(wait, c.Trace.String(), c.Span.String())
		} else {
			in.aQueueWait.Observe(wait)
		}
	}
}

// Run drives the pipeline until every source is drained or ctx is
// canceled, then drains the queues, and (unless disabled) flushes a final
// checkpoint. It returns the joined terminal errors of permanently failed
// sources, or the final checkpoint error; a canceled ctx is a clean
// shutdown, not an error. Run must be called at most once per Ingestor.
func (in *Ingestor) Run(ctx context.Context) error {
	var workers sync.WaitGroup
	for _, q := range in.queues {
		workers.Add(1)
		go func(q *shardQueue) {
			defer workers.Done()
			scratch := make([]core.Sample, 0, in.opts.BatchLen)
			for b := range q.ch {
				scratch = in.apply(q, b, scratch)
			}
		}(q)
	}

	var readers sync.WaitGroup
	for _, ss := range in.sources {
		readers.Add(1)
		go func(ss *sourceState) {
			defer readers.Done()
			in.supervise(ctx, ss)
		}(ss)
	}

	stopCk := make(chan struct{})
	var ckWg sync.WaitGroup
	if in.opts.CheckpointDir != "" {
		ckWg.Add(1)
		go func() {
			defer ckWg.Done()
			tick := time.NewTicker(in.opts.CheckpointEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := in.Checkpoint(); err != nil {
						in.log.Error("ingest: checkpoint failed", "err", err)
					}
				case <-stopCk:
					return
				}
			}
		}()
	}

	stopAdm := make(chan struct{})
	var admWg sync.WaitGroup
	if in.adm != nil {
		admWg.Add(1)
		go func() {
			defer admWg.Done()
			tick := time.NewTicker(in.opts.AdmissionObserveEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					in.adm.Observe(in.engine.Stats())
				case <-stopAdm:
					return
				}
			}
		}()
	}

	stopPub := make(chan struct{})
	var pubWg sync.WaitGroup
	if in.opts.ReadSnapshots {
		pubWg.Add(1)
		go func() {
			defer pubWg.Done()
			tick := time.NewTicker(in.opts.SnapshotMaxStale)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					// Publish only when events arrived since the last epoch:
					// an idle stream keeps its (already current) epoch instead
					// of burning clones on nothing.
					if in.engine.PublishPending() > 0 {
						in.engine.PublishNow()
					}
				case <-stopPub:
					return
				}
			}
		}()
	}

	stopAudit := make(chan struct{})
	var audWg sync.WaitGroup
	if in.aud != nil {
		audWg.Add(1)
		go func() {
			defer audWg.Done()
			tick := time.NewTicker(in.opts.AuditEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					in.auditPass()
				case <-stopAudit:
					return
				}
			}
		}()
	}

	readers.Wait()
	close(stopCk)
	ckWg.Wait()
	// Readers are done; close the queues and let the workers drain what
	// was already accepted, so the final checkpoint covers it.
	for _, q := range in.queues {
		close(q.ch)
	}
	workers.Wait()
	close(stopPub)
	pubWg.Wait()
	if in.opts.ReadSnapshots {
		// The queues are fully drained: publish one last epoch so readers
		// see the complete stream.
		in.engine.PublishNow()
	}
	close(stopAdm)
	admWg.Wait()
	close(stopAudit)
	audWg.Wait()
	if in.aud != nil {
		// One final pass over the fully drained stream, so even a short
		// run gets at least one complete accuracy verdict.
		in.auditPass()
	}

	var errs []error
	for _, ss := range in.sources {
		if ss.failed.Load() {
			errs = append(errs, fmt.Errorf("ingest: source %q failed permanently: %w",
				ss.spec.Name, ss.lastError()))
		}
	}
	if in.opts.CheckpointDir != "" && !in.opts.SkipFinalCheckpoint {
		if err := in.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("ingest: final checkpoint: %w", err))
		}
	}
	return errors.Join(errs...)
}

// auditPass runs one audit pass and logs its outcome; a violation is an
// operational emergency (the engine broke its accuracy contract), so it
// logs at error level with the verdict attached.
func (in *Ingestor) auditPass() {
	rep, err := in.aud.Audit()
	if err != nil {
		in.log.Error("ingest: audit pass failed", "err", err)
		return
	}
	if rep.PassViolations > 0 {
		in.log.Error("ingest: accuracy contract violated",
			"violations", rep.PassViolations,
			"max_underestimate", rep.MaxUnderestimate,
			"worst_ratio", rep.WorstRatio)
	}
}

// backoff returns the jittered exponential delay before retry attempt
// (1-based).
func (in *Ingestor) backoff(attempt int) time.Duration {
	d := in.opts.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= in.opts.BackoffMax {
			d = in.opts.BackoffMax
			break
		}
	}
	// ±25% jitter.
	q := d / 4
	if q > 0 {
		d = d - q + rand.N(2*q)
	}
	return d
}

func (in *Ingestor) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// supervise opens and pumps one source, retrying transient failures with
// exponential backoff and declaring the source failed after MaxRetries
// consecutive attempts without progress.
func (in *Ingestor) supervise(ctx context.Context, ss *sourceState) {
	attempts := 0
	for {
		if ctx.Err() != nil {
			return
		}
		src, err := ss.spec.Open()
		if err == nil {
			var progressed bool
			progressed, err = in.pump(ctx, ss, src)
			closeSource(src)
			if err == nil {
				return // clean EOF: source done
			}
			if ctx.Err() != nil {
				return // shutdown, not a source failure
			}
			if progressed {
				attempts = 0
			}
		}
		attempts++
		ss.retries.Add(1)
		ss.noteErr(err)
		if attempts > in.opts.MaxRetries {
			ss.failed.Store(true)
			in.log.Error("ingest: source failed permanently",
				"source", ss.spec.Name, "attempts", attempts, "err", err)
			return
		}
		d := in.backoff(attempts)
		in.log.Warn("ingest: source read failed, retrying",
			"source", ss.spec.Name, "err", err,
			"attempt", attempts, "max_retries", in.opts.MaxRetries, "backoff", d)
		ss.backoffUntil.Store(time.Now().Add(d).UnixNano())
		ok := in.sleep(ctx, d)
		ss.backoffUntil.Store(0)
		if !ok {
			return
		}
	}
}

// pump drains one opened source into the shard queue, skipping the events
// already accounted for by ss.consumed (crash recovery or a mid-stream
// reopen). Reads run in a helper goroutine so a stalled source can be
// detected and abandoned; the helper exits once the source unblocks or is
// closed. pump reports whether any new events were handed off, and returns
// nil only on clean EOF.
func (in *Ingestor) pump(ctx context.Context, ss *sourceState, src trace.Source) (progressed bool, err error) {
	type fetched struct {
		e  trace.Event
		ok bool
	}
	items := make(chan fetched)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		defer close(items)
		for {
			e, ok := src.Next()
			select {
			case items <- fetched{e, ok}:
				if !ok {
					return
				}
			case <-stop:
				return
			}
		}
	}()

	skip := ss.consumed
	pending := make([]trace.Event, 0, in.opts.BatchLen)
	flush := func() bool {
		if len(pending) == 0 {
			return true
		}
		evs := pending
		pending = make([]trace.Event, 0, in.opts.BatchLen)
		return in.enqueue(ctx, ss, evs)
	}

	flushT := time.NewTimer(in.opts.FlushEvery)
	flushT.Stop()
	defer flushT.Stop()
	var stallC <-chan time.Time
	var stallT *time.Timer
	if in.opts.ReadTimeout > 0 {
		stallT = time.NewTimer(in.opts.ReadTimeout)
		defer stallT.Stop()
		stallC = stallT.C
	}

	for {
		select {
		case it := <-items:
			if !it.ok {
				if !flush() {
					return progressed, ctx.Err()
				}
				if serr := sourceErr(src); serr != nil {
					return progressed, serr
				}
				return progressed, nil
			}
			if stallT != nil {
				stallT.Reset(in.opts.ReadTimeout)
			}
			if skip > 0 {
				skip--
				continue
			}
			pending = append(pending, it.e)
			progressed = true
			if len(pending) >= in.opts.BatchLen {
				if !flush() {
					return progressed, ctx.Err()
				}
			} else if len(pending) == 1 {
				flushT.Reset(in.opts.FlushEvery)
			}
		case <-flushT.C:
			if !flush() {
				return progressed, ctx.Err()
			}
		case <-stallC:
			flush()
			return progressed, fmt.Errorf("%w after %v", ErrStalled, in.opts.ReadTimeout)
		case <-ctx.Done():
			flush()
			return progressed, ctx.Err()
		}
	}
}

// enqueue hands a batch to the source's shard under the configured
// overload policy, advancing the reader-local stream position for both
// delivered and dropped events. It returns false only when a Block-policy
// enqueue was abandoned because ctx ended (those events stay uncounted and
// are replayed on the next run).
func (in *Ingestor) enqueue(ctx context.Context, ss *sourceState, evs []trace.Event) bool {
	b := batch{src: ss, events: evs}
	if in.hQueueWait != nil || in.opts.Tracer != nil {
		b.enqueuedAt = time.Now()
		b.sp = in.opts.Tracer.StartRootAt("ingest.batch", b.enqueuedAt)
	}
	n := uint64(len(evs))
	if in.opts.Drop == DropNewest {
		select {
		case ss.queue.ch <- b:
		default:
			ss.dropped.Add(n)
		}
		ss.consumed += n
		return true
	}
	select {
	case ss.queue.ch <- b:
		ss.consumed += n
		return true
	case <-ctx.Done():
		return false
	}
}

// sourceErr surfaces a source's terminal error, if it exposes one (as
// trace.Reader and faults.Source do). A source without Err can only end
// cleanly.
func sourceErr(s trace.Source) error {
	if es, ok := s.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}

func closeSource(s trace.Source) {
	if c, ok := s.(interface{ Close() error }); ok {
		c.Close()
	}
}

// Estimate returns the summed lower-bound estimate for [lo, hi] across all
// shards. Each shard's estimate undercounts its slice of the stream by at
// most ε·n_i, so the sum undercounts the whole stream by at most ε·N()
// plus Dropped() events.
func (in *Ingestor) Estimate(lo, hi uint64) uint64 {
	return in.engine.Estimate(lo, hi)
}

// N returns the total event weight applied across all shards.
func (in *Ingestor) N() uint64 {
	return in.engine.N()
}

// Engine exposes the underlying sharded engine for richer queries
// (EstimateBounds, HotRanges, merged snapshots).
func (in *Ingestor) Engine() *shard.Engine {
	return in.engine
}

// Dropped returns the total number of events shed under DropNewest.
func (in *Ingestor) Dropped() uint64 {
	var total uint64
	for _, ss := range in.sources {
		total += ss.dropped.Load()
	}
	return total
}

// SourceStats reports one source's supervision state. The drop and
// admission ledgers partition the offered stream exactly:
//
//	Admitted + Unadmitted + Dropped == Offered
//
// (the built-in sources emit weight-1 events, so event counts and weights
// coincide; Unadmitted is in weight units for weighted sources).
type SourceStats struct {
	Name       string
	Offered    uint64        // events the reader handed off: Applied + Dropped
	Applied    uint64        // events applied to its shard tree (incl. unadmitted)
	Admitted   uint64        // events credited to the tree: Applied − Unadmitted
	Unadmitted uint64        // weight refused by the admission gate
	Dropped    uint64        // events shed under DropNewest
	Retries    uint64        // reopen attempts
	Failed     bool          // permanently failed
	LastErr    string        // most recent error, "" if none
	QueueDepth int           // batches waiting in its shard queue
	QueueCap   int           // capacity of its shard queue, in batches
	Backoff    time.Duration // time remaining in the current retry backoff
}

// CheckpointStats reports the checkpoint subsystem's state.
type CheckpointStats struct {
	Enabled      bool
	Written      uint64        // successful checkpoint writes
	Failed       uint64        // failed checkpoint writes
	Quarantined  uint64        // corrupt checkpoints quarantined on load
	LastAt       time.Time     // time of the last successful write; zero if none
	LastSize     int           // bytes of the last successful write
	LastDuration time.Duration // wall time of the last successful write
}

// Age returns how long ago the last successful checkpoint was written,
// or -1 if none has been.
func (c CheckpointStats) Age(now time.Time) time.Duration {
	if c.LastAt.IsZero() {
		return -1
	}
	return now.Sub(c.LastAt)
}

// Stats is a point-in-time view of the whole pipeline.
type Stats struct {
	N            uint64 // total event weight credited to the trees
	Unadmitted   uint64 // weight refused by the admission gates (tree ledgers)
	Nodes        int    // live tree nodes across shards
	MaxNodes     int    // summed per-shard node high-water marks
	MemoryBytes  int    // charged at core.NodeBytes per node
	ArenaBytes   int    // physical node-arena footprint across shards
	Splits       uint64 // split operations across shards
	Merges       uint64 // nodes folded away across shards
	MergeBatches uint64 // batched merge passes across shards
	Dropped      uint64 // events shed under DropNewest
	Checkpoint   CheckpointStats
	Sources      []SourceStats
}

// Stats gathers per-shard and per-source counters. The view is
// monitoring-grade: shards are sampled one at a time, not under a global
// cut.
func (in *Ingestor) Stats() Stats {
	var st Stats
	for i := 0; i < in.engine.Shards(); i++ {
		ts := in.engine.ShardStats(i)
		st.N += ts.N
		st.Unadmitted += ts.UnadmittedN
		st.Nodes += ts.Nodes
		st.MaxNodes += ts.MaxNodes
		st.MemoryBytes += ts.MemoryBytes
		st.ArenaBytes += ts.ArenaBytes
		st.Splits += ts.Splits
		st.Merges += ts.Merges
		st.MergeBatches += ts.MergeBatches
	}
	now := time.Now()
	for _, ss := range in.sources {
		s := SourceStats{
			Name:       ss.spec.Name,
			Dropped:    ss.dropped.Load(),
			Retries:    ss.retries.Load(),
			Failed:     ss.failed.Load(),
			QueueDepth: len(ss.queue.ch),
			QueueCap:   cap(ss.queue.ch),
			Backoff:    ss.backoffRemaining(now),
		}
		in.engine.WithShard(ss.queue.idx, func(*core.Tree) {
			s.Applied = ss.applied
			s.Unadmitted = ss.unadmitted
		})
		s.Offered = s.Applied + s.Dropped
		s.Admitted = s.Applied - s.Unadmitted
		if err := ss.lastError(); err != nil {
			s.LastErr = err.Error()
		}
		st.Dropped += s.Dropped
		st.Sources = append(st.Sources, s)
	}
	st.Checkpoint = CheckpointStats{
		Enabled:      in.opts.CheckpointDir != "",
		Written:      in.ckWritten.Load(),
		Failed:       in.ckFailed.Load(),
		Quarantined:  in.ckQuarantined.Load(),
		LastSize:     int(in.ckLastSize.Load()),
		LastDuration: time.Duration(in.ckLastDur.Load()),
	}
	if nano := in.ckLastNano.Load(); nano != 0 {
		st.Checkpoint.LastAt = time.Unix(0, nano)
	}
	return st
}
