package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"rap/internal/core"
)

// Checkpoint file format (version 2):
//
//	"RAPC" | version byte |
//	uvarint nShards | per shard: uvarint len, tree snapshot (core format) |
//	uvarint nSources | per source: uvarint len, name bytes,
//	                               uvarint applied, uvarint dropped,
//	                               uvarint unadmitted |
//	4-byte little-endian CRC32 (IEEE) of everything before it
//
// Version history: v1 had no per-source unadmitted counter; v1 files are
// still read with it defaulted to zero (the shard trees' own ledgers —
// carried inside the tree snapshots — remain intact either way; only the
// per-source attribution starts over).
//
// Durability protocol: write to a temp file in the same directory, fsync,
// close, rotate the current checkpoint to the .prev name, rename the temp
// file into place, fsync the directory. A crash at any point leaves either
// the old checkpoint, the new one, or both names pointing at intact files;
// a torn write is caught by the CRC on load and quarantined.

const (
	ckMagic   = "RAPC"
	ckVersion = 2

	ckName = "checkpoint.rapc"
	ckPrev = "checkpoint.prev.rapc"
	ckTmp  = "checkpoint.rapc.tmp"
)

type sourcePos struct {
	name       string
	applied    uint64
	dropped    uint64
	unadmitted uint64
}

type checkpointState struct {
	trees   []*core.Tree
	sources []sourcePos
}

// Checkpoint atomically persists the trees and stream positions of every
// source. All shard locks are held (in fixed order) while the cut is
// taken, so the recorded positions match exactly the events reflected in
// the trees — the invariant replay-on-recovery depends on. It is a no-op
// without a checkpoint directory.
func (in *Ingestor) Checkpoint() error {
	if in.opts.CheckpointDir == "" {
		return nil
	}
	start := time.Now()
	size, err := in.checkpoint()
	if err != nil {
		in.ckFailed.Add(1)
		return err
	}
	dur := time.Since(start)
	in.ckWritten.Add(1)
	in.ckLastNano.Store(start.UnixNano())
	in.ckLastSize.Store(int64(size))
	in.ckLastDur.Store(int64(dur))
	if in.ckDur != nil {
		in.ckDur.ObserveDuration(dur)
	}
	return nil
}

func (in *Ingestor) checkpoint() (size int, err error) {
	cutStart := time.Now()
	root := in.opts.Tracer.StartRootAt("checkpoint", cutStart)
	defer func() {
		if err != nil {
			root.SetAttr("error", err.Error())
		} else {
			root.SetAttr("bytes", strconv.Itoa(size))
		}
		root.End()
	}()
	var positions []sourcePos
	snaps, err := in.engine.SnapshotShards(func() {
		// Runs with every shard lock held: applied counters are exactly
		// consistent with the tree snapshots being taken.
		positions = make([]sourcePos, 0, len(in.sources))
		for _, ss := range in.sources {
			positions = append(positions, sourcePos{
				name:       ss.spec.Name,
				applied:    ss.applied,
				dropped:    ss.dropped.Load(),
				unadmitted: ss.unadmitted,
			})
		}
	})
	if err != nil {
		return 0, err
	}
	cutEnd := time.Now()
	cut := in.opts.Tracer.StartChildAt(root.Context(), "cut", cutStart)
	cut.SetAttr("shards", strconv.Itoa(len(snaps)))
	cut.EndAt(cutEnd)
	if in.ckCutDur != nil {
		in.ckCutDur.Observe(cutEnd.Sub(cutStart).Seconds())
	}
	writeStart := time.Now()
	size, err = writeCheckpoint(in.opts.CheckpointDir, snaps, positions)
	write := in.opts.Tracer.StartChildAt(root.Context(), "write", writeStart)
	write.End()
	if err == nil && in.ckWriteDur != nil {
		in.ckWriteDur.ObserveSince(writeStart)
	}
	return size, err
}

func encodeCheckpoint(snaps [][]byte, positions []sourcePos) []byte {
	var buf bytes.Buffer
	buf.WriteString(ckMagic)
	buf.WriteByte(ckVersion)
	putUvarint(&buf, uint64(len(snaps)))
	for _, s := range snaps {
		putUvarint(&buf, uint64(len(s)))
		buf.Write(s)
	}
	putUvarint(&buf, uint64(len(positions)))
	for _, sp := range positions {
		putUvarint(&buf, uint64(len(sp.name)))
		buf.WriteString(sp.name)
		putUvarint(&buf, sp.applied)
		putUvarint(&buf, sp.dropped)
		putUvarint(&buf, sp.unadmitted)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crc[:])
	return buf.Bytes()
}

func writeCheckpoint(dir string, snaps [][]byte, positions []sourcePos) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	data := encodeCheckpoint(snaps, positions)
	tmp := filepath.Join(dir, ckTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}

	main := filepath.Join(dir, ckName)
	if _, err := os.Stat(main); err == nil {
		if err := os.Rename(main, filepath.Join(dir, ckPrev)); err != nil {
			return 0, err
		}
	}
	if err := os.Rename(tmp, main); err != nil {
		return 0, err
	}
	syncDir(dir)
	return len(data), nil
}

// syncDir fsyncs a directory so the renames above are durable. Errors are
// ignored: some filesystems reject fsync on directories and the protocol
// degrades gracefully (the CRC still catches torn state).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// loadCheckpoint returns the most recent intact checkpoint state, trying
// the current file then the previous one. A file that fails the CRC or
// does not decode is quarantined — renamed aside with a .corrupt suffix so
// it is preserved for diagnosis but never retried — counted, and logged.
// With no usable checkpoint it returns (nil, nil); only real I/O errors
// are returned.
func (in *Ingestor) loadCheckpoint() (*checkpointState, error) {
	dir := in.opts.CheckpointDir
	for _, name := range []string{ckName, ckPrev} {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		st, derr := decodeCheckpoint(data)
		if derr == nil {
			return st, nil
		}
		in.ckQuarantined.Add(1)
		q := path + fmt.Sprintf(".corrupt-%d", time.Now().UnixNano())
		if rerr := os.Rename(path, q); rerr != nil {
			in.log.Error("ingest: corrupt checkpoint, quarantine failed",
				"path", path, "err", derr, "rename_err", rerr)
		} else {
			in.log.Warn("ingest: corrupt checkpoint quarantined",
				"path", path, "err", derr, "quarantine", q)
		}
	}
	return nil, nil
}

func decodeCheckpoint(data []byte) (*checkpointState, error) {
	if len(data) < len(ckMagic)+1+4 {
		return nil, errors.New("checkpoint too short")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("checksum mismatch: %08x != %08x", got, want)
	}
	r := bytes.NewReader(body)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != ckMagic {
		return nil, errors.New("bad checkpoint magic")
	}
	ver, err := r.ReadByte()
	if err != nil || ver < 1 || ver > ckVersion {
		return nil, fmt.Errorf("unsupported checkpoint version %d", ver)
	}

	st := &checkpointState{}
	nShards, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nShards; i++ {
		snap, err := readBlob(r)
		if err != nil {
			return nil, fmt.Errorf("shard %d snapshot: %w", i, err)
		}
		var tr core.Tree
		if err := tr.UnmarshalBinary(snap); err != nil {
			return nil, fmt.Errorf("shard %d snapshot: %w", i, err)
		}
		st.trees = append(st.trees, &tr)
	}
	nSources, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nSources; i++ {
		nameB, err := readBlob(r)
		if err != nil {
			return nil, fmt.Errorf("source %d: %w", i, err)
		}
		var sp sourcePos
		sp.name = string(nameB)
		if sp.applied, err = binary.ReadUvarint(r); err != nil {
			return nil, fmt.Errorf("source %q position: %w", sp.name, err)
		}
		if sp.dropped, err = binary.ReadUvarint(r); err != nil {
			return nil, fmt.Errorf("source %q position: %w", sp.name, err)
		}
		if ver >= 2 {
			if sp.unadmitted, err = binary.ReadUvarint(r); err != nil {
				return nil, fmt.Errorf("source %q position: %w", sp.name, err)
			}
		}
		st.sources = append(st.sources, sp)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%d trailing bytes in checkpoint", r.Len())
	}
	return st, nil
}

func readBlob(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("blob length %d exceeds remaining %d bytes", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func putUvarint(buf *bytes.Buffer, x uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	buf.Write(tmp[:n])
}
