package ingest

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"rap/internal/core"
	"rap/internal/obs"
	"rap/internal/trace"
)

// TestMetricsRegistration runs a checkpointed pipeline with a registry
// attached and checks the exposition carries the core split/merge,
// queue, and checkpoint metrics with values that reconcile with Stats.
func TestMetricsRegistration(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	tr := obs.NewStructuralTrace(1, 1<<12)
	opts := testOptions(2)
	opts.CheckpointDir = dir
	opts.Metrics = reg
	opts.StructuralTrace = tr

	in := runToCompletion(t, opts, []SourceSpec{
		sliceSpec("a", zipfVals(30_000, 21)),
		sliceSpec("b", zipfVals(30_000, 22)),
	})
	st := in.Stats()

	var splits, merges float64
	for _, fam := range reg.Snapshot() {
		switch fam.Name {
		case obs.MetricTreeSplits:
			for _, s := range fam.Series {
				splits += s.Value
			}
		case obs.MetricTreeMerges:
			for _, s := range fam.Series {
				merges += s.Value
			}
		}
	}
	if uint64(splits) != st.Splits {
		t.Fatalf("splits metric = %v, stats = %d", splits, st.Splits)
	}
	if uint64(merges) != st.Merges {
		t.Fatalf("merges metric = %v, stats = %d", merges, st.Merges)
	}
	if st.Splits == 0 {
		t.Fatal("stream produced no splits; test is vacuous")
	}
	if tr.Decisions() == 0 {
		t.Fatal("structural trace saw no decisions")
	}

	if st.Checkpoint.Written == 0 || st.Checkpoint.LastAt.IsZero() ||
		st.Checkpoint.LastSize == 0 {
		t.Fatalf("checkpoint stats not recorded: %+v", st.Checkpoint)
	}
	if age := st.Checkpoint.Age(time.Now()); age < 0 || age > time.Minute {
		t.Fatalf("implausible checkpoint age %v", age)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`rap_tree_splits_total{shard="0"}`,
		`rap_tree_error_budget{shard="1"}`,
		`rap_ingest_queue_depth{source="a"}`,
		`rap_ingest_queue_capacity{source="b"}`,
		`rap_ingest_applied_total{source="a"}`,
		"rap_checkpoint_written_total 1",
		"rap_checkpoint_seconds_count 1",
		"rap_checkpoint_staleness_seconds",
		"rap_trace_evicted_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// A checkpoint just landed, so staleness is near zero — and in
	// particular not the -1 sentinel rap_checkpoint_last_age_seconds uses.
	for _, fam := range reg.Snapshot() {
		if fam.Name != "rap_checkpoint_staleness_seconds" {
			continue
		}
		if v := fam.Series[0].Value; v < 0 || v > 60 {
			t.Fatalf("staleness = %v, want small and non-negative", v)
		}
	}
}

// TestDropNewestAccountingReconciles pins the ε·n + dropped bound's
// bookkeeping: under forced DropNewest overload, every event offered to
// the pipeline is either applied to a shard tree or counted as dropped —
// none vanish. The shard applier is stalled by holding the shard lock,
// so the bounded queue overflows deterministically.
func TestDropNewestAccountingReconciles(t *testing.T) {
	const offered = 50_000
	opts := testOptions(1)
	opts.Drop = DropNewest
	opts.QueueLen = 4
	opts.BatchLen = 16
	in, err := Open(opts, []SourceSpec{
		sliceSpec("x", zipfVals(offered/2, 31)),
		sliceSpec("y", zipfVals(offered/2, 32)),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Stall the single shard's applier: it will pop at most one batch and
	// then block on the lock, so the 4-batch queue must overflow.
	held := make(chan struct{})
	release := make(chan struct{})
	go in.Engine().WithShard(0, func(*core.Tree) {
		close(held)
		<-release
	})
	<-held
	done := make(chan error, 1)
	go func() { done <- in.Run(context.Background()) }()
	time.Sleep(100 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	st := in.Stats()
	var applied uint64
	for _, s := range st.Sources {
		applied += s.Applied
	}
	if applied+st.Dropped != offered {
		t.Fatalf("applied %d + dropped %d = %d, want offered %d (events vanished or double-counted)",
			applied, st.Dropped, applied+st.Dropped, offered)
	}
	if st.N != applied {
		t.Fatalf("tree N = %d, applied = %d (tree and accounting disagree)", st.N, applied)
	}
	if st.Dropped == 0 {
		t.Fatal("overload produced no drops; stall did not bite")
	}
}

// TestStatsReportQueueAndBackoff checks the new SourceStats fields are
// populated: queue geometry always, backoff while a source is retrying.
func TestStatsReportQueueAndBackoff(t *testing.T) {
	opts := testOptions(1)
	opts.QueueLen = 7
	opts.MaxRetries = 3
	opts.BackoffBase = 200 * time.Millisecond
	opts.BackoffMax = 200 * time.Millisecond
	errOpen := errors.New("open refused")
	failing := SourceSpec{
		Name: "flaky",
		Open: func() (trace.Source, error) { return nil, errOpen },
	}
	in, err := Open(opts, []SourceSpec{failing})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- in.Run(context.Background()) }()

	// Poll until the source is inside a backoff window.
	deadline := time.Now().Add(5 * time.Second)
	var saw bool
	for time.Now().Before(deadline) {
		st := in.Stats()
		s := st.Sources[0]
		if s.QueueCap != 7 {
			t.Fatalf("queue capacity = %d, want 7", s.QueueCap)
		}
		if s.Backoff > 0 {
			saw = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !saw {
		t.Fatal("never observed a source in backoff")
	}
	if err := <-done; err == nil {
		t.Fatal("permanently failing source did not surface an error")
	}
	if st := in.Stats(); !st.Sources[0].Failed || st.Sources[0].Backoff != 0 {
		t.Fatalf("terminal source state %+v", st.Sources[0])
	}
}
