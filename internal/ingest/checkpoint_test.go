package ingest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// logCapture collects Logf lines for assertions.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCapture) contains(substr string) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, l := range lc.lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

// runToCompletion ingests vals under the given options and returns the
// final stats.
func runToCompletion(t *testing.T, opts Options, specs []SourceSpec) *Ingestor {
	t.Helper()
	in, err := Open(opts, specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	vals := zipfVals(10_000, 5)
	opts := testOptions(2)
	opts.CheckpointDir = dir

	in := runToCompletion(t, opts, []SourceSpec{sliceSpec("s", vals)})
	wantN := in.N()
	wantEst := in.Estimate(0, 1<<15)

	// A second Open must restore trees and positions from the final
	// checkpoint without replaying anything.
	in2, err := Open(opts, []SourceSpec{sliceSpec("s", vals)})
	if err != nil {
		t.Fatal(err)
	}
	if got := in2.N(); got != wantN {
		t.Fatalf("restored N = %d, want %d", got, wantN)
	}
	if got := in2.Estimate(0, 1<<15); got != wantEst {
		t.Fatalf("restored estimate = %d, want %d", got, wantEst)
	}
	if got := in2.sources[0].consumed; got != uint64(len(vals)) {
		t.Fatalf("restored position = %d, want %d", got, len(vals))
	}
	// Running again replays nothing: every event is behind the position.
	if err := in2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := in2.N(); got != wantN {
		t.Fatalf("N after idempotent re-run = %d, want %d (events double-counted)", got, wantN)
	}
}

func TestCorruptCheckpointQuarantinedAndPrevUsed(t *testing.T) {
	dir := t.TempDir()
	vals := zipfVals(8_000, 6)
	opts := testOptions(2)
	opts.CheckpointDir = dir

	// First run: leaves checkpoint at 4000 events.
	in := runToCompletion(t, opts, []SourceSpec{sliceSpec("s", vals[:4_000])})
	prevN := in.N()
	// Second run over the full stream rotates the first checkpoint to
	// .prev and writes a fresh one at 8000.
	runToCompletion(t, opts, []SourceSpec{sliceSpec("s", vals)})
	if _, err := os.Stat(filepath.Join(dir, ckPrev)); err != nil {
		t.Fatalf("previous checkpoint not rotated: %v", err)
	}

	// Corrupt the current checkpoint on disk: flip one byte in the body
	// so the CRC no longer matches.
	path := filepath.Join(dir, ckName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	lc := &logCapture{}
	opts.Logf = lc.logf
	in2, err := Open(opts, []SourceSpec{sliceSpec("s", vals)})
	if err != nil {
		t.Fatal(err)
	}
	if got := in2.N(); got != prevN {
		t.Fatalf("fallback restored N = %d, want previous checkpoint's %d", got, prevN)
	}
	if !lc.contains("quarantined") {
		t.Fatalf("corruption not logged: %q", lc.lines)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, ckName+".corrupt-*"))
	if len(quarantined) != 1 {
		t.Fatalf("quarantine files = %v, want exactly one", quarantined)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint still in place after quarantine")
	}
}

func TestBothCheckpointsCorruptStartsFresh(t *testing.T) {
	dir := t.TempDir()
	vals := zipfVals(4_000, 7)
	opts := testOptions(1)
	opts.CheckpointDir = dir

	runToCompletion(t, opts, []SourceSpec{sliceSpec("s", vals[:2_000])})
	runToCompletion(t, opts, []SourceSpec{sliceSpec("s", vals)})
	for _, name := range []string{ckName, ckPrev} {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff // break the CRC itself
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	lc := &logCapture{}
	opts.Logf = lc.logf
	in, err := Open(opts, []SourceSpec{sliceSpec("s", vals)})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.N(); got != 0 {
		t.Fatalf("fresh start has N = %d, want 0", got)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*.corrupt-*"))
	if len(quarantined) != 2 {
		t.Fatalf("quarantine files = %v, want two", quarantined)
	}
	// And the pipeline still works end to end.
	if err := in.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := in.N(); got != 4_000 {
		t.Fatalf("N = %d after fresh re-ingest, want 4000", got)
	}
}

func TestStaleTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	// A crash mid-write leaves a torn temp file; it must never be read as
	// a checkpoint, and the next checkpoint must clobber it.
	if err := os.WriteFile(filepath.Join(dir, ckTmp), []byte("torn half-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := testOptions(1)
	opts.CheckpointDir = dir
	in := runToCompletion(t, opts, []SourceSpec{sliceSpec("s", zipfVals(1_000, 8))})
	if got := in.N(); got != 1_000 {
		t.Fatalf("N = %d, want 1000", got)
	}
	in2, err := Open(opts, []SourceSpec{sliceSpec("s", nil)})
	if err != nil {
		t.Fatal(err)
	}
	if got := in2.N(); got != 1_000 {
		t.Fatalf("restored N = %d, want 1000", got)
	}
}

func TestShardCountChangeRejected(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(2)
	opts.CheckpointDir = dir
	runToCompletion(t, opts, []SourceSpec{sliceSpec("s", zipfVals(1_000, 9))})

	opts.Shards = 3
	if _, err := Open(opts, []SourceSpec{sliceSpec("s", nil)}); err == nil {
		t.Fatal("Open accepted a checkpoint with a different shard count")
	}
}

// FuzzCheckpointDecode throws arbitrary bytes at the checkpoint decoder:
// it must reject or accept without ever panicking, and anything it accepts
// must re-encode cleanly.
func FuzzCheckpointDecode(f *testing.F) {
	dir := f.TempDir()
	opts := testOptions(2)
	opts.CheckpointDir = dir
	opts.Logf = func(string, ...any) {}
	in, err := Open(opts, []SourceSpec{sliceSpec("s", zipfVals(3_000, 10))})
	if err != nil {
		f.Fatal(err)
	}
	if err := in.Run(context.Background()); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, ckName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-4])
	f.Add([]byte("RAPC\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		for _, tr := range st.trees {
			if _, merr := tr.MarshalBinary(); merr != nil {
				t.Fatalf("accepted checkpoint holds unmarshalable tree: %v", merr)
			}
		}
	})
}
