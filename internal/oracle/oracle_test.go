package oracle

import (
	"math/rand"
	"testing"
)

func TestOracleCountsExactly(t *testing.T) {
	o := New()
	o.Add(5)
	o.AddN(5, 3)
	o.AddN(10, 2)
	o.AddN(7, 0) // zero weight is a no-op
	if o.N() != 6 {
		t.Fatalf("N = %d, want 6", o.N())
	}
	if o.Distinct() != 2 {
		t.Fatalf("Distinct = %d, want 2", o.Distinct())
	}
	for _, tc := range []struct {
		lo, hi, want uint64
	}{
		{0, 4, 0},
		{5, 5, 4},
		{5, 10, 6},
		{6, 9, 0},
		{10, 10, 2},
		{11, ^uint64(0), 0},
		{10, 5, 0}, // inverted range
	} {
		if got := o.Count(tc.lo, tc.hi); got != tc.want {
			t.Errorf("Count(%d, %d) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestOracleAgainstSlice(t *testing.T) {
	// Differential check of the differential checker: the map-based count
	// must agree with a linear scan over the raw stream.
	rng := rand.New(rand.NewSource(7))
	o := New()
	var stream []uint64
	for i := 0; i < 20_000; i++ {
		v := uint64(rng.Intn(1 << 12))
		o.Add(v)
		stream = append(stream, v)
	}
	for q := 0; q < 50; q++ {
		lo := uint64(rng.Intn(1 << 12))
		hi := lo + uint64(rng.Intn(1<<12))
		var want uint64
		for _, v := range stream {
			if v >= lo && v <= hi {
				want++
			}
		}
		if got := o.Count(lo, hi); got != want {
			t.Fatalf("Count(%#x, %#x) = %d, want %d", lo, hi, got, want)
		}
	}
	if got := len(o.Values()); got != o.Distinct() {
		t.Fatalf("Values() returned %d values, Distinct() = %d", got, o.Distinct())
	}
}
