// Package oracle is the exact-count reference the differential test
// suites measure every profiler engine against: a brute-force
// map[uint64]uint64 of the full stream, no summarization, no error. It is
// a test helper — memory grows with the number of distinct values — and
// exists so that correctness of the adaptive tree (and every storage or
// hot-path rewrite of it) is judged against ground truth rather than
// against another approximation.
package oracle

// Oracle counts events exactly.
type Oracle struct {
	counts map[uint64]uint64
	n      uint64
}

// New returns an empty oracle.
func New() *Oracle {
	return &Oracle{counts: make(map[uint64]uint64)}
}

// Add records one occurrence of p.
func (o *Oracle) Add(p uint64) { o.AddN(p, 1) }

// AddN records weight occurrences of p.
func (o *Oracle) AddN(p uint64, weight uint64) {
	if weight == 0 {
		return
	}
	o.counts[p] += weight
	o.n += weight
}

// N returns the total event weight recorded.
func (o *Oracle) N() uint64 { return o.n }

// Distinct returns the number of distinct values recorded.
func (o *Oracle) Distinct() int { return len(o.counts) }

// Count returns the exact event weight in [lo, hi] (inclusive).
func (o *Oracle) Count(lo, hi uint64) uint64 {
	if lo > hi {
		return 0
	}
	var total uint64
	for v, c := range o.counts {
		if v >= lo && v <= hi {
			total += c
		}
	}
	return total
}

// Values returns every distinct value recorded, in no particular order.
// Differential suites use it to derive adversarial query boundaries.
func (o *Oracle) Values() []uint64 {
	out := make([]uint64, 0, len(o.counts))
	for v := range o.counts {
		out = append(out, v)
	}
	return out
}
