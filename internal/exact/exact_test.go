package exact

import (
	"testing"
	"testing/quick"
)

func TestBasicCounts(t *testing.T) {
	e := New()
	e.Add(5)
	e.Add(5)
	e.AddN(9, 10)
	e.AddN(7, 0) // no-op
	if e.N() != 12 {
		t.Fatalf("N = %d", e.N())
	}
	if e.Distinct() != 2 {
		t.Fatalf("Distinct = %d", e.Distinct())
	}
	if e.Count(5) != 2 || e.Count(9) != 10 || e.Count(7) != 0 {
		t.Fatal("Count wrong")
	}
}

func TestRangeCount(t *testing.T) {
	e := New()
	for _, p := range []uint64{1, 3, 3, 7, 100, ^uint64(0)} {
		e.Add(p)
	}
	cases := []struct {
		lo, hi, want uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{1, 3, 3},
		{3, 3, 2},
		{0, ^uint64(0), 6},
		{8, 99, 0},
		{7, 100, 2},
		{10, 5, 0}, // inverted
	}
	for _, tc := range cases {
		if got := e.RangeCount(tc.lo, tc.hi); got != tc.want {
			t.Errorf("RangeCount(%d,%d) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestRangeCountAfterMoreAdds(t *testing.T) {
	// The sorted index must rebuild when counts change.
	e := New()
	e.Add(10)
	if e.RangeCount(0, 20) != 1 {
		t.Fatal("first query wrong")
	}
	e.Add(15)
	if e.RangeCount(0, 20) != 2 {
		t.Fatal("index not invalidated after Add")
	}
}

func TestTopK(t *testing.T) {
	e := New()
	e.AddN(1, 5)
	e.AddN(2, 10)
	e.AddN(3, 10)
	e.AddN(4, 1)
	top := e.TopK(2)
	if len(top) != 2 || top[0] != (ValueCount{2, 10}) || top[1] != (ValueCount{3, 10}) {
		t.Fatalf("TopK = %v", top)
	}
	if got := e.TopK(100); len(got) != 4 {
		t.Fatalf("TopK(100) returned %d", len(got))
	}
}

func TestHotPoints(t *testing.T) {
	e := New()
	e.AddN(10, 60)
	e.AddN(20, 30)
	e.AddN(30, 10)
	hot := e.HotPoints(0.25)
	if len(hot) != 2 || hot[0].Value != 10 || hot[1].Value != 20 {
		t.Fatalf("HotPoints = %v", hot)
	}
}

func TestPropRangeCountMatchesScan(t *testing.T) {
	f := func(points []uint16, a, b uint16) bool {
		e := New()
		for _, p := range points {
			e.Add(uint64(p))
		}
		if a > b {
			a, b = b, a
		}
		var want uint64
		for _, p := range points {
			if p >= a && p <= b {
				want++
			}
		}
		return e.RangeCount(uint64(a), uint64(b)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
