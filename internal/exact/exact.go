// Package exact implements the "perfect profiler" the paper evaluates RAP
// against (Section 4.3): an offline profiler that "can gather event counts
// with 100% accuracy". The paper realizes it by making multiple passes
// over the program, tracking one hot range at a time; at reproduction
// scale a hash map plus a sorted index gives identical answers in one
// pass.
package exact

import "sort"

// Profiler counts every event exactly.
type Profiler struct {
	counts map[uint64]uint64
	n      uint64

	// sorted index built lazily for range queries
	keys    []uint64
	prefix  []uint64 // prefix[i] = sum of counts of keys[0..i-1]
	indexed bool
}

// New returns an empty exact profiler.
func New() *Profiler {
	return &Profiler{counts: make(map[uint64]uint64)}
}

// Add records one occurrence of p.
func (e *Profiler) Add(p uint64) { e.AddN(p, 1) }

// AddN records weight occurrences of p.
func (e *Profiler) AddN(p uint64, weight uint64) {
	if weight == 0 {
		return
	}
	e.counts[p] += weight
	e.n += weight
	e.indexed = false
}

// N returns the total event weight recorded.
func (e *Profiler) N() uint64 { return e.n }

// Distinct returns the number of distinct event values seen.
func (e *Profiler) Distinct() int { return len(e.counts) }

// Count returns the exact count of a single value.
func (e *Profiler) Count(p uint64) uint64 { return e.counts[p] }

func (e *Profiler) buildIndex() {
	if e.indexed {
		return
	}
	e.keys = e.keys[:0]
	for k := range e.counts {
		e.keys = append(e.keys, k)
	}
	sort.Slice(e.keys, func(i, j int) bool { return e.keys[i] < e.keys[j] })
	e.prefix = make([]uint64, len(e.keys)+1)
	for i, k := range e.keys {
		e.prefix[i+1] = e.prefix[i] + e.counts[k]
	}
	e.indexed = true
}

// RangeCount returns the exact number of events in [lo, hi] inclusive.
func (e *Profiler) RangeCount(lo, hi uint64) uint64 {
	if lo > hi {
		return 0
	}
	e.buildIndex()
	i := sort.Search(len(e.keys), func(i int) bool { return e.keys[i] >= lo })
	j := sort.Search(len(e.keys), func(i int) bool { return e.keys[i] > hi })
	return e.prefix[j] - e.prefix[i]
}

// ValueCount pairs a value with its exact count.
type ValueCount struct {
	Value uint64
	Count uint64
}

// TopK returns the k most frequent values, most frequent first, ties
// broken by smaller value.
func (e *Profiler) TopK(k int) []ValueCount {
	all := make([]ValueCount, 0, len(e.counts))
	for v, c := range e.counts {
		all = append(all, ValueCount{v, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Value < all[j].Value
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// HotPoints returns every value whose exact count is at least theta·n,
// sorted by value.
func (e *Profiler) HotPoints(theta float64) []ValueCount {
	cut := theta * float64(e.n)
	var out []ValueCount
	for v, c := range e.counts {
		if float64(c) >= cut {
			out = append(out, ValueCount{v, c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}
