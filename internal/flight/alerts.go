package flight

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rap/internal/obs"
)

// State is an alert's severity: the classic ok → warn → crit ladder.
type State int

const (
	StateOK State = iota
	StateWarn
	StateCrit
)

func (s State) String() string {
	switch s {
	case StateWarn:
		return "warn"
	case StateCrit:
		return "crit"
	default:
		return "ok"
	}
}

// RuleKind selects what an alert rule evaluates.
type RuleKind int

const (
	// Threshold compares the current value of the selected series.
	Threshold RuleKind = iota
	// Rate compares the per-second derivative over RateWindow.
	Rate
	// Ratio compares Series/Denom, matched per label set.
	Ratio
)

func (k RuleKind) String() string {
	switch k {
	case Rate:
		return "rate"
	case Ratio:
		return "ratio"
	default:
		return "threshold"
	}
}

// Cmp is the comparison direction: Above fires when the value rises past
// a threshold, Below when it falls under one.
type Cmp int

const (
	Above Cmp = iota
	Below
)

// Agg folds multiple matching series (e.g. per-shard labels) into the one
// value the thresholds compare against.
type Agg int

const (
	AggMax Agg = iota
	AggMin
	AggSum
)

// Rule is one alert rule. Series (and Denom, for ratios) select recorded
// series the way /vars does: by full key or by family name across all
// label sets. A zero Warn or Crit disables that level. ClearRatio sets
// the hysteresis band: once fired at a level, the alert only clears when
// the value retreats past threshold×ClearRatio (Above) or
// threshold/ClearRatio (Below), so a value dithering on the line does not
// flap. For delays every transition — in both directions — until the new
// state has held that long.
type Rule struct {
	Name       string
	Help       string
	Kind       RuleKind
	Series     string
	Denom      string
	Agg        Agg
	Cmp        Cmp
	Warn       float64
	Crit       float64
	RateWindow time.Duration
	For        time.Duration
	ClearRatio float64
}

// MarshalJSON renders the rule for /alerts and bundles. Disabled levels
// normalise to ±Inf, which encoding/json rejects — jsonValue strings
// them instead.
func (ru Rule) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name       string    `json:"name"`
		Help       string    `json:"help,omitempty"`
		Kind       string    `json:"kind"`
		Series     string    `json:"series"`
		Denom      string    `json:"denom,omitempty"`
		Warn       jsonValue `json:"warn"`
		Crit       jsonValue `json:"crit"`
		For        string    `json:"for,omitempty"`
		RateWindow string    `json:"rate_window,omitempty"`
	}{
		ru.Name, ru.Help, ru.Kind.String(), ru.Series, ru.Denom,
		jsonValue(ru.Warn), jsonValue(ru.Crit),
		durString(ru.For), durString(ru.RateWindow),
	})
}

func durString(d time.Duration) string {
	if d <= 0 {
		return ""
	}
	return d.String()
}

// UnmarshalJSON parses the wire shape MarshalJSON emits, so rapdiag can
// decode alerts.json from a bundle.
func (ru *Rule) UnmarshalJSON(b []byte) error {
	var w struct {
		Name       string    `json:"name"`
		Help       string    `json:"help"`
		Kind       string    `json:"kind"`
		Series     string    `json:"series"`
		Denom      string    `json:"denom"`
		Warn       jsonValue `json:"warn"`
		Crit       jsonValue `json:"crit"`
		For        string    `json:"for"`
		RateWindow string    `json:"rate_window"`
	}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*ru = Rule{
		Name: w.Name, Help: w.Help, Series: w.Series, Denom: w.Denom,
		Warn: float64(w.Warn), Crit: float64(w.Crit),
	}
	switch w.Kind {
	case "rate":
		ru.Kind = Rate
	case "ratio":
		ru.Kind = Ratio
	}
	if w.For != "" {
		ru.For, _ = time.ParseDuration(w.For)
	}
	if w.RateWindow != "" {
		ru.RateWindow, _ = time.ParseDuration(w.RateWindow)
	}
	return nil
}

func (ru Rule) withDefaults() Rule {
	if ru.ClearRatio <= 0 || ru.ClearRatio > 1 {
		ru.ClearRatio = 0.9
	}
	if ru.RateWindow <= 0 {
		ru.RateWindow = 30 * time.Second
	}
	disabled := math.Inf(1)
	if ru.Cmp == Below {
		disabled = math.Inf(-1)
	}
	if ru.Warn == 0 {
		ru.Warn = disabled
	}
	if ru.Crit == 0 {
		ru.Crit = disabled
	}
	return ru
}

// alert is one rule's runtime. state, transitions, value, and since are
// atomics so the registry's Func instruments can export them without
// taking the engine lock (Func instruments run under the registry lock,
// and the engine evaluates right after a scrape — atomics sever any
// ordering between the two).
type alert struct {
	rule        Rule
	state       atomic.Int64
	transitions atomic.Uint64
	sinceNano   atomic.Int64
	valueBits   atomic.Uint64

	// Engine-lock state for the for-duration machinery.
	pending      State
	pendingSince int64
	reason       string
}

// AlertStatus is one alert's externally visible state, the /alerts and
// bundle document row.
type AlertStatus struct {
	Rule        Rule      `json:"rule"`
	State       string    `json:"state"`
	Value       jsonValue `json:"value"`
	Since       time.Time `json:"since"`
	Transitions uint64    `json:"transitions"`
	Reason      string    `json:"reason,omitempty"`
}

// Engine evaluates alert rules against every recorder frame. Build it
// with NewEngine, add rules, then call Register to export
// rap_alert_state and rap_alert_transitions_total.
type Engine struct {
	rec *Recorder

	mu     sync.Mutex
	alerts []*alert
}

// NewEngine builds an engine over rec and subscribes it to rec's
// scrapes; every Scrape evaluates every rule once.
func NewEngine(rec *Recorder, rules ...Rule) *Engine {
	e := &Engine{rec: rec}
	for _, ru := range rules {
		e.Add(ru)
	}
	rec.Subscribe(e.Eval)
	return e
}

// Add installs one rule. Add before Register so the rule's series are
// exported.
func (e *Engine) Add(ru Rule) {
	a := &alert{rule: ru.withDefaults(), reason: "no data"}
	e.mu.Lock()
	e.alerts = append(e.alerts, a)
	e.mu.Unlock()
}

// Register exports per-rule state and transition metrics on reg.
func (e *Engine) Register(reg *obs.Registry) {
	e.mu.Lock()
	alerts := append([]*alert(nil), e.alerts...)
	e.mu.Unlock()
	for _, a := range alerts {
		a := a
		reg.GaugeFunc("rap_alert_state",
			"Alert state per rule: 0 ok, 1 warn, 2 crit.",
			func() float64 { return float64(a.state.Load()) },
			obs.L("rule", a.rule.Name))
		reg.CounterFunc("rap_alert_transitions_total",
			"Alert state transitions per rule, both directions.",
			func() float64 { return float64(a.transitions.Load()) },
			obs.L("rule", a.rule.Name))
	}
}

// Eval evaluates every rule against one frame. It is the recorder's
// subscriber; tests may call it directly with synthetic frames.
func (e *Engine) Eval(f Frame) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, a := range e.alerts {
		value, ok := e.value(a.rule, f)
		if !ok {
			a.reason = "no data"
			continue
		}
		a.valueBits.Store(math.Float64bits(value))
		e.step(a, value, f.UnixNano)
	}
}

// value computes the rule's scalar for this frame.
func (e *Engine) value(ru Rule, f Frame) (float64, bool) {
	switch ru.Kind {
	case Rate:
		series := e.rec.Query(ru.Series, ru.RateWindow, time.Unix(0, f.UnixNano))
		vals := make([]float64, 0, len(series))
		for _, s := range series {
			if len(s.Points) >= 2 {
				vals = append(vals, s.Rate)
			}
		}
		return fold(ru.Agg, vals)
	case Ratio:
		vals := make([]float64, 0, 4)
		for key, num := range f.Values {
			rest, ok := matchKey(key, ru.Series)
			if !ok {
				continue
			}
			denom, ok := f.Values[ru.Denom+rest]
			if !ok || denom == 0 {
				continue
			}
			vals = append(vals, num/denom)
		}
		return fold(ru.Agg, vals)
	default:
		vals := make([]float64, 0, 4)
		for key, v := range f.Values {
			if _, ok := matchKey(key, ru.Series); ok {
				vals = append(vals, v)
			}
		}
		return fold(ru.Agg, vals)
	}
}

// matchKey reports whether key selects the family sel, returning the
// label remainder ("{...}" or "") used to align ratio denominators.
func matchKey(key, sel string) (rest string, ok bool) {
	if key == sel {
		return "", true
	}
	if strings.HasPrefix(key, sel+"{") {
		return key[len(sel):], true
	}
	return "", false
}

func fold(agg Agg, vals []float64) (float64, bool) {
	if len(vals) == 0 {
		return 0, false
	}
	out := vals[0]
	for _, v := range vals[1:] {
		switch agg {
		case AggMin:
			out = math.Min(out, v)
		case AggSum:
			out += v
		default:
			out = math.Max(out, v)
		}
	}
	if math.IsNaN(out) {
		return 0, false
	}
	return out, true
}

// step runs one alert's state machine: hysteresis decides the desired
// state, For delays the commit. Called under e.mu.
func (e *Engine) step(a *alert, value float64, nowNano int64) {
	cur := State(a.state.Load())
	desired := desiredState(a.rule, cur, value)
	if desired == cur {
		a.pending = cur
		a.reason = ""
		return
	}
	if a.pending != desired {
		a.pending = desired
		a.pendingSince = nowNano
	}
	if nowNano-a.pendingSince < int64(a.rule.For) {
		a.reason = "pending " + desired.String()
		return
	}
	a.state.Store(int64(desired))
	a.transitions.Add(1)
	a.sinceNano.Store(nowNano)
	a.reason = ""
}

// desiredState applies thresholds with hysteresis: a level that has fired
// stays lit until the value retreats past the clear band, so dithering on
// the threshold does not flap the alert.
func desiredState(ru Rule, cur State, value float64) State {
	critOn := levelOn(ru.Cmp, value, ru.Crit, ru.ClearRatio, cur >= StateCrit)
	warnOn := levelOn(ru.Cmp, value, ru.Warn, ru.ClearRatio, cur >= StateWarn)
	switch {
	case critOn:
		return StateCrit
	case warnOn:
		return StateWarn
	default:
		return StateOK
	}
}

func levelOn(cmp Cmp, value, threshold, clearRatio float64, lit bool) bool {
	if math.IsInf(threshold, 0) {
		return false
	}
	if cmp == Above {
		if lit {
			threshold *= clearRatio
		}
		return value >= threshold
	}
	if lit {
		threshold /= clearRatio
	}
	return value <= threshold
}

// Snapshot returns every alert's current status, sorted by rule name.
func (e *Engine) Snapshot() []AlertStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]AlertStatus, 0, len(e.alerts))
	for _, a := range e.alerts {
		out = append(out, AlertStatus{
			Rule:        a.rule,
			State:       State(a.state.Load()).String(),
			Value:       jsonValue(math.Float64frombits(a.valueBits.Load())),
			Since:       time.Unix(0, a.sinceNano.Load()),
			Transitions: a.transitions.Load(),
			Reason:      a.reason,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.Name < out[j].Rule.Name })
	return out
}

// AnyFiring reports whether any alert is not ok. Unlike Firing it
// allocates nothing — cheap enough for per-span force-sampling checks on
// the ingest path.
func (e *Engine) AnyFiring() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, a := range e.alerts {
		if State(a.state.Load()) != StateOK {
			return true
		}
	}
	return false
}

// Firing returns the alerts not currently ok, worst first.
func (e *Engine) Firing() []AlertStatus {
	all := e.Snapshot()
	out := all[:0]
	for _, a := range all {
		if a.State != "ok" {
			out = append(out, a)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].State < out[j].State }) // "crit" < "warn"
	return out
}

// ServeHTTP serves the alert table as JSON at /alerts.
func (e *Engine) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Alerts []AlertStatus `json:"alerts"`
	}{e.Snapshot()})
}
