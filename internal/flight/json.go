package flight

import (
	"encoding/json"
	"math"
	"strconv"
)

// jsonValue is a float64 that survives encoding/json when non-finite.
// Quantile series over empty histograms record NaN — the honest "no
// observations yet" value — and both /vars responses and bundle history
// must still encode. Non-finite values render as strings ("NaN", "+Inf",
// "-Inf") and parse back on the rapdiag side.
type jsonValue float64

func (f jsonValue) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return json.Marshal(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return json.Marshal(v)
}

func (f *jsonValue) UnmarshalJSON(b []byte) error {
	var v float64
	if err := json.Unmarshal(b, &v); err == nil {
		*f = jsonValue(v)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return err
	}
	*f = jsonValue(v)
	return nil
}

type pointWire struct {
	T int64     `json:"t"`
	V jsonValue `json:"v"`
}

func (p Point) MarshalJSON() ([]byte, error) {
	return json.Marshal(pointWire{p.UnixNano, jsonValue(p.Value)})
}

func (p *Point) UnmarshalJSON(b []byte) error {
	var w pointWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*p = Point{UnixNano: w.T, Value: float64(w.V)}
	return nil
}

type seriesWire struct {
	SeriesMeta
	Points []Point   `json:"points"`
	Min    jsonValue `json:"min"`
	Max    jsonValue `json:"max"`
	First  jsonValue `json:"first"`
	Last   jsonValue `json:"last"`
	Rate   jsonValue `json:"rate"`
}

func (s Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(seriesWire{
		s.SeriesMeta, s.Points,
		jsonValue(s.Min), jsonValue(s.Max), jsonValue(s.First), jsonValue(s.Last), jsonValue(s.Rate),
	})
}

func (s *Series) UnmarshalJSON(b []byte) error {
	var w seriesWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*s = Series{
		SeriesMeta: w.SeriesMeta, Points: w.Points,
		Min: float64(w.Min), Max: float64(w.Max),
		First: float64(w.First), Last: float64(w.Last), Rate: float64(w.Rate),
	}
	return nil
}
