package flight

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rap/internal/obs"
)

// Options configures a Recorder. Zero values select the defaults noted on
// each field.
type Options struct {
	// Every is the scrape cadence. Default 1s.
	Every time.Duration
	// Depth is how many frames the ring retains — Depth × Every of
	// history. Default 900 (15 min at 1 s).
	Depth int
	// BlockFrames is how many frames share one delta block. Larger blocks
	// compress better but evict in coarser steps. Default 30.
	BlockFrames int
}

func (o Options) withDefaults() Options {
	if o.Every <= 0 {
		o.Every = time.Second
	}
	if o.Depth <= 0 {
		o.Depth = 900
	}
	if o.BlockFrames <= 0 {
		o.BlockFrames = 30
	}
	if o.BlockFrames > o.Depth {
		o.BlockFrames = o.Depth
	}
	return o
}

// SeriesMeta identifies one recorded series. Key is the exposition-style
// identity (`name` or `name{k="v",...}`); Name is the family name the key
// was derived from — for histogram-derived series (`x_p99`) it is the
// derived name, so queries can select whole derived families.
type SeriesMeta struct {
	Key    string            `json:"key"`
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
}

// Point is one recorded observation.
type Point struct {
	UnixNano int64   `json:"t"`
	Value    float64 `json:"v"`
}

// Series is one series' history inside a query window, with the window
// aggregates precomputed so callers (alert rules, /statusz sparklines)
// don't re-derive them.
type Series struct {
	SeriesMeta
	Points []Point `json:"points"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	First  float64 `json:"first"`
	Last   float64 `json:"last"`
	// Rate is (Last-First)/window-span in per-second units — the
	// derivative estimate rate and ratio alert rules consume. Zero when
	// the window holds fewer than two points.
	Rate float64 `json:"rate"`
}

// Frame is one scrape as seen by subscribers (the alert engine): every
// series' value keyed by series identity.
type Frame struct {
	UnixNano int64
	Values   map[string]float64
}

// Recorder scrapes a Registry on a cadence into a bounded ring of
// delta-compressed frames. All exported methods are safe for concurrent
// use. The scrape path takes no locks shared with the ingest hot path —
// it reads the registry through Snapshot like any other scraper.
type Recorder struct {
	reg *obs.Registry
	opt Options

	mu     sync.Mutex
	dict   map[string]int // series key -> dense id
	meta   []SeriesMeta   // indexed by id
	blocks []*block       // oldest first; last is the open block
	last   []uint64       // previous frame's bits, XOR base within a block
	frames int            // total frames across blocks
	subs   []func(Frame)

	// Exported via Func instruments, which run under the registry lock —
	// atomics keep them from ever touching r.mu.
	scrapes     atomic.Uint64
	ringBytes   atomic.Int64
	seriesGauge atomic.Int64
	frameGauge  atomic.Int64
}

// NewRecorder builds a Recorder over reg. Call Register to export the
// recorder's own metrics and Start (or Scrape) to begin recording.
func NewRecorder(reg *obs.Registry, opt Options) *Recorder {
	return &Recorder{reg: reg, opt: opt.withDefaults(), dict: make(map[string]int)}
}

// Every returns the configured scrape cadence.
func (r *Recorder) Every() time.Duration { return r.opt.Every }

// Depth returns the configured ring depth in frames.
func (r *Recorder) Depth() int { return r.opt.Depth }

// Register exports the recorder's self-metrics on reg.
func (r *Recorder) Register(reg *obs.Registry) {
	reg.CounterFunc("rap_flight_scrapes_total",
		"Registry scrapes recorded by the flight recorder.",
		func() float64 { return float64(r.scrapes.Load()) })
	reg.GaugeFunc("rap_flight_bytes",
		"Bytes held by the flight recorder's frame ring.",
		func() float64 { return float64(r.ringBytes.Load()) })
	reg.GaugeFunc("rap_flight_series",
		"Distinct series the flight recorder tracks.",
		func() float64 { return float64(r.seriesGauge.Load()) })
	reg.GaugeFunc("rap_flight_frames",
		"Frames currently retained in the ring.",
		func() float64 { return float64(r.frameGauge.Load()) })
}

// Subscribe registers fn to run after every scrape with the flattened
// frame. Subscribers run on the scrape goroutine, outside the recorder
// lock; a slow subscriber delays the next scrape, not queries.
func (r *Recorder) Subscribe(fn func(Frame)) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

// Start scrapes on the configured cadence until the returned stop
// function is called. Stop waits for an in-flight scrape to finish.
func (r *Recorder) Start() (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(r.opt.Every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				r.Scrape(now)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// Scrape takes one sample of the registry: flattens the snapshot into
// (key, value) samples, appends a delta-compressed frame to the ring, and
// notifies subscribers. Lock order is registry-then-recorder: Snapshot
// completes before r.mu is taken, so the recorder's own GaugeFuncs (which
// run under the registry lock) can never deadlock against a scrape.
func (r *Recorder) Scrape(now time.Time) {
	samples := flatten(r.reg.Snapshot())

	r.mu.Lock()
	vals := make([]uint64, len(r.meta), len(r.meta)+8)
	copy(vals, r.last) // carry forward, in case a series ever skips a frame
	for _, s := range samples {
		id, ok := r.dict[s.meta.Key]
		if !ok {
			id = len(r.meta)
			r.dict[s.meta.Key] = id
			r.meta = append(r.meta, s.meta)
			vals = append(vals, 0)
		}
		vals[id] = math.Float64bits(s.value)
	}

	var cur *block
	var base []uint64
	if n := len(r.blocks); n > 0 && r.blocks[n-1].frames() < r.opt.BlockFrames {
		cur = r.blocks[n-1]
		base = r.last
	} else {
		cur = &block{}
		r.blocks = append(r.blocks, cur)
	}
	cur.appendFrame(now.UnixNano(), vals, base)
	r.last = vals
	r.frames++

	// Evict whole oldest blocks once the ring exceeds its depth. The open
	// block is never the oldest unless it is the only one.
	for r.frames > r.opt.Depth && len(r.blocks) > 1 {
		r.frames -= r.blocks[0].frames()
		r.blocks = r.blocks[1:]
	}

	var bytes int64
	for _, b := range r.blocks {
		bytes += int64(b.sizeBytes())
	}
	r.ringBytes.Store(bytes)
	r.seriesGauge.Store(int64(len(r.meta)))
	r.frameGauge.Store(int64(r.frames))
	subs := r.subs
	r.mu.Unlock()

	r.scrapes.Add(1)
	if len(subs) > 0 {
		f := Frame{UnixNano: now.UnixNano(), Values: make(map[string]float64, len(samples))}
		for _, s := range samples {
			f.Values[s.meta.Key] = s.value
		}
		for _, fn := range subs {
			fn(f)
		}
	}
}

// Query returns the history of every series matching sel inside the
// trailing window ending at now. sel matches a full series key, a family
// name (all label sets), or "" for everything; window <= 0 means the
// whole ring.
func (r *Recorder) Query(sel string, window time.Duration, now time.Time) []Series {
	cutoff := int64(math.MinInt64)
	if window > 0 {
		cutoff = now.Add(-window).UnixNano()
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	ids := make([]int, 0, 8)
	for id, m := range r.meta {
		if sel == "" || m.Key == sel || m.Name == sel || strings.HasPrefix(m.Key, sel+"{") {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	out := make([]Series, len(ids))
	for i, id := range ids {
		out[i] = Series{SeriesMeta: r.meta[id]}
	}
	for _, b := range r.blocks {
		b.decode(func(t int64, vals []uint64) {
			if t < cutoff {
				return
			}
			for i, id := range ids {
				if id >= len(vals) {
					continue // series not yet registered at this frame
				}
				v := math.Float64frombits(vals[id])
				s := &out[i]
				if len(s.Points) == 0 {
					s.Min, s.Max, s.First = v, v, v
				} else {
					s.Min = math.Min(s.Min, v)
					s.Max = math.Max(s.Max, v)
				}
				s.Last = v
				s.Points = append(s.Points, Point{UnixNano: t, Value: v})
			}
		})
	}
	for i := range out {
		s := &out[i]
		if n := len(s.Points); n >= 2 {
			span := float64(s.Points[n-1].UnixNano-s.Points[0].UnixNano) / float64(time.Second)
			if span > 0 {
				s.Rate = (s.Last - s.First) / span
			}
		}
	}
	return out
}

// Keys returns every recorded series key, sorted.
func (r *Recorder) Keys() []string {
	r.mu.Lock()
	keys := make([]string, 0, len(r.meta))
	for _, m := range r.meta {
		keys = append(keys, m.Key)
	}
	r.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// ServeHTTP serves windowed series queries: /vars?name=X&window=30s
// returns the matching histories as JSON; without a name it returns the
// key inventory.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	name := req.URL.Query().Get("name")
	if name == "" {
		json.NewEncoder(w).Encode(struct {
			Every string   `json:"scrape_every"`
			Depth int      `json:"depth_frames"`
			Keys  []string `json:"keys"`
		}{r.opt.Every.String(), r.opt.Depth, r.Keys()})
		return
	}
	window := time.Duration(0)
	if ws := req.URL.Query().Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad window %q: %v", ws, err), http.StatusBadRequest)
			return
		}
		window = d
	}
	series := r.Query(name, window, time.Now())
	if series == nil {
		series = []Series{}
	}
	json.NewEncoder(w).Encode(struct {
		Name   string   `json:"name"`
		Window string   `json:"window,omitempty"`
		Series []Series `json:"series"`
	}{name, windowString(window), series})
}

func windowString(d time.Duration) string {
	if d <= 0 {
		return ""
	}
	return d.String()
}

type sample struct {
	meta  SeriesMeta
	value float64
}

// flatten turns a registry snapshot into flat (key, value) samples.
// Counters, gauges, and funcs map 1:1; each histogram series derives
// five: _count, _sum, and interpolated _p50/_p95/_p99, so latency
// quantiles are recorded (and alertable) as plain series.
func flatten(snap []obs.FamilySnapshot) []sample {
	out := make([]sample, 0, len(snap)*2)
	for _, f := range snap {
		hist := f.Kind == obs.KindHistogram.String()
		for _, s := range f.Series {
			if !hist {
				out = append(out, sample{meta: seriesMeta(f.Name, s.Labels), value: s.Value})
				continue
			}
			out = append(out,
				sample{meta: seriesMeta(f.Name+"_count", s.Labels), value: float64(s.Count)},
				sample{meta: seriesMeta(f.Name+"_sum", s.Labels), value: s.Sum},
				sample{meta: seriesMeta(f.Name+"_p50", s.Labels), value: obs.QuantileFromBuckets(s.Buckets, 0.50)},
				sample{meta: seriesMeta(f.Name+"_p95", s.Labels), value: obs.QuantileFromBuckets(s.Buckets, 0.95)},
				sample{meta: seriesMeta(f.Name+"_p99", s.Labels), value: obs.QuantileFromBuckets(s.Buckets, 0.99)},
			)
		}
	}
	return out
}

// seriesMeta builds the exposition-style key name{k="v",...} with label
// keys sorted, matching Snapshot's deterministic ordering.
func seriesMeta(name string, labels map[string]string) SeriesMeta {
	m := SeriesMeta{Key: name, Name: name, Labels: labels}
	if len(labels) == 0 {
		return m
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, labels[k])
	}
	sb.WriteByte('}')
	m.Key = sb.String()
	return m
}
