package flight

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"rap/internal/obs"
)

// frame builds a synthetic scrape frame at second i.
func frame(i int, values map[string]float64) Frame {
	return Frame{UnixNano: at(i).UnixNano(), Values: values}
}

func newTestEngine(t *testing.T, rules ...Rule) *Engine {
	t.Helper()
	reg := obs.NewRegistry()
	rec := NewRecorder(reg, Options{})
	return NewEngine(rec, rules...)
}

func stateOf(t *testing.T, e *Engine, rule string) AlertStatus {
	t.Helper()
	for _, a := range e.Snapshot() {
		if a.Rule.Name == rule {
			return a
		}
	}
	t.Fatalf("rule %q not found", rule)
	return AlertStatus{}
}

// TestThresholdLadder walks a value up and down through warn and crit and
// checks the state ladder, transition counting, and hysteresis.
func TestThresholdLadder(t *testing.T) {
	e := newTestEngine(t, Rule{
		Name: "r", Kind: Threshold, Series: "x",
		Warn: 10, Crit: 20, ClearRatio: 0.8,
	})
	steps := []struct {
		v    float64
		want string
	}{
		{5, "ok"},
		{10, "warn"}, // at warn threshold
		{9, "warn"},  // hysteresis: clear needs < 8
		{7.9, "ok"},  // below 0.8×10
		{25, "crit"}, // straight to crit
		{17, "crit"}, // hysteresis: crit clears below 16
		{15, "warn"}, // crit cleared, warn band (lit) holds >= 8
		{3, "ok"},
	}
	for i, s := range steps {
		e.Eval(frame(i, map[string]float64{"x": s.v}))
		if got := stateOf(t, e, "r"); got.State != s.want {
			t.Fatalf("step %d (v=%v): state %s, want %s", i, s.v, got.State, s.want)
		}
	}
	// ok→warn, warn→ok, ok→crit, crit→warn, warn→ok = 5 transitions.
	if got := stateOf(t, e, "r").Transitions; got != 5 {
		t.Errorf("transitions = %d, want 5", got)
	}
}

// TestForDuration checks a transition only commits after the desired
// state holds For long, in both directions.
func TestForDuration(t *testing.T) {
	e := newTestEngine(t, Rule{
		Name: "r", Kind: Threshold, Series: "x",
		Crit: 10, For: 3 * time.Second, ClearRatio: 1,
	})
	hot := map[string]float64{"x": 50}
	cold := map[string]float64{"x": 0}

	e.Eval(frame(0, hot))
	if got := stateOf(t, e, "r"); got.State != "ok" || got.Reason != "pending crit" {
		t.Fatalf("t=0: %s/%q, want ok pending", got.State, got.Reason)
	}
	e.Eval(frame(1, cold)) // dip resets the pending clock
	e.Eval(frame(2, hot))
	e.Eval(frame(4, hot))
	if got := stateOf(t, e, "r").State; got != "ok" {
		t.Fatalf("t=4 (held 2s): state %s, want ok", got)
	}
	e.Eval(frame(5, hot)) // held 3s since t=2
	if got := stateOf(t, e, "r").State; got != "crit" {
		t.Fatalf("t=5 (held 3s): state %s, want crit", got)
	}
	// Clearing needs its own 3s hold.
	e.Eval(frame(6, cold))
	if got := stateOf(t, e, "r").State; got != "crit" {
		t.Fatal("clear committed immediately despite For")
	}
	e.Eval(frame(9, cold))
	if got := stateOf(t, e, "r").State; got != "ok" {
		t.Fatal("clear never committed")
	}
}

// TestRatioRule checks per-label alignment of numerator and denominator.
func TestRatioRule(t *testing.T) {
	e := newTestEngine(t, Rule{
		Name: "sat", Kind: Ratio,
		Series: "depth", Denom: "cap", Agg: AggMax, Warn: 0.8, Crit: 0.95,
	})
	e.Eval(frame(0, map[string]float64{
		`depth{q="a"}`: 10, `cap{q="a"}`: 100, // 0.10
		`depth{q="b"}`: 90, `cap{q="b"}`: 100, // 0.90 -> max
	}))
	got := stateOf(t, e, "sat")
	if got.State != "warn" {
		t.Fatalf("state = %s, want warn", got.State)
	}
	if v := float64(got.Value); v != 0.9 {
		t.Fatalf("value = %v, want 0.9", v)
	}
	// Zero denominator is skipped, not a division.
	e2 := newTestEngine(t, Rule{Name: "sat", Kind: Ratio, Series: "d", Denom: "c", Warn: 0.5})
	e2.Eval(frame(0, map[string]float64{"d": 5, "c": 0}))
	if got := stateOf(t, e2, "sat"); got.Reason != "no data" {
		t.Fatalf("zero denom reason = %q, want no data", got.Reason)
	}
}

// TestRateRule drives a counter through the recorder and checks the rate
// rule fires on its derivative.
func TestRateRule(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("ctr", "")
	rec := NewRecorder(reg, Options{})
	e := NewEngine(rec, Rule{
		Name: "growth", Kind: Rate, Series: "ctr", Agg: AggSum,
		Warn: 50, RateWindow: 10 * time.Second, ClearRatio: 1,
	})
	// 10/s for 10s: under warn.
	for i := 0; i < 10; i++ {
		c.Add(10)
		rec.Scrape(at(i))
	}
	if got := stateOf(t, e, "growth").State; got != "ok" {
		t.Fatalf("slow growth state = %s, want ok", got)
	}
	// 100/s: over warn.
	for i := 10; i < 20; i++ {
		c.Add(100)
		rec.Scrape(at(i))
	}
	if got := stateOf(t, e, "growth").State; got != "warn" {
		t.Fatalf("fast growth state = %s, want warn", got)
	}
	// Counter stops: rate decays back to ok.
	for i := 20; i < 35; i++ {
		rec.Scrape(at(i))
	}
	if got := stateOf(t, e, "growth").State; got != "ok" {
		t.Fatalf("idle state = %s, want ok", got)
	}
}

// TestMissingSeriesRetainsState: an alert whose series vanishes keeps its
// last state and says why.
func TestMissingSeriesRetainsState(t *testing.T) {
	e := newTestEngine(t, Rule{Name: "r", Kind: Threshold, Series: "x", Crit: 1, ClearRatio: 1})
	e.Eval(frame(0, map[string]float64{"x": 5}))
	if got := stateOf(t, e, "r").State; got != "crit" {
		t.Fatalf("state = %s, want crit", got)
	}
	e.Eval(frame(1, map[string]float64{"other": 0}))
	got := stateOf(t, e, "r")
	if got.State != "crit" || got.Reason != "no data" {
		t.Fatalf("after vanish: %s/%q, want crit/no data", got.State, got.Reason)
	}
}

// TestBelowRule checks the mirrored comparison direction.
func TestBelowRule(t *testing.T) {
	e := newTestEngine(t, Rule{
		Name: "low", Kind: Threshold, Series: "x", Cmp: Below,
		Warn: 10, ClearRatio: 0.5, // clears above 10/0.5 = 20
	})
	e.Eval(frame(0, map[string]float64{"x": 15}))
	if got := stateOf(t, e, "low").State; got != "ok" {
		t.Fatal("15 should be ok")
	}
	e.Eval(frame(1, map[string]float64{"x": 9}))
	if got := stateOf(t, e, "low").State; got != "warn" {
		t.Fatal("9 should warn")
	}
	e.Eval(frame(2, map[string]float64{"x": 15}))
	if got := stateOf(t, e, "low").State; got != "warn" {
		t.Fatal("15 should still warn inside the hysteresis band")
	}
	e.Eval(frame(3, map[string]float64{"x": 21}))
	if got := stateOf(t, e, "low").State; got != "ok" {
		t.Fatal("21 should clear")
	}
}

// TestEngineMetricsAndHTTP checks rap_alert_state/transitions exposition
// and the /alerts document shape.
func TestEngineMetricsAndHTTP(t *testing.T) {
	reg := obs.NewRegistry()
	rec := NewRecorder(reg, Options{})
	e := NewEngine(rec, Rule{Name: "r", Kind: Threshold, Series: "x", Warn: 1, ClearRatio: 1})
	e.Register(reg)
	e.Eval(frame(0, map[string]float64{"x": 5}))

	var state, trans float64
	for _, f := range reg.Snapshot() {
		for _, s := range f.Series {
			if s.Labels["rule"] != "r" {
				continue
			}
			switch f.Name {
			case "rap_alert_state":
				state = s.Value
			case "rap_alert_transitions_total":
				trans = s.Value
			}
		}
	}
	if state != 1 || trans != 1 {
		t.Fatalf("exported state=%v transitions=%v, want 1/1", state, trans)
	}

	srv := httptest.NewServer(e)
	defer srv.Close()
	var doc struct {
		Alerts []AlertStatus `json:"alerts"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/alerts")), &doc); err != nil {
		t.Fatalf("/alerts not JSON: %v", err)
	}
	if len(doc.Alerts) != 1 || doc.Alerts[0].State != "warn" {
		t.Fatalf("/alerts = %+v", doc.Alerts)
	}
}

// TestBuiltinRules sanity-checks the stock set: audit latches crit on any
// violation, admission maps levels to states, staleness follows cadence.
func TestBuiltinRules(t *testing.T) {
	rules := BuiltinRules(BuiltinConfig{CheckpointEvery: time.Second})
	byName := map[string]Rule{}
	for _, r := range rules {
		byName[r.Name] = r
	}
	for _, want := range []string{
		"audit_violations", "admission_level", "queue_saturation",
		"arena_growth", "trace_evictions", "checkpoint_staleness",
	} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("builtin rule %q missing", want)
		}
	}
	e := newTestEngine(t, byName["audit_violations"], byName["admission_level"], byName["checkpoint_staleness"])
	e.Eval(frame(0, map[string]float64{
		"rap_audit_violations_total":       1,
		"rap_admit_level":                  2,
		"rap_checkpoint_staleness_seconds": 4,
	}))
	if got := stateOf(t, e, "audit_violations").State; got != "crit" {
		t.Errorf("audit with violation: %s, want crit", got)
	}
	if got := stateOf(t, e, "admission_level").State; got != "crit" {
		t.Errorf("admission at Siege: %s, want crit", got)
	}
	if got := stateOf(t, e, "checkpoint_staleness").State; got != "warn" {
		t.Errorf("staleness 4×cadence: %s, want warn", got)
	}
	e.Eval(frame(1, map[string]float64{
		"rap_audit_violations_total":       1,
		"rap_admit_level":                  0,
		"rap_checkpoint_staleness_seconds": 0.5,
	}))
	if got := stateOf(t, e, "audit_violations").State; got != "crit" {
		t.Errorf("audit must latch: %s, want crit", got)
	}
	if got := stateOf(t, e, "admission_level").State; got != "ok" {
		t.Errorf("admission back to Normal: %s, want ok", got)
	}
	if got := stateOf(t, e, "checkpoint_staleness").State; got != "ok" {
		t.Errorf("fresh checkpoint: %s, want ok", got)
	}
	if cs := byName["checkpoint_staleness"]; cs.Warn != 3 || cs.Crit != 10 {
		t.Errorf("staleness thresholds = %v/%v, want 3/10", cs.Warn, cs.Crit)
	}
}
