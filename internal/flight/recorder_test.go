package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rap/internal/obs"
)

func at(i int) time.Time { return time.Unix(1000+int64(i), 0) }

// TestRecorderRoundTrip drives known values through the compressed ring
// and checks Query returns them exactly — XOR delta coding is lossless.
func TestRecorderRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("g", "")
	c := reg.Counter("c", "", obs.L("shard", "0"))
	rec := NewRecorder(reg, Options{Depth: 100, BlockFrames: 7})

	want := []float64{0, 1.5, 1.5, -3, 1e12, 0.1}
	for i, v := range want {
		g.Set(v)
		c.Add(uint64(i))
		rec.Scrape(at(i))
	}

	series := rec.Query("g", 0, at(len(want)))
	if len(series) != 1 {
		t.Fatalf("query g: %d series, want 1", len(series))
	}
	s := series[0]
	if len(s.Points) != len(want) {
		t.Fatalf("points = %d, want %d", len(s.Points), len(want))
	}
	for i, p := range s.Points {
		if p.Value != want[i] {
			t.Errorf("point %d = %v, want %v", i, p.Value, want[i])
		}
		if p.UnixNano != at(i).UnixNano() {
			t.Errorf("point %d time = %d, want %d", i, p.UnixNano, at(i).UnixNano())
		}
	}
	if s.Min != -3 || s.Max != 1e12 || s.First != 0 || s.Last != 0.1 {
		t.Errorf("aggregates min=%v max=%v first=%v last=%v", s.Min, s.Max, s.First, s.Last)
	}

	// Labeled counter selected by family name; cumulative 0+0+1+...+5.
	series = rec.Query("c", 0, at(len(want)))
	if len(series) != 1 {
		t.Fatalf("query c: %d series, want 1", len(series))
	}
	if got := series[0].Last; got != 15 {
		t.Errorf("counter last = %v, want 15", got)
	}
	if key := series[0].Key; key != `c{shard="0"}` {
		t.Errorf("counter key = %q", key)
	}
}

// TestRecorderWindowAndRate checks window clipping and the derivative.
func TestRecorderWindowAndRate(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("g", "")
	rec := NewRecorder(reg, Options{})
	for i := 0; i < 60; i++ {
		g.Set(float64(2 * i)) // slope 2/s at 1 scrape per second
		rec.Scrape(at(i))
	}
	now := at(59)
	series := rec.Query("g", 10*time.Second, now)
	if len(series) != 1 {
		t.Fatalf("series = %d, want 1", len(series))
	}
	s := series[0]
	if len(s.Points) != 11 { // t=49..59 inclusive
		t.Fatalf("windowed points = %d, want 11", len(s.Points))
	}
	if math.Abs(s.Rate-2) > 1e-9 {
		t.Errorf("rate = %v, want 2", s.Rate)
	}
}

// TestRecorderEvictionBounded checks the ring stays at its depth and its
// reported bytes stop growing once series values stabilise.
func TestRecorderEvictionBounded(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("g", "")
	rec := NewRecorder(reg, Options{Depth: 50, BlockFrames: 10})
	var maxBytes int64
	for i := 0; i < 500; i++ {
		g.Set(float64(i % 7))
		rec.Scrape(at(i))
		if b := rec.ringBytes.Load(); b > maxBytes {
			maxBytes = b
		}
	}
	if got := rec.frameGauge.Load(); got > 50+10 {
		t.Errorf("frames retained = %d, want <= depth+block slack", got)
	}
	series := rec.Query("g", 0, at(500))
	if n := len(series[0].Points); n > 60 || n < 40 {
		t.Errorf("retained points = %d, want ~50", n)
	}
	// Oldest retained frame must be recent: eviction really dropped data.
	if first := series[0].Points[0].UnixNano; first < at(430).UnixNano() {
		t.Errorf("oldest frame at %d, eviction not happening", first)
	}
	if maxBytes == 0 {
		t.Fatal("ring bytes never reported")
	}
	// A stable gauge XORs to zero: generous ceiling proves boundedness.
	if maxBytes > 1<<20 {
		t.Errorf("ring bytes peaked at %d, want bounded well under 1MiB", maxBytes)
	}
}

// TestRecorderWindowAcrossEvictionBoundaries checks windowed queries stay
// exact when the window edge lands inside a delta block, on a block
// boundary, or beyond evicted history — and that evicting a whole block
// shifts the answer by exactly that block.
func TestRecorderWindowAcrossEvictionBoundaries(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("g", "")
	rec := NewRecorder(reg, Options{Depth: 50, BlockFrames: 10})
	// Value == scrape index, so every decoded point self-identifies.
	for i := 0; i < 200; i++ {
		g.Set(float64(i))
		rec.Scrape(at(i))
	}
	now := at(199)

	check := func(name string, window time.Duration, wantFirst, wantLast int) {
		t.Helper()
		series := rec.Query("g", window, now)
		if len(series) != 1 {
			t.Fatalf("%s: series = %d, want 1", name, len(series))
		}
		pts := series[0].Points
		if len(pts) != wantLast-wantFirst+1 {
			t.Fatalf("%s: %d points, want %d..%d", name, len(pts), wantFirst, wantLast)
		}
		for j, p := range pts {
			idx := wantFirst + j
			if p.UnixNano != at(idx).UnixNano() {
				t.Fatalf("%s: point %d at %d, want t=%d — gap or duplicate at a block seam", name, j, p.UnixNano, idx)
			}
			if p.Value != float64(idx) {
				t.Fatalf("%s: point t=%d decoded %v, want %v", name, idx, p.Value, idx)
			}
		}
	}

	// 200 scrapes with Depth 50 / BlockFrames 10 retain exactly frames
	// 150..199 (eviction drops whole oldest blocks).
	check("full history", 0, 150, 199)
	// Window edge inside a block: cutoff t=174 is mid-block.
	check("mid-block edge", 25*time.Second, 174, 199)
	// Window edge exactly on a block boundary.
	check("block-aligned edge", 19*time.Second, 180, 199)
	// Window reaching past evicted history clips to what is retained.
	check("past evicted history", 120*time.Second, 150, 199)

	// Rate comes from the windowed points only: slope is 1/s throughout.
	if s := rec.Query("g", 25*time.Second, now)[0]; math.Abs(s.Rate-1) > 1e-9 {
		t.Errorf("windowed rate = %v, want 1", s.Rate)
	}

	// One more scrape pushes frames past Depth and evicts exactly one
	// whole block: the oldest ten frames vanish together.
	g.Set(200)
	rec.Scrape(at(200))
	now = at(200)
	check("after block eviction", 0, 160, 200)
}

// TestRecorderHistogramDerivedSeries checks histograms flatten into
// _count/_sum/_p50/_p95/_p99 series.
func TestRecorderHistogramDerivedSeries(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat", "", []float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h.Observe(0.5) // (0,1]
	}
	for i := 0; i < 50; i++ {
		h.Observe(1.5) // (1,2]
	}
	rec := NewRecorder(reg, Options{})
	rec.Scrape(at(0))
	for _, want := range []struct {
		sel string
		val float64
	}{
		{"lat_count", 100},
		{"lat_sum", 100},
		{"lat_p50", 1}, // rank 50 exactly fills (0,1]
		{"lat_p95", 1.9},
	} {
		series := rec.Query(want.sel, 0, at(1))
		if len(series) != 1 {
			t.Fatalf("%s: %d series", want.sel, len(series))
		}
		if got := series[0].Last; math.Abs(got-want.val) > 1e-9 {
			t.Errorf("%s = %v, want %v", want.sel, got, want.val)
		}
	}
}

// TestRecorderLateSeries registers a series mid-flight and checks earlier
// frames simply lack it while later ones carry it.
func TestRecorderLateSeries(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("a", "").Set(1)
	rec := NewRecorder(reg, Options{BlockFrames: 4})
	rec.Scrape(at(0))
	rec.Scrape(at(1))
	reg.Gauge("b", "").Set(7)
	rec.Scrape(at(2))
	series := rec.Query("b", 0, at(3))
	if len(series) != 1 {
		t.Fatalf("series = %d, want 1", len(series))
	}
	if len(series[0].Points) != 1 || series[0].Points[0].Value != 7 {
		t.Fatalf("late series points = %+v", series[0].Points)
	}
}

// TestRecorderVarsEndpoint exercises the /vars handler: inventory
// without a name, JSON series with one, 400 on a bad window.
func TestRecorderVarsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("g", "").Set(3)
	rec := NewRecorder(reg, Options{})
	rec.Scrape(time.Now()) // the handler windows relative to wall clock
	srv := httptest.NewServer(rec)
	defer srv.Close()

	body := get(t, srv.URL+"/vars")
	var inv struct {
		Keys []string `json:"keys"`
	}
	if err := json.Unmarshal([]byte(body), &inv); err != nil {
		t.Fatalf("inventory not JSON: %v", err)
	}
	if len(inv.Keys) == 0 || !contains(inv.Keys, "g") {
		t.Fatalf("inventory missing g: %v", inv.Keys)
	}

	body = get(t, srv.URL+"/vars?name=g&window=1h")
	var resp struct {
		Series []Series `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("series not JSON: %v", err)
	}
	if len(resp.Series) != 1 || resp.Series[0].Last != 3 {
		t.Fatalf("series = %+v", resp.Series)
	}

	res, err := srv.Client().Get(srv.URL + "/vars?name=g&window=bogus")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 400 {
		t.Fatalf("bad window status = %d, want 400", res.StatusCode)
	}
}

// TestRecorderScrapeRace runs scrapes, queries, and new registrations
// concurrently; -race proves the locking story.
func TestRecorderScrapeRace(t *testing.T) {
	reg := obs.NewRegistry()
	rec := NewRecorder(reg, Options{Depth: 64, BlockFrames: 8})
	rec.Register(reg)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.Gauge("g", "", obs.L("i", fmt.Sprint(i%13))).Set(float64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec.Query("g", time.Minute, at(i))
			rec.Keys()
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			reg.Snapshot() // concurrent scraper (e.g. /metrics) alongside the recorder
		}
	}()
	for i := 0; i < 300; i++ {
		rec.Scrape(at(i))
	}
	close(stop)
	wg.Wait()
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func get(t *testing.T, url string) string {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
