package flight

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"rap/internal/obs"
)

func buildTestBundle(t *testing.T) map[string][]byte {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Gauge("g", "a gauge").Set(42)
	tr := obs.NewStructuralTrace(1, 16)
	tr.Record(obs.StructuralEvent{Op: "split", Lo: 1, Hi: 2})
	rec := NewRecorder(reg, Options{})
	for i := 0; i < 5; i++ {
		rec.Scrape(at(i))
	}
	eng := NewEngine(rec, Rule{Name: "r", Kind: Threshold, Series: "g", Warn: 10})
	eng.Eval(frame(5, map[string]float64{"g": 42}))

	var buf bytes.Buffer
	err := WriteBundle(&buf, BundleConfig{
		App:      "test",
		Registry: reg,
		Recorder: rec,
		Engine:   eng,
		Trace:    tr,
		AuditReport: func() (any, bool) {
			return map[string]any{"verdict": "pass", "violations_total": 0}, true
		},
		AdmitState:      func() (any, bool) { return map[string]any{"level": "Normal"}, true },
		Spans:           jsonlWriter(`{"name":"v1.estimate","trace_id":"t1"}` + "\n"),
		Profile:         func() (any, bool) { return map[string]any{"theta": 0.05}, true },
		EffectiveConfig: map[string]any{"epsilon": 0.01},
	})
	if err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	return untar(t, buf.Bytes())
}

// jsonlWriter satisfies BundleConfig.Spans with canned JSONL content.
type jsonlWriter string

func (s jsonlWriter) WriteJSONL(w io.Writer) error {
	_, err := io.WriteString(w, string(s))
	return err
}

func untar(t *testing.T, raw []byte) map[string][]byte {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("bundle not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	out := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle not tar: %v", err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		out[hdr.Name] = body
	}
	return out
}

// TestBundleContents checks every promised entry exists and decodes.
func TestBundleContents(t *testing.T) {
	entries := buildTestBundle(t)
	for _, name := range []string{
		"meta.json", "build.json", "config.json", "metrics.prom",
		"metrics_history.json", "alerts.json", "trace.jsonl",
		"spans.jsonl", "profile.json", "audit.json", "admit.json",
	} {
		if _, ok := entries[name]; !ok {
			t.Errorf("bundle missing %s (has %v)", name, keysOf(entries))
		}
	}

	var meta bundleMeta
	if err := json.Unmarshal(entries["meta.json"], &meta); err != nil {
		t.Fatalf("meta.json: %v", err)
	}
	if meta.Format != BundleFormat || meta.App != "test" || meta.PID == 0 {
		t.Fatalf("meta = %+v", meta)
	}

	var hist History
	if err := json.Unmarshal(entries["metrics_history.json"], &hist); err != nil {
		t.Fatalf("metrics_history.json: %v", err)
	}
	if hist.Format != HistoryFormat {
		t.Fatalf("history format = %q", hist.Format)
	}
	found := false
	for _, s := range hist.Series {
		if s.Key == "g" {
			found = true
			if len(s.Points) != 5 || s.Last != 42 {
				t.Fatalf("history for g = %+v", s)
			}
		}
	}
	if !found {
		t.Fatal("history missing series g")
	}

	var alerts struct {
		Alerts []AlertStatus `json:"alerts"`
	}
	if err := json.Unmarshal(entries["alerts.json"], &alerts); err != nil {
		t.Fatalf("alerts.json: %v", err)
	}
	if len(alerts.Alerts) != 1 || alerts.Alerts[0].State != "warn" {
		t.Fatalf("alerts.json = %+v", alerts.Alerts)
	}

	if !strings.Contains(string(entries["metrics.prom"]), "g 42") {
		t.Error("metrics.prom missing gauge sample")
	}
	if !strings.Contains(string(entries["trace.jsonl"]), `"op":"split"`) {
		t.Error("trace.jsonl missing recorded event")
	}
	if !strings.Contains(string(entries["spans.jsonl"]), `"name":"v1.estimate"`) {
		t.Error("spans.jsonl missing recorded span")
	}
	if !strings.Contains(string(entries["profile.json"]), `"theta"`) {
		t.Error("profile.json missing profile document")
	}
	if !strings.Contains(string(entries["audit.json"]), `"verdict": "pass"`) {
		t.Error("audit.json missing verdict")
	}
}

// TestBundleOmitsMissingSubsystems: a minimal config still yields a valid
// archive with just meta and build info.
func TestBundleOmitsMissingSubsystems(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBundle(&buf, BundleConfig{App: "bare"}); err != nil {
		t.Fatal(err)
	}
	entries := untar(t, buf.Bytes())
	if _, ok := entries["meta.json"]; !ok {
		t.Fatal("bare bundle missing meta.json")
	}
	if _, ok := entries["metrics.prom"]; ok {
		t.Fatal("bare bundle should not contain metrics.prom")
	}
}

// TestBundleHandler checks the HTTP download path.
func TestBundleHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("g", "").Set(1)
	srv := httptest.NewServer(BundleHandler(func() BundleConfig {
		return BundleConfig{App: "http", Registry: reg}
	}))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("content-type = %q", ct)
	}
	if cd := res.Header.Get("Content-Disposition"); !strings.Contains(cd, "attachment") {
		t.Fatalf("content-disposition = %q", cd)
	}
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	entries := untar(t, raw)
	if _, ok := entries["metrics.prom"]; !ok {
		t.Fatal("served bundle missing metrics.prom")
	}
}

// TestWriteBundleFile checks the on-disk path and its restrictive mode.
func TestWriteBundleFile(t *testing.T) {
	path := t.TempDir() + "/b.tar.gz"
	if err := WriteBundleFile(path, BundleConfig{App: "file"}); err != nil {
		t.Fatal(err)
	}
	raw := readFile(t, path)
	if _, ok := untar(t, raw)["meta.json"]; !ok {
		t.Fatal("file bundle missing meta.json")
	}
}

func keysOf(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
