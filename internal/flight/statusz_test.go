package flight

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"rap/internal/obs"
)

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStatuszRenders drives a populated page and checks the load-bearing
// sections appear: firing alert with class, latency quantiles, facts, and
// a sparkline for recorded history.
func TestStatuszRenders(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("g", "")
	h := reg.Duration("rap_ingest_batch_seconds", "")
	// Mass across two octave buckets so the p50 lands mid-bucket via
	// interpolation (single-occupied-bucket inputs answer the bound).
	for i := 0; i < 60; i++ {
		h.Observe(0.0017)
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.0007)
	}
	rec := NewRecorder(reg, Options{})
	eng := NewEngine(rec, Rule{Name: "hot", Kind: Threshold, Series: "g", Crit: 10})
	// Scrape at recent wall-clock times: the page windows history
	// relative to time.Now().
	for i := 0; i < 20; i++ {
		g.Set(float64(i * i))
		rec.Scrape(time.Now().Add(time.Duration(i-20) * time.Second))
	}

	sz := &Statusz{
		App:      "rapd-test",
		Start:    time.Now().Add(-time.Hour),
		Registry: reg,
		Recorder: rec,
		Engine:   eng,
		Facts: func() []Fact {
			return []Fact{{"admission level", "Normal"}, {"audit verdict", "pass"}}
		},
		SparkSeries: []string{"g"},
		SparkWindow: time.Hour,
	}
	srv := httptest.NewServer(sz)
	defer srv.Close()
	body := get(t, srv.URL+"/statusz")

	for _, want := range []string{
		"rapd-test",
		`class="crit"`, // the hot rule fired on g=361
		"hot",
		"rap_ingest_batch_seconds",
		"admission level",
		"audit verdict",
		string(sparkRunes[len(sparkRunes)-1]), // sparkline reached full scale
	} {
		if !strings.Contains(body, want) {
			t.Errorf("statusz missing %q", want)
		}
	}
	// p50: rank 50 lands 10/60 into (0.0016384, 0.0032768] after the 40
	// low observations -> 0.001911...
	if !strings.Contains(body, "0.0019") {
		t.Errorf("statusz missing p50 estimate, body latency section: %.300s", body)
	}
}

// TestStatuszEmpty renders with nothing wired — must not panic and must
// say all rules are ok.
func TestStatuszEmpty(t *testing.T) {
	sz := &Statusz{App: "bare", Start: time.Now(), Engine: NewEngine(NewRecorder(obs.NewRegistry(), Options{}))}
	srv := httptest.NewServer(sz)
	defer srv.Close()
	if body := get(t, srv.URL); !strings.Contains(body, "all rules ok") {
		t.Fatalf("empty statusz = %.200s", body)
	}
}

// TestSparkRow pins the sparkline scaling: a ramp uses the full ladder
// and a flat series renders the floor rune.
func TestSparkRow(t *testing.T) {
	ramp := Series{}
	for i := 0; i < 8; i++ {
		ramp.Points = append(ramp.Points, Point{UnixNano: int64(i), Value: float64(i)})
	}
	row := sparkRow("ramp", ramp, false)
	if !strings.HasPrefix(row.Line, string(sparkRunes[0])) || !strings.HasSuffix(row.Line, string(sparkRunes[7])) {
		t.Errorf("ramp spark = %q", row.Line)
	}
	flat := Series{Points: []Point{{0, 5}, {1, 5}, {2, 5}}, Last: 5}
	if row := sparkRow("flat", flat, false); row.Line != strings.Repeat(string(sparkRunes[0]), 3) {
		t.Errorf("flat spark = %q", row.Line)
	}
	// rate: prefix plots deltas of a counter.
	ctr := Series{Points: []Point{{0, 0}, {1, 10}, {2, 20}, {3, 100}}}
	if row := sparkRow("rate:ctr", ctr, true); !strings.HasSuffix(row.Line, string(sparkRunes[7])) {
		t.Errorf("rate spark = %q", row.Line)
	}
}
