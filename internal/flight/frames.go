// Package flight is the in-process black-box recorder: it scrapes the
// metrics registry on a cadence into a bounded ring of delta-compressed
// frames, evaluates alert rules against each scrape, renders a
// human-readable status page, and captures one-shot diagnostic bundles.
// Everything is fixed-memory and zero-dependency — no external TSDB.
package flight

import "encoding/binary"

// A block is a self-contained run of consecutive frames. The first frame
// of a block stores raw float64 bits per series (XOR against zero); every
// later frame stores the XOR of each series' bits against the previous
// frame in the same block, uvarint-encoded. Gauges that hold still and
// counters that tick slowly XOR to mostly-zero words, so a frame of a few
// hundred series usually compresses to a few hundred bytes. Blocks decode
// without any state from earlier blocks, which lets the ring evict whole
// oldest blocks without rewriting anything.
type block struct {
	times   []int64 // unix nanos, one per frame
	offsets []int32 // start of each frame's payload in data
	data    []byte
}

func (b *block) frames() int { return len(b.times) }

// sizeBytes is the accounted footprint of the block: payload plus the
// per-frame time and offset bookkeeping.
func (b *block) sizeBytes() int {
	return len(b.data) + 8*len(b.times) + 4*len(b.offsets)
}

// appendFrame encodes one frame into the block. vals holds the float64
// bits of every series, indexed by series id (ids are dense and assigned
// in registration order, so the id is implicit in the position). base is
// the previous frame's bits to XOR against — nil for the block's first
// frame, which makes it a self-contained keyframe.
func (b *block) appendFrame(unixNano int64, vals, base []uint64) {
	b.times = append(b.times, unixNano)
	b.offsets = append(b.offsets, int32(len(b.data)))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(vals)))
	b.data = append(b.data, tmp[:n]...)
	for i, v := range vals {
		var prev uint64
		if i < len(base) {
			prev = base[i]
		}
		n := binary.PutUvarint(tmp[:], v^prev)
		b.data = append(b.data, tmp[:n]...)
	}
}

// decode replays the block and calls visit once per frame with the
// decoded bits. The slice passed to visit is reused across frames; visit
// must copy anything it retains. It returns false on a corrupt payload
// (which cannot happen for blocks this process encoded, but keeps the
// decoder total).
func (b *block) decode(visit func(unixNano int64, vals []uint64)) bool {
	var vals []uint64
	for i, off := range b.offsets {
		payload := b.data[off:]
		if i+1 < len(b.offsets) {
			payload = b.data[off:b.offsets[i+1]]
		}
		count, n := binary.Uvarint(payload)
		if n <= 0 {
			return false
		}
		payload = payload[n:]
		for len(vals) < int(count) {
			vals = append(vals, 0)
		}
		vals = vals[:count]
		for j := range vals {
			delta, n := binary.Uvarint(payload)
			if n <= 0 {
				return false
			}
			payload = payload[n:]
			if i == 0 {
				vals[j] = delta // keyframe: XOR against zero
			} else {
				vals[j] ^= delta
			}
		}
		visit(b.times[i], vals)
	}
	return true
}
