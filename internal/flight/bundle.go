package flight

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"rap/internal/obs"
)

// BundleFormat names the bundle layout; rapdiag refuses bundles it does
// not understand.
const BundleFormat = "rap-bundle/1"

// BundleConfig lists everything a diagnostic bundle captures. Nil/zero
// fields are simply omitted from the archive — a bundle is best-effort
// by design: whatever subsystem is wired in gets captured.
type BundleConfig struct {
	// App names the process, recorded in meta.json.
	App string
	// Registry contributes metrics.prom, the current scrape.
	Registry *obs.Registry
	// Recorder contributes metrics_history.json, the whole ring.
	Recorder *Recorder
	// Engine contributes alerts.json.
	Engine *Engine
	// Trace contributes trace.jsonl, the structural event ring.
	Trace *obs.StructuralTrace
	// Spans contributes spans.jsonl, the request-span ring (satisfied by
	// *span.Tracer; typed as an interface so flight stays decoupled from
	// the tracing package).
	Spans interface{ WriteJSONL(io.Writer) error }
	// Profile returns the adaptive latency-profile document /profilez
	// serves; contributes profile.json.
	Profile func() (any, bool)
	// AuditReport returns the latest audit report (and whether one
	// exists); contributes audit.json.
	AuditReport func() (any, bool)
	// AdmitState returns the admission watchdog state; contributes
	// admit.json.
	AdmitState func() (any, bool)
	// EffectiveConfig is the process's resolved configuration;
	// contributes config.json.
	EffectiveConfig any
}

type bundleMeta struct {
	Format    string    `json:"format"`
	Created   time.Time `json:"created"`
	App       string    `json:"app"`
	PID       int       `json:"pid"`
	Hostname  string    `json:"hostname,omitempty"`
	GoVersion string    `json:"go_version"`
}

// History is the metrics_history.json document: every recorded series
// with its full retained window. rapdiag decodes this shape back.
type History struct {
	Format string   `json:"format"`
	Series []Series `json:"series"`
}

// HistoryFormat names the metrics-history layout inside a bundle.
const HistoryFormat = "rap-flight-history/1"

// WriteBundle writes the one-shot diagnostic bundle — a gzipped tar of
// JSON/text documents — to w. Entry order is fixed so bundles diff
// cleanly. Errors are reported only for the archive plumbing itself;
// a missing subsystem just omits its entry.
func WriteBundle(w io.Writer, cfg BundleConfig) error {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	now := time.Now()

	add := func(name string, body []byte) error {
		if err := tw.WriteHeader(&tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(body)), ModTime: now,
		}); err != nil {
			return fmt.Errorf("bundle %s: %w", name, err)
		}
		_, err := tw.Write(body)
		return err
	}
	addJSON := func(name string, v any) error {
		body, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return fmt.Errorf("bundle %s: %w", name, err)
		}
		return add(name, append(body, '\n'))
	}

	host, _ := os.Hostname()
	meta := bundleMeta{
		Format: BundleFormat, Created: now, App: cfg.App,
		PID: os.Getpid(), Hostname: host, GoVersion: runtime.Version(),
	}
	if err := addJSON("meta.json", meta); err != nil {
		return err
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if err := add("build.json", []byte(buildJSON(bi))); err != nil {
			return err
		}
	}
	if cfg.EffectiveConfig != nil {
		if err := addJSON("config.json", cfg.EffectiveConfig); err != nil {
			return err
		}
	}
	if cfg.Registry != nil {
		var buf bytes.Buffer
		if err := cfg.Registry.WritePrometheus(&buf); err != nil {
			return err
		}
		if err := add("metrics.prom", buf.Bytes()); err != nil {
			return err
		}
	}
	if cfg.Recorder != nil {
		h := History{Format: HistoryFormat, Series: cfg.Recorder.Query("", 0, now)}
		if h.Series == nil {
			h.Series = []Series{}
		}
		if err := addJSON("metrics_history.json", h); err != nil {
			return err
		}
	}
	if cfg.Engine != nil {
		if err := addJSON("alerts.json", struct {
			Alerts []AlertStatus `json:"alerts"`
		}{cfg.Engine.Snapshot()}); err != nil {
			return err
		}
	}
	if cfg.Trace != nil {
		var buf bytes.Buffer
		if err := cfg.Trace.WriteJSONL(&buf); err != nil {
			return err
		}
		if err := add("trace.jsonl", buf.Bytes()); err != nil {
			return err
		}
	}
	if cfg.Spans != nil {
		var buf bytes.Buffer
		if err := cfg.Spans.WriteJSONL(&buf); err != nil {
			return err
		}
		if err := add("spans.jsonl", buf.Bytes()); err != nil {
			return err
		}
	}
	if cfg.Profile != nil {
		if doc, ok := cfg.Profile(); ok {
			if err := addJSON("profile.json", doc); err != nil {
				return err
			}
		}
	}
	if cfg.AuditReport != nil {
		if rep, ok := cfg.AuditReport(); ok {
			if err := addJSON("audit.json", rep); err != nil {
				return err
			}
		}
	}
	if cfg.AdmitState != nil {
		if st, ok := cfg.AdmitState(); ok {
			if err := addJSON("admit.json", st); err != nil {
				return err
			}
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

// buildJSON renders build info as JSON by hand: debug.BuildInfo has no
// stable JSON shape, and the bundle wants a flat, diffable document.
func buildJSON(bi *debug.BuildInfo) string {
	type kv struct {
		Key   string `json:"key"`
		Value string `json:"value"`
	}
	doc := struct {
		GoVersion string `json:"go_version"`
		Path      string `json:"path"`
		Settings  []kv   `json:"settings"`
	}{GoVersion: bi.GoVersion, Path: bi.Path}
	for _, s := range bi.Settings {
		doc.Settings = append(doc.Settings, kv{s.Key, s.Value})
	}
	b, _ := json.MarshalIndent(doc, "", "  ")
	return string(b) + "\n"
}

// WriteBundleFile writes the bundle to path (0600: it contains the
// effective config).
func WriteBundleFile(path string, cfg BundleConfig) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if err := WriteBundle(f, cfg); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// BundleHandler serves the bundle as a download at /debug/bundle.
func BundleHandler(cfg func() BundleConfig) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		name := fmt.Sprintf("rap-bundle-%s.tar.gz", time.Now().UTC().Format("20060102T150405Z"))
		w.Header().Set("Content-Type", "application/gzip")
		w.Header().Set("Content-Disposition", `attachment; filename="`+name+`"`)
		if err := WriteBundle(w, cfg()); err != nil {
			// Headers are gone; all we can do is log-adjacent failure via
			// a trailing error status if nothing was written yet.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
