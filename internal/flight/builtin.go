package flight

import "time"

// BuiltinConfig parameterises the stock rule set. Zero values select the
// defaults noted per field.
type BuiltinConfig struct {
	// CheckpointEvery is the configured checkpoint cadence; the staleness
	// rule warns at 3× and goes critical at 10×. Zero disables the rule.
	CheckpointEvery time.Duration
	// QueueSatWarn/Crit are ingest queue fill fractions. Defaults 0.8/0.95.
	QueueSatWarn, QueueSatCrit float64
	// ArenaGrowthWarn/Crit are sustained arena growth rates in bytes/s.
	// Defaults 8 MiB/s and 64 MiB/s.
	ArenaGrowthWarn, ArenaGrowthCrit float64
	// ArenaGrowthWindow is the rate window for arena growth. Default 30s.
	ArenaGrowthWindow time.Duration
	// ProfileP99Warn/Crit are adaptive-profile p99 stage latencies in
	// seconds (the rap_profile_p99_seconds gauges the RAP-tree latency
	// histograms export). Defaults 0.25s and 1s — the top of the profile
	// universe is ~1.07s, so crit means a stage pegged the scale.
	ProfileP99Warn, ProfileP99Crit float64
	// For delays transitions of the noisier rules (queue saturation,
	// arena growth). Default 0: transition on the first offending scrape.
	For time.Duration
}

// BuiltinRules returns the stock alert rules over the engine's own
// signals: certified-accuracy violations, admission escalation,
// checkpoint staleness, queue saturation, arena growth, and trace-ring
// churn. The audit rule latches at crit by construction — the violation
// counter is monotone, so once the certificate is broken the alert stays
// lit for the life of the process, matching the audit's own
// till-death verdict semantics.
func BuiltinRules(cfg BuiltinConfig) []Rule {
	if cfg.QueueSatWarn == 0 {
		cfg.QueueSatWarn = 0.8
	}
	if cfg.QueueSatCrit == 0 {
		cfg.QueueSatCrit = 0.95
	}
	if cfg.ArenaGrowthWarn == 0 {
		cfg.ArenaGrowthWarn = 8 << 20
	}
	if cfg.ArenaGrowthCrit == 0 {
		cfg.ArenaGrowthCrit = 64 << 20
	}
	if cfg.ArenaGrowthWindow <= 0 {
		cfg.ArenaGrowthWindow = 30 * time.Second
	}
	if cfg.ProfileP99Warn == 0 {
		cfg.ProfileP99Warn = 0.25
	}
	if cfg.ProfileP99Crit == 0 {
		cfg.ProfileP99Crit = 1.0
	}

	rules := []Rule{
		{
			Name:   "audit_violations",
			Help:   "The online audit certified an estimate outside the paper's error budget.",
			Kind:   Threshold,
			Series: "rap_audit_violations_total",
			Agg:    AggSum,
			// Any violation at all is critical: the counter is monotone,
			// 0.5 separates zero from one-or-more.
			Warn: 0.5,
			Crit: 0.5,
		},
		{
			Name:   "admission_level",
			Help:   "Admission control escalated: warn at Defensive, crit at Siege.",
			Kind:   Threshold,
			Series: "rap_admit_level",
			Agg:    AggMax,
			Warn:   0.5,
			Crit:   1.5,
			// The watchdog has its own hysteresis and cooldown; mirror it
			// promptly rather than stacking a second damper on top.
			ClearRatio: 1,
		},
		{
			Name:   "queue_saturation",
			Help:   "Ingest queue fill fraction.",
			Kind:   Ratio,
			Series: "rap_ingest_queue_depth",
			Denom:  "rap_ingest_queue_capacity",
			Agg:    AggMax,
			Warn:   cfg.QueueSatWarn,
			Crit:   cfg.QueueSatCrit,
			For:    cfg.For,
		},
		{
			Name:       "arena_growth",
			Help:       "Sustained tree arena growth in bytes/s.",
			Kind:       Rate,
			Series:     "rap_tree_arena_bytes",
			Agg:        AggSum,
			Warn:       cfg.ArenaGrowthWarn,
			Crit:       cfg.ArenaGrowthCrit,
			RateWindow: cfg.ArenaGrowthWindow,
			For:        cfg.For,
		},
		{
			Name:   "profile_p99",
			Help:   "Adaptive-profile p99 latency of the slowest pipeline stage, seconds.",
			Kind:   Threshold,
			Series: "rap_profile_p99_seconds",
			Agg:    AggMax,
			Warn:   cfg.ProfileP99Warn,
			Crit:   cfg.ProfileP99Crit,
			For:    cfg.For,
		},
		{
			Name:       "trace_evictions",
			Help:       "Structural trace ring overwriting history faster than it is exported (events/s).",
			Kind:       Rate,
			Series:     "rap_trace_evicted_total",
			Agg:        AggSum,
			Warn:       1,
			RateWindow: cfg.ArenaGrowthWindow,
			For:        cfg.For,
		},
	}
	if cfg.CheckpointEvery > 0 {
		rules = append(rules, Rule{
			Name:   "checkpoint_staleness",
			Help:   "Seconds since the last durable checkpoint.",
			Kind:   Threshold,
			Series: "rap_checkpoint_staleness_seconds",
			Agg:    AggMax,
			Warn:   3 * cfg.CheckpointEvery.Seconds(),
			Crit:   10 * cfg.CheckpointEvery.Seconds(),
		})
	}
	return rules
}
