package flight

import (
	"fmt"
	"html/template"
	"math"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"rap/internal/obs"
)

// Fact is one key/value row the host process contributes to /statusz
// (admission level, audit verdict, shard count, ...).
type Fact struct {
	Key   string
	Value string
}

// Statusz renders the human-readable status page: identity and uptime,
// firing alerts, host facts, latency quantiles for every duration
// histogram, and sparkline history for a configurable set of series.
type Statusz struct {
	// App names the process on the page, e.g. "rapd".
	App string
	// Start is process start time, for uptime.
	Start time.Time
	// Registry supplies the current metric snapshot.
	Registry *obs.Registry
	// Recorder supplies history for sparklines and throughput rates. Optional.
	Recorder *Recorder
	// Engine supplies the alert table. Optional.
	Engine *Engine
	// Facts supplies host-specific rows. Optional.
	Facts func() []Fact
	// SparkSeries lists series to draw sparklines for. A "rate:" prefix
	// plots the per-frame delta instead of the level — the right view for
	// monotone counters.
	SparkSeries []string
	// SparkWindow bounds sparkline history. Default 5 minutes.
	SparkWindow time.Duration
	// SlowOps supplies the tracing subsystem's slow-op log. Optional; the
	// section is omitted when nil or empty.
	SlowOps func() []SlowOp
}

// SlowOp is one slow-operation row on /statusz: an op that exceeded the
// tracer's slow threshold, with its trace identity so the operator can
// jump to /spans?trace=.
type SlowOp struct {
	At       time.Time
	Name     string
	Duration time.Duration
	TraceID  string
}

type statuszAlert struct {
	Name, State, Value, Since, Reason string
}

type statuszQuantiles struct {
	Name          string
	Count         uint64
	P50, P95, P99 string
}

type statuszSpark struct {
	Name, Line, Min, Max, Last string
}

type statuszData struct {
	App       string
	Now       string
	Uptime    string
	GoVersion string
	Build     []Fact
	Facts     []Fact
	Alerts    []statuszAlert
	AllOK     bool
	Quantiles []statuszQuantiles
	Sparks    []statuszSpark
	SlowOps   []statuszSlowOp
}

type statuszSlowOp struct {
	At, Name, Duration, Trace string
}

var statuszTmpl = template.Must(template.New("statusz").Parse(`<!doctype html>
<html><head><title>{{.App}} statusz</title><style>
body { font-family: monospace; margin: 2em; background: #fafafa; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 2px 10px; text-align: left; }
th { background: #eee; }
.ok { color: #080; } .warn { color: #b80; font-weight: bold; } .crit { color: #c00; font-weight: bold; }
.spark { font-size: 1.1em; letter-spacing: -1px; }
</style></head><body>
<h1>{{.App}}</h1>
<p>up {{.Uptime}} · {{.Now}} · {{.GoVersion}}</p>
{{if .Build}}<p>{{range .Build}}{{.Key}}={{.Value}} {{end}}</p>{{end}}

<h2>alerts</h2>
{{if .AllOK}}<p class="ok">all rules ok</p>{{end}}
<table><tr><th>rule</th><th>state</th><th>value</th><th>since</th><th>note</th></tr>
{{range .Alerts}}<tr><td>{{.Name}}</td><td class="{{.State}}">{{.State}}</td><td>{{.Value}}</td><td>{{.Since}}</td><td>{{.Reason}}</td></tr>
{{end}}</table>

{{if .Facts}}<h2>engine</h2>
<table>{{range .Facts}}<tr><td>{{.Key}}</td><td>{{.Value}}</td></tr>
{{end}}</table>{{end}}

{{if .Quantiles}}<h2>latency</h2>
<table><tr><th>histogram</th><th>count</th><th>p50</th><th>p95</th><th>p99</th></tr>
{{range .Quantiles}}<tr><td>{{.Name}}</td><td>{{.Count}}</td><td>{{.P50}}</td><td>{{.P95}}</td><td>{{.P99}}</td></tr>
{{end}}</table>{{end}}

{{if .SlowOps}}<h2>slow ops</h2>
<table><tr><th>at</th><th>op</th><th>duration</th><th>trace</th></tr>
{{range .SlowOps}}<tr><td>{{.At}}</td><td>{{.Name}}</td><td class="warn">{{.Duration}}</td><td><a href="/spans?trace={{.Trace}}">{{.Trace}}</a></td></tr>
{{end}}</table>{{end}}

{{if .Sparks}}<h2>history</h2>
<table><tr><th>series</th><th>trend</th><th>min</th><th>max</th><th>last</th></tr>
{{range .Sparks}}<tr><td>{{.Name}}</td><td class="spark">{{.Line}}</td><td>{{.Min}}</td><td>{{.Max}}</td><td>{{.Last}}</td></tr>
{{end}}</table>{{end}}
</body></html>
`))

// ServeHTTP renders the page.
func (s *Statusz) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	d := statuszData{
		App:    s.App,
		Now:    now.Format(time.RFC3339),
		Uptime: now.Sub(s.Start).Round(time.Second).String(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		d.GoVersion = bi.GoVersion
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				d.Build = append(d.Build, Fact{kv.Key, kv.Value})
			}
		}
	}
	if s.Facts != nil {
		d.Facts = s.Facts()
	}
	if s.Engine != nil {
		d.AllOK = true
		for _, a := range s.Engine.Snapshot() {
			row := statuszAlert{
				Name:   a.Rule.Name,
				State:  a.State,
				Value:  trimFloat(float64(a.Value)),
				Reason: a.Reason,
			}
			if a.State != "ok" {
				d.AllOK = false
				row.Since = a.Since.Format(time.RFC3339)
			}
			d.Alerts = append(d.Alerts, row)
		}
	}
	if s.Registry != nil {
		for _, f := range s.Registry.Snapshot() {
			if f.Kind != obs.KindHistogram.String() {
				continue
			}
			for _, ser := range f.Series {
				if ser.Count == 0 {
					continue
				}
				d.Quantiles = append(d.Quantiles, statuszQuantiles{
					Name:  seriesMeta(f.Name, ser.Labels).Key,
					Count: ser.Count,
					P50:   trimFloat(obs.QuantileFromBuckets(ser.Buckets, 0.50)),
					P95:   trimFloat(obs.QuantileFromBuckets(ser.Buckets, 0.95)),
					P99:   trimFloat(obs.QuantileFromBuckets(ser.Buckets, 0.99)),
				})
			}
		}
		sort.Slice(d.Quantiles, func(i, j int) bool { return d.Quantiles[i].Name < d.Quantiles[j].Name })
	}
	if s.SlowOps != nil {
		ops := s.SlowOps()
		// Newest first; the log arrives oldest-first.
		for i := len(ops) - 1; i >= 0; i-- {
			op := ops[i]
			d.SlowOps = append(d.SlowOps, statuszSlowOp{
				At:       op.At.Format(time.RFC3339),
				Name:     op.Name,
				Duration: op.Duration.Round(time.Microsecond).String(),
				Trace:    op.TraceID,
			})
		}
	}
	if s.Recorder != nil {
		window := s.SparkWindow
		if window <= 0 {
			window = 5 * time.Minute
		}
		for _, name := range s.SparkSeries {
			sel, rate := name, false
			if strings.HasPrefix(name, "rate:") {
				sel, rate = name[len("rate:"):], true
			}
			for _, ser := range s.Recorder.Query(sel, window, now) {
				d.Sparks = append(d.Sparks, sparkRow(name, ser, rate))
			}
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	statuszTmpl.Execute(w, d)
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func sparkRow(name string, s Series, rate bool) statuszSpark {
	vals := make([]float64, 0, len(s.Points))
	for i, p := range s.Points {
		if rate {
			if i == 0 {
				continue
			}
			vals = append(vals, p.Value-s.Points[i-1].Value)
		} else {
			vals = append(vals, p.Value)
		}
	}
	// Downsample to at most 60 columns by bucketed max.
	const cols = 60
	if len(vals) > cols {
		ds := make([]float64, cols)
		for i := range ds {
			lo, hi := i*len(vals)/cols, (i+1)*len(vals)/cols
			m := vals[lo]
			for _, v := range vals[lo:hi] {
				m = math.Max(m, v)
			}
			ds[i] = m
		}
		vals = ds
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if !math.IsNaN(v) {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		switch {
		case math.IsNaN(v):
			sb.WriteByte(' ')
		case hi == lo:
			sb.WriteRune(sparkRunes[0])
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			sb.WriteRune(sparkRunes[idx])
		}
	}
	last := s.Last
	if rate && len(vals) > 0 {
		last = vals[len(vals)-1]
	}
	return statuszSpark{
		Name: name,
		Line: sb.String(),
		Min:  trimFloat(lo),
		Max:  trimFloat(hi),
		Last: trimFloat(last),
	}
}

func trimFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if math.IsInf(v, 0) {
		return fmt.Sprintf("%v", v)
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}
