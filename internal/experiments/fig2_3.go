package experiments

import (
	"fmt"
	"io"

	"rap/internal/theory"
)

// Fig2Result is the design-space sweep of Figure 2: worst-case memory vs
// branching factor (lower curve) and vs merge-interval ratio (upper
// curve), at ε = 1%.
type Fig2Result struct {
	Epsilon      float64
	UniverseBits int
	BranchSweep  []Fig2Branch
	RatioSweep   []Fig2Ratio
	ChosenBranch int
	ChosenRatio  float64
}

// Fig2Branch is one point of the branching-factor curve.
type Fig2Branch struct {
	Branch     int
	Height     int
	WorstNodes float64
}

// Fig2Ratio is one point of the merge-ratio curve.
type Fig2Ratio struct {
	Ratio      float64
	WorstNodes float64
}

// Fig2 computes both Figure 2 sweeps from the closed-form model.
func Fig2() Fig2Result {
	const (
		eps = 0.01
		w   = 64
	)
	r := Fig2Result{Epsilon: eps, UniverseBits: w}
	for _, b := range []int{2, 4, 8, 16, 32} {
		r.BranchSweep = append(r.BranchSweep, Fig2Branch{
			Branch:     b,
			Height:     theory.Height(w, b),
			WorstNodes: theory.MemoryModel(w, b, eps, 2),
		})
	}
	for _, q := range []float64{1.25, 1.5, 1.75, 2, 2.5, 3, 4, 6, 8} {
		r.RatioSweep = append(r.RatioSweep, Fig2Ratio{
			Ratio:      q,
			WorstNodes: theory.MemoryModel(w, 4, eps, q),
		})
	}
	r.ChosenBranch, r.ChosenRatio = theory.Recommendation(w, eps)
	return r
}

// Print renders the Figure 2 tables.
func (r Fig2Result) Print(w io.Writer) {
	header(w, "Figure 2: worst-case memory vs branching factor and merge ratio")
	fmt.Fprintf(w, "epsilon=%.0f%%, universe=2^%d\n\n", 100*r.Epsilon, r.UniverseBits)
	fmt.Fprintf(w, "%-8s %-8s %s\n", "branch", "height", "worst-case nodes")
	for _, p := range r.BranchSweep {
		fmt.Fprintf(w, "%-8d %-8d %.0f\n", p.Branch, p.Height, p.WorstNodes)
	}
	fmt.Fprintf(w, "\n%-8s %s\n", "q", "worst-case nodes (b=4)")
	for _, p := range r.RatioSweep {
		fmt.Fprintf(w, "%-8.2f %.0f\n", p.Ratio, p.WorstNodes)
	}
	fmt.Fprintf(w, "\nchosen operating point: b=%d, q=%v (paper: b=4, q=2)\n",
		r.ChosenBranch, r.ChosenRatio)
}

// Fig3Result traces Figure 3: the worst-case node bound over the stream,
// for continuous merging (flat) and batched merging (sawtooth).
type Fig3Result struct {
	Continuous float64
	Batched    []theory.BoundPoint
	MergeCount int
}

// Fig3 computes the Figure 3 schedule for ε=1%, b=4, first merge at 2^10
// events, out to 2^30 events.
func Fig3() Fig3Result {
	const (
		w   = 64
		b   = 4
		eps = 0.01
	)
	pts := theory.BatchedSchedule(w, b, eps, 2, 1<<10, 1<<30, 6)
	merges := 0
	for _, p := range pts {
		if p.Merge {
			merges++
		}
	}
	return Fig3Result{
		Continuous: theory.ContinuousBound(w, b, eps),
		Batched:    pts,
		MergeCount: merges,
	}
}

// Print renders the Figure 3 series.
func (r Fig3Result) Print(w io.Writer) {
	header(w, "Figure 3: worst-case bound over time, batched vs continuous merging")
	fmt.Fprintf(w, "continuous-merge bound (flat): %.0f nodes\n\n", r.Continuous)
	fmt.Fprintf(w, "%-16s %-12s %s\n", "events", "bound", "")
	for _, p := range r.Batched {
		mark := ""
		if p.Merge {
			mark = "<- batch merge"
		}
		fmt.Fprintf(w, "%-16d %-12.0f %s\n", p.N, p.Bound, mark)
	}
	fmt.Fprintf(w, "\nbatched merges to 2^30 events: %d (paper: 2^32 events need 22 doublings)\n",
		r.MergeCount)
}
