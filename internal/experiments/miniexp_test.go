package experiments

import (
	"strings"
	"testing"
)

func TestMiniValidation(t *testing.T) {
	r, err := Mini(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 programs", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.CodeEvents == 0 || row.LoadEvents == 0 {
			t.Errorf("%s: empty trace", row.Program)
		}
		if row.CodeHotRanges == 0 {
			t.Errorf("%s: no hot code ranges", row.Program)
		}
		// Real traces must uphold the same accuracy story as the models:
		// small errors, bounded memory.
		if row.CodeAvgErr > 15 {
			t.Errorf("%s: code avg error %.2f%% too high", row.Program, row.CodeAvgErr)
		}
		if row.ValueAvgErr > 15 {
			t.Errorf("%s: value avg error %.2f%% too high", row.Program, row.ValueAvgErr)
		}
		if row.CodeMaxNodes > 4096 || row.ValueMaxNodes > 8192 {
			t.Errorf("%s: tree too large (code %d, value %d)",
				row.Program, row.CodeMaxNodes, row.ValueMaxNodes)
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "compress") {
		t.Fatal("print output malformed")
	}
}
