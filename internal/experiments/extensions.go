package experiments

import (
	"fmt"
	"io"

	"rap/internal/analysis"
	"rap/internal/core"
	"rap/internal/multidim"
	"rap/internal/workload"
)

// ExtensionsResult exercises the future-work directions of Section 6:
// multi-dimensional profiling (edge profiles as 2-D tuples), unification
// with sampling, and phase identification over the dumped summaries.
type ExtensionsResult struct {
	// Edge profiling: (branch PC, target PC) tuples through a 2-D tree.
	EdgeEvents   uint64
	EdgeNodes    int
	EdgeMemory   int
	HotEdges     []multidim.HotCell
	HotEdgeShare float64

	// Sampling unification: plain RAP vs 1-in-k sampled RAP on the same
	// stream.
	SampleK            uint64
	PlainNodes         int
	SampledNodes       int
	SampledHotAgree    float64 // similarity of the two hot sets
	SampledRangeErrPct float64 // scaled-estimate error on the hottest range

	// Phase identification on the gcc code stream.
	PhaseBoundaries []uint64
	PhaseWindows    int
}

// Extensions runs the three Section 6 extension demonstrations.
func Extensions(o Options) (ExtensionsResult, error) {
	var r ExtensionsResult

	// --- Edge profiling with the 2-D tree ---
	// Synthesize a branch-edge stream from the gcc code model: an edge is
	// (current PC, next PC); loops make a few edges dominate.
	gcc, err := workload.ByName("gcc")
	if err != nil {
		return r, err
	}
	src := gcc.Code(o.Seed, o.Events)
	t2, err := multidim.New2D(multidim.Config2D{BitsPerDim: 32, Epsilon: 0.01})
	if err != nil {
		return r, err
	}
	prev, _ := src.Next()
	for i := uint64(1); i < o.Events; i++ {
		cur, ok := src.Next()
		if !ok {
			break
		}
		t2.Add(prev.Value, cur.Value)
		prev = cur
	}
	st := t2.Finalize()
	r.EdgeEvents = t2.N()
	r.EdgeNodes = st.Nodes
	r.EdgeMemory = st.MemoryBytes
	r.HotEdges = t2.HotCells(0.05)
	for _, c := range r.HotEdges {
		r.HotEdgeShare += c.Frac
	}

	// --- Sampling unification ---
	r.SampleK = 16
	plain := core.MustNew(valueConfig(0.01))
	sampled, err := core.NewSampled(valueConfig(0.01), r.SampleK)
	if err != nil {
		return r, err
	}
	vsrc := gcc.Values(o.Seed, o.Events)
	for i := uint64(0); i < o.Events; i++ {
		e, ok := vsrc.Next()
		if !ok {
			break
		}
		plain.Add(e.Value)
		sampled.Add(e.Value)
	}
	plain.Finalize()
	sampled.Finalize()
	r.PlainNodes = plain.NodeCount()
	r.SampledNodes = sampled.NodeCount()
	plainHot := plain.HotRanges(HotTheta)
	r.SampledHotAgree = analysis.HotSetSimilarity(plainHot, sampled.HotRanges(HotTheta))
	if len(plainHot) > 0 {
		top := plainHot[0]
		for _, h := range plainHot {
			if h.Weight > top.Weight {
				top = h
			}
		}
		exactish := float64(plain.Estimate(top.Lo, top.Hi))
		est := float64(sampled.Estimate(top.Lo, top.Hi))
		if exactish > 0 {
			diff := est - exactish
			if diff < 0 {
				diff = -diff
			}
			r.SampledRangeErrPct = 100 * diff / exactish
		}
	}

	// --- Phase identification ---
	cfg := codeConfig(0.05)
	window := o.Events / 16
	if window == 0 {
		window = 1
	}
	det, err := analysis.NewPhaseDetector(cfg, window, 0.08, 0.35)
	if err != nil {
		return r, err
	}
	psrc := gcc.Code(o.Seed+1, o.Events)
	for i := uint64(0); i < o.Events; i++ {
		e, ok := psrc.Next()
		if !ok {
			break
		}
		det.Add(e.Value)
	}
	r.PhaseBoundaries = det.Boundaries()
	r.PhaseWindows = len(det.Similarities()) + 1
	return r, nil
}

// Print renders the extensions report.
func (r ExtensionsResult) Print(w io.Writer) {
	header(w, "Section 6 extensions: multi-dimensional, sampled, and phase-aware RAP")

	fmt.Fprintf(w, "-- edge profiling (2-D tuples, gcc branch edges, eps=1%%) --\n")
	fmt.Fprintf(w, "edges=%d nodes=%d memory=%dB; hot edges cover %.1f%%\n",
		r.EdgeEvents, r.EdgeNodes, r.EdgeMemory, 100*r.HotEdgeShare)
	for i, c := range r.HotEdges {
		if i >= 8 {
			fmt.Fprintf(w, "  ... %d more\n", len(r.HotEdges)-8)
			break
		}
		fmt.Fprintf(w, "  (%x-%x) -> (%x-%x)  %5.1f%%\n", c.XLo, c.XHi, c.YLo, c.YHi, 100*c.Frac)
	}

	fmt.Fprintf(w, "\n-- sampling unification (gcc values, 1-in-%d) --\n", r.SampleK)
	fmt.Fprintf(w, "plain nodes=%d sampled nodes=%d; hot-set agreement=%.2f; scaled range error=%.2f%%\n",
		r.PlainNodes, r.SampledNodes, r.SampledHotAgree, r.SampledRangeErrPct)

	fmt.Fprintf(w, "\n-- phase identification (gcc code, %d windows) --\n", r.PhaseWindows)
	fmt.Fprintf(w, "boundaries at: %v (model switches region activations at the run midpoint)\n",
		r.PhaseBoundaries)
}
