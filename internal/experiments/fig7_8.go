package experiments

import (
	"fmt"
	"io"

	"rap/internal/analysis"
	"rap/internal/core"
	"rap/internal/trace"
	"rap/internal/workload"
)

// ProfileKind selects which stream of a benchmark an experiment profiles.
type ProfileKind string

// The two stream kinds the paper stress-tests with (Section 4.1): code
// profiles exercise the memory bounds (high locality), value profiles the
// range adaptation (heavy tails).
const (
	CodeProfile  ProfileKind = "code"
	ValueProfile ProfileKind = "value"
)

func benchSource(b workload.Benchmark, kind ProfileKind, seed, runLength uint64) trace.Source {
	if kind == CodeProfile {
		return b.Code(seed, runLength)
	}
	return b.Values(seed, runLength)
}

// profileConfig picks the tree configuration for a profile kind.
func profileConfig(kind ProfileKind, eps float64) core.Config {
	if kind == CodeProfile {
		return codeConfig(eps)
	}
	return valueConfig(eps)
}

// Fig7Row is one benchmark's memory measurement in one panel.
type Fig7Row struct {
	Benchmark string
	MaxNodes  int
	AvgNodes  float64
}

// Fig7Panel is one of Figure 7's four panels: a profile kind at an ε.
type Fig7Panel struct {
	Kind    ProfileKind
	Epsilon float64
	Rows    []Fig7Row
}

// Fig7Result is the full four-panel memory analysis.
type Fig7Result struct {
	Events uint64
	Panels []Fig7Panel
}

// Fig7 measures max and average RAP tree size for every benchmark, for
// code and value profiles at ε = 10% and 1%.
func Fig7(o Options) (Fig7Result, error) {
	r := Fig7Result{Events: o.Events}
	for _, kind := range []ProfileKind{CodeProfile, ValueProfile} {
		for _, eps := range []float64{0.10, 0.01} {
			panel := Fig7Panel{Kind: kind, Epsilon: eps}
			for _, b := range workload.All() {
				maxN, avgN, err := treeSizeRun(benchSource(b, kind, o.Seed, o.Events), profileConfig(kind, eps), o.Events)
				if err != nil {
					return Fig7Result{}, err
				}
				panel.Rows = append(panel.Rows, Fig7Row{Benchmark: b.Name, MaxNodes: maxN, AvgNodes: avgN})
			}
			r.Panels = append(r.Panels, panel)
		}
	}
	return r, nil
}

// Print renders the four panels.
func (r Fig7Result) Print(w io.Writer) {
	header(w, "Figure 7: RAP tree memory (nodes) per benchmark")
	fmt.Fprintf(w, "events per run: %d; 1 node = %d bytes\n", r.Events, core.NodeBytes)
	fmt.Fprintf(w, "(paper: code eps=10%% max ~500 nodes, gcc max 453; value eps=10%% parser max 733 avg 203)\n")
	for _, p := range r.Panels {
		fmt.Fprintf(w, "\n-- %s profile, eps=%.0f%% --\n", p.Kind, 100*p.Epsilon)
		fmt.Fprintf(w, "%-10s %-10s %-10s %s\n", "benchmark", "max", "avg", "max KB")
		for _, row := range p.Rows {
			fmt.Fprintf(w, "%-10s %-10d %-10.0f %.1f\n",
				row.Benchmark, row.MaxNodes, row.AvgNodes,
				float64(row.MaxNodes*core.NodeBytes)/1024)
		}
	}
}

// Fig8Row is one benchmark's percent-error measurement.
type Fig8Row struct {
	Benchmark string
	Max10     float64 // max percent error, eps=10%
	Max1      float64 // max percent error, eps=1%
	Avg10     float64
	Avg1      float64
	HotRanges int // hot ranges found at eps=1%
}

// Fig8Result is the percent-error evaluation for one profile kind (the
// paper's left and right graphs).
type Fig8Result struct {
	Kind   ProfileKind
	Events uint64
	Rows   []Fig8Row
	// AvgAccuracy10 is 100 minus the mean of Avg10 across benchmarks —
	// the "98% accurate" headline for code, "96.6%" for values.
	AvgAccuracy10 float64
}

// Fig8 evaluates hot-range percent error against the perfect profiler for
// every benchmark at ε = 10% and 1%.
func Fig8(kind ProfileKind, o Options) (Fig8Result, error) {
	r := Fig8Result{Kind: kind, Events: o.Events}
	sumAvg10 := 0.0
	for _, b := range workload.All() {
		row := Fig8Row{Benchmark: b.Name}
		for _, eps := range []float64{0.10, 0.01} {
			t, ex, err := runTreeAndExact(benchSource(b, kind, o.Seed, o.Events), profileConfig(kind, eps), o.Events)
			if err != nil {
				return Fig8Result{}, err
			}
			t.Finalize()
			errs := analysis.PercentErrors(t, ex, HotTheta)
			maxPct, avgPct := analysis.ErrorSummary(errs)
			if eps == 0.10 {
				row.Max10, row.Avg10 = maxPct, avgPct
			} else {
				row.Max1, row.Avg1 = maxPct, avgPct
				row.HotRanges = len(errs)
			}
		}
		sumAvg10 += row.Avg10
		r.Rows = append(r.Rows, row)
	}
	r.AvgAccuracy10 = 100 - sumAvg10/float64(len(r.Rows))
	return r, nil
}

// Print renders one Figure 8 panel.
func (r Fig8Result) Print(w io.Writer) {
	header(w, fmt.Sprintf("Figure 8 (%s profiles): percent error on hot ranges", r.Kind))
	fmt.Fprintf(w, "events per run: %d, hot threshold 10%%\n", r.Events)
	if r.Kind == CodeProfile {
		fmt.Fprintf(w, "(paper: gcc max 13.5%% at eps=10%%; average ~2%% => 98%% accurate)\n")
	} else {
		fmt.Fprintf(w, "(paper: vortex max ~20%% from hot value 0; eps=10%% average 3.4%% => 96.6%% accurate)\n")
	}
	fmt.Fprintf(w, "\n%-10s %-12s %-12s %-12s %-12s %s\n",
		"benchmark", "Maximum_10", "Maximum_1", "Average_10", "Average_1", "hot ranges")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %-12.2f %-12.2f %-12.2f %-12.2f %d\n",
			row.Benchmark, row.Max10, row.Max1, row.Avg10, row.Avg1, row.HotRanges)
	}
	fmt.Fprintf(w, "\naverage accuracy at eps=10%%: %.2f%%\n", r.AvgAccuracy10)
}
