package experiments

import (
	"fmt"
	"io"

	"rap/internal/admit"
	"rap/internal/audit"
	"rap/internal/core"
	"rap/internal/trace"
	"rap/internal/workload"
)

// AdversarialRun is one profiling run under the key-flood attack stream,
// with or without the randomized admission frontend in front of the tree.
type AdversarialRun struct {
	Admission bool `json:"admission"`

	N           uint64 `json:"n"`            // weight credited to the tree
	UnadmittedN uint64 `json:"unadmitted_n"` // weight refused by the gate

	Splits         uint64 `json:"splits"`
	Merges         uint64 `json:"merges"`
	Churn          uint64 `json:"churn"` // Splits + Merges: structural work done
	PeakArenaBytes uint64 `json:"peak_arena_bytes"`
	FinalNodes     int    `json:"final_nodes"`

	// Audit outcome over the same offered stream: the certified bound must
	// hold whether or not admission refused part of it.
	AuditRanges     int    `json:"audit_ranges"`
	ViolationsTotal uint64 `json:"violations_total"`

	// Admission-run only: where the watchdog ended up.
	FinalLevel   string `json:"final_level,omitempty"`
	LevelMax     string `json:"level_max,omitempty"`
	LevelChanges uint64 `json:"level_changes,omitempty"`
	FinalPeriod  uint64 `json:"final_period,omitempty"`
}

// AdversarialResult is the before/after comparison the hardening is
// judged by: the same deterministic flood-mix stream profiled twice, and
// the structural-work and memory ratios between the undefended and the
// defended run.
type AdversarialResult struct {
	Events    uint64  `json:"events"`
	FloodFrac float64 `json:"flood_frac"`

	Off AdversarialRun `json:"off"`
	On  AdversarialRun `json:"on"`

	ChurnReduction float64 `json:"churn_reduction"` // Off.Churn / On.Churn
	ArenaReduction float64 `json:"arena_reduction"` // Off.Peak / On.Peak
}

// adversarialStream builds the attack stream: a deterministic
// never-repeating key flood carrying adversarialFloodFrac of the events,
// mixed over gzip's modeled load-value stream as the benign carrier. The
// flood share is high enough that the undefended run's structural work is
// attack-dominated — the defended run's churn should sit near the benign
// carrier's own floor, so the ratio measures how much attack work the
// gate refuses.
const adversarialFloodFrac = 0.98

func adversarialStream(o Options) (trace.Source, error) {
	b, err := workload.ByName("gzip")
	if err != nil {
		return nil, err
	}
	carrier := b.Values(o.Seed, o.Events)
	return workload.FloodMix(o.Seed, adversarialFloodFrac, carrier), nil
}

// adversarialOnce profiles o.Events from the flood mix into a fresh
// audited tree, optionally behind an admission gate, and collects the
// run's structural-work, memory, ledger, and audit outcomes.
func adversarialOnce(o Options, admission bool) (AdversarialRun, error) {
	run := AdversarialRun{Admission: admission}
	cfg := valueConfig(0.01)
	t, err := core.New(cfg)
	if err != nil {
		return run, err
	}

	var fe *admit.Frontend
	if admission {
		fe = admit.New(admit.Options{Seed: o.Seed})
		t.SetAdmitter(fe.Gates(cfg.UniverseBits, 1)[0])
	}

	aud := audit.New(audit.Options{Seed: o.Seed})
	taps, err := aud.Attach(cfg, t, 1)
	if err != nil {
		return run, err
	}
	t.SetTap(taps[0])

	src, err := adversarialStream(o)
	if err != nil {
		return run, err
	}

	var peakArena int
	for fed := uint64(0); fed < o.Events; fed++ {
		e, ok := src.Next()
		if !ok {
			break
		}
		t.AddN(e.Value, e.Weight)
		// Peak arena is what an operator provisions for; sample it often
		// enough to catch the between-merge-batch high-water mark.
		if fed&4095 == 0 {
			if ab := t.ArenaBytes(); ab > peakArena {
				peakArena = ab
			}
		}
		// Mid-stream audit passes exercise the certified bound while the
		// structure is still churning, not just at the settled end.
		if fed > 0 && fed%(o.Events/4+1) == 0 {
			if _, err := aud.Audit(); err != nil {
				return run, err
			}
		}
	}
	if fe != nil {
		fe.Observe(t.Stats()) // final watchdog evaluation over the settled tree
	}
	rep, err := aud.Audit()
	if err != nil {
		return run, err
	}

	st := t.Stats()
	if ab := t.ArenaBytes(); ab > peakArena {
		peakArena = ab
	}
	run.N = st.N
	run.UnadmittedN = st.UnadmittedN
	run.Splits = st.Splits
	run.Merges = st.Merges
	run.Churn = st.Splits + st.Merges
	run.PeakArenaBytes = uint64(peakArena)
	run.FinalNodes = st.Nodes
	run.AuditRanges = len(rep.Ranges)
	run.ViolationsTotal = rep.ViolationsTotal
	if fe != nil {
		fs := fe.Stats()
		run.FinalLevel = fs.Level.String()
		run.LevelMax = fs.LevelMax.String()
		run.LevelChanges = fs.LevelChanges
		run.FinalPeriod = fs.Period
	}
	return run, nil
}

// Adversarial runs the adversarial-cardinality hardening experiment: the
// same deterministic key-flood mix profiled without and with the
// randomized admission frontend, comparing structural churn (split+merge
// operations — the attack's amplification target) and peak arena
// footprint, and checking that the audit certifies both runs.
func Adversarial(o Options) (AdversarialResult, error) {
	r := AdversarialResult{Events: o.Events, FloodFrac: adversarialFloodFrac}
	var err error
	if r.Off, err = adversarialOnce(o, false); err != nil {
		return r, err
	}
	if r.On, err = adversarialOnce(o, true); err != nil {
		return r, err
	}
	if r.On.Churn > 0 {
		r.ChurnReduction = float64(r.Off.Churn) / float64(r.On.Churn)
	}
	if r.On.PeakArenaBytes > 0 {
		r.ArenaReduction = float64(r.Off.PeakArenaBytes) / float64(r.On.PeakArenaBytes)
	}
	return r, nil
}

// Print renders the before/after table.
func (r AdversarialResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Adversarial key flood (%.0f%% flood over gzip values, %d events)\n",
		r.FloodFrac*100, r.Events)
	fmt.Fprintf(w, "  %-12s %12s %12s %10s %10s %10s %12s %10s\n",
		"admission", "credited", "refused", "splits", "merges", "churn", "peak-arena", "violations")
	for _, run := range []AdversarialRun{r.Off, r.On} {
		name := "off"
		if run.Admission {
			name = "on"
		}
		fmt.Fprintf(w, "  %-12s %12d %12d %10d %10d %10d %12d %10d\n",
			name, run.N, run.UnadmittedN, run.Splits, run.Merges, run.Churn,
			run.PeakArenaBytes, run.ViolationsTotal)
	}
	fmt.Fprintf(w, "  churn reduction %.1fx, peak-arena reduction %.1fx\n",
		r.ChurnReduction, r.ArenaReduction)
	if r.On.FinalLevel != "" {
		fmt.Fprintf(w, "  watchdog: level max %s, final %s (period %d, %d transitions)\n",
			r.On.LevelMax, r.On.FinalLevel, r.On.FinalPeriod, r.On.LevelChanges)
	}
}
