package experiments

import (
	"strings"
	"testing"
)

func TestExtensions(t *testing.T) {
	r, err := Extensions(Options{Events: 200_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Edge profiling: bounded memory, hot edges found, coverage sane.
	if r.EdgeEvents == 0 || r.EdgeNodes == 0 {
		t.Fatal("edge profile empty")
	}
	if len(r.HotEdges) == 0 {
		t.Fatal("no hot edges on a loopy code stream")
	}
	if r.HotEdgeShare <= 0 || r.HotEdgeShare > 1.0001 {
		t.Fatalf("hot edge share %.3f out of range", r.HotEdgeShare)
	}
	for _, c := range r.HotEdges {
		if c.XLo > c.XHi || c.YLo > c.YHi {
			t.Fatalf("inverted hot cell %+v", c)
		}
	}

	// Sampling: smaller tree, agreeing hot sets, small scaled error.
	if r.SampledNodes >= r.PlainNodes {
		t.Errorf("sampled tree (%d) not smaller than plain (%d)", r.SampledNodes, r.PlainNodes)
	}
	if r.SampledHotAgree < 0.7 {
		t.Errorf("sampled hot-set agreement %.2f too low", r.SampledHotAgree)
	}
	if r.SampledRangeErrPct > 25 {
		t.Errorf("scaled range error %.2f%% too high", r.SampledRangeErrPct)
	}

	// Phases: few boundaries, and at least one in the middle half of the
	// run where the workload's activations flip.
	if len(r.PhaseBoundaries) == 0 || len(r.PhaseBoundaries) > 6 {
		t.Errorf("phase boundaries = %v, want a small non-empty set", r.PhaseBoundaries)
	}

	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "edge profiling") {
		t.Fatal("print output malformed")
	}
}
