package experiments

import (
	"bytes"
	"fmt"
	"io"

	"rap/internal/core"
	"rap/internal/stats"
)

// CountWidth measures what the adaptive counter widths buy: the same
// skewed stream is fed to the packed tree (counters pooled at 8/16/32/64
// bits, promoted on overflow) and to the wide reference layout (every
// counter pinned at 64 bits), and the experiment reports the physical
// footprint of each alongside proof that the representations are
// observationally identical — same estimates, same snapshot bytes. The
// density gain is the CI gate's headline number.

// CountWidthResult compares the packed and wide counter layouts on one
// stream.
type CountWidthResult struct {
	Events uint64

	Nodes        int     // identical by construction across layouts
	PackedArena  int     // node slab + pooled counters, bytes
	WideArena    int     // node slab + 64-bit counters, bytes
	PackedPool   int     // pooled counter bytes only
	WidePool     int     // 64-bit counter bytes only
	DensityGain  float64 // WideArena / PackedArena
	Promotions   uint64  // overflow promotions the packed run performed
	Slots        [4]int  // live packed counters by class (8/16/32/64-bit)
	BytesPerNode float64 // PackedArena / Nodes
	ModelBytes   float64 // the paper's 16 B/node accounting model

	EstimatesEqual bool // packed and wide agree on every probe range
	SnapshotsEqual bool // MarshalBinary bytes identical
}

// CountWidth runs the packed-vs-wide comparison on a Zipf(2^20, s=1.2)
// stream of o.Events updates, the same shape as the add/zipf perf-gate
// row.
func CountWidth(o Options) (CountWidthResult, error) {
	cfg := core.DefaultConfig()
	packed, err := core.New(cfg)
	if err != nil {
		return CountWidthResult{}, err
	}
	wide, err := core.NewWide(cfg)
	if err != nil {
		return CountWidthResult{}, err
	}

	const tableBits = 16
	const mask = 1<<tableBits - 1
	rng := stats.NewSplitMix64(o.Seed)
	zipf := stats.NewZipf(rng, 1<<20, 1.2)
	points := make([]uint64, 1<<tableBits)
	for i := range points {
		points[i] = uint64(zipf.Rank())
	}
	for i := uint64(0); i < o.Events; i++ {
		p := points[i&mask]
		packed.Add(p)
		wide.Add(p)
	}

	pst, wst := packed.Stats(), wide.Stats()
	r := CountWidthResult{
		Events:      o.Events,
		Nodes:       pst.Nodes,
		PackedArena: pst.ArenaBytes,
		WideArena:   wst.ArenaBytes,
		PackedPool:  pst.CounterPoolBytes,
		WidePool:    wst.CounterPoolBytes,
		Promotions:  pst.CounterPromotions,
		Slots: [4]int{
			pst.CounterSlots8, pst.CounterSlots16,
			pst.CounterSlots32, pst.CounterSlots64,
		},
		ModelBytes: core.NodeBytes,
	}
	if r.PackedArena > 0 {
		r.DensityGain = float64(r.WideArena) / float64(r.PackedArena)
	}
	if r.Nodes > 0 {
		r.BytesPerNode = float64(r.PackedArena) / float64(r.Nodes)
	}

	r.EstimatesEqual = true
	probes := [][2]uint64{
		{0, 1<<20 - 1}, {0, 255}, {1 << 10, 1 << 14}, {1 << 19, 1<<20 - 1}, {7, 7},
	}
	for _, q := range probes {
		pl, ph := packed.EstimateBounds(q[0], q[1])
		wl, wh := wide.EstimateBounds(q[0], q[1])
		if pl != wl || ph != wh {
			r.EstimatesEqual = false
		}
	}
	ps, err := packed.MarshalBinary()
	if err != nil {
		return CountWidthResult{}, err
	}
	ws, err := wide.MarshalBinary()
	if err != nil {
		return CountWidthResult{}, err
	}
	r.SnapshotsEqual = bytes.Equal(ps, ws)
	return r, nil
}

// Print renders the packed-vs-wide counter layout comparison.
func (r CountWidthResult) Print(w io.Writer) {
	header(w, "CountWidth: adaptive counter width vs 64-bit reference")
	fmt.Fprintf(w, "events: %d, nodes: %d\n\n", r.Events, r.Nodes)
	fmt.Fprintf(w, "%-10s %14s %14s %10s\n", "layout", "arena bytes", "pool bytes", "B/node")
	fmt.Fprintf(w, "%-10s %14d %14d %10.2f\n", "packed", r.PackedArena, r.PackedPool, r.BytesPerNode)
	fmt.Fprintf(w, "%-10s %14d %14d %10.2f\n", "wide", r.WideArena, r.WidePool,
		float64(r.WideArena)/float64(max(r.Nodes, 1)))
	fmt.Fprintf(w, "\npaper model: %.0f B/node\n", r.ModelBytes)
	fmt.Fprintf(w, "density gain (wide/packed): %.2fx\n", r.DensityGain)
	fmt.Fprintf(w, "packed slots by width: 8-bit %d, 16-bit %d, 32-bit %d, 64-bit %d (promotions %d)\n",
		r.Slots[0], r.Slots[1], r.Slots[2], r.Slots[3], r.Promotions)
	fmt.Fprintf(w, "estimates equal: %v, snapshots equal: %v\n",
		r.EstimatesEqual, r.SnapshotsEqual)
}
