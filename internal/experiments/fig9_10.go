package experiments

import (
	"fmt"
	"io"
	"strings"

	"rap/internal/analysis"
	"rap/internal/cachesim"
	"rap/internal/core"
	"rap/internal/workload"
)

// Fig9Result holds the three averaged coverage-vs-log(range-width) curves
// of Figure 9: all loads, DL1 misses, DL2 misses.
type Fig9Result struct {
	Events    uint64
	AllLoads  []analysis.CoveragePoint
	DL1Misses []analysis.CoveragePoint
	DL2Misses []analysis.CoveragePoint
	// DL1At16 is the Figure 9 call-out: coverage of DL1-miss values by
	// hot ranges of width <= 2^16 (the paper reads ~56% off the curve).
	DL1At16 float64
	// MissRatioDL1/DL2 record the cache behaviour behind the curves.
	MissRatioDL1, MissRatioDL2 float64
}

// Fig9 plays every benchmark's load stream through the DL1/DL2 hierarchy,
// builds RAP trees (ε=1%) over the all-loads, DL1-miss, and DL2-miss
// value streams, and averages the hot-range coverage curves.
func Fig9(o Options) (Fig9Result, error) {
	var all, dl1, dl2 [][]analysis.CoveragePoint
	var accTot, missTot1, missTot2 uint64
	for _, b := range workload.All() {
		loads := b.Loads(o.Seed, o.Events)
		h := cachesim.NewHierarchy()
		tAll, err := core.New(valueConfig(0.01))
		if err != nil {
			return Fig9Result{}, err
		}
		tDL1 := core.MustNew(valueConfig(0.01))
		tDL2 := core.MustNew(valueConfig(0.01))
		for i := uint64(0); i < o.Events; i++ {
			ld := loads.Next()
			tAll.Add(ld.Value)
			l1Miss, l2Miss := h.Access(ld.Addr)
			if l1Miss {
				tDL1.Add(ld.Value)
				missTot1++
			}
			if l2Miss {
				tDL2.Add(ld.Value)
				missTot2++
			}
			accTot++
		}
		tAll.Finalize()
		tDL1.Finalize()
		tDL2.Finalize()
		all = append(all, analysis.CoverageCurve(tAll, HotTheta))
		dl1 = append(dl1, analysis.CoverageCurve(tDL1, HotTheta))
		dl2 = append(dl2, analysis.CoverageCurve(tDL2, HotTheta))
	}
	r := Fig9Result{
		Events:    accTot,
		AllLoads:  analysis.AverageCurves(all),
		DL1Misses: analysis.AverageCurves(dl1),
		DL2Misses: analysis.AverageCurves(dl2),
	}
	r.DL1At16 = analysis.CoverageAt(r.DL1Misses, 16)
	r.MissRatioDL1 = float64(missTot1) / float64(accTot)
	r.MissRatioDL2 = float64(missTot2) / float64(accTot)
	return r, nil
}

// Print renders the Figure 9 curves at the paper's x-axis resolution.
func (r Fig9Result) Print(w io.Writer) {
	header(w, "Figure 9: value-locality coverage vs log(range-width)")
	fmt.Fprintf(w, "loads=%d, DL1 miss ratio=%.3f, DL2 miss ratio=%.3f\n", r.Events, r.MissRatioDL1, r.MissRatioDL2)
	fmt.Fprintf(w, "(paper: DL1-miss hot ranges of width <= 2^16 cover ~56%%; miss curves above all-loads)\n\n")
	fmt.Fprintf(w, "%-14s %-12s %-12s %-12s\n", "log2(width)", "all_loads", "dl1_misses", "dl2_misses")
	for k := 0; k <= 64; k += 4 {
		fmt.Fprintf(w, "%-14d %-12.1f %-12.1f %-12.1f\n", k,
			100*analysis.CoverageAt(r.AllLoads, k),
			100*analysis.CoverageAt(r.DL1Misses, k),
			100*analysis.CoverageAt(r.DL2Misses, k))
	}
	fmt.Fprintf(w, "\nDL1-miss coverage at width 2^16: %.1f%%\n", 100*r.DL1At16)
}

// Fig10Result is the gcc zero-load memory-range tree of Figure 10.
type Fig10Result struct {
	ZeroLoads uint64
	HotRanges []core.HotRange
	Rendered  string
	// HotBandCoverage is the share of zero-loads inside the paper's
	// dominant band 0x11fd00000-0x11ff7ffff (54.6% + 13.7% ≈ 68%).
	HotBandCoverage float64
}

// Fig10 profiles the memory addresses of gcc's zero-valued loads (ε=1%).
func Fig10(o Options) (Fig10Result, error) {
	bench, err := workload.ByName("gcc")
	if err != nil {
		return Fig10Result{}, err
	}
	t, ex, err := runTreeAndExact(bench.Loads(o.Seed, o.Events).ZeroLoadAddresses(), valueConfig(0.01), o.Events)
	if err != nil {
		return Fig10Result{}, err
	}
	t.Finalize()
	var sb strings.Builder
	if err := analysis.RenderHotTree(&sb, t, HotTheta); err != nil {
		return Fig10Result{}, err
	}
	return Fig10Result{
		ZeroLoads:       t.N(),
		HotRanges:       t.HotRanges(HotTheta),
		Rendered:        sb.String(),
		HotBandCoverage: float64(ex.RangeCount(0x11fd00000, 0x11ff7ffff)) / float64(t.N()),
	}, nil
}

// Print renders the Figure 10 tree.
func (r Fig10Result) Print(w io.Writer) {
	header(w, "Figure 10: gcc zero-load memory ranges (eps=1%, hot=10%)")
	fmt.Fprintf(w, "zero-loads profiled=%d, hot ranges=%d\n", r.ZeroLoads, len(r.HotRanges))
	fmt.Fprintf(w, "(paper: bands of 0x11f000000-0x11fffffff dominate: 16.9%% + 54.6%% + 13.7%%)\n")
	fmt.Fprintf(w, "measured coverage of band [11fd00000,11ff7ffff]: %.1f%% (paper: 68.3%%)\n\n",
		100*r.HotBandCoverage)
	io.WriteString(w, r.Rendered)
}
