package experiments

import (
	"strings"
	"testing"
)

func TestCountWidthPackedDenserAndEquivalent(t *testing.T) {
	r, err := CountWidth(Options{Events: 200_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.EstimatesEqual || !r.SnapshotsEqual {
		t.Fatalf("packed and wide layouts diverged: estimates %v, snapshots %v",
			r.EstimatesEqual, r.SnapshotsEqual)
	}
	if r.DensityGain <= 1 {
		t.Fatalf("density gain %.2f, want > 1 (packed %d B, wide %d B)",
			r.DensityGain, r.PackedArena, r.WideArena)
	}
	if r.PackedPool >= r.WidePool {
		t.Fatalf("packed pool %d B not smaller than wide pool %d B", r.PackedPool, r.WidePool)
	}
	if r.Promotions == 0 {
		t.Fatal("a 200k zipf stream promoted no counters")
	}
	if total := r.Slots[0] + r.Slots[1] + r.Slots[2] + r.Slots[3]; total != r.Nodes {
		t.Fatalf("%d live counters for %d nodes", total, r.Nodes)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "density gain") {
		t.Error("printed table missing density gain line")
	}
}
