// Package experiments implements the paper's evaluation: one function per
// table or figure, each returning a structured result and able to print
// the same rows/series the paper reports. cmd/rapbench exposes them as
// subcommands; bench_test.go at the repository root wraps them as Go
// benchmarks; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"io"

	"rap/internal/core"
	"rap/internal/exact"
	"rap/internal/trace"
)

// Options control experiment scale. The paper runs SPEC to completion
// (billions of events); the defaults here run millions, which preserves
// every reported shape because RAP's guarantees are relative to the
// stream length (see DESIGN.md).
type Options struct {
	Events uint64 // events per profiling run
	Seed   uint64 // workload seed
}

// DefaultOptions is the scale used for EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{Events: 2_000_000, Seed: 1}
}

// HotTheta is the hot-range threshold used throughout the paper's
// figures: "ranges accounting for 10% or more".
const HotTheta = 0.10

// codeConfig is the tree configuration for code (PC) profiles: PCs live
// in a 32-bit text segment, so the tree height is 16 rather than 32.
func codeConfig(eps float64) core.Config {
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 32
	cfg.Epsilon = eps
	return cfg
}

// valueConfig is the tree configuration for 64-bit load-value profiles.
func valueConfig(eps float64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Epsilon = eps
	return cfg
}

// runTree streams n events from src into a fresh tree and returns it.
func runTree(src trace.Source, cfg core.Config, n uint64) (*core.Tree, error) {
	t, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	var fed uint64
	for fed < n {
		e, ok := src.Next()
		if !ok {
			break
		}
		t.AddN(e.Value, e.Weight)
		fed += e.Weight
	}
	return t, nil
}

// runTreeAndExact streams n events into both a tree and the perfect
// profiler.
func runTreeAndExact(src trace.Source, cfg core.Config, n uint64) (*core.Tree, *exact.Profiler, error) {
	t, err := core.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	ex := exact.New()
	var fed uint64
	for fed < n {
		e, ok := src.Next()
		if !ok {
			break
		}
		t.AddN(e.Value, e.Weight)
		ex.AddN(e.Value, e.Weight)
		fed += e.Weight
	}
	return t, ex, nil
}

// treeSizeRun streams n events and samples the live node count at 200
// evenly spaced points, returning max and average (the Figure 7 metrics).
func treeSizeRun(src trace.Source, cfg core.Config, n uint64) (maxNodes int, avgNodes float64, err error) {
	t, err := core.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	every := n / 200
	if every == 0 {
		every = 1
	}
	var fed uint64
	var samples int
	var sum float64
	for fed < n {
		e, ok := src.Next()
		if !ok {
			break
		}
		t.AddN(e.Value, e.Weight)
		fed += e.Weight
		if fed%every == 0 {
			sum += float64(t.NodeCount())
			samples++
		}
	}
	if samples == 0 {
		sum, samples = float64(t.NodeCount()), 1
	}
	return t.MaxNodeCount(), sum / float64(samples), nil
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}
