package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rap/internal/shard"
	"rap/internal/stats"
)

// ContendedQueryRow is one feeder count measured with a fixed querier
// pool hammering Estimate against the epoch read path while the feeders
// ingest at full rate.
type ContendedQueryRow struct {
	Feeders   int
	IngestEPS float64 // aggregate ingest events/sec across the feeders
	QPS       float64 // aggregate Estimate queries/sec across the queriers
	P50Micros float64 // median sampled query latency
	P99Micros float64 // p99 sampled query latency
	Epochs    uint64  // epochs published during the run
}

// ContendedQueryResult measures the epoch read path under write
// contention: F feeder goroutines ingest pre-generated Zipf streams
// through pinned shard handles at full rate while a fixed pool of
// querier goroutines hammers Estimate on random ranges. Queries answer
// from published epochs — zero lock acquisitions — so aggregate QPS and
// query p99 should be independent of the feeder count; the feeders only
// pay the publish cadence (one slab clone per shard every
// SnapshotEvery offered events).
type ContendedQueryResult struct {
	Events     uint64 // ingest events per feeder count
	Queriers   int
	GOMAXPROCS int
	Rows       []ContendedQueryRow
}

// ContendedQuery runs the contended-query experiment at 1, 2, 4, and 8
// feeders with a fixed 4-querier pool.
func ContendedQuery(o Options) (ContendedQueryResult, error) {
	cfg := valueConfig(0.01)
	const queriers = 4
	const domain = uint64(1) << 20
	r := ContendedQueryResult{
		Events:     o.Events,
		Queriers:   queriers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, feeders := range []int{1, 2, 4, 8} {
		per := o.Events / uint64(feeders)
		if per == 0 {
			per = 1
		}
		streams := make([][]uint64, feeders)
		for f := range streams {
			rng := stats.NewSplitMix64(o.Seed + uint64(2000*feeders+f))
			z := stats.NewZipf(rng, int(domain), 1.2)
			s := make([]uint64, per)
			for i := range s {
				s[i] = uint64(z.Rank())
			}
			streams[f] = s
		}

		eng, err := shard.New(cfg, feeders)
		if err != nil {
			return ContendedQueryResult{}, err
		}
		eng.EnableReadSnapshots(0)

		var done atomic.Bool
		var queries atomic.Uint64
		var qwg sync.WaitGroup
		lat := make([][]float64, queriers)
		for q := 0; q < queriers; q++ {
			qwg.Add(1)
			go func(q int) {
				defer qwg.Done()
				rng := stats.NewSplitMix64(o.Seed + uint64(9000+q))
				samples := make([]float64, 0, 1<<16)
				var n uint64
				for !done.Load() {
					lo := rng.Uint64n(domain)
					span := rng.Uint64n(domain/8) + 1
					hi := lo + span
					// Sample 1-in-32 latencies so time.Now overhead stays off
					// most queries and the samples slice stays bounded.
					if n%32 == 0 && len(samples) < cap(samples) {
						t0 := time.Now()
						eng.Estimate(lo, hi)
						samples = append(samples, float64(time.Since(t0).Nanoseconds())/1e3)
					} else {
						eng.Estimate(lo, hi)
					}
					n++
				}
				queries.Add(n)
				lat[q] = samples
			}(q)
		}

		var fwg sync.WaitGroup
		start := time.Now()
		for _, s := range streams {
			fwg.Add(1)
			go func(s []uint64) {
				defer fwg.Done()
				h := eng.Handle()
				for _, v := range s {
					h.Add(v)
				}
			}(s)
		}
		fwg.Wait()
		elapsed := time.Since(start).Seconds()
		done.Store(true)
		qwg.Wait()
		if elapsed <= 0 {
			return ContendedQueryResult{}, fmt.Errorf("experiments: contended-query run too fast to time")
		}

		var all []float64
		for _, s := range lat {
			all = append(all, s...)
		}
		sort.Float64s(all)
		row := ContendedQueryRow{
			Feeders:   feeders,
			IngestEPS: float64(uint64(feeders)*per) / elapsed,
			QPS:       float64(queries.Load()) / elapsed,
			P50Micros: percentileSorted(all, 0.50),
			P99Micros: percentileSorted(all, 0.99),
		}
		if pub := eng.Publisher(); pub != nil {
			row.Epochs = pub.Published()
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// percentileSorted reads the p-quantile from an ascending-sorted slice
// (nearest-rank); 0 on an empty slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// Print renders the contended-query table.
func (r ContendedQueryResult) Print(w io.Writer) {
	header(w, "Contended queries: lock-free epoch reads under full-rate ingest")
	fmt.Fprintf(w, "events per row: %d, queriers: %d, GOMAXPROCS: %d\n\n",
		r.Events, r.Queriers, r.GOMAXPROCS)
	fmt.Fprintf(w, "%-8s %-14s %-14s %-12s %-12s %s\n",
		"feeders", "ingest e/s", "query q/s", "p50 (µs)", "p99 (µs)", "epochs")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %-14.0f %-14.0f %-12.2f %-12.2f %d\n",
			row.Feeders, row.IngestEPS, row.QPS, row.P50Micros, row.P99Micros, row.Epochs)
	}
	fmt.Fprintf(w, "\n(queries answer from published epochs with zero lock acquisitions,\n")
	fmt.Fprintf(w, " so q/s and p99 should not degrade as feeders grow)\n")
}
