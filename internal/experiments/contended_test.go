package experiments

import "testing"

func TestContendedShapes(t *testing.T) {
	r, err := Contended(Options{Events: 40_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(r.Rows))
	}
	wantFeeders := []int{1, 2, 4, 8}
	for i, row := range r.Rows {
		if row.Feeders != wantFeeders[i] {
			t.Fatalf("row %d feeders = %d, want %d", i, row.Feeders, wantFeeders[i])
		}
		if row.SingleLockEPS <= 0 || row.ShardedEPS <= 0 {
			t.Fatalf("row %d has non-positive throughput: %+v", i, row)
		}
		if row.Speedup <= 0 {
			t.Fatalf("row %d speedup not computed: %+v", i, row)
		}
	}
	if r.GOMAXPROCS < 1 {
		t.Fatalf("GOMAXPROCS = %d", r.GOMAXPROCS)
	}
}
