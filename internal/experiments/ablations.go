package experiments

import (
	"fmt"
	"io"

	"rap/internal/analysis"
	"rap/internal/baseline"
	"rap/internal/core"
	"rap/internal/exact"
	"rap/internal/trace"
	"rap/internal/workload"
)

// AblationResult collects the design-choice ablations DESIGN.md calls out,
// measured (not worst-case) on the gcc streams.
type AblationResult struct {
	Events uint64

	// Branch sweep: measured peak nodes and average error by b.
	BranchRows []BranchRow
	// Merge scheduling: batched (q=2) vs continuous (fixed short period).
	Batched, Continuous ScheduleRow
	// Merge threshold scale 1x vs 2x.
	Scale1, Scale2 ScheduleRow
	// Equal-memory comparison on the gcc value stream.
	Comparison []ComparatorRow
}

// BranchRow is one branching-factor measurement.
type BranchRow struct {
	Branch   int
	MaxNodes int
	AvgError float64
}

// ScheduleRow is one merge-policy measurement.
type ScheduleRow struct {
	Name         string
	MaxNodes     int
	MergeBatches uint64
	NodesFolded  uint64
	AvgError     float64
}

// ComparatorRow is one profiler's showing at a fixed memory budget.
type ComparatorRow struct {
	Name string
	// HotCoverage is the stream share the profiler can attribute to hot
	// ranges/points it reports at the 10% threshold.
	HotCoverage float64
	// RangeQuery is the relative error answering the nested range query
	// [0, 0x3ffe] that RAP's hierarchy is built for.
	RangeQueryErrPct float64
	MemoryBytes      int
}

func gccCodeErr(o Options, cfg core.Config) (maxNodes int, batches, folded uint64, avgErr float64, err error) {
	bench, err := workload.ByName("gcc")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	t, ex, err := runTreeAndExact(bench.Code(o.Seed, o.Events), cfg, o.Events)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	st := t.Finalize()
	_, avgErr = analysis.ErrorSummary(analysis.PercentErrors(t, ex, HotTheta))
	return st.MaxNodes, st.MergeBatches, st.Merges, avgErr, nil
}

// Ablations runs the design-choice sweeps.
func Ablations(o Options) (AblationResult, error) {
	r := AblationResult{Events: o.Events}

	for _, b := range []int{2, 4, 16} {
		cfg := codeConfig(0.01)
		cfg.Branch = b
		maxN, _, _, avgErr, err := gccCodeErr(o, cfg)
		if err != nil {
			return AblationResult{}, err
		}
		r.BranchRows = append(r.BranchRows, BranchRow{Branch: b, MaxNodes: maxN, AvgError: avgErr})
	}

	// Batched (geometric q=2) vs continuous (merge every 1000 events).
	{
		cfg := codeConfig(0.01)
		maxN, batches, folded, avgErr, err := gccCodeErr(o, cfg)
		if err != nil {
			return AblationResult{}, err
		}
		r.Batched = ScheduleRow{Name: "batched q=2", MaxNodes: maxN, MergeBatches: batches, NodesFolded: folded, AvgError: avgErr}
		cfg.MergeEvery = 1000
		maxN, batches, folded, avgErr, err = gccCodeErr(o, cfg)
		if err != nil {
			return AblationResult{}, err
		}
		r.Continuous = ScheduleRow{Name: "continuous (1k period)", MaxNodes: maxN, MergeBatches: batches, NodesFolded: folded, AvgError: avgErr}
	}

	// Merge threshold scale.
	{
		cfg := codeConfig(0.01)
		cfg.MergeThresholdScale = 1
		maxN, batches, folded, avgErr, err := gccCodeErr(o, cfg)
		if err != nil {
			return AblationResult{}, err
		}
		r.Scale1 = ScheduleRow{Name: "merge thr = split thr", MaxNodes: maxN, MergeBatches: batches, NodesFolded: folded, AvgError: avgErr}
		cfg.MergeThresholdScale = 2
		maxN, batches, folded, avgErr, err = gccCodeErr(o, cfg)
		if err != nil {
			return AblationResult{}, err
		}
		r.Scale2 = ScheduleRow{Name: "merge thr = 2x split", MaxNodes: maxN, MergeBatches: batches, NodesFolded: folded, AvgError: avgErr}
	}

	cmp, err := equalMemoryComparison(o)
	if err != nil {
		return AblationResult{}, err
	}
	r.Comparison = cmp
	return r, nil
}

// equalMemoryComparison pits RAP against a fixed grid and Space-Saving on
// the gcc value stream at a common 8 KB budget.
func equalMemoryComparison(o Options) ([]ComparatorRow, error) {
	const budget = 8 << 10
	bench, err := workload.ByName("gcc")
	if err != nil {
		return nil, err
	}

	cfg := valueConfig(0.10) // peak nodes fit in 8 KB at eps=10%
	t, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	ex := exact.New()
	grid := baseline.NewFixedGrid(64, baseline.GridBitsForBudget(budget, 64))
	ss := baseline.NewSpaceSaving(budget / 24)

	src := trace.Limit(bench.Values(o.Seed, o.Events), o.Events)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		t.AddN(e.Value, e.Weight)
		ex.AddN(e.Value, e.Weight)
		grid.AddN(e.Value, e.Weight)
		for i := uint64(0); i < e.Weight; i++ {
			ss.Add(e.Value)
		}
	}
	t.Finalize()
	n := float64(t.N())

	queryErr := func(est uint64) float64 {
		truth := ex.RangeCount(0, 0x3ffe)
		if truth == 0 {
			return 0
		}
		d := float64(truth) - float64(est)
		if d < 0 {
			d = -d
		}
		return 100 * d / float64(truth)
	}

	var rows []ComparatorRow
	// RAP: hot ranges cover this share of the stream.
	var rapCover float64
	for _, h := range t.HotRanges(HotTheta) {
		rapCover += h.Frac
	}
	rows = append(rows, ComparatorRow{
		Name:             "RAP (eps=10%)",
		HotCoverage:      rapCover,
		RangeQueryErrPct: queryErr(t.Estimate(0, 0x3ffe)),
		MemoryBytes:      t.MaxNodeCount() * core.NodeBytes,
	})
	// Fixed grid: hot cells.
	var gridCover float64
	for _, c := range grid.HotCells(HotTheta) {
		gridCover += float64(c.Count) / n
	}
	rows = append(rows, ComparatorRow{
		Name:             "fixed grid",
		HotCoverage:      gridCover,
		RangeQueryErrPct: queryErr(grid.Estimate(0, 0x3ffe)),
		MemoryBytes:      grid.MemoryBytes(),
	})
	// Space-Saving: hot points only — no ranges, so its reportable
	// coverage is the share in individually hot values, and the range
	// query sums monitored points inside the range.
	var ssCover float64
	var ssRange uint64
	for _, e := range ss.Entries() {
		if float64(e.Count-e.Err) >= HotTheta*n {
			ssCover += float64(e.Count-e.Err) / n
		}
		if e.Value <= 0x3ffe {
			ssRange += e.Count - e.Err
		}
	}
	rows = append(rows, ComparatorRow{
		Name:             "space-saving",
		HotCoverage:      ssCover,
		RangeQueryErrPct: queryErr(ssRange),
		MemoryBytes:      ss.MemoryBytes(),
	})
	return rows, nil
}

// Print renders the ablation tables.
func (r AblationResult) Print(w io.Writer) {
	header(w, "Ablations (gcc streams)")
	fmt.Fprintf(w, "events per run: %d\n", r.Events)

	fmt.Fprintf(w, "\n-- branching factor (code, eps=1%%) --\n%-8s %-10s %s\n", "b", "max nodes", "avg %err")
	for _, row := range r.BranchRows {
		fmt.Fprintf(w, "%-8d %-10d %.2f\n", row.Branch, row.MaxNodes, row.AvgError)
	}

	fmt.Fprintf(w, "\n-- merge scheduling (code, eps=1%%) --\n%-24s %-10s %-10s %-12s %s\n",
		"policy", "max nodes", "batches", "folded", "avg %err")
	for _, row := range []ScheduleRow{r.Batched, r.Continuous, r.Scale1, r.Scale2} {
		fmt.Fprintf(w, "%-24s %-10d %-10d %-12d %.2f\n",
			row.Name, row.MaxNodes, row.MergeBatches, row.NodesFolded, row.AvgError)
	}

	fmt.Fprintf(w, "\n-- equal-memory comparison, gcc values, 8 KB budget --\n%-16s %-14s %-18s %s\n",
		"profiler", "hot coverage", "range query err", "memory")
	for _, row := range r.Comparison {
		fmt.Fprintf(w, "%-16s %-14.3f %-18.2f %d B\n",
			row.Name, row.HotCoverage, row.RangeQueryErrPct, row.MemoryBytes)
	}
}
