package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"rap/internal/core"
	"rap/internal/shard"
	"rap/internal/stats"
)

// ContendedRow is one feeder count measured under both locking regimes.
type ContendedRow struct {
	Feeders       int
	SingleLockEPS float64 // events/sec through one ConcurrentTree
	ShardedEPS    float64 // events/sec through a shard.Engine (shards = feeders)
	Speedup       float64 // ShardedEPS / SingleLockEPS
}

// ContendedResult measures multi-goroutine ingest throughput: F feeder
// goroutines hammering per-event Add against (a) a single mutex-wrapped
// tree and (b) a sharded engine with one shard per feeder and per-feeder
// pinned handles. The workload (per-feeder Zipf streams) is pre-generated
// so the measured region is pure ingest. Scaling beyond 1× requires real
// cores: GOMAXPROCS is recorded so a 1-CPU run explains its own flatness.
type ContendedResult struct {
	Events     uint64 // events per regime at each feeder count
	GOMAXPROCS int
	Rows       []ContendedRow
}

// Contended runs the contended-ingest experiment at 1, 2, 4, and 8
// feeders.
func Contended(o Options) (ContendedResult, error) {
	cfg := valueConfig(0.01)
	r := ContendedResult{Events: o.Events, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, feeders := range []int{1, 2, 4, 8} {
		per := o.Events / uint64(feeders)
		if per == 0 {
			per = 1
		}
		// Pre-generate each feeder's stream so generation cost and rng
		// state stay out of the timed region and off the shared path.
		streams := make([][]uint64, feeders)
		for f := range streams {
			rng := stats.NewSplitMix64(o.Seed + uint64(1000*feeders+f))
			// 2^20 distinct ranks: plenty of tree structure without the
			// O(n) CDF table of a full 64-bit-domain Zipf.
			z := stats.NewZipf(rng, 1<<20, 1.2)
			s := make([]uint64, per)
			for i := range s {
				s[i] = uint64(z.Rank())
			}
			streams[f] = s
		}

		single, err := timeFeeders(streams, func() (feederSink, error) {
			ct, err := core.NewConcurrent(cfg)
			if err != nil {
				return nil, err
			}
			return func(int) func(uint64) { return ct.Add }, nil
		})
		if err != nil {
			return ContendedResult{}, err
		}
		sharded, err := timeFeeders(streams, func() (feederSink, error) {
			e, err := shard.New(cfg, feeders)
			if err != nil {
				return nil, err
			}
			return func(int) func(uint64) { return e.Handle().Add }, nil
		})
		if err != nil {
			return ContendedResult{}, err
		}
		row := ContendedRow{Feeders: feeders, SingleLockEPS: single, ShardedEPS: sharded}
		if single > 0 {
			row.Speedup = sharded / single
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// feederSink builds one per-feeder Add function; for the sharded regime
// each feeder gets its own pinned handle, for the single-lock regime all
// feeders share the one locked tree.
type feederSink func(feeder int) func(uint64)

// timeFeeders runs one goroutine per stream through the sinks built by
// mk and returns aggregate events/sec.
func timeFeeders(streams [][]uint64, mk func() (feederSink, error)) (float64, error) {
	sink, err := mk()
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, s := range streams {
		total += uint64(len(s))
	}
	var wg sync.WaitGroup
	start := time.Now()
	for f, s := range streams {
		wg.Add(1)
		go func(f int, s []uint64) {
			defer wg.Done()
			add := sink(f)
			for _, v := range s {
				add(v)
			}
		}(f, s)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("experiments: contended run too fast to time")
	}
	return float64(total) / elapsed, nil
}

// Print renders the contended-ingest table.
func (r ContendedResult) Print(w io.Writer) {
	header(w, "Contended ingest: sharded engine vs single-lock tree")
	fmt.Fprintf(w, "events per regime: %d, GOMAXPROCS: %d\n\n", r.Events, r.GOMAXPROCS)
	fmt.Fprintf(w, "%-8s %-16s %-16s %s\n", "feeders", "single-lock e/s", "sharded e/s", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %-16.0f %-16.0f %.2fx\n",
			row.Feeders, row.SingleLockEPS, row.ShardedEPS, row.Speedup)
	}
	if r.GOMAXPROCS == 1 {
		fmt.Fprintf(w, "\n(GOMAXPROCS=1: feeders share one core, so sharding cannot scale here;\n")
		fmt.Fprintf(w, " the speedup column is meaningful only on multi-core hosts)\n")
	}
}
