package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rap/internal/audit"
	"rap/internal/core"
	"rap/internal/span"
	"rap/internal/stats"
)

// Micro measures the per-update cost of each core ingest entry point on
// the workload shapes the root bench_test.go micro-benchmarks use, so the
// same numbers are available as a machine-readable rapbench envelope. CI's
// perf gate records one run per PR as BENCH_<n>.json and fails when the
// skewed single-point path (the paper's hot-code-region case) regresses
// against the committed baseline.

// MicroRow is one ingest path measured on one workload shape.
type MicroRow struct {
	Op             string  // entry point / workload, e.g. "add/zipf"
	Updates        uint64  // timed update operations
	NsPerOp        float64 // wall nanoseconds per update
	MUpdatesPerSec float64
	Nodes          int     // live nodes when the run finished
	ArenaBytes     int     // node slab plus counter pools when the run finished
	ModelBytes     float64 // the paper's 16 B/node accounting model, per node
	BytesPerNode   float64 // actual ArenaBytes / Nodes
}

// MicroResult is the full ingest-path cost table.
type MicroResult struct {
	Events uint64 // updates per row
	Rows   []MicroRow
}

// microChunk is the batch size the chunked entry points are fed with,
// matching the default ingest queue drain size order of magnitude.
const microChunk = 4096

// microReps is how many times each row is measured; the reported row is
// the fastest repetition. Scheduler and GC interference on shared CI
// runners is one-sided — it only ever adds time — so the minimum is the
// stable per-update cost estimate a single sample is not, and the perf
// gates comparing rows against committed baselines stop flaking on
// runner noise.
const microReps = 3

// Micro runs every ingest entry point for o.Events updates each and
// returns the cost table; each row reports the fastest of microReps
// repetitions. Workload shapes mirror the root benchmarks:
// Zipf(2^20, s=1.2) for the skewed paths, uniform 64-bit for the
// cache-hostile path, and Zipf(2^12, s=1.3) with weight 16 for the
// hardware-style coalesced path. Point tables are precomputed so the
// timed region is tree work only.
func Micro(o Options) (MicroResult, error) {
	const tableBits = 16
	const mask = 1<<tableBits - 1
	rng := stats.NewSplitMix64(o.Seed)
	zipf := stats.NewZipf(rng, 1<<20, 1.2)
	zpoints := make([]uint64, 1<<tableBits)
	for i := range zpoints {
		zpoints[i] = uint64(zipf.Rank())
	}
	upoints := make([]uint64, 1<<tableBits)
	for i := range upoints {
		upoints[i] = rng.Uint64()
	}
	z12 := stats.NewZipf(rng, 1<<12, 1.3)
	cpoints := make([]uint64, 1<<tableBits)
	for i := range cpoints {
		cpoints[i] = uint64(z12.Rank())
	}
	// Pre-sorted chunks for AddSorted: sorting is the caller's cost, not
	// the tree's, so it happens outside the timed region.
	schunks := make([][]uint64, (1<<tableBits)/microChunk)
	for i := range schunks {
		c := append([]uint64(nil), zpoints[i*microChunk:(i+1)*microChunk]...)
		sort.Slice(c, func(a, b int) bool { return c[a] < c[b] })
		schunks[i] = c
	}

	n := o.Events
	r := MicroResult{Events: n}
	measure := func(op string, setup func(t *core.Tree) error, ingest func(t *core.Tree)) error {
		var best time.Duration
		var bestTree *core.Tree
		for rep := 0; rep < microReps; rep++ {
			t, err := core.New(core.DefaultConfig())
			if err != nil {
				return err
			}
			if setup != nil {
				if err := setup(t); err != nil {
					return err
				}
			}
			start := time.Now()
			ingest(t)
			elapsed := time.Since(start)
			if bestTree == nil || elapsed < best {
				best, bestTree = elapsed, t
			}
		}
		row := MicroRow{
			Op:         op,
			Updates:    n,
			NsPerOp:    float64(best.Nanoseconds()) / float64(n),
			Nodes:      bestTree.NodeCount(),
			ArenaBytes: bestTree.ArenaBytes(),
			ModelBytes: core.NodeBytes,
		}
		if row.Nodes > 0 {
			row.BytesPerNode = float64(row.ArenaBytes) / float64(row.Nodes)
		}
		if s := best.Seconds(); s > 0 {
			row.MUpdatesPerSec = float64(n) / s / 1e6
		}
		r.Rows = append(r.Rows, row)
		return nil
	}

	// auditTap installs a warmed accuracy-audit tap (see internal/audit),
	// so the add/zipf/audit row measures the steady-state shadow cost: one
	// atomic add plus a binary search over the adopted range set per event.
	auditTap := func(t *core.Tree) error {
		a := audit.New(audit.Options{SamplePeriod: 1024})
		taps, err := a.Attach(core.DefaultConfig(), t, 1)
		if err != nil {
			return err
		}
		t.SetTap(taps[0])
		return nil
	}

	steps := []struct {
		op     string
		setup  func(t *core.Tree) error
		ingest func(t *core.Tree)
	}{
		{"add/zipf", nil, func(t *core.Tree) {
			for i := uint64(0); i < n; i++ {
				t.Add(zpoints[i&mask])
			}
		}},
		{"add/zipf/audit", auditTap, func(t *core.Tree) {
			for i := uint64(0); i < n; i++ {
				t.Add(zpoints[i&mask])
			}
		}},
		// The tracing-overhead row: the same skewed Add stream with the
		// span tracer running the way rapd runs it — one root+child span
		// per drained batch at 1-in-100 head sampling. CI gates this row
		// against the committed add/zipf baseline: tracing must cost
		// under 5% or the observability is not free enough to dogfood.
		{"add/zipf/span", nil, func(t *core.Tree) {
			tr := span.New(span.Options{SampleRate: 100, Capacity: 4096, SlowThreshold: -1})
			for fed := uint64(0); fed < n; fed += microChunk {
				root := tr.StartRoot("ingest.batch")
				sp := tr.StartChild(root.Context(), "apply")
				for i := fed; i < fed+microChunk; i++ {
					t.Add(zpoints[i&mask])
				}
				sp.End()
				root.End()
			}
		}},
		{"add/uniform", nil, func(t *core.Tree) {
			for i := uint64(0); i < n; i++ {
				t.Add(upoints[i&mask])
			}
		}},
		{"addn/coalesced", nil, func(t *core.Tree) {
			for i := uint64(0); i < n; i++ {
				t.AddN(cpoints[i&mask], 16)
			}
		}},
		{"addbatch/zipf", nil, func(t *core.Tree) {
			for fed := uint64(0); fed < n; fed += microChunk {
				off := fed & mask
				t.AddBatch(zpoints[off : off+microChunk])
			}
		}},
		{"addsorted/zipf", nil, func(t *core.Tree) {
			k := 0
			for fed := uint64(0); fed < n; fed += microChunk {
				t.AddSorted(schunks[k])
				k = (k + 1) % len(schunks)
			}
		}},
	}
	for _, s := range steps {
		if err := measure(s.op, s.setup, s.ingest); err != nil {
			return MicroResult{}, err
		}
	}
	return r, nil
}

// Print renders the ingest-path cost table.
func (r MicroResult) Print(w io.Writer) {
	header(w, "Micro: per-update ingest cost by entry point")
	fmt.Fprintf(w, "updates per run: %d\n\n", r.Events)
	fmt.Fprintf(w, "%-16s %10s %12s %8s %12s %8s %8s\n",
		"op", "ns/op", "Mupdates/s", "nodes", "arena bytes", "B/node", "model")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %10.1f %12.2f %8d %12d %8.2f %8.0f\n",
			row.Op, row.NsPerOp, row.MUpdatesPerSec, row.Nodes, row.ArenaBytes,
			row.BytesPerNode, row.ModelBytes)
	}
}
