package experiments

import (
	"fmt"
	"io"

	"rap/internal/analysis"
	"rap/internal/core"
	"rap/internal/exact"
	"rap/internal/mini"
)

// MiniRow is one Mini program's validation result: RAP profiles taken
// from a real (VM-executed) program trace, checked against the perfect
// profiler.
type MiniRow struct {
	Program string
	Steps   uint64

	// Code profile (basic-block PCs, eps=10%).
	CodeEvents    uint64
	CodeHotRanges int
	CodeMaxNodes  int
	CodeMaxErr    float64
	CodeAvgErr    float64

	// Load-value profile (eps=1%).
	LoadEvents     uint64
	ValueHotRanges int
	ValueMaxNodes  int
	ValueMaxErr    float64
	ValueAvgErr    float64
}

// MiniResult validates RAP on the Mini VM substrate: unlike the
// statistical workload models, these traces come from actual program
// execution (loops, data-dependent branches, pointer-valued data), so
// they cross-check that the evaluation does not depend on modeling
// artifacts.
type MiniResult struct {
	Rows []MiniRow
}

// Mini runs every Mini benchmark program under the instrumented VM and
// profiles its block-PC and load-value streams with RAP.
func Mini(o Options) (MiniResult, error) {
	var r MiniResult
	for _, name := range mini.ProgramNames() {
		tr, err := mini.CollectTrace(name, o.Seed)
		if err != nil {
			return MiniResult{}, err
		}
		row := MiniRow{Program: name, Steps: tr.Steps}

		// Code profile over a 32-bit PC universe at eps=10%.
		cfg := codeConfig(0.10)
		ct := core.MustNew(cfg)
		cex := exact.New()
		for _, pc := range tr.BlockPCs {
			ct.Add(pc)
			cex.Add(pc)
		}
		ct.Finalize()
		errs := analysis.PercentErrors(ct, cex, HotTheta)
		row.CodeEvents = ct.N()
		row.CodeHotRanges = len(errs)
		row.CodeMaxNodes = ct.MaxNodeCount()
		row.CodeMaxErr, row.CodeAvgErr = analysis.ErrorSummary(errs)

		// Value profile over the full 64-bit universe at eps=1%.
		vt := core.MustNew(valueConfig(0.01))
		vex := exact.New()
		for _, ld := range tr.Loads {
			vt.Add(ld.Value)
			vex.Add(ld.Value)
		}
		vt.Finalize()
		verrs := analysis.PercentErrors(vt, vex, HotTheta)
		row.LoadEvents = vt.N()
		row.ValueHotRanges = len(verrs)
		row.ValueMaxNodes = vt.MaxNodeCount()
		row.ValueMaxErr, row.ValueAvgErr = analysis.ErrorSummary(verrs)

		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// Print renders the Mini validation table.
func (r MiniResult) Print(w io.Writer) {
	header(w, "Mini VM validation: RAP on real program traces")
	fmt.Fprintf(w, "(cross-check that the figure results are not artifacts of the workload models)\n\n")
	fmt.Fprintf(w, "%-10s %-10s | %-9s %-5s %-6s %-8s %-8s | %-9s %-5s %-6s %-8s %-8s\n",
		"program", "steps",
		"blocks", "hot", "nodes", "maxerr%", "avgerr%",
		"loads", "hot", "nodes", "maxerr%", "avgerr%")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %-10d | %-9d %-5d %-6d %-8.2f %-8.2f | %-9d %-5d %-6d %-8.2f %-8.2f\n",
			row.Program, row.Steps,
			row.CodeEvents, row.CodeHotRanges, row.CodeMaxNodes, row.CodeMaxErr, row.CodeAvgErr,
			row.LoadEvents, row.ValueHotRanges, row.ValueMaxNodes, row.ValueMaxErr, row.ValueAvgErr)
	}
}
