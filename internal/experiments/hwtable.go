package experiments

import (
	"fmt"
	"io"

	"rap/internal/hw"
	"rap/internal/trace"
	"rap/internal/workload"
)

// HWResult reproduces the Section 3.4 hardware characterization: the
// area/delay/energy table for the 4096-row and 400-row configurations,
// plus a pipeline simulation over the gcc code stream and the Stage-0
// buffer compression measurement.
type HWResult struct {
	Big, Small     hw.Estimate
	AreaRatio      float64
	EnergyRatio    float64
	PipelineReport hw.Report
	// BufferCompression is the raw-events-in per coalesced-event-out of a
	// 1k Stage-0 buffer on a code profile (the paper's "factor of 10").
	BufferCompression float64
}

// HW runs the hardware characterization.
func HW(o Options) (HWResult, error) {
	big, err := hw.DefaultConfig().Estimate()
	if err != nil {
		return HWResult{}, err
	}
	small, err := hw.SmallConfig().Estimate()
	if err != nil {
		return HWResult{}, err
	}

	bench, err := workload.ByName("gcc")
	if err != nil {
		return HWResult{}, err
	}

	// Pipeline simulation: gcc basic blocks through a 1k coalescing
	// buffer into the engine, as in Figure 4's Stage 0.
	buf := trace.NewCoalescingBuffer(trace.Limit(bench.Code(o.Seed, o.Events), o.Events), 1024)
	eng, err := hw.NewEngine(hw.DefaultConfig(), codeConfig(0.10))
	if err != nil {
		return HWResult{}, err
	}
	for {
		e, ok := buf.Next()
		if !ok {
			break
		}
		eng.Process(e)
	}
	return HWResult{
		Big:               big,
		Small:             small,
		AreaRatio:         big.TotalAreaMM2 / small.TotalAreaMM2,
		EnergyRatio:       big.TotalEnergyNJ / small.TotalEnergyNJ,
		PipelineReport:    eng.Report(),
		BufferCompression: buf.CompressionFactor(),
	}, nil
}

// Print renders the Section 3.4 table.
func (r HWResult) Print(w io.Writer) {
	header(w, "Section 3.4: Pipelined RAP Engine hardware characterization (0.18um)")
	fmt.Fprintf(w, "%-26s %-14s %-14s\n", "", "4096x36+16KB", "400x36+1.6KB")
	row := func(name string, a, b float64, unit string) {
		fmt.Fprintf(w, "%-26s %-14.3f %-14.3f %s\n", name, a, b, unit)
	}
	row("TCAM area", r.Big.TCAMAreaMM2, r.Small.TCAMAreaMM2, "mm^2")
	row("SRAM area", r.Big.SRAMAreaMM2, r.Small.SRAMAreaMM2, "mm^2")
	row("arbiter area", r.Big.ArbiterAreaMM2, r.Small.ArbiterAreaMM2, "mm^2")
	row("comparator+regs area", r.Big.LogicAreaMM2, r.Small.LogicAreaMM2, "mm^2")
	row("TOTAL area", r.Big.TotalAreaMM2, r.Small.TotalAreaMM2, "mm^2  (paper: 24.73)")
	fmt.Fprintln(w)
	row("TCAM lookup delay", r.Big.TCAMDelayNS, r.Small.TCAMDelayNS, "ns    (paper: 7)")
	row("SRAM stage delay", r.Big.SRAMDelayNS, r.Small.SRAMDelayNS, "ns    (paper: 1.26)")
	row("pipelined critical path", r.Big.CriticalPathNS, r.Small.CriticalPathNS, "ns")
	fmt.Fprintln(w)
	row("energy per event", r.Big.TotalEnergyNJ, r.Small.TotalEnergyNJ, "nJ    (paper: 1.272)")
	fmt.Fprintf(w, "\narea ratio big/small:   %.1fx (paper: more than 10x)\n", r.AreaRatio)
	fmt.Fprintf(w, "energy ratio big/small: %.1fx (paper: more than 10x)\n", r.EnergyRatio)
	fmt.Fprintf(w, "\npipeline simulation over gcc code profile:\n  %s\n", r.PipelineReport)
	fmt.Fprintf(w, "  (paper: 4 cycles per event average, 2 TCAM + 2 SRAM)\n")
	fmt.Fprintf(w, "stage-0 buffer compression (1k window, code profile): %.1fx (paper: ~10x)\n",
		r.BufferCompression)
}
