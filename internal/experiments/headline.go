package experiments

import (
	"fmt"
	"io"

	"rap/internal/analysis"
	"rap/internal/core"
	"rap/internal/workload"
)

// HeadlineRow is one benchmark at one memory budget.
type HeadlineRow struct {
	Benchmark string
	MaxNodes  int
	MaxBytes  int
	Accuracy  float64 // 100 - average percent error on hot ranges
}

// HeadlineResult reproduces the paper's summary claim (Sections 4.3, 6):
// "we can provide 98% accurate information about hot code regions with
// only 8k bytes of memory and 99.73% accurate information with 64k bytes".
// The 8 KB budget corresponds to ε=10% (max ~500 nodes x 16 B) and the
// 64 KB budget to ε=1%.
type HeadlineResult struct {
	Events       uint64
	At8KB        []HeadlineRow
	At64KB       []HeadlineRow
	AvgAcc8KB    float64
	AvgAcc64KB   float64
	Fits8KB      bool // every benchmark's peak tree within 8 KB at eps=10%
	Fits64KB     bool
	NodeBudget8  int
	NodeBudget64 int
}

// Headline measures code-profile accuracy under the two memory budgets.
func Headline(o Options) (HeadlineResult, error) {
	r := HeadlineResult{
		Events:       o.Events,
		NodeBudget8:  8 * 1024 / core.NodeBytes,
		NodeBudget64: 64 * 1024 / core.NodeBytes,
		Fits8KB:      true,
		Fits64KB:     true,
	}
	run := func(eps float64) ([]HeadlineRow, float64, error) {
		var rows []HeadlineRow
		sum := 0.0
		for _, b := range workload.All() {
			t, ex, err := runTreeAndExact(b.Code(o.Seed, o.Events), codeConfig(eps), o.Events)
			if err != nil {
				return nil, 0, err
			}
			t.Finalize()
			_, avgPct := analysis.ErrorSummary(analysis.PercentErrors(t, ex, HotTheta))
			rows = append(rows, HeadlineRow{
				Benchmark: b.Name,
				MaxNodes:  t.MaxNodeCount(),
				MaxBytes:  t.MaxNodeCount() * core.NodeBytes,
				Accuracy:  100 - avgPct,
			})
			sum += 100 - avgPct
		}
		return rows, sum / float64(len(rows)), nil
	}
	var err error
	if r.At8KB, r.AvgAcc8KB, err = run(0.10); err != nil {
		return HeadlineResult{}, err
	}
	if r.At64KB, r.AvgAcc64KB, err = run(0.01); err != nil {
		return HeadlineResult{}, err
	}
	for _, row := range r.At8KB {
		if row.MaxNodes > r.NodeBudget8 {
			r.Fits8KB = false
		}
	}
	for _, row := range r.At64KB {
		if row.MaxNodes > r.NodeBudget64 {
			r.Fits64KB = false
		}
	}
	return r, nil
}

// Print renders the headline table.
func (r HeadlineResult) Print(w io.Writer) {
	header(w, "Headline: accuracy per memory budget (code profiles)")
	fmt.Fprintf(w, "events per run: %d; node budget: %d nodes in 8KB, %d in 64KB\n",
		r.Events, r.NodeBudget8, r.NodeBudget64)
	panel := func(title string, rows []HeadlineRow, avg float64, fits bool, budget int) {
		fmt.Fprintf(w, "\n-- %s --\n%-10s %-10s %-10s %s\n", title, "benchmark", "max nodes", "max bytes", "accuracy")
		for _, row := range rows {
			fmt.Fprintf(w, "%-10s %-10d %-10d %.2f%%\n", row.Benchmark, row.MaxNodes, row.MaxBytes, row.Accuracy)
		}
		fmt.Fprintf(w, "average accuracy: %.2f%%, all runs within budget (%d nodes): %v\n", avg, budget, fits)
	}
	panel("8 KB budget (eps=10%), paper: 98%", r.At8KB, r.AvgAcc8KB, r.Fits8KB, r.NodeBudget8)
	panel("64 KB budget (eps=1%), paper: 99.73%", r.At64KB, r.AvgAcc64KB, r.Fits64KB, r.NodeBudget64)
}

// NarrowResult reproduces the Section 4.4 narrow-operand profile: PCs of
// instructions with operands under 16 bits, which must concentrate in
// specific code regions (the paper's flow.c / propagate_block story).
type NarrowResult struct {
	Events     uint64
	TopRegions []RegionShare
	HotRanges  int
}

// RegionShare is a modeled region's share of the narrow-operand stream.
type RegionShare struct {
	LoPC, HiPC uint64
	Share      float64
}

// Narrow profiles gcc's narrow-operand PCs with RAP and reports the share
// of each modeled hot region.
func Narrow(o Options) (NarrowResult, error) {
	bench, err := workload.ByName("gcc")
	if err != nil {
		return NarrowResult{}, err
	}
	t, err := runTree(bench.NarrowOperandPCs(o.Seed, 16, o.Events), codeConfig(0.01), o.Events)
	if err != nil {
		return NarrowResult{}, err
	}
	t.Finalize()
	r := NarrowResult{Events: t.N(), HotRanges: len(t.HotRanges(HotTheta))}
	for _, reg := range bench.Regions() {
		r.TopRegions = append(r.TopRegions, RegionShare{
			LoPC:  reg.LoPC,
			HiPC:  reg.HiPC,
			Share: float64(t.Estimate(reg.LoPC, reg.HiPC)) / float64(t.N()),
		})
	}
	return r, nil
}

// Print renders the narrow-operand region table.
func (r NarrowResult) Print(w io.Writer) {
	header(w, "Section 4.4: gcc narrow-operand (<16 bit) PC profile")
	fmt.Fprintf(w, "narrow operations profiled: %d, hot ranges: %d\n", r.Events, r.HotRanges)
	fmt.Fprintf(w, "(paper: flow.c 38.7%% of narrow ops, propagate_block 31%% within it)\n\n")
	fmt.Fprintf(w, "%-20s %s\n", "region", "share of narrow ops")
	for _, reg := range r.TopRegions {
		fmt.Fprintf(w, "[%x,%x] %6.1f%%\n", reg.LoPC, reg.HiPC, 100*reg.Share)
	}
}
