package experiments

import (
	"fmt"
	"io"
	"strings"

	"rap/internal/analysis"
	"rap/internal/core"
	"rap/internal/trace"
	"rap/internal/workload"
)

// Fig5Result is the gzip hot load-value range tree of Figure 5 (ε = 1%,
// hot threshold 10%).
type Fig5Result struct {
	Events    uint64
	HotRanges []core.HotRange
	Rendered  string
}

// Fig5 profiles gzip's load values and extracts the hot-range tree.
func Fig5(o Options) (Fig5Result, error) {
	bench, err := workload.ByName("gzip")
	if err != nil {
		return Fig5Result{}, err
	}
	t, err := runTree(bench.Values(o.Seed, o.Events), valueConfig(0.01), o.Events)
	if err != nil {
		return Fig5Result{}, err
	}
	t.Finalize()
	var sb strings.Builder
	if err := analysis.RenderHotTree(&sb, t, HotTheta); err != nil {
		return Fig5Result{}, err
	}
	return Fig5Result{
		Events:    t.N(),
		HotRanges: t.HotRanges(HotTheta),
		Rendered:  sb.String(),
	}, nil
}

// Print renders the Figure 5 tree.
func (r Fig5Result) Print(w io.Writer) {
	header(w, "Figure 5: hot load-value ranges in gzip (eps=1%, hot=10%)")
	fmt.Fprintf(w, "events=%d, hot ranges=%d\n", r.Events, len(r.HotRanges))
	fmt.Fprintf(w, "(paper: 7 hot ranges; [0,e] 13.6%%, [0,fe] 16.7%%, [0,3ffe] 11.3%%,\n")
	fmt.Fprintf(w, " [0,3fffe] 22.8%%, [11ffffffd,12000fffb] 10.0%%, [12000fffc,12001fffa] 12.2%%)\n\n")
	io.WriteString(w, r.Rendered)
}

// Fig6Result is the Figure 6 memory-over-time trace for gcc's code
// profile at ε = 10%.
type Fig6Result struct {
	Timeline analysis.Timeline
}

// Fig6 runs the gcc basic-block stream and samples the tree size.
func Fig6(o Options) (Fig6Result, error) {
	bench, err := workload.ByName("gcc")
	if err != nil {
		return Fig6Result{}, err
	}
	tl, err := analysis.MemoryTimeline(bench.Code(o.Seed, o.Events), codeConfig(0.10), o.Events, 100)
	if err != nil {
		return Fig6Result{}, err
	}
	return Fig6Result{Timeline: tl}, nil
}

// Print renders the Figure 6 series, marking merge batches the way the
// paper's dashed lines do.
func (r Fig6Result) Print(w io.Writer) {
	header(w, "Figure 6: RAP tree size over time, gcc code profile (eps=10%)")
	fmt.Fprintf(w, "max=%d nodes, avg=%.0f nodes (paper peak: <500 nodes)\n\n",
		r.Timeline.MaxNodes, r.Timeline.AvgNodes)
	fmt.Fprintf(w, "%-14s %-8s %s\n", "events", "nodes", "")
	lastBatches := uint64(0)
	for _, p := range r.Timeline.Points {
		mark := ""
		if p.MergeBatches != lastBatches {
			mark = "<- batch merge"
			lastBatches = p.MergeBatches
		}
		fmt.Fprintf(w, "%-14d %-8d %s\n", p.N, p.Nodes, mark)
	}
}

// feedInto streams exactly n events into sink, returning false when the
// source ran dry first.
func feedInto(src trace.Source, n uint64, sink func(trace.Event)) bool {
	var fed uint64
	for fed < n {
		e, ok := src.Next()
		if !ok {
			return false
		}
		sink(e)
		fed += e.Weight
	}
	return true
}
