package experiments

import (
	"math"
	"strings"
	"testing"

	"rap/internal/analysis"
)

// Small-scale options keep the suite fast; every assertion is about shape,
// which is scale-invariant.
func testOptions() Options { return Options{Events: 150_000, Seed: 1} }

func TestFig2Shape(t *testing.T) {
	r := Fig2()
	if r.ChosenBranch != 4 || r.ChosenRatio != 2 {
		t.Fatalf("chosen operating point b=%d q=%v, want 4, 2", r.ChosenBranch, r.ChosenRatio)
	}
	// b sweep: minimum at b in {2,4}, increasing afterwards.
	byBranch := map[int]float64{}
	for _, p := range r.BranchSweep {
		byBranch[p.Branch] = p.WorstNodes
	}
	if !(byBranch[4] <= byBranch[8] && byBranch[8] <= byBranch[16]) {
		t.Fatalf("branch sweep not increasing past 4: %+v", r.BranchSweep)
	}
	// q sweep: q=2 minimal.
	min := math.Inf(1)
	minQ := 0.0
	for _, p := range r.RatioSweep {
		if p.WorstNodes < min {
			min, minQ = p.WorstNodes, p.Ratio
		}
	}
	if minQ != 2 {
		t.Fatalf("q sweep minimized at %v, want 2", minQ)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "Figure 2") {
		t.Fatal("print output malformed")
	}
}

func TestFig3Shape(t *testing.T) {
	r := Fig3()
	if r.MergeCount != 21 { // 2^10..2^30 doublings inclusive
		t.Fatalf("merge count = %d, want 21", r.MergeCount)
	}
	for _, p := range r.Batched {
		if p.Bound < r.Continuous-1e-9 {
			t.Fatal("batched bound dipped below the continuous bound")
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "batch merge") {
		t.Fatal("no merge marks in output")
	}
}

func TestFig5GzipHotTree(t *testing.T) {
	r, err := Fig5(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HotRanges) < 5 || len(r.HotRanges) > 10 {
		t.Fatalf("gzip hot ranges = %d, paper found 7", len(r.HotRanges))
	}
	// The nested small-value structure and the high band must both appear.
	var low, band bool
	for _, h := range r.HotRanges {
		if h.Hi <= 0x3ffff {
			low = true
		}
		if h.Lo >= 0x100000000 && h.Hi <= 0x13fffffff {
			band = true
		}
	}
	if !low || !band {
		t.Fatalf("missing expected hot structure (low=%v band=%v): %+v", low, band, r.HotRanges)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "%") {
		t.Fatal("print output malformed")
	}
}

func TestFig6Sawtooth(t *testing.T) {
	r, err := Fig6(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeline.MaxNodes <= 0 || r.Timeline.MaxNodes > 800 {
		t.Fatalf("gcc eps=10%% max nodes = %d, paper says < 500", r.Timeline.MaxNodes)
	}
	if r.Timeline.AvgNodes > float64(r.Timeline.MaxNodes) {
		t.Fatal("avg exceeds max")
	}
	last := r.Timeline.Points[len(r.Timeline.Points)-1]
	if last.MergeBatches == 0 {
		t.Fatal("no merges over the run")
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "batch merge") {
		t.Fatal("no merge marks printed")
	}
}

func TestFig7Shapes(t *testing.T) {
	r, err := Fig7(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != 4 {
		t.Fatalf("panels = %d, want 4", len(r.Panels))
	}
	find := func(kind ProfileKind, eps float64) Fig7Panel {
		for _, p := range r.Panels {
			if p.Kind == kind && p.Epsilon == eps {
				return p
			}
		}
		t.Fatalf("panel %s/%v missing", kind, eps)
		return Fig7Panel{}
	}
	// Tighter epsilon must need more memory for every benchmark.
	for _, kind := range []ProfileKind{CodeProfile, ValueProfile} {
		p10, p1 := find(kind, 0.10), find(kind, 0.01)
		for i := range p10.Rows {
			if p1.Rows[i].MaxNodes <= p10.Rows[i].MaxNodes {
				t.Errorf("%s %s: eps=1%% max %d not above eps=10%% max %d",
					kind, p10.Rows[i].Benchmark, p1.Rows[i].MaxNodes, p10.Rows[i].MaxNodes)
			}
		}
	}
	// Figure 7's value panel: parser (most distinct load values) needs
	// the most nodes. Average is the scale-stable metric; the max is
	// dominated by the startup transient at short runs.
	vp := find(ValueProfile, 0.10)
	var parserAvg, othersAvg float64
	for _, row := range vp.Rows {
		if row.Benchmark == "parser" {
			parserAvg = row.AvgNodes
		} else if row.AvgNodes > othersAvg {
			othersAvg = row.AvgNodes
		}
	}
	if parserAvg <= othersAvg {
		t.Errorf("parser avg %.0f not the leader (best other %.0f)", parserAvg, othersAvg)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "parser") {
		t.Fatal("print output malformed")
	}
}

func TestFig8Shapes(t *testing.T) {
	o := testOptions()
	code, err := Fig8(CodeProfile, o)
	if err != nil {
		t.Fatal(err)
	}
	value, err := Fig8(ValueProfile, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Fig8Result{code, value} {
		if len(r.Rows) != 7 {
			t.Fatalf("rows = %d", len(r.Rows))
		}
		for _, row := range r.Rows {
			if row.HotRanges == 0 {
				t.Errorf("%s %s: no hot ranges", r.Kind, row.Benchmark)
			}
			if row.Max1 > row.Max10+1 {
				t.Errorf("%s %s: eps=1%% error %.2f far above eps=10%% error %.2f",
					r.Kind, row.Benchmark, row.Max1, row.Max10)
			}
		}
		if r.AvgAccuracy10 < 90 {
			t.Errorf("%s: average accuracy %.2f%% below 90%%", r.Kind, r.AvgAccuracy10)
		}
	}
	// The vortex hot-value-0 outlier (paper: ~20%).
	var vortexMax, otherMax float64
	for _, row := range value.Rows {
		if row.Benchmark == "vortex" {
			vortexMax = row.Max10
		} else if row.Max10 > otherMax {
			otherMax = row.Max10
		}
	}
	if vortexMax <= otherMax {
		t.Errorf("vortex max error %.2f not the value-profile outlier (best other %.2f)",
			vortexMax, otherMax)
	}
	var sb strings.Builder
	code.Print(&sb)
	value.Print(&sb)
	if !strings.Contains(sb.String(), "Maximum_10") {
		t.Fatal("print output malformed")
	}
}

func TestFig9MissLocality(t *testing.T) {
	r, err := Fig9(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.MissRatioDL1 <= r.MissRatioDL2 {
		t.Fatalf("DL1 miss ratio %.3f not above DL2 %.3f", r.MissRatioDL1, r.MissRatioDL2)
	}
	// The Figure 9 ordering at narrow widths: misses above all loads.
	for _, k := range []int{8, 16, 24} {
		all := analysis.CoverageAt(r.AllLoads, k)
		d1 := analysis.CoverageAt(r.DL1Misses, k)
		if d1 <= all {
			t.Errorf("width 2^%d: DL1 coverage %.3f not above all-loads %.3f", k, d1, all)
		}
	}
	if r.DL1At16 < 0.30 {
		t.Errorf("DL1 coverage at 2^16 = %.3f, paper reads ~0.56", r.DL1At16)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "dl1_misses") {
		t.Fatal("print output malformed")
	}
}

func TestFig10ZeroLoads(t *testing.T) {
	r, err := Fig10(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HotRanges) == 0 {
		t.Fatal("no hot zero-load ranges")
	}
	if r.HotBandCoverage < 0.35 || r.HotBandCoverage > 0.9 {
		t.Fatalf("hot band coverage %.3f, paper: ~0.68", r.HotBandCoverage)
	}
	// Every hot range must be in the data segment, not code.
	for _, h := range r.HotRanges {
		if h.Hi < 0x100000000 && h.Lo > 0 {
			t.Errorf("hot zero-load range [%x,%x] below the data segment", h.Lo, h.Hi)
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "zero-load") {
		t.Fatal("print output malformed")
	}
}

func TestHWTable(t *testing.T) {
	r, err := HW(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Big.TotalAreaMM2-24.73) > 0.01 {
		t.Fatalf("area %.3f, want 24.73", r.Big.TotalAreaMM2)
	}
	if r.AreaRatio <= 10 || r.EnergyRatio <= 10 {
		t.Fatalf("small-config ratios %.1f/%.1f, want > 10", r.AreaRatio, r.EnergyRatio)
	}
	if r.PipelineReport.CyclesPerOp < 4 || r.PipelineReport.CyclesPerOp > 6 {
		t.Fatalf("cycles/op %.2f outside [4,6]", r.PipelineReport.CyclesPerOp)
	}
	if r.BufferCompression < 5 {
		t.Fatalf("buffer compression %.1f, paper: ~10x", r.BufferCompression)
	}
	if r.PipelineReport.ForcedMerges != 0 {
		t.Fatal("4096-row TCAM should never overflow on a code profile")
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "TCAM") {
		t.Fatal("print output malformed")
	}
}

func TestHeadlineBudgets(t *testing.T) {
	r, err := Headline(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Fits8KB {
		t.Error("eps=10% trees exceed the 8 KB budget")
	}
	if !r.Fits64KB {
		t.Error("eps=1% trees exceed the 64 KB budget")
	}
	if r.AvgAcc8KB < 95 {
		t.Errorf("8 KB accuracy %.2f%%, paper: 98%%", r.AvgAcc8KB)
	}
	if r.AvgAcc64KB < r.AvgAcc8KB {
		t.Errorf("64 KB accuracy %.2f%% below 8 KB %.2f%%", r.AvgAcc64KB, r.AvgAcc8KB)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "8 KB") {
		t.Fatal("print output malformed")
	}
}

func TestNarrowConcentration(t *testing.T) {
	r, err := Narrow(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.HotRanges == 0 {
		t.Fatal("no hot narrow-operand ranges")
	}
	best := 0.0
	for _, reg := range r.TopRegions {
		if reg.Share > best {
			best = reg.Share
		}
	}
	if best < 0.10 {
		t.Errorf("no region concentrates narrow operands (best %.3f)", best)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "narrow") {
		t.Fatal("print output malformed")
	}
}

func TestAblations(t *testing.T) {
	r, err := Ablations(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BranchRows) != 3 || len(r.Comparison) != 3 {
		t.Fatalf("missing rows: %d branch, %d comparison", len(r.BranchRows), len(r.Comparison))
	}
	// Continuous merging keeps a tighter tree at the cost of far more
	// batches (Figure 3's tradeoff).
	if r.Continuous.MaxNodes >= r.Batched.MaxNodes {
		t.Errorf("continuous max %d not below batched %d", r.Continuous.MaxNodes, r.Batched.MaxNodes)
	}
	if r.Continuous.MergeBatches <= 10*r.Batched.MergeBatches {
		t.Errorf("continuous batches %d not far above batched %d",
			r.Continuous.MergeBatches, r.Batched.MergeBatches)
	}
	// RAP must answer the hierarchical range query far better than the
	// equal-memory grid and space-saving.
	var rap, grid, ss ComparatorRow
	for _, row := range r.Comparison {
		switch {
		case strings.HasPrefix(row.Name, "RAP"):
			rap = row
		case strings.HasPrefix(row.Name, "fixed"):
			grid = row
		default:
			ss = row
		}
	}
	if rap.RangeQueryErrPct >= grid.RangeQueryErrPct || rap.RangeQueryErrPct >= ss.RangeQueryErrPct {
		t.Errorf("RAP range query err %.2f not best (grid %.2f, ss %.2f)",
			rap.RangeQueryErrPct, grid.RangeQueryErrPct, ss.RangeQueryErrPct)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "space-saving") {
		t.Fatal("print output malformed")
	}
}
