package experiments

import (
	"strings"
	"testing"
)

func TestMicroCoversEveryIngestPath(t *testing.T) {
	r, err := Micro(Options{Events: 20_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"add/zipf", "add/zipf/audit", "add/zipf/span", "add/uniform", "addn/coalesced", "addbatch/zipf", "addsorted/zipf"}
	if len(r.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(want))
	}
	for i, row := range r.Rows {
		if row.Op != want[i] {
			t.Errorf("row %d op = %q, want %q", i, row.Op, want[i])
		}
		if row.Updates != 20_000 {
			t.Errorf("%s updates = %d, want 20000", row.Op, row.Updates)
		}
		if row.NsPerOp <= 0 || row.MUpdatesPerSec <= 0 {
			t.Errorf("%s has non-positive rate (%f ns/op, %f M/s)", row.Op, row.NsPerOp, row.MUpdatesPerSec)
		}
		if row.Nodes <= 1 {
			t.Errorf("%s grew no tree (nodes = %d)", row.Op, row.Nodes)
		}
		if row.ArenaBytes <= 0 {
			t.Errorf("%s arena bytes = %d", row.Op, row.ArenaBytes)
		}
		if row.ModelBytes != 16 {
			t.Errorf("%s model bytes = %f, want the paper's 16", row.Op, row.ModelBytes)
		}
		// Physical bytes per live node: 12 B node plus a pooled counter
		// (1-8 B), with slab slack from retired merge holes on top.
		if row.BytesPerNode <= 12 || row.BytesPerNode > 64 {
			t.Errorf("%s bytes/node = %f, outside (12, 64]", row.Op, row.BytesPerNode)
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	for _, op := range want {
		if !strings.Contains(sb.String(), op) {
			t.Errorf("printed table missing %q", op)
		}
	}
}
