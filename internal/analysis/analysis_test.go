package analysis

import (
	"math"
	"strings"
	"testing"

	"rap/internal/core"
	"rap/internal/exact"
	"rap/internal/stats"
	"rap/internal/trace"
	"rap/internal/workload"
)

func buildTreeAndExact(t *testing.T, eps float64, n int) (*core.Tree, *exact.Profiler) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 24
	cfg.Epsilon = eps
	tr := core.MustNew(cfg)
	ex := exact.New()
	rng := stats.NewSplitMix64(99)
	z := stats.NewZipf(rng, 1<<20, 1.25)
	for i := 0; i < n; i++ {
		p := uint64(z.Rank())
		tr.Add(p)
		ex.Add(p)
	}
	return tr, ex
}

func TestPercentErrorsLowOnSkewedStream(t *testing.T) {
	tr, ex := buildTreeAndExact(t, 0.01, 300_000)
	errs := PercentErrors(tr, ex, 0.10)
	if len(errs) == 0 {
		t.Fatal("no hot ranges found on a heavily skewed stream")
	}
	maxPct, avgPct := ErrorSummary(errs)
	if avgPct > 10 {
		t.Fatalf("average percent error %.2f too high for eps=1%%", avgPct)
	}
	if maxPct > 50 {
		t.Fatalf("max percent error %.2f implausible", maxPct)
	}
	for _, e := range errs {
		if e.Actual == 0 && e.Estimate > 0 {
			t.Fatalf("hot range [%x,%x] estimate %d with zero actual", e.Lo, e.Hi, e.Estimate)
		}
	}
}

func TestPercentErrorsTighterEpsilonIsBetter(t *testing.T) {
	tr1, ex := buildTreeAndExact(t, 0.10, 300_000)
	tr2, _ := buildTreeAndExact(t, 0.01, 300_000)
	_, avg1 := ErrorSummary(PercentErrors(tr1, ex, 0.10))
	_, avg2 := ErrorSummary(PercentErrors(tr2, ex, 0.10))
	if avg2 > avg1+1e-9 && avg2 > 1 {
		t.Fatalf("eps=1%% avg error %.3f should not exceed eps=10%% avg %.3f by this much", avg2, avg1)
	}
}

func TestErrorSummaryEmpty(t *testing.T) {
	maxPct, avgPct := ErrorSummary(nil)
	if maxPct != 0 || avgPct != 0 {
		t.Fatal("empty summary must be zero")
	}
}

func TestCoverageCurveMonotone(t *testing.T) {
	tr, _ := buildTreeAndExact(t, 0.01, 200_000)
	curve := CoverageCurve(tr, 0.10)
	if len(curve) != 25 { // universeBits 24 -> 0..24
		t.Fatalf("curve has %d points, want 25", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Coverage < curve[i-1].Coverage {
			t.Fatal("coverage curve not monotone")
		}
	}
	last := curve[len(curve)-1].Coverage
	if last <= 0 || last > 1.000001 {
		t.Fatalf("final coverage %v out of range", last)
	}
	if got := CoverageAt(curve, 24); math.Abs(got-last) > 1e-12 {
		t.Fatalf("CoverageAt(24) = %v, want %v", got, last)
	}
	if CoverageAt(curve, -1) != 0 {
		t.Fatal("CoverageAt below domain must be 0")
	}
}

func TestAverageCurves(t *testing.T) {
	a := []CoveragePoint{{0, 0.2}, {1, 0.4}}
	b := []CoveragePoint{{0, 0.4}, {1, 0.8}}
	avg := AverageCurves([][]CoveragePoint{a, b})
	if math.Abs(avg[0].Coverage-0.3) > 1e-12 || math.Abs(avg[1].Coverage-0.6) > 1e-12 {
		t.Fatalf("AverageCurves = %+v", avg)
	}
	if AverageCurves(nil) != nil {
		t.Fatal("AverageCurves(nil) must be nil")
	}
}

func TestMemoryTimelineSawtooth(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Epsilon = 0.10
	src := workload.All()[0].Code(5, 500_000) // gcc
	tl, err := MemoryTimeline(src, cfg, 500_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Points) < 90 {
		t.Fatalf("timeline has %d points", len(tl.Points))
	}
	if tl.MaxNodes <= 0 || tl.AvgNodes <= 0 || tl.AvgNodes > float64(tl.MaxNodes) {
		t.Fatalf("summary wrong: max=%d avg=%.1f", tl.MaxNodes, tl.AvgNodes)
	}
	// The Figure 6 shape: node count must both grow and shrink over time.
	grew, shrank := false, false
	for i := 1; i < len(tl.Points); i++ {
		if tl.Points[i].Nodes > tl.Points[i-1].Nodes {
			grew = true
		}
		if tl.Points[i].Nodes < tl.Points[i-1].Nodes {
			shrank = true
		}
	}
	if !grew || !shrank {
		t.Fatalf("no sawtooth: grew=%v shrank=%v", grew, shrank)
	}
	if tl.Points[len(tl.Points)-1].MergeBatches == 0 {
		t.Fatal("no merge batches recorded")
	}
}

func TestMemoryTimelineBadConfig(t *testing.T) {
	if _, err := MemoryTimeline(trace.NewSliceSource(nil), core.Config{}, 10, 1); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestRenderHotTree(t *testing.T) {
	tr, _ := buildTreeAndExact(t, 0.01, 200_000)
	var sb strings.Builder
	if err := RenderHotTree(&sb, tr, 0.10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "%") {
		t.Fatalf("no hot annotation in output:\n%s", out)
	}
	// The rendering is a small subset of the full tree.
	lines := strings.Count(out, "\n")
	if lines == 0 || lines > tr.NodeCount() {
		t.Fatalf("rendered %d lines, tree has %d nodes", lines, tr.NodeCount())
	}
}

func TestHotRangeTable(t *testing.T) {
	tr, _ := buildTreeAndExact(t, 0.01, 200_000)
	var sb strings.Builder
	if err := HotRangeTable(&sb, tr, 0.10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "width=2^") {
		t.Fatalf("table malformed:\n%s", sb.String())
	}
}
