package analysis

import (
	"testing"

	"rap/internal/core"
	"rap/internal/stats"
	"rap/internal/workload"
)

func TestHotSetSimilarity(t *testing.T) {
	a := []core.HotRange{{Lo: 0, Hi: 15, Frac: 0.5}, {Lo: 16, Hi: 31, Frac: 0.3}}
	same := []core.HotRange{{Lo: 0, Hi: 15, Frac: 0.5}, {Lo: 16, Hi: 31, Frac: 0.3}}
	disjoint := []core.HotRange{{Lo: 100, Hi: 115, Frac: 0.8}}
	partial := []core.HotRange{{Lo: 0, Hi: 15, Frac: 0.4}}

	if sim := HotSetSimilarity(a, same); sim != 1 {
		t.Fatalf("identical sets similarity %v, want 1", sim)
	}
	if sim := HotSetSimilarity(a, disjoint); sim != 0 {
		t.Fatalf("disjoint sets similarity %v, want 0", sim)
	}
	if sim := HotSetSimilarity(a, partial); sim != 0.5 {
		t.Fatalf("partial similarity %v, want 0.5 (min 0.4 over max 0.8)", sim)
	}
	if sim := HotSetSimilarity(nil, nil); sim != 1 {
		t.Fatalf("empty sets similarity %v, want 1", sim)
	}
}

func TestPhaseDetectorValidation(t *testing.T) {
	cfg := core.DefaultConfig()
	if _, err := NewPhaseDetector(cfg, 0, 0.05, 0.5); err == nil {
		t.Fatal("window 0 accepted")
	}
	if _, err := NewPhaseDetector(cfg, 100, 0, 0.5); err == nil {
		t.Fatal("theta 0 accepted")
	}
	if _, err := NewPhaseDetector(cfg, 100, 0.05, 2); err == nil {
		t.Fatal("threshold 2 accepted")
	}
	if _, err := NewPhaseDetector(core.Config{}, 100, 0.05, 0.5); err == nil {
		t.Fatal("bad tree config accepted")
	}
}

func TestPhaseDetectorFindsSwitch(t *testing.T) {
	// Two synthetic phases: hot range A for the first half, hot range B
	// for the second. Exactly one boundary, at the switch.
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 32
	cfg.Epsilon = 0.05
	d, err := NewPhaseDetector(cfg, 10_000, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewSplitMix64(1)
	const n = 100_000
	for i := 0; i < n; i++ {
		var p uint64
		if i < n/2 {
			p = 0x1000 + rng.Uint64n(64)
		} else {
			p = 0x90000 + rng.Uint64n(64)
		}
		d.Add(p)
	}
	bs := d.Boundaries()
	if len(bs) != 1 {
		t.Fatalf("detected %d boundaries (%v), want exactly 1", len(bs), bs)
	}
	if bs[0] < n/2 || bs[0] > n/2+10_000 {
		t.Fatalf("boundary at %d, want just after %d", bs[0], n/2)
	}
	if len(d.Similarities()) != n/10_000-1 {
		t.Fatalf("similarity series has %d points", len(d.Similarities()))
	}
}

func TestPhaseDetectorQuietOnStationaryStream(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 32
	cfg.Epsilon = 0.05
	d, err := NewPhaseDetector(cfg, 10_000, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewSplitMix64(2)
	z := stats.NewZipf(rng, 1000, 1.3)
	for i := 0; i < 100_000; i++ {
		if d.Add(uint64(z.Rank())) && i < 25_000 {
			t.Fatalf("spurious early boundary at event %d", i)
		}
	}
	if len(d.Boundaries()) > 1 {
		t.Fatalf("stationary stream produced %d boundaries", len(d.Boundaries()))
	}
}

func TestPhaseDetectorOnWorkloadPhases(t *testing.T) {
	// The gcc code model switches region activations at the run midpoint;
	// the detector must notice around there.
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 32
	cfg.Epsilon = 0.05
	const n = 400_000
	d, err := NewPhaseDetector(cfg, n/16, 0.05, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	gcc, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	src := gcc.Code(9, n)
	hit := false
	for i := 0; i < n; i++ {
		v, _ := src.Next()
		if d.Add(v.Value) {
			if pos := d.Boundaries()[len(d.Boundaries())-1]; pos > n/2-n/8 && pos < n/2+n/8 {
				hit = true
			}
		}
	}
	if !hit {
		t.Errorf("midpoint phase switch not detected (boundaries: %v)", d.Boundaries())
	}
}
