package analysis

import (
	"fmt"

	"rap/internal/core"
)

// Phase identification, one of the post-processing uses the paper lists
// for dumped RAP trees (Section 3.2: "identifying hot-spots, range
// coverage, phase identification, and so on"). The detector profiles the
// stream in fixed windows, one small RAP tree per window, and compares
// consecutive windows' hot-range sets: program phases show up as abrupt
// changes in which ranges are hot.

// HotSetSimilarity compares two hot-range sets: the shared weight
// (summing min(frac) over ranges present in both, matched by exact range
// identity — hot ranges are tree nodes, so stable structure yields stable
// keys) relative to the larger total. 1 means identical hot structure,
// 0 means disjoint.
func HotSetSimilarity(a, b []core.HotRange) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	index := make(map[[2]uint64]float64, len(a))
	var totalA, totalB, shared float64
	for _, h := range a {
		index[[2]uint64{h.Lo, h.Hi}] = h.Frac
		totalA += h.Frac
	}
	for _, h := range b {
		totalB += h.Frac
		if fa, ok := index[[2]uint64{h.Lo, h.Hi}]; ok {
			shared += min(fa, h.Frac)
		}
	}
	denom := max(totalA, totalB)
	if denom == 0 {
		return 1
	}
	return shared / denom
}

// PhaseDetector finds phase boundaries in a profile stream.
type PhaseDetector struct {
	cfg       core.Config
	window    uint64
	theta     float64
	threshold float64

	cur      *core.Tree
	fed      uint64
	n        uint64
	prevHot  []core.HotRange
	havePrev bool

	boundaries   []uint64
	similarities []float64
}

// NewPhaseDetector builds a detector: the stream is profiled in windows
// of the given size (a fresh tree per window, built with cfg); a phase
// boundary is reported when consecutive windows' hot-range sets (at the
// theta hot threshold) have similarity below threshold. Typical values:
// theta 0.05, threshold 0.5.
func NewPhaseDetector(cfg core.Config, window uint64, theta, threshold float64) (*PhaseDetector, error) {
	if window == 0 {
		return nil, fmt.Errorf("analysis: phase window must be >= 1")
	}
	if theta <= 0 || theta >= 1 || threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("analysis: bad theta %v or threshold %v", theta, threshold)
	}
	t, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &PhaseDetector{
		cfg: cfg, window: window, theta: theta, threshold: threshold, cur: t,
	}, nil
}

// Add feeds one event. It returns true exactly when the event closes a
// window whose hot structure differs from the previous window's — a phase
// boundary at the current stream position.
func (d *PhaseDetector) Add(p uint64) bool {
	d.cur.Add(p)
	d.fed++
	d.n++
	if d.fed < d.window {
		return false
	}
	d.fed = 0
	d.cur.Finalize()
	hot := d.cur.HotRanges(d.theta)
	boundary := false
	if d.havePrev {
		sim := HotSetSimilarity(d.prevHot, hot)
		d.similarities = append(d.similarities, sim)
		if sim < d.threshold {
			boundary = true
			d.boundaries = append(d.boundaries, d.n)
		}
	}
	d.prevHot = hot
	d.havePrev = true
	d.cur = core.MustNew(d.cfg)
	return boundary
}

// Boundaries returns the stream positions at which phase changes were
// detected.
func (d *PhaseDetector) Boundaries() []uint64 { return d.boundaries }

// Similarities returns the inter-window similarity series (one entry per
// completed window after the first) for plotting.
func (d *PhaseDetector) Similarities() []float64 { return d.similarities }
