// Package analysis post-processes RAP trees into the paper's evaluation
// artifacts: hot-range trees (Figures 5 and 10), percent-error comparisons
// against a perfect profiler (Figure 8), coverage-vs-range-width curves
// (Figure 9), and memory-over-time traces (Figure 6).
package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"rap/internal/core"
	"rap/internal/exact"
	"rap/internal/stats"
	"rap/internal/trace"
)

// RangeError compares RAP's estimate for one hot range against the exact
// count, both taken over the range excluding its hot sub-ranges (the
// Section 4.3 methodology: the perfect profiler tracks "one hot range at a
// time" with the same exclusion the hot-weight definition uses).
type RangeError struct {
	Lo, Hi   uint64
	Estimate uint64  // RAP's hot weight
	Actual   uint64  // exact residual count
	Percent  float64 // |Actual-Estimate| / Actual * 100
}

// PercentErrors evaluates every hot range of the tree at threshold theta
// against the exact profiler.
func PercentErrors(t *core.Tree, ex *exact.Profiler, theta float64) []RangeError {
	hot := t.HotRanges(theta)
	out := make([]RangeError, 0, len(hot))
	for i, h := range hot {
		actual := ex.RangeCount(h.Lo, h.Hi)
		// Subtract the maximal hot ranges strictly inside h: hot ranges
		// are tree nodes, so containment is laminar.
		for j, g := range hot {
			if j == i || g.Lo < h.Lo || g.Hi > h.Hi || (g.Lo == h.Lo && g.Hi == h.Hi) {
				continue
			}
			if !maximalWithin(hot, j, i) {
				continue
			}
			actual -= ex.RangeCount(g.Lo, g.Hi)
		}
		re := RangeError{Lo: h.Lo, Hi: h.Hi, Estimate: h.Weight, Actual: actual}
		if actual > 0 {
			diff := float64(actual) - float64(re.Estimate)
			if diff < 0 {
				diff = -diff
			}
			re.Percent = 100 * diff / float64(actual)
		}
		out = append(out, re)
	}
	return out
}

// maximalWithin reports whether hot[j] is a maximal proper sub-range of
// hot[i]: contained in hot[i] but in no other proper sub-range of hot[i].
func maximalWithin(hot []core.HotRange, j, i int) bool {
	g, h := hot[j], hot[i]
	for k, m := range hot {
		if k == i || k == j {
			continue
		}
		// m strictly inside h, and g inside m.
		if m.Lo >= h.Lo && m.Hi <= h.Hi && !(m.Lo == h.Lo && m.Hi == h.Hi) &&
			g.Lo >= m.Lo && g.Hi <= m.Hi {
			return false
		}
	}
	return true
}

// ErrorSummary reduces a RangeError set to the Figure 8 statistics.
func ErrorSummary(errs []RangeError) (maxPct, avgPct float64) {
	if len(errs) == 0 {
		return 0, 0
	}
	xs := make([]float64, len(errs))
	for i, e := range errs {
		xs[i] = e.Percent
	}
	s := stats.Summarize(xs)
	return s.Max, s.Mean
}

// CoveragePoint is one step of the Figure 9 curve: the cumulative stream
// fraction covered by hot ranges of width <= 2^LogWidth.
type CoveragePoint struct {
	LogWidth int
	Coverage float64
}

// CoverageCurve computes the coverage-vs-log(range-width) curve of the
// tree's hot ranges at threshold theta. The curve is cumulative and
// defined on logWidth = 0..universeBits.
func CoverageCurve(t *core.Tree, theta float64) []CoveragePoint {
	byWidth := make(map[int]float64)
	for _, h := range t.HotRanges(theta) {
		byWidth[stats.Log2Bucket(h.Hi-h.Lo)] += h.Frac
	}
	w := t.Config().UniverseBits
	out := make([]CoveragePoint, 0, w+1)
	cum := 0.0
	for k := 0; k <= w; k++ {
		cum += byWidth[k]
		out = append(out, CoveragePoint{LogWidth: k, Coverage: cum})
	}
	return out
}

// CoverageAt returns the curve's value at a given log width.
func CoverageAt(curve []CoveragePoint, logWidth int) float64 {
	v := 0.0
	for _, p := range curve {
		if p.LogWidth > logWidth {
			break
		}
		v = p.Coverage
	}
	return v
}

// AverageCurves pointwise-averages coverage curves of equal domain (the
// Figure 9 "averaged over a set of benchmarks" treatment).
func AverageCurves(curves [][]CoveragePoint) []CoveragePoint {
	if len(curves) == 0 {
		return nil
	}
	out := make([]CoveragePoint, len(curves[0]))
	copy(out, curves[0])
	for i := range out {
		sum := 0.0
		for _, c := range curves {
			sum += c[i].Coverage
		}
		out[i].Coverage = sum / float64(len(curves))
	}
	return out
}

// TimelinePoint is one sample of the Figure 6 memory-over-time trace.
type TimelinePoint struct {
	N            uint64
	Nodes        int
	MergeBatches uint64
}

// Timeline is a sampled memory-over-time trace with its summary.
type Timeline struct {
	Points   []TimelinePoint
	MaxNodes int
	AvgNodes float64
}

// MemoryTimeline streams up to limit events from src into a fresh tree
// with the given config, sampling the node count at `samples` evenly
// spaced points (the Figure 6 experiment).
func MemoryTimeline(src trace.Source, cfg core.Config, limit uint64, samples int) (Timeline, error) {
	t, err := core.New(cfg)
	if err != nil {
		return Timeline{}, err
	}
	if samples < 1 {
		samples = 1
	}
	every := limit / uint64(samples)
	if every == 0 {
		every = 1
	}
	var tl Timeline
	var sumNodes float64
	var fed uint64
	for fed < limit {
		e, ok := src.Next()
		if !ok {
			break
		}
		t.AddN(e.Value, e.Weight)
		fed += e.Weight
		if fed%every == 0 || fed >= limit {
			st := t.Stats()
			tl.Points = append(tl.Points, TimelinePoint{N: st.N, Nodes: st.Nodes, MergeBatches: st.MergeBatches})
			sumNodes += float64(st.Nodes)
		}
	}
	tl.MaxNodes = t.MaxNodeCount()
	if len(tl.Points) > 0 {
		tl.AvgNodes = sumNodes / float64(len(tl.Points))
	}
	return tl, nil
}

// RenderHotTree writes the Figure 5 / Figure 10 style view: the hot nodes
// at threshold theta plus their ancestors, indented by depth, annotated
// with their hot weight share. Ancestor lines that are not themselves hot
// are shown for structure with their residual share in parentheses.
func RenderHotTree(w io.Writer, t *core.Tree, theta float64) error {
	hot := t.HotRanges(theta)
	isHot := make(map[[2]uint64]core.HotRange, len(hot))
	for _, h := range hot {
		isHot[[2]uint64{h.Lo, h.Hi}] = h
	}
	var err error
	t.Walk(func(info core.NodeInfo) bool {
		key := [2]uint64{info.Lo, info.Hi}
		h, hotNode := isHot[key]
		if !hotNode && !coversAnyHot(info, hot) {
			return true // prune silently: neither hot nor an ancestor
		}
		indent := strings.Repeat("  ", info.Depth)
		if hotNode {
			_, err = fmt.Fprintf(w, "%s[%x, %x] %.1f%%\n", indent, info.Lo, info.Hi, 100*h.Frac)
		} else {
			_, err = fmt.Fprintf(w, "%s[%x, %x] .\n", indent, info.Lo, info.Hi)
		}
		return err == nil
	})
	return err
}

func coversAnyHot(info core.NodeInfo, hot []core.HotRange) bool {
	for _, h := range hot {
		if h.Lo >= info.Lo && h.Hi <= info.Hi {
			return true
		}
	}
	return false
}

// HotRangeTable renders hot ranges as a sorted text table (range, width,
// weight share), the form the experiment harness prints.
func HotRangeTable(w io.Writer, t *core.Tree, theta float64) error {
	hot := t.HotRanges(theta)
	sort.Slice(hot, func(i, j int) bool { return hot[i].Frac > hot[j].Frac })
	for _, h := range hot {
		if _, err := fmt.Fprintf(w, "  [%16x, %16x] width=2^%-2d %6.2f%%\n",
			h.Lo, h.Hi, stats.Log2Bucket(h.Hi-h.Lo), 100*h.Frac); err != nil {
			return err
		}
	}
	return nil
}
