// Package stats provides the deterministic random sources, discrete
// distributions, and summary helpers the workload models and experiment
// harness are built on. Everything here is reproducible: the same seed
// yields the same stream on every platform, which is what lets
// EXPERIMENTS.md quote concrete measured numbers.
package stats

import "math"

// SplitMix64 is a tiny, fast, well-distributed PRNG (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators"). It implements
// math/rand.Source64 so it can seed the standard library's samplers while
// staying platform-stable.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next 64 random bits.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements math/rand.Source.
func (s *SplitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements math/rand.Source.
func (s *SplitMix64) Seed(seed int64) { s.state = uint64(seed) }

// Float64 returns a uniform float in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (s *SplitMix64) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	return s.Uint64() % n
}

// Split returns a new generator whose stream is independent of the
// receiver's continued use — handy for giving each workload component its
// own source.
func (s *SplitMix64) Split() *SplitMix64 {
	return NewSplitMix64(s.Uint64())
}

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^exponent. It uses inverted CDF sampling over a precomputed
// cumulative table, so it is exact (not an approximation) and fast for the
// table sizes the workload models use (up to ~1e6 ranks).
type Zipf struct {
	cdf []float64
	rng *SplitMix64
}

// NewZipf builds a Zipf sampler over n ranks with the given exponent > 0.
func NewZipf(rng *SplitMix64, n int, exponent float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	if exponent <= 0 {
		panic("stats: Zipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), exponent)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Rank returns the next sampled rank in [0, n).
func (z *Zipf) Rank() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Discrete samples indices 0..len(weights)-1 with probability proportional
// to weights[i].
type Discrete struct {
	cdf []float64
	rng *SplitMix64
}

// NewDiscrete builds a sampler over the given non-negative weights, at
// least one of which must be positive.
func NewDiscrete(rng *SplitMix64, weights []float64) *Discrete {
	if len(weights) == 0 {
		panic("stats: Discrete with no weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("stats: Discrete with negative weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("stats: Discrete with zero total weight")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Discrete{cdf: cdf, rng: rng}
}

// Index returns the next sampled index.
func (d *Discrete) Index() int {
	u := d.rng.Float64()
	lo, hi := 0, len(d.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Geometric returns a geometrically distributed integer >= 0 with success
// probability p in (0, 1]: the number of failures before the first success.
func Geometric(rng *SplitMix64, p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("stats: Geometric with non-positive p")
	}
	u := rng.Float64()
	return int(math.Floor(math.Log1p(-u) / math.Log1p(-p)))
}
