package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a float sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
}

// Summarize computes N/mean/min/max of xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It panics on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Log2Histogram buckets non-negative values by floor(log2(v)) with a
// dedicated zero bucket: bucket 0 holds v == 0, bucket k holds
// 2^(k-1) <= v < 2^k. It is the shape underlying the paper's
// coverage-vs-log(range-width) plots (Figure 9).
type Log2Histogram struct {
	Counts [65]uint64
	Total  uint64
}

// Add records value v with the given weight.
func (h *Log2Histogram) Add(v uint64, weight uint64) {
	h.Counts[Log2Bucket(v)] += weight
	h.Total += weight
}

// Log2Bucket returns the histogram bucket for v: 0 for v==0, otherwise
// bits.Len64-style 1+floor(log2 v).
func Log2Bucket(v uint64) int {
	b := 0
	for v > 0 {
		b++
		v >>= 1
	}
	return b
}

// CumulativeFrac returns the fraction of total weight in buckets <= k.
func (h *Log2Histogram) CumulativeFrac(k int) float64 {
	if h.Total == 0 {
		return 0
	}
	var s uint64
	for i := 0; i <= k && i < len(h.Counts); i++ {
		s += h.Counts[i]
	}
	return float64(s) / float64(h.Total)
}
