package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	// Known-answer check so cross-platform determinism is pinned.
	c := NewSplitMix64(0)
	if got := c.Uint64(); got != 0xE220A8397B1DCDAF {
		t.Fatalf("SplitMix64(0) first output = %x, want e220a8397b1dcdaf", got)
	}
}

func TestSplitMix64Distribution(t *testing.T) {
	rng := NewSplitMix64(7)
	n := 100_000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
		buckets[int(f*10)]++
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d count %d far from uniform %d", i, c, n/10)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	rng := NewSplitMix64(1)
	child := rng.Split()
	x := child.Uint64()
	rng2 := NewSplitMix64(1)
	child2 := rng2.Split()
	if child2.Uint64() != x {
		t.Fatal("Split not deterministic")
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSplitMix64(1).Intn(0)
}

func TestUint64nRange(t *testing.T) {
	rng := NewSplitMix64(3)
	for i := 0; i < 10_000; i++ {
		if v := rng.Uint64n(37); v >= 37 {
			t.Fatalf("Uint64n(37) = %d", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewSplitMix64(5)
	z := NewZipf(rng, 1000, 1.2)
	counts := make([]int, 1000)
	n := 200_000
	for i := 0; i < n; i++ {
		counts[z.Rank()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("Zipf not monotone decreasing: c0=%d c10=%d c100=%d",
			counts[0], counts[10], counts[100])
	}
	// Rank 0 should carry roughly 1/H_s share; for s=1.2, n=1000 that is
	// ~18%. Accept a broad band.
	frac := float64(counts[0]) / float64(n)
	if frac < 0.10 || frac > 0.30 {
		t.Fatalf("Zipf top rank fraction %.3f outside [0.10, 0.30]", frac)
	}
}

func TestZipfPanics(t *testing.T) {
	rng := NewSplitMix64(1)
	for _, f := range []func(){
		func() { NewZipf(rng, 0, 1) },
		func() { NewZipf(rng, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("NewZipf accepted invalid params")
				}
			}()
			f()
		}()
	}
}

func TestDiscreteProportions(t *testing.T) {
	rng := NewSplitMix64(9)
	d := NewDiscrete(rng, []float64{1, 3, 6})
	counts := make([]int, 3)
	n := 100_000
	for i := 0; i < n; i++ {
		counts[d.Index()]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("Discrete index %d frequency %.3f, want %.1f", i, got, want)
		}
	}
}

func TestDiscretePanics(t *testing.T) {
	rng := NewSplitMix64(1)
	for name, f := range map[string]func(){
		"empty":    func() { NewDiscrete(rng, nil) },
		"negative": func() { NewDiscrete(rng, []float64{1, -1}) },
		"zero sum": func() { NewDiscrete(rng, []float64{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDiscrete accepted %s weights", name)
				}
			}()
			f()
		}()
	}
}

func TestGeometricMean(t *testing.T) {
	rng := NewSplitMix64(11)
	p := 0.25
	n := 100_000
	sum := 0
	for i := 0; i < n; i++ {
		sum += Geometric(rng, p)
	}
	mean := float64(sum) / float64(n)
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(0.25) mean %.3f, want %.1f", mean, want)
	}
	if Geometric(rng, 1) != 0 {
		t.Fatal("Geometric(1) must be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {110, 50},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestLog2Bucket(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {1 << 63, 64},
	}
	for _, tc := range cases {
		if got := Log2Bucket(tc.v); got != tc.want {
			t.Errorf("Log2Bucket(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestLog2Histogram(t *testing.T) {
	var h Log2Histogram
	h.Add(0, 5)
	h.Add(7, 5)   // bucket 3
	h.Add(16, 10) // bucket 5
	if h.Total != 20 {
		t.Fatalf("Total = %d", h.Total)
	}
	if f := h.CumulativeFrac(0); math.Abs(f-0.25) > 1e-9 {
		t.Fatalf("CumulativeFrac(0) = %v", f)
	}
	if f := h.CumulativeFrac(3); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("CumulativeFrac(3) = %v", f)
	}
	if f := h.CumulativeFrac(64); f != 1 {
		t.Fatalf("CumulativeFrac(64) = %v", f)
	}
	var empty Log2Histogram
	if empty.CumulativeFrac(10) != 0 {
		t.Fatal("empty histogram fraction not 0")
	}
}

func TestQuickUint64nAlwaysBelow(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		return NewSplitMix64(seed).Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
