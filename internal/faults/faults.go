// Package faults provides deterministic fault-injecting wrappers around
// io.Reader and trace.Source. The resilient ingest subsystem
// (internal/ingest) promises to survive truncated streams, stalled reads,
// transient I/O errors, and corrupted bytes; these wrappers exist so tests
// can prove each of those recovery paths actually runs, rather than
// trusting that error-handling code which has never executed is correct.
//
// All injection points are positional (byte offsets, event ordinals) so
// failures reproduce exactly; nothing here uses randomness.
package faults

import (
	"io"
	"time"

	"rap/internal/trace"
)

// Reader wraps an io.Reader with byte-level fault injection. The zero
// value of every knob disables that fault, so &Reader{R: r} is a
// transparent wrapper. Offsets count bytes delivered from the underlying
// reader, starting at zero.
type Reader struct {
	R io.Reader

	// TruncateAt, when > 0, ends the stream with a clean io.EOF once that
	// many bytes have been delivered — a file cut short.
	TruncateAt int64

	// FailAt, when FailErr is non-nil, returns FailErr once the offset
	// reaches FailAt. If FailOnce is set the error fires a single time and
	// the stream continues afterwards (a transient error); otherwise every
	// subsequent Read fails (a hard error).
	FailAt   int64
	FailErr  error
	FailOnce bool

	// MaxRead, when > 0, caps the bytes returned per Read call,
	// exercising short-read handling in consumers.
	MaxRead int

	// StallAt/StallFor, when StallFor > 0, sleep once when the offset
	// reaches StallAt before continuing — a hung NFS mount in miniature.
	StallAt  int64
	StallFor time.Duration

	// CorruptAt lists byte offsets whose delivered byte is XORed with
	// CorruptMask (0 means 0xFF, so listing an offset always corrupts).
	CorruptAt   []int64
	CorruptMask byte

	off     int64
	failed  bool
	stalled bool
}

// Read implements io.Reader with the configured faults applied.
func (f *Reader) Read(p []byte) (int, error) {
	if f.TruncateAt > 0 && f.off >= f.TruncateAt {
		return 0, io.EOF
	}
	if f.FailErr != nil && f.off >= f.FailAt {
		if !f.failed {
			f.failed = true
			return 0, f.FailErr
		}
		if !f.FailOnce {
			return 0, f.FailErr
		}
	}
	if f.StallFor > 0 && !f.stalled && f.off >= f.StallAt {
		f.stalled = true
		time.Sleep(f.StallFor)
	}

	limit := len(p)
	if f.MaxRead > 0 && limit > f.MaxRead {
		limit = f.MaxRead
	}
	if f.TruncateAt > 0 && int64(limit) > f.TruncateAt-f.off {
		limit = int(f.TruncateAt - f.off)
	}
	if f.FailErr != nil && !f.failed && f.off < f.FailAt && int64(limit) > f.FailAt-f.off {
		limit = int(f.FailAt - f.off)
	}
	if limit <= 0 {
		limit = 1
	}

	n, err := f.R.Read(p[:limit])
	for _, at := range f.CorruptAt {
		if at >= f.off && at < f.off+int64(n) {
			mask := f.CorruptMask
			if mask == 0 {
				mask = 0xff
			}
			p[at-f.off] ^= mask
		}
	}
	f.off += int64(n)
	return n, err
}

// Source wraps a trace.Source with event-level fault injection. Ordinals
// count events delivered from the underlying source, starting at zero. The
// zero value of every knob disables that fault.
type Source struct {
	S trace.Source

	// FailAfter/FailErr: after delivering FailAfter events, Next returns
	// ok=false and Err reports FailErr — a source that dies mid-stream.
	FailAfter uint64
	FailErr   error

	// StallEvery/StallFor: sleep StallFor before every StallEvery-th
	// event (1-based), modelling a source that intermittently hangs. With
	// StallEvery == 0 and StallFor > 0, every event stalls.
	StallEvery uint64
	StallFor   time.Duration

	// CorruptEvery/CorruptXOR: XOR the value of every CorruptEvery-th
	// event (1-based) with CorruptXOR — silent data corruption rather
	// than a visible error.
	CorruptEvery uint64
	CorruptXOR   uint64

	n   uint64
	err error
}

// Next implements trace.Source.
func (s *Source) Next() (trace.Event, bool) {
	if s.err != nil {
		return trace.Event{}, false
	}
	if s.FailErr != nil && s.n >= s.FailAfter {
		s.err = s.FailErr
		return trace.Event{}, false
	}
	if s.StallFor > 0 && (s.StallEvery == 0 || (s.n+1)%s.StallEvery == 0) {
		time.Sleep(s.StallFor)
	}
	e, ok := s.S.Next()
	if !ok {
		s.err = sourceErr(s.S)
		return trace.Event{}, false
	}
	s.n++
	if s.CorruptEvery > 0 && s.n%s.CorruptEvery == 0 {
		e.Value ^= s.CorruptXOR
	}
	return e, true
}

// Err returns the injected (or underlying) stream error, nil on clean EOF.
func (s *Source) Err() error { return s.err }

// sourceErr surfaces the underlying source's error, if it exposes one.
func sourceErr(s trace.Source) error {
	if es, ok := s.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}
