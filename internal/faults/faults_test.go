package faults

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"rap/internal/trace"
)

var errBoom = errors.New("boom")

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestReaderTransparent(t *testing.T) {
	data := payload(1000)
	got, err := io.ReadAll(&Reader{R: bytes.NewReader(data)})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("transparent wrapper changed the stream: err=%v", err)
	}
}

func TestReaderTruncate(t *testing.T) {
	got, err := io.ReadAll(&Reader{R: bytes.NewReader(payload(1000)), TruncateAt: 137})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 137 {
		t.Fatalf("read %d bytes, want 137", len(got))
	}
}

func TestReaderShortReads(t *testing.T) {
	f := &Reader{R: bytes.NewReader(payload(64)), MaxRead: 3}
	buf := make([]byte, 64)
	n, err := f.Read(buf)
	if err != nil || n != 3 {
		t.Fatalf("short read returned n=%d err=%v, want 3", n, err)
	}
	rest, err := io.ReadAll(f)
	if err != nil || len(rest) != 61 {
		t.Fatalf("remainder %d bytes err=%v, want 61", len(rest), err)
	}
}

func TestReaderTransientFail(t *testing.T) {
	f := &Reader{R: bytes.NewReader(payload(100)), FailAt: 40, FailErr: errBoom, FailOnce: true}
	var got []byte
	buf := make([]byte, 16)
	sawErr := false
	for {
		n, err := f.Read(buf)
		got = append(got, buf[:n]...)
		if errors.Is(err, errBoom) {
			if sawErr {
				t.Fatal("transient error fired twice")
			}
			sawErr = true
			continue
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawErr {
		t.Fatal("transient error never fired")
	}
	if !bytes.Equal(got, payload(100)) {
		t.Fatalf("stream with transient error lost bytes: got %d", len(got))
	}
}

func TestReaderHardFail(t *testing.T) {
	f := &Reader{R: bytes.NewReader(payload(100)), FailAt: 10, FailErr: errBoom}
	got, err := io.ReadAll(f)
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d bytes before hard failure, want 10", len(got))
	}
}

func TestReaderStallOnce(t *testing.T) {
	f := &Reader{R: bytes.NewReader(payload(32)), StallAt: 8, StallFor: 30 * time.Millisecond}
	start := time.Now()
	got, err := io.ReadAll(f)
	if err != nil || len(got) != 32 {
		t.Fatalf("stalling reader: %d bytes, err=%v", len(got), err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("stream finished in %v, stall never happened", d)
	}
}

func TestReaderCorrupt(t *testing.T) {
	data := payload(64)
	f := &Reader{R: bytes.NewReader(data), CorruptAt: []int64{5, 50}, MaxRead: 7}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		want := data[i]
		if i == 5 || i == 50 {
			want ^= 0xff
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestSourceFailAfter(t *testing.T) {
	src := &Source{
		S:         trace.NewSliceSource([]uint64{1, 2, 3, 4, 5}),
		FailAfter: 3,
		FailErr:   errBoom,
	}
	var got []uint64
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, e.Value)
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d events before failure, want 3", len(got))
	}
	if !errors.Is(src.Err(), errBoom) {
		t.Fatalf("Err = %v, want boom", src.Err())
	}
	// Failed sources stay failed.
	if _, ok := src.Next(); ok {
		t.Fatal("source delivered events after failing")
	}
}

func TestSourceCleanEOF(t *testing.T) {
	src := &Source{S: trace.NewSliceSource([]uint64{1, 2})}
	if got := trace.Collect(src); len(got) != 2 || src.Err() != nil {
		t.Fatalf("clean source: %d events, err %v", len(got), src.Err())
	}
}

func TestSourcePropagatesUnderlyingErr(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	w.Write(trace.Event{Value: 1 << 40, Weight: 2})
	w.Flush()
	cut := buf.Bytes()[:buf.Len()-1]
	src := &Source{S: trace.NewReader(bytes.NewReader(cut))}
	trace.Collect(src)
	if src.Err() == nil {
		t.Fatal("underlying truncation error not propagated")
	}
}

func TestSourceStallAndCorrupt(t *testing.T) {
	vals := []uint64{10, 20, 30, 40}
	src := &Source{
		S:            trace.NewSliceSource(vals),
		StallEvery:   2,
		StallFor:     10 * time.Millisecond,
		CorruptEvery: 3,
		CorruptXOR:   0xff,
	}
	start := time.Now()
	got := trace.Collect(src)
	if len(got) != 4 || src.Err() != nil {
		t.Fatalf("collected %d events, err %v", len(got), src.Err())
	}
	if got[2].Value != 30^0xff {
		t.Fatalf("event 3 value %#x, want corrupted %#x", got[2].Value, 30^0xff)
	}
	if got[0].Value != 10 || got[1].Value != 20 || got[3].Value != 40 {
		t.Fatalf("uncorrupted events changed: %v", got)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("two stalls finished in %v", d)
	}
}
