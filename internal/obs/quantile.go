package obs

import "math"

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution by linear interpolation inside the fixed buckets, the
// same estimator Prometheus's histogram_quantile applies server-side.
// The answer is exact at bucket boundaries and off by at most one bucket
// width inside a bucket — the resolution the ladder was chosen for. It
// returns NaN when the histogram is empty or q is NaN.
func (h *Histogram) Quantile(q float64) float64 {
	buckets := make([]BucketCount, 0, len(h.uppers)+1)
	var cum uint64
	for i, u := range h.uppers {
		cum += h.counts[i].Load()
		buckets = append(buckets, BucketCount{Upper: u, Count: cum})
	}
	cum += h.counts[len(h.uppers)].Load()
	buckets = append(buckets, BucketCount{Upper: math.Inf(1), Count: cum})
	return QuantileFromBuckets(buckets, q)
}

// QuantileFromBuckets estimates the q-quantile from cumulative
// Prometheus-style buckets (ascending upper bounds, the last one +Inf),
// the shape Registry.Snapshot reports — so scrape consumers (the flight
// recorder, /statusz) can derive p50/p95/p99 without touching the live
// instrument. Mass in the +Inf bucket is attributed to the highest finite
// bound: the estimator never invents values beyond the ladder.
func QuantileFromBuckets(buckets []BucketCount, q float64) float64 {
	if len(buckets) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	total := buckets[len(buckets)-1].Count
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1 // the quantile of the first observation
	}
	idx := 0
	for idx < len(buckets) && float64(buckets[idx].Count) < rank {
		idx++
	}
	if idx >= len(buckets)-1 {
		// Mass beyond the ladder: report the highest finite bound. A
		// ladder with no finite bucket at all has nothing to interpolate.
		if len(buckets) < 2 {
			return math.NaN()
		}
		return buckets[len(buckets)-2].Upper
	}
	upper := buckets[idx].Upper
	lower := 0.0
	var prevCount uint64
	if idx > 0 {
		lower = buckets[idx-1].Upper
		prevCount = buckets[idx-1].Count
	}
	if upper <= 0 {
		// Ladders are positive in this codebase; a non-positive bound has
		// no meaningful zero-origin, so answer the bound itself.
		return upper
	}
	inBucket := float64(buckets[idx].Count - prevCount)
	if inBucket <= 0 {
		return upper
	}
	if inBucket == float64(total) {
		// Every observation landed in this one bucket. Interpolating would
		// invent sub-bucket precision from the bucket's arbitrary lower
		// edge (p01 of a thousand identical values is not upper/1000); the
		// only defined answer at ladder resolution is the bucket bound.
		return upper
	}
	return lower + (upper-lower)*(rank-float64(prevCount))/inBucket
}
