package obs

import (
	"math"
	"testing"
)

// linBuckets returns n linearly spaced upper bounds step, 2*step, ...
func linBuckets(step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = step * float64(i+1)
	}
	return out
}

// TestQuantileUniform checks the estimator against a uniform distribution,
// where every quantile has a closed form: observing 1..1000 uniformly, the
// q-quantile is 1000q, and linear interpolation inside 100-wide buckets
// recovers it to within one observation.
func TestQuantileUniform(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("u", "", linBuckets(100, 10))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500}, {0.95, 950}, {0.99, 990}, {0.10, 100}, {1.00, 1000},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 1.0 {
			t.Errorf("uniform p%v = %v, want %v +-1", tc.q*100, got, tc.want)
		}
	}
}

// TestQuantileHandPlaced pins the interpolation arithmetic on a tiny
// hand-computed case: buckets (0,1] (1,2] (2,4] holding 1, 1, and 2
// observations.
func TestQuantileHandPlaced(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(4)
	// total=4. p50: rank 2 -> second bucket full -> exactly its upper, 2.
	if got := h.Quantile(0.5); math.Abs(got-2) > 1e-9 {
		t.Errorf("p50 = %v, want 2", got)
	}
	// p75: rank 3 -> halfway through (2,4] -> 3.
	if got := h.Quantile(0.75); math.Abs(got-3) > 1e-9 {
		t.Errorf("p75 = %v, want 3", got)
	}
	// p25: rank 1 -> all of the first bucket -> its upper, 1.
	if got := h.Quantile(0.25); math.Abs(got-1) > 1e-9 {
		t.Errorf("p25 = %v, want 1", got)
	}
}

// TestQuantileSkew checks a heavily skewed distribution on the standard
// exponential ladder: 99% of mass at ~1ms, 1% at ~1s. p50 must land in the
// low-millisecond bucket, p99.5 in the second mode.
func TestQuantileSkew(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("s", "", DurationBuckets())
	for i := 0; i < 990; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0)
	}
	if p50 := h.Quantile(0.50); p50 < 0.0005 || p50 > 0.0025 {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	if p995 := h.Quantile(0.995); p995 < 0.5 || p995 > 2.5 {
		t.Errorf("p99.5 = %v, want ~1s", p995)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e", "", []float64{1, 2})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram quantile = %v, want NaN", got)
	}
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("NaN quantile = %v, want NaN", got)
	}

	// All mass beyond the ladder: the estimator answers the highest finite
	// bound rather than inventing a value.
	h.Observe(100)
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow-only quantile = %v, want highest finite bound 2", got)
	}

	// Out-of-range q clamps instead of failing.
	h2 := r.Histogram("e2", "", []float64{1, 2})
	h2.Observe(0.5)
	if got := h2.Quantile(-3); math.IsNaN(got) {
		t.Error("q<0 returned NaN, want clamp")
	}
	if got := h2.Quantile(7); math.IsNaN(got) {
		t.Error("q>1 returned NaN, want clamp")
	}
}

// TestQuantileSingleOccupiedBucket pins the degenerate-input contract:
// when every observation landed in one bucket, the only defined answer at
// ladder resolution is that bucket's upper bound, for every q. The old
// interpolation invented sub-bucket precision from the bucket's arbitrary
// lower edge (p01 of 1000 identical values came back as upper/1000).
func TestQuantileSingleOccupiedBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("one", "", []float64{1, 2, 4, 8})
	for i := 0; i < 1000; i++ {
		h.Observe(3) // all mass in (2,4]
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != 4 {
			t.Errorf("single-bucket p%v = %v, want the bucket bound 4", q*100, got)
		}
	}

	// A single observation is the 1-bucket case in miniature.
	h1 := r.Histogram("single", "", []float64{1, 2, 4, 8})
	h1.Observe(5)
	for _, q := range []float64{0.01, 0.5, 1.0} {
		if got := h1.Quantile(q); got != 8 {
			t.Errorf("single-observation p%v = %v, want 8", q*100, got)
		}
	}

	// Interpolation still applies the moment a second bucket is occupied.
	h.Observe(7)
	if got := h.Quantile(0.5); got == 4 && got >= 2 && got <= 4 {
		// p50 of 1001 obs: rank 501 inside (2,4] -> interpolated, not the
		// pinned bound path; just assert it stays inside the bucket.
	} else if got < 2 || got > 4 {
		t.Errorf("two-bucket p50 = %v, want inside (2,4]", got)
	}
}

// TestQuantileEmptySnapshotBuckets pins the snapshot-side entry point on
// the same degenerate inputs.
func TestQuantileEmptySnapshotBuckets(t *testing.T) {
	if got := QuantileFromBuckets(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("nil buckets = %v, want NaN", got)
	}
	empty := []BucketCount{{Upper: 1}, {Upper: 2}, {Upper: math.Inf(1)}}
	if got := QuantileFromBuckets(empty, 0.5); !math.IsNaN(got) {
		t.Errorf("zero-count buckets = %v, want NaN", got)
	}
	one := []BucketCount{{Upper: 1, Count: 0}, {Upper: 2, Count: 5}, {Upper: math.Inf(1), Count: 5}}
	if got := QuantileFromBuckets(one, 0.01); got != 2 {
		t.Errorf("snapshot single-bucket p1 = %v, want 2", got)
	}
}

// TestQuantileFromSnapshotBuckets checks the snapshot-side entry point the
// flight recorder uses: quantiles derived from Snapshot() buckets must
// agree with the live instrument's.
func TestQuantileFromSnapshotBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("snap", "", linBuckets(10, 10))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	var buckets []BucketCount
	for _, f := range r.Snapshot() {
		if f.Name == "snap" {
			buckets = f.Series[0].Buckets
		}
	}
	if buckets == nil {
		t.Fatal("snapshot missing histogram buckets")
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		if live, snap := h.Quantile(q), QuantileFromBuckets(buckets, q); live != snap {
			t.Errorf("q=%v: live %v != snapshot %v", q, live, snap)
		}
	}
}
