package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-lookup returns the same instrument.
	if r.Counter("x_total", "help") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("depth", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestLabelsSeparateSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", L("shard", "0"))
	b := r.Counter("x_total", "h", L("shard", "1"))
	if a == b {
		t.Fatal("different labels returned the same series")
	}
	// Label order must not matter.
	c1 := r.Counter("y_total", "h", L("a", "1"), L("b", "2"))
	c2 := r.Counter("y_total", "h", L("b", "2"), L("a", "1"))
	if c1 != c2 {
		t.Fatal("label order produced distinct series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "h")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Fatalf("sum = %v, want 5.565", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Series) != 1 {
		t.Fatalf("snapshot shape %+v", snap)
	}
	buckets := snap[0].Series[0].Buckets
	// le=0.01 -> 2 (0.005, 0.01 inclusive), le=0.1 -> 3, le=1 -> 4, +Inf -> 5.
	want := []uint64{2, 3, 4, 5}
	if len(buckets) != 4 {
		t.Fatalf("buckets %+v", buckets)
	}
	for i, b := range buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.Upper, b.Count, want[i])
		}
	}
	if !math.IsInf(buckets[3].Upper, 1) {
		t.Fatalf("last bucket upper = %v, want +Inf", buckets[3].Upper)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("rap_splits_total", "Splits performed.", L("shard", "0")).Add(7)
	r.GaugeFunc("rap_queue_depth", "Depth.", func() float64 { return 3 }, L("source", `a"b`))
	h := r.Histogram("rap_lat_seconds", "Latency.", []float64{0.5})
	h.Observe(0.25)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP rap_splits_total Splits performed.",
		"# TYPE rap_splits_total counter",
		`rap_splits_total{shard="0"} 7`,
		"# TYPE rap_queue_depth gauge",
		`rap_queue_depth{source="a\"b"} 3`,
		"# TYPE rap_lat_seconds histogram",
		`rap_lat_seconds_bucket{le="0.5"} 1`,
		`rap_lat_seconds_bucket{le="+Inf"} 2`,
		"rap_lat_seconds_sum 2.25",
		"rap_lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExpositionRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h", L("k", "v")).Add(2)
	r.Histogram("b_seconds", "h", []float64{1}).Observe(0.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name   string `json:"name"`
			Kind   string `json:"kind"`
			Series []struct {
				Labels  map[string]string `json:"labels"`
				Value   float64           `json:"value"`
				Buckets []struct {
					Le    string `json:"le"`
					Count uint64 `json:"count"`
				} `json:"buckets"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("metrics = %d, want 2", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "a_total" || doc.Metrics[0].Series[0].Value != 2 ||
		doc.Metrics[0].Series[0].Labels["k"] != "v" {
		t.Fatalf("counter doc %+v", doc.Metrics[0])
	}
	hb := doc.Metrics[1].Series[0].Buckets
	if len(hb) != 2 || hb[1].Le != "+Inf" || hb[1].Count != 1 {
		t.Fatalf("histogram buckets %+v", hb)
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c_total", "h")
			h := r.Histogram("h_seconds", "h", DurationBuckets())
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.ObserveDuration(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "h").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", "h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
