package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestAdaptiveQuantileUniform(t *testing.T) {
	a := NewAdaptiveHistogram()
	// 1..1000 µs uniformly, inserted in a deterministic shuffled order
	// (7 is coprime to 1000, so i·7 mod 1000 is a permutation): quantile
	// recovery assumes the mass retained at coarse nodes early on is a
	// sample of the same stream, which holds for any roughly stationary
	// arrival order but not for a sorted one. The q-quantile is q·1ms.
	for i := 0; i < 1000; i++ {
		a.Observe(time.Duration(i*7%1000+1) * time.Microsecond)
	}
	if a.Count() != 1000 {
		t.Fatalf("count %d", a.Count())
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500e-6}, {0.95, 950e-6}, {0.99, 990e-6}, {1.00, 1000e-6},
	} {
		got := a.Quantile(tc.q)
		// Resolution is governed by the mass retained at coarse nodes
		// while the tree was shallow (redistributed by Quantile, but with
		// stream-sampling error): allow 5% of the 1ms range. The fixed
		// octave ladder's bucket at p50 is (410µs, 819µs] — an order of
		// magnitude coarser than what this asserts.
		if math.Abs(got-tc.want) > 50e-6 {
			t.Errorf("p%v = %v, want %v", tc.q*100, got, tc.want)
		}
	}
}

func TestAdaptiveQuantileEdgeCases(t *testing.T) {
	a := NewAdaptiveHistogram()
	if got := a.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
	if got := a.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("NaN q = %v, want NaN", got)
	}
	a.Observe(time.Millisecond)
	if got := a.Quantile(-1); math.IsNaN(got) || got < 0 {
		t.Errorf("q<0 = %v, want clamp", got)
	}
	if got := a.Quantile(7); math.IsNaN(got) {
		t.Errorf("q>1 = %v, want clamp", got)
	}
	// Negative and beyond-universe durations clamp to the universe.
	a.Observe(-time.Second)
	a.Observe(time.Hour)
	if a.Count() != 3 {
		t.Fatalf("count %d", a.Count())
	}
	if got := a.Quantile(1.0); got > float64(adaptiveMaxNs)/1e9+1e-9 {
		t.Errorf("clamped max quantile = %v", got)
	}
}

// TestAdaptiveAgreesWithLadder is the in-package version of the e2e
// acceptance bullet: on a skewed latency stream, adaptive p50/p99 agree
// with the fixed-ladder histogram to within one ladder bucket.
func TestAdaptiveAgreesWithLadder(t *testing.T) {
	r := NewRegistry()
	fixed := r.Duration("lat", "")
	a := NewAdaptiveHistogram()
	obs := func(d time.Duration) {
		fixed.ObserveDuration(d)
		a.Observe(d)
	}
	for i := 0; i < 990; i++ {
		obs(time.Duration(900+i%200) * time.Microsecond) // ~1ms mode
	}
	for i := 0; i < 10; i++ {
		obs(120 * time.Millisecond) // sparse slow tail
	}
	ladder := LatencyBuckets()
	for _, q := range []float64{0.50, 0.99} {
		lad, ada := fixed.Quantile(q), a.Quantile(q)
		if math.IsNaN(lad) || math.IsNaN(ada) {
			t.Fatalf("q=%v: NaN (ladder %v adaptive %v)", q, lad, ada)
		}
		if !withinOneLadderBucket(ladder, lad, ada) {
			t.Errorf("q=%v: ladder %v vs adaptive %v differ by more than one bucket", q, lad, ada)
		}
	}
}

// withinOneLadderBucket reports whether two values land in the same or
// adjacent buckets of the given ladder.
func withinOneLadderBucket(ladder []float64, x, y float64) bool {
	idx := func(v float64) int {
		for i, u := range ladder {
			if v <= u {
				return i
			}
		}
		return len(ladder)
	}
	d := idx(x) - idx(y)
	return d >= -1 && d <= 1
}

func TestAdaptiveHotRangesAndExemplars(t *testing.T) {
	a := NewAdaptiveHistogram()
	for i := 0; i < 900; i++ {
		a.Observe(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		a.ObserveExemplar(200*time.Millisecond, "tracetail", "spantail")
	}
	hot := a.HotRanges(0.05)
	if len(hot) == 0 {
		t.Fatal("no hot ranges on a bimodal stream")
	}
	var tailHot *AdaptiveHotRange
	for i := range hot {
		lo, hi := hot[i].LoSeconds, hot[i].HiSeconds
		if lo <= 0.2 && 0.2 <= hi {
			tailHot = &hot[i]
		}
		if hi < lo {
			t.Fatalf("inverted range %+v", hot[i])
		}
	}
	if tailHot == nil {
		t.Fatalf("no hot range covers the 200ms mode: %+v", hot)
	}
	found := false
	for _, ex := range tailHot.Exemplars {
		if ex.TraceID == "tracetail" && ex.SpanID == "spantail" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tail hot range missing its exemplar: %+v", tailHot)
	}
}

func TestAdaptiveRegister(t *testing.T) {
	r := NewRegistry()
	a := NewAdaptiveHistogram()
	a.Register(r, "apply")
	for i := 0; i < 100; i++ {
		a.Observe(2 * time.Millisecond)
	}
	got := map[string]float64{}
	for _, fam := range r.Snapshot() {
		for _, s := range fam.Series {
			if s.Labels["stage"] == "apply" {
				got[fam.Name] = s.Value
			}
		}
	}
	if got["rap_profile_observations_total"] != 100 {
		t.Fatalf("observations %v", got)
	}
	if p99 := got["rap_profile_p99_seconds"]; p99 < 1e-3 || p99 > 4e-3 {
		t.Fatalf("p99 %v, want ~2ms", p99)
	}
	if got["rap_profile_tree_nodes"] < 1 {
		t.Fatalf("nodes %v", got)
	}
	if _, ok := got["rap_profile_p50_seconds"]; !ok {
		t.Fatal("p50 series missing")
	}
}

func TestAdaptiveConcurrent(t *testing.T) {
	a := NewAdaptiveHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.ObserveExemplar(time.Duration(1+i%1000)*time.Microsecond, "t", "s")
				if i%100 == 0 {
					a.Quantile(0.99)
					a.HotRanges(0.1)
				}
			}
		}(g)
	}
	wg.Wait()
	if a.Count() != 8000 {
		t.Fatalf("count %d", a.Count())
	}
}
