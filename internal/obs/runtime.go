package obs

import (
	"runtime"
	"runtime/metrics"
)

// Go runtime bridge: a small fixed set of runtime/metrics samples exposed
// as rap_runtime_* Func instruments, so a dashboard can correlate tree
// behaviour (splits, arena growth) with the process it runs in (heap, GC,
// goroutines) from one scrape. Values are read at exposition time only;
// an idle registry costs nothing.

// Runtime metric names.
const (
	MetricRuntimeHeapBytes    = "rap_runtime_heap_bytes"
	MetricRuntimeTotalBytes   = "rap_runtime_memory_bytes"
	MetricRuntimeGoroutines   = "rap_runtime_goroutines"
	MetricRuntimeGCCycles     = "rap_runtime_gc_cycles_total"
	MetricRuntimeGCPauseTotal = "rap_runtime_gc_pause_seconds_total"
)

// runtimeSample reads one runtime/metrics sample at scrape time, returning
// 0 when the running toolchain does not export the name (KindBad).
func runtimeSample(name string) func() float64 {
	return func() float64 {
		s := []metrics.Sample{{Name: name}}
		metrics.Read(s)
		switch s[0].Value.Kind() {
		case metrics.KindUint64:
			return float64(s[0].Value.Uint64())
		case metrics.KindFloat64:
			return s[0].Value.Float64()
		}
		return 0
	}
}

// RegisterRuntime registers the Go runtime metric family on r: live heap
// bytes, total mapped memory, goroutine count, completed GC cycles, and
// cumulative GC stop-the-world pause seconds. The pause total comes from
// runtime.ReadMemStats, which briefly stops the world — it runs only when
// an exposition is actually written, never on the ingest path.
func RegisterRuntime(r *Registry) {
	r.GaugeFunc(MetricRuntimeHeapBytes,
		"Live heap bytes (runtime/metrics /memory/classes/heap/objects:bytes).",
		runtimeSample("/memory/classes/heap/objects:bytes"))
	r.GaugeFunc(MetricRuntimeTotalBytes,
		"Total memory mapped by the Go runtime (/memory/classes/total:bytes).",
		runtimeSample("/memory/classes/total:bytes"))
	r.GaugeFunc(MetricRuntimeGoroutines,
		"Live goroutines (/sched/goroutines:goroutines).",
		runtimeSample("/sched/goroutines:goroutines"))
	r.CounterFunc(MetricRuntimeGCCycles,
		"Completed GC cycles (/gc/cycles/total:gc-cycles).",
		runtimeSample("/gc/cycles/total:gc-cycles"))
	r.CounterFunc(MetricRuntimeGCPauseTotal,
		"Cumulative GC stop-the-world pause time in seconds.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
}
