package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

// checkPromParses walks a text exposition line by line and fails on
// anything that is not a comment or a `name{labels} value` sample with a
// ParseFloat-able value — the format contract scrapers depend on.
func checkPromParses(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	scanner := bufio.NewScanner(strings.NewReader(body))
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample %q has unparseable value: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples
}

// TestNonFiniteGaugeExposition feeds NaN and ±Inf through Func
// instruments: both expositions must stay parseable — the text format
// renders Prometheus' spec spellings, and the JSON document must encode
// despite encoding/json rejecting non-finite float64.
func TestNonFiniteGaugeExposition(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("bad_ratio", "0/0 ratio.", func() float64 { return math.NaN() })
	r.GaugeFunc("overflowed", "h", func() float64 { return math.Inf(1) })
	r.GaugeFunc("underflowed", "h", func() float64 { return math.Inf(-1) })
	r.CounterFunc("nan_total", "h", func() float64 { return math.NaN() })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := checkPromParses(t, sb.String())
	if v := samples["bad_ratio"]; !math.IsNaN(v) {
		t.Fatalf("bad_ratio = %v, want NaN", v)
	}
	if v := samples["overflowed"]; !math.IsInf(v, 1) {
		t.Fatalf("overflowed = %v, want +Inf", v)
	}
	if v := samples["underflowed"]; !math.IsInf(v, -1) {
		t.Fatalf("underflowed = %v, want -Inf", v)
	}

	sb.Reset()
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name   string `json:"name"`
			Series []struct {
				Value any `json:"value"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("JSON exposition with non-finite values invalid: %v\n%s", err, sb.String())
	}
	got := map[string]any{}
	for _, m := range doc.Metrics {
		got[m.Name] = m.Series[0].Value
	}
	for name, want := range map[string]string{
		"bad_ratio": "NaN", "overflowed": "+Inf", "underflowed": "-Inf", "nan_total": "NaN",
	} {
		if got[name] != want {
			t.Fatalf("JSON %s = %v (%T), want %q", name, got[name], got[name], want)
		}
	}
}

// TestEmptyHistogramExposition: a registered histogram with zero
// observations must still emit a complete family — every bucket, _sum,
// and _count at 0 — so dashboards see the series exists before traffic.
func TestEmptyHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle_seconds", "h", []float64{0.1, 1})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := checkPromParses(t, sb.String())
	for _, name := range []string{
		`idle_seconds_bucket{le="0.1"}`,
		`idle_seconds_bucket{le="1"}`,
		`idle_seconds_bucket{le="+Inf"}`,
		"idle_seconds_sum",
		"idle_seconds_count",
	} {
		v, ok := samples[name]
		if !ok {
			t.Fatalf("empty histogram missing sample %s:\n%s", name, sb.String())
		}
		if v != 0 {
			t.Fatalf("%s = %v, want 0", name, v)
		}
	}

	sb.Reset()
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatalf("empty-histogram JSON exposition invalid:\n%s", sb.String())
	}
}

// TestInvalidNamesPanic: a bad metric or label name is a programming
// error that would corrupt the exposition for every scraper, so the
// registry refuses it at registration time rather than at scrape time.
func TestInvalidNamesPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("metric name with dash", func() {
		NewRegistry().Counter("bad-name_total", "h")
	})
	mustPanic("metric name starting with digit", func() {
		NewRegistry().Gauge("9lives", "h")
	})
	mustPanic("empty metric name", func() {
		NewRegistry().Gauge("", "h")
	})
	mustPanic("label name with dot", func() {
		NewRegistry().Counter("ok_total", "h", L("bad.key", "v"))
	})
	mustPanic("label name starting with digit", func() {
		NewRegistry().Counter("ok_total", "h", L("0shard", "v"))
	})

	// The happy path sanity check: colon and underscore are legal in
	// metric names, and values are unrestricted.
	r := NewRegistry()
	r.Counter("ns:ok_total", "h", L("source", `any "value" at all`)).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	checkPromParses(t, sb.String())
}
