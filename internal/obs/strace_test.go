package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"rap/internal/core"
)

func TestStructuralTraceSamplingAndRing(t *testing.T) {
	st := NewStructuralTrace(4, 8) // keep 1 in 4, ring of 8
	for i := 0; i < 100; i++ {
		st.Record(StructuralEvent{Op: "split", Lo: uint64(i)})
	}
	if st.Decisions() != 100 {
		t.Fatalf("decisions = %d, want 100", st.Decisions())
	}
	if st.Kept() != 25 {
		t.Fatalf("kept = %d, want 25", st.Kept())
	}
	evs := st.Events()
	if len(evs) != 8 {
		t.Fatalf("retained = %d, want ring capacity 8", len(evs))
	}
	// Oldest-first: seq strictly increasing, ending at the last kept seq.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != 97 { // decisions 1,5,...,97 kept
		t.Fatalf("last kept seq = %d, want 97", evs[len(evs)-1].Seq)
	}
}

func TestStructuralTraceEvictions(t *testing.T) {
	st := NewStructuralTrace(1, 8)
	for i := 0; i < 6; i++ {
		st.Record(StructuralEvent{Op: "split"})
	}
	if got := st.Evicted(); got != 0 {
		t.Fatalf("evicted = %d before the ring filled, want 0", got)
	}
	for i := 0; i < 14; i++ {
		st.Record(StructuralEvent{Op: "split"})
	}
	// 20 kept into a ring of 8: the first 12 were overwritten.
	if got := st.Evicted(); got != 12 {
		t.Fatalf("evicted = %d, want 12", got)
	}
	if got := st.Kept(); got != 20 {
		t.Fatalf("kept = %d, want 20 (evictions still count as kept)", got)
	}
	if got := len(st.Events()); got != 8 {
		t.Fatalf("retained = %d, want 8", got)
	}
}

func TestStructuralTraceJSONL(t *testing.T) {
	st := NewStructuralTrace(1, 16)
	st.Record(StructuralEvent{Op: "split", Shard: "0", Lo: 1, Hi: 2, Depth: 3, Count: 4, Threshold: 5.5, N: 6})
	st.Record(StructuralEvent{Op: "merge", Shard: "1", Lo: 7, Hi: 8})
	var sb strings.Builder
	if err := st.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines int
	for sc.Scan() {
		var ev StructuralEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v: %s", lines, err, sc.Text())
		}
		lines++
		if ev.UnixNano == 0 {
			t.Fatal("event not timestamped")
		}
	}
	if lines != 2 {
		t.Fatalf("lines = %d, want 2", lines)
	}
}

// TestTreeHooksEndToEnd drives a real tree with TreeHooks installed and
// checks that the registry counters agree with the tree's own Stats and
// that structural events carry the decision state.
func TestTreeHooksEndToEnd(t *testing.T) {
	reg := NewRegistry()
	tr := NewStructuralTrace(1, 1<<14)
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 16
	cfg.Epsilon = 0.05
	tree := core.MustNew(cfg)
	tree.SetHooks(TreeHooks(reg, tr, "0"))

	for i := 0; i < 200_000; i++ {
		tree.Add(uint64(i*2654435761) & 0xffff)
	}
	tree.Estimate(0, 1<<15)
	st := tree.Finalize()

	labels := []Label{L("shard", "0")}
	if got := reg.Counter(MetricTreeSplits, "", labels...).Value(); got != st.Splits {
		t.Fatalf("splits metric = %d, tree stats = %d", got, st.Splits)
	}
	if got := reg.Counter(MetricTreeMerges, "", labels...).Value(); got != st.Merges {
		t.Fatalf("merges metric = %d, tree stats = %d", got, st.Merges)
	}
	if got := reg.Counter(MetricTreeMergeBatches, "", labels...).Value(); got != st.MergeBatches {
		t.Fatalf("merge batches metric = %d, tree stats = %d", got, st.MergeBatches)
	}
	if got := reg.Histogram(MetricTreeMergeBatchDur, "", nil, labels...).Count(); got != st.MergeBatches {
		t.Fatalf("merge batch duration observations = %d, want %d", got, st.MergeBatches)
	}
	if got := reg.Histogram(MetricTreeEstimateDur, "", nil, labels...).Count(); got != 1 {
		t.Fatalf("estimate duration observations = %d, want 1", got)
	}

	splits, merges := 0, 0
	for _, ev := range tr.Events() {
		switch ev.Op {
		case "split":
			splits++
		case "merge":
			merges++
		default:
			t.Fatalf("unknown op %q", ev.Op)
		}
		if ev.Hi < ev.Lo || ev.Shard != "0" {
			t.Fatalf("malformed event %+v", ev)
		}
		if ev.Op == "split" && float64(ev.Count) <= ev.Threshold {
			t.Fatalf("split recorded below threshold: %+v", ev)
		}
	}
	if splits == 0 || merges == 0 {
		t.Fatalf("trace recorded %d splits, %d merges; want both > 0", splits, merges)
	}
}
