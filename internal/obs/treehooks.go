package obs

import (
	"time"

	"rap/internal/core"
)

// Standard tree metric names. One place to keep exposition, docs, and
// tests agreeing.
const (
	MetricTreeSplits        = "rap_tree_splits_total"
	MetricTreeMerges        = "rap_tree_merges_total"
	MetricTreeMergeBatches  = "rap_tree_merge_batches_total"
	MetricTreeMergeBatchDur = "rap_tree_merge_batch_seconds"
	MetricTreeEstimateDur   = "rap_tree_estimate_seconds"
)

// TreeHooks builds a core.Hooks that counts splits, merges, and merge
// batches, times merge batches and estimate queries, and (when tr is
// non-nil) records sampled structural events labeled with shard. Install
// the result with Tree.SetHooks; one hooks value per tree.
func TreeHooks(reg *Registry, tr *StructuralTrace, shard string) *core.Hooks {
	labels := []Label{L("shard", shard)}
	splits := reg.Counter(MetricTreeSplits, "Split operations performed.", labels...)
	merges := reg.Counter(MetricTreeMerges, "Nodes folded into their parents.", labels...)
	batches := reg.Counter(MetricTreeMergeBatches, "Batched merge passes run.", labels...)
	batchDur := reg.Histogram(MetricTreeMergeBatchDur,
		"Wall time of one batched merge pass.", DurationBuckets(), labels...)
	estDur := reg.Histogram(MetricTreeEstimateDur,
		"Latency of Estimate/EstimateBounds queries.", DurationBuckets(), labels...)

	return &core.Hooks{
		Split: func(e core.SplitEvent) {
			splits.Inc()
			if tr != nil {
				tr.Record(StructuralEvent{
					Op: "split", Shard: shard,
					Lo: e.Lo, Hi: e.Hi, Depth: e.Depth,
					Count: e.Count, Threshold: e.Threshold, N: e.N,
				})
			}
		},
		Merge: func(e core.MergeEvent) {
			merges.Inc()
			if tr != nil {
				tr.Record(StructuralEvent{
					Op: "merge", Shard: shard,
					Lo: e.Lo, Hi: e.Hi, Depth: e.Depth,
					Count: e.Count, Threshold: e.Threshold, N: e.N,
				})
			}
		},
		MergeBatch: func(e core.MergeBatchEvent) {
			batches.Inc()
			batchDur.ObserveDuration(e.Duration)
		},
		EstimateDone: func(d time.Duration) {
			estDur.ObserveDuration(d)
		},
	}
}
