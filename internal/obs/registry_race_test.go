package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestSnapshotConcurrentWithRegistration hammers Registry.Snapshot while
// other goroutines register new instruments and write to existing ones.
// Under -race this proves the scrape path (the flight recorder's cadence)
// never needs external synchronisation against instrument churn.
func TestSnapshotConcurrentWithRegistration(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: register fresh instruments of every kind and touch them.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lbl := L("w", fmt.Sprintf("%d_%d", w, i%17))
				reg.Counter("race_ctr", "", lbl).Inc()
				reg.Gauge("race_gauge", "", lbl).Set(float64(i))
				reg.Histogram("race_hist", "", []float64{1, 2, 4}, lbl).Observe(float64(i % 5))
				if i%29 == 0 {
					v := float64(i)
					reg.GaugeFunc("race_fn", "", func() float64 { return v },
						L("w", fmt.Sprintf("fn%d_%d", w, i)))
				}
			}
		}(w)
	}

	// Readers: continuous scrapes, checking basic shape invariants.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, fam := range reg.Snapshot() {
					if fam.Name == "" {
						t.Error("snapshot family with empty name")
						return
					}
					for _, s := range fam.Series {
						if fam.Kind == KindHistogram.String() && len(s.Buckets) == 0 {
							t.Errorf("histogram %s series without buckets", fam.Name)
							return
						}
					}
				}
			}
		}()
	}

	for i := 0; i < 200; i++ {
		reg.Snapshot()
	}
	close(stop)
	wg.Wait()
}
