package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// StructuralEvent is one recorded split or merge decision: the runtime
// analogue of the paper's Figure 2 region tracking. It captures the state
// the decision was taken on — range, depth, counter, threshold, stream
// position — so offline analysis can replay how the tree adapted to the
// stream without holding the stream itself.
type StructuralEvent struct {
	Seq       uint64  `json:"seq"`             // decision sequence number (pre-sampling)
	UnixNano  int64   `json:"time_unix_nano"`  // wall clock at record time
	Op        string  `json:"op"`              // "split" | "merge" | "audit_violation" | "audit_near_bound"
	Shard     string  `json:"shard,omitempty"` // owning shard, when sharded
	Lo        uint64  `json:"lo"`              // inclusive range low end
	Hi        uint64  `json:"hi"`              // inclusive range high end
	Depth     int     `json:"depth"`           // split steps below the root
	Count     uint64  `json:"count"`           // node counter at decision time
	Threshold float64 `json:"threshold"`       // split/merge threshold compared against
	N         uint64  `json:"n"`               // tree's stream position
}

// StructuralTrace is a sampled ring buffer of structural events. Sampling
// is decided with one atomic increment per decision, so a heavily
// splitting tree stays cheap to trace; only kept events pay for a
// timestamp and the buffer lock.
type StructuralTrace struct {
	sample uint64 // keep 1 of every sample decisions per op kind
	seq    atomic.Uint64

	mu      sync.Mutex
	buf     []StructuralEvent // ring storage, cap fixed at construction
	next    int               // ring write position once buf is full
	kept    uint64
	evicted uint64 // kept events overwritten before any export saw them
}

// NewStructuralTrace keeps 1 in sample decisions in a ring of capacity
// events. sample <= 1 keeps everything; capacity <= 0 selects 4096.
func NewStructuralTrace(sample uint64, capacity int) *StructuralTrace {
	if sample < 1 {
		sample = 1
	}
	if capacity <= 0 {
		capacity = 4096
	}
	return &StructuralTrace{sample: sample, buf: make([]StructuralEvent, 0, capacity)}
}

// Record applies the sampling decision to ev and, if kept, stamps it and
// appends it to the ring, evicting the oldest event when full. ev.Seq and
// ev.UnixNano are set by Record.
func (st *StructuralTrace) Record(ev StructuralEvent) {
	seq := st.seq.Add(1)
	if (seq-1)%st.sample != 0 {
		return
	}
	st.keep(ev, seq)
}

// RecordAlways stamps and appends ev, bypassing the sampling decision.
// It exists for rare events that must never be sampled away — the audit's
// accuracy violations: a trace configured to keep 1-in-1000 splits still
// retains every violation.
func (st *StructuralTrace) RecordAlways(ev StructuralEvent) {
	st.keep(ev, st.seq.Add(1))
}

func (st *StructuralTrace) keep(ev StructuralEvent, seq uint64) {
	ev.Seq = seq
	ev.UnixNano = time.Now().UnixNano()
	st.mu.Lock()
	if len(st.buf) < cap(st.buf) {
		st.buf = append(st.buf, ev)
	} else {
		st.buf[st.next] = ev
		st.next = (st.next + 1) % len(st.buf)
		st.evicted++
	}
	st.kept++
	st.mu.Unlock()
}

// Decisions returns the total number of decisions seen (before sampling).
func (st *StructuralTrace) Decisions() uint64 { return st.seq.Load() }

// Kept returns how many events passed sampling (including evicted ones).
func (st *StructuralTrace) Kept() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.kept
}

// Evicted returns how many kept events the ring has overwritten. A
// nonzero, growing value means an event storm is rotating history out
// faster than anyone exports it — exported as rap_trace_evicted_total so
// the silent overwrite is visible and alertable.
func (st *StructuralTrace) Evicted() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.evicted
}

// Events returns the retained events oldest-first.
func (st *StructuralTrace) Events() []StructuralEvent {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]StructuralEvent, 0, len(st.buf))
	out = append(out, st.buf[st.next:]...)
	out = append(out, st.buf[:st.next]...)
	return out
}

// WriteJSONL writes the retained events oldest-first, one JSON object per
// line — the import format for offline tree-adaptation analysis.
func (st *StructuralTrace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w) // Encode appends \n after each value
	for _, ev := range st.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP exposes the trace as application/jsonl, so the admin server
// can mount a StructuralTrace directly as a handler.
func (st *StructuralTrace) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/jsonl")
	w.Header().Set("X-Trace-Decisions", strconv.FormatUint(st.Decisions(), 10))
	st.WriteJSONL(w)
}
