package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE lines per family, one sample
// line per series, histograms expanded to _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f FamilySnapshot, s SeriesSnapshot) error {
	if f.Kind != KindHistogram.String() {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, renderLabels(s.labels, "", 0), formatFloat(s.Value))
		return err
	}
	for _, b := range s.Buckets {
		le := "+Inf"
		if !math.IsInf(b.Upper, 1) {
			le = formatFloat(b.Upper)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, renderLabels(s.labels, "le", le), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, renderLabels(s.labels, "", 0), formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, renderLabels(s.labels, "", 0), s.Count)
	return err
}

// renderLabels renders {k="v",...}, appending the extra label when
// extraKey is non-empty (the histogram le), or "" with no labels at all.
func renderLabels(labels []Label, extraKey string, extraVal any) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, escapeValue(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", extraKey, extraVal)
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeValue(s string) string {
	// %q handles quote and backslash escaping; only newlines need help to
	// keep the exposition line-oriented.
	return strings.ReplaceAll(s, "\n", `\n`)
}

// jsonFloat is a float64 that survives encoding/json when non-finite:
// NaN and ±Inf render as strings ("NaN", "+Inf", "-Inf") instead of
// aborting the whole exposition document.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return json.Marshal(formatFloat(v))
	}
	return json.Marshal(v)
}

// MarshalJSON shields the JSON exposition from non-finite series values: a
// GaugeFunc is free to report NaN (e.g. a ratio with a zero denominator)
// and the scrape document must still encode.
func (s SeriesSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Labels  map[string]string `json:"labels,omitempty"`
		Value   jsonFloat         `json:"value"`
		Count   uint64            `json:"count,omitempty"`
		Sum     jsonFloat         `json:"sum,omitempty"`
		Buckets []BucketCount     `json:"buckets,omitempty"`
	}{s.Labels, jsonFloat(s.Value), s.Count, jsonFloat(s.Sum), s.Buckets})
}

// MarshalJSON renders the bucket bound as a string so the +Inf bucket
// survives encoding/json, which rejects non-finite float64s.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.Upper, 1) {
		le = formatFloat(b.Upper)
	}
	return json.Marshal(struct {
		Upper string `json:"le"`
		Count uint64 `json:"count"`
	}{le, b.Count})
}

// JSONExposition is the machine-readable scrape document.
type JSONExposition struct {
	Metrics []FamilySnapshot `json:"metrics"`
}

// WriteJSON renders the registry as one indented JSON document, the
// format BENCH trajectories and tests consume.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(JSONExposition{Metrics: r.Snapshot()})
}
