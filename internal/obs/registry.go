// Package obs is the zero-dependency observability subsystem of the
// profiler: a named registry of atomic counters, gauges, and fixed-bucket
// histograms with Prometheus-text and JSON exposition, plus a sampled
// structural event trace of the tree's split/merge decisions.
//
// The design splits instruments from collection. Hot paths update atomic
// instruments (or nothing at all: the core tree is instrumented through a
// nil-checkable hook struct, so an uninstrumented tree pays ~zero).
// Scrape-time values — queue depths, error budgets, checkpoint age — are
// registered as Func instruments evaluated only when an exposition is
// written.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a metric family for exposition.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one key=value dimension of a metric series.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomically settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with atomic per-bucket counters.
// Buckets are upper bounds; an implicit +Inf bucket catches the rest.
type Histogram struct {
	uppers []float64
	counts []atomic.Uint64 // len(uppers)+1; last is +Inf
	total  atomic.Uint64
	sum    Gauge
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since start — the one-liner for
// stage latencies: stamp time.Now() entering the stage, ObserveSince
// leaving it.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets spans 1µs..~8.4s in octaves, a fit for both merge-batch
// and checkpoint latencies.
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 2, 24) }

// LatencyBuckets is the default ladder for pipeline stage latencies:
// 100ns..~6.7s in octaves. The lower start (vs DurationBuckets) resolves
// queue-wait and batch-apply times that sit well under a microsecond.
func LatencyBuckets() []float64 { return ExpBuckets(1e-7, 2, 26) }

// Duration returns the histogram name{labels} on the default latency
// ladder, creating it on first use — the standard way to register a
// pipeline stage latency without hand-rolling buckets at the call site.
func (r *Registry) Duration(name, help string, labels ...Label) *Histogram {
	return r.Histogram(name, help, LatencyBuckets(), labels...)
}

// series is one labeled instance within a family.
type series struct {
	labels  []Label // sorted by key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // scrape-time callback
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	series map[string]*series
}

// Registry is a named collection of metric families. All methods are safe
// for concurrent use; instrument lookups are idempotent, so packages can
// re-request a metric by name instead of threading instances around.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func labelKey(labels []Label) string {
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte(1)
		sb.WriteString(l.Value)
		sb.WriteByte(2)
	}
	return sb.String()
}

func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// validMetricName reports whether name matches the Prometheus metric name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c == '_' || c == ':',
			c >= 'a' && c <= 'z',
			c >= 'A' && c <= 'Z',
			i > 0 && c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches the Prometheus label name
// grammar [a-zA-Z_][a-zA-Z0-9_]* and is not reserved (the __ prefix).
func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, c := range name {
		switch {
		case c == '_',
			c >= 'a' && c <= 'z',
			c >= 'A' && c <= 'Z',
			i > 0 && c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return true
}

// lookup returns the series for name+labels, creating family and series
// as needed. The caller must hold r.mu. It panics on a kind mismatch or an
// invalid metric/label name: two packages disagreeing about what a metric
// name means — or registering a name the text exposition could not render
// parseably — is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind Kind, labels []Label) *series {
	f, ok := r.families[name]
	if !ok {
		if !validMetricName(name) {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	labels = sortLabels(labels)
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		for _, l := range labels {
			if !validLabelName(l.Key) {
				panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, l.Key))
			}
		}
		s = &series{labels: labels}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter name{labels}, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, KindCounter, labels)
	if s.counter == nil && s.fn == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge name{labels}, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, KindGauge, labels)
	if s.gauge == nil && s.fn == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// CounterFunc registers a counter whose value is collected by calling fn
// at exposition time — for cumulative counts maintained elsewhere (tree
// split totals, per-source drop counts).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, KindCounter, labels)
	s.fn = fn
	s.counter = nil
}

// GaugeFunc registers a gauge collected by calling fn at exposition time —
// for instantaneous state (queue depth, checkpoint age, ε·n budgets).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, KindGauge, labels)
	s.fn = fn
	s.gauge = nil
}

// Histogram returns the histogram name{labels} with the given bucket
// upper bounds, creating it on first use. Buckets are only consulted on
// creation; later lookups reuse the existing buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, KindHistogram, labels)
	if s.hist == nil {
		uppers := append([]float64(nil), buckets...)
		sort.Float64s(uppers)
		s.hist = &Histogram{
			uppers: uppers,
			counts: make([]atomic.Uint64, len(uppers)+1),
		}
	}
	return s.hist
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	Upper float64 `json:"le"`
	Count uint64  `json:"count"` // cumulative, Prometheus-style
}

// SeriesSnapshot is one series at one scrape.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	// Histogram-only fields.
	Count   uint64        `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`

	labels []Label // original order-stable labels, for text exposition
}

// FamilySnapshot is one metric family at one scrape.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Kind   string           `json:"kind"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot collects every family, evaluating Func instruments, and
// returns them sorted by name (series sorted by label key) so exposition
// output is deterministic.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	out := make([]FamilySnapshot, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		fs := FamilySnapshot{Name: f.name, Kind: f.kind.String(), Help: f.help}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{labels: s.labels}
			if len(s.labels) > 0 {
				ss.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					ss.Labels[l.Key] = l.Value
				}
			}
			switch {
			case s.fn != nil:
				ss.Value = s.fn()
			case s.counter != nil:
				ss.Value = float64(s.counter.Value())
			case s.gauge != nil:
				ss.Value = s.gauge.Value()
			case s.hist != nil:
				ss.Count = s.hist.Count()
				ss.Sum = s.hist.Sum()
				var cum uint64
				for i, u := range s.hist.uppers {
					cum += s.hist.counts[i].Load()
					ss.Buckets = append(ss.Buckets, BucketCount{Upper: u, Count: cum})
				}
				cum += s.hist.counts[len(s.hist.uppers)].Load()
				ss.Buckets = append(ss.Buckets, BucketCount{Upper: math.Inf(1), Count: cum})
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}
