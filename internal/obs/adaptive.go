package obs

import (
	"math"
	"math/bits"
	"sync"
	"time"

	"rap/internal/core"
)

// AdaptiveHistogram is a latency histogram backed by a RAP tree over the
// nanosecond universe — the repo dogfooding its own data structure for
// telemetry. Where the fixed-ladder Histogram spends one bucket per
// octave everywhere, the tree splits exactly where the latency mass
// concentrates, so quantiles and HotRanges come back at adaptive
// resolution (ε·n-bounded) for the same bounded memory.
//
// The universe is [0, 2^UniverseBits) nanoseconds — the default 30 bits
// covers 0..~1.07s, beyond which a stage latency is an outage, not a
// profile; longer observations clamp to the top of the universe (and the
// fixed ladder still records their true octave). Observations optionally
// carry a span-ID exemplar, kept per octave, so a hot latency range links
// straight to a recorded trace.
//
// All methods are safe for concurrent use; the tree itself is not, so a
// mutex serializes access — these are per-batch/per-request observations
// (thousands per second), not per-event ones.
type AdaptiveHistogram struct {
	mu   sync.Mutex
	tree *core.Tree
	sum  float64 // seconds, mirroring Histogram.Sum

	// minNs/maxNs are the exact observed extremes (post-clamp), valid
	// whenever the tree is non-empty. Quantile uses them to clip node
	// ranges: tree mass only ever moves upward (splits leave counts in
	// place, merges fold children into ancestors), so a coarse node's
	// count still describes values inside [minNs, maxNs] even when the
	// node's range is far wider.
	minNs, maxNs uint64

	// exemplars[i] is the most recent exemplar whose value's highest set
	// bit is i — one slot per octave keeps slow-range exemplars from
	// being washed out by the fast-path flood.
	exemplars [adaptiveUniverseBits + 1]Exemplar
}

// Exemplar links one observed value to the span that produced it.
type Exemplar struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	ValueNs uint64 `json:"value_ns"`
}

// AdaptiveHotRange is one hot latency range with any exemplars that fall
// inside it.
type AdaptiveHotRange struct {
	LoSeconds float64    `json:"lo_seconds"`
	HiSeconds float64    `json:"hi_seconds"`
	Weight    uint64     `json:"weight"`
	Frac      float64    `json:"frac"`
	Depth     int        `json:"depth"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

const (
	// adaptiveUniverseBits sizes the nanosecond universe: 2^30 ns ≈ 1.07s.
	adaptiveUniverseBits = 30
	// adaptiveEpsilon is ε for the latency tree. Stage latencies are a
	// far smaller stream than the profiled workload, so a tight 0.1%
	// budget still keeps the tree tiny while making quantiles effectively
	// exact at the resolution the ladder comparison needs.
	adaptiveEpsilon = 0.001
	adaptiveMaxNs   = uint64(1)<<adaptiveUniverseBits - 1
)

// NewAdaptiveHistogram builds an adaptive latency histogram at the
// default operating point (30-bit ns universe, b=4, ε=0.1%).
func NewAdaptiveHistogram() *AdaptiveHistogram {
	cfg := core.DefaultConfig()
	cfg.UniverseBits = adaptiveUniverseBits
	cfg.Epsilon = adaptiveEpsilon
	return &AdaptiveHistogram{tree: core.MustNew(cfg)}
}

// Observe records one duration.
func (a *AdaptiveHistogram) Observe(d time.Duration) {
	a.ObserveExemplar(d, "", "")
}

// ObserveSince records the time elapsed since start.
func (a *AdaptiveHistogram) ObserveSince(start time.Time) {
	a.Observe(time.Since(start))
}

// ObserveExemplar records one duration and, when traceID is non-empty,
// keeps a span exemplar for the value's octave so hot ranges can point at
// a concrete recorded trace.
func (a *AdaptiveHistogram) ObserveExemplar(d time.Duration, traceID, spanID string) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d.Nanoseconds())
	}
	if ns > adaptiveMaxNs {
		ns = adaptiveMaxNs
	}
	a.mu.Lock()
	if n := a.tree.N(); n == 0 || ns < a.minNs {
		a.minNs = ns
	}
	if ns > a.maxNs {
		a.maxNs = ns
	}
	a.tree.Add(ns)
	a.sum += d.Seconds()
	if traceID != "" {
		a.exemplars[bits.Len64(ns)] = Exemplar{TraceID: traceID, SpanID: spanID, ValueNs: ns}
	}
	a.mu.Unlock()
}

// Count returns the number of observations.
func (a *AdaptiveHistogram) Count() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tree.N()
}

// Sum returns the total observed seconds.
func (a *AdaptiveHistogram) Sum() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sum
}

// NodeCount returns the tree's node count — the adaptive analogue of the
// ladder's fixed bucket count, and the number the dogfood exists to keep
// small.
func (a *AdaptiveHistogram) NodeCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tree.NodeCount()
}

// Quantile returns the q-quantile in seconds. Like Histogram.Quantile it
// returns NaN on an empty histogram and clamps q into (0, 1].
//
// The tree's raw EstimateBounds bracket is too loose for quantiles: mass
// that accumulated at a coarse ancestor while the tree was shallow stays
// there, so a straddling query boundary can carry several percent of n
// in ambiguity — enough to collapse low quantiles to zero (charge it all
// left) or push high quantiles to the universe top (charge it all
// right). The histogram recovers the resolution with two facts the raw
// bracket ignores. First, a coarse node's retained count is an early
// sample of the same latency stream its descendants describe, so it is
// redistributed down the tree in proportion to each child subtree's
// mass rather than spread over the node's full width. Second, the
// histogram tracks the exact observed extremes, so terminal segments
// are clipped to [minNs, maxNs] and the prefix-mass function hits
// exactly 0 below the minimum and exactly n at the maximum. Bisecting
// that function (with an ε·n slack on the target rank so redistribution
// leakage at a mass cliff cannot push the answer into an empty gap)
// lands within the tree's adaptive resolution at every quantile.
func (a *AdaptiveHistogram) Quantile(q float64) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.tree.N()
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	if rank < 1 {
		rank = 1
	}
	slack := 2 * adaptiveEpsilon * float64(n)
	if slack < 1 {
		slack = 1
	}
	target := rank - slack
	if target < 0.5 {
		target = 0.5
	}

	// Rebuild the node list with parent links (preorder depth stack),
	// then push every node's own count down to its terminal segments.
	type qnode struct {
		lo, hi    uint64
		own       float64
		parent    int
		sub       float64 // subtree mass (own counts only)
		extra     float64 // mass pushed down from ancestors
		rate      float64 // pushed mass per unit of child subtree mass
		hasChild  bool
		childMass float64
	}
	nodes := make([]qnode, 0, 64)
	stack := make([]int, 0, 16)
	a.tree.Walk(func(ni core.NodeInfo) bool {
		parent := -1
		if ni.Depth > 0 {
			parent = stack[ni.Depth-1]
		}
		if len(stack) <= ni.Depth {
			stack = append(stack, len(nodes))
		} else {
			stack[ni.Depth] = len(nodes)
			stack = stack[:ni.Depth+1]
		}
		nodes = append(nodes, qnode{lo: ni.Lo, hi: ni.Hi, own: float64(ni.Count), parent: parent})
		return true
	})
	for i := len(nodes) - 1; i >= 0; i-- {
		nodes[i].sub += nodes[i].own
		if p := nodes[i].parent; p >= 0 {
			nodes[p].sub += nodes[i].sub
			nodes[p].hasChild = true
			nodes[p].childMass += nodes[i].sub
		}
	}

	type seg struct {
		lo, hi uint64
		c      float64
	}
	segs := make([]seg, 0, len(nodes))
	for i := range nodes {
		v := &nodes[i]
		if p := v.parent; p >= 0 {
			v.extra = nodes[p].rate * v.sub
		}
		m := v.own + v.extra
		if v.hasChild && v.childMass > 0 {
			// Descendants witnessed where this node's mass really lives:
			// hand everything down pro rata.
			v.rate = m / v.childMass
			continue
		}
		if m <= 0 {
			continue
		}
		lo, hi := v.lo, v.hi
		if lo < a.minNs {
			lo = a.minNs
		}
		if hi > a.maxNs {
			hi = a.maxNs
		}
		segs = append(segs, seg{lo: lo, hi: hi, c: m})
	}

	prefix := func(x uint64) float64 {
		s := 0.0
		for _, g := range segs {
			switch {
			case x >= g.hi:
				s += g.c
			case x >= g.lo:
				s += g.c * float64(x-g.lo+1) / float64(g.hi-g.lo+1)
			}
		}
		return s
	}
	lo, hi := a.minNs, a.maxNs
	for lo < hi {
		mid := lo + (hi-lo)/2
		if prefix(mid) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return float64(lo) / 1e9
}

// HotRanges returns every latency range carrying at least theta of the
// observed mass, with any octave exemplars that fall inside the range
// attached. Bounds are reported in seconds.
func (a *AdaptiveHistogram) HotRanges(theta float64) []AdaptiveHotRange {
	a.mu.Lock()
	defer a.mu.Unlock()
	ranges := a.tree.HotRanges(theta)
	out := make([]AdaptiveHotRange, 0, len(ranges))
	for _, hr := range ranges {
		ahr := AdaptiveHotRange{
			LoSeconds: float64(hr.Lo) / 1e9,
			HiSeconds: float64(hr.Hi) / 1e9,
			Weight:    hr.Weight,
			Frac:      hr.Frac,
			Depth:     hr.Depth,
		}
		for _, ex := range a.exemplars {
			if ex.TraceID != "" && ex.ValueNs >= hr.Lo && ex.ValueNs <= hr.Hi {
				ahr.Exemplars = append(ahr.Exemplars, ex)
			}
		}
		out = append(out, ahr)
	}
	return out
}

// Register exposes the adaptive profile on reg as rap_profile_* series
// labeled by stage. The p50/p99 gauges are evaluated at scrape time, so
// the flight recorder's histogram-free series pick them up (and the
// profile_p99 alert rule can watch them) with no extra plumbing.
func (a *AdaptiveHistogram) Register(reg *Registry, stage string) {
	l := L("stage", stage)
	reg.GaugeFunc("rap_profile_p50_seconds", "Adaptive-histogram (RAP tree) median stage latency.",
		func() float64 { return a.Quantile(0.50) }, l)
	reg.GaugeFunc("rap_profile_p99_seconds", "Adaptive-histogram (RAP tree) p99 stage latency.",
		func() float64 { return a.Quantile(0.99) }, l)
	reg.CounterFunc("rap_profile_observations_total", "Observations recorded by the adaptive latency histogram.",
		func() float64 { return float64(a.Count()) }, l)
	reg.GaugeFunc("rap_profile_tree_nodes", "Node count of the adaptive latency histogram's RAP tree.",
		func() float64 { return float64(a.NodeCount()) }, l)
}
