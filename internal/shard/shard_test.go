package shard

import (
	"math/rand"
	"sync"
	"testing"

	"rap/internal/core"
	"rap/internal/exact"
	"rap/internal/stats"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 16
	cfg.Epsilon = 0.05
	cfg.FirstMerge = 64
	cfg.MinSplitCount = 1
	return cfg
}

func TestNewValidation(t *testing.T) {
	bad := testConfig()
	bad.Epsilon = 2
	if _, err := New(bad, 4); err == nil {
		t.Fatal("invalid config accepted")
	}
	e, err := New(testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() < 1 {
		t.Fatalf("defaulted shard count %d", e.Shards())
	}
}

// TestConcurrentIngestMatchesExact drives many goroutines through
// per-goroutine handles and checks the merged answers against the exact
// profile under the race detector.
func TestConcurrentIngestMatchesExact(t *testing.T) {
	const feeders = 8
	const perFeeder = 20_000
	cfg := testConfig()
	e, err := New(cfg, feeders)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-generate every feeder's events so the exact referee sees the
	// identical multiset.
	events := make([][]uint64, feeders)
	ex := exact.New()
	for f := range events {
		rng := stats.NewSplitMix64(uint64(100 + f))
		z := stats.NewZipf(rng, 1<<16, 1.2)
		events[f] = make([]uint64, perFeeder)
		for i := range events[f] {
			v := uint64(z.Rank())
			events[f][i] = v
			ex.Add(v)
		}
	}

	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(vals []uint64) {
			defer wg.Done()
			h := e.Handle()
			for i, v := range vals {
				if i%3 == 0 {
					h.AddN(v, 1)
				} else {
					h.Add(v)
				}
			}
		}(events[f])
	}
	wg.Wait()

	total := uint64(feeders * perFeeder)
	if got := e.N(); got != total {
		t.Fatalf("N = %d, want %d", got, total)
	}
	st := e.Stats()
	if st.N != total {
		t.Fatalf("Stats.N = %d, want %d", st.N, total)
	}

	// Merged estimates: lower bounds within eps*n_total on tracked ranges.
	slack := cfg.Epsilon * float64(total)
	rng := rand.New(rand.NewSource(9))
	for q := 0; q < 40; q++ {
		width := uint64(1) << (2 * (1 + rng.Intn(7)))
		lo := uint64(rng.Intn(1<<16)) &^ (width - 1)
		hi := lo + width - 1
		truth := ex.RangeCount(lo, hi)
		low, high := e.EstimateBounds(lo, hi)
		if low > truth || truth > high {
			t.Fatalf("[%x,%x]: truth %d outside [%d,%d]", lo, hi, truth, low, high)
		}
		if float64(truth)-float64(low) > slack {
			t.Fatalf("[%x,%x]: undershoot %d beyond eps*n = %.1f", lo, hi, truth-low, slack)
		}
	}

	// The hot head of the Zipf stream must be found in the merged view
	// even though every shard only saw a slice of it.
	hot := e.HotRanges(0.05)
	if len(hot) == 0 {
		t.Fatal("no hot ranges over a Zipf stream")
	}
	var found bool
	for _, h := range hot {
		if h.Lo == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("rank-0 head missing from hot ranges: %+v", hot)
	}
}

// TestConcurrentQueriesDuringIngest runs queries and snapshots while
// feeders are active; the race detector guards the locking discipline.
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	e, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var feeders, querier sync.WaitGroup
	stop := make(chan struct{})
	for f := 0; f < 4; f++ {
		feeders.Add(1)
		go func(seed uint64) {
			defer feeders.Done()
			h := e.Handle()
			rng := stats.NewSplitMix64(seed)
			buf := make([]uint64, 64)
			for i := 0; i < 200; i++ {
				for j := range buf {
					buf[j] = rng.Uint64n(1 << 16)
				}
				h.AddBatch(buf)
			}
		}(uint64(f + 1))
	}
	querier.Add(1)
	go func() {
		defer querier.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.Estimate(0, 1<<12)
			e.HotRanges(0.1)
			e.Stats()
			if _, err := e.Snapshot(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Engine-level (handle-free) ingestion in parallel with everything.
	for i := 0; i < 1000; i++ {
		e.Add(uint64(i % 512))
	}
	e.AddBatch([]uint64{1, 2, 3})

	feeders.Wait()
	close(stop)
	querier.Wait()

	if got, want := e.N(), uint64(4*200*64+1003); got != want {
		t.Fatalf("N = %d, want %d", got, want)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cfg := testConfig()
	e, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewSplitMix64(5)
	for i := 0; i < 30_000; i++ {
		e.Add(rng.Uint64n(1 << 16))
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	back, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if back.N() != e.N() {
		t.Fatalf("restored N = %d, want %d", back.N(), e.N())
	}
	// ArenaBytes and CounterPoolBytes are physical slab capacity, not
	// logical state, and a restored tree allocates exactly what it needs;
	// CounterPromotions is ingest history snapshots do not carry — exclude
	// all three.
	got, want := back.Stats(), e.Stats()
	got.ArenaBytes, want.ArenaBytes = 0, 0
	got.CounterPoolBytes, want.CounterPoolBytes = 0, 0
	got.CounterPromotions, want.CounterPromotions = 0, 0
	if got != want {
		t.Fatalf("restored stats %+v != %+v", got, want)
	}
	for _, span := range [][2]uint64{{0, 1 << 10}, {1 << 10, 1 << 14}, {0, 1<<16 - 1}} {
		if g, w := back.Estimate(span[0], span[1]), e.Estimate(span[0], span[1]); g != w {
			t.Fatalf("estimate [%x,%x]: %d != %d", span[0], span[1], g, w)
		}
	}

	wrongK, err := New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongK.Restore(snap); err == nil {
		t.Fatal("restore with mismatched shard count accepted")
	}
	// Corrupt data must not disturb the engine.
	before := back.Stats()
	if err := back.Restore(snap[:len(snap)-3]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if back.Stats() != before {
		t.Fatal("failed restore mutated engine")
	}
}

func TestHooksSurviveRestore(t *testing.T) {
	e, err := New(testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	splits := 0
	e.SetHooks(&core.Hooks{Split: func(core.SplitEvent) {
		mu.Lock()
		splits++
		mu.Unlock()
	}})

	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(snap); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewSplitMix64(11)
	z := stats.NewZipf(rng, 1<<14, 1.3)
	h := e.Handle()
	for i := 0; i < 50_000; i++ {
		h.Add(uint64(z.Rank()))
	}
	mu.Lock()
	defer mu.Unlock()
	if splits == 0 {
		t.Fatal("hooks lost across Restore: no splits observed")
	}
	if agg := e.Stats(); uint64(splits) != agg.Splits {
		t.Fatalf("hook count %d != aggregated splits %d", splits, agg.Splits)
	}
}

func TestSetShardHooksLabelsEachShard(t *testing.T) {
	e, err := New(testConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	perShard := make([]int, 3)
	e.SetShardHooks(func(i int) *core.Hooks {
		return &core.Hooks{Split: func(core.SplitEvent) {
			mu.Lock()
			perShard[i]++
			mu.Unlock()
		}}
	})
	rng := stats.NewSplitMix64(3)
	z := stats.NewZipf(rng, 1<<14, 1.3)
	for i := 0; i < 60_000; i++ {
		e.Add(uint64(z.Rank())) // round-robin hits every shard
	}
	mu.Lock()
	defer mu.Unlock()
	for i, c := range perShard {
		if c == 0 {
			t.Fatalf("shard %d saw no splits; per-shard hooks not installed", i)
		}
	}
}

func TestWithShardAndSnapshotShardsCut(t *testing.T) {
	e, err := New(testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	e.WithShard(0, func(tr *core.Tree) {
		tr.AddN(42, 7)
		applied += 7
	})
	var captured uint64
	snaps, err := e.SnapshotShards(func() { captured = e.shards[0].tree.N() })
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("got %d shard snapshots, want 2", len(snaps))
	}
	if captured != 7 {
		t.Fatalf("capture saw n=%d, want 7", captured)
	}
	var tr core.Tree
	if err := tr.UnmarshalBinary(snaps[0]); err != nil {
		t.Fatal(err)
	}
	if tr.N() != 7 {
		t.Fatalf("shard 0 snapshot has n=%d, want 7", tr.N())
	}
}

func TestMergedTreeIsIndependent(t *testing.T) {
	e, err := New(testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		e.Add(uint64(i % 1024))
	}
	m := e.MergedTree()
	if m.N() != e.N() {
		t.Fatalf("merged N %d != engine N %d", m.N(), e.N())
	}
	before := e.Stats()
	for i := 0; i < 10_000; i++ {
		m.Add(uint64(i))
	}
	if e.Stats() != before {
		t.Fatal("mutating merged snapshot changed live shards")
	}
}
