package shard

import (
	"sync"
	"sync/atomic"
	"testing"

	"rap/internal/core"
)

// TestShardCounterPromotionEpochHammer is the sharded twin of the core
// promotion hammer: weighted feeders drive counter-overflow promotions in
// every shard while pinned epoch readers query the merged cut, under the
// race detector. The merged epoch is built from shard clones; if a clone
// aliased its donor's counter pools, the shards' concurrent promotions
// would race the reads here.
func TestShardCounterPromotionEpochHammer(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 20
	cfg.Branch = 4
	cfg.Epsilon = 0.05
	cfg.FirstMerge = 64
	e, err := New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableReadSnapshots(256)

	const writers = 4
	const each = 6_000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := e.Handle()
			samples := make([]core.Sample, 0, 64)
			for i := 0; i < each; i++ {
				samples = append(samples,
					// Hot set with 8-bit-boundary weights: constant
					// promotion churn in whichever shard the chunk lands.
					core.Sample{Value: uint64(i%16) << 14, Weight: uint64(100 + i%200)},
					core.Sample{Value: uint64(w*each+i) * 2654435761 % (1 << 20), Weight: 1},
				)
				if len(samples) == cap(samples) {
					h.AddSamples(samples)
					samples = samples[:0]
				}
			}
			h.AddSamples(samples)
		}(w)
	}

	var stop atomic.Bool
	var qwg sync.WaitGroup
	for q := 0; q < 3; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for !stop.Load() {
				ep := e.Reader()
				if ep == nil {
					t.Error("Reader returned nil with snapshots enabled")
					return
				}
				n := ep.N()
				if full := ep.Estimate(0, 1<<20-1); full != n {
					t.Errorf("merged epoch leaks mass: full estimate %d, N %d", full, n)
				}
				hot := ep.Estimate(0, 1<<16-1)
				if again := ep.Estimate(0, 1<<16-1); again != hot {
					t.Errorf("pinned epoch answer moved: %d -> %d", hot, again)
				}
				ep.Release()
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	qwg.Wait()

	st := e.Stats()
	if st.CounterPromotions == 0 {
		t.Fatal("hammer drove no promotions; weights are mistuned")
	}
	// Engine.Estimate answers from the last published cut, which lags the
	// final flushes; check conservation on a fresh merged view instead.
	m := e.MergedTree()
	if full := m.Estimate(0, 1<<20-1); full != e.N() {
		t.Fatalf("engine leaks mass after hammer: %d != %d", full, e.N())
	}
}
