package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rap/internal/stats"
)

// TestReaderMatchesMergedTreeCut checks the differential oracle: once
// publishes are quiesced, a pinned epoch and MergedTreeCut describe the
// same profile.
func TestReaderMatchesMergedTreeCut(t *testing.T) {
	e, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableReadSnapshots(1 << 10)
	rng := stats.NewSplitMix64(42)
	z := stats.NewZipf(rng, 1<<16, 1.2)
	for i := 0; i < 80_000; i++ {
		e.Add(uint64(z.Rank()))
	}
	e.PublishNow() // quiesced cut at the final state

	ep := e.Reader()
	defer ep.Release()
	cut := e.MergedTreeCut(nil)
	if ep.N() != cut.N() {
		t.Fatalf("epoch N = %d, merged cut N = %d", ep.N(), cut.N())
	}
	for _, r := range [][2]uint64{{0, 1 << 16}, {0, 255}, {1 << 15, 1 << 16}, {100, 100}} {
		el, eh := ep.EstimateBounds(r[0], r[1])
		cl, ch := cut.EstimateBounds(r[0], r[1])
		if el != cl || eh != ch {
			t.Fatalf("bounds differ on [%d,%d]: epoch (%d,%d) vs cut (%d,%d)", r[0], r[1], el, eh, cl, ch)
		}
		if ep.Estimate(r[0], r[1]) != cut.Estimate(r[0], r[1]) {
			t.Fatalf("estimate differs on [%d,%d]", r[0], r[1])
		}
	}
	eh := ep.HotRanges(0.01)
	ch := cut.HotRanges(0.01)
	if len(eh) != len(ch) {
		t.Fatalf("hot ranges differ: %d vs %d", len(eh), len(ch))
	}
	for i := range eh {
		if eh[i] != ch[i] {
			t.Fatalf("hot range %d differs: %+v vs %+v", i, eh[i], ch[i])
		}
	}
}

// TestEpochHammer drives per-feeder handles at full rate while queriers
// pin epochs; run under -race this exercises the publish cadence, the
// TryLock coalescing, and the pin/retire protocol together.
func TestEpochHammer(t *testing.T) {
	const feeders = 4
	const perFeeder = 30_000
	e, err := New(testConfig(), feeders)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableReadSnapshots(512) // aggressive cadence

	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			h := e.Handle()
			rng := stats.NewSplitMix64(uint64(300 + f))
			z := stats.NewZipf(rng, 1<<16, 1.2)
			for i := 0; i < perFeeder; i++ {
				h.Add(uint64(z.Rank()))
			}
		}(f)
	}
	var stop atomic.Bool
	var qwg sync.WaitGroup
	for q := 0; q < 4; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			var lastSeq, lastCut uint64
			for !stop.Load() {
				ep := e.Reader()
				if ep == nil {
					t.Error("Reader returned nil with snapshots enabled")
					return
				}
				if s := ep.Seq(); s < lastSeq {
					t.Errorf("epoch seq went backwards: %d after %d", s, lastSeq)
					ep.Release()
					return
				} else {
					lastSeq = s
				}
				// The stream only grows, so cut positions must be monotone
				// in sequence order.
				if c := ep.CutN(); c < lastCut {
					t.Errorf("epoch cut went backwards: %d after %d", c, lastCut)
				} else {
					lastCut = c
				}
				lo, hi := ep.EstimateBounds(0, 1<<16)
				if lo > hi {
					t.Errorf("bounds inverted: %d > %d", lo, hi)
				}
				ep.Release()
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	qwg.Wait()

	if got := e.N(); got != feeders*perFeeder {
		t.Fatalf("N = %d, want %d", got, feeders*perFeeder)
	}
	pub := e.Publisher()
	if pub.Published() < 2 {
		t.Fatalf("only %d epochs published at cadence 512 over %d events", pub.Published(), feeders*perFeeder)
	}
	if pub.Pinned() != 0 {
		t.Fatalf("%d pins leaked", pub.Pinned())
	}
}

// TestQueryPathLockFree holds every shard mutex and the publish mutex,
// then requires queries to still answer from the published epoch.
func TestQueryPathLockFree(t *testing.T) {
	e, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10_000; i++ {
		e.Add(i % 1000)
	}
	e.EnableReadSnapshots(1 << 16)

	for i := range e.shards {
		e.shards[i].mu.Lock()
		defer e.shards[i].mu.Unlock()
	}
	e.pubMu.Lock()
	defer e.pubMu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Estimate(0, 1<<16)
		e.EstimateBounds(0, 1<<16)
		e.HotRanges(0.01)
		ep := e.Reader()
		ep.Stats()
		ep.Release()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("query blocked on an engine lock: read path is not lock-free")
	}
}

func TestRestoreAndAdoptShardRepublish(t *testing.T) {
	e, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8_000; i++ {
		e.Add(i % 512)
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	e2, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	e2.EnableReadSnapshots(1 << 20) // cadence far beyond the data: only explicit republish paths fire
	if err := e2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	ep := e2.Reader()
	if ep.N() != 8_000 {
		ep.Release()
		t.Fatalf("epoch N after Restore = %d, want 8000 (restore did not republish)", ep.N())
	}
	ep.Release()

	donor, err := New(testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1_000; i++ {
		donor.Add(i % 64)
	}
	e2.AdoptShard(0, donor.MergedTreeCut(nil))
	ep = e2.Reader()
	defer ep.Release()
	if ep.N() <= 8_000-2_000 || ep.N() == 8_000 {
		// shard 0 held ~2000 of the 8000 events and was replaced by 1000.
		t.Fatalf("epoch N after AdoptShard = %d (adopt did not republish)", ep.N())
	}
}
