// Package shard is the sharded RAP profiler engine: k independent core
// trees behind striped locks, fed by per-goroutine handles so the hot
// ingest path never crosses a shared lock, queried through merged
// snapshots so answers carry the whole-stream guarantee.
//
// The design rests on the merge algebra of core.Tree.Merge: each shard
// tree is a valid RAP summary of the slice of the stream it saw, with
// worst-case underestimate eps*n_i, and the structural union of the
// shards underestimates the combined stream by at most eps*sum(n_i) —
// the same bound a single tree over the whole stream would give. Sharding
// therefore buys linear ingest scalability without weakening the paper's
// accuracy contract.
//
// Intended use: call Handle once per feeding goroutine and ingest through
// it. A handle is pinned to one shard, so with at least as many shards as
// feeders every Add takes an uncontended per-shard lock — the scalable
// replacement for core.ConcurrentTree's single mutex.
package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"rap/internal/core"
)

// ErrShardCount is returned by Restore when a snapshot was taken with a
// different shard count than the engine it is being restored into.
var ErrShardCount = errors.New("shard: snapshot shard count mismatch")

// Engine is a sharded RAP profiler. Construction parameters are fixed for
// the engine's lifetime; all methods are safe for concurrent use.
//
// With EnableReadSnapshots the engine periodically publishes an immutable
// merged clone of all shards as an Epoch; Estimate, EstimateBounds, and
// HotRanges then answer from the current epoch with zero lock
// acquisitions, so queries never contend with ingest.
type Engine struct {
	cfg    core.Config
	shards []*treeShard
	next   atomic.Uint64 // round-robin cursor for Handle and Add

	// Epoch read path. pub is nil until EnableReadSnapshots. pubMu
	// serializes publishes (writer-side only — readers never touch it);
	// pubPend counts offered events since the last publish.
	pub      atomic.Pointer[core.EpochPublisher]
	pubEvery atomic.Uint64
	pubPend  atomic.Uint64
	pubMu    sync.Mutex
}

// treeShard is one stripe: a tree and the lock that guards it. Shards are
// separately heap-allocated so neighbouring locks do not share a cache
// line.
type treeShard struct {
	mu    sync.Mutex
	tree  *core.Tree
	hooks *core.Hooks   // reinstalled when Restore swaps the tree
	tap   core.Tap      // reinstalled like hooks; see SetShardTaps
	adm   core.Admitter // reinstalled like the tap; see SetShardAdmitters
}

// New builds an engine with k shards over cfg. k <= 0 selects
// runtime.GOMAXPROCS(0), the number of feeders that can actually run in
// parallel.
func New(cfg core.Config, k int) (*Engine, error) {
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	norm, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: norm, shards: make([]*treeShard, k)}
	for i := range e.shards {
		t, err := core.New(norm)
		if err != nil {
			return nil, err
		}
		e.shards[i] = &treeShard{tree: t}
	}
	return e, nil
}

// Config returns the normalized configuration every shard tree runs.
func (e *Engine) Config() core.Config { return e.cfg }

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Handle returns an ingest handle pinned to one shard, assigned
// round-robin. Give each feeding goroutine its own handle: with feeders
// <= shards every handle owns its stripe exclusively and the hot path
// never contends.
type Handle struct {
	sh  *treeShard
	eng *Engine
}

// Handle returns a new ingest handle (see Handle type).
func (e *Engine) Handle() *Handle {
	i := e.next.Add(1) - 1
	return &Handle{sh: e.shards[i%uint64(len(e.shards))], eng: e}
}

// Reader returns a pinned consistent epoch spanning the whole engine
// (all shards merged), for multi-query consistency; see Engine.Reader.
func (h *Handle) Reader() *core.Epoch { return h.eng.Reader() }

// Add records one occurrence of p on the handle's shard.
func (h *Handle) Add(p uint64) { h.AddN(p, 1) }

// AddN records weight occurrences of p on the handle's shard.
func (h *Handle) AddN(p uint64, weight uint64) {
	h.sh.mu.Lock()
	h.sh.tree.AddN(p, weight)
	h.sh.mu.Unlock()
	h.eng.notePub(weight)
}

// AddBatch records a run of points under one lock acquisition, through
// the tree's batched fast path (last-leaf cache, per-point Add semantics).
func (h *Handle) AddBatch(points []uint64) {
	h.sh.mu.Lock()
	h.sh.tree.AddBatch(points)
	h.sh.mu.Unlock()
	h.eng.notePub(uint64(len(points)))
}

// AddSamples records a chunk of weighted events under one lock
// acquisition, with per-sample AddN semantics. It is the entry point
// queue drains use to hand a shard whole batches.
func (h *Handle) AddSamples(samples []core.Sample) {
	h.sh.mu.Lock()
	h.sh.tree.AddSamples(samples)
	h.sh.mu.Unlock()
	h.eng.notePub(uint64(len(samples)))
}

// AddSorted records an ascending pre-sorted chunk under one lock
// acquisition, coalescing equal-value runs (see core.Tree.AddSorted).
func (h *Handle) AddSorted(points []uint64) {
	h.sh.mu.Lock()
	h.sh.tree.AddSorted(points)
	h.sh.mu.Unlock()
	h.eng.notePub(uint64(len(points)))
}

// Add records one occurrence of p on a round-robin shard. Handle-free
// ingestion keeps the engine drop-in compatible with ConcurrentTree, at
// the cost of bouncing the round-robin cursor between cores; hot loops
// should hold a Handle instead.
func (e *Engine) Add(p uint64) { e.AddN(p, 1) }

// AddN records weight occurrences of p on a round-robin shard.
func (e *Engine) AddN(p uint64, weight uint64) {
	i := e.next.Add(1) - 1
	sh := e.shards[i%uint64(len(e.shards))]
	sh.mu.Lock()
	sh.tree.AddN(p, weight)
	sh.mu.Unlock()
	e.notePub(weight)
}

// AddBatch records a batch of points on one round-robin shard under a
// single lock acquisition, through the tree's batched fast path.
func (e *Engine) AddBatch(points []uint64) {
	i := e.next.Add(1) - 1
	sh := e.shards[i%uint64(len(e.shards))]
	sh.mu.Lock()
	sh.tree.AddBatch(points)
	sh.mu.Unlock()
	e.notePub(uint64(len(points)))
}

// AddSamples records a chunk of weighted events on one round-robin shard
// under a single lock acquisition.
func (e *Engine) AddSamples(samples []core.Sample) {
	i := e.next.Add(1) - 1
	sh := e.shards[i%uint64(len(e.shards))]
	sh.mu.Lock()
	sh.tree.AddSamples(samples)
	sh.mu.Unlock()
	e.notePub(uint64(len(samples)))
}

// WithShard runs fn on shard i's tree with that shard's lock held. It is
// the embedding hook internal/ingest builds its batch appliers and
// consistent checkpoints on. fn must not call back into the engine.
func (e *Engine) WithShard(i int, fn func(t *core.Tree)) {
	sh := e.shards[i]
	sh.mu.Lock()
	before := sh.tree.N() + sh.tree.UnadmittedN()
	fn(sh.tree)
	after := sh.tree.N() + sh.tree.UnadmittedN()
	sh.mu.Unlock()
	// Direct-shard mutators (the ingest apply path) must still credit the
	// publish cadence; the offered-mass delta is read under the same lock
	// as the mutation, so the accounting is exact.
	if after > before {
		e.notePub(after - before)
	}
}

// EnableReadSnapshots switches the engine's query methods to the epoch
// read path: every `every` offered events (0 selects
// core.DefaultPublishEvery) the shards are cloned — one slab copy per
// shard, each under its own lock only — merged lock-free, and published
// as an immutable Epoch. Estimate/EstimateBounds/HotRanges then answer
// from the latest epoch with zero lock acquisitions. Idempotent; the
// first call publishes an initial epoch so readers never observe an
// empty window. Deployments without a steady event flow should also
// call PublishNow on a timer to bound wall-clock staleness (the ingest
// pipeline does this).
func (e *Engine) EnableReadSnapshots(every uint64) {
	if every == 0 {
		every = core.DefaultPublishEvery
	}
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	if e.pub.Load() != nil {
		return
	}
	e.pubEvery.Store(every)
	p := core.NewEpochPublisher()
	e.publishInto(p)
	e.pub.Store(p)
}

// Publisher returns the epoch publisher, or nil when read snapshots are
// disabled. Intended for observability (epoch metrics) and tests.
func (e *Engine) Publisher() *core.EpochPublisher { return e.pub.Load() }

// Reader returns a pinned consistent epoch for multi-query consistency:
// every query on the returned Epoch describes one merged cut of the
// whole engine. The caller must Release it. When read snapshots are
// disabled this degrades to a detached MergedTreeCut — same API, one
// extra merge.
func (e *Engine) Reader() *core.Epoch {
	if p := e.pub.Load(); p != nil {
		if ep := p.Acquire(); ep != nil {
			return ep
		}
	}
	return core.NewDetachedEpoch(e.MergedTreeCut(nil))
}

// notePub credits w offered events toward the publish cadence and, when
// the cadence lapses, publishes a fresh epoch. TryLock keeps ingest from
// convoying on the publish mutex: whoever loses the race just keeps
// ingesting, and the pending counter carries over.
func (e *Engine) notePub(w uint64) {
	p := e.pub.Load()
	if p == nil {
		return
	}
	if e.pubPend.Add(w) < e.pubEvery.Load() {
		return
	}
	if !e.pubMu.TryLock() {
		return
	}
	defer e.pubMu.Unlock()
	if e.pubPend.Load() < e.pubEvery.Load() {
		return // raced: another publisher already cut this window
	}
	e.pubPend.Store(0)
	e.publishInto(p)
}

// PublishNow unconditionally publishes a fresh epoch (no-op when read
// snapshots are disabled). Timers use it to bound wall-clock staleness
// on idle streams; Restore and AdoptShard use it so epoch readers never
// keep serving a replaced profile.
func (e *Engine) PublishNow() {
	p := e.pub.Load()
	if p == nil {
		return
	}
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	e.pubPend.Store(0)
	e.publishInto(p)
}

// PublishPending reports the offered events credited since the last
// publish (0 when read snapshots are disabled). A staleness timer can
// skip PublishNow when nothing arrived.
func (e *Engine) PublishPending() uint64 { return e.pubPend.Load() }

// publishInto cuts and publishes one merged epoch: clone each shard
// under its own lock (a single slab copy, so locks are held for a
// memcpy, not a tree walk), then merge the private clones lock-free.
// Callers serialize via pubMu so epoch sequence numbers match publish
// order.
func (e *Engine) publishInto(p *core.EpochPublisher) {
	m := core.MustNew(e.cfg)
	for _, sh := range e.shards {
		sh.mu.Lock()
		c := sh.tree.Clone()
		sh.mu.Unlock()
		if err := m.Merge(c); err != nil {
			panic(err) // shard trees share the engine config by construction
		}
	}
	p.Publish(m)
}

// republish refreshes the current epoch after a wholesale tree swap
// (Restore, AdoptShard); no-op when read snapshots are disabled.
func (e *Engine) republish() {
	if e.pub.Load() != nil {
		e.PublishNow()
	}
}

// merged builds a one-off union of all shard trees. Shards are folded in
// one at a time, each under its own lock only — queries never stop the
// world. The result is a passive snapshot (no hooks).
func (e *Engine) merged() *core.Tree {
	m := core.MustNew(e.cfg)
	for _, sh := range e.shards {
		sh.mu.Lock()
		err := m.Merge(sh.tree)
		sh.mu.Unlock()
		if err != nil {
			// Shard trees share the engine config by construction; a
			// mismatch is a programming error, not a runtime condition.
			panic(err)
		}
	}
	return m
}

// MergedTree returns a merged snapshot of all shards as a plain tree, for
// dumps, analysis, and serialization. The snapshot is independent of the
// engine: mutating it does not touch live shards.
func (e *Engine) MergedTree() *core.Tree { return e.merged() }

// Estimate returns the lower-bound estimate for [lo, hi] over the merged
// view. The undershoot is at most eps*N() for tracked ranges. With read
// snapshots enabled it answers from the current epoch with zero lock
// acquisitions (the lower bound stays valid for the live stream: shards
// only grow); otherwise it builds a fresh merged view.
func (e *Engine) Estimate(lo, hi uint64) uint64 {
	if p := e.pub.Load(); p != nil {
		if ep := p.Current(); ep != nil {
			return ep.Estimate(lo, hi)
		}
	}
	return e.merged().Estimate(lo, hi)
}

// EstimateBounds returns the bracketing estimates for [lo, hi] over the
// merged view. With read snapshots enabled the bracket describes the
// stream as of the current epoch's cut (including the unadmitted ledger
// at that cut), answered lock-free.
func (e *Engine) EstimateBounds(lo, hi uint64) (low, high uint64) {
	if p := e.pub.Load(); p != nil {
		if ep := p.Current(); ep != nil {
			return ep.EstimateBounds(lo, hi)
		}
	}
	return e.merged().EstimateBounds(lo, hi)
}

// HotRanges reports the ranges holding at least theta of the combined
// stream, computed on the merged view so a range split across shards is
// still found. Lock-free from the current epoch when read snapshots are
// enabled.
func (e *Engine) HotRanges(theta float64) []core.HotRange {
	if p := e.pub.Load(); p != nil {
		if ep := p.Current(); ep != nil {
			return ep.HotRanges(theta)
		}
	}
	return e.merged().HotRanges(theta)
}

// Merge folds a plain tree into one round-robin shard (see
// core.Tree.Merge); other is only read. A successful merge adds mass the
// shard's tap never observed, so the tap (if any) is notified via
// TreeReplaced.
func (e *Engine) Merge(other *core.Tree) error {
	i := e.next.Add(1) - 1
	sh := e.shards[i%uint64(len(e.shards))]
	sh.mu.Lock()
	err := sh.tree.Merge(other)
	if err == nil && sh.tap != nil {
		sh.tap.TreeReplaced()
	}
	sh.mu.Unlock()
	if err == nil {
		e.notePub(other.N())
	}
	return err
}

// N returns the total event weight across all shards.
func (e *Engine) N() uint64 {
	var total uint64
	for _, sh := range e.shards {
		sh.mu.Lock()
		total += sh.tree.N()
		sh.mu.Unlock()
	}
	return total
}

// Stats aggregates the per-shard counters: sums for event and operation
// counts, memory charged across all live shard nodes. The view is
// monitoring-grade — shards are sampled one at a time.
func (e *Engine) Stats() core.Stats {
	var agg core.Stats
	agg.Height = e.cfg.Height()
	for _, sh := range e.shards {
		sh.mu.Lock()
		st := sh.tree.Stats()
		sh.mu.Unlock()
		agg.N += st.N
		agg.UnadmittedN += st.UnadmittedN
		agg.Nodes += st.Nodes
		agg.MaxNodes += st.MaxNodes
		agg.MemoryBytes += st.MemoryBytes
		agg.ArenaBytes += st.ArenaBytes
		agg.Splits += st.Splits
		agg.Merges += st.Merges
		agg.MergeBatches += st.MergeBatches
		agg.CounterSlots8 += st.CounterSlots8
		agg.CounterSlots16 += st.CounterSlots16
		agg.CounterSlots32 += st.CounterSlots32
		agg.CounterSlots64 += st.CounterSlots64
		agg.CounterPoolBytes += st.CounterPoolBytes
		agg.CounterPromotions += st.CounterPromotions
	}
	return agg
}

// ShardStats returns shard i's own counters.
func (e *Engine) ShardStats(i int) core.Stats {
	sh := e.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.tree.Stats()
}

// Finalize compacts every shard with a merge batch and returns the
// aggregated statistics.
func (e *Engine) Finalize() core.Stats {
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.tree.MergeNow()
		sh.mu.Unlock()
	}
	return e.Stats()
}

// SetHooks installs the same observability hooks on every shard tree.
// Hooks fire with a shard lock held and from many goroutines, so they
// must be concurrency-safe and must not call back into the engine. For
// per-shard labeled metrics use SetShardHooks.
func (e *Engine) SetHooks(h *core.Hooks) {
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.hooks = h
		sh.tree.SetHooks(h)
		sh.mu.Unlock()
	}
}

// SetShardHooks installs per-shard hooks built by make (called once per
// shard index). The hooks survive Restore the same way SetHooks does.
func (e *Engine) SetShardHooks(make func(shard int) *core.Hooks) {
	for i, sh := range e.shards {
		h := make(i)
		sh.mu.Lock()
		sh.hooks = h
		sh.tree.SetHooks(h)
		sh.mu.Unlock()
	}
}

// SetShardTaps installs per-shard event taps built by make (called once
// per shard index; a nil result leaves that shard untapped). Taps fire
// with the shard lock held on the ingesting goroutine, so they must not
// call back into the engine; they survive Restore and AdoptShard the same
// way hooks do, with TreeReplaced fired when the tree is swapped.
func (e *Engine) SetShardTaps(make func(shard int) core.Tap) {
	for i, sh := range e.shards {
		tap := make(i)
		sh.mu.Lock()
		sh.tap = tap
		sh.tree.SetTap(tap)
		sh.mu.Unlock()
	}
}

// SetShardAdmitters installs per-shard admission gates built by make
// (called once per shard index; a nil result leaves that shard ungated).
// Gates run with the shard lock held on the ingesting goroutine, so they
// must not call back into the engine; they survive Restore and AdoptShard
// the same way taps do, with TreeReplaced fired when the tree is swapped.
func (e *Engine) SetShardAdmitters(make func(shard int) core.Admitter) {
	for i, sh := range e.shards {
		adm := make(i)
		sh.mu.Lock()
		sh.adm = adm
		sh.tree.SetAdmitter(adm)
		sh.mu.Unlock()
	}
}

// UnadmittedN returns the total weight refused by the shards' admission
// gates (the sum of the per-shard unadmitted ledgers).
func (e *Engine) UnadmittedN() uint64 {
	var u uint64
	for _, sh := range e.shards {
		sh.mu.Lock()
		u += sh.tree.UnadmittedN()
		sh.mu.Unlock()
	}
	return u
}

// MergedTreeCut builds the union of all shard trees under a full cut: all
// shard locks are held (in index order) while the shards are merged and
// capture — when non-nil — runs on the merged result. Unlike MergedTree,
// whose per-shard locking lets concurrent ingest skew the view between
// shards, the cut is exactly consistent: state read by capture and the
// merged tree describe the same instant. The audit subsystem compares its
// shadow truth against estimates on this primitive, so a mid-flight event
// can never surface as a spurious accuracy violation.
func (e *Engine) MergedTreeCut(capture func(m *core.Tree)) *core.Tree {
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(e.shards) - 1; i >= 0; i-- {
			e.shards[i].mu.Unlock()
		}
	}()
	m := core.MustNew(e.cfg)
	for _, sh := range e.shards {
		if err := m.Merge(sh.tree); err != nil {
			panic(err) // shard trees share the engine config by construction
		}
	}
	if capture != nil {
		capture(m)
	}
	return m
}

// Snapshot format: "RAPS" | version | uvarint shard count | per shard a
// length-prefixed core tree snapshot. The per-shard trees are preserved
// individually (not pre-merged) so a restore resumes with the same
// distribution of state across stripes.
const (
	snapMagic   = "RAPS"
	snapVersion = 1
)

// Snapshot serializes all shards. Shard locks are taken one at a time, so
// concurrent ingest skews the cut between shards: the snapshot is a valid
// profile of some interleaving, suitable for monitoring and hand-off. For
// an exact cut (checkpointing), quiesce ingest or use SnapshotShards.
func (e *Engine) Snapshot() ([]byte, error) {
	snaps := make([][]byte, len(e.shards))
	for i, sh := range e.shards {
		sh.mu.Lock()
		data, err := sh.tree.MarshalBinary()
		sh.mu.Unlock()
		if err != nil {
			return nil, err
		}
		snaps[i] = data
	}
	return encodeSnapshot(snaps), nil
}

// SnapshotShards marshals every shard under a full cut: all shard locks
// are held (in index order) while the trees are serialized and capture —
// when non-nil — runs, so positions recorded by capture are exactly
// consistent with the tree contents. This is the primitive the ingest
// checkpointer uses.
func (e *Engine) SnapshotShards(capture func()) ([][]byte, error) {
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(e.shards) - 1; i >= 0; i-- {
			e.shards[i].mu.Unlock()
		}
	}()
	snaps := make([][]byte, len(e.shards))
	for i, sh := range e.shards {
		data, err := sh.tree.MarshalBinary()
		if err != nil {
			return nil, err
		}
		snaps[i] = data
	}
	if capture != nil {
		capture()
	}
	return snaps, nil
}

func encodeSnapshot(snaps [][]byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	buf.WriteByte(snapVersion)
	writeUvarint(&buf, uint64(len(snaps)))
	for _, s := range snaps {
		writeUvarint(&buf, uint64(len(s)))
		buf.Write(s)
	}
	return buf.Bytes()
}

// Restore replaces every shard's contents from a snapshot previously
// produced by Snapshot. The shard count must match (ErrShardCount
// otherwise); installed hooks are re-applied to the fresh trees. On any
// decode error the engine is left unchanged.
func (e *Engine) Restore(data []byte) error {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != snapMagic {
		return errors.New("shard: bad snapshot magic")
	}
	ver, err := r.ReadByte()
	if err != nil || ver != snapVersion {
		return fmt.Errorf("shard: unsupported snapshot version %d", ver)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("shard: truncated snapshot: %w", err)
	}
	if count != uint64(len(e.shards)) {
		return fmt.Errorf("%w: snapshot has %d, engine has %d",
			ErrShardCount, count, len(e.shards))
	}
	trees := make([]*core.Tree, count)
	for i := range trees {
		blob, err := readBlob(r)
		if err != nil {
			return fmt.Errorf("shard %d snapshot: %w", i, err)
		}
		var t core.Tree
		if err := t.UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("shard %d snapshot: %w", i, err)
		}
		trees[i] = &t
	}
	if r.Len() != 0 {
		return fmt.Errorf("shard: %d trailing bytes after snapshot", r.Len())
	}
	for i, sh := range e.shards {
		sh.mu.Lock()
		trees[i].SetHooks(sh.hooks)
		trees[i].SetTap(sh.tap)
		trees[i].SetAdmitter(sh.adm)
		sh.tree = trees[i]
		if sh.tap != nil {
			sh.tap.TreeReplaced()
		}
		if sh.adm != nil {
			sh.adm.TreeReplaced()
		}
		sh.mu.Unlock()
	}
	e.republish()
	return nil
}

// AdoptShard replaces shard i's tree wholesale (the ingest recovery path,
// which decodes trees from its own checkpoint format). Installed hooks
// and taps are re-applied to the adopted tree.
func (e *Engine) AdoptShard(i int, t *core.Tree) {
	sh := e.shards[i]
	sh.mu.Lock()
	t.SetHooks(sh.hooks)
	t.SetTap(sh.tap)
	t.SetAdmitter(sh.adm)
	sh.tree = t
	if sh.tap != nil {
		sh.tap.TreeReplaced()
	}
	if sh.adm != nil {
		sh.adm.TreeReplaced()
	}
	sh.mu.Unlock()
	e.republish()
}

func writeUvarint(buf *bytes.Buffer, x uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	buf.Write(tmp[:n])
}

func readBlob(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("blob length %d exceeds remaining %d bytes", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
