package workload

import "rap/internal/stats"

// Phase behaviour. SPEC programs run through phases (gcc's parse /
// flow-analysis / register-allocation passes, gzip's deflate vs inflate):
// data structures and code regions that dominate one part of the run are
// silent in another. RAP's interesting errors come exactly from ranges
// that first turn hot mid-run — the mass they receive while the tree has
// no structure under them is stranded at coarser ancestors, costing up to
// ε·n/H per level (Section 4.3's "narrow and deep" 13.5% gcc range).
//
// Each mixture component is therefore given an activation window over the
// intended run length: a third of the components run the whole time, a
// third only the first half, and a third only the second half, at twice
// their nominal weight. Full-run averages — the Figure 5 and Figure 10
// calibrations — are preserved because every component's weight
// integrates to its nominal share. A zero run length disables phasing
// (stationary stream).
type phasedDiscrete struct {
	rng     *stats.SplitMix64
	base    []float64
	windows [][2]float64 // active [start, end) as run fractions
	scratch []float64

	cur       *stats.Discrete
	draws     uint64
	total     uint64 // run length in draws; 0 = stationary
	slice     uint64 // rebuild granularity in draws
	nextBuild uint64
}

// phaseWindow assigns component i its activation window: full-run for
// i % 3 == 0, first half for i % 3 == 1, second half for i % 3 == 2.
func phaseWindow(i int) [2]float64 {
	switch i % 3 {
	case 1:
		return [2]float64{0, 0.5}
	case 2:
		return [2]float64{0.5, 1}
	default:
		return [2]float64{0, 1}
	}
}

func newPhasedDiscrete(rng *stats.SplitMix64, weights []float64, totalDraws uint64) *phasedDiscrete {
	windows := make([][2]float64, len(weights))
	for i := range weights {
		windows[i] = phaseWindow(i)
	}
	return newPhasedDiscreteWindows(rng, weights, windows, totalDraws)
}

// newPhasedDiscreteWindows lets the caller pin activation windows (e.g. a
// benchmark's diffuse background runs the whole time).
func newPhasedDiscreteWindows(rng *stats.SplitMix64, weights []float64, windows [][2]float64, totalDraws uint64) *phasedDiscrete {
	p := &phasedDiscrete{
		rng:     rng,
		base:    append([]float64(nil), weights...),
		windows: windows,
		scratch: make([]float64, len(weights)),
		total:   totalDraws,
	}
	if p.total > 0 {
		p.slice = p.total / 16
		if p.slice == 0 {
			p.slice = 1
		}
	}
	p.rebuild()
	return p
}

// Index returns the next sampled component index, advancing the phase
// schedule.
func (p *phasedDiscrete) Index() int {
	if p.total > 0 && p.draws >= p.nextBuild {
		p.rebuild()
	}
	p.draws++
	return p.cur.Index()
}

func (p *phasedDiscrete) rebuild() {
	if p.total == 0 {
		p.cur = stats.NewDiscrete(p.rng, p.base)
		return
	}
	// Run fraction, cycling past the nominal end so endless sources keep
	// working (a second "execution" of the program).
	frac := float64(p.draws%p.total) / float64(p.total)
	for i, w := range p.base {
		win := p.windows[i]
		if frac >= win[0] && frac < win[1] {
			p.scratch[i] = w / (win[1] - win[0])
		} else {
			p.scratch[i] = w * 1e-9 // effectively silent, keeps sampler valid
		}
	}
	p.cur = stats.NewDiscrete(p.rng, p.scratch)
	p.nextBuild = p.draws + p.slice
}
