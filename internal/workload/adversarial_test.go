package workload

import (
	"testing"

	"rap/internal/trace"
)

func drain(src trace.Source, n int) []uint64 {
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		e, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, e.Value)
	}
	return out
}

func TestFloodDeterministicAndDistinct(t *testing.T) {
	const n = 200_000
	a := drain(Flood(7), n)
	b := drain(Flood(7), n)
	if len(a) != n || len(b) != n {
		t.Fatalf("flood ended early: %d/%d of %d", len(a), len(b), n)
	}
	seen := make(map[uint64]struct{}, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %#x vs %#x", i, a[i], b[i])
		}
		if _, dup := seen[a[i]]; dup {
			t.Fatalf("flood repeated key %#x within %d events; the attack relies on every key being cold", a[i], n)
		}
		seen[a[i]] = struct{}{}
	}
	if c := drain(Flood(8), n); c[0] == a[0] && c[1] == a[1] {
		t.Fatal("different seeds produced the same stream")
	}
}

func TestFloodMixFractionAndDeterminism(t *testing.T) {
	carrier := func() trace.Source { return trace.FuncSource(func() (uint64, bool) { return 1, true }) }
	const n = 100_000
	a := drain(FloodMix(3, 0.75, carrier()), n)
	b := drain(FloodMix(3, 0.75, carrier()), n)
	var benign int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a[i] == 1 {
			benign++
		}
	}
	// The carrier emits only 1s and the flood (whp) never does, so the
	// benign share measures the interleave fraction directly.
	got := float64(n-benign) / float64(n)
	if got < 0.73 || got > 0.77 {
		t.Fatalf("flood fraction %.3f, want about 0.75", got)
	}
	// Clamping: frac outside [0,1] must not panic or starve the stream.
	if out := drain(FloodMix(3, 1.5, carrier()), 1000); len(out) != 1000 {
		t.Fatalf("frac>1 stream ended early at %d", len(out))
	}
	if out := drain(FloodMix(3, -0.5, carrier()), 1000); len(out) != 1000 {
		for _, v := range out {
			if v != 1 {
				t.Fatalf("frac<0 should pass the carrier through, got %#x", v)
			}
		}
	}
}

func TestFloodBurstSwitchesToCarrier(t *testing.T) {
	carrier := trace.FuncSource(func() (uint64, bool) { return 1, true })
	const burst = 5_000
	out := drain(FloodBurst(9, burst, carrier), 2*burst)
	for i := 0; i < burst; i++ {
		if out[i] == 1 {
			t.Fatalf("carrier value leaked into the burst at %d", i)
		}
	}
	for i := burst; i < 2*burst; i++ {
		if out[i] != 1 {
			t.Fatalf("flood value %#x after the burst ended at %d", out[i], i)
		}
	}
}
