package workload

import (
	"testing"

	"rap/internal/cachesim"
	"rap/internal/exact"
	"rap/internal/trace"
)

func TestAllBenchmarks(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("modeled %d benchmarks, want 7", len(all))
	}
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.NumBlocks() <= 0 {
			t.Fatalf("%s has no blocks", b.Name)
		}
		// Region shares must leave room for background and regions must
		// stay inside the block space.
		total := 0.0
		for _, r := range b.code.regions {
			total += r.weight
			if r.startBlock < 0 || r.startBlock+r.numBlocks > b.code.numBlocks {
				t.Fatalf("%s region %+v escapes block space %d", b.Name, r, b.code.numBlocks)
			}
		}
		if total >= 1 {
			t.Fatalf("%s region weights sum to %v", b.Name, total)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("gcc")
	if err != nil || b.Name != "gcc" {
		t.Fatalf("ByName(gcc) = %v, %v", b.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown benchmark")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 7 || names[0] != "gcc" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCodeStreamDeterministic(t *testing.T) {
	a := trace.Collect(trace.Limit(gcc.Code(1, 0), 2000))
	b := trace.Collect(trace.Limit(gcc.Code(1, 0), 2000))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	c := trace.Collect(trace.Limit(gcc.Code(2, 0), 2000))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestCodeStreamStaysInTextSegment(t *testing.T) {
	for _, b := range All() {
		lo := b.code.base
		hi := b.pc(b.code.numBlocks - 1)
		src := trace.Limit(b.Code(3, 0), 20_000)
		for {
			e, ok := src.Next()
			if !ok {
				break
			}
			if e.Value < lo || e.Value > hi {
				t.Fatalf("%s PC %x outside text [%x,%x]", b.Name, e.Value, lo, hi)
			}
			if (e.Value-lo)%blockSize != 0 {
				t.Fatalf("%s PC %x not block-aligned", b.Name, e.Value)
			}
		}
	}
}

func TestGccHasSevenHotRegions(t *testing.T) {
	// The paper: "For gcc we identify seven distinct regions of the
	// program where each region accounted for more than 10% of the
	// instructions executed." Verify the model delivers that ground truth
	// empirically.
	regions := gcc.Regions()
	if len(regions) != 7 {
		t.Fatalf("gcc models %d regions, want 7", len(regions))
	}
	counts := make([]uint64, len(regions))
	var n uint64
	src := trace.Limit(gcc.Code(11, 400_000), 400_000)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		n++
		for i, r := range regions {
			if e.Value >= r.LoPC && e.Value <= r.HiPC {
				counts[i]++
				break
			}
		}
	}
	for i, r := range regions {
		frac := float64(counts[i]) / float64(n)
		if frac < 0.10 {
			t.Errorf("gcc region %d [%x,%x] carries %.1f%%, want > 10%%",
				i, r.LoPC, r.HiPC, 100*frac)
		}
	}
}

func TestValueStreamShapes(t *testing.T) {
	// gzip: the Figure 5 calibration — [0,e] ~13.6%, [0,fe] ~30.3%
	// cumulative; vortex: value 0 hot (~24%); parser: most distinct
	// values of all benchmarks.
	n := uint64(300_000)
	profile := func(b Benchmark) *exact.Profiler {
		e := exact.New()
		src := trace.Limit(b.Values(5, n), n)
		for {
			ev, ok := src.Next()
			if !ok {
				break
			}
			e.Add(ev.Value)
		}
		return e
	}
	gz := profile(gzip)
	f0e := float64(gz.RangeCount(0, 0xe)) / float64(n)
	if f0e < 0.11 || f0e > 0.17 {
		t.Errorf("gzip [0,e] share %.3f, want ~0.136", f0e)
	}
	f0fe := float64(gz.RangeCount(0, 0xfe)) / float64(n)
	if f0fe < 0.26 || f0fe > 0.35 {
		t.Errorf("gzip [0,fe] share %.3f, want ~0.30", f0fe)
	}
	band := float64(gz.RangeCount(0x11ffffffd, 0x12000fffb)) / float64(n)
	if band < 0.07 || band > 0.14 {
		t.Errorf("gzip band-1 share %.3f, want ~0.10", band)
	}

	vx := profile(vortex)
	zero := float64(vx.Count(0)) / float64(n)
	if zero < 0.18 || zero > 0.30 {
		t.Errorf("vortex zero share %.3f, want ~0.24", zero)
	}

	pr := profile(parser)
	for _, b := range All() {
		if b.Name == "parser" {
			continue
		}
		if d := profile(b).Distinct(); d >= pr.Distinct() {
			t.Errorf("%s has %d distinct values, parser only %d — parser must lead",
				b.Name, d, pr.Distinct())
		}
	}
}

func TestLoadStreamProperties(t *testing.T) {
	for _, b := range All() {
		src := b.Loads(7, 0)
		zeros, n := 0, 50_000
		for i := 0; i < n; i++ {
			ld := src.Next()
			if ld.Value == 0 {
				zeros++
			}
			if ld.Addr == 0 {
				t.Fatalf("%s produced a null load address", b.Name)
			}
		}
		frac := float64(zeros) / float64(n)
		if frac < 0.02 || frac > 0.60 {
			t.Errorf("%s zero-load fraction %.3f implausible", b.Name, frac)
		}
	}
}

func TestZeroLoadAddressesOnlyZeros(t *testing.T) {
	src := gcc.Loads(13, 0)
	zsrc := src.ZeroLoadAddresses()
	for i := 0; i < 10_000; i++ {
		e, ok := zsrc.Next()
		if !ok {
			t.Fatal("zero-load stream ended")
		}
		// All gcc zero-load addresses live in the modeled global or data
		// bands.
		if e.Value < textBase || e.Value > 0x150000000 {
			t.Fatalf("zero-load address %x outside modeled memory", e.Value)
		}
	}
}

func TestGccZeroLoadsConcentrate(t *testing.T) {
	// Figure 10: the 0x11fd00000-0x11ff7ffff band dominates gcc's
	// zero-loads (54.6% + 13.7% ~ 68%).
	src := gcc.Loads(17, 100_000)
	zsrc := src.ZeroLoadAddresses()
	var inBand, n uint64
	for i := 0; i < 100_000; i++ {
		e, _ := zsrc.Next()
		n++
		if e.Value >= 0x11fd00000 && e.Value <= 0x11ff7ffff {
			inBand++
		}
	}
	frac := float64(inBand) / float64(n)
	if frac < 0.40 || frac > 0.85 {
		t.Errorf("gcc zero-loads in hot band: %.2f, want ~0.68", frac)
	}
}

func TestMissValueLocalityExceedsLoadValueLocality(t *testing.T) {
	// The Figure 9 headline: value locality of DL1 misses exceeds that of
	// all loads — hot narrow ranges cover more of the miss stream.
	h := cachesim.NewHierarchy()
	src := gcc.Loads(19, 400_000)
	all := exact.New()
	miss := exact.New()
	for i := 0; i < 400_000; i++ {
		ld := src.Next()
		all.Add(ld.Value)
		if l1, _ := h.Access(ld.Addr); l1 {
			miss.Add(ld.Value)
		}
	}
	if miss.N() == 0 {
		t.Fatal("no DL1 misses generated")
	}
	missRatio := float64(miss.N()) / float64(all.N())
	if missRatio < 0.02 || missRatio > 0.9 {
		t.Fatalf("gcc DL1 miss ratio %.3f implausible", missRatio)
	}
	// Figure 9's metric is coverage by hot *ranges* of width <= 2^16, not
	// absolute value magnitude: measure the stream share held in
	// 2^16-aligned buckets that each carry at least 2% of their stream.
	if a, m := narrowCoverage(all), narrowCoverage(miss); m <= a+0.05 {
		t.Errorf("narrow-range coverage: misses %.3f vs all loads %.3f; Figure 9 expects clearly more miss locality",
			m, a)
	}
}

// narrowCoverage returns the fraction of the profiled stream inside
// 2^16-wide aligned buckets that each hold >= 2% of the stream.
func narrowCoverage(e *exact.Profiler) float64 {
	buckets := map[uint64]uint64{}
	for _, vc := range e.TopK(1 << 30) {
		buckets[vc.Value>>16] += vc.Count
	}
	var covered uint64
	for _, c := range buckets {
		if float64(c) >= 0.02*float64(e.N()) {
			covered += c
		}
	}
	return float64(covered) / float64(e.N())
}

func TestNarrowOperandPCsConcentrate(t *testing.T) {
	src := trace.Limit(gcc.NarrowOperandPCs(23, 16, 100_000), 100_000)
	e := exact.New()
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		e.Add(ev.Value)
	}
	if e.N() == 0 {
		t.Fatal("no narrow-operand PCs generated")
	}
	// Some region must dominate: top region share > 15%.
	best := 0.0
	for _, r := range gcc.Regions() {
		if f := float64(e.RangeCount(r.LoPC, r.HiPC)) / float64(e.N()); f > best {
			best = f
		}
	}
	if best < 0.10 {
		t.Errorf("narrow operands not concentrated: best region share %.3f", best)
	}
}
