package workload

import (
	"rap/internal/stats"
	"rap/internal/trace"
)

// This file synthesizes adversarial-cardinality streams: the worst case
// for an adaptive range profiler is not a skewed distribution but a flood
// of never-repeating keys, which tries to force one leaf split per event
// and grow the tree (and its arena) without bound. These generators are
// deterministic so experiments and CI runs reproduce bit-for-bit.

// mix64 is the splitmix64 finalizer: a bijection on uint64. Applying it
// to a counter yields a sequence that provably never repeats within 2^64
// events while looking uniformly random to the profiler.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Flood returns an endless key-flood stream: every event is a fresh,
// never-before-seen 64-bit value. Because mix64 is a bijection and the
// counter never repeats, neither does the output — there is no warmth for
// an admission sketch to find and no skew for the tree to exploit. Wrap
// with trace.Limit for a finite run.
func Flood(seed uint64) trace.Source {
	var ctr uint64
	return trace.FuncSource(func() (uint64, bool) {
		v := mix64(ctr ^ seed)
		ctr++
		return v, true
	})
}

// FloodMix interleaves a key flood with a benign carrier stream: each
// event is drawn from the flood with probability frac, else from carrier.
// This models an attacker hiding cardinality chaff inside legitimate
// traffic — the profiler must keep tracking the carrier's structure while
// refusing to materialize the flood's. frac is clamped to [0, 1]; the
// interleave choice is seeded independently of both streams.
func FloodMix(seed uint64, frac float64, carrier trace.Source) trace.Source {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	flood := Flood(seed)
	rng := stats.NewSplitMix64(mix64(seed ^ 0xadf0adf0adf0adf0))
	return trace.FuncSource(func() (uint64, bool) {
		if rng.Float64() < frac {
			ev, ok := flood.Next()
			return ev.Value, ok
		}
		ev, ok := carrier.Next()
		return ev.Value, ok
	})
}

// FloodBurst front-loads the attack: the first burstLen events are pure
// flood, everything after comes from carrier. This is the
// escalate-then-recover scenario — the admission watchdog should climb
// under the burst and walk back down once the stream turns benign — used
// by the CI adversarial smoke job.
func FloodBurst(seed uint64, burstLen uint64, carrier trace.Source) trace.Source {
	flood := Flood(seed)
	var n uint64
	return trace.FuncSource(func() (uint64, bool) {
		if n < burstLen {
			n++
			ev, ok := flood.Next()
			return ev.Value, ok
		}
		ev, ok := carrier.Next()
		return ev.Value, ok
	})
}
