package workload

import (
	"rap/internal/stats"
	"rap/internal/trace"
)

// valueComponent is one term of a load-value mixture.
type valueComponent struct {
	weight float64
	kind   valueKind
	lo, hi uint64  // uniform / pointer bounds, zipf base
	n      int     // zipf support size
	exp    float64 // zipf exponent
}

type valueKind int

const (
	vZero valueKind = iota
	vUniform
	vZipf
)

// zeroC is a point mass at zero with the given mixture weight.
func zeroC(w float64) valueComponent {
	return valueComponent{weight: w, kind: vZero}
}

// uniC is uniform over [lo, hi] inclusive.
func uniC(w float64, lo, hi uint64) valueComponent {
	if lo > hi {
		panic("workload: uniC with lo > hi")
	}
	return valueComponent{weight: w, kind: vUniform, lo: lo, hi: hi}
}

// ptrC is uniform over [base, base+span]: pointer-like values into a
// region.
func ptrC(w float64, base, span uint64) valueComponent {
	return uniC(w, base, base+span)
}

// zipfC draws base+rank with Zipf(n, exp) popularity: heavy concentration
// at and just above base.
func zipfC(w float64, base uint64, n int, exp float64) valueComponent {
	return valueComponent{weight: w, kind: vZipf, lo: base, n: n, exp: exp}
}

// valueSampler draws from a phase-modulated mixture of components.
type valueSampler struct {
	pick  *phasedDiscrete
	comps []valueComponent
	zipfs []*stats.Zipf
	rng   *stats.SplitMix64
}

func newValueSampler(rng *stats.SplitMix64, comps []valueComponent, runLength uint64) *valueSampler {
	weights := make([]float64, len(comps))
	zipfs := make([]*stats.Zipf, len(comps))
	for i, c := range comps {
		weights[i] = c.weight
		if c.kind == vZipf {
			zipfs[i] = stats.NewZipf(rng.Split(), c.n, c.exp)
		}
	}
	return &valueSampler{
		pick:  newPhasedDiscrete(rng.Split(), weights, runLength),
		comps: comps,
		zipfs: zipfs,
		rng:   rng,
	}
}

func (s *valueSampler) sample() uint64 {
	i := s.pick.Index()
	c := s.comps[i]
	switch c.kind {
	case vZero:
		return 0
	case vUniform:
		span := c.hi - c.lo
		if span == ^uint64(0) {
			return s.rng.Uint64()
		}
		return c.lo + s.rng.Uint64n(span+1)
	default: // vZipf
		return c.lo + uint64(s.zipfs[i].Rank())
	}
}

// Values returns an endless load-value stream for the benchmark, seeded
// deterministically. runLength sets the program-phase horizon (see
// phase.go); 0 disables phasing. Wrap with trace.Limit for a finite run.
func (b Benchmark) Values(seed, runLength uint64) trace.Source {
	rng := stats.NewSplitMix64(seed ^ hashName(b.Name))
	s := newValueSampler(rng, b.value, runLength)
	return trace.FuncSource(func() (uint64, bool) {
		return s.sample(), true
	})
}

// hashName folds a benchmark name into the seed so that different
// benchmarks given the same seed do not share streams.
func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
