package workload

import (
	"rap/internal/stats"
	"rap/internal/trace"
)

// Load is one executed load instruction: the PC that issued it, the data
// address it read, and the value it returned. The load stream feeds the
// paper's cross-cutting profiles: value profiling (Figure 5), cache-miss
// value profiling (Figure 9), and zero-load memory profiling (Figure 10).
type Load struct {
	PC    uint64
	Addr  uint64
	Value uint64
}

// addrModel describes how one load component generates addresses.
type addrModel struct {
	kind   addrKind
	base   uint64
	span   uint64 // inclusive extent above base
	stride uint64 // scan step
	slots  int    // global-table entries
}

type addrKind int

const (
	aStack  addrKind = iota // hot frame region: high reuse, cache hits
	aScan                   // sequential sweep: miss per line
	aChase                  // random pointer chase: miss-dominated
	aGlobal                 // small hot table: hits
)

func stackAddr(base uint64, span uint64) addrModel {
	return addrModel{kind: aStack, base: base, span: span}
}

func scanAddr(base uint64, span uint64, stride uint64) addrModel {
	return addrModel{kind: aScan, base: base, span: span, stride: stride}
}

func chaseAddr(base uint64, span uint64) addrModel {
	return addrModel{kind: aChase, base: base, span: span}
}

func globalAddr(base uint64, slots int) addrModel {
	return addrModel{kind: aGlobal, base: base, slots: slots}
}

// loadComponent is one source of loads in a benchmark: an address model,
// a zero-value probability, and the mixture for non-zero values.
type loadComponent struct {
	weight   float64
	addr     addrModel
	zeroProb float64
	value    []valueComponent
}

// LoadSource generates a benchmark's endless load stream.
type LoadSource struct {
	rng  *stats.SplitMix64
	pick *phasedDiscrete
	comp []loadState
}

type loadState struct {
	model    addrModel
	zeroProb float64
	values   *valueSampler
	zipf     *stats.Zipf // stack/global popularity
	pos      uint64      // scan cursor
	rng      *stats.SplitMix64
}

// Loads returns the benchmark's load stream, seeded deterministically.
// runLength sets the program-phase horizon (0 disables phasing).
func (b Benchmark) Loads(seed, runLength uint64) *LoadSource {
	rng := stats.NewSplitMix64(seed ^ hashName(b.Name) ^ 0x10AD)
	weights := make([]float64, len(b.loads))
	comp := make([]loadState, len(b.loads))
	for i, c := range b.loads {
		weights[i] = c.weight
		st := loadState{
			model:    c.addr,
			zeroProb: c.zeroProb,
			values:   newValueSampler(rng.Split(), c.value, 0),
			rng:      rng.Split(),
		}
		switch c.addr.kind {
		case aStack:
			// Frame slots reused with strong skew toward the top of stack.
			st.zipf = stats.NewZipf(rng.Split(), int(c.addr.span/8)+1, 1.4)
		case aGlobal:
			st.zipf = stats.NewZipf(rng.Split(), c.addr.slots, 1.2)
		}
		comp[i] = st
	}
	return &LoadSource{
		rng:  rng,
		pick: newPhasedDiscrete(rng.Split(), weights, runLength),
		comp: comp,
	}
}

// Next returns the next load. The stream is endless; callers bound it.
func (s *LoadSource) Next() Load {
	st := &s.comp[s.pick.Index()]
	var addr uint64
	switch st.model.kind {
	case aStack:
		addr = st.model.base + uint64(st.zipf.Rank())*8
	case aScan:
		addr = st.model.base + st.pos
		st.pos += st.model.stride
		if st.pos > st.model.span {
			st.pos = 0
		}
	case aChase:
		addr = st.model.base + st.rng.Uint64n(st.model.span+1)&^7
	case aGlobal:
		addr = st.model.base + uint64(st.zipf.Rank())*8
	}
	var val uint64
	if st.rng.Float64() >= st.zeroProb {
		val = st.values.sample()
	}
	return Load{PC: 0, Addr: addr, Value: val}
}

// LoadValues adapts the load stream to a Source of values (all loads).
func (s *LoadSource) LoadValues() trace.Source {
	return trace.FuncSource(func() (uint64, bool) {
		return s.Next().Value, true
	})
}

// ZeroLoadAddresses adapts the load stream to a Source of the addresses
// from which a zero was loaded — the Figure 10 profile.
func (s *LoadSource) ZeroLoadAddresses() trace.Source {
	return trace.FuncSource(func() (uint64, bool) {
		for {
			ld := s.Next()
			if ld.Value == 0 {
				return ld.Addr, true
			}
		}
	})
}
